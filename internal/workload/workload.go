// Package workload models the six datacenter applications the BAAT
// prototype deploys (DSN'15 §V-B): three HiBench jobs (Nutch Indexing,
// K-Means Clustering, Word Count) and three CloudSuite applications
// (Software Testing, Web Serving, Data Analytics).
//
// Each workload is reduced to what BAAT consumes: a CPU-utilization profile
// over its run, a total work amount, and the Table 3 power/energy demand
// class that drives the weighted-aging placement (§IV-B). Long-running
// services (Web Serving) never complete; batch jobs finish when their work
// units are done.
package workload

import (
	"fmt"
	"math"

	"github.com/green-dc/baat/internal/aging"
	"github.com/green-dc/baat/internal/rng"
)

// Kind identifies one of the six prototype workloads.
type Kind int

// The six workloads of §V-B.
const (
	NutchIndexing Kind = iota + 1
	KMeans
	WordCount
	SoftwareTesting
	WebServing
	DataAnalytics
)

// Kinds lists all workloads in paper order.
func Kinds() []Kind {
	return []Kind{NutchIndexing, KMeans, WordCount, SoftwareTesting, WebServing, DataAnalytics}
}

// String returns the workload name.
func (k Kind) String() string {
	switch k {
	case NutchIndexing:
		return "nutch-indexing"
	case KMeans:
		return "k-means"
	case WordCount:
		return "word-count"
	case SoftwareTesting:
		return "software-testing"
	case WebServing:
		return "web-serving"
	case DataAnalytics:
		return "data-analytics"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Profile describes a workload's resource behaviour — the "load power
// demand profiling" input of §IV-B-2a.
type Profile struct {
	Kind Kind

	// PeakUtilization is the CPU share the workload drives at its busiest
	// phase, in (0, 1].
	PeakUtilization float64

	// WorkUnits is the total work of a batch job in utilization-hours at
	// full frequency. Zero for services (they run forever).
	WorkUnits float64

	// Service marks long-running applications with no completion point.
	Service bool

	// Phases is the relative utilization shape over the run (each in
	// (0, 1], multiplied by PeakUtilization). Batch jobs walk phases by
	// progress; services cycle them by wall time.
	Phases []float64
}

// Profiles returns the built-in profile library. Utilization shapes are
// coarse but deliberately span the four Table 3 demand classes:
//
//	Nutch Indexing   — Large power, More energy (heavy, long indexing)
//	K-Means          — Large power, Less energy (intense but short iterations)
//	Word Count       — Small power, Less energy (light MapReduce)
//	Software Testing — Large power, More energy ("resource-hungry and
//	                   time-consuming", §V-B)
//	Web Serving      — Small power, More energy (long-running service)
//	Data Analytics   — Small power, More energy (sustained scan-heavy job)
func Profiles() map[Kind]Profile {
	return map[Kind]Profile{
		NutchIndexing: {
			Kind:            NutchIndexing,
			PeakUtilization: 0.9,
			WorkUnits:       3.5,
			Phases:          []float64{0.6, 0.9, 1.0, 1.0, 0.8, 0.5},
		},
		KMeans: {
			Kind:            KMeans,
			PeakUtilization: 0.95,
			WorkUnits:       1.2,
			Phases:          []float64{1.0, 0.4, 1.0, 0.4, 1.0, 0.3},
		},
		WordCount: {
			Kind:            WordCount,
			PeakUtilization: 0.45,
			WorkUnits:       0.8,
			Phases:          []float64{0.8, 1.0, 0.9, 0.6},
		},
		SoftwareTesting: {
			Kind:            SoftwareTesting,
			PeakUtilization: 0.95,
			WorkUnits:       5.0,
			Phases:          []float64{0.9, 1.0, 1.0, 0.95, 1.0, 0.9},
		},
		WebServing: {
			Kind:            WebServing,
			PeakUtilization: 0.5,
			Service:         true,
			Phases:          []float64{0.5, 0.7, 0.9, 1.0, 0.9, 0.8, 0.6, 0.5},
		},
		DataAnalytics: {
			Kind:            DataAnalytics,
			PeakUtilization: 0.55,
			WorkUnits:       4.0,
			Phases:          []float64{0.7, 1.0, 0.9, 1.0, 0.8, 0.9},
		},
	}
}

// ProfileFor returns the built-in profile for a workload kind.
func ProfileFor(k Kind) (Profile, error) {
	p, ok := Profiles()[k]
	if !ok {
		return Profile{}, fmt.Errorf("workload: unknown kind %v", k)
	}
	return p, nil
}

// Validate checks a profile.
func (p Profile) Validate() error {
	if p.PeakUtilization <= 0 || p.PeakUtilization > 1 {
		return fmt.Errorf("workload %v: peak utilization must be in (0, 1], got %v", p.Kind, p.PeakUtilization)
	}
	if !p.Service && p.WorkUnits <= 0 {
		return fmt.Errorf("workload %v: batch job needs positive work units", p.Kind)
	}
	if len(p.Phases) == 0 {
		return fmt.Errorf("workload %v: needs at least one phase", p.Kind)
	}
	for i, ph := range p.Phases {
		if ph <= 0 || ph > 1 {
			return fmt.Errorf("workload %v: phase %d must be in (0, 1], got %v", p.Kind, i, ph)
		}
	}
	return nil
}

// UtilizationAt returns the CPU utilization at a given progress point for
// batch jobs (progress in [0, 1]) or wall-clock phase position for services.
func (p Profile) UtilizationAt(pos float64) float64 {
	if len(p.Phases) == 0 {
		return p.PeakUtilization
	}
	pos = math.Mod(pos, 1)
	if pos < 0 {
		pos += 1
	}
	idx := int(pos * float64(len(p.Phases)))
	if idx >= len(p.Phases) {
		idx = len(p.Phases) - 1
	}
	return p.PeakUtilization * p.Phases[idx]
}

// DemandClass classifies the profile per Table 3 against a server whose
// full-utilization draw defines "peak": power is Large when the workload
// drives more than 50 % of server peak power; energy is More when total
// energy (utilization-hours) is above the library median.
func (p Profile) DemandClass() aging.DemandClass {
	const (
		largePowerUtil  = 0.5 // >50 % of peak power (§IV-B)
		moreEnergyUnits = 2.0 // utilization-hours; services always qualify
	)
	return aging.DemandClass{
		LargePower: p.PeakUtilization > largePowerUtil,
		MoreEnergy: p.Service || p.WorkUnits > moreEnergyUnits,
	}
}

// AsService converts a profile into a persistent service with the same
// utilization shape: it never completes and cycles its phases by wall time.
func (p Profile) AsService() Profile {
	p.Service = true
	p.WorkUnits = 0
	return p
}

// PrototypeServices returns the six workloads as persistent services, one
// per server — the prototype's static assignment ("we deploy and
// iteratively run the workloads hosted in virtual machines on our computing
// server nodes", §VI-B). The heterogeneous power demands create the
// per-node aging variation that hiding targets.
func PrototypeServices() []Profile {
	out := make([]Profile, 0, len(Kinds()))
	for _, k := range Kinds() {
		p, _ := ProfileFor(k) // built-ins always resolve
		out = append(out, p.AsService())
	}
	return out
}

// Generator produces arrival sequences of jobs for multi-day experiments.
// It owns its random stream, so its draw position snapshots and restores
// with the rest of the simulation state.
type Generator struct {
	rng   *rng.Stream
	kinds []Kind
}

// NewGenerator builds a job generator drawing uniformly from kinds (all six
// when kinds is empty). The stream should be dedicated to this generator:
// its position is part of the generator's serialized state.
func NewGenerator(stream *rng.Stream, kinds ...Kind) (*Generator, error) {
	if stream == nil {
		return nil, fmt.Errorf("workload: rng stream must not be nil")
	}
	if len(kinds) == 0 {
		kinds = Kinds()
	}
	for _, k := range kinds {
		if _, err := ProfileFor(k); err != nil {
			return nil, err
		}
	}
	return &Generator{rng: stream, kinds: append([]Kind(nil), kinds...)}, nil
}

// Next draws the next job's profile.
func (g *Generator) Next() Profile {
	k := g.kinds[g.rng.IntN(len(g.kinds))]
	p, _ := ProfileFor(k) // kinds validated at construction
	return p
}

// GeneratorState is the serializable state of a Generator: the exact
// position of its arrival stream. The kind set is construction-time input.
type GeneratorState struct {
	RNG []byte `json:"rng"`
}

// Snapshot captures the generator's stream position.
func (g *Generator) Snapshot() GeneratorState {
	b, _ := g.rng.MarshalBinary() // never fails for PCG sources
	return GeneratorState{RNG: b}
}

// Restore rewinds the generator's stream to a snapshot position.
func (g *Generator) Restore(st GeneratorState) error {
	if len(st.RNG) == 0 {
		return fmt.Errorf("workload: restore: empty rng state")
	}
	return g.rng.UnmarshalBinary(st.RNG)
}

// Batch draws n jobs.
func (g *Generator) Batch(n int) []Profile {
	out := make([]Profile, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, g.Next())
	}
	return out
}
