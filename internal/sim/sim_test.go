package sim

import (
	"testing"
	"time"

	"github.com/green-dc/baat/internal/core"
	"github.com/green-dc/baat/internal/solar"
)

func newSim(t *testing.T, policy string, mutate ...func(*Config)) *Simulator {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Policy = core.PolicySpec{Name: policy}
	for _, m := range mutate {
		m(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"no nodes", func(c *Config) { c.Nodes = 0 }},
		{"bad node", func(c *Config) { c.Node.TableCapacity = 0 }},
		{"bad solar", func(c *Config) { c.Solar.Scale = 0 }},
		{"zero tick", func(c *Config) { c.Tick = 0 }},
		{"control below tick", func(c *Config) { c.ControlPeriod = time.Second; c.Tick = time.Minute }},
		{"window inverted", func(c *Config) { c.WindowEnd = c.WindowStart - time.Hour }},
		{"negative jobs", func(c *Config) { c.JobsPerDay = -1 }},
		{"huge sigma", func(c *Config) { c.ManufacturingSigma = 0.9 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tt.mutate(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Error("Validate() = nil, want error")
			}
		})
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("zero config accepted")
	}
	cfg := DefaultConfig()
	cfg.Policy = core.PolicySpec{Name: "no-such-policy"}
	if _, err := New(cfg); err == nil {
		t.Error("unknown policy accepted")
	}
	cfg = DefaultConfig()
	cfg.Policy = core.PolicySpec{Name: "baat", Options: map[string]string{"floor": "1.5"}}
	if _, err := New(cfg); err == nil {
		t.Error("out-of-range policy option accepted")
	}
}

func TestRunDayProducesThroughput(t *testing.T) {
	s := newSim(t, "ebuff")
	ds, err := s.RunDay(solar.Sunny)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Throughput <= 0 {
		t.Error("sunny day produced no throughput")
	}
	if ds.SolarEnergy <= 0 {
		t.Error("no solar energy consumed")
	}
	if ds.Day != 1 {
		t.Errorf("day = %d, want 1", ds.Day)
	}
	if s.Clock() != 24*time.Hour {
		t.Errorf("clock = %v, want 24h", s.Clock())
	}
}

func TestWorseWeatherLessThroughputMoreBatteryUse(t *testing.T) {
	sunny := newSim(t, "ebuff")
	rainy := newSim(t, "ebuff")
	dsSunny, err := sunny.RunDay(solar.Sunny)
	if err != nil {
		t.Fatal(err)
	}
	dsRainy, err := rainy.RunDay(solar.Rainy)
	if err != nil {
		t.Fatal(err)
	}
	if dsRainy.SolarEnergy >= dsSunny.SolarEnergy {
		t.Errorf("rainy solar %v not below sunny %v", dsRainy.SolarEnergy, dsSunny.SolarEnergy)
	}
	// Rainy days must lean on batteries: NAT higher on the worst node
	// (Fig 12's observation).
	rs, err := rainy.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	ss, err := sunny.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	worstRainy, _ := rs.WorstNode()
	worstSunny, _ := ss.WorstNode()
	if worstRainy.Metrics.NAT <= worstSunny.Metrics.NAT {
		t.Errorf("rainy NAT %v not above sunny NAT %v", worstRainy.Metrics.NAT, worstSunny.Metrics.NAT)
	}
}

func TestRunCollectsResult(t *testing.T) {
	s := newSim(t, "baat")
	res, err := s.Run([]solar.Weather{solar.Sunny, solar.Cloudy})
	if err != nil {
		t.Fatal(err)
	}
	if res.Policy != "BAAT" {
		t.Errorf("policy = %q, want BAAT", res.Policy)
	}
	if len(res.Days) != 2 {
		t.Fatalf("days = %d, want 2", len(res.Days))
	}
	if len(res.Nodes) != 6 {
		t.Fatalf("nodes = %d, want 6", len(res.Nodes))
	}
	if res.SoCHistogram.Total() == 0 {
		t.Error("no SoC samples collected")
	}
	if res.Throughput != res.Days[0].Throughput+res.Days[1].Throughput {
		t.Error("total throughput mismatch")
	}
	if _, ok := res.WorstNode(); !ok {
		t.Error("WorstNode failed on populated result")
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	a := newSim(t, "baat")
	b := newSim(t, "baat")
	ra, err := a.Run([]solar.Weather{solar.Cloudy})
	if err != nil {
		t.Fatal(err)
	}
	rb, err := b.Run([]solar.Weather{solar.Cloudy})
	if err != nil {
		t.Fatal(err)
	}
	if ra.Throughput != rb.Throughput {
		t.Errorf("same seed diverged: %v vs %v", ra.Throughput, rb.Throughput)
	}
	for i := range ra.Nodes {
		if ra.Nodes[i].Metrics.NAT != rb.Nodes[i].Metrics.NAT {
			t.Errorf("node %d NAT diverged", i)
		}
	}
}

func TestSeriesRecording(t *testing.T) {
	s := newSim(t, "ebuff", func(c *Config) { c.RecordSeries = true })
	res, err := s.Run([]solar.Weather{solar.Cloudy})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) == 0 {
		t.Fatal("no series recorded")
	}
	// Six nodes per control period.
	if len(res.Series)%6 != 0 {
		t.Errorf("series length %d not a multiple of fleet size", len(res.Series))
	}
}

func TestRunUntilEndOfLife(t *testing.T) {
	s := newSim(t, "ebuff", func(c *Config) {
		c.Node.AgingConfig.AccelFactor = 400 // compress months into days
	})
	res, err := s.RunUntilEndOfLife(solar.Location{SunshineFraction: 0.3}, 60)
	if err != nil {
		t.Fatal(err)
	}
	if res.FleetLifetime == 0 {
		t.Fatalf("no battery reached end-of-life in 60 accelerated days (health of worst node: %v)",
			worstHealth(res))
	}
	if len(res.Days) == 0 {
		t.Error("no days recorded")
	}
}

func worstHealth(res *Result) float64 {
	w := 1.0
	for _, n := range res.Nodes {
		if n.Health < w {
			w = n.Health
		}
	}
	return w
}

func TestRunUntilEndOfLifeValidation(t *testing.T) {
	s := newSim(t, "ebuff")
	if _, err := s.RunUntilEndOfLife(solar.Location{SunshineFraction: 2}, 10); err == nil {
		t.Error("invalid location accepted")
	}
	if _, err := s.RunUntilEndOfLife(solar.Location{SunshineFraction: 0.5}, 0); err == nil {
		t.Error("zero maxDays accepted")
	}
}

func TestManufacturingVariationCreatesSpread(t *testing.T) {
	s := newSim(t, "ebuff", func(c *Config) { c.ManufacturingSigma = 0.1 })
	res, err := s.Run([]solar.Weather{solar.Cloudy, solar.Cloudy})
	if err != nil {
		t.Fatal(err)
	}
	// With per-unit variation and shared load, NAT should differ across
	// nodes.
	first := res.Nodes[0].Metrics.NAT
	var spread bool
	for _, n := range res.Nodes[1:] {
		if n.Metrics.NAT != first {
			spread = true
			break
		}
	}
	if !spread {
		t.Error("no aging variation across nodes")
	}
}

func TestNodesAccessor(t *testing.T) {
	s := newSim(t, "ebuff")
	nodes := s.Nodes()
	if len(nodes) != 6 {
		t.Fatalf("Nodes() = %d, want 6", len(nodes))
	}
	// Mutating the returned slice must not affect the simulator.
	nodes[0] = nil
	if s.Nodes()[0] == nil {
		t.Error("Nodes() exposes internal slice")
	}
}
