package aging

// Property tests over the tracker and model snapshot/restore pairs:
// Restore(Snapshot()) is the identity from any reachable state, and NaN,
// infinite, negative, or internally inconsistent snapshots are rejected
// without touching the target.

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"github.com/green-dc/baat/internal/units"
)

// observeWalk feeds the same pseudo-random sample sequence to a tracker
// and/or model, exercising every accumulator.
func observeWalk(t *testing.T, raw []int16, tr *Tracker, m *Model) {
	t.Helper()
	for _, r := range raw {
		s := Sample{
			Dt:          time.Minute,
			Current:     units.Ampere(float64(r%40) / 2),
			SoC:         math.Abs(float64(r%100)) / 100,
			Temperature: units.Celsius(20 + math.Abs(float64(r%25))),
		}
		if tr != nil {
			if err := tr.Observe(s); err != nil {
				t.Fatal(err)
			}
		}
		if m != nil {
			if err := m.Observe(s); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestQuickTrackerSnapshotRestoreIdentity: a tracker restored from a
// snapshot reports the snapshot exactly, regardless of what it has
// observed in between.
func TestQuickTrackerSnapshotRestoreIdentity(t *testing.T) {
	prop := func(walk, detour []int16) bool {
		tr, err := NewTracker(7000)
		if err != nil {
			t.Fatal(err)
		}
		observeWalk(t, walk, tr, nil)
		want := tr.Snapshot()
		observeWalk(t, detour, tr, nil)
		if err := tr.Restore(want); err != nil {
			t.Logf("restore of own snapshot rejected: %v", err)
			return false
		}
		return tr.Snapshot() == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickModelSnapshotRestoreIdentity: same contract for the damage
// model.
func TestQuickModelSnapshotRestoreIdentity(t *testing.T) {
	prop := func(walk, detour []int16) bool {
		m, err := NewModel(DefaultModelConfig(), 70)
		if err != nil {
			t.Fatal(err)
		}
		observeWalk(t, walk, nil, m)
		want := m.Snapshot()
		observeWalk(t, detour, nil, m)
		if err := m.Restore(want); err != nil {
			t.Logf("restore of own snapshot rejected: %v", err)
			return false
		}
		return m.Snapshot() == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickTrackerRestoreRejectsCorrupt: every accumulator rejects NaN,
// infinities, negatives, and sub-durations exceeding the total.
func TestQuickTrackerRestoreRejectsCorrupt(t *testing.T) {
	corruptions := []func(*TrackerState){
		func(st *TrackerState) { st.AhOut = math.NaN() },
		func(st *TrackerState) { st.AhIn = math.Inf(1) },
		func(st *TrackerState) { st.AhByRange[2] = -1 },
		func(st *TrackerState) { st.Total = -time.Second },
		func(st *TrackerState) { st.Deep = st.Total + time.Hour },
		func(st *TrackerState) { st.LowTime = st.Total + time.Hour },
		func(st *TrackerState) { st.DRSum = math.NaN() },
		func(st *TrackerState) { st.DRPeak = -0.5 },
	}
	prop := func(walk []int16, which uint8) bool {
		tr, err := NewTracker(7000)
		if err != nil {
			t.Fatal(err)
		}
		observeWalk(t, walk, tr, nil)
		before := tr.Snapshot()
		st := before
		corruptions[int(which)%len(corruptions)](&st)
		if err := tr.Restore(st); err == nil {
			return false
		}
		return tr.Snapshot() == before
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickModelRestoreRejectsCorrupt: damage is cumulative and
// irreversible; no corrupted field may slip through.
func TestQuickModelRestoreRejectsCorrupt(t *testing.T) {
	corruptions := []func(*ModelState){
		func(st *ModelState) { st.CapFade = math.NaN() },
		func(st *ModelState) { st.ResGrowth = math.Inf(1) },
		func(st *ModelState) { st.EffLoss = -0.1 },
		func(st *ModelState) { st.SinceFull = -1 },
		func(st *ModelState) { st.ByMechanism[0] = math.NaN() },
		func(st *ModelState) { st.ByMechanism[NumMechanisms-1] = -2 },
	}
	prop := func(walk []int16, which uint8) bool {
		m, err := NewModel(DefaultModelConfig(), 70)
		if err != nil {
			t.Fatal(err)
		}
		observeWalk(t, walk, nil, m)
		before := m.Snapshot()
		st := before
		corruptions[int(which)%len(corruptions)](&st)
		if err := m.Restore(st); err == nil {
			return false
		}
		return m.Snapshot() == before
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
