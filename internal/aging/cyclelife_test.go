package aging

import (
	"testing"
	"testing/quick"

	"github.com/green-dc/baat/internal/units"
)

func TestCycleLifeDecreasesWithDoD(t *testing.T) {
	for _, m := range Manufacturers() {
		prev := 0.0
		for i, dod := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
			c, err := CycleLife(m, dod)
			if err != nil {
				t.Fatalf("CycleLife(%v, %v): %v", m, dod, err)
			}
			if i > 0 && c >= prev {
				t.Errorf("%v: cycle life at DoD %v (%v) not below previous (%v)", m, dod, c, prev)
			}
			prev = c
		}
	}
}

func TestCycleLifeHalvesAboveFiftyPercentDoD(t *testing.T) {
	// Fig 10: "cycle life decreases by 50% if frequently discharged at a
	// DoD above 50%". Compare the shallow half of the curve (25 %) to the
	// deep half (~2× depth): the ratio should be near 2.
	for _, m := range Manufacturers() {
		shallow, err := CycleLife(m, 0.25)
		if err != nil {
			t.Fatal(err)
		}
		deep, err := CycleLife(m, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		ratio := shallow / deep
		if ratio < 1.7 || ratio > 2.6 {
			t.Errorf("%v: cycle-life ratio 25%%/50%% DoD = %.2f, want ≈2", m, ratio)
		}
	}
}

func TestCycleLifeVendorOrdering(t *testing.T) {
	// The premium vendor outlasts the budget vendor at every depth.
	for _, dod := range []float64{0.2, 0.5, 0.8} {
		h, _ := CycleLife(Hoppecke, dod)
		u, _ := CycleLife(UPG, dod)
		if h <= u {
			t.Errorf("Hoppecke (%v) not above UPG (%v) at DoD %v", h, u, dod)
		}
	}
}

func TestCycleLifeErrors(t *testing.T) {
	if _, err := CycleLife(Manufacturer(99), 0.5); err == nil {
		t.Error("unknown manufacturer accepted")
	}
	for _, dod := range []float64{0, -0.5, 1.5} {
		if _, err := CycleLife(Trojan, dod); err == nil {
			t.Errorf("DoD %v accepted", dod)
		}
	}
}

func TestManufacturerString(t *testing.T) {
	want := map[Manufacturer]string{Hoppecke: "Hoppecke", Trojan: "Trojan", UPG: "UPG"}
	for m, s := range want {
		if m.String() != s {
			t.Errorf("String() = %q, want %q", m.String(), s)
		}
	}
	if Manufacturer(7).String() == "" {
		t.Error("unknown manufacturer should render")
	}
}

func TestLifetimeThroughputShallowBeatsDeep(t *testing.T) {
	// The total Ah cyclable is higher at shallow depth — the non-linearity
	// planned aging exploits (§IV-D).
	shallow, err := LifetimeThroughputAt(Trojan, 35, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	deep, err := LifetimeThroughputAt(Trojan, 35, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if shallow <= deep {
		t.Errorf("lifetime throughput at 20%% DoD (%v) not above 80%% DoD (%v)", shallow, deep)
	}
}

func TestLifetimeThroughputPositiveProperty(t *testing.T) {
	f := func(raw uint8) bool {
		dod := units.Clamp(float64(raw)/255, 0.01, 1)
		for _, m := range Manufacturers() {
			q, err := LifetimeThroughputAt(m, 35, dod)
			if err != nil || q <= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLifetimeThroughputError(t *testing.T) {
	if _, err := LifetimeThroughputAt(Manufacturer(99), 35, 0.5); err == nil {
		t.Error("unknown manufacturer accepted")
	}
}
