package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"
	"time"

	"github.com/green-dc/baat/internal/node"
	"github.com/green-dc/baat/internal/rng"
	"github.com/green-dc/baat/internal/units"
)

// defaultFleet builds an n-node fleet of default nodes.
func defaultFleet(t *testing.T, n, shardSize int) *Fleet {
	t.Helper()
	f, err := New(Config{
		Nodes:     n,
		ShardSize: shardSize,
		Seed:      1,
		Node:      func(int) (node.Config, error) { return node.DefaultConfig(), nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// TestFleetMatchesNodeNew pins the view contract: a node initialized into
// the fleet's slabs is indistinguishable — same ID, same serialized state
// — from one built by node.New, and stepping it produces identical state.
func TestFleetMatchesNodeNew(t *testing.T) {
	f := defaultFleet(t, 3, 0)
	for i, view := range f.Views() {
		ref, err := node.New(fmt.Sprintf("node-%d", i), node.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := view.StepOffline(time.Minute, units.Watt(50)); err != nil {
			t.Fatal(err)
		}
		if _, err := ref.StepOffline(time.Minute, units.Watt(50)); err != nil {
			t.Fatal(err)
		}
		got, err := json.Marshal(view.Snapshot())
		if err != nil {
			t.Fatal(err)
		}
		want, err := json.Marshal(ref.Snapshot())
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("node %d: slab-initialized state diverged from node.New:\n%s\nvs\n%s", i, got, want)
		}
	}
}

// TestPartition pins shard geometry: full shards of the configured size,
// the remainder in the last shard, ascending contiguous coverage.
func TestPartition(t *testing.T) {
	tests := []struct {
		nodes, size int
		wantShards  int
		wantLast    int // size of the last shard
	}{
		{nodes: 6, size: 0, wantShards: 1, wantLast: 6},
		{nodes: 64, size: 0, wantShards: 1, wantLast: 64},
		{nodes: 100, size: 64, wantShards: 2, wantLast: 36},
		{nodes: 128, size: 64, wantShards: 2, wantLast: 64},
		{nodes: 12, size: 3, wantShards: 4, wantLast: 3},
		{nodes: 13, size: 3, wantShards: 5, wantLast: 1},
	}
	for _, tt := range tests {
		shards := partition(tt.nodes, tt.size, 1)
		if len(shards) != tt.wantShards {
			t.Errorf("partition(%d, %d): %d shards, want %d", tt.nodes, tt.size, len(shards), tt.wantShards)
			continue
		}
		next := 0
		for i, sh := range shards {
			if sh.Index != i || sh.Lo != next || sh.Hi <= sh.Lo {
				t.Errorf("partition(%d, %d): shard %d = [%d, %d), want contiguous from %d",
					tt.nodes, tt.size, i, sh.Lo, sh.Hi, next)
			}
			next = sh.Hi
			if sh.Rng == nil {
				t.Errorf("partition(%d, %d): shard %d has no stream", tt.nodes, tt.size, i)
			}
		}
		if next != tt.nodes {
			t.Errorf("partition(%d, %d): covers %d nodes, want %d", tt.nodes, tt.size, next, tt.nodes)
		}
		if last := shards[len(shards)-1].Len(); last != tt.wantLast {
			t.Errorf("partition(%d, %d): last shard holds %d, want %d", tt.nodes, tt.size, last, tt.wantLast)
		}
	}
}

// TestShardStreams pins the substream contract: shard i's stream depends
// only on (seed, i) — rebuilding the partition reproduces it — and
// distinct shards draw distinct sequences.
func TestShardStreams(t *testing.T) {
	a := partition(256, 64, 42)
	b := partition(256, 64, 42)
	for i := range a {
		if x, y := a[i].Rng.Uint64(), b[i].Rng.Uint64(); x != y {
			t.Errorf("shard %d: stream not reproducible (%d vs %d)", i, x, y)
		}
	}
	fresh := partition(256, 64, 42)
	draws := make(map[uint64]int)
	for i, sh := range fresh {
		v := sh.Rng.Uint64()
		if prev, dup := draws[v]; dup {
			t.Errorf("shards %d and %d drew the same first value %d", prev, i, v)
		}
		draws[v] = i
	}
	if rng.Shard(3) == rng.Shard(30) {
		t.Error("distinct shard indices produced the same stream name")
	}
}

// TestFleetConfigErrors covers the constructor's validation surface.
func TestFleetConfigErrors(t *testing.T) {
	bad := []Config{
		{Nodes: 0, Node: func(int) (node.Config, error) { return node.DefaultConfig(), nil }},
		{Nodes: 4, ShardSize: -1, Node: func(int) (node.Config, error) { return node.DefaultConfig(), nil }},
		{Nodes: 4},
		{Nodes: 4, Node: func(int) (node.Config, error) { return node.Config{}, nil }},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d: New() accepted an invalid configuration", i)
		}
	}
}

// TestFleetHeterogeneousTables exercises the private-rows fallback: a
// node whose table capacity differs from the slab stride still gets a
// working history log.
func TestFleetHeterogeneousTables(t *testing.T) {
	f, err := New(Config{
		Nodes: 3,
		Seed:  1,
		Node: func(i int) (node.Config, error) {
			cfg := node.DefaultConfig()
			if i == 1 {
				cfg.TableCapacity = 8
			}
			return cfg, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, view := range f.Views() {
		if _, err := view.StepOffline(time.Minute, 0); err != nil {
			t.Fatal(err)
		}
		if got := view.PowerTable().Len(); got != 1 {
			t.Errorf("node %d: table holds %d rows after one step, want 1", i, got)
		}
	}
}
