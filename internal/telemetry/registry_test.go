package telemetry

import (
	"math"
	"sync"
	"testing"
)

func TestCounterConcurrent(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("baat_test_total")
	const workers, per = 16, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Errorf("counter = %d, want %d", got, workers*per)
	}
}

func TestCounterMonotone(t *testing.T) {
	var c Counter
	c.Add(5)
	c.Add(-3)
	c.Add(0)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5 (non-positive deltas ignored)", got)
	}
}

func TestGaugeConcurrentAdd(t *testing.T) {
	reg := NewRegistry()
	g := reg.Gauge("baat_test_gauge")
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				g.Add(0.5)
			}
		}()
	}
	wg.Wait()
	want := float64(workers*per) * 0.5
	if got := g.Value(); math.Abs(got-want) > 1e-6 {
		t.Errorf("gauge = %v, want %v", got, want)
	}
	g.Set(-2)
	if got := g.Value(); got != -2 {
		t.Errorf("gauge after Set = %v, want -2", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("baat_test_hist", []float64{1, 2, 3})
	for _, v := range []float64{0.5, 1, 1.5, 2.5, 99} {
		h.Observe(v)
	}
	s := h.snapshot()
	// Bounds are inclusive upper edges: 0.5 and 1 land in bucket 0, 1.5 in
	// bucket 1, 2.5 in bucket 2, 99 in the +Inf bucket.
	wantCounts := []int64{2, 1, 1, 1}
	for i, want := range wantCounts {
		if s.Counts[i] != want {
			t.Errorf("bucket %d = %d, want %d", i, s.Counts[i], want)
		}
	}
	if s.Count != 5 {
		t.Errorf("count = %d, want 5", s.Count)
	}
	if math.Abs(s.Sum-104.5) > 1e-9 {
		t.Errorf("sum = %v, want 104.5", s.Sum)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("baat_test_hist", LinearBounds(0, 1, 7))
	const workers, per = 16, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			v := float64(w) / workers
			for i := 0; i < per; i++ {
				h.Observe(v)
			}
		}(w)
	}
	wg.Wait()
	if got := h.Count(); got != workers*per {
		t.Errorf("count = %d, want %d", got, workers*per)
	}
	var total int64
	for _, c := range h.snapshot().Counts {
		total += c
	}
	if total != workers*per {
		t.Errorf("bucket totals = %d, want %d", total, workers*per)
	}
}

func TestLinearBounds(t *testing.T) {
	b := LinearBounds(0, 1, 7)
	if len(b) != 7 {
		t.Fatalf("len = %d, want 7", len(b))
	}
	if math.Abs(b[6]-1) > 1e-12 {
		t.Errorf("last bound = %v, want 1", b[6])
	}
	if LinearBounds(1, 0, 3) != nil || LinearBounds(0, 1, 0) != nil {
		t.Error("degenerate bounds should be nil")
	}
}

func TestGetOrCreateIdentity(t *testing.T) {
	reg := NewRegistry()
	if reg.Counter("a") != reg.Counter("a") {
		t.Error("same name returned distinct counters")
	}
	if reg.Histogram("h", []float64{1}) != reg.Histogram("h", []float64{5, 6}) {
		t.Error("histogram re-registration should return the first instance")
	}
}

func TestSanitizeName(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("bad name-1.x").Inc()
	snap := reg.snapshot()
	if snap.Counters["bad_name_1_x"] != 1 {
		t.Errorf("sanitized counter missing: %v", snap.Counters)
	}
	if got := sanitizeName("9lead"); got != "_lead" {
		t.Errorf("sanitizeName(9lead) = %q, want _lead", got)
	}
	if got := sanitizeName(""); got != "_" {
		t.Errorf("sanitizeName(\"\") = %q, want _", got)
	}
}

func TestConcurrentRegistration(t *testing.T) {
	reg := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				reg.Counter("shared_total").Inc()
				reg.Gauge("shared_gauge").Set(1)
				reg.Histogram("shared_hist", []float64{1, 2}).Observe(1)
			}
		}()
	}
	wg.Wait()
	if got := reg.snapshot().Counters["shared_total"]; got != 8*200 {
		t.Errorf("shared counter = %d, want %d", got, 8*200)
	}
}
