package core

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"testing"
	"time"

	"github.com/green-dc/baat/internal/node"
	"github.com/green-dc/baat/internal/vm"
	"github.com/green-dc/baat/internal/workload"
)

func newFleet(t *testing.T, n int) []*node.Node {
	t.Helper()
	nodes := make([]*node.Node, 0, n)
	for i := 0; i < n; i++ {
		nd, err := node.New(string(rune('a'+i)), node.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, nd)
	}
	return nodes
}

func newCtx(t *testing.T, n int) *Context {
	t.Helper()
	return &Context{Nodes: newFleet(t, n), Rng: rand.New(rand.NewPCG(uint64(1), 0))}
}

// build constructs a policy through the public registry, the same path
// every production caller uses.
func build(t *testing.T, name string, opts map[string]string) Policy {
	t.Helper()
	p, err := Build(PolicySpec{Name: name, Options: opts})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func newVM(t *testing.T, id string, k workload.Kind) *vm.VM {
	t.Helper()
	p, err := workload.ProfileFor(k)
	if err != nil {
		t.Fatal(err)
	}
	v, err := vm.New(id, p)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// drain discharges a node's battery to roughly the target SoC and feeds the
// usage into its aging metrics.
func drain(t *testing.T, n *node.Node, target float64) {
	t.Helper()
	v := newVM(t, n.ID()+"-drain", workload.SoftwareTesting)
	if err := n.Server().Attach(v); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 24*60 && n.Battery().SoC() > target; i++ {
		if _, err := n.Step(time.Minute, 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := n.Server().Detach(v.ID()); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"bad trigger", func(c *Config) { c.Slowdown.TriggerSoC = 0 }},
		{"bad ddt", func(c *Config) { c.Slowdown.DDTThreshold = 2 }},
		{"bad reserve", func(c *Config) { c.Slowdown.ReserveTime = 0 }},
		{"bad hysteresis", func(c *Config) { c.Slowdown.Hysteresis = 1 }},
		{"bad migration time", func(c *Config) { c.MigrationTime = 0 }},
		{"bad planned life", func(c *Config) { c.Planned = PlannedAgingConfig{Enabled: true, ServiceLife: 0, CyclesPerDay: 1} }},
		{"bad planned cycles", func(c *Config) {
			c.Planned = PlannedAgingConfig{Enabled: true, ServiceLife: time.Hour, CyclesPerDay: 0}
		}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tt.mutate(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Error("Validate() = nil, want error")
			}
		})
	}
	// Disabled planned aging needs no parameters.
	cfg := DefaultConfig()
	cfg.Planned = PlannedAgingConfig{Enabled: false}
	if err := cfg.Validate(); err != nil {
		t.Errorf("disabled planned aging rejected: %v", err)
	}
}

func TestBuildAllRegistered(t *testing.T) {
	for _, info := range Registered() {
		p, err := Build(PolicySpec{Name: info.Name})
		if err != nil {
			t.Fatalf("Build(%q): %v", info.Name, err)
		}
		if p.Name() != info.Display {
			t.Errorf("%s: Name() = %q, want display name %q", info.Name, p.Name(), info.Display)
		}
	}
	if _, err := Build(PolicySpec{Name: "overclock"}); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestEBuffPlacesOnLeastLoaded(t *testing.T) {
	ctx := newCtx(t, 3)
	p := build(t, "ebuff", nil)
	// Pre-load node 0 and 1.
	if err := ctx.Nodes[0].Server().Attach(newVM(t, "x", workload.WebServing)); err != nil {
		t.Fatal(err)
	}
	if err := ctx.Nodes[1].Server().Attach(newVM(t, "y", workload.WordCount)); err != nil {
		t.Fatal(err)
	}
	got, err := p.PlaceVM(ctx, newVM(t, "new", workload.KMeans))
	if err != nil {
		t.Fatal(err)
	}
	if got != ctx.Nodes[2] {
		t.Errorf("placed on %s, want empty node c", got.ID())
	}
}

func TestPlaceVMNoCapacity(t *testing.T) {
	ctx := newCtx(t, 2)
	for i, n := range ctx.Nodes {
		for j := 0; j < 2; j++ { // two 0.95-peak VMs fill the 2.0 capacity
			id := fmt.Sprintf("p%d-%d", i, j)
			if err := n.Server().Attach(newVM(t, id, workload.SoftwareTesting)); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, info := range Registered() {
		p := build(t, info.Name, nil)
		if _, err := p.PlaceVM(ctx, newVM(t, "big-"+info.Name, workload.SoftwareTesting)); !errors.Is(err, ErrNoCapacity) {
			t.Errorf("%v: PlaceVM error = %v, want ErrNoCapacity", info.Name, err)
		}
	}
}

func TestBAATPlacesOnSlowestAgingNode(t *testing.T) {
	ctx := newCtx(t, 3)
	// Node 0 is heavily aged (deep-discharged, never recharged).
	drain(t, ctx.Nodes[0], 0.15)
	p := build(t, "baat", nil)
	got, err := p.PlaceVM(ctx, newVM(t, "new", workload.SoftwareTesting))
	if err != nil {
		t.Fatal(err)
	}
	if got == ctx.Nodes[0] {
		t.Error("BAAT placed a heavy workload on the most-aged battery")
	}
}

func TestBAATHAvoidsDeepDischargedNode(t *testing.T) {
	ctx := newCtx(t, 3)
	// Node a has spent real time below 40 % SoC; its DDT is visible.
	drain(t, ctx.Nodes[0], 0.2)
	p := build(t, "baat-h", nil)
	got, err := p.PlaceVM(ctx, newVM(t, "new", workload.WordCount))
	if err != nil {
		t.Fatal(err)
	}
	if got == ctx.Nodes[0] {
		t.Error("BAAT-h placed on the deep-discharged node")
	}
}

func TestMigrateVM(t *testing.T) {
	nodes := newFleet(t, 2)
	v := newVM(t, "v1", workload.KMeans)
	if err := nodes[0].Server().Attach(v); err != nil {
		t.Fatal(err)
	}
	if err := MigrateVM(nodes[0], nodes[1], "v1", time.Minute); err != nil {
		t.Fatal(err)
	}
	if len(nodes[0].Server().VMs()) != 0 {
		t.Error("VM still on source")
	}
	if len(nodes[1].Server().VMs()) != 1 {
		t.Error("VM not on destination")
	}
	if v.State() != vm.Migrating {
		t.Errorf("VM state = %v, want migrating", v.State())
	}
}

func TestMigrateVMErrors(t *testing.T) {
	nodes := newFleet(t, 2)
	v := newVM(t, "v1", workload.SoftwareTesting)
	if err := nodes[0].Server().Attach(v); err != nil {
		t.Fatal(err)
	}
	if err := MigrateVM(nil, nodes[1], "v1", time.Minute); err == nil {
		t.Error("nil source accepted")
	}
	if err := MigrateVM(nodes[0], nodes[0], "v1", time.Minute); err == nil {
		t.Error("self-migration accepted")
	}
	if err := MigrateVM(nodes[0], nodes[1], "missing", time.Minute); err == nil {
		t.Error("missing VM accepted")
	}
	// Destination full: must roll back.
	for j := 0; j < 2; j++ {
		if err := nodes[1].Server().Attach(newVM(t, fmt.Sprintf("blocker-%d", j), workload.SoftwareTesting)); err != nil {
			t.Fatal(err)
		}
	}
	if err := MigrateVM(nodes[0], nodes[1], "v1", time.Minute); err == nil {
		t.Error("migration to full node accepted")
	}
	if len(nodes[0].Server().VMs()) != 1 {
		t.Error("rollback failed: VM lost from source")
	}
	if v.State() == vm.Migrating {
		t.Error("rollback left VM migrating")
	}
}

func TestSlowdownTriggersOnLowSoCHighDR(t *testing.T) {
	nodes := newFleet(t, 1)
	n := nodes[0]
	// Drive the battery deep and hot: DDT and DR accumulate.
	v := newVM(t, "v", workload.SoftwareTesting)
	if err := n.Server().Attach(v); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8*60 && n.Battery().SoC() > 0.2; i++ {
		if _, err := n.Step(time.Minute, 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	cfg := DefaultSlowdownConfig()
	if !slowdownNeeded(n, cfg) {
		t.Fatalf("slowdown not triggered at SoC %v with DDT %v", n.Battery().SoC(), n.Metrics().DDT)
	}
	if recovered(n, cfg) {
		t.Error("deeply discharged node reported recovered")
	}
}

func TestSlowdownNotTriggeredWhenHealthy(t *testing.T) {
	nodes := newFleet(t, 1)
	if slowdownNeeded(nodes[0], DefaultSlowdownConfig()) {
		t.Error("slowdown triggered on a full battery")
	}
	if !recovered(nodes[0], DefaultSlowdownConfig()) {
		t.Error("full battery not recovered")
	}
}

func TestBAATSControlCapsFrequency(t *testing.T) {
	ctx := newCtx(t, 1)
	n := ctx.Nodes[0]
	drain(t, n, 0.2)
	p := build(t, "baat-s", nil)
	before := n.Server().FrequencyIndex()
	if err := p.Control(ctx); err != nil {
		t.Fatal(err)
	}
	if n.Server().FrequencyIndex() >= before {
		t.Error("BAAT-s did not step frequency down on an at-risk battery")
	}
}

func TestBAATSControlRestoresFrequency(t *testing.T) {
	ctx := newCtx(t, 1)
	n := ctx.Nodes[0]
	if err := n.Server().SetFrequencyIndex(0); err != nil {
		t.Fatal(err)
	}
	p := build(t, "baat-s", nil)
	if err := p.Control(ctx); err != nil {
		t.Fatal(err)
	}
	if n.Server().FrequencyIndex() != 1 {
		t.Errorf("frequency index = %d, want 1 (one step back up)", n.Server().FrequencyIndex())
	}
}

func TestEBuffControlRestoresFullSpeed(t *testing.T) {
	ctx := newCtx(t, 2)
	if err := ctx.Nodes[0].Server().SetFrequencyIndex(0); err != nil {
		t.Fatal(err)
	}
	p := build(t, "ebuff", nil)
	if err := p.Control(ctx); err != nil {
		t.Fatal(err)
	}
	if ctx.Nodes[0].Server().Frequency() != 1.0 {
		t.Error("e-Buff left a server throttled")
	}
}

func TestBAATControlMigratesBeforeThrottling(t *testing.T) {
	ctx := newCtx(t, 2)
	src := ctx.Nodes[0]
	drain(t, src, 0.2)
	v := newVM(t, "v", workload.KMeans)
	if err := src.Server().Attach(v); err != nil {
		t.Fatal(err)
	}
	p := build(t, "baat", nil)
	if err := p.Control(ctx); err != nil {
		t.Fatal(err)
	}
	if len(ctx.Nodes[1].Server().VMs()) != 1 {
		t.Fatal("BAAT did not migrate the VM off the at-risk node")
	}
	if src.Server().FrequencyIndex() != len(src.Server().Spec().FreqLevels)-1 {
		t.Error("BAAT throttled despite successful migration")
	}
}

func TestBAATControlThrottlesWhenMigrationBlocked(t *testing.T) {
	ctx := newCtx(t, 2)
	src := ctx.Nodes[0]
	drain(t, src, 0.2)
	// Block the only other node with full-size VMs.
	for j := 0; j < 2; j++ {
		if err := ctx.Nodes[1].Server().Attach(newVM(t, fmt.Sprintf("blocker-%d", j), workload.SoftwareTesting)); err != nil {
			t.Fatal(err)
		}
	}
	v := newVM(t, "v", workload.SoftwareTesting)
	if err := src.Server().Attach(v); err != nil {
		t.Fatal(err)
	}
	p := build(t, "baat", nil)
	before := src.Server().FrequencyIndex()
	if err := p.Control(ctx); err != nil {
		t.Fatal(err)
	}
	if len(src.Server().VMs()) != 1 {
		t.Fatal("VM moved despite blocked destination")
	}
	if src.Server().FrequencyIndex() >= before {
		t.Error("BAAT did not fall back to DVFS when migration was blocked")
	}
}

func TestBAATHControlMigratesOffHighNATNode(t *testing.T) {
	ctx := newCtx(t, 3)
	src := ctx.Nodes[0]
	drain(t, src, 0.4) // builds NAT well above the untouched fleet
	v := newVM(t, "v", workload.WordCount)
	if err := src.Server().Attach(v); err != nil {
		t.Fatal(err)
	}
	p := build(t, "baat-h", nil)
	if err := p.Control(ctx); err != nil {
		t.Fatal(err)
	}
	if len(src.Server().VMs()) != 0 {
		t.Error("BAAT-h did not migrate off the fast-aging node")
	}
}

func TestBAATHControlNoopOnBalancedFleet(t *testing.T) {
	ctx := newCtx(t, 3)
	p := build(t, "baat-h", nil)
	if err := p.Control(ctx); err != nil {
		t.Fatal(err)
	}
	// Single-node fleets are a no-op too.
	single := &Context{Nodes: ctx.Nodes[:1], Rng: ctx.Rng}
	if err := p.Control(single); err != nil {
		t.Fatal(err)
	}
}

func TestPlannedAgingAdjustsFloorsAndTrigger(t *testing.T) {
	ctx := newCtx(t, 2)
	// 90 days (3 months) to DC end-of-life.
	p := build(t, "baat", map[string]string{"planned-months": "3"})
	if err := p.Control(ctx); err != nil {
		t.Fatal(err)
	}
	// 7000 Ah over 90 cycles = 77.8 Ah/cycle, clamped to 0.9 DoD: the
	// plan is aggressive, so floors drop to the protective minimum.
	for _, n := range ctx.Nodes {
		if got := n.SoCFloor(); got > 0.11 {
			t.Errorf("node %s floor = %v, want aggressive (≤0.11)", n.ID(), got)
		}
	}
	// A long service life (3000 days) spends the budget slowly:
	// conservative plan.
	p2 := build(t, "baat", map[string]string{"planned-months": "100"})
	if err := p2.Control(ctx); err != nil {
		t.Fatal(err)
	}
	for _, n := range ctx.Nodes {
		if got := n.SoCFloor(); got < 0.5 {
			t.Errorf("node %s floor = %v, want conservative (≥0.5)", n.ID(), got)
		}
	}
}

func TestPlannedTriggerPastEndOfLife(t *testing.T) {
	ctx := newCtx(t, 1)
	ctx.Clock = 400 * 24 * time.Hour
	p := build(t, "baat", map[string]string{"planned-months": "3"})
	// Past the planned end of life the policy must not panic or divide by
	// zero; it keeps a one-day headroom.
	if err := p.Control(ctx); err != nil {
		t.Fatal(err)
	}
}
