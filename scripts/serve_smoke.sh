#!/bin/sh
# serve_smoke.sh — end-to-end smoke over the `baatsim serve` daemon: start
# it on an ephemeral port, create a run over the HTTP API, run it to
# completion, fork it at day 3, run the fork to completion, and require the
# fork's day-5 checkpoint and final result to be byte-identical to the
# parent's. Then shut the daemon down with SIGTERM and require a clean exit.
# Usage: ./scripts/serve_smoke.sh  (or: make serve-smoke)
set -eu

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"; [ -n "${pid:-}" ] && kill "$pid" 2>/dev/null || true' EXIT

go build -o "$tmp/baatsim" ./cmd/baatsim

"$tmp/baatsim" serve -addr 127.0.0.1:0 > "$tmp/serve.log" &
pid=$!

# The daemon prints "serving on http://HOST:PORT ..." once bound.
base=""
for _ in $(seq 1 100); do
    base=$(sed -n 's|^serving on \(http://[^ ]*\) .*|\1|p' "$tmp/serve.log")
    [ -n "$base" ] && break
    kill -0 "$pid" 2>/dev/null || { echo "serve-smoke: daemon died on startup" >&2; cat "$tmp/serve.log" >&2; exit 1; }
    sleep 0.1
done
if [ -z "$base" ]; then
    echo "serve-smoke: daemon never reported its address" >&2
    cat "$tmp/serve.log" >&2
    exit 1
fi

# api METHOD PATH [BODY] — curl wrapper that fails the script on any
# non-2xx status.
api() {
    method=$1; path=$2; body=${3:-}
    if [ -n "$body" ]; then
        out=$(curl -sS -X "$method" -d "$body" -w '\n%{http_code}' "$base$path")
    else
        out=$(curl -sS -X "$method" -w '\n%{http_code}' "$base$path")
    fi
    status=$(printf '%s' "$out" | tail -n 1)
    case $status in
        2*) printf '%s' "$out" | sed '$d' ;;
        *)  echo "serve-smoke: $method $path -> $status: $(printf '%s' "$out" | sed '$d')" >&2; exit 1 ;;
    esac
}

# wait_done RUN — poll a run's status until it reports done.
wait_done() {
    for _ in $(seq 1 600); do
        state=$(api GET "/runs/$1" | sed -n 's/.*"state":"\([a-z]*\)".*/\1/p')
        case $state in
            done) return 0 ;;
            failed) echo "serve-smoke: run $1 failed" >&2; api GET "/runs/$1" >&2; exit 1 ;;
        esac
        sleep 0.1
    done
    echo "serve-smoke: run $1 never finished (last state: $state)" >&2
    exit 1
}

# A scenario with fault-injection state in its checkpoints, like the
# checkpoint smoke uses.
parent=$(api POST /runs '{"days": 6, "seed": 7, "accel": 10, "faults": "chaos"}' \
    | sed -n 's/.*"id":"\([^"]*\)".*/\1/p')
[ -n "$parent" ] || { echo "serve-smoke: create returned no run ID" >&2; exit 1; }

api POST "/runs/$parent/start" > /dev/null
wait_done "$parent"

child=$(api POST "/runs/$parent/fork?day=3" | sed -n 's/.*"id":"\([^"]*\)".*/\1/p')
[ -n "$child" ] || { echo "serve-smoke: fork returned no run ID" >&2; exit 1; }
api POST "/runs/$child/resume" > /dev/null
wait_done "$child"

api GET "/runs/$parent/checkpoint?day=5" > "$tmp/parent-ck5.json"
api GET "/runs/$child/checkpoint?day=5"  > "$tmp/child-ck5.json"
if ! cmp -s "$tmp/parent-ck5.json" "$tmp/child-ck5.json"; then
    echo "serve-smoke: fork's day-5 checkpoint diverged from the parent's" >&2
    exit 1
fi

api GET "/runs/$parent/result" > "$tmp/parent-result.json"
api GET "/runs/$child/result"  > "$tmp/child-result.json"
if ! cmp -s "$tmp/parent-result.json" "$tmp/child-result.json"; then
    echo "serve-smoke: fork's final result diverged from the parent's" >&2
    diff "$tmp/parent-result.json" "$tmp/child-result.json" >&2 || true
    exit 1
fi

# The run's telemetry is reachable per-run.
api GET "/runs/$parent/metrics" | grep -q 'baat_sim_days_total' || {
    echo "serve-smoke: per-run metrics endpoint missing sim day counter" >&2
    exit 1
}

kill -TERM "$pid"
if ! wait "$pid"; then
    echo "serve-smoke: daemon exited non-zero on SIGTERM" >&2
    cat "$tmp/serve.log" >&2
    exit 1
fi
pid=""
echo "serve-smoke: fork matched parent byte-for-byte; daemon shut down cleanly"
