package fleet

import (
	"fmt"
	"math"

	"github.com/green-dc/baat/internal/battery"
	"github.com/green-dc/baat/internal/node"
	"github.com/green-dc/baat/internal/stats"
)

// Summary aggregates one pass over a set of nodes — typically one shard's
// index range for one tick. Per-shard summaries merged in shard order
// (Add) recombine to exactly the values a single whole-fleet pass would
// produce for every integer field: counts count each node once, histogram
// bins add, and index fields resolve by the same ascending-index
// tie-break a serial scan uses. The float sums (SoCSum, SolarWhSum)
// recombine up to floating-point associativity: deterministic for a fixed
// shard size, but rounded differently than a flat sum, so they feed
// telemetry gauges only — never trace-visible decisions.
type Summary struct {
	// Valid reports the summary reflects a completed pass; the engine
	// leaves it false until the first tick has run.
	Valid bool
	// Nodes is how many nodes the pass observed.
	Nodes int
	// Suspect counts nodes whose sensor chain is quarantined.
	Suspect int
	// Capped counts servers below their top DVFS level — the population
	// a frequency-restoring controller would touch. Zero lets such a
	// controller skip its O(n) scan entirely.
	Capped int
	// EOLIndex is the lowest node index at or below end-of-life health,
	// or -1. The engine uses it in place of a per-tick fleet scan.
	EOLIndex int
	// MinHealth and MinHealthIndex locate the weakest battery (lowest
	// index on ties — the serial-scan order).
	MinHealth      float64
	MinHealthIndex int
	// MaxNAT and MaxNATIndex locate the fastest-aging battery by
	// normalized aging throughput — the canonical migration candidate.
	MaxNAT      float64
	MaxNATIndex int
	// SoCSum and SolarWhSum accumulate state-of-charge and solar energy
	// across the pass (telemetry-grade; see the type comment).
	SoCSum     float64
	SolarWhSum float64
	// Hist, when non-nil, receives one SoC observation per node when the
	// caller asks for it (the engine only samples inside the operating
	// window, matching the Fig 19 distribution).
	Hist *stats.Histogram
	// Changed collects, in ascending order, the indices of nodes whose
	// suspect state differs from the caller-tracked previous state. It is
	// appended by ObserveChanged and not merged by Add: callers walk the
	// per-shard summaries in shard order, which is ascending index order.
	Changed []int
}

// Reset clears the summary for a new pass, keeping Hist's geometry and
// Changed's capacity.
func (s *Summary) Reset() {
	s.Valid = false
	s.Nodes = 0
	s.Suspect = 0
	s.Capped = 0
	s.EOLIndex = -1
	s.MinHealth = math.Inf(1)
	s.MinHealthIndex = -1
	s.MaxNAT = math.Inf(-1)
	s.MaxNATIndex = -1
	s.SoCSum = 0
	s.SolarWhSum = 0
	if s.Hist != nil {
		s.Hist.Reset()
	}
	s.Changed = s.Changed[:0]
}

// ObserveNode folds node i into the summary and returns its state of
// charge (saving the caller a second pack read for its own per-node
// bookkeeping). observeSoC gates the histogram sample.
func (s *Summary) ObserveNode(i int, n *node.Node, observeSoC bool) float64 {
	s.Nodes++
	// node.SoC/Health/NAT are the devirtualized fast accessors: no
	// interface call, no full aging.Metrics snapshot. This fold runs for
	// every node every tick, and the Metrics assembly alone used to be a
	// quarter of the warehouse-scale step profile.
	soc := n.SoC()
	s.SoCSum += soc
	s.SolarWhSum += float64(n.SolarEnergy())
	if observeSoC && s.Hist != nil {
		s.Hist.Observe(soc)
	}
	health := n.Health()
	if health < s.MinHealth {
		s.MinHealth = health
		s.MinHealthIndex = i
	}
	if s.EOLIndex < 0 && health < battery.EndOfLifeHealth {
		s.EOLIndex = i
	}
	if nat := n.NAT(); nat > s.MaxNAT {
		s.MaxNAT = nat
		s.MaxNATIndex = i
	}
	if n.MetricsSuspect() {
		s.Suspect++
	}
	srv := n.Server()
	if srv.FrequencyIndex() < srv.TopFrequencyIndex() {
		s.Capped++
	}
	return soc
}

// ObserveChanged records node i as having flipped suspect state. Callers
// invoke it in ascending index order within a pass.
func (s *Summary) ObserveChanged(i int) {
	s.Changed = append(s.Changed, i)
}

// Add merges o into s. Merging per-shard summaries in ascending shard
// order reproduces a serial whole-fleet scan: first-match fields
// (EOLIndex) keep the earliest, extremum fields keep the lowest index on
// ties because within-shard observation already did, and counts and bins
// add exactly. Changed is deliberately not merged (see the field
// comment). Histograms must share geometry.
func (s *Summary) Add(o *Summary) error {
	s.Nodes += o.Nodes
	s.Suspect += o.Suspect
	s.Capped += o.Capped
	if s.EOLIndex < 0 {
		s.EOLIndex = o.EOLIndex
	}
	if o.MinHealth < s.MinHealth {
		s.MinHealth = o.MinHealth
		s.MinHealthIndex = o.MinHealthIndex
	}
	if o.MaxNAT > s.MaxNAT {
		s.MaxNAT = o.MaxNAT
		s.MaxNATIndex = o.MaxNATIndex
	}
	s.SoCSum += o.SoCSum
	s.SolarWhSum += o.SolarWhSum
	if s.Hist != nil && o.Hist != nil {
		if err := s.Hist.Merge(o.Hist); err != nil {
			return fmt.Errorf("fleet: merge summary: %w", err)
		}
	}
	return nil
}
