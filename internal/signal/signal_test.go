package signal

import (
	"math"
	"testing"
	"time"

	"github.com/green-dc/baat/internal/solar"
)

func TestWeatherIndexScale(t *testing.T) {
	if got := WeatherIndex(solar.Sunny); got != 1 {
		t.Errorf("sunny index = %v, want 1", got)
	}
	for _, w := range []solar.Weather{solar.Cloudy, solar.Rainy} {
		idx := WeatherIndex(w)
		if idx <= 0 || idx >= 1 {
			t.Errorf("%v index = %v, want in (0, 1)", w, idx)
		}
	}
	if WeatherIndex(solar.Cloudy) <= WeatherIndex(solar.Rainy) {
		t.Error("cloudy should out-generate rainy")
	}
}

func TestForecasterPriorBeforeObservations(t *testing.T) {
	f := NewSolarForecaster(1, DefaultHorizon)
	for d := 1; d <= DefaultHorizon; d++ {
		if got := f.SolarIndex(d); got != priorIndex {
			t.Errorf("day +%d before any observation = %v, want the prior %v", d, got, priorIndex)
		}
	}
}

func TestForecasterDeterministic(t *testing.T) {
	obs := []float64{1, 0.75, 0.375, 1, 0.75}
	a := NewSolarForecaster(7, DefaultHorizon)
	b := NewSolarForecaster(7, DefaultHorizon)
	for _, o := range obs {
		a.ObserveDay(o)
		b.ObserveDay(o)
		for d := 1; d <= DefaultHorizon; d++ {
			if a.SolarIndex(d) != b.SolarIndex(d) {
				t.Fatalf("same seed and observations diverged at +%d", d)
			}
		}
	}
	c := NewSolarForecaster(8, DefaultHorizon)
	for _, o := range obs {
		c.ObserveDay(o)
	}
	if a.SolarIndex(1) == c.SolarIndex(1) && a.SolarIndex(2) == c.SolarIndex(2) && a.SolarIndex(3) == c.SolarIndex(3) {
		t.Error("different seeds produced identical noise — the substream is not seeded")
	}
}

func TestForecastQueriesArePureReads(t *testing.T) {
	f := NewSolarForecaster(3, DefaultHorizon)
	f.ObserveDay(0.75)
	first := f.SolarIndex(2)
	for i := 0; i < 100; i++ {
		f.SolarIndex(1)
		f.SolarIndex(3)
	}
	if got := f.SolarIndex(2); got != first {
		t.Fatalf("querying advanced forecaster state: %v then %v", first, got)
	}
}

func TestForecastBoundsAndClamping(t *testing.T) {
	f := NewSolarForecaster(11, DefaultHorizon)
	obs := []float64{0, 1, 0.375, 0.75, 1, 0, 0.375}
	for _, o := range obs {
		f.ObserveDay(o)
		for _, d := range []int{-1, 0, 1, 2, 3, 4, 99} {
			idx := f.SolarIndex(d)
			if idx < 0 || idx > 1 || math.IsNaN(idx) {
				t.Fatalf("SolarIndex(%d) = %v, outside [0, 1]", d, idx)
			}
		}
		if f.SolarIndex(0) != f.SolarIndex(1) || f.SolarIndex(99) != f.SolarIndex(DefaultHorizon) {
			t.Fatal("out-of-range lookaheads must clamp to [1, horizon]")
		}
	}
}

// TestForecastErrorIsHonestlyNonzero pins the "honest forecaster" property:
// against a varying sky the forecast is neither an oracle (zero error would
// mean it peeked at the weather stream) nor garbage (persistence toward
// climatology must beat a coin toss on this spread).
func TestForecastErrorIsHonestlyNonzero(t *testing.T) {
	f := NewSolarForecaster(42, DefaultHorizon)
	weather := []solar.Weather{
		solar.Sunny, solar.Sunny, solar.Rainy, solar.Cloudy, solar.Sunny,
		solar.Rainy, solar.Rainy, solar.Cloudy, solar.Sunny, solar.Cloudy,
		solar.Sunny, solar.Rainy, solar.Cloudy, solar.Cloudy, solar.Sunny,
	}
	var absErr, n float64
	var predicted float64
	for i, w := range weather {
		if i > 0 {
			// Yesterday's 1-day-ahead forecast versus today's truth.
			absErr += math.Abs(predicted - WeatherIndex(w))
			n++
		}
		f.ObserveDay(WeatherIndex(w))
		predicted = f.SolarIndex(1)
	}
	mae := absErr / n
	if mae == 0 {
		t.Fatal("zero forecast error: the forecaster is peeking at the future")
	}
	if mae > 0.5 {
		t.Fatalf("mean absolute error %v: worse than guessing on a [0.375, 1] spread", mae)
	}
}

func TestForecasterSnapshotRestoreRoundTrip(t *testing.T) {
	f := NewSolarForecaster(5, DefaultHorizon)
	for _, o := range []float64{1, 0.375, 0.75} {
		f.ObserveDay(o)
	}
	st, err := f.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	g := NewSolarForecaster(999, DefaultHorizon) // wrong seed on purpose
	if err := g.Restore(st); err != nil {
		t.Fatal(err)
	}
	// Same remaining future: identical forecasts now and after identical
	// further observations (the rng state rode along).
	for _, o := range []float64{0.75, 1, 0.375} {
		for d := 1; d <= DefaultHorizon; d++ {
			if f.SolarIndex(d) != g.SolarIndex(d) {
				t.Fatalf("restored forecaster diverged at +%d", d)
			}
		}
		f.ObserveDay(o)
		g.ObserveDay(o)
	}
}

func TestForecasterRestoreRejectsCorruptState(t *testing.T) {
	f := NewSolarForecaster(5, DefaultHorizon)
	f.ObserveDay(0.75)
	good, err := f.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	corrupt := []func(*ForecasterState){
		func(st *ForecasterState) { st.Day = -1 },
		func(st *ForecasterState) { st.ClimN = st.Day + 1 },
		func(st *ForecasterState) { st.Noise = st.Noise[:1] },
		func(st *ForecasterState) { st.Noise = append(st.Noise, 0) },
		func(st *ForecasterState) { st.Noise[0] = math.NaN() },
		func(st *ForecasterState) { st.Last = math.Inf(1) },
		func(st *ForecasterState) { st.RNG = nil },
		func(st *ForecasterState) { st.RNG = []byte("not an rng state") },
	}
	for i, mutate := range corrupt {
		st := good
		st.Noise = append([]float64(nil), good.Noise...)
		st.RNG = append([]byte(nil), good.RNG...)
		mutate(&st)
		g := NewSolarForecaster(5, DefaultHorizon)
		g.ObserveDay(0.375)
		before := g.SolarIndex(1)
		if err := g.Restore(st); err == nil {
			t.Errorf("corruption %d accepted", i)
		} else if g.SolarIndex(1) != before {
			t.Errorf("corruption %d mutated the forecaster despite the error", i)
		}
	}
}

func TestTOUTariff(t *testing.T) {
	tariff := DefaultTOUTariff()
	cases := map[time.Duration]float64{
		0:                               tariff.OffPeak,
		12 * time.Hour:                  tariff.OffPeak,
		17 * time.Hour:                  tariff.Peak,
		20*time.Hour + 59*time.Minute:   tariff.Peak,
		21 * time.Hour:                  tariff.OffPeak,
		24 * time.Hour:                  tariff.OffPeak, // wraps to midnight
		24*time.Hour + 18*time.Hour:     tariff.Peak,    // wraps into the peak
		-6 * time.Hour:                  tariff.Peak,    // negative wraps to 18:00
		-1 * time.Hour:                  tariff.OffPeak, // negative wraps to 23:00
		36*time.Hour + 30*time.Minute:   tariff.OffPeak,
		48*time.Hour + 17*time.Hour + 1: tariff.Peak,
	}
	for tod, want := range cases {
		if got := tariff.PriceAt(tod); got != want {
			t.Errorf("PriceAt(%v) = %v, want %v", tod, got, want)
		}
	}
	if tariff.Peak <= tariff.OffPeak {
		t.Error("default tariff's peak price should exceed off-peak")
	}
}
