// Package rng provides the simulation's named random-number substreams.
//
// Every stream of randomness in the reproduction derives from one run
// seed plus a stable stream name, replacing the ad-hoc seed offsets
// (seed+1, seed+2, … seed+13) that previously scattered across packages.
// Naming the streams gives the checkpoint envelope a single authoritative
// enumeration of the random state that exists, and the PCG source
// underneath round-trips through MarshalBinary, so a restored stream
// continues the exact sequence the snapshot interrupted — the property
// that makes resume-at-day-N byte-identical to an uninterrupted run.
package rng

import (
	"fmt"
	"math/rand/v2"
)

// Canonical stream names. Every substream derived anywhere in the tree is
// enumerated here; checkpoints identify streams by these names, and a new
// draw site must add its name rather than invent a seed offset.
const (
	// Manufacturing draws per-node capacity/resistance variation at
	// simulator construction (formerly seed+0).
	Manufacturing = "manufacturing"
	// Jobs drives batch-job arrival via workload.Generator (formerly
	// seed+1).
	Jobs = "jobs"
	// Weather shapes generated solar days and draws day conditions inside
	// the simulator (formerly seed+2).
	Weather = "weather"
	// Policy drives stochastic policy decisions such as migration-target
	// permutations (formerly seed+3).
	Policy = "policy"
	// Faults drives the deterministic fault injector (formerly seed+4).
	Faults = "faults"
	// CLIWeather draws the -weather mix day sequence in cmd/baatsim and
	// the golden-trace fixtures (formerly seed+7).
	CLIWeather = "cli-weather"
	// ExpLowSoC draws the low-SoC-duration experiment's weather sequence
	// (formerly seed+3 in experiments).
	ExpLowSoC = "experiments/low-soc-weather"
	// ExpSoCDist draws the SoC-distribution experiment's weather sequence
	// (formerly seed+5 in experiments).
	ExpSoCDist = "experiments/soc-dist-weather"
	// ExpBurnIn draws the shared pre-aging burn-in weather sequence for
	// single-day comparisons (formerly seed+11 in experiments).
	ExpBurnIn = "experiments/burn-in-weather"
	// ExpPlanned draws the planned-aging window experiment's weather
	// sequence (formerly seed+9 in experiments).
	ExpPlanned = "experiments/planned-weather"
	// ExpArchitecture draws the architecture-ablation weather sequence
	// (formerly seed+13 in experiments).
	ExpArchitecture = "experiments/architecture-weather"
	// ExpRacks shapes solar days for the rack-level ablation run
	// (formerly seed+13 in experiments, colliding with ExpArchitecture).
	ExpRacks = "experiments/rack-weather"
	// ExpFidelity draws the battery-model fidelity experiment's weather
	// sequence (shared across tiers so every model replays the same days).
	ExpFidelity = "experiments/fidelity-weather"
	// ExpMixedFleet draws the mixed-chemistry fleet experiment's weather
	// sequence (shared across policies, §VI-B's matched-scenario method).
	ExpMixedFleet = "experiments/mixed-fleet-weather"
	// SignalForecast drives the solar forecaster's noise draws
	// (internal/signal). The forecaster owns its substream so that adding
	// or querying forecasts never perturbs the weather, jobs, or policy
	// streams of an existing run.
	SignalForecast = "signal/solar-forecast"

	// shardPrefix namespaces the per-shard fleet substreams; see Shard.
	shardPrefix = "fleet/shard/"

	// reweatherPrefix namespaces the per-mutation weather-redraw streams
	// of a served run; see ServeReweather.
	reweatherPrefix = "serve/reweather/"
)

// Shard returns the canonical stream name for fleet shard i. Each
// rack-group shard of a sharded fleet owns one named substream, derived —
// like every other stream — from the run seed plus this stable name. The
// mapping depends only on the shard index, never on how many workers
// execute the shards, which is what keeps sharded runs bit-identical at
// any worker count.
func Shard(i int) string {
	return fmt.Sprintf("%s%d", shardPrefix, i)
}

// ServeReweather returns the canonical stream name for the i-th mid-flight
// weather redraw of a served run (internal/serve). Each sunshine mutation
// draws the remaining weather suffix from its own named substream of the
// run seed, so a mutated run stays a pure function of (seed, mutation
// sequence) — forks and replays that apply the same mutations at the same
// days see the same skies.
func ServeReweather(i int) string {
	return fmt.Sprintf("%s%d", reweatherPrefix, i)
}

// Stream is a deterministic random-number stream derived from a (seed,
// name) pair. It embeds *rand.Rand (math/rand/v2) for drawing and keeps
// the underlying PCG source so the stream's exact position serializes.
type Stream struct {
	*rand.Rand
	src *rand.PCG
}

// New derives the named substream of seed. Distinct names yield
// independent sequences; the same (seed, name) pair always yields the
// same sequence, on every platform and in every process.
func New(seed int64, name string) *Stream {
	src := rand.NewPCG(uint64(seed), fnv1a(name))
	return &Stream{Rand: rand.New(src), src: src}
}

// MarshalBinary encodes the stream's exact position.
func (s *Stream) MarshalBinary() ([]byte, error) { return s.src.MarshalBinary() }

// UnmarshalBinary rewinds the stream to a previously marshaled position.
func (s *Stream) UnmarshalBinary(data []byte) error {
	if err := s.src.UnmarshalBinary(data); err != nil {
		return fmt.Errorf("rng: restore stream: %w", err)
	}
	return nil
}

// fnv1a hashes a stream name with the 64-bit FNV-1a function. FNV is
// stable across processes and platforms (unlike hash/maphash), which is
// what lets a checkpoint written by one process restore in another.
func fnv1a(name string) uint64 {
	const (
		offset uint64 = 14695981039346656037
		prime  uint64 = 1099511628211
	)
	h := offset
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= prime
	}
	return h
}
