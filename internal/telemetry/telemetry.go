// Package telemetry is the observability layer of the BAAT reproduction:
// a lock-cheap registry of named counters, gauges, and fixed-bucket
// histograms, plus a ring-buffer tracer for structured controller events,
// exposed over HTTP in Prometheus text format alongside net/http/pprof.
//
// The paper's entire evaluation is built on six months of battery
// observation (DSN'15 Figs 3–10: NAT, CF, PC, DDT, DR drift, migration
// counts, DVFS caps); this package is the simulated analogue of that
// sensing pipeline. Policies, the simulation engine, the battery model,
// and the cluster control plane all record through a *Recorder so that an
// experiment can ask, e.g., how many migrations BAAT issued versus e-Buff
// on an identical trace — the §VI-B comparison — straight from counters
// instead of ad-hoc prints.
//
// # Design
//
// All hot-path operations are a nil check plus an atomic update:
//
//   - A nil *Recorder (the zero value of the field every config embeds) is
//     fully functional and records nothing, so un-instrumented runs pay
//     only a pointer test.
//   - Recorder.Counter/Gauge/Histogram return handles that are themselves
//     nil-safe; instrumented code captures them once at construction and
//     the per-tick cost is a single atomic add with no map lookup and no
//     allocation.
//   - The event tracer keeps the last N structured events (migration
//     issued, DVFS cap applied, DoD target adjusted, battery end-of-life,
//     agent reconnect) under a mutex; events are cold-path by definition.
//
// Metric and event names are centralized in names.go and documented with
// units and paper-figure mappings in docs/OBSERVABILITY.md.
//
// # Serving
//
// Recorder.Handler returns an http.Handler with three endpoints:
//
//	/metrics      Prometheus text exposition of every registered metric
//	/events       JSON dump of the event ring (oldest first)
//	/debug/pprof  the standard runtime profiles
//
// cmd/baatsim and cmd/baatbench mount it behind -telemetry-addr.
package telemetry
