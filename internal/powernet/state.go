package powernet

import (
	"fmt"
)

// State is the serializable state of a PowerTable: the retained rows in
// chronological order plus the lifetime counters. The capacity is
// construction-time input; a snapshot restores only onto a table of the
// same capacity or larger history never recorded.
type State struct {
	Rows  []Reading `json:"rows"`
	Last  Reading   `json:"last"`
	Total int       `json:"total"`
}

// Snapshot captures the table's retained history.
func (t *PowerTable) Snapshot() State {
	st := State{Rows: t.Rows(), Total: t.n}
	st.Last, _ = t.Last()
	return st
}

// Restore overwrites the table from a snapshot taken from a table of the
// same capacity. The ring is rebuilt by replaying the retained rows in
// order, so the restored table evicts identically to the original.
func (t *PowerTable) Restore(st State) error {
	if len(st.Rows) > t.cap {
		return fmt.Errorf("powernet: restore: %d rows exceed table capacity %d", len(st.Rows), t.cap)
	}
	if st.Total < len(st.Rows) {
		return fmt.Errorf("powernet: restore: total recorded %d below retained row count %d",
			st.Total, len(st.Rows))
	}
	if (st.Total > 0) != (len(st.Rows) > 0) {
		return fmt.Errorf("powernet: restore: total recorded %d inconsistent with %d retained rows",
			st.Total, len(st.Rows))
	}
	if n := len(st.Rows); n > 0 && st.Rows[n-1] != st.Last {
		return fmt.Errorf("powernet: restore: last reading does not match newest retained row")
	}
	for j := 0; j < t.cap; j++ {
		t.rows[j*t.stride] = Reading{}
	}
	t.next = 0
	t.pos = 0
	t.full = false
	t.n = 0
	for _, r := range st.Rows {
		t.Record(r)
	}
	t.n = st.Total
	return nil
}
