package battery

// Columnar batch kernels over the fleet's per-tier slabs. A warehouse
// fleet stores its battery models in contiguous per-chemistry slices
// ([]Pack, []Linear); these kernels advance down such a column in one
// tight loop with direct field access — no interface dispatch, no bounds
// checks beyond the slice header, no allocation. The simulator's SoC
// ordering reads the whole fleet's state of charge twice per control pass,
// which at 65536+ nodes makes the difference between a dense column sweep
// and 65536 virtual calls measurable.
//
// Every kernel requires len(dst) == len(column); they panic on mismatch
// like the element-wise built-ins do, because a silent partial fill would
// corrupt the caller's column.

// PackSoCs fills dst with the state of charge of each pack in the column.
// It serves both electrochemical chemistries (lead-acid and LFP share the
// Pack representation; their chemistry constants — OCV curve, thermal
// envelope — are hoisted into each Pack at construction).
func PackSoCs(packs []Pack, dst []float64) {
	if len(dst) != len(packs) {
		panic("battery: PackSoCs column length mismatch")
	}
	for i := range packs {
		dst[i] = packs[i].soc
	}
}

// LinearSoCs fills dst with the state of charge of each linear model in
// the column.
func LinearSoCs(lins []Linear, dst []float64) {
	if len(dst) != len(lins) {
		panic("battery: LinearSoCs column length mismatch")
	}
	for i := range lins {
		dst[i] = lins[i].soc
	}
}

// PackHealths fills dst with the remaining-capacity fraction of each pack
// in the column.
func PackHealths(packs []Pack, dst []float64) {
	if len(dst) != len(packs) {
		panic("battery: PackHealths column length mismatch")
	}
	for i := range packs {
		dst[i] = packs[i].deg.Health()
	}
}

// LinearHealths fills dst with the remaining-capacity fraction of each
// linear model in the column.
func LinearHealths(lins []Linear, dst []float64) {
	if len(dst) != len(lins) {
		panic("battery: LinearHealths column length mismatch")
	}
	for i := range lins {
		dst[i] = lins[i].deg.Health()
	}
}
