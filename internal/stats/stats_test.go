package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewHistogramValidation(t *testing.T) {
	if _, err := NewHistogram(0, 1, 0); err == nil {
		t.Error("zero bins accepted")
	}
	if _, err := NewHistogram(1, 1, 4); err == nil {
		t.Error("empty range accepted")
	}
	if _, err := NewHistogram(2, 1, 4); err == nil {
		t.Error("inverted range accepted")
	}
}

func TestHistogramBinning(t *testing.T) {
	h, err := NewHistogram(0, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{0.0, 0.1, 0.3, 0.6, 0.9, 0.99} {
		h.Observe(x)
	}
	want := []int64{2, 1, 1, 2}
	got := h.Counts()
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("bin %d = %d, want %d (all: %v)", i, got[i], want[i], got)
		}
	}
	if h.Total() != 6 {
		t.Errorf("Total = %d, want 6", h.Total())
	}
}

func TestHistogramTopBoundaryBelongsToLastBin(t *testing.T) {
	h, err := NewHistogram(0, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	h.Observe(1.0) // a battery at exactly 100 % SoC
	if got := h.Counts()[6]; got != 1 {
		t.Errorf("top bin = %d, want 1", got)
	}
	if _, over := h.OutOfRange(); over != 0 {
		t.Errorf("overflow = %d, want 0", over)
	}
}

func TestHistogramOutOfRange(t *testing.T) {
	h, err := NewHistogram(0, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	h.Observe(-0.5)
	h.Observe(1.5)
	under, over := h.OutOfRange()
	if under != 1 || over != 1 {
		t.Errorf("OutOfRange = (%d, %d), want (1, 1)", under, over)
	}
}

func TestHistogramFractions(t *testing.T) {
	h, err := NewHistogram(0, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if f := h.Fractions(); f[0] != 0 || f[1] != 0 {
		t.Error("empty histogram fractions not zero")
	}
	h.Observe(0.2)
	h.Observe(0.3)
	h.Observe(0.7)
	f := h.Fractions()
	if math.Abs(f[0]-2.0/3) > 1e-12 || math.Abs(f[1]-1.0/3) > 1e-12 {
		t.Errorf("fractions = %v, want [2/3, 1/3]", f)
	}
}

func TestHistogramBinLabel(t *testing.T) {
	h, err := NewHistogram(0, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := h.BinLabel(0); got != "[0.00, 0.25)" {
		t.Errorf("BinLabel(0) = %q", got)
	}
	if got := h.BinLabel(9); got != "" {
		t.Errorf("BinLabel(9) = %q, want empty", got)
	}
}

func TestHistogramFractionsSumToOneProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		h, err := NewHistogram(0, 1, 7)
		if err != nil {
			return false
		}
		for _, r := range raw {
			h.Observe(float64(r%101) / 100)
		}
		if len(raw) == 0 {
			return true
		}
		var sum float64
		for _, fr := range h.Fractions() {
			sum += fr
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSummary(t *testing.T) {
	var s Summary
	if s.N() != 0 || s.Mean() != 0 || s.StdDev() != 0 {
		t.Error("empty summary not zero")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Observe(x)
	}
	if s.N() != 8 {
		t.Errorf("N = %d, want 8", s.N())
	}
	if math.Abs(s.Mean()-5) > 1e-12 {
		t.Errorf("Mean = %v, want 5", s.Mean())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("Min/Max = %v/%v, want 2/9", s.Min(), s.Max())
	}
	// Sample stddev of this classic set is ~2.138.
	if math.Abs(s.StdDev()-2.138) > 0.01 {
		t.Errorf("StdDev = %v, want ≈2.138", s.StdDev())
	}
}

func TestSummarySingleSample(t *testing.T) {
	var s Summary
	s.Observe(3)
	if s.Min() != 3 || s.Max() != 3 || s.Mean() != 3 || s.StdDev() != 0 {
		t.Errorf("single-sample summary wrong: %v %v %v %v", s.Min(), s.Max(), s.Mean(), s.StdDev())
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	tests := []struct {
		q, want float64
	}{
		{0, 1},
		{0.25, 2},
		{0.5, 3},
		{0.75, 4},
		{1, 5},
		{0.1, 1.4},
	}
	for _, tt := range tests {
		got, err := Quantile(xs, tt.q)
		if err != nil {
			t.Fatalf("Quantile(%v): %v", tt.q, err)
		}
		if math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", tt.q, got, tt.want)
		}
	}
	// Input must not be mutated.
	unsorted := []float64{3, 1, 2}
	if _, err := Quantile(unsorted, 0.5); err != nil {
		t.Fatal(err)
	}
	if unsorted[0] != 3 {
		t.Error("Quantile mutated its input")
	}
}

func TestQuantileErrors(t *testing.T) {
	if _, err := Quantile(nil, 0.5); err == nil {
		t.Error("empty slice accepted")
	}
	if _, err := Quantile([]float64{1}, -0.1); err == nil {
		t.Error("negative q accepted")
	}
	if _, err := Quantile([]float64{1}, 1.1); err == nil {
		t.Error("q above 1 accepted")
	}
}

func TestMeanMinMax(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Error("Mean wrong")
	}
	if _, ok := Min(nil); ok {
		t.Error("Min(nil) reported ok")
	}
	if m, ok := Min([]float64{3, 1, 2}); !ok || m != 1 {
		t.Errorf("Min = (%v, %v), want (1, true)", m, ok)
	}
	if m, ok := Max([]float64{3, 1, 2}); !ok || m != 3 {
		t.Errorf("Max = (%v, %v), want (3, true)", m, ok)
	}
	if _, ok := Max(nil); ok {
		t.Error("Max(nil) reported ok")
	}
}

func TestSummaryMatchesBatchProperty(t *testing.T) {
	f := func(raw []int8) bool {
		if len(raw) == 0 {
			return true
		}
		var s Summary
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
			s.Observe(xs[i])
		}
		if math.Abs(s.Mean()-Mean(xs)) > 1e-9 {
			return false
		}
		mn, _ := Min(xs)
		mx, _ := Max(xs)
		return s.Min() == mn && s.Max() == mx
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
