package telemetry

import "time"

// Recorder bundles a metric registry and an event tracer into the single
// handle every instrumented package embeds. The nil *Recorder is the
// designed-for default: all methods no-op, all returned metric handles are
// nil-safe no-ops, so an un-instrumented simulation pays one pointer test
// per recording site.
type Recorder struct {
	reg    *Registry
	tracer *Tracer
}

// RecorderOption customizes NewRecorder.
type RecorderOption func(*Recorder)

// WithTraceCapacity sizes the event ring (DefaultTraceCapacity otherwise).
func WithTraceCapacity(n int) RecorderOption {
	return func(r *Recorder) { r.tracer = NewTracer(n) }
}

// NewRecorder returns a live recorder with an empty registry and an event
// ring of DefaultTraceCapacity.
func NewRecorder(opts ...RecorderOption) *Recorder {
	r := &Recorder{reg: NewRegistry(), tracer: NewTracer(0)}
	for _, opt := range opts {
		opt(r)
	}
	return r
}

// Counter returns the named counter handle (nil, and safe, on a nil
// recorder). Hot paths should capture the handle once.
func (r *Recorder) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	return r.reg.Counter(name)
}

// Gauge returns the named gauge handle (nil, and safe, on a nil recorder).
func (r *Recorder) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	return r.reg.Gauge(name)
}

// Histogram returns the named histogram handle, registering it with bounds
// on first use (nil, and safe, on a nil recorder).
func (r *Recorder) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	return r.reg.Histogram(name, bounds)
}

// Emit records one structured event. at is the emitting component's clock:
// simulated time from the engine, elapsed wall time from the cluster
// control plane.
func (r *Recorder) Emit(at time.Duration, typ EventType, node, detail string) {
	if r == nil {
		return
	}
	r.tracer.Record(Event{At: at, Type: typ, Node: node, Detail: detail})
}

// Events returns the retained events oldest-first.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	return r.tracer.Events()
}

// Snapshot copies every metric and the retained events. Tests and
// experiment harnesses assert on it (e.g. migrations under e-Buff versus
// BAAT on the same trace) instead of scraping /metrics.
func (r *Recorder) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{
			Counters:   map[string]int64{},
			Gauges:     map[string]float64{},
			Histograms: map[string]HistogramSnapshot{},
		}
	}
	s := r.reg.snapshot()
	s.Events = r.tracer.Events()
	return s
}
