// Package cluster implements the distributed control plane of the BAAT
// prototype (DSN'15 Fig 7, Fig 11): node agents attached to each battery
// node stream sensor reports to a central BAAT controller, and the
// controller pushes actuation commands (DVFS setting, SoC floor, power
// state) back — the software analogue of the prototype's IPDU/SNMP path.
//
// The wire format is newline-delimited JSON over TCP: one Envelope per
// line. Agents report periodically; commands are acknowledged with a
// correlated Ack. The package is transport-honest (real sockets, real
// serialization) so it can be exercised in integration tests and deployed
// across machines, while the simulation engine keeps using direct calls.
package cluster

import (
	"fmt"
	"time"

	"github.com/green-dc/baat/internal/aging"
)

// MessageType discriminates Envelope payloads.
type MessageType string

// Message types.
const (
	MsgHello   MessageType = "hello"
	MsgReport  MessageType = "report"
	MsgCommand MessageType = "command"
	MsgAck     MessageType = "ack"
)

// Envelope is one wire message.
type Envelope struct {
	Type    MessageType `json:"type"`
	Hello   *Hello      `json:"hello,omitempty"`
	Report  *Report     `json:"report,omitempty"`
	Command *Command    `json:"command,omitempty"`
	Ack     *Ack        `json:"ack,omitempty"`
}

// Validate checks the envelope's shape: exactly the payload matching its
// type must be present.
func (e Envelope) Validate() error {
	switch e.Type {
	case MsgHello:
		if e.Hello == nil {
			return fmt.Errorf("cluster: hello envelope without payload")
		}
	case MsgReport:
		if e.Report == nil {
			return fmt.Errorf("cluster: report envelope without payload")
		}
	case MsgCommand:
		if e.Command == nil {
			return fmt.Errorf("cluster: command envelope without payload")
		}
	case MsgAck:
		if e.Ack == nil {
			return fmt.Errorf("cluster: ack envelope without payload")
		}
	default:
		return fmt.Errorf("cluster: unknown message type %q", e.Type)
	}
	return nil
}

// Hello registers an agent with the controller.
type Hello struct {
	NodeID string `json:"node_id"`
}

// Report is one sensor-table row plus derived state, as the controller's
// power tables record it (Table 2 plus the five metrics of §III).
type Report struct {
	NodeID string `json:"node_id"`
	// SentAt is the agent's wall-clock send time.
	SentAt time.Time `json:"sent_at"`
	// SoC, Health describe the battery.
	SoC    float64 `json:"soc"`
	Health float64 `json:"health"`
	// Voltage (V), Current (A, positive discharging), and TemperatureC
	// mirror the front-sensor fields of Table 2.
	Voltage      float64 `json:"voltage"`
	Current      float64 `json:"current"`
	TemperatureC float64 `json:"temperature_c"`
	// Metrics carries the five aging metrics.
	Metrics aging.Metrics `json:"metrics"`
	// ServerPowerW is the IPDU reading for the attached server.
	ServerPowerW float64 `json:"server_power_w"`
	// FrequencyIndex is the server's DVFS ladder position.
	FrequencyIndex int `json:"frequency_index"`
	// SoCFloor is the presently enforced discharge floor.
	SoCFloor float64 `json:"soc_floor"`
}

// Action is a controller actuation.
type Action string

// Actions the controller can push to an agent.
const (
	// ActionSetFrequency moves the server's DVFS ladder (Fig 9's capping).
	ActionSetFrequency Action = "set_frequency"
	// ActionSetFloor updates the protective SoC floor (planned aging).
	ActionSetFloor Action = "set_floor"
	// ActionSetPowered turns the server on or off (checkpoint/restore).
	ActionSetPowered Action = "set_powered"
	// ActionPing verifies liveness.
	ActionPing Action = "ping"
)

// Command is one actuation request.
type Command struct {
	// ID correlates the Ack.
	ID uint64 `json:"id"`
	// Action selects the actuation.
	Action Action `json:"action"`
	// FrequencyIndex applies to ActionSetFrequency.
	FrequencyIndex int `json:"frequency_index,omitempty"`
	// Floor applies to ActionSetFloor.
	Floor float64 `json:"floor,omitempty"`
	// Powered applies to ActionSetPowered.
	Powered bool `json:"powered,omitempty"`
}

// Validate checks the command.
func (c Command) Validate() error {
	switch c.Action {
	case ActionSetFrequency, ActionSetFloor, ActionSetPowered, ActionPing:
		return nil
	default:
		return fmt.Errorf("cluster: unknown action %q", c.Action)
	}
}

// Ack answers a command.
type Ack struct {
	ID    uint64 `json:"id"`
	OK    bool   `json:"ok"`
	Error string `json:"error,omitempty"`
}
