package baat

import (
	"github.com/green-dc/baat/internal/aging"
	"github.com/green-dc/baat/internal/battery"
	"github.com/green-dc/baat/internal/node"
	"github.com/green-dc/baat/internal/units"
)

// Physical quantity types shared across the public API.
type (
	// Watt is electrical power in watts.
	Watt = units.Watt
	// WattHour is electrical energy in watt-hours.
	WattHour = units.WattHour
	// Ampere is electrical current in amperes (positive = discharge).
	Ampere = units.Ampere
	// AmpereHour is electrical charge in ampere-hours.
	AmpereHour = units.AmpereHour
	// Volt is electrical potential in volts.
	Volt = units.Volt
	// Celsius is temperature in degrees Celsius.
	Celsius = units.Celsius
)

// Battery is a valve-regulated lead-acid pack with live electrical state
// and aging feedback.
type Battery = battery.Pack

// BatterySpec describes a battery product as the manufacturer rates it.
type BatterySpec = battery.Spec

// BatteryOption customizes a Battery at construction.
type BatteryOption = battery.Option

// Degradation is the irreversible wear assessed for a battery.
type Degradation = battery.Degradation

// BatteryCounters are the cumulative usage counters the sensor table logs.
type BatteryCounters = battery.Counters

// EndOfLifeHealth is the capacity fraction below which a battery is at
// end-of-life (80 %, §II-B).
const EndOfLifeHealth = battery.EndOfLifeHealth

// DefaultBatterySpec returns the prototype's unit: 12 V 35 Ah sealed
// lead-acid.
func DefaultBatterySpec() BatterySpec { return battery.DefaultSpec() }

// ParallelBatterySpec returns the spec of n identical units in parallel
// (the prototype pairs two per server).
func ParallelBatterySpec(spec BatterySpec, n int) BatterySpec { return battery.Parallel(spec, n) }

// NewBattery constructs a battery pack.
func NewBattery(spec BatterySpec, opts ...BatteryOption) (*Battery, error) {
	return battery.New(spec, opts...)
}

// WithInitialSoC sets a battery's starting state of charge.
func WithInitialSoC(soc float64) BatteryOption { return battery.WithInitialSoC(soc) }

// WithManufacturingVariation applies fixed per-unit deviation from the
// nameplate (§IV-B-1).
func WithManufacturingVariation(capScale, resScale float64) BatteryOption {
	return battery.WithManufacturingVariation(capScale, resScale)
}

// BatteryKind selects a battery model tier: the electrochemical lead-acid
// reference, the fast linear coulomb-counting tier, or the LFP chemistry.
type BatteryKind = battery.Kind

// The selectable battery model tiers.
const (
	// BatteryLeadAcid is the full electrochemical lead-acid reference
	// (OCV curve, Peukert capacity, thermal model, five aging mechanisms).
	BatteryLeadAcid = battery.KindLeadAcid
	// BatteryLinear is the fast linear coulomb-counting tier: constant
	// voltage, no Peukert/thermal model, single calibrated fade rate.
	BatteryLinear = battery.KindLinear
	// BatteryLFP is the LiFePO4 chemistry: flat OCV plateau, cycle +
	// calendar aging curves, deep-discharge tolerance.
	BatteryLFP = battery.KindLFP
)

// BatteryModel is the narrow interface every battery tier implements; see
// docs/BATTERY_MODELS.md for the contract and the conformance suite.
type BatteryModel = battery.Model

// LinearBattery is the linear coulomb-counting tier's concrete type.
type LinearBattery = battery.Linear

// BatteryKinds lists the selectable battery model tiers.
func BatteryKinds() []BatteryKind { return battery.Kinds() }

// ParseBatteryKind parses a user-facing battery model name ("leadacid",
// "linear", "lfp", and common aliases such as "vrla" or "lifepo4").
func ParseBatteryKind(s string) (BatteryKind, error) { return battery.ParseKind(s) }

// DefaultBatterySpecFor returns the stock spec for a battery model tier
// (the prototype's paired VRLA bank, its linear twin, or the LFP retrofit).
func DefaultBatterySpecFor(k BatteryKind) (BatterySpec, error) { return battery.DefaultSpecFor(k) }

// DefaultLFPBatterySpec returns the LFP retrofit unit: 12.8 V 70 Ah
// LiFePO4 with a flat OCV plateau.
func DefaultLFPBatterySpec() BatterySpec { return battery.DefaultLFPSpec() }

// NewBatteryModel constructs a battery model of the tier the spec's
// Chemistry selects.
func NewBatteryModel(spec BatterySpec, opts ...BatteryOption) (BatteryModel, error) {
	return battery.NewModel(spec, opts...)
}

// Metrics is a snapshot of the five aging metrics of §III: NAT, CF, PC,
// DDT, and DR.
type Metrics = aging.Metrics

// MetricsTracker accumulates the five aging metrics from sensor samples.
type MetricsTracker = aging.Tracker

// AgingSample is one sensor reading interval (Table 2).
type AgingSample = aging.Sample

// NewMetricsTracker creates a tracker for a battery with the given nominal
// life-long Ah throughput (the NAT denominator of Eq 1).
func NewMetricsTracker(lifetime AmpereHour) (*MetricsTracker, error) {
	return aging.NewTracker(lifetime)
}

// AgingModel integrates mechanism-level damage from operating conditions.
type AgingModel = aging.Model

// AgingModelConfig carries the damage-model rate constants.
type AgingModelConfig = aging.ModelConfig

// AgingMechanism identifies one of the five lead-acid aging processes.
type AgingMechanism = aging.Mechanism

// The five aging mechanisms of §II-B.
const (
	Corrosion      = aging.Corrosion
	Shedding       = aging.Shedding
	Sulphation     = aging.Sulphation
	WaterLoss      = aging.WaterLoss
	Stratification = aging.Stratification
)

// DefaultAgingModelConfig returns rates calibrated to the paper's measured
// six-month drift (Figs 3–5).
func DefaultAgingModelConfig() AgingModelConfig { return aging.DefaultModelConfig() }

// DefaultAgingModelConfigFor returns the stock damage-model constants for
// a battery model tier (the lead-acid mechanisms, the linear tier's single
// fade rate, or the LFP cycle + calendar curves).
func DefaultAgingModelConfigFor(k BatteryKind) (AgingModelConfig, error) {
	return aging.DefaultModelConfigFor(k)
}

// NewAgingModel creates a damage integrator for a battery of the given
// nominal capacity.
func NewAgingModel(cfg AgingModelConfig, capNom AmpereHour) (*AgingModel, error) {
	return aging.NewModel(cfg, capNom)
}

// DeepDischargeSoC is the 40 % state-of-charge line below which the paper
// counts deep discharge (Eq 5) and triggers slowdown (Fig 9).
const DeepDischargeSoC = aging.DeepDischargeSoC

// Manufacturer identifies a battery vendor from Fig 10.
type Manufacturer = aging.Manufacturer

// The three manufacturers of Fig 10.
const (
	Hoppecke = aging.Hoppecke
	Trojan   = aging.Trojan
	UPG      = aging.UPG
)

// Manufacturers lists the Fig 10 vendors.
func Manufacturers() []Manufacturer { return aging.Manufacturers() }

// CycleLife returns a vendor's rated cycle count at the given depth of
// discharge (Fig 10).
func CycleLife(m Manufacturer, dod float64) (float64, error) { return aging.CycleLife(m, dod) }

// DemandClass is the Table 3 power/energy classification of a workload.
type DemandClass = aging.DemandClass

// Sensitivity gives the Table 3 impact levels for ΔNAT/ΔCF/ΔPC.
type Sensitivity = aging.Sensitivity

// DemandSensitivity returns the Table 3 row for a demand class.
func DemandSensitivity(c DemandClass) Sensitivity { return aging.DemandSensitivity(c) }

// WeightedAging computes Eq 6: the sensitivity-weighted aging pressure of a
// battery's metrics. Larger means faster expected aging.
func WeightedAging(m Metrics, s Sensitivity) float64 { return aging.WeightedAging(m, s) }

// DoDGoal computes Eq 7: the depth of discharge that spends the remaining
// lifetime Ah budget evenly over the planned remaining cycles.
func DoDGoal(total, used AmpereHour, cyclePlan float64, capNom AmpereHour) (float64, error) {
	return aging.DoDGoal(total, used, cyclePlan, capNom)
}

// Node is one battery node: a server with its individual battery unit,
// sensor chain, and aging bookkeeping.
type Node = node.Node

// NodeConfig assembles one battery node.
type NodeConfig = node.Config

// DefaultNodeConfig returns a prototype-scale node configuration.
func DefaultNodeConfig() NodeConfig { return node.DefaultConfig() }

// NewNode assembles a battery node.
func NewNode(id string, cfg NodeConfig) (*Node, error) { return node.New(id, cfg) }
