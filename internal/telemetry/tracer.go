package telemetry

import (
	"sync"
	"time"
)

// EventType labels a structured controller event. The canonical types
// mirror the actuation and lifecycle moments the paper's evaluation
// counts; docs/OBSERVABILITY.md documents each.
type EventType string

// Canonical event types.
const (
	// EventMigration is one VM migration issued by a policy (Fig 8 hiding,
	// Fig 9 slowdown preferred action; §VI-F charges its cost).
	EventMigration EventType = "migration"
	// EventDVFSCap is one downward DVFS step on a server whose battery is
	// at risk (Fig 9's power-capping fallback).
	EventDVFSCap EventType = "dvfs_cap"
	// EventDVFSRestore is one upward DVFS step after the battery recovered
	// past the trigger plus hysteresis.
	EventDVFSRestore EventType = "dvfs_restore"
	// EventDoDTarget is a planned-aging DoD-goal adjustment (Eq 7, §IV-D).
	EventDoDTarget EventType = "dod_target"
	// EventBatteryEOL marks a battery crossing the 80 % health line
	// (§II-B end-of-life).
	EventBatteryEOL EventType = "battery_eol"
	// EventReconnect is a cluster agent re-establishing its controller
	// session after a transport failure.
	EventReconnect EventType = "agent_reconnect"
	// EventFaultInjected is one fault activation delivered by the
	// deterministic injector (docs/FAULTS.md).
	EventFaultInjected EventType = "fault_injected"
	// EventDegradedMode marks a node's aging metrics being quarantined:
	// the controller stops trusting them and falls back to conservative
	// placement and capped frequencies.
	EventDegradedMode EventType = "degraded_mode"
	// EventDegradedRecovered marks a quarantined node's metrics being
	// trusted again after the quarantine window elapsed cleanly.
	EventDegradedRecovered EventType = "degraded_recovered"
)

// Event is one structured telemetry event.
type Event struct {
	// Seq is the global append sequence number (monotonic, never reused),
	// so a reader can detect ring overwrites between dumps.
	Seq uint64 `json:"seq"`
	// At is the recording component's clock at the event: simulated time
	// for simulation-side events, elapsed wall time for cluster-side
	// events (the control plane runs in real time). Encoded in
	// nanoseconds.
	At time.Duration `json:"at_ns"`
	// Type is the event type.
	Type EventType `json:"type"`
	// Node identifies the battery node involved, when there is one.
	Node string `json:"node,omitempty"`
	// Detail is a short free-form description ("vm-3 -> node-2").
	Detail string `json:"detail,omitempty"`
}

// DefaultTraceCapacity is the event-ring size NewRecorder uses.
const DefaultTraceCapacity = 4096

// Tracer is a fixed-capacity ring buffer of events. Writes are
// mutex-serialized — events are cold-path (a few per control period, not
// per tick) — and overwrite the oldest entry when full. The nil Tracer is
// valid and drops every event.
type Tracer struct {
	mu   sync.Mutex
	buf  []Event
	next uint64 // total events ever recorded
}

// NewTracer returns a tracer keeping the last capacity events
// (DefaultTraceCapacity when non-positive).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Tracer{buf: make([]Event, 0, capacity)}
}

// Record appends one event, assigning its sequence number.
func (t *Tracer) Record(ev Event) {
	if t == nil {
		return
	}
	t.mu.Lock()
	ev.Seq = t.next
	t.next++
	if len(t.buf) < cap(t.buf) {
		t.buf = append(t.buf, ev)
	} else {
		t.buf[int(ev.Seq)%cap(t.buf)] = ev
	}
	t.mu.Unlock()
}

// Events returns the retained events oldest-first.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, 0, len(t.buf))
	if len(t.buf) < cap(t.buf) {
		return append(out, t.buf...)
	}
	// Full ring: the oldest entry sits at the next write position.
	start := int(t.next) % cap(t.buf)
	out = append(out, t.buf[start:]...)
	return append(out, t.buf[:start]...)
}

// Total returns how many events were ever recorded, including those the
// ring has since overwritten.
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.next
}

// Dropped returns how many events have been overwritten.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.next - uint64(len(t.buf))
}
