// Command baatsim runs the simulated BAAT prototype under one of the
// registered power-management policies and reports per-day and end-of-run
// statistics. `baatsim policies` lists the registry; `baatsim serve` hosts
// many simulations behind an HTTP/JSON control plane (see docs/SERVICE.md).
//
// Examples:
//
//	baatsim -policy baat -days 10 -sunshine 0.5
//	baatsim -policy "baat,floor=0.25,trigger=0.40" -days 10
//	baatsim -policy ebuff -weather cloudy -days 3 -csv trace.csv
//	baatsim -policy baat-f -until-eol -accel 10 -sunshine 0.6
//	baatsim policies
//	baatsim serve -addr 127.0.0.1:8080
package main

import (
	"encoding/csv"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	baat "github.com/green-dc/baat"
)

func main() {
	args := os.Args[1:]
	var err error
	switch {
	case len(args) > 0 && args[0] == "serve":
		err = runServe(args[1:])
	case len(args) > 0 && args[0] == "policies":
		err = runPolicies(args[1:])
	default:
		err = run(args)
	}
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			os.Exit(2)
		}
		fmt.Fprintln(os.Stderr, "baatsim:", err)
		os.Exit(1)
	}
}

// cliFlags holds every flag of the single-run command, so parsing,
// validation, and execution can live in separate functions.
type cliFlags struct {
	policyName string
	days       int
	weather    string
	sunshine   float64
	seed       int64
	nodes      int
	workers    int
	accel      float64
	untilEOL   bool
	maxDays    int
	prototype  bool
	jobsPerDay int
	solarScale float64
	csvPath    string
	planned    float64
	faultsName string
	faultsSeed int64
	ckEvery    int
	ckPath     string
	resumePath string
	telAddr    string
	telHold    time.Duration
	battModel  string
	battMix    string
}

// registerFlags declares the single-run flag set.
func registerFlags(fs *flag.FlagSet) *cliFlags {
	f := &cliFlags{}
	fs.StringVar(&f.policyName, "policy", "baat", "policy spec: name[,key=value...] (see 'baatsim policies')")
	fs.IntVar(&f.days, "days", 7, "number of days to simulate")
	fs.StringVar(&f.weather, "weather", "mix", "weather: sunny | cloudy | rainy | mix")
	fs.Float64Var(&f.sunshine, "sunshine", 0.5, "sunshine fraction for -weather mix")
	fs.Int64Var(&f.seed, "seed", 1, "random seed")
	fs.IntVar(&f.nodes, "nodes", 6, "number of battery nodes")
	fs.IntVar(&f.workers, "workers", 1, "node-stepping workers (1 = serial, -1 = all CPUs; never changes results)")
	fs.Float64Var(&f.accel, "accel", 1, "battery aging acceleration factor")
	fs.BoolVar(&f.untilEOL, "until-eol", false, "run until the first battery reaches end-of-life")
	fs.IntVar(&f.maxDays, "max-days", 365, "day cap for -until-eol")
	fs.BoolVar(&f.prototype, "prototype-services", true, "deploy the six paper workloads as persistent services")
	fs.IntVar(&f.jobsPerDay, "jobs", 2, "batch jobs submitted per day")
	fs.Float64Var(&f.solarScale, "solar-scale", 1.5, "PV array scale relative to the prototype")
	fs.StringVar(&f.csvPath, "csv", "", "write per-day stats to this CSV file")
	fs.Float64Var(&f.planned, "planned-months", 0, "shorthand for the policy option planned-months=N (0 = off)")
	fs.StringVar(&f.faultsName, "faults", "none", "fault-injection profile: "+strings.Join(baat.FaultProfileNames(), " | "))
	fs.Int64Var(&f.faultsSeed, "faults-seed", 0, "fault injector seed (0 derives from -seed via the named fault substream)")
	fs.IntVar(&f.ckEvery, "checkpoint-every", 0, "write a checkpoint every N simulated days (requires -checkpoint; fixed-days runs only)")
	fs.StringVar(&f.ckPath, "checkpoint", "", "checkpoint file written by -checkpoint-every")
	fs.StringVar(&f.resumePath, "resume", "", "resume a fixed-days run from this checkpoint; -days stays the total horizon")
	fs.StringVar(&f.telAddr, "telemetry-addr", "", "serve /metrics, /events, and /debug/pprof on this address (e.g. :8080; empty = off)")
	fs.DurationVar(&f.telHold, "telemetry-hold", 0, "keep the telemetry endpoint alive this long after the run (so scrapers catch the final state)")
	fs.StringVar(&f.battModel, "battery-model", "leadacid", "battery model tier: leadacid | linear | lfp")
	fs.StringVar(&f.battMix, "battery-mix", "", "mixed fleet as model=fraction pairs, e.g. 'leadacid=0.5,lfp=0.5' (fractions sum to 1; exclusive with -battery-model)")
	return f
}

// parseFlags parses and cross-validates the single-run command line.
func parseFlags(args []string) (*cliFlags, error) {
	fs := flag.NewFlagSet("baatsim", flag.ContinueOnError)
	f := registerFlags(fs)
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if fs.NArg() > 0 {
		return nil, fmt.Errorf("unexpected argument %q (flags only; did you mean 'baatsim serve'?)", fs.Arg(0))
	}
	if err := validateFlags(fs, f); err != nil {
		return nil, err
	}
	return f, nil
}

// validateFlags rejects flag combinations that cannot mean what the user
// intended — before any simulator state is constructed, so the error names
// the conflict instead of surfacing later as a config-hash mismatch or a
// silently ignored knob. fs.Visit reports only flags explicitly set on the
// command line, which distinguishes "asked for the default" from "didn't
// ask".
func validateFlags(fs *flag.FlagSet, f *cliFlags) error {
	set := map[string]bool{}
	fs.Visit(func(fl *flag.Flag) { set[fl.Name] = true })
	if set["battery-mix"] && set["battery-model"] {
		return errors.New("-battery-mix and -battery-model are mutually exclusive: a mixed fleet already assigns every node a model")
	}
	if f.resumePath != "" && set["battery-mix"] {
		return errors.New("-resume cannot be combined with -battery-mix: mixed-fleet checkpoints are not resumable")
	}
	if f.resumePath != "" && f.untilEOL {
		return errors.New("-resume cannot be combined with -until-eol: only fixed-days runs checkpoint")
	}
	if f.untilEOL && (set["checkpoint-every"] || set["checkpoint"]) {
		return errors.New("-until-eol cannot be combined with checkpointing: checkpoints cover fixed-days runs only")
	}
	if f.ckEvery < 0 {
		return fmt.Errorf("-checkpoint-every must be positive, got %d", f.ckEvery)
	}
	if f.ckEvery > 0 && f.ckPath == "" {
		return errors.New("-checkpoint-every requires -checkpoint")
	}
	if f.ckPath != "" && f.ckEvery == 0 {
		return errors.New("-checkpoint requires -checkpoint-every (a file with no cadence would never be written)")
	}
	if set["telemetry-hold"] && f.telAddr == "" {
		return errors.New("-telemetry-hold requires -telemetry-addr (there is no endpoint to hold open)")
	}
	return nil
}

func run(args []string) error {
	f, err := parseFlags(args)
	if err != nil {
		return err
	}
	spec, err := baat.ParsePolicySpec(f.policyName)
	if err != nil {
		return err
	}
	if f.planned > 0 {
		// The flag is sugar for the registry option; a planned-months set
		// directly in -policy wins so the two spellings never fight.
		if _, ok := spec.Options["planned-months"]; !ok {
			if spec.Options == nil {
				spec.Options = map[string]string{}
			}
			spec.Options["planned-months"] = strconv.FormatFloat(f.planned, 'g', -1, 64)
		}
	}
	// Build once up front so a bad option value fails before any simulator
	// state (or telemetry endpoint) exists.
	if _, err := baat.BuildPolicy(spec); err != nil {
		return err
	}

	var rec *baat.Recorder
	if f.telAddr != "" {
		rec = baat.NewRecorder()
		srv, err := baat.ServeTelemetry(rec, f.telAddr)
		if err != nil {
			return err
		}
		defer func() { _ = srv.Close() }()
		fmt.Printf("telemetry: http://%s/metrics (events at /events, profiles at /debug/pprof/)\n", srv.Addr())
	}

	scfg := baat.DefaultSimConfig()
	scfg.Policy = spec
	scfg.Telemetry = rec
	scfg.Seed = f.seed
	scfg.Nodes = f.nodes
	scfg.Workers = f.workers
	scfg.JobsPerDay = f.jobsPerDay
	scfg.Solar.Scale = f.solarScale
	scfg.Node.AgingConfig.AccelFactor = f.accel
	switch {
	case f.battMix != "":
		shares, err := parseBatteryMix(f.battMix)
		if err != nil {
			return err
		}
		scfg.BatteryFleet = shares
	default:
		bk, err := baat.ParseBatteryKind(f.battModel)
		if err != nil {
			return err
		}
		// The default tier reproduces DefaultSimConfig exactly (identical
		// config hash), so checkpoints written before the flag existed
		// still resume.
		ncfg, err := scfg.Node.WithBatteryModel(bk)
		if err != nil {
			return err
		}
		scfg.Node = ncfg
	}
	if f.prototype {
		scfg.Services = baat.PrototypeServices()
	}
	fcfg, err := baat.FaultProfile(f.faultsName, f.faultsSeed)
	if err != nil {
		return err
	}
	scfg.Faults = fcfg
	s, err := baat.NewSimulator(scfg)
	if err != nil {
		return err
	}
	resumedDays := 0
	if f.resumePath != "" {
		if err := resumeFromFile(s, f.resumePath); err != nil {
			return err
		}
		resumedDays = s.Day()
		fmt.Printf("resumed from %s after day %d\n", f.resumePath, resumedDays)
	}

	var res *baat.SimResult
	if f.untilEOL {
		res, err = s.RunUntilEndOfLife(baat.Location{SunshineFraction: f.sunshine}, f.maxDays)
	} else {
		seq, serr := weatherSeq(f.weather, f.sunshine, f.days, f.seed)
		if serr != nil {
			return serr
		}
		// A resumed run replays only the weather suffix the checkpoint has
		// not consumed; the -days horizon counts from day one.
		if done := s.Day(); done > 0 {
			if done >= len(seq) {
				return fmt.Errorf("checkpoint already covers day %d of a %d-day horizon", done, f.days)
			}
			seq = seq[done:]
		}
		if f.ckEvery > 0 {
			res, err = s.RunWithCheckpoints(seq, f.ckEvery, func(day int, data []byte) error {
				if werr := writeFileAtomic(f.ckPath, data); werr != nil {
					return werr
				}
				fmt.Printf("checkpoint after day %d written to %s\n", day, f.ckPath)
				return nil
			})
		} else {
			res, err = s.Run(seq)
		}
	}
	if err != nil {
		return err
	}
	if resumedDays > 0 {
		// The Result covers only the days this process executed; the
		// simulator's serialized history covers the checkpointed prefix
		// too, so the report spans the whole horizon.
		res.Days = s.History()
		res.Throughput = 0
		for _, d := range res.Days {
			res.Throughput += d.Throughput
		}
	}

	printResult(res, f.accel)
	printPredictions(s, f.accel)
	if f.csvPath != "" {
		if err := writeCSV(f.csvPath, res); err != nil {
			return err
		}
		fmt.Printf("per-day stats written to %s\n", f.csvPath)
	}
	if rec != nil && f.telHold > 0 {
		fmt.Printf("holding telemetry endpoint for %v\n", f.telHold)
		time.Sleep(f.telHold)
	}
	return nil
}

// runPolicies is the `baatsim policies` subcommand: it renders the policy
// registry — every name -policy (and the serve API) accepts, with each
// policy's option vocabulary.
func runPolicies(args []string) error {
	fs := flag.NewFlagSet("baatsim policies", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected argument %q", fs.Arg(0))
	}
	for _, info := range baat.RegisteredPolicies() {
		fmt.Printf("%s (%s)\n", info.Name, info.Display)
		if len(info.Aliases) > 0 {
			fmt.Printf("  aliases: %s\n", strings.Join(info.Aliases, ", "))
		}
		fmt.Printf("  %s\n", info.Doc)
		keys := make([]string, 0, len(info.Options))
		for k := range info.Options {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Printf("  -policy %s,%s=...  %s\n", info.Name, k, info.Options[k])
		}
		fmt.Println()
	}
	return nil
}

// parseBatteryMix parses the -battery-mix syntax: comma-separated
// model=fraction pairs, e.g. "leadacid=0.5,lfp=0.5". Fraction validation
// (positive, summing to 1) is left to the simulator's config check.
func parseBatteryMix(s string) ([]baat.BatteryShare, error) {
	var shares []baat.BatteryShare
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, frac, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("battery mix entry %q is not model=fraction", part)
		}
		kind, err := baat.ParseBatteryKind(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		f, err := strconv.ParseFloat(strings.TrimSpace(frac), 64)
		if err != nil {
			return nil, fmt.Errorf("battery mix entry %q: bad fraction: %v", part, err)
		}
		shares = append(shares, baat.BatteryShare{Model: kind, Fraction: f})
	}
	if len(shares) == 0 {
		return nil, fmt.Errorf("battery mix %q contains no model=fraction pairs", s)
	}
	return shares, nil
}

func weatherSeq(name string, frac float64, days int, seed int64) ([]baat.Weather, error) {
	if days <= 0 {
		return nil, fmt.Errorf("days must be positive, got %d", days)
	}
	fixed := map[string]baat.Weather{
		"sunny":  baat.Sunny,
		"cloudy": baat.Cloudy,
		"rainy":  baat.Rainy,
	}
	if w, ok := fixed[strings.ToLower(name)]; ok {
		seq := make([]baat.Weather, days)
		for i := range seq {
			seq[i] = w
		}
		return seq, nil
	}
	if strings.ToLower(name) != "mix" {
		return nil, fmt.Errorf("unknown weather %q (want sunny, cloudy, rainy, or mix)", name)
	}
	loc := baat.Location{SunshineFraction: frac}
	if err := loc.Validate(); err != nil {
		return nil, err
	}
	stream := baat.NewStream(seed, baat.StreamCLIWeather)
	seq := make([]baat.Weather, days)
	for i := range seq {
		seq[i] = loc.DrawWeather(stream.Rand)
	}
	return seq, nil
}

// resumeFromFile restores a checkpoint written by -checkpoint-every.
func resumeFromFile(s *baat.Simulator, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer func() { _ = f.Close() }()
	return s.ResumeFrom(f)
}

// writeFileAtomic writes data via a temp file + rename so an interrupted
// run never leaves a truncated checkpoint behind.
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		_ = tmp.Close()
		_ = os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		_ = os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}

func printResult(res *baat.SimResult, accel float64) {
	fmt.Printf("policy: %s\n\n", res.Policy)
	fmt.Printf("%-5s %-7s %12s %12s %12s %12s\n",
		"day", "weather", "throughput", "downtime", "low-SoC", "solar kWh")
	for _, d := range res.Days {
		fmt.Printf("%-5d %-7s %12.2f %12s %12s %12.2f\n",
			d.Day, d.Weather, d.Throughput, d.Downtime, d.LowSoCTime, float64(d.SolarEnergy)/1000)
	}
	fmt.Println()
	fmt.Printf("total throughput: %.2f work units\n", res.Throughput)
	if res.FleetLifetime > 0 {
		real := time.Duration(float64(res.FleetLifetime) * accel)
		fmt.Printf("fleet lifetime (first battery at end-of-life): %.1f days (≈%.1f real days at accel %.0fx)\n",
			res.FleetLifetime.Hours()/24, real.Hours()/24, accel)
	}
	fmt.Println("\nnode summary:")
	fmt.Printf("%-8s %8s %8s %8s %8s %8s %8s %10s\n",
		"node", "health", "SoC", "NAT", "CF", "PC", "DDT", "downtime")
	for _, n := range res.Nodes {
		fmt.Printf("%-8s %8.3f %8.2f %8.4f %8.2f %8.3f %8.3f %10s\n",
			n.ID, n.Health, n.SoC, n.Metrics.NAT, n.Metrics.CF, n.Metrics.PC, n.Metrics.DDT, n.Downtime)
	}
	if worst, ok := res.WorstNode(); ok {
		fmt.Printf("\nworst node (most Ah throughput): %s (NAT %.4f, health %.3f)\n",
			worst.ID, worst.Metrics.NAT, worst.Health)
	}
}

func printPredictions(s *baat.Simulator, accel float64) {
	fmt.Println("\nprojected battery end-of-life (at the observed damage rate):")
	for _, p := range baat.PredictLifetimes(s.Nodes()) {
		if p.TimeToEndOfLife > 100*365*24*time.Hour {
			fmt.Printf("  %-8s health %.3f  no measurable wear yet\n", p.NodeID, p.Health)
			continue
		}
		real := time.Duration(float64(p.TimeToEndOfLife) * accel)
		fmt.Printf("  %-8s health %.3f  ≈%.0f days to end-of-life\n",
			p.NodeID, p.Health, real.Hours()/24)
	}
}

func writeCSV(path string, res *baat.SimResult) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() { _ = f.Close() }()
	w := csv.NewWriter(f)
	defer w.Flush()
	if err := w.Write([]string{"day", "weather", "throughput", "downtime_s", "low_soc_s", "solar_wh"}); err != nil {
		return err
	}
	for _, d := range res.Days {
		rec := []string{
			strconv.Itoa(d.Day),
			d.Weather.String(),
			strconv.FormatFloat(d.Throughput, 'f', 4, 64),
			strconv.FormatFloat(d.Downtime.Seconds(), 'f', 0, 64),
			strconv.FormatFloat(d.LowSoCTime.Seconds(), 'f', 0, 64),
			strconv.FormatFloat(float64(d.SolarEnergy), 'f', 1, 64),
		}
		if err := w.Write(rec); err != nil {
			return err
		}
	}
	return w.Error()
}
