#!/usr/bin/env sh
# bench_trend.sh — append one benchmark-suite run to BENCH_history.jsonl.
#
# Each invocation runs the fixed perf suite (cmd/baatbench -bench-json)
# and appends a single JSON line {sha, dirty, unix_time, report} to the
# history file, so throughput over time is a jq/gnuplot one-liner away:
#
#   jq -r '[.sha, (.report.entries[] | select(.name ==
#       "fleet_step/nodes=65536/workers=1") | .node_steps_per_sec)] | @tsv' \
#       BENCH_history.jsonl
#
# Usage: scripts/bench_trend.sh [history-file]   (default BENCH_history.jsonl)
set -eu

cd "$(dirname "$0")/.."
HISTORY="${1:-BENCH_history.jsonl}"

SHA=$(git rev-parse HEAD 2>/dev/null || echo unknown)
DIRTY=false
if ! git diff --quiet HEAD 2>/dev/null; then
	DIRTY=true
fi
NOW=$(date +%s)

TMP=$(mktemp)
trap 'rm -f "$TMP"' EXIT

go run ./cmd/baatbench -bench-json "$TMP"

# Collapse the indented report onto one line and wrap it with provenance.
REPORT=$(tr -d '\n' <"$TMP" | tr -s ' ')
printf '{"sha":"%s","dirty":%s,"unix_time":%s,"report":%s}\n' \
	"$SHA" "$DIRTY" "$NOW" "$REPORT" >>"$HISTORY"

echo "bench-trend: appended run for $SHA to $HISTORY"
