package experiments

// The warm-start acceptance suite: a sweep that fast-forwards its variants
// from a memoized burn-in checkpoint must render byte-identically to one
// that re-simulates every burn-in, and a warm sweep with one distinct
// burn-in must execute it exactly once. AgingComparison is the probe
// because its old-battery cells all share the neutral burn-in.

import (
	"testing"
)

// coldTable runs exp with memoization disabled (every cell re-simulates
// its own burn-in) and returns the rendered table.
func coldTable(t *testing.T, exp func(Config) (*Table, error), cfg Config) string {
	t.Helper()
	warmStartOff.Store(true)
	defer warmStartOff.Store(false)
	tab, err := exp(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tab.Render()
}

// warmTable runs exp against an empty memo and returns the rendered table
// plus how many burn-ins actually executed.
func warmTable(t *testing.T, exp func(Config) (*Table, error), cfg Config) (string, int64) {
	t.Helper()
	resetWarmStarts()
	defer resetWarmStarts()
	tab, err := exp(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tab.Render(), burnInRuns.Load()
}

// TestWarmSweepMatchesCold: warm-started sweeps are an optimization, not a
// different experiment — their output must be byte-identical to the cold
// path, with the shared neutral burn-in run exactly once.
func TestWarmSweepMatchesCold(t *testing.T) {
	if testing.Short() {
		t.Skip("duplicate sweep")
	}
	// Quick mode drops the old-battery scenarios, which are the whole
	// point here — run the full sweep with aging compressed hard so each
	// burn-in is only a couple of days.
	cfg := quickCfg()
	cfg.Quick = false
	cfg.Accel = 135
	cold := coldTable(t, AgingComparison, cfg)
	warm, runs := warmTable(t, AgingComparison, cfg)
	if warm != cold {
		t.Errorf("warm-started sweep rendered differently from cold sweep:\n--- cold ---\n%s\n--- warm ---\n%s", cold, warm)
	}
	if runs != 1 {
		t.Errorf("warm sweep executed %d burn-ins, want exactly 1", runs)
	}
}

// TestWarmSweepMatchesColdOwnAging: the Fig 20 deployment sweep ages each
// policy under its own management, so the warm path must keep the
// per-policy burn-ins distinct — one execution per policy, never shared.
func TestWarmSweepMatchesColdOwnAging(t *testing.T) {
	if testing.Short() {
		t.Skip("duplicate sweep")
	}
	cfg := quickCfg()
	cold := coldTable(t, Throughput, cfg)
	warm, runs := warmTable(t, Throughput, cfg)
	if warm != cold {
		t.Errorf("warm-started sweep rendered differently from cold sweep:\n--- cold ---\n%s\n--- warm ---\n%s", cold, warm)
	}
	// Quick mode sweeps two policies in their old-battery scenario; each
	// needs its own burn-in and nothing more.
	if runs < 1 || runs > int64(len(policyNames())) {
		t.Errorf("own-aging warm sweep executed %d burn-ins, want one per swept policy (≤%d)", runs, len(policyNames()))
	}
}

// TestWarmStartMemoSharing: two runs of the same experiment share one memo
// — the second sweep must not re-execute any burn-in.
func TestWarmStartMemoSharing(t *testing.T) {
	if testing.Short() {
		t.Skip("duplicate sweep")
	}
	resetWarmStarts()
	defer resetWarmStarts()
	cfg := quickCfg()
	first, err := AgingComparison(cfg)
	if err != nil {
		t.Fatal(err)
	}
	after := burnInRuns.Load()
	second, err := AgingComparison(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := burnInRuns.Load(); got != after {
		t.Errorf("second sweep re-ran burn-ins (%d -> %d), memo not shared", after, got)
	}
	if first.Render() != second.Render() {
		t.Error("two warm sweeps of the same experiment rendered differently")
	}
}
