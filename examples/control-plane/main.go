// Control plane: the distributed sensing/actuation architecture of Fig 7 —
// a central BAAT controller and one agent per battery node, talking
// newline-delimited JSON over TCP, the software analogue of the prototype's
// sensor DAQ + IPDU/SNMP path.
//
// The example starts a controller and three agents in one process (they
// would normally run on different machines), drives the nodes through some
// battery activity, and shows the controller observing fleet state and
// throttling a server whose battery runs low.
//
// Run with:
//
//	go run ./examples/control-plane
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	baat "github.com/green-dc/baat"
)

func main() {
	// 1. Central controller on an ephemeral local port.
	ctrl, err := baat.ListenController(baat.DefaultControllerConfig("127.0.0.1:0"))
	if err != nil {
		log.Fatal(err)
	}
	defer func() { _ = ctrl.Close() }()
	fmt.Println("controller listening on", ctrl.Addr())

	// 2. Three battery nodes, each wrapped in an agent. The second node
	//    gets a heavy workload so its battery drains visibly.
	handles := make(map[string]interface {
		WithLock(func(*baat.Node) error) error
	})
	for i, id := range []string{"rack-a", "rack-b", "rack-c"} {
		n, err := baat.NewNode(id, baat.DefaultNodeConfig())
		if err != nil {
			log.Fatal(err)
		}
		if i == 1 {
			profile, err := baat.WorkloadProfileFor(baat.SoftwareTesting)
			if err != nil {
				log.Fatal(err)
			}
			v, err := baat.NewVM("heavy-job", profile.AsService())
			if err != nil {
				log.Fatal(err)
			}
			if err := n.Server().Attach(v); err != nil {
				log.Fatal(err)
			}
		}
		handle, err := baat.NewLocalNode(n)
		if err != nil {
			log.Fatal(err)
		}
		handles[id] = handle
		acfg := baat.DefaultAgentConfig(ctrl.Addr())
		acfg.ReportInterval = 50 * time.Millisecond
		agent, err := baat.StartAgent(acfg, handle)
		if err != nil {
			log.Fatal(err)
		}
		defer func() { _ = agent.Close() }()

		// 3. Drive each node in the background: the loaded node discharges
		//    its battery (no solar), the others idle. WithLock keeps the
		//    driver and the reporting agent serialized.
		go func(h interface {
			WithLock(func(*baat.Node) error) error
		}) {
			for j := 0; j < 300; j++ {
				_ = h.WithLock(func(n *baat.Node) error {
					_, err := n.Step(2*time.Minute, 0, 0)
					return err
				})
				time.Sleep(5 * time.Millisecond)
			}
		}(handle)
	}

	// 4. Watch the fleet from the controller and intervene like the
	//    slowdown arm of Fig 9: when a battery sinks below 40 % SoC, cap
	//    its server's frequency.
	throttled := map[string]bool{}
	for round := 0; round < 10; round++ {
		time.Sleep(300 * time.Millisecond)
		fmt.Printf("\n-- controller view, round %d --\n", round+1)
		for _, st := range ctrl.Snapshot() {
			r := st.Report
			fmt.Printf("%-7s SoC %5.1f%%  %6.2fV  %5.1fW server  DDT %4.1f%%  stale=%v\n",
				r.NodeID, r.SoC*100, r.Voltage, r.ServerPowerW, r.Metrics.DDT*100, st.Stale)
			if r.SoC < baat.DeepDischargeSoC && !throttled[r.NodeID] {
				ack, err := ctrl.SendCommand(context.Background(), r.NodeID,
					baat.NodeCommand{Action: baat.ActionSetFrequency, FrequencyIndex: 0})
				if err != nil {
					log.Printf("throttle %s failed: %v", r.NodeID, err)
					continue
				}
				throttled[r.NodeID] = true
				fmt.Printf("        -> battery below 40%%: throttled server (ack %v)\n", ack.OK)
			}
		}
		if len(throttled) > 0 && round >= 5 {
			break
		}
	}
	if len(throttled) == 0 {
		fmt.Println("\nno battery crossed the slowdown line during the demo window")
		return
	}
	fmt.Println("\ndone: the controller sensed deep discharge remotely and capped the server,")
	fmt.Println("exactly the §IV-C slowdown path (sans migration) over a real socket.")
}
