package sim

// The cross-fidelity golden comparison: the linear coulomb-counting tier
// replays the exact 30-day golden scenarios (clean and chaos-faulted) and
// its headline metrics are compared against the committed electrochemical
// fixtures. This is the standing accuracy contract of the cheap tier — the
// linear model skips Peukert capacity scaling, voltage sag, and the
// thermal model, so it cannot (and should not) be byte-identical, but if
// its fleet-level behavior drifts past the bounds below, the tier is no
// longer a usable stand-in for capacity-planning sweeps and the bound (or
// the model) needs revisiting.
//
// Tolerances were measured against the fixtures at the time the linear
// tier landed (clean / chaos actuals in parentheses) and pinned with
// 2–4× headroom:
//
//   - throughput: the linear tier serves the same workload within 5 %
//     (measured ≈1.1 % on both scenarios — sag-free voltage lets it run
//     slightly deeper before cutoff).
//   - mean final health: within 0.02 absolute (measured ≈0.002 clean,
//     ≈0.003 chaos) — the cheap tier's single calibrated fade rate tracks
//     the electrochemical fade to a fraction of a percent over a month.
//   - mean final SoC: within 0.15 absolute (measured ≈0.02 clean, ≈0.06
//     chaos) — end-of-day SoC is policy-dominated, not chemistry-
//     dominated.
//   - SoC distribution: the seven-bin Fig 19 histogram moves by less than
//     0.25 total variation (measured ≈0.04 clean, ≈0.07 chaos) — the
//     tiers keep the fleet in the same operating band, shifted slightly
//     by the missing sag.
//   - discharge throughput (Ah): within 10 % (measured ≈4 %) — no Peukert
//     derating means the linear tier draws slightly less charge for the
//     same energy.

import (
	"encoding/json"
	"math"
	"os"
	"testing"
	"time"

	"github.com/green-dc/baat/internal/battery"
)

// fidelitySummary reduces a golden trace to the fleet-level metrics the
// cross-tier comparison is allowed to judge.
type fidelitySummary struct {
	throughput  float64
	meanHealth  float64
	meanSoC     float64
	totalAhOut  float64
	socDist     []float64 // normalized seven-bin SoC histogram
	downtimeHrs float64
}

func summarize(tr *goldenTrace) fidelitySummary {
	s := fidelitySummary{throughput: tr.Throughput}
	for _, n := range tr.FinalNodes {
		s.meanHealth += n.Health
		s.meanSoC += n.SoC
		s.totalAhOut += n.AhOut
	}
	if len(tr.FinalNodes) > 0 {
		s.meanHealth /= float64(len(tr.FinalNodes))
		s.meanSoC /= float64(len(tr.FinalNodes))
	}
	if tr.SoCTotal > 0 {
		s.socDist = make([]float64, len(tr.SoCCounts))
		for i, c := range tr.SoCCounts {
			s.socDist[i] = float64(c) / float64(tr.SoCTotal)
		}
	}
	for _, d := range tr.DayTrace {
		s.downtimeHrs += (time.Duration(d.DowntimeNS)).Hours()
	}
	return s
}

// relErr is |a-b| / max(|b|, 1e-12).
func relErr(a, b float64) float64 {
	return math.Abs(a-b) / math.Max(math.Abs(b), 1e-12)
}

// totalVariation is ½ Σ |p_i − q_i| over the normalized histograms.
func totalVariation(p, q []float64) float64 {
	tv := 0.0
	for i := range p {
		tv += math.Abs(p[i] - q[i])
	}
	return tv / 2
}

// linearMutate swaps the golden configuration onto the linear tier.
func linearMutate(t *testing.T) func(*Config) {
	t.Helper()
	return func(c *Config) {
		ncfg, err := c.Node.WithBatteryModel(battery.KindLinear)
		if err != nil {
			t.Fatal(err)
		}
		// WithBatteryModel swaps in the linear default aging config; keep
		// the golden scenario's acceleration so fade is comparable.
		c.Node = ncfg
	}
}

func TestCrossFidelityGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("two 30-day replays")
	}
	cases := []struct {
		name    string
		fixture string
		mutate  func(*Config)
	}{
		{"clean", goldenPath, nil},
		{"chaos", goldenFaultedPath, faultedMutate(t)},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			ref := loadGoldenFixture(t, tc.fixture)
			mutate := func(c *Config) {
				if tc.mutate != nil {
					tc.mutate(c)
				}
				linearMutate(t)(c)
			}
			got := goldenScenario(t, "linear-tier replay of the "+tc.name+" golden scenario", mutate)

			refSum, gotSum := summarize(ref), summarize(got)
			t.Logf("%s: throughput rel err %.4f, health abs err %.5f, soc abs err %.4f, ahout rel err %.4f, soc TV %.4f, downtime ref %.2fh got %.2fh",
				tc.name,
				relErr(gotSum.throughput, refSum.throughput),
				math.Abs(gotSum.meanHealth-refSum.meanHealth),
				math.Abs(gotSum.meanSoC-refSum.meanSoC),
				relErr(gotSum.totalAhOut, refSum.totalAhOut),
				totalVariation(gotSum.socDist, refSum.socDist),
				refSum.downtimeHrs, gotSum.downtimeHrs)

			if e := relErr(gotSum.throughput, refSum.throughput); e > 0.05 {
				t.Errorf("throughput error %.4f exceeds 5%% (linear %.1f vs reference %.1f)",
					e, gotSum.throughput, refSum.throughput)
			}
			if e := math.Abs(gotSum.meanHealth - refSum.meanHealth); e > 0.02 {
				t.Errorf("mean health error %.5f exceeds 0.02 (linear %.4f vs reference %.4f)",
					e, gotSum.meanHealth, refSum.meanHealth)
			}
			if e := math.Abs(gotSum.meanSoC - refSum.meanSoC); e > 0.15 {
				t.Errorf("mean SoC error %.4f exceeds 0.15 (linear %.3f vs reference %.3f)",
					e, gotSum.meanSoC, refSum.meanSoC)
			}
			if e := relErr(gotSum.totalAhOut, refSum.totalAhOut); e > 0.10 {
				t.Errorf("Ah-out error %.4f exceeds 10%% (linear %.1f vs reference %.1f)",
					e, gotSum.totalAhOut, refSum.totalAhOut)
			}
			if e := totalVariation(gotSum.socDist, refSum.socDist); e > 0.25 {
				t.Errorf("SoC distribution moved %.4f total variation, limit 0.25", e)
			}
		})
	}
}

// loadGoldenFixture reads a committed reference trace.
func loadGoldenFixture(t *testing.T, path string) *goldenTrace {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden fixture %s: %v", path, err)
	}
	var tr goldenTrace
	if err := json.Unmarshal(raw, &tr); err != nil {
		t.Fatalf("golden fixture %s unreadable: %v", path, err)
	}
	return &tr
}
