package rack

import (
	"fmt"
	"time"

	"github.com/green-dc/baat/internal/aging"
	"github.com/green-dc/baat/internal/battery"
	"github.com/green-dc/baat/internal/powernet"
	"github.com/green-dc/baat/internal/server"
)

// State is the serializable state of a Rack: the pooled battery, its aging
// bookkeeping, the sensor table, every server's state, and the rack's own
// clock and shedding accounting. The Config is construction-time input; a
// snapshot restores only onto a rack built from the same Config.
type State struct {
	ID      string             `json:"id"`
	Pool    battery.State      `json:"pool"`
	Tracker aging.TrackerState `json:"tracker"`
	Model   aging.ModelState   `json:"model"`
	Table   powernet.State     `json:"table"`
	Servers []server.State     `json:"servers"`

	Clock      time.Duration   `json:"clock"`
	DownTicks  int             `json:"down_ticks"`
	TotalTicks int             `json:"total_ticks"`
	ServerDown []time.Duration `json:"server_down"`
}

// Snapshot captures the rack's full state.
func (r *Rack) Snapshot() State {
	st := State{
		ID:         r.id,
		Pool:       r.pool.Snapshot(),
		Tracker:    r.tracker.Snapshot(),
		Model:      r.model.Snapshot(),
		Table:      r.table.Snapshot(),
		Clock:      r.clock,
		DownTicks:  r.downTicks,
		TotalTicks: r.totalTicks,
		ServerDown: append([]time.Duration(nil), r.serverDown...),
	}
	for _, s := range r.servers {
		st.Servers = append(st.Servers, s.Snapshot())
	}
	return st
}

// Restore overwrites the rack's state from a snapshot taken from a rack
// built with the same Config. Everything is validated before anything is
// mutated, so a corrupt checkpoint leaves the rack untouched.
func (r *Rack) Restore(st State) error {
	if st.ID != r.id {
		return fmt.Errorf("rack %s: restore: snapshot belongs to rack %s", r.id, st.ID)
	}
	if len(st.Servers) != len(r.servers) {
		return fmt.Errorf("rack %s: restore: snapshot has %d servers, rack has %d",
			r.id, len(st.Servers), len(r.servers))
	}
	if len(st.ServerDown) != len(r.servers) {
		return fmt.Errorf("rack %s: restore: snapshot tracks %d server downtimes, rack has %d servers",
			r.id, len(st.ServerDown), len(r.servers))
	}
	if st.Clock < 0 {
		return fmt.Errorf("rack %s: restore: negative clock %v", r.id, st.Clock)
	}
	if st.DownTicks < 0 || st.TotalTicks < 0 || st.DownTicks > st.TotalTicks {
		return fmt.Errorf("rack %s: restore: inconsistent tick counters (%d down of %d total)",
			r.id, st.DownTicks, st.TotalTicks)
	}
	for i, d := range st.ServerDown {
		if d < 0 {
			return fmt.Errorf("rack %s: restore: negative downtime for server %d", r.id, i)
		}
	}

	pool := *r.pool
	if err := pool.Restore(st.Pool); err != nil {
		return fmt.Errorf("rack %s: restore: %w", r.id, err)
	}
	tracker := *r.tracker
	if err := tracker.Restore(st.Tracker); err != nil {
		return fmt.Errorf("rack %s: restore: %w", r.id, err)
	}
	model := *r.model
	if err := model.Restore(st.Model); err != nil {
		return fmt.Errorf("rack %s: restore: %w", r.id, err)
	}
	table, err := powernet.NewPowerTable(r.cfg.TableCapacity)
	if err != nil {
		return fmt.Errorf("rack %s: restore: %w", r.id, err)
	}
	if err := table.Restore(st.Table); err != nil {
		return fmt.Errorf("rack %s: restore: %w", r.id, err)
	}
	for i, s := range r.servers {
		if err := s.Restore(st.Servers[i]); err != nil {
			return fmt.Errorf("rack %s: restore: %w", r.id, err)
		}
	}

	*r.pool = pool
	*r.tracker = tracker
	*r.model = model
	r.table = table
	r.clock = st.Clock
	r.downTicks = st.DownTicks
	r.totalTicks = st.TotalTicks
	copy(r.serverDown, st.ServerDown)
	return nil
}
