package rack

import (
	"fmt"
	"testing"
	"time"

	"github.com/green-dc/baat/internal/battery"
	"github.com/green-dc/baat/internal/vm"
	"github.com/green-dc/baat/internal/workload"
)

func newRack(t *testing.T, mutate ...func(*Config)) *Rack {
	t.Helper()
	cfg := DefaultConfig()
	for _, m := range mutate {
		m(&cfg)
	}
	r, err := New("rack-1", cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func attach(t *testing.T, r *Rack, serverIdx int, id string, k workload.Kind) *vm.VM {
	t.Helper()
	p, err := workload.ProfileFor(k)
	if err != nil {
		t.Fatal(err)
	}
	v, err := vm.New(id, p.AsService())
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Servers()[serverIdx].Attach(v); err != nil {
		t.Fatal(err)
	}
	return v
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"no servers", func(c *Config) { c.Servers = 0 }},
		{"bad server spec", func(c *Config) { c.ServerSpec.IdlePower = 0 }},
		{"bad pool spec", func(c *Config) { c.PoolSpec.NominalCapacity = 0 }},
		{"bad aging", func(c *Config) { c.AgingConfig.AccelFactor = 0 }},
		{"bad losses", func(c *Config) { c.Losses.ChargerEfficiency = 2 }},
		{"bad table", func(c *Config) { c.TableCapacity = 0 }},
		{"bad floor", func(c *Config) { c.SoCFloor = 1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tt.mutate(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Error("Validate() = nil, want error")
			}
			if _, err := New("x", cfg); err == nil {
				t.Error("New accepted invalid config")
			}
		})
	}
	if _, err := New("", DefaultConfig()); err == nil {
		t.Error("empty id accepted")
	}
}

func TestPoolBridgesWholeRack(t *testing.T) {
	r := newRack(t)
	for i := 0; i < 3; i++ {
		attach(t, r, i, fmt.Sprintf("svc-%d", i), workload.WebServing)
	}
	res, err := r.Step(time.Minute, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.ServersDown != 0 {
		t.Fatalf("servers shed with a full pool: %d", res.ServersDown)
	}
	if res.BatteryPower <= 0 {
		t.Error("pool did not discharge to carry the rack")
	}
	if res.WorkDone <= 0 {
		t.Error("no work done")
	}
	if r.Pool().SoC() >= 1 {
		t.Error("pool SoC unchanged")
	}
}

func TestSolarCoversRack(t *testing.T) {
	r := newRack(t)
	attach(t, r, 0, "svc", workload.WebServing)
	demand := r.Demand()
	res, err := r.Step(time.Minute, demand*2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.BatteryPower > 0 {
		t.Error("pool discharged despite solar surplus")
	}
	if res.SolarUsed <= 0 {
		t.Error("no solar consumed")
	}
}

func TestSheddingLowestUtilizationFirst(t *testing.T) {
	// Pool nearly empty: the rack must shed rather than crash everything.
	r := newRack(t, func(c *Config) {
		c.PoolSpec = battery.Parallel(battery.DefaultSpec(), 1)
	})
	// Drain the pool past its floor so it cannot help.
	heavy := attach(t, r, 0, "heavy", workload.SoftwareTesting)
	light := attach(t, r, 1, "light", workload.WordCount)
	for i := 0; i < 14*60 && !r.Pool().CutOff() && r.Pool().SoC() > 0.055; i++ {
		if _, err := r.Step(time.Minute, 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	// Enough solar for exactly one server: the rack must shed the light
	// one and keep the heavy one.
	res, err := r.Step(time.Minute, 180, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.ServersDown == 0 {
		t.Fatalf("no shedding with a dead pool (SoC %v)", r.Pool().SoC())
	}
	// The heavy VM's host should be preferred to stay if anything stays.
	srvHeavy := r.Servers()[0]
	srvLight := r.Servers()[1]
	if srvLight.Powered() && !srvHeavy.Powered() {
		t.Error("shed the high-utilization server before the low one")
	}
	_ = heavy
	_ = light
}

func TestStepValidation(t *testing.T) {
	r := newRack(t)
	if _, err := r.Step(0, 0, 0); err == nil {
		t.Error("zero duration accepted")
	}
	if _, err := r.Step(time.Minute, -1, 0); err == nil {
		t.Error("negative solar accepted")
	}
}

func TestChargeRequest(t *testing.T) {
	r := newRack(t)
	if got := r.ChargeRequest(); got != 0 {
		t.Errorf("full pool requests %v", got)
	}
	attach(t, r, 0, "svc", workload.SoftwareTesting)
	for i := 0; i < 120; i++ {
		if _, err := r.Step(time.Minute, 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	if got := r.ChargeRequest(); got <= 0 {
		t.Errorf("drained pool requests %v", got)
	}
	// And charging refills it once the load is solar-covered.
	before := r.Pool().SoC()
	if _, err := r.Step(time.Minute, 300, 500); err != nil {
		t.Fatal(err)
	}
	if r.Pool().SoC() <= before {
		t.Error("charge grant did not raise SoC")
	}
}

func TestIdleServersPoweredOff(t *testing.T) {
	r := newRack(t)
	res, err := r.Step(time.Minute, 1000, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Demand != 0 {
		t.Errorf("empty rack demands %v", res.Demand)
	}
	for _, s := range r.Servers() {
		if s.Powered() {
			t.Error("idle server left powered")
		}
	}
}

func TestMetricsAndStats(t *testing.T) {
	r := newRack(t)
	attach(t, r, 0, "svc", workload.SoftwareTesting)
	for i := 0; i < 240; i++ {
		if _, err := r.Step(time.Minute, 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	m := r.Metrics()
	if m.NAT <= 0 || m.DR <= 0 {
		t.Errorf("pool metrics empty: %+v", m)
	}
	st := r.Stats()
	if st.Throughput <= 0 {
		t.Error("no throughput recorded")
	}
	if st.Health > 1 || st.Health <= 0 {
		t.Errorf("health out of range: %v", st.Health)
	}
	if r.AtEndOfLife() {
		t.Error("fresh pool at end of life")
	}
}

func TestPooledAgingIsShared(t *testing.T) {
	// The architectural trade-off: in a rack, one server's heavy load ages
	// the battery every other server depends on.
	r := newRack(t, func(c *Config) {
		c.AgingConfig.AccelFactor = 100
	})
	attach(t, r, 0, "heavy", workload.SoftwareTesting)
	for i := 0; i < 6*60; i++ {
		if _, err := r.Step(time.Minute, 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	if r.Pool().Health() >= 1 {
		t.Error("shared pool did not age under one server's load")
	}
}
