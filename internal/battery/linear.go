package battery

import (
	"fmt"
	"math"
	"time"

	"github.com/green-dc/baat/internal/telemetry"
	"github.com/green-dc/baat/internal/units"
)

// linearDischargeCRate caps the linear tier's discharge at 2C. The
// electrochemical tiers derive their power limit from the IR drop; the
// linear tier has no voltage sag, so a fixed C-rate stands in for the
// protection circuit. 2C comfortably exceeds any draw the simulator's
// server loads produce, so the cap only matters for adversarial inputs.
const linearDischargeCRate = 2

// linearCutoffSoC mirrors the electrochemical empty threshold: below 2 %
// charge the protection disconnect trips.
const linearCutoffSoC = 0.02

// Linear is the fast coulomb-counting tier: terminal voltage is constant
// at nominal, capacity is rate-independent (no Peukert effect), and the
// case temperature simply tracks ambient (no thermal model). What remains
// is exact bookkeeping of charge in and out — self-discharge, coulombic
// losses, the charger taper, and the cumulative counters the aging
// metrics consume — which is the fidelity level "Choosing the Right
// Battery Model for Data Center Simulations" recommends for
// warehouse-scale sweeps. Like Pack, a Linear is not safe for concurrent
// use.
type Linear struct {
	spec Spec

	capacityScale   float64
	resistanceScale float64 // carried for snapshot compatibility; unused electrically

	soc  float64
	temp units.Celsius
	deg  Degradation

	ahOut     units.AmpereHour
	ahIn      units.AmpereHour
	whOut     units.WattHour
	whIn      units.WattHour
	operating time.Duration
	cycles    float64

	telDischarge *telemetry.Counter
	telCharge    *telemetry.Counter
	telRest      *telemetry.Counter
	telCutoff    *telemetry.Counter

	// hrDt/hrVal memoize dt.Hours() for the charge-integration steps;
	// sdDt/sdFactor memoize the per-step self-discharge pow keyed by dt
	// (the only varying input); a hit is bit-identical to recomputing.
	sdDt     time.Duration
	sdFactor float64
	hrDt     time.Duration
	hrVal    float64
}

// NewLinear constructs a Linear from spec.
func NewLinear(spec Spec, opts ...Option) (*Linear, error) {
	l := new(Linear)
	if err := NewLinearInto(l, spec, opts...); err != nil {
		return nil, err
	}
	return l, nil
}

// NewLinearInto initializes a Linear from spec in place, overwriting *l,
// so a fleet can lay linear models out in one contiguous slice.
func NewLinearInto(l *Linear, spec Spec, opts ...Option) error {
	if err := spec.Validate(); err != nil {
		return err
	}
	if spec.Chemistry.Normalize() != KindLinear {
		return fmt.Errorf("battery: spec chemistry %q is not the linear tier (use LinearSpec)", spec.Chemistry)
	}
	st := defaultSettings()
	for _, opt := range opts {
		opt(&st)
	}
	*l = Linear{
		spec:            spec,
		capacityScale:   st.capScale,
		resistanceScale: st.resScale,
		soc:             st.soc,
		temp:            st.temp,
	}
	l.telDischarge, l.telCharge, l.telRest, l.telCutoff = st.counters()
	return nil
}

// Kind identifies the model tier.
func (l *Linear) Kind() Kind { return KindLinear }

// Spec returns the nameplate specification.
func (l *Linear) Spec() Spec { return l.spec }

// SoC returns the current state of charge in [0, 1].
func (l *Linear) SoC() float64 { return l.soc }

// Temperature returns the case temperature, which for this tier is the
// last ambient temperature stepped with.
func (l *Linear) Temperature() units.Celsius { return l.temp }

// Degradation returns the wear applied so far.
func (l *Linear) Degradation() Degradation { return l.deg }

// Health returns remaining capacity as a fraction of initial capacity.
func (l *Linear) Health() float64 { return l.deg.Health() }

// ApplyDegradation replaces the wear state, clamped as Pack clamps it.
func (l *Linear) ApplyDegradation(d Degradation) {
	d.CapacityFade = units.Clamp01(d.CapacityFade)
	d.ResistanceGrowth = units.Clamp(d.ResistanceGrowth, 0, 20)
	d.EfficiencyLoss = units.Clamp(d.EfficiencyLoss, 0, l.spec.CoulombicEfficiency-0.05)
	l.deg = d
}

// EffectiveCapacity returns the capacity currently deliverable.
func (l *Linear) EffectiveCapacity() units.AmpereHour {
	return units.AmpereHour(float64(l.spec.NominalCapacity) * l.capacityScale * l.deg.Health())
}

// OpenCircuitVoltage is the constant nominal voltage.
func (l *Linear) OpenCircuitVoltage() units.Volt { return l.spec.NominalVoltage }

// TerminalVoltage is the constant nominal voltage: this tier models no IR
// drop.
func (l *Linear) TerminalVoltage(units.Ampere) units.Volt { return l.spec.NominalVoltage }

// MaxDischargePower is the tier's fixed C-rate cap times the effective
// capacity — the stand-in for the IR-drop-derived P_threshold.
func (l *Linear) MaxDischargePower() units.Watt {
	return units.Watt(float64(l.spec.NominalVoltage) * linearDischargeCRate * float64(l.EffectiveCapacity()))
}

// MaxChargePower returns the battery-side power the charger could push in
// this instant, with the same top-of-charge taper as the reference tier.
func (l *Linear) MaxChargePower() units.Watt {
	if l.soc >= 1 {
		return 0
	}
	maxI := float64(l.spec.MaxChargeCurrent)
	if l.soc > 0.9 {
		maxI *= units.Clamp((1-l.soc)/0.1, 0.05, 1)
	}
	return units.Watt(float64(l.spec.NominalVoltage) * maxI)
}

// CutOff reports whether the protection threshold has tripped (empty, for
// this tier: with no voltage sag there is no under-voltage path).
func (l *Linear) CutOff() bool { return l.soc <= linearCutoffSoC }

// Discharge draws electrical power pw for duration dt at ambient amb.
func (l *Linear) Discharge(pw units.Watt, dt time.Duration, amb units.Celsius) (StepResult, error) {
	if err := checkStep(pw, dt, amb); err != nil {
		return StepResult{}, err
	}
	if pw < 0 {
		return StepResult{}, fmt.Errorf("battery: negative discharge power %v", pw)
	}
	// No thermal model in this tier: temperature tracks ambient, clamped to
	// the same physical envelope as the electrochemical heat model so any
	// state this tier produces round-trips through Restore.
	l.temp = units.Celsius(units.Clamp(float64(amb), -20, 90))
	v := l.spec.NominalVoltage
	if pw == 0 || l.CutOff() {
		l.selfDischarge(dt)
		res := StepResult{Voltage: v, CutOff: l.CutOff()}
		l.telRest.Inc()
		if res.CutOff {
			l.telCutoff.Inc()
		}
		return res, nil
	}
	if pw > l.MaxDischargePower() {
		// Beyond the C-rate cap the protection trips, as the reference
		// tier's quadratic limit does.
		l.selfDischarge(dt)
		l.telCutoff.Inc()
		return StepResult{Voltage: v, CutOff: true}, nil
	}
	i := units.Ampere(float64(pw) / float64(v))
	cap := l.EffectiveCapacity()
	dq := units.AmpereHour(float64(i) * l.hours(dt)) // units.ChargeOver, memoized hours
	avail := units.AmpereHour(l.soc * float64(cap))
	res := StepResult{Current: i, Voltage: v}
	if dq >= avail {
		// Truncate: the model empties partway through the step.
		frac := 0.0
		if dq > 0 {
			frac = float64(avail) / float64(dq)
		}
		dq = avail
		dt = time.Duration(float64(dt) * frac)
		res.CutOff = true
	}
	if float64(cap) > 0 {
		l.soc = units.Clamp01(l.soc - float64(dq)/float64(cap))
	}
	res.Charge = dq
	res.Energy = units.WattHour(float64(v) * float64(dq))
	l.ahOut += dq
	l.whOut += res.Energy
	l.cycles += float64(dq) / math.Max(float64(l.spec.NominalCapacity), 1e-9)
	l.operating += dt
	l.telDischarge.Inc()
	if res.CutOff {
		l.telCutoff.Inc()
	}
	return res, nil
}

// Charge pushes electrical power pw into the model for dt, with the same
// current cap, top-of-charge taper, and coulombic losses as the reference
// tier.
func (l *Linear) Charge(pw units.Watt, dt time.Duration, amb units.Celsius) (StepResult, error) {
	if err := checkStep(pw, dt, amb); err != nil {
		return StepResult{}, err
	}
	if pw < 0 {
		return StepResult{}, fmt.Errorf("battery: negative charge power %v", pw)
	}
	l.temp = units.Celsius(units.Clamp(float64(amb), -20, 90))
	v := l.spec.NominalVoltage
	if pw == 0 || l.soc >= 1 {
		l.selfDischarge(dt)
		l.telRest.Inc()
		return StepResult{Voltage: v}, nil
	}
	i := float64(pw) / float64(v)
	maxI := float64(l.spec.MaxChargeCurrent)
	if l.soc > 0.9 {
		maxI *= units.Clamp((1-l.soc)/0.1, 0.05, 1)
	}
	if i > maxI {
		i = maxI
	}
	eff := l.spec.CoulombicEfficiency - l.deg.EfficiencyLoss
	cap := l.EffectiveCapacity()
	dq := units.AmpereHour(i * l.hours(dt)) // units.ChargeOver, memoized hours
	need := units.AmpereHour((1 - l.soc) * float64(cap) / math.Max(eff, 1e-6))
	if dq > need {
		dq = need
	}
	if float64(cap) > 0 {
		l.soc = units.Clamp01(l.soc + float64(dq)*eff/float64(cap))
	}
	res := StepResult{
		Current: units.Ampere(-i),
		Voltage: v,
		Energy:  units.WattHour(-float64(v) * float64(dq)),
		Charge:  units.AmpereHour(-dq),
	}
	l.ahIn += dq
	l.whIn += units.WattHour(float64(v) * float64(dq))
	l.operating += dt
	l.telCharge.Inc()
	return res, nil
}

// Rest advances time with no terminal current: self-discharge only.
func (l *Linear) Rest(dt time.Duration, amb units.Celsius) error {
	if err := checkStep(0, dt, amb); err != nil {
		return err
	}
	l.temp = units.Celsius(units.Clamp(float64(amb), -20, 90))
	l.selfDischarge(dt)
	l.operating += dt
	l.telRest.Inc()
	return nil
}

// hours returns dt.Hours() memoized on dt. Callers validate dt > 0 first
// (checkStep), so the zero-valued cache never aliases a real step.
func (l *Linear) hours(dt time.Duration) float64 {
	if dt != l.hrDt {
		l.hrDt, l.hrVal = dt, dt.Hours()
	}
	return l.hrVal
}

func (l *Linear) selfDischarge(dt time.Duration) {
	if dt != l.sdDt {
		days := dt.Hours() / 24
		l.sdFactor = math.Pow(1-l.spec.SelfDischargeFraction, days)
		l.sdDt = dt
	}
	l.soc = units.Clamp01(l.soc * l.sdFactor)
}

// Counters returns a snapshot of the cumulative usage counters.
func (l *Linear) Counters() Counters {
	return Counters{
		AhOut:                l.ahOut,
		AhIn:                 l.ahIn,
		WhOut:                l.whOut,
		WhIn:                 l.whIn,
		OperatingTime:        l.operating,
		EquivalentFullCycles: l.cycles,
	}
}

// RoundTripEfficiency returns lifetime Wh-out / Wh-in, as Pack does.
func (l *Linear) RoundTripEfficiency() float64 {
	if l.whIn <= 0 || l.whOut <= 0 {
		return 0
	}
	return units.Clamp01(float64(l.whOut) / float64(l.whIn))
}

// StoredEnergy estimates the energy currently stored.
func (l *Linear) StoredEnergy() units.WattHour {
	return units.WattHour(l.soc * float64(l.EffectiveCapacity()) * float64(l.spec.NominalVoltage))
}

// Snapshot captures the serializable state, in the same State shape the
// electrochemical tiers use.
func (l *Linear) Snapshot() State {
	return State{
		CapacityScale:   l.capacityScale,
		ResistanceScale: l.resistanceScale,
		SoC:             l.soc,
		Temperature:     l.temp,
		Degradation:     l.deg,
		AhOut:           l.ahOut,
		AhIn:            l.ahIn,
		WhOut:           l.whOut,
		WhIn:            l.whIn,
		Operating:       l.operating,
		Cycles:          l.cycles,
	}
}

// Restore validates the snapshot wholesale and applies it only if every
// field passes, leaving state untouched on rejection.
func (l *Linear) Restore(st State) error {
	if err := st.validate(l.spec); err != nil {
		return err
	}
	l.capacityScale = st.CapacityScale
	l.resistanceScale = st.ResistanceScale
	l.soc = st.SoC
	l.temp = st.Temperature
	l.deg = st.Degradation
	l.ahOut = st.AhOut
	l.ahIn = st.AhIn
	l.whOut = st.WhOut
	l.whIn = st.WhIn
	l.operating = st.Operating
	l.cycles = st.Cycles
	return nil
}

var _ Model = (*Linear)(nil)
var _ Model = (*Pack)(nil)
