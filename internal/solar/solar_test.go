package solar

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
	"time"

	"github.com/green-dc/baat/internal/units"
)

func newDay(t *testing.T, w Weather, seed int64) *Day {
	t.Helper()
	d, err := NewDay(w, DefaultConfig(), rand.New(rand.NewPCG(uint64(seed), 0)))
	if err != nil {
		t.Fatalf("NewDay(%v): %v", w, err)
	}
	return d
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"sunset before sunrise", func(c *Config) { c.Sunset = c.Sunrise - time.Hour }},
		{"negative sunrise", func(c *Config) { c.Sunrise = -time.Hour }},
		{"sunset past midnight", func(c *Config) { c.Sunset = 25 * time.Hour }},
		{"zero scale", func(c *Config) { c.Scale = 0 }},
		{"transient depth one", func(c *Config) { c.TransientDepth = 1 }},
		{"too few slots", func(c *Config) { c.Slots = 2 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tt.mutate(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Error("Validate() = nil, want error")
			}
		})
	}
}

func TestNewDayErrors(t *testing.T) {
	rng := rand.New(rand.NewPCG(uint64(1), 0))
	if _, err := NewDay(Weather(42), DefaultConfig(), rng); err == nil {
		t.Error("unknown weather accepted")
	}
	if _, err := NewDay(Sunny, DefaultConfig(), nil); err == nil {
		t.Error("nil rng accepted")
	}
	bad := DefaultConfig()
	bad.Scale = -1
	if _, err := NewDay(Sunny, bad, rng); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestDailyBudgets(t *testing.T) {
	// §VI-A: Sunny 8 kWh, Cloudy 6 kWh, Rainy 3 kWh.
	tests := []struct {
		w    Weather
		want units.WattHour
	}{
		{Sunny, 8000},
		{Cloudy, 6000},
		{Rainy, 3000},
		{Weather(9), 0},
	}
	for _, tt := range tests {
		if got := DailyBudget(tt.w); got != tt.want {
			t.Errorf("DailyBudget(%v) = %v, want %v", tt.w, got, tt.want)
		}
	}
}

func TestDayEnergyMatchesBudget(t *testing.T) {
	for _, w := range Weathers() {
		t.Run(w.String(), func(t *testing.T) {
			d := newDay(t, w, 7)
			got := float64(d.Energy(time.Minute))
			want := float64(DailyBudget(w))
			if got < want*0.97 || got > want*1.03 {
				t.Errorf("integrated energy = %.0f Wh, want ≈%.0f Wh", got, want)
			}
		})
	}
}

func TestScaleMultipliesEnergy(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Scale = 2.5
	d, err := NewDay(Sunny, cfg, rand.New(rand.NewPCG(uint64(3), 0)))
	if err != nil {
		t.Fatal(err)
	}
	got := float64(d.Energy(time.Minute))
	want := 2.5 * float64(DailyBudget(Sunny))
	if got < want*0.97 || got > want*1.03 {
		t.Errorf("scaled energy = %.0f Wh, want ≈%.0f Wh", got, want)
	}
}

func TestNoGenerationAtNight(t *testing.T) {
	d := newDay(t, Sunny, 1)
	for _, tod := range []time.Duration{0, 3 * time.Hour, 6 * time.Hour, 20 * time.Hour, 23 * time.Hour} {
		if p := d.PowerAt(tod); p != 0 {
			t.Errorf("PowerAt(%v) = %v, want 0 at night", tod, p)
		}
	}
	if p := d.PowerAt(13 * time.Hour); p <= 0 {
		t.Errorf("PowerAt(13h) = %v, want > 0 at solar noon", p)
	}
}

func TestPowerAtWrapsTimeOfDay(t *testing.T) {
	d := newDay(t, Sunny, 1)
	if d.PowerAt(13*time.Hour) != d.PowerAt(37*time.Hour) {
		t.Error("PowerAt did not wrap at 24h")
	}
	if d.PowerAt(13*time.Hour) != d.PowerAt(13*time.Hour-24*time.Hour) {
		t.Error("PowerAt did not wrap negative offsets")
	}
}

func TestDeterministicForSeed(t *testing.T) {
	a := newDay(t, Cloudy, 42)
	b := newDay(t, Cloudy, 42)
	for tod := time.Duration(0); tod < 24*time.Hour; tod += 17 * time.Minute {
		if a.PowerAt(tod) != b.PowerAt(tod) {
			t.Fatalf("same seed diverged at %v", tod)
		}
	}
}

func TestSunnyDaySmootherThanRainy(t *testing.T) {
	// Count relative dips against the clear-sky bell; rainy days must be
	// substantially choppier.
	variation := func(d *Day) float64 {
		var v float64
		prev := -1.0
		for tod := 8 * time.Hour; tod <= 18*time.Hour; tod += 15 * time.Minute {
			cur := float64(d.PowerAt(tod)) / float64(d.Peak())
			if prev >= 0 {
				diff := cur - prev
				if diff < 0 {
					diff = -diff
				}
				v += diff
			}
			prev = cur
		}
		return v
	}
	// Average over several seeds to avoid a lucky calm rainy day.
	var sunny, rainy float64
	for seed := int64(0); seed < 8; seed++ {
		sunny += variation(newDay(t, Sunny, seed))
		rainy += variation(newDay(t, Rainy, seed+100))
	}
	if rainy <= sunny {
		t.Errorf("rainy variation (%v) not above sunny (%v)", rainy, sunny)
	}
}

func TestPowerNonNegativeProperty(t *testing.T) {
	f := func(seed int64, minutes uint16) bool {
		d, err := NewDay(Cloudy, DefaultConfig(), rand.New(rand.NewPCG(uint64(seed), 0)))
		if err != nil {
			return false
		}
		tod := time.Duration(minutes) * time.Minute
		return d.PowerAt(tod) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestLocationValidate(t *testing.T) {
	if err := (Location{SunshineFraction: 0.5}).Validate(); err != nil {
		t.Errorf("valid location rejected: %v", err)
	}
	for _, f := range []float64{-0.1, 1.1} {
		if err := (Location{SunshineFraction: f}).Validate(); err == nil {
			t.Errorf("fraction %v accepted", f)
		}
	}
}

func TestDrawWeatherDistribution(t *testing.T) {
	rng := rand.New(rand.NewPCG(uint64(9), 0))
	loc := Location{SunshineFraction: 0.7}
	counts := map[Weather]int{}
	const n = 10000
	for i := 0; i < n; i++ {
		counts[loc.DrawWeather(rng)]++
	}
	sunny := float64(counts[Sunny]) / n
	if sunny < 0.67 || sunny > 0.73 {
		t.Errorf("sunny fraction = %v, want ≈0.7", sunny)
	}
	if counts[Cloudy] <= counts[Rainy] {
		t.Error("cloudy days should outnumber rainy days")
	}
}

func TestDrawWeatherExtremes(t *testing.T) {
	rng := rand.New(rand.NewPCG(uint64(5), 0))
	always := Location{SunshineFraction: 1}
	for i := 0; i < 100; i++ {
		if w := always.DrawWeather(rng); w != Sunny {
			t.Fatalf("fraction 1 produced %v", w)
		}
	}
	never := Location{SunshineFraction: 0}
	for i := 0; i < 100; i++ {
		if w := never.DrawWeather(rng); w == Sunny {
			t.Fatal("fraction 0 produced a sunny day")
		}
	}
}

func TestExpectedDailyBudgetMonotone(t *testing.T) {
	prev := units.WattHour(0)
	for _, f := range []float64{0, 0.25, 0.5, 0.75, 1} {
		b := Location{SunshineFraction: f}.ExpectedDailyBudget()
		if b <= prev {
			t.Fatalf("expected budget not increasing at fraction %v: %v <= %v", f, b, prev)
		}
		prev = b
	}
	if got := (Location{SunshineFraction: 1}).ExpectedDailyBudget(); got != 8000 {
		t.Errorf("full-sun budget = %v, want 8000Wh", got)
	}
}

func TestWeatherString(t *testing.T) {
	if Sunny.String() != "sunny" || Cloudy.String() != "cloudy" || Rainy.String() != "rainy" {
		t.Error("weather labels wrong")
	}
	if Weather(0).String() == "" {
		t.Error("unknown weather should render")
	}
}
