// Package aging implements the battery-aging analysis layer of BAAT
// (DSN'15, §III): the five system-level aging metrics (NAT, CF, PC, DDT,
// DR), the mechanism-level damage model that converts operating conditions
// into irreversible degradation (§II-B), manufacturer cycle-life curves
// (Fig 10), and the weighted-aging / planned-aging formulas (Eq 6, Eq 7).
package aging

import (
	"fmt"
	"math"
	"time"

	"github.com/green-dc/baat/internal/units"
)

// SoCRange labels the paper's four partial-cycling bands (Eq 3).
type SoCRange int

// The four SoC bands of Eq 3. RangeA is the healthiest (100–80 %),
// RangeD the most damaging (39–0 %).
const (
	RangeA SoCRange = iota + 1 // 100–80 %
	RangeB                     // 79–60 %
	RangeC                     // 59–40 %
	RangeD                     // 39–0 %
)

// String returns the paper's letter for the range.
func (r SoCRange) String() string {
	switch r {
	case RangeA:
		return "A"
	case RangeB:
		return "B"
	case RangeC:
		return "C"
	case RangeD:
		return "D"
	default:
		return fmt.Sprintf("SoCRange(%d)", int(r))
	}
}

// RangeOf classifies a state of charge into its band.
func RangeOf(soc float64) SoCRange {
	switch {
	case soc >= 0.80:
		return RangeA
	case soc >= 0.60:
		return RangeB
	case soc >= 0.40:
		return RangeC
	default:
		return RangeD
	}
}

// DeepDischargeSoC is the SoC below which the paper counts deep-discharge
// time (Eq 5) and below which the slowdown algorithm engages (Fig 9).
const DeepDischargeSoC = 0.40

// Sample is one sensor reading interval: what the battery did for Dt.
// It mirrors the power-table row of Table 2 (current, voltage, temperature,
// time) with SoC derived from voltage by the sensor layer.
type Sample struct {
	// Dt is the sampling interval.
	Dt time.Duration
	// Current is terminal current; positive discharges, negative charges.
	Current units.Ampere
	// SoC is the state of charge during the interval.
	SoC float64
	// Temperature is the battery case temperature.
	Temperature units.Celsius
}

// Metrics is a snapshot of the five aging metrics of §III.
type Metrics struct {
	// NAT is normalized Ah throughput (Eq 1): cumulative discharge Ah over
	// the battery's nominal life-long throughput. 0 = new, 1 = the cycled
	// charge budget is spent.
	NAT float64

	// CF is the charge factor (Eq 2): cumulative charge Ah over cumulative
	// discharge Ah. Healthy partial cycling sits near 1–1.3; below that
	// sulphation/stratification dominate, above it shedding/corrosion/
	// water loss accelerate.
	CF float64

	// PC is partial cycling (Eq 3–4) with the weighting oriented so that
	// HIGHER is HEALTHIER (1.0 = all throughput in the 100–80 % band,
	// 0.25 = all throughput below 40 %). Note: Eq 4 as printed weights the
	// low band ×4 so that high values would mean *low-SoC* cycling, but
	// the paper's own evaluation (§VI-A/B) reads PC the other way — sunny
	// days have high PC and "low PC" marks prone-to-wear-out batteries.
	// We follow the evaluation semantics and document the discrepancy.
	PC float64

	// DDT is deep-discharge time (Eq 5): the fraction of wall time spent
	// below 40 % SoC.
	DDT float64

	// DR is the mean discharge rate in amperes over discharging intervals.
	DR float64

	// DRPeak is the highest discharge current observed.
	DRPeak float64

	// DRLowSoC is the mean discharge rate during deep-discharge intervals,
	// the combination §III-E singles out as most damaging.
	DRLowSoC float64
}

// Tracker accumulates the five aging metrics from a stream of samples.
// The zero value is unusable; construct with NewTracker.
type Tracker struct {
	lifetime units.AmpereHour

	ahOut     float64 // Ah
	ahIn      float64
	ahByRange [4]float64 // discharge Ah per SoC band (A..D)

	total    time.Duration
	deep     time.Duration
	disTime  time.Duration
	lowTime  time.Duration
	drSum    float64 // A·h of discharge time, for mean DR
	drLowSum float64
	drPeak   float64

	// dtLast/dtHours memoize Sample.Dt.Hours() exactly as aging.Model does:
	// the tick width is constant within a run, and the cached value is the
	// same division result bit for bit. Observe rejects Dt <= 0 before the
	// lookup, so the zero value never aliases a real sample.
	dtLast  time.Duration
	dtHours float64
}

// NewTracker creates a metric tracker for a battery whose nominal life-long
// throughput (the NAT denominator, CAP_nom in Eq 1) is lifetime.
func NewTracker(lifetime units.AmpereHour) (*Tracker, error) {
	t := new(Tracker)
	if err := NewTrackerInto(t, lifetime); err != nil {
		return nil, err
	}
	return t, nil
}

// NewTrackerInto initializes a metric tracker in place, overwriting *t.
// It exists so a fleet can lay trackers out in one contiguous slice; the
// resulting value is identical to one built by NewTracker.
func NewTrackerInto(t *Tracker, lifetime units.AmpereHour) error {
	if lifetime <= 0 {
		return fmt.Errorf("aging: lifetime throughput must be positive, got %v", lifetime)
	}
	*t = Tracker{lifetime: lifetime}
	return nil
}

// maxPlausibleCurrent bounds sample currents the tracker accepts (in
// amperes). No battery string the simulator models carries a mega-amp;
// rejecting beyond it keeps every accumulated quantity — and therefore
// every metric ratio — finite by construction, which the FuzzAgingMetrics
// target exercises with adversarial inputs.
const maxPlausibleCurrent = 1e6

// minMeasurableAh is the discharge throughput below which ratio metrics
// (CF, PC) stay zero: a nano-amp-second of cycling is sensor noise, and
// dividing by it would let CF overflow for otherwise-valid inputs.
const minMeasurableAh = 1e-12

// Observe folds one sample into the running metrics. Samples with
// non-finite or physically implausible fields are rejected so the metric
// snapshot can never become NaN or Inf.
func (t *Tracker) Observe(s Sample) error {
	if s.Dt <= 0 {
		return fmt.Errorf("aging: sample duration must be positive, got %v", s.Dt)
	}
	if c := float64(s.Current); math.IsNaN(c) || math.Abs(c) > maxPlausibleCurrent {
		return fmt.Errorf("aging: implausible sample current %v A", s.Current)
	}
	if math.IsNaN(s.SoC) || math.IsInf(s.SoC, 0) {
		return fmt.Errorf("aging: non-finite sample SoC %v", s.SoC)
	}
	if tc := float64(s.Temperature); math.IsNaN(tc) || math.IsInf(tc, 0) {
		return fmt.Errorf("aging: non-finite sample temperature %v", s.Temperature)
	}
	soc := units.Clamp01(s.SoC)
	if s.Dt != t.dtLast {
		t.dtLast, t.dtHours = s.Dt, s.Dt.Hours()
	}
	hours := t.dtHours
	t.total += s.Dt
	if soc < DeepDischargeSoC {
		t.deep += s.Dt
	}
	if s.Current > 0 { // discharging
		ah := float64(s.Current) * hours
		t.ahOut += ah
		t.ahByRange[RangeOf(soc)-RangeA] += ah
		t.disTime += s.Dt
		t.drSum += float64(s.Current) * hours
		if float64(s.Current) > t.drPeak {
			t.drPeak = float64(s.Current)
		}
		if soc < DeepDischargeSoC {
			t.lowTime += s.Dt
			t.drLowSum += float64(s.Current) * hours
		}
	} else if s.Current < 0 { // charging
		t.ahIn += -float64(s.Current) * hours
	}
	return nil
}

// NAT returns normalized Ah throughput (Eq 1) alone, computed by the same
// expression Metrics uses. The per-tick fleet summary reads NAT for every
// node every tick, where assembling the full Metrics snapshot is an order
// of magnitude more work than the single division.
func (t *Tracker) NAT() float64 {
	return t.ahOut / float64(t.lifetime)
}

// Metrics returns the current snapshot.
func (t *Tracker) Metrics() Metrics {
	m := Metrics{
		NAT: t.ahOut / float64(t.lifetime),
	}
	if t.ahOut > minMeasurableAh {
		m.CF = t.ahIn / t.ahOut
		// Healthy-high orientation: band A weight 4 … band D weight 1,
		// normalized by 4 so the value lives in [0.25, 1].
		m.PC = (t.ahByRange[0]*4 + t.ahByRange[1]*3 + t.ahByRange[2]*2 + t.ahByRange[3]*1) / (4 * t.ahOut)
	}
	if t.total > 0 {
		m.DDT = float64(t.deep) / float64(t.total)
	}
	if h := t.disTime.Hours(); h > 0 {
		m.DR = t.drSum / h
	}
	if h := t.lowTime.Hours(); h > 0 {
		m.DRLowSoC = t.drLowSum / h
	}
	m.DRPeak = t.drPeak
	return m
}

// Totals returns cumulative Ah flow (out, in) — the raw quantities behind
// NAT and CF, needed by the planned-aging calculator (Eq 7).
func (t *Tracker) Totals() (out, in units.AmpereHour) {
	return units.AmpereHour(t.ahOut), units.AmpereHour(t.ahIn)
}

// ElapsedTime returns the total observed wall time.
func (t *Tracker) ElapsedTime() time.Duration { return t.total }

// Reset clears the accumulated state, e.g. at the start of an evaluation
// window, while keeping the lifetime denominator.
func (t *Tracker) Reset() {
	lt := t.lifetime
	*t = Tracker{lifetime: lt}
}
