package fleet

// The shard-aggregation property tests: per-shard summaries, merged in
// shard order, must recombine to exactly the values one whole-fleet pass
// produces — integer fields (counts, histogram bins, indices) exactly,
// float sums (state of charge, energy balance) to floating-point
// associativity tolerance. The fleet is perturbed through the real node
// step path so SoC, health, aging metrics, DVFS state, and suspect flags
// all vary across nodes.

import (
	"fmt"
	"math"
	"slices"
	"testing"
	"time"

	"github.com/green-dc/baat/internal/faults"
	"github.com/green-dc/baat/internal/node"
	"github.com/green-dc/baat/internal/stats"
	"github.com/green-dc/baat/internal/units"
	"github.com/green-dc/baat/internal/vm"
	"github.com/green-dc/baat/internal/workload"
)

const propNodes = 16

// perturbedFleet builds a fleet whose nodes have diverged: most host a
// service VM and were stepped different numbers of ticks under scarce
// solar (varying SoC, aging throughput, and solar energy), some are
// frequency-capped, some carry battery wear past end-of-life, and some
// have a quarantined sensor chain. The perturbation is deterministic, so
// every call reproduces identical per-node state regardless of shard
// size.
func perturbedFleet(t *testing.T, shardSize int) *Fleet {
	t.Helper()
	f, err := New(Config{
		Nodes:     propNodes,
		ShardSize: shardSize,
		Seed:      7,
		Node: func(i int) (node.Config, error) {
			cfg := node.DefaultConfig()
			cfg.AgingConfig.AccelFactor = 50
			return cfg, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	prof, err := workload.ProfileFor(workload.WebServing)
	if err != nil {
		t.Fatal(err)
	}
	for i, nd := range f.Views() {
		if i%3 != 0 {
			v, err := vm.New(fmt.Sprintf("vm-%d", i), prof)
			if err != nil {
				t.Fatal(err)
			}
			if err := nd.Server().Attach(v); err != nil {
				t.Fatal(err)
			}
		}
		for k := 0; k < 1+i%5; k++ {
			if _, err := nd.Step(15*time.Minute, units.Watt(float64(10*i)), 0); err != nil {
				t.Fatal(err)
			}
		}
		if i%4 == 0 {
			nd.Server().StepDownFrequency()
		}
		if i%5 == 0 {
			// Wear deep enough that some nodes cross the 0.8 end-of-life
			// line while others stay above it.
			nd.InjectBatteryWear(0.1+0.03*float64(i), 0.05, 0)
		}
		if i%6 == 2 {
			nd.SetSensorFault(faults.SensorFault{Mode: faults.ModeNaN})
			if _, err := nd.Step(time.Minute, 0, 0); err != nil {
				t.Fatal(err)
			}
		}
	}
	return f
}

// newSummary allocates a summary with the engine's seven-bin SoC
// histogram attached.
func newSummary(t *testing.T) *Summary {
	t.Helper()
	hist, err := stats.NewHistogram(0, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	s := &Summary{Hist: hist}
	s.Reset()
	return s
}

// summarize runs one whole pass over [lo, hi), tracking suspect edges
// against prev.
func summarize(s *Summary, f *Fleet, lo, hi int, prev []bool) {
	for i := lo; i < hi; i++ {
		nd := f.View(i)
		s.ObserveNode(i, nd, true)
		if nd.MetricsSuspect() != prev[i] {
			s.ObserveChanged(i)
		}
	}
	s.Valid = true
}

func TestSummaryShardRecombination(t *testing.T) {
	for _, shards := range []int{1, 2, 4, 8} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			shardSize := (propNodes + shards - 1) / shards
			f := perturbedFleet(t, shardSize)
			if got := len(f.Shards()); got != shards {
				t.Fatalf("fleet partitioned into %d shards, want %d", got, shards)
			}
			prev := make([]bool, propNodes)

			// Reference: one serial whole-fleet pass.
			whole := newSummary(t)
			summarize(whole, f, 0, propNodes, prev)

			// Per-shard passes merged in shard order.
			total := newSummary(t)
			var changed []int
			for _, sh := range f.Shards() {
				part := newSummary(t)
				summarize(part, f, sh.Lo, sh.Hi, prev)
				if err := total.Add(part); err != nil {
					t.Fatal(err)
				}
				changed = append(changed, part.Changed...)
			}
			total.Valid = true

			// Integer fields recombine exactly.
			if total.Nodes != whole.Nodes || total.Suspect != whole.Suspect || total.Capped != whole.Capped {
				t.Errorf("counts diverged: merged {nodes %d, suspect %d, capped %d}, whole {%d, %d, %d}",
					total.Nodes, total.Suspect, total.Capped, whole.Nodes, whole.Suspect, whole.Capped)
			}
			if total.EOLIndex != whole.EOLIndex {
				t.Errorf("EOLIndex = %d, want %d", total.EOLIndex, whole.EOLIndex)
			}
			if total.MinHealthIndex != whole.MinHealthIndex || total.MinHealth != whole.MinHealth {
				t.Errorf("min health = %v@%d, want %v@%d",
					total.MinHealth, total.MinHealthIndex, whole.MinHealth, whole.MinHealthIndex)
			}
			if total.MaxNATIndex != whole.MaxNATIndex || total.MaxNAT != whole.MaxNAT {
				t.Errorf("max NAT = %v@%d, want %v@%d",
					total.MaxNAT, total.MaxNATIndex, whole.MaxNAT, whole.MaxNATIndex)
			}
			if !slices.Equal(total.Hist.Counts(), whole.Hist.Counts()) {
				t.Errorf("histogram bins diverged: %v vs %v", total.Hist.Counts(), whole.Hist.Counts())
			}
			if total.Hist.Total() != whole.Hist.Total() {
				t.Errorf("histogram totals diverged: %d vs %d", total.Hist.Total(), whole.Hist.Total())
			}
			if !slices.Equal(changed, whole.Changed) {
				t.Errorf("changed indices diverged: %v vs %v", changed, whole.Changed)
			}

			// Float sums recombine to associativity tolerance.
			relClose := func(name string, got, want float64) {
				tol := 1e-12 * math.Max(1, math.Abs(want))
				if math.Abs(got-want) > tol {
					t.Errorf("%s = %v, want %v (±%g)", name, got, want, tol)
				}
			}
			relClose("SoCSum", total.SoCSum, whole.SoCSum)
			relClose("SolarWhSum", total.SolarWhSum, whole.SolarWhSum)
			if whole.SolarWhSum == 0 {
				t.Error("perturbation consumed no solar energy; the energy-balance check is vacuous")
			}
			if whole.Suspect == 0 || whole.Capped == 0 || whole.EOLIndex < 0 {
				t.Errorf("perturbation too tame (suspect %d, capped %d, eol %d); properties not exercised",
					whole.Suspect, whole.Capped, whole.EOLIndex)
			}
		})
	}
}

// TestSummaryTieBreaks pins the ascending-index tie-break: identical
// extremum values must resolve to the lowest index both within a pass and
// across merges.
func TestSummaryTieBreaks(t *testing.T) {
	f := defaultFleet(t, 8, 4) // untouched fleet: every node identical
	prev := make([]bool, 8)

	whole := newSummary(t)
	summarize(whole, f, 0, 8, prev)

	total := newSummary(t)
	for _, sh := range f.Shards() {
		part := newSummary(t)
		summarize(part, f, sh.Lo, sh.Hi, prev)
		if err := total.Add(part); err != nil {
			t.Fatal(err)
		}
	}
	if whole.MinHealthIndex != 0 || whole.MaxNATIndex != 0 {
		t.Errorf("serial tie-break picked indices %d/%d, want 0/0", whole.MinHealthIndex, whole.MaxNATIndex)
	}
	if total.MinHealthIndex != 0 || total.MaxNATIndex != 0 {
		t.Errorf("merged tie-break picked indices %d/%d, want 0/0", total.MinHealthIndex, total.MaxNATIndex)
	}
	if total.EOLIndex != -1 || whole.EOLIndex != -1 {
		t.Errorf("healthy fleet reported EOL indices %d/%d, want -1", total.EOLIndex, whole.EOLIndex)
	}
}
