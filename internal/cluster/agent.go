package cluster

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"github.com/green-dc/baat/internal/node"
	"github.com/green-dc/baat/internal/telemetry"
	"github.com/green-dc/baat/internal/units"
)

// NodeHandle is what an agent senses and actuates. It must be safe for the
// agent's single goroutine; LocalNode adapts a *node.Node with a mutex so a
// co-resident simulation loop can share it.
type NodeHandle interface {
	// ID returns the node identifier.
	ID() string
	// Snapshot produces the current sensor report.
	Snapshot() Report
	// Apply executes one actuation command.
	Apply(Command) error
}

// LocalNode adapts a *node.Node as a NodeHandle.
type LocalNode struct {
	mu sync.Mutex
	n  *node.Node
}

// NewLocalNode wraps a node. The returned handle serializes all access; a
// driver that steps the node should do so through WithLock.
func NewLocalNode(n *node.Node) (*LocalNode, error) {
	if n == nil {
		return nil, errors.New("cluster: node must not be nil")
	}
	return &LocalNode{n: n}, nil
}

// WithLock runs fn with exclusive access to the underlying node, letting a
// simulation loop step the node without racing the agent.
func (l *LocalNode) WithLock(fn func(*node.Node) error) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return fn(l.n)
}

// ID returns the node identifier.
func (l *LocalNode) ID() string { return l.n.ID() }

// Snapshot produces the current sensor report.
func (l *LocalNode) Snapshot() Report {
	l.mu.Lock()
	defer l.mu.Unlock()
	pack := l.n.Battery()
	srv := l.n.Server()
	var reading Report
	reading.NodeID = l.n.ID()
	reading.SentAt = time.Now()
	reading.SoC = pack.SoC()
	reading.Health = pack.Health()
	reading.Voltage = float64(pack.OpenCircuitVoltage())
	reading.TemperatureC = float64(pack.Temperature())
	if last, ok := l.n.PowerTable().Last(); ok {
		reading.Current = float64(last.Current)
		reading.Voltage = float64(last.Voltage)
	}
	reading.Metrics = l.n.Metrics()
	reading.ServerPowerW = float64(srv.Power())
	reading.FrequencyIndex = srv.FrequencyIndex()
	reading.SoCFloor = l.n.SoCFloor()
	return reading
}

// Apply executes one actuation command.
func (l *LocalNode) Apply(cmd Command) error {
	if err := cmd.Validate(); err != nil {
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	switch cmd.Action {
	case ActionSetFrequency:
		return l.n.Server().SetFrequencyIndex(cmd.FrequencyIndex)
	case ActionSetFloor:
		return l.n.SetSoCFloor(units.Clamp(cmd.Floor, 0, 0.99))
	case ActionSetPowered:
		l.n.Server().SetPowered(cmd.Powered)
		return nil
	case ActionPing:
		return nil
	default:
		return fmt.Errorf("cluster: unknown action %q", cmd.Action)
	}
}

// AgentConfig parameterizes an agent.
type AgentConfig struct {
	// ControllerAddr is the controller's TCP address.
	ControllerAddr string
	// ReportInterval is how often sensor reports are pushed.
	ReportInterval time.Duration
	// DialTimeout bounds the initial connection.
	DialTimeout time.Duration
	// Reconnect keeps the agent alive across controller restarts and
	// network blips: after a transport failure it redials with exponential
	// backoff instead of terminating. The initial dial must still succeed.
	Reconnect bool
	// MaxBackoff caps the reconnect backoff (default 5 s when zero).
	MaxBackoff time.Duration
	// Telemetry counts reports sent, send errors, and reconnects, and
	// traces EventReconnect. Nil leaves the agent un-instrumented.
	Telemetry *telemetry.Recorder
}

// DefaultAgentConfig returns sensible local defaults.
func DefaultAgentConfig(addr string) AgentConfig {
	return AgentConfig{
		ControllerAddr: addr,
		ReportInterval: 200 * time.Millisecond,
		DialTimeout:    2 * time.Second,
		MaxBackoff:     5 * time.Second,
	}
}

// Validate checks the configuration.
func (c AgentConfig) Validate() error {
	if c.ControllerAddr == "" {
		return errors.New("cluster: controller address must not be empty")
	}
	if c.ReportInterval <= 0 {
		return fmt.Errorf("cluster: report interval must be positive, got %v", c.ReportInterval)
	}
	if c.DialTimeout <= 0 {
		return fmt.Errorf("cluster: dial timeout must be positive, got %v", c.DialTimeout)
	}
	if c.MaxBackoff < 0 {
		return fmt.Errorf("cluster: max backoff must be non-negative, got %v", c.MaxBackoff)
	}
	return nil
}

// Agent connects one battery node to the controller.
type Agent struct {
	cfg    AgentConfig
	handle NodeHandle

	cancel context.CancelFunc
	done   chan struct{}
	mu     sync.Mutex
	conn   net.Conn
	err    error

	// Telemetry handles (nil-safe no-ops without a recorder). Event
	// timestamps are wall time elapsed since StartAgent: the control plane
	// runs in real time, unlike the engine's simulated clock.
	started       time.Time
	telReports    *telemetry.Counter
	telSendErrors *telemetry.Counter
	telReconnects *telemetry.Counter
}

// StartAgent connects to the controller, registers the node, and starts
// the report/command loops. Stop with Agent.Close.
func StartAgent(cfg AgentConfig, handle NodeHandle) (*Agent, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if handle == nil {
		return nil, errors.New("cluster: node handle must not be nil")
	}
	conn, err := net.DialTimeout("tcp", cfg.ControllerAddr, cfg.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("cluster: dialing controller: %w", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	a := &Agent{
		cfg:    cfg,
		handle: handle,
		cancel: cancel,
		done:   make(chan struct{}),
		conn:   conn,

		started:       time.Now(),
		telReports:    cfg.Telemetry.Counter(telemetry.MetricClusterReportsSent),
		telSendErrors: cfg.Telemetry.Counter(telemetry.MetricClusterSendErrors),
		telReconnects: cfg.Telemetry.Counter(telemetry.MetricClusterReconnects),
	}
	if err := a.send(Envelope{Type: MsgHello, Hello: &Hello{NodeID: handle.ID()}}); err != nil {
		cancel()
		_ = conn.Close()
		return nil, err
	}
	go a.run(ctx)
	return a, nil
}

// send writes one envelope; safe for concurrent use.
func (a *Agent) send(e Envelope) error {
	data, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("cluster: encoding envelope: %w", err)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.conn == nil {
		return errors.New("cluster: agent connection closed")
	}
	_, err = a.conn.Write(append(data, '\n'))
	return err
}

// run drives connection sessions until ctx ends. With Reconnect set, a
// failed session is followed by a redial with exponential backoff.
func (a *Agent) run(ctx context.Context) {
	defer close(a.done)

	backoff := 50 * time.Millisecond
	maxBackoff := a.cfg.MaxBackoff
	if maxBackoff <= 0 {
		maxBackoff = 5 * time.Second
	}
	for {
		err := a.session(ctx)
		if ctx.Err() != nil {
			return
		}
		a.setErr(err)
		if !a.cfg.Reconnect {
			return
		}
		select {
		case <-ctx.Done():
			return
		case <-time.After(backoff):
		}
		backoff *= 2
		if backoff > maxBackoff {
			backoff = maxBackoff
		}
		if rerr := a.redial(); rerr != nil {
			continue // keep backing off
		}
		backoff = 50 * time.Millisecond
		a.telReconnects.Inc()
		a.cfg.Telemetry.Emit(time.Since(a.started), telemetry.EventReconnect,
			a.handle.ID(), "re-registered after transport failure")
	}
}

// redial replaces the connection and re-registers the node.
func (a *Agent) redial() error {
	conn, err := net.DialTimeout("tcp", a.cfg.ControllerAddr, a.cfg.DialTimeout)
	if err != nil {
		return err
	}
	a.mu.Lock()
	old := a.conn
	a.conn = conn
	a.mu.Unlock()
	if old != nil {
		_ = old.Close()
	}
	return a.send(Envelope{Type: MsgHello, Hello: &Hello{NodeID: a.handle.ID()}})
}

// session runs one connection's report ticker and command reader until the
// transport fails or ctx ends.
func (a *Agent) session(ctx context.Context) error {
	a.mu.Lock()
	conn := a.conn
	a.mu.Unlock()
	if conn == nil {
		return errors.New("cluster: agent connection closed")
	}
	readerDone := make(chan error, 1)
	go func() { readerDone <- a.readCommands(conn) }()

	ticker := time.NewTicker(a.cfg.ReportInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return nil
		case err := <-readerDone:
			if err == nil {
				// A clean EOF still means the controller went away.
				err = errors.New("cluster: controller closed the connection")
			}
			return err
		case <-ticker.C:
			report := a.handle.Snapshot()
			if err := a.send(Envelope{Type: MsgReport, Report: &report}); err != nil {
				a.telSendErrors.Inc()
				// Drain the reader before returning so its goroutine does
				// not leak into the next session.
				_ = conn.Close()
				<-readerDone
				return err
			}
			a.telReports.Inc()
		}
	}
}

// readCommands processes controller commands until the connection closes.
func (a *Agent) readCommands(conn net.Conn) error {
	scanner := bufio.NewScanner(conn)
	scanner.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for scanner.Scan() {
		var env Envelope
		if err := json.Unmarshal(scanner.Bytes(), &env); err != nil {
			return fmt.Errorf("cluster: decoding controller message: %w", err)
		}
		if err := env.Validate(); err != nil {
			return err
		}
		if env.Type != MsgCommand {
			continue // agents only consume commands
		}
		ack := Ack{ID: env.Command.ID, OK: true}
		if err := a.handle.Apply(*env.Command); err != nil {
			ack.OK = false
			ack.Error = err.Error()
		}
		if err := a.send(Envelope{Type: MsgAck, Ack: &ack}); err != nil {
			return err
		}
	}
	return scanner.Err()
}

func (a *Agent) setErr(err error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.err == nil {
		a.err = err
	}
}

// Err returns the first transport error the agent hit, if any.
func (a *Agent) Err() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.err
}

// Close stops the agent and releases the connection.
func (a *Agent) Close() error {
	a.cancel()
	a.mu.Lock()
	conn := a.conn
	a.conn = nil
	a.mu.Unlock()
	var err error
	if conn != nil {
		err = conn.Close()
	}
	<-a.done
	return err
}
