package sim

// The faulted golden trace: the clean golden scenario re-run under the
// chaos fault profile — stuck/NaN/noisy/dropped sensors, battery capacity
// and resistance shocks, a premature EOL, PV dropouts, a utility brownout,
// and agent-disconnect windows. The fixture pins the degraded trajectory
// the same way golden_trace.json pins the clean one, so both the injector
// and the graceful-degradation machinery are regression-locked. Regenerate
// after an intentional change with:
//
//	go test ./internal/sim -run TestGoldenTraceFaulted -update
//
// The companion equivalence test holds the determinism contract under
// faults: the injector draws all randomness serially before the node
// fan-out, so the faulted trace must be byte-identical at every worker
// count.

import (
	"bytes"
	"encoding/json"
	"testing"

	"github.com/green-dc/baat/internal/faults"
)

const goldenFaultedPath = "testdata/golden_trace_faulted.json"

// goldenFaultedRun replays the golden scenario with the chaos profile
// active. Faults.Seed stays zero so the run also pins the default
// derivation from Config.Seed via the named fault substream. UtilityBackup
// is enabled so the brownout window actually gates a code path rather than
// a no-op.
func goldenFaultedRun(t *testing.T, workers int) *goldenTrace {
	t.Helper()
	return goldenScenario(t,
		"golden scenario under the chaos fault profile (sensor, battery, power, and agent faults)",
		func(c *Config) {
			fcfg, err := faults.Profile("chaos", 0)
			if err != nil {
				t.Fatal(err)
			}
			c.Faults = fcfg
			c.Node.UtilityBackup = true
			c.Workers = workers
			if workers > 1 {
				// Two-node shards and a forced threshold so the six-node
				// golden fleet genuinely fans out — the whole point of the
				// sweep. Both are perf knobs the trace must not see.
				c.ShardSize = 2
				c.ParallelThreshold = -1
			}
		})
}

func TestGoldenTraceFaulted(t *testing.T) {
	checkGolden(t, goldenFaultedPath, goldenFaultedRun(t, 1))
}

// TestGoldenTraceFaultedWorkerEquivalence requires the 30-day faulted
// trace to be byte-identical across worker counts: fault injection must
// not reintroduce scheduling-dependent results.
func TestGoldenTraceFaultedWorkerEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("several 30-day replays")
	}
	serial, err := json.Marshal(goldenFaultedRun(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		got, err := json.Marshal(goldenFaultedRun(t, workers))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(serial, got) {
			t.Errorf("Workers=%d: faulted trace diverged from serial run", workers)
		}
	}
}

// TestFaultedTraceDiffersFromClean guards against the injector silently
// becoming a no-op: the chaos profile must actually move the trace.
func TestFaultedTraceDiffersFromClean(t *testing.T) {
	cleanTrace := goldenRun(t)
	faultedTrace := goldenFaultedRun(t, 1)
	// Descriptions differ by construction; blank them so the comparison
	// sees only simulation output.
	cleanTrace.Description, faultedTrace.Description = "", ""
	clean, err := json.Marshal(cleanTrace)
	if err != nil {
		t.Fatal(err)
	}
	faulted, err := json.Marshal(faultedTrace)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(clean, faulted) {
		t.Fatal("chaos profile produced a byte-identical trace to the clean run")
	}
}
