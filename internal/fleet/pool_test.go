package fleet

import (
	"errors"
	"sync/atomic"
	"testing"
)

// TestPoolRunsEveryShardOnce checks the scheduling contract across
// repeated rounds: every shard index in [0, total) executes exactly once
// per Run, whatever the worker interleaving.
func TestPoolRunsEveryShardOnce(t *testing.T) {
	const shards = 97
	var hits [shards]atomic.Int64
	p := NewPool(4, func(i int) { hits[i].Add(1) })
	p.Start()
	defer p.Stop()
	for round := 1; round <= 5; round++ {
		p.Run(shards)
		for i := range hits {
			if got := hits[i].Load(); got != int64(round) {
				t.Fatalf("round %d: shard %d executed %d times, want %d", round, i, got, round)
			}
		}
	}
}

// TestPoolUnstartedRunsSerially pins the fallback: Run on an unstarted
// pool executes in ascending shard order on the caller's goroutine.
func TestPoolUnstartedRunsSerially(t *testing.T) {
	var order []int
	p := NewPool(4, func(i int) { order = append(order, i) })
	p.Run(5)
	for i, got := range order {
		if got != i {
			t.Fatalf("serial fallback order %v, want ascending", order)
		}
	}
	if len(order) != 5 {
		t.Fatalf("serial fallback ran %d shards, want 5", len(order))
	}
}

// TestPoolRestart checks Stop/Start round-trips: a stopped pool can be
// restarted and keeps the run contract.
func TestPoolRestart(t *testing.T) {
	var n atomic.Int64
	p := NewPool(2, func(int) { n.Add(1) })
	p.Start()
	p.Run(10)
	p.Stop()
	p.Start()
	p.Run(10)
	p.Stop()
	if got := n.Load(); got != 20 {
		t.Fatalf("two started rounds ran %d shards, want 20", got)
	}
}

// TestPoolRunAllocFree pins the steady-state fan-out at zero heap
// allocations per Run: workers are long-lived, claims go through the
// atomic cursor, and releasing a round is channel sends of an empty
// struct — nothing escapes.
func TestPoolRunAllocFree(t *testing.T) {
	var n atomic.Int64
	p := NewPool(4, func(int) { n.Add(1) })
	p.Start()
	defer p.Stop()
	p.Run(64) // warm up
	if allocs := testing.AllocsPerRun(100, func() { p.Run(64) }); allocs != 0 {
		t.Fatalf("steady-state Run allocates %.1f/op, want 0", allocs)
	}
}

// TestPoolErrorReductionDeterministic reproduces the engine's error
// handling: workers record failures into per-shard slots and the caller
// reduces them in ascending shard order, so the reported error is the
// lowest failing shard's regardless of which worker hit it first.
func TestPoolErrorReductionDeterministic(t *testing.T) {
	const shards = 16
	errShard := errors.New("shard failure")
	slots := make([]error, shards)
	p := NewPool(4, func(i int) {
		if i >= 5 {
			slots[i] = errShard
		}
	})
	p.Start()
	defer p.Stop()
	for trial := 0; trial < 20; trial++ {
		clear(slots)
		p.Run(shards)
		first := -1
		for i, err := range slots {
			if err != nil {
				first = i
				break
			}
		}
		if first != 5 {
			t.Fatalf("trial %d: reduced to shard %d, want 5", trial, first)
		}
	}
}
