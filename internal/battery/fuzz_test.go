package battery_test

// FuzzModelStep drives the step surface of every battery model tier —
// electrochemical lead-acid, linear coulomb-counting, and LFP — through one
// shared corpus of adversarial (power, duration, ambient) inputs. One
// corpus, all chemistries: an input that trips one tier is automatically
// replayed against the others, so the tiers cannot drift apart in what
// they accept.
//
// The contract under fuzz, identical for every tier: a step input is
// either rejected with an error and leaves the model untouched (NaN/Inf
// power or ambient, non-positive duration), or it is absorbed and the
// model stays inside its physical envelope — SoC in [0, 1], finite
// temperature and voltages, finite non-negative usage counters.
//
// CI runs a short smoke via check.sh; hunt longer locally with:
//
//	go test ./internal/battery -fuzz=FuzzModelStep -fuzztime=5m

import (
	"math"
	"testing"
	"time"

	"github.com/green-dc/baat/internal/battery"
	"github.com/green-dc/baat/internal/units"
)

// checkEnvelope fails the run if a model left its physical envelope.
func checkEnvelope(t *testing.T, kind battery.Kind, m battery.Model) {
	t.Helper()
	fin := func(name string, v float64) {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("%s: %s = %v (non-finite)", kind, name, v)
		}
	}
	if soc := m.SoC(); soc < 0 || soc > 1 || math.IsNaN(soc) {
		t.Fatalf("%s: SoC = %v, want [0, 1]", kind, soc)
	}
	fin("temperature", float64(m.Temperature()))
	fin("open-circuit voltage", float64(m.OpenCircuitVoltage()))
	fin("max discharge power", float64(m.MaxDischargePower()))
	fin("max charge power", float64(m.MaxChargePower()))
	c := m.Counters()
	for name, v := range map[string]float64{
		"ah out": float64(c.AhOut), "ah in": float64(c.AhIn),
		"wh out": float64(c.WhOut), "wh in": float64(c.WhIn),
		"cycles": c.EquivalentFullCycles,
	} {
		fin(name, v)
		if v < 0 {
			t.Fatalf("%s: %s = %v (negative)", kind, name, v)
		}
	}
}

func FuzzModelStep(f *testing.F) {
	// Seeds cover the shared boundaries: routine steps, zero power, the
	// cutoff region, implausibly large power, sub-second and multi-month
	// durations, freezing and scorching ambients, and the non-finite and
	// non-positive inputs every tier must reject.
	f.Add(80.0, int64(time.Minute), 25.0, 60.0)
	f.Add(0.0, int64(time.Hour), 25.0, 0.0)
	f.Add(1e9, int64(time.Minute), 25.0, 1e9)
	f.Add(50.0, int64(time.Second), -30.0, 50.0)
	f.Add(50.0, int64(90*24)*int64(time.Hour), 45.0, 50.0)
	f.Add(math.NaN(), int64(time.Minute), 25.0, 60.0)
	f.Add(math.Inf(1), int64(time.Minute), 25.0, math.Inf(-1))
	f.Add(60.0, int64(0), 25.0, 60.0)
	f.Add(60.0, int64(-time.Hour), 25.0, 60.0)
	f.Add(60.0, int64(time.Minute), math.NaN(), 60.0)
	f.Add(-5.0, int64(time.Minute), 25.0, -5.0)
	f.Add(1e-300, int64(1), 89.9, 1e-300)

	f.Fuzz(func(t *testing.T, dischargeW float64, dtNS int64, amb float64, chargeW float64) {
		dt := time.Duration(dtNS)
		for _, kind := range battery.Kinds() {
			spec, err := battery.DefaultSpecFor(kind)
			if err != nil {
				t.Fatal(err)
			}
			m, err := battery.NewModel(spec)
			if err != nil {
				t.Fatal(err)
			}
			before := m.Snapshot()
			if _, err := m.Discharge(units.Watt(dischargeW), dt, units.Celsius(amb)); err != nil {
				if after := m.Snapshot(); after != before {
					t.Fatalf("%s: rejected discharge mutated state", kind)
				}
			}
			checkEnvelope(t, kind, m)

			before = m.Snapshot()
			if _, err := m.Charge(units.Watt(chargeW), dt, units.Celsius(amb)); err != nil {
				if after := m.Snapshot(); after != before {
					t.Fatalf("%s: rejected charge mutated state", kind)
				}
			}
			checkEnvelope(t, kind, m)

			before = m.Snapshot()
			if err := m.Rest(dt, units.Celsius(amb)); err != nil {
				if after := m.Snapshot(); after != before {
					t.Fatalf("%s: rejected rest mutated state", kind)
				}
			}
			checkEnvelope(t, kind, m)

			// Whatever the inputs did, the surviving state must round-trip.
			snap := m.Snapshot()
			fresh, err := battery.NewModel(spec)
			if err != nil {
				t.Fatal(err)
			}
			if err := fresh.Restore(snap); err != nil {
				t.Fatalf("%s: surviving state rejected by Restore: %v", kind, err)
			}
		}
	})
}
