package baat

import "github.com/green-dc/baat/internal/grid"

// Tariff is a time-of-use electricity price schedule for the
// demand-response usage scenario (§II-A, Table 1).
type Tariff = grid.Tariff

// PeakShaver discharges a battery through the tariff peak and recharges it
// off-peak, keeping a ledger of energy, cost, and arbitrage savings.
type PeakShaver = grid.Shaver

// PeakShaverConfig parameterizes a PeakShaver.
type PeakShaverConfig = grid.ShaverConfig

// ShaverLedger is a peak shaver's cost accounting.
type ShaverLedger = grid.Ledger

// DefaultTariff returns a typical commercial time-of-use schedule with a
// 17:00–21:00 evening peak at three times the off-peak rate.
func DefaultTariff() Tariff { return grid.DefaultTariff() }

// DefaultPeakShaverConfig returns a single-battery shaver at the default
// tariff with an aging-aware 40 % discharge floor.
func DefaultPeakShaverConfig() PeakShaverConfig { return grid.DefaultShaverConfig() }

// NewPeakShaver builds a peak shaver with a fresh battery.
func NewPeakShaver(cfg PeakShaverConfig) (*PeakShaver, error) { return grid.NewShaver(cfg) }
