package node

// Unit tests for the node's fault surface: sensor corruption feeding the
// tracker (not the physics), the suspect/quarantine state machine, utility
// gating under injected brownouts, and battery wear shocks.

import (
	"math"
	"testing"
	"time"

	"github.com/green-dc/baat/internal/faults"
	"github.com/green-dc/baat/internal/powernet"
	"github.com/green-dc/baat/internal/workload"
)

// stepTicks advances the node under a light load for the given tick count.
func stepTicks(t *testing.T, n *Node, ticks int) {
	t.Helper()
	for i := 0; i < ticks; i++ {
		if _, err := n.Step(time.Minute, 0, 0); err != nil {
			t.Fatal(err)
		}
	}
}

func TestNaNSensorQuarantinesImmediately(t *testing.T) {
	n := newNode(t)
	attachVM(t, n, "v", workload.WebServing)
	stepTicks(t, n, 3) // establish a clean baseline
	if n.MetricsSuspect() {
		t.Fatal("clean node marked suspect")
	}
	n.SetSensorFault(faults.SensorFault{Mode: faults.ModeNaN})
	stepTicks(t, n, 1)
	if n.SensorRejected() == 0 {
		t.Error("tracker accepted a NaN sample")
	}
	if !n.MetricsSuspect() {
		t.Error("node not quarantined after a rejected sample")
	}
	// The power table must never hold a NaN row (it is JSON-marshaled by
	// the cluster snapshot path); the rejected tick records a sanitized
	// bad-quality row instead.
	last, ok := n.PowerTable().Last()
	if !ok {
		t.Fatal("no power table row recorded")
	}
	if math.IsNaN(float64(last.Current)) || math.IsNaN(float64(last.Voltage)) {
		t.Errorf("NaN leaked into the power table: %+v", last)
	}
	if last.Quality != powernet.QualityBad {
		t.Errorf("rejected sample quality = %v, want QualityBad", last.Quality)
	}
}

func TestDroppedSensorGoesStaleAfterThreshold(t *testing.T) {
	n := newNode(t, func(c *Config) { c.StaleAfter = 3 })
	attachVM(t, n, "v", workload.WebServing)
	stepTicks(t, n, 2)
	rows := n.PowerTable().Len()
	n.SetSensorFault(faults.SensorFault{Mode: faults.ModeDrop})

	// Below the stale threshold: missed but not yet quarantined.
	stepTicks(t, n, 2)
	if n.MetricsSuspect() {
		t.Error("quarantined before StaleAfter consecutive misses")
	}
	// Third consecutive miss crosses the threshold.
	stepTicks(t, n, 1)
	if !n.MetricsSuspect() {
		t.Error("not quarantined after StaleAfter consecutive misses")
	}
	if n.SensorDropped() != 3 {
		t.Errorf("dropped = %d, want 3", n.SensorDropped())
	}
	// Dropped readings record nothing.
	if got := n.PowerTable().Len(); got != rows {
		t.Errorf("power table grew by %d rows during a dropped feed", got-rows)
	}
}

func TestQuarantineExpiresAfterCleanSamples(t *testing.T) {
	n := newNode(t, func(c *Config) { c.SensorQuarantine = 5 * time.Minute })
	attachVM(t, n, "v", workload.WebServing)
	stepTicks(t, n, 1)
	n.SetSensorFault(faults.SensorFault{Mode: faults.ModeNaN})
	stepTicks(t, n, 1)
	if !n.MetricsSuspect() {
		t.Fatal("not quarantined")
	}
	n.SetSensorFault(faults.SensorFault{}) // sensor recovers
	stepTicks(t, n, 4)
	if !n.MetricsSuspect() {
		t.Error("quarantine lifted early: only 4 minutes of a 5-minute window elapsed")
	}
	stepTicks(t, n, 2)
	if n.MetricsSuspect() {
		t.Error("quarantine never expired after clean samples")
	}
}

func TestStuckSensorFreezesTrackerNotPhysics(t *testing.T) {
	n := newNode(t)
	attachVM(t, n, "v", workload.KMeans)
	stepTicks(t, n, 5)
	socBefore := n.Battery().SoC()

	n.SetSensorFault(faults.SensorFault{Mode: faults.ModeStuck})
	stepTicks(t, n, 30)

	// The physics keep moving: the true SoC keeps falling under load,
	// while the sensor chain keeps reporting the frozen pre-fault reading.
	socAfter := n.Battery().SoC()
	if socAfter >= socBefore {
		t.Error("physics froze with the sensor: SoC did not move")
	}
	last, ok := n.PowerTable().Last()
	if !ok {
		t.Fatal("no power table row recorded")
	}
	if math.Abs(last.SoC-socBefore) > 1e-6 {
		t.Errorf("stuck row SoC = %v, want frozen pre-fault value %v", last.SoC, socBefore)
	}
	if math.Abs(last.SoC-socAfter) < 1e-9 {
		t.Error("stuck row tracks the live SoC; the sensor view should be frozen")
	}
	// Ground-truth aging is unaffected: the model observed the true
	// samples, so health keeps decaying.
	if n.AgingModel().Degradation().CapacityFade <= 0 {
		t.Error("aging model saw no damage despite real discharge")
	}
	// Stuck samples are plausible, so no quarantine — but the power table
	// flags them suspect.
	if n.MetricsSuspect() {
		t.Error("stuck sensor quarantined the node (plausible samples should pass)")
	}
	if last, ok := n.PowerTable().Last(); !ok || last.Quality != powernet.QualitySuspect {
		t.Errorf("stuck reading quality = %v, want QualitySuspect", last.Quality)
	}
}

func TestNoisySensorMarksRowsSuspect(t *testing.T) {
	n := newNode(t)
	attachVM(t, n, "v", workload.WebServing)
	stepTicks(t, n, 1)
	n.SetSensorFault(faults.SensorFault{
		Mode:  faults.ModeNoise,
		Sigma: 0.2,
		Noise: [3]float64{1.5, -0.5, 0.25},
	})
	stepTicks(t, n, 1)
	last, ok := n.PowerTable().Last()
	if !ok {
		t.Fatal("no row recorded")
	}
	if last.Quality != powernet.QualitySuspect {
		t.Errorf("noisy reading quality = %v, want QualitySuspect", last.Quality)
	}
}

func TestUtilityGatingDuringBrownout(t *testing.T) {
	n := newNode(t, func(c *Config) { c.UtilityBackup = true })
	if !n.UtilityAvailable() {
		t.Fatal("utility not available with UtilityBackup set")
	}
	n.SetUtilityAvailable(false)
	if n.UtilityAvailable() {
		t.Error("utility still available during injected brownout")
	}
	n.SetUtilityAvailable(true)
	if !n.UtilityAvailable() {
		t.Error("utility did not come back after the brownout")
	}
	// Without the backup config the flag must stay false regardless.
	bare := newNode(t)
	bare.SetUtilityAvailable(true)
	if bare.UtilityAvailable() {
		t.Error("utility reported available without UtilityBackup")
	}
}

func TestInjectBatteryWear(t *testing.T) {
	n := newNode(t)
	healthBefore := n.Stats().Health
	n.InjectBatteryWear(0.10, 0.5, 0)
	healthAfter := n.Stats().Health
	if healthAfter >= healthBefore {
		t.Errorf("health %v -> %v: capacity-loss shock had no effect", healthBefore, healthAfter)
	}
	// The shock must land close to the requested fade.
	if diff := healthBefore - healthAfter; diff < 0.05 || diff > 0.15 {
		t.Errorf("health dropped by %v, want ~0.10", diff)
	}
	deg := n.AgingModel().Degradation()
	if deg.ResistanceGrowth < 0.5 {
		t.Errorf("resistance growth %v, want >= 0.5", deg.ResistanceGrowth)
	}
}
