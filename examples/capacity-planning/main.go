// Capacity planning: how much battery should back each server? This is the
// scenario behind Figs 15–17 of the paper — the server-to-battery capacity
// ratio (peak server watts per installed battery ampere-hour) drives both
// battery lifetime and the economics of the datacenter.
//
// The example sweeps the installed battery bank from generous (2 W/Ah) to
// starved (10 W/Ah), measures fleet lifetime under e-Buff and BAAT, and
// translates the difference into annual depreciation dollars.
//
// Run with:
//
//	go run ./examples/capacity-planning
package main

import (
	"fmt"
	"log"
	"time"

	baat "github.com/green-dc/baat"
)

const accel = 10

func main() {
	model := baat.DefaultCostModel()
	const nodes = 6

	fmt.Printf("%-12s %12s %12s %14s %14s %10s\n",
		"ratio (W/Ah)", "e-Buff life", "BAAT life", "e-Buff $/yr", "BAAT $/yr", "saving")
	for _, ratio := range []float64{2, 4, 6, 8, 10} {
		eLife, err := lifetimeAtRatio("ebuff", ratio)
		if err != nil {
			log.Fatal(err)
		}
		bLife, err := lifetimeAtRatio("baat", ratio)
		if err != nil {
			log.Fatal(err)
		}
		eCost, err := model.AnnualBatteryDepreciation(nodes, eLife)
		if err != nil {
			log.Fatal(err)
		}
		bCost, err := model.AnnualBatteryDepreciation(nodes, bLife)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12.0f %10.1fmo %10.1fmo %14.0f %14.0f %9.0f%%\n",
			ratio, eLife.Hours()/(30*24), bLife.Hours()/(30*24),
			eCost, bCost, (1-bCost/eCost)*100)
	}
	fmt.Println("\nfindings to look for (paper §VI-C/D):")
	fmt.Println(" - heavier server-to-battery ratios shorten battery life;")
	fmt.Println(" - BAAT's advantage grows as the system becomes power-constrained;")
	fmt.Println(" - the savings fund scale-out at constant TCO (Fig 17).")
}

// lifetimeAtRatio sizes the per-node battery bank for the ratio and runs
// the fleet to first battery end-of-life.
func lifetimeAtRatio(policy string, ratio float64) (time.Duration, error) {
	cfg := baat.DefaultSimConfig()
	cfg.Policy = baat.PolicySpec{Name: policy}
	cfg.Services = baat.PrototypeServices()
	cfg.JobsPerDay = 2
	cfg.Solar.Scale = 1.5 // PV sized so sunny days fully recharge the bank
	cfg.Node.AgingConfig.AccelFactor = accel

	// Size the bank: capacity (Ah) = server peak power / ratio. The spec
	// scales like parallel units of the base 35 Ah battery.
	peak := float64(cfg.Node.ServerSpec.PeakPower)
	base := baat.DefaultBatterySpec()
	factor := peak / ratio / float64(base.NominalCapacity)
	spec := base
	spec.NominalCapacity = baat.AmpereHour(float64(base.NominalCapacity) * factor)
	spec.MaxChargeCurrent = baat.Ampere(float64(base.MaxChargeCurrent) * factor)
	spec.LifetimeThroughput = baat.AmpereHour(float64(base.LifetimeThroughput) * factor)
	spec.ThermalCapacity = base.ThermalCapacity * factor
	spec.InternalResistance = base.InternalResistance / factor
	cfg.Node.BatterySpec = spec

	sim, err := baat.NewSimulator(cfg)
	if err != nil {
		return 0, err
	}
	res, err := sim.RunUntilEndOfLife(baat.Location{SunshineFraction: 0.6}, 150)
	if err != nil {
		return 0, err
	}
	life := res.FleetLifetime
	if life == 0 {
		life = time.Duration(len(res.Days)) * 24 * time.Hour
	}
	return time.Duration(float64(life) * accel), nil
}
