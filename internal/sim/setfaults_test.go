package sim

// SetFaults is the mid-flight fault-plan swap that internal/serve's mutate
// endpoint rides on. The contract: swapping between days keeps the run
// valid, moves the config hash with the plan (checkpoints pin the plan that
// was live when they were written), and disabling a plan clears whatever
// sensor corruption it left applied.

import (
	"bytes"
	"strings"
	"testing"

	"github.com/green-dc/baat/internal/faults"
)

func chaosConfig(t *testing.T) faults.Config {
	t.Helper()
	fcfg, err := faults.Profile("chaos", 0)
	if err != nil {
		t.Fatal(err)
	}
	return fcfg
}

// TestSetFaultsMidRun swaps a clean run onto the chaos plan after two days:
// the run keeps stepping, the config hash moves to the faulted
// configuration, and a post-swap checkpoint resumes only into a simulator
// built with the new plan.
func TestSetFaultsMidRun(t *testing.T) {
	s := goldenSim(t, nil)
	weathers := goldenWeather()
	for _, w := range weathers[:2] {
		if _, err := s.RunDay(w); err != nil {
			t.Fatal(err)
		}
	}
	cleanHash, err := s.ConfigHash()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetFaults(chaosConfig(t)); err != nil {
		t.Fatal(err)
	}
	swappedHash, err := s.ConfigHash()
	if err != nil {
		t.Fatal(err)
	}
	if swappedHash == cleanHash {
		t.Fatal("config hash unchanged by a fault-plan swap; checkpoints would silently cross plans")
	}
	for _, w := range weathers[2:4] {
		if _, err := s.RunDay(w); err != nil {
			t.Fatal(err)
		}
	}

	var buf bytes.Buffer
	if err := s.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	// The post-swap checkpoint resumes into a simulator configured with the
	// chaos plan from construction...
	faulted := goldenSim(t, func(c *Config) { c.Faults = chaosConfig(t) })
	if err := faulted.ResumeFrom(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("post-swap checkpoint rejected by a matching config: %v", err)
	}
	if got := faulted.Day(); got != 4 {
		t.Fatalf("resumed simulator reports day %d, want 4", got)
	}
	// ...and is rejected by the clean configuration that started the run.
	clean := goldenSim(t, nil)
	err = clean.ResumeFrom(bytes.NewReader(buf.Bytes()))
	if err == nil {
		t.Fatal("post-swap checkpoint resumed into the pre-swap configuration")
	}
	if !strings.Contains(err.Error(), "config") {
		t.Errorf("plan-mismatch error does not mention the config: %v", err)
	}
}

// TestSetFaultsDisable turns chaos off mid-run: the injector goes away, the
// checkpoint stops carrying injector state, and lingering sensor corruption
// is cleared so the controller's view reconverges to the physics.
func TestSetFaultsDisable(t *testing.T) {
	s := goldenSim(t, faultedMutate(t))
	weathers := goldenWeather()
	for _, w := range weathers[:3] {
		if _, err := s.RunDay(w); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.SetFaults(faults.Config{}); err != nil {
		t.Fatal(err)
	}
	for _, nd := range s.nodes {
		if f := nd.SensorFault(); f.Mode != faults.SensorOK {
			t.Errorf("node %s still carries sensor fault %v after disabling the plan", nd.ID(), f.Mode)
		}
	}
	if _, err := s.RunDay(weathers[3]); err != nil {
		t.Fatal(err)
	}
	st, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if st.Faults != nil || st.Degraded != nil {
		t.Fatal("disabled fault plan still serializes injector state")
	}
	// The post-disable checkpoint restores into a faultless simulator whose
	// node config otherwise matches (UtilityBackup rode along with the
	// chaos fixture's config).
	var buf bytes.Buffer
	if err := s.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	target := goldenSim(t, func(c *Config) { c.Node.UtilityBackup = true })
	if err := target.ResumeFrom(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("post-disable checkpoint rejected by a faultless config: %v", err)
	}
}

// TestSetFaultsRejectsInvalid pins that a bad plan is rejected without
// disturbing the live injector.
func TestSetFaultsRejectsInvalid(t *testing.T) {
	s := goldenSim(t, faultedMutate(t))
	bad := faults.Config{Rules: []faults.Rule{{Kind: "not_a_fault"}}}
	if err := s.SetFaults(bad); err == nil {
		t.Fatal("invalid fault plan accepted")
	}
	if s.inj == nil {
		t.Fatal("rejected plan tore down the live injector")
	}
}
