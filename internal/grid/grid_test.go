package grid

import (
	"testing"
	"time"
)

func TestTariffValidate(t *testing.T) {
	if err := DefaultTariff().Validate(); err != nil {
		t.Fatalf("default tariff invalid: %v", err)
	}
	tests := []struct {
		name   string
		mutate func(*Tariff)
	}{
		{"zero off-peak", func(tt *Tariff) { tt.OffPeakPerKWh = 0 }},
		{"peak below off-peak", func(tt *Tariff) { tt.PeakPerKWh = 0.01 }},
		{"inverted window", func(tt *Tariff) { tt.PeakEnd = tt.PeakStart - time.Hour }},
		{"window past midnight", func(tt *Tariff) { tt.PeakEnd = 25 * time.Hour }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			tf := DefaultTariff()
			tt.mutate(&tf)
			if err := tf.Validate(); err == nil {
				t.Error("Validate() = nil, want error")
			}
		})
	}
}

func TestTariffPriceAt(t *testing.T) {
	tf := DefaultTariff()
	tests := []struct {
		tod  time.Duration
		want float64
	}{
		{3 * time.Hour, tf.OffPeakPerKWh},
		{17 * time.Hour, tf.PeakPerKWh},
		{20*time.Hour + 59*time.Minute, tf.PeakPerKWh},
		{21 * time.Hour, tf.OffPeakPerKWh},
		{27 * time.Hour, tf.OffPeakPerKWh}, // wraps
		{-2 * time.Hour, tf.OffPeakPerKWh}, // 22:00
		{-6 * time.Hour, tf.PeakPerKWh},    // 18:00
	}
	for _, tt := range tests {
		if got := tf.PriceAt(tt.tod); got != tt.want {
			t.Errorf("PriceAt(%v) = %v, want %v", tt.tod, got, tt.want)
		}
	}
	if !tf.InPeak(18 * time.Hour) {
		t.Error("18:00 not in peak")
	}
	if tf.InPeak(9 * time.Hour) {
		t.Error("09:00 in peak")
	}
}

func TestShaverConfigValidate(t *testing.T) {
	if err := DefaultShaverConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	tests := []struct {
		name   string
		mutate func(*ShaverConfig)
	}{
		{"bad tariff", func(c *ShaverConfig) { c.Tariff.OffPeakPerKWh = 0 }},
		{"bad battery", func(c *ShaverConfig) { c.BatterySpec.NominalVoltage = 0 }},
		{"bad aging", func(c *ShaverConfig) { c.AgingConfig.AccelFactor = 0 }},
		{"bad floor", func(c *ShaverConfig) { c.FloorSoC = 1 }},
		{"bad recharge", func(c *ShaverConfig) { c.RechargeRate = 0 }},
		{"bad inverter", func(c *ShaverConfig) { c.InverterEfficiency = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultShaverConfig()
			tt.mutate(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Error("Validate() = nil, want error")
			}
			if _, err := NewShaver(cfg); err == nil {
				t.Error("NewShaver accepted invalid config")
			}
		})
	}
}

func TestShaverShavesPeakOnly(t *testing.T) {
	s, err := NewShaver(DefaultShaverConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Off-peak hour: no shaving, battery stays full-ish.
	for i := 0; i < 60; i++ {
		if err := s.Step(10*time.Hour, time.Minute, 60); err != nil {
			t.Fatal(err)
		}
	}
	if s.Ledger().ShavedKWh != 0 {
		t.Errorf("shaved off-peak: %v kWh", s.Ledger().ShavedKWh)
	}
	// Peak hour: the battery carries the load.
	socBefore := s.Battery().SoC()
	for i := 0; i < 60; i++ {
		if err := s.Step(18*time.Hour, time.Minute, 60); err != nil {
			t.Fatal(err)
		}
	}
	if s.Ledger().ShavedKWh <= 0 {
		t.Error("no peak shaving recorded")
	}
	if s.Battery().SoC() >= socBefore {
		t.Error("battery did not discharge during the peak")
	}
	if s.Ledger().ArbitrageSavings <= 0 {
		t.Error("no arbitrage savings recorded")
	}
}

func TestShaverRespectsFloor(t *testing.T) {
	cfg := DefaultShaverConfig()
	cfg.FloorSoC = 0.6
	s, err := NewShaver(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// A long, heavy peak: discharge must stop near the floor.
	for i := 0; i < 4*60; i++ {
		if err := s.Step(18*time.Hour, time.Minute, 150); err != nil {
			t.Fatal(err)
		}
	}
	if soc := s.Battery().SoC(); soc < 0.55 {
		t.Errorf("SoC %v fell well below the 0.6 floor", soc)
	}
}

func TestShaverRechargesOffPeak(t *testing.T) {
	s, err := NewShaver(DefaultShaverConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Drain through a peak, then recharge overnight.
	for i := 0; i < 3*60; i++ {
		if err := s.Step(18*time.Hour, time.Minute, 120); err != nil {
			t.Fatal(err)
		}
	}
	low := s.Battery().SoC()
	for i := 0; i < 8*60; i++ {
		if err := s.Step(1*time.Hour, time.Minute, 0); err != nil {
			t.Fatal(err)
		}
	}
	if s.Battery().SoC() <= low {
		t.Error("battery did not recharge off-peak")
	}
	if s.Ledger().GridCost <= 0 || s.Ledger().GridEnergyKWh <= 0 {
		t.Error("recharge energy not billed")
	}
}

func TestRunDaysTableOneShape(t *testing.T) {
	// Table 1: demand response cycles the battery "occasionally" with
	// medium aging. A quarter of daily peak shaving must wear the battery
	// measurably but far less than power-smoothing duty.
	cfg := DefaultShaverConfig()
	cfg.AgingConfig.AccelFactor = 10
	s, err := NewShaver(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RunDays(9, 100, time.Minute); err != nil { // ≈90 days at ×10
		t.Fatal(err)
	}
	wear := 1 - s.Battery().Health()
	if wear <= 0 {
		t.Error("no wear from a quarter of demand response")
	}
	if wear > 0.15 {
		t.Errorf("demand-response wear %v too severe for Table 1's 'medium'", wear)
	}
	if s.Ledger().ShavedKWh <= 0 {
		t.Error("no energy shaved over the quarter")
	}
}

func TestNetBenefitAccountsForWear(t *testing.T) {
	cfg := DefaultShaverConfig()
	cfg.AgingConfig.AccelFactor = 10
	cfg.FloorSoC = 0.05 // an aggressive shaver, wearing the battery hard
	s, err := NewShaver(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RunDays(9, 100, time.Minute); err != nil {
		t.Fatal(err)
	}
	// With a free battery the benefit equals the savings; with an
	// expensive battery the wear can eat them.
	if s.NetBenefit(0) != s.Ledger().ArbitrageSavings {
		t.Error("free battery should make benefit equal savings")
	}
	if s.NetBenefit(1e6) >= s.NetBenefit(0) {
		t.Error("battery cost did not reduce the net benefit")
	}
}

func TestStepValidation(t *testing.T) {
	s, err := NewShaver(DefaultShaverConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Step(0, 0, 10); err == nil {
		t.Error("zero duration accepted")
	}
	if err := s.Step(0, time.Minute, -5); err == nil {
		t.Error("negative load accepted")
	}
	if err := s.RunDays(0, 10, time.Minute); err == nil {
		t.Error("zero days accepted")
	}
}

func TestAgingAwareShaverWearsLess(t *testing.T) {
	// The BAAT thesis applied to demand response: a floor-respecting
	// shaver preserves battery health versus an aggressive one, at some
	// savings cost.
	run := func(floor float64) (wear, savings float64) {
		cfg := DefaultShaverConfig()
		cfg.AgingConfig.AccelFactor = 10
		cfg.FloorSoC = floor
		s, err := NewShaver(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.RunDays(9, 130, time.Minute); err != nil {
			t.Fatal(err)
		}
		return 1 - s.Battery().Health(), s.Ledger().ArbitrageSavings
	}
	aggroWear, aggroSavings := run(0.05)
	safeWear, safeSavings := run(0.40)
	if safeWear >= aggroWear {
		t.Errorf("floor did not reduce wear: %v vs %v", safeWear, aggroWear)
	}
	if safeSavings > aggroSavings {
		t.Errorf("floor somehow increased savings: %v vs %v", safeSavings, aggroSavings)
	}
}
