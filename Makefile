# Development targets. `make check` is the pre-commit gate CI expects.

GO ?= go

.PHONY: check fmt vet build test test-race bench

check: ## gofmt -l + vet + build + race tests
	./check.sh

fmt: ## rewrite formatting in place
	gofmt -w .

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

bench: ## quick-mode experiment benchmarks
	$(GO) test -bench=. -benchmem -run=^$$ ./...
