package serve

// Black-box integration tests for the control plane: every test drives the
// service exclusively through its HTTP API (an httptest server mounted on
// Handler), exactly as an external client would, with the shared leak guard
// armed so that no lifecycle path may shed goroutines.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"slices"
	"strings"
	"testing"
	"time"

	"github.com/green-dc/baat/internal/serve/leaktest"
)

// waitDeadline bounds every poll loop. Generous: a stuck run fails slow,
// a healthy run passes fast.
const waitDeadline = 2 * time.Minute

// testClient wraps an httptest server around a fresh service. Cleanup
// stops the service first (runs exit, SSE streams drain) and the transport
// second — the order Close is designed for.
type testClient struct {
	t  *testing.T
	ts *httptest.Server
}

func newTestClient(t *testing.T) *testClient {
	t.Helper()
	leaktest.Check(t)
	srv := NewServer()
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		if err := srv.Close(); err != nil {
			t.Errorf("server close: %v", err)
		}
		ts.Close()
	})
	return &testClient{t: t, ts: ts}
}

// do issues one request and returns status and body.
func (c *testClient) do(method, p string, body []byte) (int, []byte) {
	c.t.Helper()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, c.ts.URL+p, rd)
	if err != nil {
		c.t.Fatal(err)
	}
	resp, err := c.ts.Client().Do(req)
	if err != nil {
		c.t.Fatalf("%s %s: %v", method, p, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		c.t.Fatalf("%s %s: read body: %v", method, p, err)
	}
	return resp.StatusCode, b
}

// doJSON issues a request with a JSON body and decodes the JSON response.
func (c *testClient) doJSON(method, p string, body, out any) int {
	c.t.Helper()
	var raw []byte
	if body != nil {
		var err error
		if raw, err = json.Marshal(body); err != nil {
			c.t.Fatal(err)
		}
	}
	status, b := c.do(method, p, raw)
	if out != nil && len(b) > 0 {
		if err := json.Unmarshal(b, out); err != nil {
			c.t.Fatalf("%s %s: decode %q: %v", method, p, b, err)
		}
	}
	return status
}

// create posts a spec and returns the new run's status document.
func (c *testClient) create(sp RunSpec) RunInfo {
	c.t.Helper()
	var inf RunInfo
	if st := c.doJSON("POST", "/runs", sp, &inf); st != http.StatusCreated {
		c.t.Fatalf("create run: status %d", st)
	}
	return inf
}

// post fires a lifecycle action and returns the fresh status.
func (c *testClient) post(p string) RunInfo {
	c.t.Helper()
	var inf RunInfo
	if st := c.doJSON("POST", p, nil, &inf); st != http.StatusOK {
		c.t.Fatalf("POST %s: status %d", p, st)
	}
	return inf
}

// info fetches a run's status document.
func (c *testClient) info(id string) RunInfo {
	c.t.Helper()
	var inf RunInfo
	if st := c.doJSON("GET", "/runs/"+id, nil, &inf); st != http.StatusOK {
		c.t.Fatalf("GET /runs/%s: status %d", id, st)
	}
	return inf
}

// waitState polls until the run reaches the wanted state, failing fast if
// it lands in failed instead.
func (c *testClient) waitState(id string, want State) RunInfo {
	c.t.Helper()
	deadline := time.Now().Add(waitDeadline)
	for {
		inf := c.info(id)
		if inf.State == want {
			return inf
		}
		if inf.State == StateFailed && want != StateFailed {
			c.t.Fatalf("run %s failed: %s", id, inf.Error)
		}
		if time.Now().After(deadline) {
			c.t.Fatalf("run %s stuck in %s (day %d) waiting for %s", id, inf.State, inf.Day, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// checkpoint fetches the raw envelope stored at the given day.
func (c *testClient) checkpoint(id string, day int) []byte {
	c.t.Helper()
	st, b := c.do("GET", "/runs/"+id+"/checkpoint?day="+itoa(day), nil)
	if st != http.StatusOK {
		c.t.Fatalf("GET /runs/%s/checkpoint?day=%d: status %d: %s", id, day, st, b)
	}
	return b
}

// resultBytes fetches the raw result document — raw, because the
// equivalence tests compare results byte for byte.
func (c *testClient) resultBytes(id string) []byte {
	c.t.Helper()
	st, b := c.do("GET", "/runs/"+id+"/result", nil)
	if st != http.StatusOK {
		c.t.Fatalf("GET /runs/%s/result: status %d", id, st)
	}
	return b
}

func itoa(n int) string {
	b, _ := json.Marshal(n)
	return string(b)
}

// TestLifecycle walks one run through the whole state machine over the
// API: created → stepped → paused → resumed → done → deleted, checking the
// status document at each station.
func TestLifecycle(t *testing.T) {
	c := newTestClient(t)

	inf := c.create(RunSpec{Days: 5, Seed: 3})
	if inf.ID != "r1" {
		t.Fatalf("first run ID = %q, want r1 (IDs are a deterministic counter)", inf.ID)
	}
	if inf.State != StateCreated || inf.Day != 0 || inf.Days != 5 {
		t.Fatalf("fresh run = %+v, want created at day 0 of 5", inf)
	}
	if inf.Policy != "baat" || inf.Weather != "mix" || inf.BatteryModel != "leadacid" {
		t.Fatalf("defaults not applied: %+v", inf)
	}

	c.post("/runs/r1/step?to=2")
	inf = c.waitState("r1", StatePaused)
	if inf.Day != 2 {
		t.Fatalf("after step to 2: day %d, want 2", inf.Day)
	}
	if !slices.Equal(inf.Checkpoints, []int{1, 2}) {
		t.Fatalf("checkpoints after day 2 = %v, want [1 2]", inf.Checkpoints)
	}

	c.post("/runs/r1/resume")
	inf = c.waitState("r1", StateDone)
	if inf.Day != 5 {
		t.Fatalf("done at day %d, want 5", inf.Day)
	}

	var res RunResult
	if st := c.doJSON("GET", "/runs/r1/result", nil, &res); st != http.StatusOK {
		t.Fatalf("result status %d", st)
	}
	if !res.Done || len(res.Days) != 5 || len(res.Nodes) != 6 {
		t.Fatalf("result done=%v days=%d nodes=%d, want done with 5 days and 6 nodes",
			res.Done, len(res.Days), len(res.Nodes))
	}
	if res.SoCTotal <= 0 {
		t.Fatalf("final SoC histogram is empty")
	}

	var lst struct {
		Runs []RunInfo `json:"runs"`
	}
	if st := c.doJSON("GET", "/runs", nil, &lst); st != http.StatusOK || len(lst.Runs) != 1 {
		t.Fatalf("list: status %d, %d runs, want 1", st, len(lst.Runs))
	}

	if st, _ := c.do("DELETE", "/runs/r1", nil); st != http.StatusNoContent {
		t.Fatalf("delete: status %d", st)
	}
	if st, _ := c.do("GET", "/runs/r1", nil); st != http.StatusNotFound {
		t.Fatalf("status after delete: %d, want 404", st)
	}
}

// sseEvent is one parsed server-sent event.
type sseEvent struct {
	name string
	data string
}

// readSSE parses events off a stream until a terminal done/error event,
// EOF, or the deadline.
func readSSE(t *testing.T, body io.Reader) []sseEvent {
	t.Helper()
	var events []sseEvent
	var ev sseEvent
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			ev.name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			ev.data = strings.TrimPrefix(line, "data: ")
		case line == "":
			if ev.name != "" {
				events = append(events, ev)
				if ev.name == "done" || ev.name == "error" {
					return events
				}
				ev = sseEvent{}
			}
		}
	}
	return events
}

// TestSSEStream subscribes before the run starts and follows it to
// completion: every completed day arrives exactly once and in order, state
// transitions are announced, and the stream terminates with one done event
// carrying the final result. A second, late subscription replays the whole
// history rather than joining mid-stream.
func TestSSEStream(t *testing.T) {
	c := newTestClient(t)
	const days = 4
	inf := c.create(RunSpec{Days: days, Seed: 2})

	req, err := http.NewRequest("GET", c.ts.URL+"/runs/"+inf.ID+"/stream", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := c.ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("stream content type %q", ct)
	}

	c.post("/runs/" + inf.ID + "/start")
	events := readSSE(t, resp.Body)
	checkStreamEvents(t, events, days)

	// Late subscriber: the run is long done, yet the stream replays every
	// day before the terminal event.
	resp2, err := c.ts.Client().Get(c.ts.URL + "/runs/" + inf.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	checkStreamEvents(t, readSSE(t, resp2.Body), days)
}

// checkStreamEvents asserts the stream vocabulary: days 1..n in order,
// then exactly one terminal done event with the full result.
func checkStreamEvents(t *testing.T, events []sseEvent, days int) {
	t.Helper()
	var gotDays []int
	var done *RunResult
	for _, ev := range events {
		switch ev.name {
		case "day":
			var d struct{ Day int }
			if err := json.Unmarshal([]byte(ev.data), &d); err != nil {
				t.Fatalf("day event %q: %v", ev.data, err)
			}
			gotDays = append(gotDays, d.Day)
		case "done":
			if done != nil {
				t.Fatal("two terminal done events on one stream")
			}
			done = new(RunResult)
			if err := json.Unmarshal([]byte(ev.data), done); err != nil {
				t.Fatalf("done event %q: %v", ev.data, err)
			}
		case "state":
		case "error":
			t.Fatalf("stream ended with error event: %s", ev.data)
		default:
			t.Fatalf("unknown stream event %q", ev.name)
		}
	}
	want := make([]int, days)
	for i := range want {
		want[i] = i + 1
	}
	if !slices.Equal(gotDays, want) {
		t.Fatalf("stream days = %v, want %v", gotDays, want)
	}
	if done == nil {
		t.Fatal("stream ended without a done event")
	}
	if !done.Done || len(done.Days) != days {
		t.Fatalf("terminal result done=%v days=%d, want done with %d days", done.Done, len(done.Days), days)
	}
}

// TestMutateMidRun pauses a run mid-flight, swaps policy and fault profile
// and sunshine, and checks that (a) the mutation report distinguishes
// applied from no-op, (b) the run completes under the new scenario, and
// (c) a fork from a pre-mutation checkpoint resurrects the original
// scenario — the spec snapshot, not the mutated one.
func TestMutateMidRun(t *testing.T) {
	c := newTestClient(t)
	inf := c.create(RunSpec{Days: 6, Seed: 4})
	id := inf.ID
	c.post("/runs/" + id + "/step?to=3")
	c.waitState(id, StatePaused)

	var mres struct {
		Applied []string `json:"applied"`
		Noop    []string `json:"noop"`
		Run     RunInfo  `json:"run"`
	}
	mut := Mutation{Policy: "ebuff", Sunshine: ptr(0.9), Faults: ptr("chaos")}
	if st := c.doJSON("POST", "/runs/"+id+"/mutate", mut, &mres); st != http.StatusOK {
		t.Fatalf("mutate: status %d", st)
	}
	if !slices.Equal(mres.Applied, []string{"policy", "sunshine", "faults"}) || len(mres.Noop) != 0 {
		t.Fatalf("mutation report applied=%v noop=%v", mres.Applied, mres.Noop)
	}
	if mres.Run.Policy != "ebuff" || mres.Run.Faults != "chaos" || mres.Run.Sunshine != 0.9 {
		t.Fatalf("mutated spec not reflected in status: %+v", mres.Run)
	}

	// Re-sending the same scenario is all no-ops — including via a policy
	// alias, which must canonicalize before comparing.
	mut = Mutation{Policy: "e-buff", Sunshine: ptr(0.9), Faults: ptr("chaos")}
	if st := c.doJSON("POST", "/runs/"+id+"/mutate", mut, &mres); st != http.StatusOK {
		t.Fatalf("no-op mutate: status %d", st)
	}
	if len(mres.Applied) != 0 || !slices.Equal(mres.Noop, []string{"policy", "sunshine", "faults"}) {
		t.Fatalf("no-op mutation report applied=%v noop=%v", mres.Applied, mres.Noop)
	}

	c.post("/runs/" + id + "/resume")
	if inf = c.waitState(id, StateDone); inf.Day != 6 {
		t.Fatalf("mutated run finished at day %d, want 6", inf.Day)
	}

	// Fork from day 2: before the mutation, so the child carries the
	// original baat/none scenario.
	var child RunInfo
	if st := c.doJSON("POST", "/runs/"+id+"/fork?day=2", nil, &child); st != http.StatusCreated {
		t.Fatalf("fork: status %d", st)
	}
	if child.Policy != "baat" || child.Faults != "none" || child.Sunshine != 0.5 {
		t.Fatalf("fork of pre-mutation checkpoint inherited mutated spec: %+v", child)
	}
	c.post("/runs/" + child.ID + "/resume")
	c.waitState(child.ID, StateDone)
}

// TestMutatePolicyOptions drives the registry's option vocabulary through
// the mutate endpoint: an options-only mutation retunes the current policy,
// re-sending the identical spec is a no-op (name AND options compared),
// a rejected spec leaves the run untouched, and a swap without options
// resets the policy to its defaults.
func TestMutatePolicyOptions(t *testing.T) {
	c := newTestClient(t)
	inf := c.create(RunSpec{Days: 6, Seed: 9})
	id := inf.ID
	c.post("/runs/" + id + "/step?to=2")
	c.waitState(id, StatePaused)

	var mres struct {
		Applied []string `json:"applied"`
		Noop    []string `json:"noop"`
		Run     RunInfo  `json:"run"`
	}
	// Options-only: the policy name is omitted and defaults to the run's
	// current policy (baat), retuned with a deeper floor.
	mut := Mutation{PolicyOptions: map[string]string{"floor": "0.25"}}
	if st := c.doJSON("POST", "/runs/"+id+"/mutate", mut, &mres); st != http.StatusOK {
		t.Fatalf("options-only mutate: status %d", st)
	}
	if !slices.Equal(mres.Applied, []string{"policy"}) || len(mres.Noop) != 0 {
		t.Fatalf("options-only mutation report applied=%v noop=%v", mres.Applied, mres.Noop)
	}
	if mres.Run.Policy != "baat" || mres.Run.PolicyOptions["floor"] != "0.25" {
		t.Fatalf("retuned spec not reflected in status: %+v", mres.Run)
	}

	// The same spec again — this time with the name spelled out via an
	// alias — is a pure no-op: equality covers the options too.
	mut = Mutation{Policy: "BAAT", PolicyOptions: map[string]string{"floor": "0.25"}}
	if st := c.doJSON("POST", "/runs/"+id+"/mutate", mut, &mres); st != http.StatusOK {
		t.Fatalf("no-op mutate: status %d", st)
	}
	if len(mres.Applied) != 0 || !slices.Equal(mres.Noop, []string{"policy"}) {
		t.Fatalf("no-op mutation report applied=%v noop=%v", mres.Applied, mres.Noop)
	}

	// A spec the registry rejects (floor above trigger) must not disturb
	// the run: 400 now, and the previous retune stays live.
	if st, body := c.do("POST", "/runs/"+id+"/mutate", []byte(`{"policy_options": {"floor": "0.9"}}`)); st != http.StatusBadRequest {
		t.Fatalf("invalid retune: status %d, body %s", st, body)
	}
	if inf = c.info(id); inf.Policy != "baat" || inf.PolicyOptions["floor"] != "0.25" {
		t.Fatalf("rejected mutation disturbed the spec: %+v", inf)
	}

	// Swapping the name without options resets to the policy's defaults —
	// the old options do not leak onto the new policy.
	mut = Mutation{Policy: "baat-s"}
	mres.Run = RunInfo{} // a fresh target: omitted fields must read as absent
	if st := c.doJSON("POST", "/runs/"+id+"/mutate", mut, &mres); st != http.StatusOK {
		t.Fatalf("swap mutate: status %d", st)
	}
	if !slices.Equal(mres.Applied, []string{"policy"}) {
		t.Fatalf("swap mutation report applied=%v noop=%v", mres.Applied, mres.Noop)
	}
	if mres.Run.Policy != "baat-s" || len(mres.Run.PolicyOptions) != 0 {
		t.Fatalf("swap carried stale options: %+v", mres.Run)
	}
	if inf = c.info(id); inf.Policy != "baat-s" || len(inf.PolicyOptions) != 0 {
		t.Fatalf("status still reports stale options after the swap: %+v", inf)
	}

	// The run is still healthy: it completes under the swapped policy.
	c.post("/runs/" + id + "/resume")
	if inf = c.waitState(id, StateDone); inf.Day != 6 {
		t.Fatalf("mutated run finished at day %d, want 6", inf.Day)
	}
}
