package cluster

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"slices"
	"sync"
	"time"

	"github.com/green-dc/baat/internal/telemetry"
)

// ControllerConfig parameterizes the central BAAT controller.
type ControllerConfig struct {
	// Addr is the TCP listen address ("127.0.0.1:0" for tests).
	Addr string
	// StaleAfter marks agents whose last report is older than this as
	// stale in snapshots.
	StaleAfter time.Duration
	// CommandTimeout bounds how long SendCommand waits for an Ack.
	CommandTimeout time.Duration
	// Telemetry counts reports received, commands sent, ack outcomes, and
	// command timeouts, and gauges connected agents. Nil leaves the
	// controller un-instrumented.
	Telemetry *telemetry.Recorder
}

// DefaultControllerConfig returns local defaults.
func DefaultControllerConfig(addr string) ControllerConfig {
	return ControllerConfig{
		Addr:           addr,
		StaleAfter:     2 * time.Second,
		CommandTimeout: 2 * time.Second,
	}
}

// Validate checks the configuration.
func (c ControllerConfig) Validate() error {
	if c.Addr == "" {
		return errors.New("cluster: controller address must not be empty")
	}
	if c.StaleAfter <= 0 || c.CommandTimeout <= 0 {
		return errors.New("cluster: timeouts must be positive")
	}
	return nil
}

// NodeState is the controller's view of one agent.
type NodeState struct {
	// Report is the latest sensor report.
	Report Report
	// LastSeen is when the report arrived.
	LastSeen time.Time
	// Stale marks agents that have missed their reporting deadline.
	Stale bool
}

// Controller is the central monitoring and actuation endpoint (Fig 7's
// "BAAT controller" box).
type Controller struct {
	cfg ControllerConfig
	ln  net.Listener

	mu      sync.Mutex
	conns   map[string]*agentConn
	states  map[string]NodeState
	nextCmd uint64
	closed  bool

	wg sync.WaitGroup

	// Telemetry handles (nil-safe no-ops without a recorder).
	telReports   *telemetry.Counter
	telCommands  *telemetry.Counter
	telAcksOK    *telemetry.Counter
	telAcksRej   *telemetry.Counter
	telTimeouts  *telemetry.Counter
	telConnected *telemetry.Gauge
}

// agentConn is one connected agent.
type agentConn struct {
	nodeID  string
	conn    net.Conn
	writeMu sync.Mutex
	pending map[uint64]chan Ack
	mu      sync.Mutex
}

// ListenController starts a controller on cfg.Addr.
func ListenController(cfg ControllerConfig) (*Controller, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("cluster: listening: %w", err)
	}
	c := &Controller{
		cfg:    cfg,
		ln:     ln,
		conns:  map[string]*agentConn{},
		states: map[string]NodeState{},

		telReports:   cfg.Telemetry.Counter(telemetry.MetricClusterReportsReceived),
		telCommands:  cfg.Telemetry.Counter(telemetry.MetricClusterCommandsSent),
		telAcksOK:    cfg.Telemetry.Counter(telemetry.MetricClusterAcksOK),
		telAcksRej:   cfg.Telemetry.Counter(telemetry.MetricClusterAcksRejected),
		telTimeouts:  cfg.Telemetry.Counter(telemetry.MetricClusterTimeouts),
		telConnected: cfg.Telemetry.Gauge(telemetry.MetricClusterAgents),
	}
	c.wg.Add(1)
	go c.acceptLoop()
	return c, nil
}

// Addr returns the bound listen address.
func (c *Controller) Addr() string { return c.ln.Addr().String() }

func (c *Controller) acceptLoop() {
	defer c.wg.Done()
	for {
		conn, err := c.ln.Accept()
		if err != nil {
			return // listener closed
		}
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			c.serve(conn)
		}()
	}
}

// serve handles one agent connection: a Hello registers it, then reports
// update the state table and acks complete pending commands.
func (c *Controller) serve(conn net.Conn) {
	defer func() { _ = conn.Close() }()
	scanner := bufio.NewScanner(conn)
	scanner.Buffer(make([]byte, 0, 64*1024), 1024*1024)

	var ac *agentConn
	defer func() {
		if ac == nil {
			return
		}
		c.mu.Lock()
		if cur, ok := c.conns[ac.nodeID]; ok && cur == ac {
			delete(c.conns, ac.nodeID)
			c.telConnected.Add(-1)
		}
		c.mu.Unlock()
		ac.failPending()
	}()

	for scanner.Scan() {
		var env Envelope
		if err := json.Unmarshal(scanner.Bytes(), &env); err != nil {
			return
		}
		if env.Validate() != nil {
			return
		}
		switch env.Type {
		case MsgHello:
			ac = &agentConn{
				nodeID:  env.Hello.NodeID,
				conn:    conn,
				pending: map[uint64]chan Ack{},
			}
			c.mu.Lock()
			_, replaced := c.conns[env.Hello.NodeID]
			c.conns[env.Hello.NodeID] = ac
			if !replaced {
				c.telConnected.Add(1)
			}
			c.mu.Unlock()
		case MsgReport:
			if ac == nil {
				return // report before hello: protocol violation
			}
			c.mu.Lock()
			c.states[env.Report.NodeID] = NodeState{
				Report:   *env.Report,
				LastSeen: time.Now(),
			}
			c.mu.Unlock()
			c.telReports.Inc()
		case MsgAck:
			if ac == nil {
				return
			}
			ac.complete(*env.Ack)
		case MsgCommand:
			return // agents do not send commands
		}
	}
}

// complete resolves a pending command.
func (a *agentConn) complete(ack Ack) {
	a.mu.Lock()
	ch, ok := a.pending[ack.ID]
	if ok {
		delete(a.pending, ack.ID)
	}
	a.mu.Unlock()
	if ok {
		ch <- ack
	}
}

// failPending unblocks all waiters after a disconnect.
func (a *agentConn) failPending() {
	a.mu.Lock()
	pending := a.pending
	a.pending = map[uint64]chan Ack{}
	a.mu.Unlock()
	for id, ch := range pending {
		ch <- Ack{ID: id, OK: false, Error: "agent disconnected"}
	}
}

// Snapshot returns the latest view of every known node, sorted by ID, with
// staleness computed against the configured deadline.
func (c *Controller) Snapshot() []NodeState {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]NodeState, 0, len(c.states))
	ids := make([]string, 0, len(c.states))
	for id := range c.states {
		ids = append(ids, id)
	}
	slices.Sort(ids)
	now := time.Now()
	for _, id := range ids {
		st := c.states[id]
		st.Stale = now.Sub(st.LastSeen) > c.cfg.StaleAfter
		out = append(out, st)
	}
	return out
}

// AgentIDs lists currently connected agents, sorted.
func (c *Controller) AgentIDs() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.conns))
	for id := range c.conns {
		out = append(out, id)
	}
	slices.Sort(out)
	return out
}

// ErrUnknownAgent is returned when a command targets a node that is not
// connected.
var ErrUnknownAgent = errors.New("cluster: unknown agent")

// SendCommand pushes a command to a node's agent and waits for its ack (or
// ctx/config timeout).
func (c *Controller) SendCommand(ctx context.Context, nodeID string, cmd Command) (Ack, error) {
	if err := cmd.Validate(); err != nil {
		return Ack{}, err
	}
	c.mu.Lock()
	ac, ok := c.conns[nodeID]
	if !ok {
		c.mu.Unlock()
		return Ack{}, fmt.Errorf("%w: %s", ErrUnknownAgent, nodeID)
	}
	c.nextCmd++
	cmd.ID = c.nextCmd
	c.mu.Unlock()

	ch := make(chan Ack, 1)
	ac.mu.Lock()
	ac.pending[cmd.ID] = ch
	ac.mu.Unlock()

	data, err := json.Marshal(Envelope{Type: MsgCommand, Command: &cmd})
	if err != nil {
		return Ack{}, err
	}
	ac.writeMu.Lock()
	_, err = ac.conn.Write(append(data, '\n'))
	ac.writeMu.Unlock()
	if err != nil {
		ac.mu.Lock()
		delete(ac.pending, cmd.ID)
		ac.mu.Unlock()
		return Ack{}, fmt.Errorf("cluster: sending command: %w", err)
	}
	c.telCommands.Inc()

	timeout := time.NewTimer(c.cfg.CommandTimeout)
	defer timeout.Stop()
	select {
	case ack := <-ch:
		if !ack.OK {
			c.telAcksRej.Inc()
			return ack, fmt.Errorf("cluster: command %d rejected: %s", ack.ID, ack.Error)
		}
		c.telAcksOK.Inc()
		return ack, nil
	case <-ctx.Done():
		ac.mu.Lock()
		delete(ac.pending, cmd.ID)
		ac.mu.Unlock()
		return Ack{}, ctx.Err()
	case <-timeout.C:
		ac.mu.Lock()
		delete(ac.pending, cmd.ID)
		ac.mu.Unlock()
		c.telTimeouts.Inc()
		return Ack{}, fmt.Errorf("cluster: command to %s timed out", nodeID)
	}
}

// Close shuts the controller down and waits for connection handlers.
func (c *Controller) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	conns := make([]*agentConn, 0, len(c.conns))
	for _, ac := range c.conns {
		conns = append(conns, ac)
	}
	c.mu.Unlock()
	err := c.ln.Close()
	for _, ac := range conns {
		_ = ac.conn.Close()
	}
	c.wg.Wait()
	return err
}
