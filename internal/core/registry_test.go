package core

// Contract tests for the policy registry: spec parsing and normalization,
// alias resolution, option-key and option-value validation, listing order,
// and the duplicate-registration panic. These pin the exact error and panic
// messages the control plane's error contract surfaces to clients.

import (
	"strings"
	"testing"
	"time"
)

func TestParsePolicySpec(t *testing.T) {
	tests := []struct {
		in   string
		want PolicySpec
	}{
		{"baat", PolicySpec{Name: "baat"}},
		{"ebuff", PolicySpec{Name: "ebuff"}},
		{"baat,floor=0.25", PolicySpec{Name: "baat", Options: map[string]string{"floor": "0.25"}}},
		{"baat, floor = 0.25 , trigger=0.4", PolicySpec{Name: "baat", Options: map[string]string{"floor": "0.25", "trigger": "0.4"}}},
		{"baat,,floor=0.25", PolicySpec{Name: "baat", Options: map[string]string{"floor": "0.25"}}},
	}
	for _, tt := range tests {
		got, err := ParsePolicySpec(tt.in)
		if err != nil {
			t.Errorf("ParsePolicySpec(%q): %v", tt.in, err)
			continue
		}
		if !got.Equal(tt.want) {
			t.Errorf("ParsePolicySpec(%q) = %+v, want %+v", tt.in, got, tt.want)
		}
	}
	for _, bad := range []string{"", " ", ",floor=0.25", "baat,floor", "baat,=0.25"} {
		if _, err := ParsePolicySpec(bad); err == nil {
			t.Errorf("ParsePolicySpec(%q) accepted", bad)
		}
	}
}

func TestSpecStringRoundTrips(t *testing.T) {
	sp := PolicySpec{Name: "baat", Options: map[string]string{"trigger": "0.4", "floor": "0.25"}}
	if got, want := sp.String(), "baat,floor=0.25,trigger=0.4"; got != want {
		t.Fatalf("String() = %q, want %q (sorted keys)", got, want)
	}
	back, err := ParsePolicySpec(sp.String())
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(sp) {
		t.Fatalf("round trip lost data: %+v vs %+v", back, sp)
	}
}

func TestNormalizeAliasesAndCase(t *testing.T) {
	for alias, canon := range map[string]string{
		"e-buff": "ebuff",
		"EBUFF":  "ebuff",
		"baats":  "baat-s",
		"baath":  "baat-h",
		"BAAT":   "baat",
		"baatf":  "baat-f",
		" baat ": "baat",
	} {
		norm, err := Normalize(PolicySpec{Name: alias})
		if err != nil {
			t.Errorf("Normalize(%q): %v", alias, err)
			continue
		}
		if norm.Name != canon {
			t.Errorf("Normalize(%q).Name = %q, want %q", alias, norm.Name, canon)
		}
	}
}

func TestNormalizeRejectsUnknownPolicy(t *testing.T) {
	_, err := Normalize(PolicySpec{Name: "spicy"})
	if err == nil {
		t.Fatal("unknown policy accepted")
	}
	msg := err.Error()
	if !strings.Contains(msg, `unknown policy "spicy"`) || !strings.Contains(msg, "known:") {
		t.Errorf("error %q does not name the policy and the known set", msg)
	}
	// The known set is listed in Table 4 rank order.
	if !strings.Contains(msg, "ebuff | baat-s | baat-h | baat | baat-f") {
		t.Errorf("error %q does not list policies in rank order", msg)
	}
}

func TestNormalizeRejectsUnknownOptionKey(t *testing.T) {
	_, err := Normalize(PolicySpec{Name: "baat", Options: map[string]string{"depth": "0.5"}})
	if err == nil {
		t.Fatal("unknown option key accepted")
	}
	if !strings.Contains(err.Error(), `policy "baat" has no option "depth"`) {
		t.Errorf("error %q does not name the bad key", err)
	}
	// A policy with no options at all says so rather than listing nothing.
	_, err = Normalize(PolicySpec{Name: "ebuff", Options: map[string]string{"floor": "0.2"}})
	if err == nil {
		t.Fatal("option on option-less policy accepted")
	}
	if !strings.Contains(err.Error(), `policy "ebuff" takes no options`) {
		t.Errorf("error %q does not state ebuff takes no options", err)
	}
}

func TestBuildValidatesOptionValues(t *testing.T) {
	bad := []PolicySpec{
		{Name: "baat", Options: map[string]string{"floor": "1.5"}},
		{Name: "baat", Options: map[string]string{"floor": "zero"}},
		{Name: "baat", Options: map[string]string{"reserve-time": "2 bananas"}},
		{Name: "baat", Options: map[string]string{"planned-months": "-3"}},
		{Name: "baat", Options: map[string]string{"cycles-per-day": "2"}}, // needs planned-months
		{Name: "baat", Options: map[string]string{"floor": "0.5", "trigger": "0.4"}},
	}
	for _, sp := range bad {
		if _, err := Build(sp); err == nil {
			t.Errorf("Build(%v) accepted an invalid option value", sp)
		}
	}
	good := PolicySpec{Name: "baat", Options: map[string]string{
		"floor": "0.25", "trigger": "0.45", "hysteresis": "0.05",
		"reserve-time": "3m", "migration-time": "90s",
		"planned-months": "12", "cycles-per-day": "2",
	}}
	p, err := Build(good)
	if err != nil {
		t.Fatalf("Build(%v): %v", good, err)
	}
	if p.Name() != "BAAT" {
		t.Errorf("built policy names itself %q, want BAAT", p.Name())
	}
}

func TestConfigFromOptionsAppliesValues(t *testing.T) {
	cfg, err := configFromOptions(map[string]string{
		"floor":          "0.2",
		"trigger":        "0.5",
		"reserve-time":   "4m",
		"migration-time": "30s",
		"planned-months": "6",
	})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Slowdown.FloorSoC != 0.2 || cfg.Slowdown.TriggerSoC != 0.5 {
		t.Errorf("floor/trigger = %v/%v, want 0.2/0.5", cfg.Slowdown.FloorSoC, cfg.Slowdown.TriggerSoC)
	}
	if cfg.Slowdown.ReserveTime != 4*time.Minute || cfg.MigrationTime != 30*time.Second {
		t.Errorf("reserve/migration = %v/%v", cfg.Slowdown.ReserveTime, cfg.MigrationTime)
	}
	if !cfg.Planned.Enabled || cfg.Planned.ServiceLife != time.Duration(6*30*24)*time.Hour || cfg.Planned.CyclesPerDay != 1 {
		t.Errorf("planned = %+v, want enabled, 6 months, 1 cycle/day", cfg.Planned)
	}
}

func TestRegisteredListsTable4Order(t *testing.T) {
	infos := Registered()
	var names []string
	for _, info := range infos {
		names = append(names, info.Name)
	}
	want := []string{"ebuff", "baat-s", "baat-h", "baat", "baat-f"}
	if len(names) < len(want) {
		t.Fatalf("Registered() = %v, want at least %v", names, want)
	}
	for i, n := range want {
		if names[i] != n {
			t.Fatalf("Registered() order = %v, want prefix %v", names, want)
		}
	}
	for _, info := range infos {
		if info.Display == "" || info.Doc == "" {
			t.Errorf("policy %q registered without display name or doc", info.Name)
		}
	}
}

func TestDisplayName(t *testing.T) {
	for in, want := range map[string]string{
		"ebuff":  "e-Buff",
		"baat-s": "BAAT-s",
		"baat-h": "BAAT-h",
		"baat":   "BAAT",
		"baat-f": "BAAT-f",
		"e-buff": "e-Buff", // alias resolves
		"wat":    "wat",    // unknown passes through
	} {
		if got := DisplayName(in); got != want {
			t.Errorf("DisplayName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	mustPanic := func(wantSub string, f func()) {
		t.Helper()
		defer func() {
			r := recover()
			if r == nil {
				t.Errorf("no panic (want one containing %q)", wantSub)
				return
			}
			if msg := r.(string); !strings.Contains(msg, wantSub) {
				t.Errorf("panic %q does not contain %q", msg, wantSub)
			}
		}()
		f()
	}
	dummy := Descriptor{
		Build: func(PolicySpec) (Policy, error) { return &eBuff{}, nil },
	}
	mustPanic(`core: policy "baat" already registered`, func() { Register("baat", dummy) })
	mustPanic(`already registered as an alias`, func() { Register("baats", dummy) })
	mustPanic("empty policy name", func() { Register("", dummy) })
	mustPanic("must be lowercase", func() { Register("BAAT2", dummy) })
	mustPanic("nil Build", func() { Register("nobuild", Descriptor{}) })
}
