package experiments

// BenchmarkExperimentSweep measures one quick-mode experiment end to end,
// serially and across the variant worker pool, so `-bench=ExperimentSweep`
// reports the sweep-level speedup directly. fig18 fans four policy kinds
// through runSweep; the equivalence tests in parallel_test.go guarantee
// both variants render identical tables, so this benchmark only measures
// wall time.

import (
	"fmt"
	"runtime"
	"testing"
)

func BenchmarkExperimentSweep(b *testing.B) {
	runner, err := Lookup("fig18")
	if err != nil {
		b.Fatal(err)
	}
	workerCounts := []int{1}
	if n := runtime.GOMAXPROCS(0); n > 1 {
		workerCounts = append(workerCounts, n)
	}
	for _, workers := range workerCounts {
		b.Run(fmt.Sprintf("fig18/workers=%d", workers), func(b *testing.B) {
			cfg := DefaultConfig()
			cfg.Quick = true
			cfg.Workers = workers
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := runner(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
