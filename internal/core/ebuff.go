package core

import (
	"github.com/green-dc/baat/internal/node"
	"github.com/green-dc/baat/internal/vm"
)

// eBuff is the aggressive energy-buffer baseline (Table 4): it places VMs by
// load balance alone, never throttles, never migrates, and lets every
// battery discharge to its protection cutoff. It represents the prior-work
// designs of [4, 7] that manage supply/demand mismatch with no awareness of
// battery aging.
type eBuff struct{}

func init() {
	Register("ebuff", Descriptor{
		Display: "e-Buff",
		Aliases: []string{"e-buff"},
		Rank:    1,
		Doc:     "aggressive green-energy buffering with no aging management (the paper's baseline)",
		Build:   func(PolicySpec) (Policy, error) { return &eBuff{}, nil },
	})
}

// Name returns the Table 4 scheme name.
func (*eBuff) Name() string { return "e-Buff" }

// PlaceVM picks the least-loaded node with capacity.
func (*eBuff) PlaceVM(ctx *Context, v *vm.VM) (*node.Node, error) {
	if best := leastReserved(ctx.Nodes, v); best != nil {
		return best, nil
	}
	return nil, ErrNoCapacity
}

// Control restores any external frequency caps to full speed — e-Buff
// always runs servers flat out, spending battery as needed. When the
// engine's shard summary shows no server below its top frequency the whole
// scan is a no-op and is skipped, making the common-case control cost
// independent of fleet size.
func (*eBuff) Control(ctx *Context) error {
	if ctx.Summary != nil && ctx.Summary.Valid && ctx.Summary.Capped == 0 {
		return nil
	}
	for _, n := range ctx.Nodes {
		for n.Server().StepUpFrequency() {
		}
	}
	return nil
}
