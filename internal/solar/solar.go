// Package solar models the photovoltaic supply feeding the BAAT prototype
// (DSN'15 §V-A: one solar line tapped from a roof-top PV panel).
//
// A day's generation is a diurnal bell curve scaled to the paper's measured
// daily energy budgets — Sunny 8 kWh, Cloudy 6 kWh, Rainy 3 kWh (§VI-A) —
// with weather-dependent cloud transients layered on top. Longer horizons
// draw day types from a Location's sunshine fraction, the knob Figs 14 and
// 17 sweep.
package solar

import (
	"fmt"
	"math"
	"math/rand/v2"
	"time"

	"github.com/green-dc/baat/internal/units"
)

// Weather classifies a day's solar potential.
type Weather int

// The three weather conditions of §VI-A.
const (
	Sunny Weather = iota + 1
	Cloudy
	Rainy
)

// String returns the weather name.
func (w Weather) String() string {
	switch w {
	case Sunny:
		return "sunny"
	case Cloudy:
		return "cloudy"
	case Rainy:
		return "rainy"
	default:
		return fmt.Sprintf("Weather(%d)", int(w))
	}
}

// Weathers lists all conditions.
func Weathers() []Weather { return []Weather{Sunny, Cloudy, Rainy} }

// DailyBudget returns the paper's measured total generation for a weather
// condition at prototype scale (§VI-A).
func DailyBudget(w Weather) units.WattHour {
	switch w {
	case Sunny:
		return 8000
	case Cloudy:
		return 6000
	case Rainy:
		return 3000
	default:
		return 0
	}
}

// Config shapes a generated day.
type Config struct {
	// Sunrise and Sunset bound generation, expressed as offsets from
	// midnight. Defaults: 06:30 and 19:30.
	Sunrise time.Duration
	Sunset  time.Duration

	// Scale multiplies the daily budget, letting experiments grow the PV
	// array alongside the server fleet (Fig 15/17 sweeps).
	Scale float64

	// TransientDepth is the maximum fractional dip a passing cloud causes
	// (applied stochastically on cloudy/rainy days).
	TransientDepth float64

	// Slots is the number of equal intervals the day is divided into for
	// cloud-pattern sampling. Defaults to 96 (15-minute slots).
	Slots int
}

// DefaultConfig returns the prototype-scale defaults.
func DefaultConfig() Config {
	return Config{
		Sunrise:        6*time.Hour + 30*time.Minute,
		Sunset:         19*time.Hour + 30*time.Minute,
		Scale:          1,
		TransientDepth: 0.7,
		Slots:          96,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Sunrise < 0 || c.Sunset > 24*time.Hour || c.Sunset <= c.Sunrise {
		return fmt.Errorf("solar: need 0 <= sunrise < sunset <= 24h (got %v, %v)", c.Sunrise, c.Sunset)
	}
	if c.Scale <= 0 {
		return fmt.Errorf("solar: scale must be positive, got %v", c.Scale)
	}
	if c.TransientDepth < 0 || c.TransientDepth >= 1 {
		return fmt.Errorf("solar: transient depth must be in [0, 1), got %v", c.TransientDepth)
	}
	if c.Slots < 4 {
		return fmt.Errorf("solar: need at least 4 slots, got %d", c.Slots)
	}
	return nil
}

// Day is one generated day of solar supply. Construct with NewDay.
type Day struct {
	weather Weather
	cfg     Config
	peak    units.Watt
	pattern []float64 // per-slot multipliers, energy-normalized
	derates []derateWindow
}

// derateWindow scales generation within a time-of-day window (an inverter
// trip, panel shading, or an injected PV outage).
type derateWindow struct {
	start, end time.Duration
	factor     float64
}

// NewDay generates a day of the given weather. The rng drives the cloud
// pattern; passing the same seed reproduces the same trace, which is how
// the evaluation matches "the most similar solar generation scenarios"
// across policy runs (§VI-B) — all four policies replay identical days.
func NewDay(w Weather, cfg Config, rng *rand.Rand) (*Day, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if w != Sunny && w != Cloudy && w != Rainy {
		return nil, fmt.Errorf("solar: unknown weather %v", w)
	}
	if rng == nil {
		return nil, fmt.Errorf("solar: rng must not be nil")
	}
	d := &Day{weather: w, cfg: cfg}

	// Cloud pattern: per-slot multiplicative dips whose frequency and
	// depth grow from sunny to rainy. Patterns are smoothed with a short
	// moving window so transients last a few slots, like real cloud cover.
	var dipProb, depthScale float64
	switch w {
	case Sunny:
		dipProb, depthScale = 0.05, 0.3
	case Cloudy:
		dipProb, depthScale = 0.45, 0.8
	case Rainy:
		dipProb, depthScale = 0.75, 1.0
	}
	raw := make([]float64, cfg.Slots)
	for i := range raw {
		raw[i] = 1
		if rng.Float64() < dipProb {
			raw[i] = 1 - cfg.TransientDepth*depthScale*rng.Float64()
		}
	}
	d.pattern = make([]float64, cfg.Slots)
	for i := range d.pattern {
		sum, n := 0.0, 0
		for j := i - 1; j <= i+1; j++ {
			if j >= 0 && j < cfg.Slots {
				sum += raw[j]
				n++
			}
		}
		d.pattern[i] = sum / float64(n)
	}

	// Normalize: the bell × pattern must integrate to the weather budget.
	daylight := cfg.Sunset - cfg.Sunrise
	budget := float64(DailyBudget(w)) * cfg.Scale
	// Integrate bell × pattern numerically over the slots.
	integral := 0.0 // in multiplier·hours against peak
	slotH := (24 * time.Hour).Hours() / float64(cfg.Slots)
	for i := 0; i < cfg.Slots; i++ {
		mid := time.Duration((float64(i) + 0.5) * float64(24*time.Hour) / float64(cfg.Slots))
		integral += d.bell(mid, daylight) * d.pattern[i] * slotH
	}
	if integral <= 0 {
		return nil, fmt.Errorf("solar: degenerate day (no daylight overlap)")
	}
	d.peak = units.Watt(budget / integral)
	return d, nil
}

// bell is the clear-sky diurnal shape: sin² between sunrise and sunset,
// normalized to 1 at solar noon.
func (d *Day) bell(tod time.Duration, daylight time.Duration) float64 {
	if tod < d.cfg.Sunrise || tod > d.cfg.Sunset {
		return 0
	}
	x := float64(tod-d.cfg.Sunrise) / float64(daylight)
	s := math.Sin(math.Pi * x)
	return s * s
}

// Weather returns the day's weather class.
func (d *Day) Weather() Weather { return d.weather }

// PowerAt returns generation at the given time of day (offset from
// midnight, clamped into [0, 24h)).
func (d *Day) PowerAt(tod time.Duration) units.Watt {
	for tod < 0 {
		tod += 24 * time.Hour
	}
	tod %= 24 * time.Hour
	slot := int(float64(tod) / float64(24*time.Hour) * float64(d.cfg.Slots))
	if slot >= d.cfg.Slots {
		slot = d.cfg.Slots - 1
	}
	p := d.bell(tod, d.cfg.Sunset-d.cfg.Sunrise) * d.pattern[slot] * float64(d.peak)
	for _, w := range d.derates {
		if tod >= w.start && tod < w.end {
			p *= w.factor
		}
	}
	if p < 0 {
		p = 0
	}
	return units.Watt(p)
}

// Derate scales generation by factor within the time-of-day window
// [start, end) — a grid-side outage the diurnal model knows nothing about
// (the fault injector's scheduled PV dropouts land here). Overlapping
// windows compose multiplicatively. Energy and PowerAt both reflect the
// derating; the day's budget normalization is not recomputed, so a derated
// day genuinely delivers less energy.
func (d *Day) Derate(start, end time.Duration, factor float64) error {
	if start < 0 || end > 24*time.Hour || end <= start {
		return fmt.Errorf("solar: derate window must satisfy 0 <= start < end <= 24h (got %v, %v)", start, end)
	}
	if factor < 0 || factor > 1 {
		return fmt.Errorf("solar: derate factor must be in [0, 1], got %v", factor)
	}
	d.derates = append(d.derates, derateWindow{start: start, end: end, factor: factor})
	return nil
}

// Energy numerically integrates the day's generation with the given step.
func (d *Day) Energy(step time.Duration) units.WattHour {
	if step <= 0 {
		step = time.Minute
	}
	var total units.WattHour
	for t := time.Duration(0); t < 24*time.Hour; t += step {
		total += units.EnergyOver(d.PowerAt(t), step)
	}
	return total
}

// Peak returns the normalization peak power for the day.
func (d *Day) Peak() units.Watt { return d.peak }

// DerateState is one serialized derate window.
type DerateState struct {
	Start  time.Duration `json:"start"`
	End    time.Duration `json:"end"`
	Factor float64       `json:"factor"`
}

// DayState is the serializable state of a generated day: the drawn cloud
// pattern, its normalization, and any derate windows layered on top. The
// shaping Config is construction-time input, not state.
type DayState struct {
	Weather Weather       `json:"weather"`
	Peak    units.Watt    `json:"peak"`
	Pattern []float64     `json:"pattern"`
	Derates []DerateState `json:"derates,omitempty"`
}

// Snapshot captures the day's state.
func (d *Day) Snapshot() DayState {
	st := DayState{
		Weather: d.weather,
		Peak:    d.peak,
		Pattern: append([]float64(nil), d.pattern...),
	}
	for _, w := range d.derates {
		st.Derates = append(st.Derates, DerateState{Start: w.start, End: w.end, Factor: w.factor})
	}
	return st
}

// Restore overwrites the day's state from a snapshot taken from a day
// generated with the same Config. Invalid state is rejected wholesale.
func (d *Day) Restore(st DayState) error {
	if st.Weather != Sunny && st.Weather != Cloudy && st.Weather != Rainy {
		return fmt.Errorf("solar: restore: unknown weather %v", st.Weather)
	}
	if math.IsNaN(float64(st.Peak)) || st.Peak < 0 {
		return fmt.Errorf("solar: restore: peak must be finite and non-negative, got %v", st.Peak)
	}
	if len(st.Pattern) != d.cfg.Slots {
		return fmt.Errorf("solar: restore: pattern has %d slots, config has %d", len(st.Pattern), d.cfg.Slots)
	}
	for i, p := range st.Pattern {
		if math.IsNaN(p) || p < 0 || p > 1 {
			return fmt.Errorf("solar: restore: pattern[%d] must be in [0, 1], got %v", i, p)
		}
	}
	derates := make([]derateWindow, 0, len(st.Derates))
	for i, w := range st.Derates {
		if w.Start < 0 || w.End > 24*time.Hour || w.End <= w.Start {
			return fmt.Errorf("solar: restore: derate[%d] window invalid (%v, %v)", i, w.Start, w.End)
		}
		if math.IsNaN(w.Factor) || w.Factor < 0 || w.Factor > 1 {
			return fmt.Errorf("solar: restore: derate[%d] factor must be in [0, 1], got %v", i, w.Factor)
		}
		derates = append(derates, derateWindow{start: w.Start, end: w.End, factor: w.Factor})
	}
	d.weather = st.Weather
	d.peak = st.Peak
	d.pattern = append(d.pattern[:0], st.Pattern...)
	d.derates = derates
	return nil
}

// Location models a deployment site by its sunshine fraction: the fraction
// of daytime with recorded sunshine (§VI-C, [41]). It determines the mix of
// sunny/cloudy/rainy days an experiment draws.
type Location struct {
	// SunshineFraction is in [0, 1].
	SunshineFraction float64
}

// Validate checks the location.
func (l Location) Validate() error {
	if l.SunshineFraction < 0 || l.SunshineFraction > 1 {
		return fmt.Errorf("solar: sunshine fraction must be in [0, 1], got %v", l.SunshineFraction)
	}
	return nil
}

// DrawWeather samples one day's weather. Sunny days appear with the
// sunshine-fraction probability; the remainder splits between cloudy and
// rainy with cloudier sites also being rainier.
func (l Location) DrawWeather(rng *rand.Rand) Weather {
	f := units.Clamp01(l.SunshineFraction)
	r := rng.Float64()
	if r < f {
		return Sunny
	}
	// Remaining probability: 2/3 cloudy, 1/3 rainy.
	if r < f+(1-f)*2/3 {
		return Cloudy
	}
	return Rainy
}

// ExpectedDailyBudget returns the mean daily generation for the location at
// prototype scale, useful for capacity planning (Fig 17).
func (l Location) ExpectedDailyBudget() units.WattHour {
	f := units.Clamp01(l.SunshineFraction)
	rest := 1 - f
	return units.WattHour(f*float64(DailyBudget(Sunny)) +
		rest*2/3*float64(DailyBudget(Cloudy)) +
		rest/3*float64(DailyBudget(Rainy)))
}
