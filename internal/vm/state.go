package vm

import (
	"fmt"
	"math"
	"time"

	"github.com/green-dc/baat/internal/workload"
)

// State is the serializable state of a VM: its identity, the hosted
// profile (jobs are drawn at runtime, so the profile is per-VM state, not
// configuration), and the full lifecycle position.
type State struct {
	ID         string           `json:"id"`
	Profile    workload.Profile `json:"profile"`
	Lifecycle  Lifecycle        `json:"lifecycle"`
	Progress   float64          `json:"progress"`
	Elapsed    time.Duration    `json:"elapsed"`
	Migrating  time.Duration    `json:"migrating"`
	Migrations int              `json:"migrations"`
	PausedFor  time.Duration    `json:"paused_for"`
}

// Snapshot captures the VM's state.
func (v *VM) Snapshot() State {
	return State{
		ID:         v.id,
		Profile:    v.profile,
		Lifecycle:  v.state,
		Progress:   v.progress,
		Elapsed:    v.elapsed,
		Migrating:  v.migrating,
		Migrations: v.migrations,
		PausedFor:  v.pausedFor,
	}
}

// FromState reconstructs a VM from a snapshot, validating every field so
// a corrupt checkpoint is rejected rather than scheduled.
func FromState(st State) (*VM, error) {
	v, err := New(st.ID, st.Profile)
	if err != nil {
		return nil, err
	}
	if err := v.Restore(st); err != nil {
		return nil, err
	}
	return v, nil
}

// Restore overwrites the VM's state from a snapshot. The snapshot must
// describe the same VM (matching ID) and pass validation.
func (v *VM) Restore(st State) error {
	if st.ID != v.id {
		return fmt.Errorf("vm %s: restore: snapshot is for %q", v.id, st.ID)
	}
	if err := st.Profile.Validate(); err != nil {
		return fmt.Errorf("vm %s: restore: %w", v.id, err)
	}
	switch st.Lifecycle {
	case Running, Paused, Migrating, Completed:
	default:
		return fmt.Errorf("vm %s: restore: unknown lifecycle %v", v.id, st.Lifecycle)
	}
	if math.IsNaN(st.Progress) || st.Progress < 0 ||
		(!st.Profile.Service && st.Progress > st.Profile.WorkUnits) {
		return fmt.Errorf("vm %s: restore: progress %v out of range", v.id, st.Progress)
	}
	if st.Elapsed < 0 || st.PausedFor < 0 || st.Migrating < 0 {
		return fmt.Errorf("vm %s: restore: negative durations", v.id)
	}
	if st.Migrations < 0 {
		return fmt.Errorf("vm %s: restore: negative migration count %d", v.id, st.Migrations)
	}
	if (st.Lifecycle == Migrating) != (st.Migrating > 0) {
		return fmt.Errorf("vm %s: restore: migration pause %v inconsistent with lifecycle %v",
			v.id, st.Migrating, st.Lifecycle)
	}
	v.profile = st.Profile
	v.state = st.Lifecycle
	v.progress = st.Progress
	v.elapsed = st.Elapsed
	v.migrating = st.Migrating
	v.migrations = st.Migrations
	v.pausedFor = st.PausedFor
	return nil
}
