// Command baatsim runs the simulated BAAT prototype under one of the four
// Table 4 power-management policies and reports per-day and end-of-run
// statistics.
//
// Examples:
//
//	baatsim -policy baat -days 10 -sunshine 0.5
//	baatsim -policy ebuff -weather cloudy -days 3 -csv trace.csv
//	baatsim -policy baat -until-eol -accel 10 -sunshine 0.6
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	baat "github.com/green-dc/baat"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "baatsim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		policyName = flag.String("policy", "baat", "policy: ebuff | baat-s | baat-h | baat")
		days       = flag.Int("days", 7, "number of days to simulate")
		weather    = flag.String("weather", "mix", "weather: sunny | cloudy | rainy | mix")
		sunshine   = flag.Float64("sunshine", 0.5, "sunshine fraction for -weather mix")
		seed       = flag.Int64("seed", 1, "random seed")
		nodes      = flag.Int("nodes", 6, "number of battery nodes")
		workers    = flag.Int("workers", 1, "node-stepping workers (1 = serial, -1 = all CPUs; never changes results)")
		accel      = flag.Float64("accel", 1, "battery aging acceleration factor")
		untilEOL   = flag.Bool("until-eol", false, "run until the first battery reaches end-of-life")
		maxDays    = flag.Int("max-days", 365, "day cap for -until-eol")
		prototype  = flag.Bool("prototype-services", true, "deploy the six paper workloads as persistent services")
		jobsPerDay = flag.Int("jobs", 2, "batch jobs submitted per day")
		solarScale = flag.Float64("solar-scale", 1.5, "PV array scale relative to the prototype")
		csvPath    = flag.String("csv", "", "write per-day stats to this CSV file")
		planned    = flag.Float64("planned-months", 0, "enable planned aging with this expected service life in months (0 = off)")
		faultsName = flag.String("faults", "none", "fault-injection profile: "+strings.Join(baat.FaultProfileNames(), " | "))
		faultsSeed = flag.Int64("faults-seed", 0, "fault injector seed (0 derives from -seed via the named fault substream)")
		ckEvery    = flag.Int("checkpoint-every", 0, "write a checkpoint every N simulated days (requires -checkpoint; fixed-days runs only)")
		ckPath     = flag.String("checkpoint", "", "checkpoint file written by -checkpoint-every")
		resumePath = flag.String("resume", "", "resume a fixed-days run from this checkpoint; -days stays the total horizon")
		telAddr    = flag.String("telemetry-addr", "", "serve /metrics, /events, and /debug/pprof on this address (e.g. :8080; empty = off)")
		telHold    = flag.Duration("telemetry-hold", 0, "keep the telemetry endpoint alive this long after the run (so scrapers catch the final state)")
		battModel  = flag.String("battery-model", "leadacid", "battery model tier: leadacid | linear | lfp")
		battMix    = flag.String("battery-mix", "", "mixed fleet as model=fraction pairs, e.g. 'leadacid=0.5,lfp=0.5' (fractions sum to 1; overrides -battery-model)")
	)
	flag.Parse()

	kind, err := parsePolicy(*policyName)
	if err != nil {
		return err
	}
	pcfg := baat.DefaultPolicyConfig()
	if *planned > 0 {
		pcfg.Planned = baat.PlannedAgingConfig{
			Enabled:      true,
			ServiceLife:  monthsToDuration(*planned),
			CyclesPerDay: 1,
		}
	}
	policy, err := baat.NewPolicy(kind, pcfg)
	if err != nil {
		return err
	}

	var rec *baat.Recorder
	if *telAddr != "" {
		rec = baat.NewRecorder()
		srv, err := baat.ServeTelemetry(rec, *telAddr)
		if err != nil {
			return err
		}
		defer func() { _ = srv.Close() }()
		fmt.Printf("telemetry: http://%s/metrics (events at /events, profiles at /debug/pprof/)\n", srv.Addr())
	}

	scfg := baat.DefaultSimConfig()
	scfg.Telemetry = rec
	scfg.Seed = *seed
	scfg.Nodes = *nodes
	scfg.Workers = *workers
	scfg.JobsPerDay = *jobsPerDay
	scfg.Solar.Scale = *solarScale
	scfg.Node.AgingConfig.AccelFactor = *accel
	switch {
	case *battMix != "":
		shares, err := parseBatteryMix(*battMix)
		if err != nil {
			return err
		}
		scfg.BatteryFleet = shares
	default:
		bk, err := baat.ParseBatteryKind(*battModel)
		if err != nil {
			return err
		}
		// The default tier reproduces DefaultSimConfig exactly (identical
		// config hash), so checkpoints written before the flag existed
		// still resume.
		ncfg, err := scfg.Node.WithBatteryModel(bk)
		if err != nil {
			return err
		}
		scfg.Node = ncfg
	}
	if *prototype {
		scfg.Services = baat.PrototypeServices()
	}
	fcfg, err := baat.FaultProfile(*faultsName, *faultsSeed)
	if err != nil {
		return err
	}
	scfg.Faults = fcfg
	s, err := baat.NewSimulator(scfg, policy)
	if err != nil {
		return err
	}
	if *ckEvery > 0 && *ckPath == "" {
		return fmt.Errorf("-checkpoint-every requires -checkpoint")
	}
	resumedDays := 0
	if *resumePath != "" {
		if err := resumeFromFile(s, *resumePath); err != nil {
			return err
		}
		resumedDays = s.Day()
		fmt.Printf("resumed from %s after day %d\n", *resumePath, resumedDays)
	}

	var res *baat.SimResult
	if *untilEOL {
		res, err = s.RunUntilEndOfLife(baat.Location{SunshineFraction: *sunshine}, *maxDays)
	} else {
		seq, serr := weatherSeq(*weather, *sunshine, *days, *seed)
		if serr != nil {
			return serr
		}
		// A resumed run replays only the weather suffix the checkpoint has
		// not consumed; the -days horizon counts from day one.
		if done := s.Day(); done > 0 {
			if done >= len(seq) {
				return fmt.Errorf("checkpoint already covers day %d of a %d-day horizon", done, *days)
			}
			seq = seq[done:]
		}
		if *ckEvery > 0 {
			res, err = s.RunWithCheckpoints(seq, *ckEvery, func(day int, data []byte) error {
				if werr := writeFileAtomic(*ckPath, data); werr != nil {
					return werr
				}
				fmt.Printf("checkpoint after day %d written to %s\n", day, *ckPath)
				return nil
			})
		} else {
			res, err = s.Run(seq)
		}
	}
	if err != nil {
		return err
	}
	if resumedDays > 0 {
		// The Result covers only the days this process executed; the
		// simulator's serialized history covers the checkpointed prefix
		// too, so the report spans the whole horizon.
		res.Days = s.History()
		res.Throughput = 0
		for _, d := range res.Days {
			res.Throughput += d.Throughput
		}
	}

	printResult(res, *accel)
	printPredictions(s, *accel)
	if *csvPath != "" {
		if err := writeCSV(*csvPath, res); err != nil {
			return err
		}
		fmt.Printf("per-day stats written to %s\n", *csvPath)
	}
	if rec != nil && *telHold > 0 {
		fmt.Printf("holding telemetry endpoint for %v\n", *telHold)
		time.Sleep(*telHold)
	}
	return nil
}

func parsePolicy(name string) (baat.PolicyKind, error) {
	switch strings.ToLower(name) {
	case "ebuff", "e-buff":
		return baat.EBuff, nil
	case "baat-s", "baats":
		return baat.BAATSlowdown, nil
	case "baat-h", "baath":
		return baat.BAATHiding, nil
	case "baat":
		return baat.BAATFull, nil
	default:
		return 0, fmt.Errorf("unknown policy %q (want ebuff, baat-s, baat-h, or baat)", name)
	}
}

// parseBatteryMix parses the -battery-mix syntax: comma-separated
// model=fraction pairs, e.g. "leadacid=0.5,lfp=0.5". Fraction validation
// (positive, summing to 1) is left to the simulator's config check.
func parseBatteryMix(s string) ([]baat.BatteryShare, error) {
	var shares []baat.BatteryShare
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, frac, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("battery mix entry %q is not model=fraction", part)
		}
		kind, err := baat.ParseBatteryKind(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		f, err := strconv.ParseFloat(strings.TrimSpace(frac), 64)
		if err != nil {
			return nil, fmt.Errorf("battery mix entry %q: bad fraction: %v", part, err)
		}
		shares = append(shares, baat.BatteryShare{Model: kind, Fraction: f})
	}
	if len(shares) == 0 {
		return nil, fmt.Errorf("battery mix %q contains no model=fraction pairs", s)
	}
	return shares, nil
}

func monthsToDuration(months float64) time.Duration {
	return time.Duration(months * 30 * 24 * float64(time.Hour))
}

func weatherSeq(name string, frac float64, days int, seed int64) ([]baat.Weather, error) {
	if days <= 0 {
		return nil, fmt.Errorf("days must be positive, got %d", days)
	}
	fixed := map[string]baat.Weather{
		"sunny":  baat.Sunny,
		"cloudy": baat.Cloudy,
		"rainy":  baat.Rainy,
	}
	if w, ok := fixed[strings.ToLower(name)]; ok {
		seq := make([]baat.Weather, days)
		for i := range seq {
			seq[i] = w
		}
		return seq, nil
	}
	if strings.ToLower(name) != "mix" {
		return nil, fmt.Errorf("unknown weather %q (want sunny, cloudy, rainy, or mix)", name)
	}
	loc := baat.Location{SunshineFraction: frac}
	if err := loc.Validate(); err != nil {
		return nil, err
	}
	stream := baat.NewStream(seed, baat.StreamCLIWeather)
	seq := make([]baat.Weather, days)
	for i := range seq {
		seq[i] = loc.DrawWeather(stream.Rand)
	}
	return seq, nil
}

// resumeFromFile restores a checkpoint written by -checkpoint-every.
func resumeFromFile(s *baat.Simulator, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer func() { _ = f.Close() }()
	return s.ResumeFrom(f)
}

// writeFileAtomic writes data via a temp file + rename so an interrupted
// run never leaves a truncated checkpoint behind.
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		_ = tmp.Close()
		_ = os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		_ = os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}

func printResult(res *baat.SimResult, accel float64) {
	fmt.Printf("policy: %s\n\n", res.Policy)
	fmt.Printf("%-5s %-7s %12s %12s %12s %12s\n",
		"day", "weather", "throughput", "downtime", "low-SoC", "solar kWh")
	for _, d := range res.Days {
		fmt.Printf("%-5d %-7s %12.2f %12s %12s %12.2f\n",
			d.Day, d.Weather, d.Throughput, d.Downtime, d.LowSoCTime, float64(d.SolarEnergy)/1000)
	}
	fmt.Println()
	fmt.Printf("total throughput: %.2f work units\n", res.Throughput)
	if res.FleetLifetime > 0 {
		real := time.Duration(float64(res.FleetLifetime) * accel)
		fmt.Printf("fleet lifetime (first battery at end-of-life): %.1f days (≈%.1f real days at accel %.0fx)\n",
			res.FleetLifetime.Hours()/24, real.Hours()/24, accel)
	}
	fmt.Println("\nnode summary:")
	fmt.Printf("%-8s %8s %8s %8s %8s %8s %8s %10s\n",
		"node", "health", "SoC", "NAT", "CF", "PC", "DDT", "downtime")
	for _, n := range res.Nodes {
		fmt.Printf("%-8s %8.3f %8.2f %8.4f %8.2f %8.3f %8.3f %10s\n",
			n.ID, n.Health, n.SoC, n.Metrics.NAT, n.Metrics.CF, n.Metrics.PC, n.Metrics.DDT, n.Downtime)
	}
	if worst, ok := res.WorstNode(); ok {
		fmt.Printf("\nworst node (most Ah throughput): %s (NAT %.4f, health %.3f)\n",
			worst.ID, worst.Metrics.NAT, worst.Health)
	}
}

func printPredictions(s *baat.Simulator, accel float64) {
	fmt.Println("\nprojected battery end-of-life (at the observed damage rate):")
	for _, p := range baat.PredictLifetimes(s.Nodes()) {
		if p.TimeToEndOfLife > 100*365*24*time.Hour {
			fmt.Printf("  %-8s health %.3f  no measurable wear yet\n", p.NodeID, p.Health)
			continue
		}
		real := time.Duration(float64(p.TimeToEndOfLife) * accel)
		fmt.Printf("  %-8s health %.3f  ≈%.0f days to end-of-life\n",
			p.NodeID, p.Health, real.Hours()/24)
	}
}

func writeCSV(path string, res *baat.SimResult) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() { _ = f.Close() }()
	w := csv.NewWriter(f)
	defer w.Flush()
	if err := w.Write([]string{"day", "weather", "throughput", "downtime_s", "low_soc_s", "solar_wh"}); err != nil {
		return err
	}
	for _, d := range res.Days {
		rec := []string{
			strconv.Itoa(d.Day),
			d.Weather.String(),
			strconv.FormatFloat(d.Throughput, 'f', 4, 64),
			strconv.FormatFloat(d.Downtime.Seconds(), 'f', 0, 64),
			strconv.FormatFloat(d.LowSoCTime.Seconds(), 'f', 0, 64),
			strconv.FormatFloat(float64(d.SolarEnergy), 'f', 1, 64),
		}
		if err := w.Write(rec); err != nil {
			return err
		}
	}
	return w.Error()
}
