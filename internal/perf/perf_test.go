package perf

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func baseReport() Report {
	return Report{Entries: []Entry{
		{Name: "pinned_path", NsPerOp: 1000, AllocsPerOp: 3, BytesPerOp: 128, Pinned: true},
		{Name: "sweep", NsPerOp: 50000, AllocsPerOp: 10000, BytesPerOp: 1 << 20},
	}}
}

func TestCompareClean(t *testing.T) {
	if regs := Compare(baseReport(), baseReport(), DefaultOptions()); len(regs) != 0 {
		t.Fatalf("identical reports regressed: %v", regs)
	}
}

func TestCompareTimeSlack(t *testing.T) {
	cur := baseReport()
	cur.Entries[0].NsPerOp = 1140 // +14%: inside the 15% slack
	if regs := Compare(baseReport(), cur, DefaultOptions()); len(regs) != 0 {
		t.Fatalf("+14%% time flagged: %v", regs)
	}
	cur.Entries[0].NsPerOp = 1200 // +20%: out
	regs := Compare(baseReport(), cur, DefaultOptions())
	if len(regs) != 1 || !strings.Contains(regs[0], "time/op") {
		t.Fatalf("+20%% time not flagged correctly: %v", regs)
	}
}

func TestComparePinnedAllocsStrict(t *testing.T) {
	cur := baseReport()
	cur.Entries[0].AllocsPerOp = 4 // one alloc over on a pinned entry
	regs := Compare(baseReport(), cur, DefaultOptions())
	if len(regs) != 1 || !strings.Contains(regs[0], "allocs/op") {
		t.Fatalf("pinned alloc growth not flagged: %v", regs)
	}
}

func TestCompareUnpinnedAllocSlack(t *testing.T) {
	cur := baseReport()
	cur.Entries[1].AllocsPerOp = 10050 // +0.5%: inside the 1% slack
	if regs := Compare(baseReport(), cur, DefaultOptions()); len(regs) != 0 {
		t.Fatalf("+0.5%% unpinned allocs flagged: %v", regs)
	}
	cur.Entries[1].AllocsPerOp = 10200 // +2%: out
	if regs := Compare(baseReport(), cur, DefaultOptions()); len(regs) != 1 {
		t.Fatalf("+2%% unpinned allocs not flagged: %v", regs)
	}
}

func TestCompareMissingEntry(t *testing.T) {
	cur := baseReport()
	cur.Entries = cur.Entries[:1]
	regs := Compare(baseReport(), cur, DefaultOptions())
	if len(regs) != 1 || !strings.Contains(regs[0], "missing") {
		t.Fatalf("dropped benchmark not flagged: %v", regs)
	}
	// New entries in the current run are not regressions.
	grown := baseReport()
	grown.Entries = append(grown.Entries, Entry{Name: "new_bench", NsPerOp: 1})
	if regs := Compare(baseReport(), grown, DefaultOptions()); len(regs) != 0 {
		t.Fatalf("new benchmark flagged: %v", regs)
	}
}

func TestReportRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	data, err := baseReport().WriteJSON()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := ReadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Entries) != 2 {
		t.Fatalf("round trip lost entries: %+v", got)
	}
	e, ok := got.Lookup("pinned_path")
	if !ok || !e.Pinned || e.AllocsPerOp != 3 {
		t.Fatalf("round trip mangled entry: %+v", e)
	}
}

// TestBaselineParses keeps the committed baseline loadable: a hand-edited
// or merge-damaged BENCH_baseline.json should fail here, not in check.sh.
func TestBaselineParses(t *testing.T) {
	r, err := ReadReport("../../BENCH_baseline.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Entries) == 0 {
		t.Fatal("committed baseline has no entries")
	}
	pinned := 0
	for _, e := range r.Entries {
		if e.Name == "" {
			t.Fatalf("baseline entry with empty name: %+v", e)
		}
		if e.Pinned {
			pinned++
		}
	}
	if pinned == 0 {
		t.Fatal("baseline pins no hot-path entries; the alloc gate is inert")
	}
	// The warehouse-scale stepping entry is the scaling axis's anchor: it
	// must stay in the baseline, gated, with its throughput figure.
	e, ok := r.Lookup("fleet_step/nodes=65536/workers=1")
	if !ok {
		t.Fatal("baseline lost the warehouse-scale fleet_step entry")
	}
	if e.NodeStepsPerSec <= 0 {
		t.Fatalf("warehouse entry carries no node-steps/s figure: %+v", e)
	}
	// Every battery model tier must stay gated: the small fleet-stepping
	// entry pinned per tier, the warehouse entry for the tier built for
	// that scale, and the single-step microbenchmark per tier.
	for _, name := range []string{
		"fleet_step/nodes=64/workers=1/model=linear",
		"fleet_step/nodes=64/workers=1/model=lfp",
		"fleet_step/nodes=65536/workers=1/model=linear",
		"battery_step/model=linear",
		"battery_step/model=lfp",
	} {
		e, ok := r.Lookup(name)
		if !ok {
			t.Errorf("baseline lost the per-tier entry %s", name)
			continue
		}
		if !e.Pinned {
			t.Errorf("per-tier entry %s is not pinned; the tier's alloc gate is inert", name)
		}
	}
}

func TestDeltasReportEveryBaselineEntry(t *testing.T) {
	cur := baseReport()
	cur.Entries[0].NsPerOp = 1300  // +30%: trips the time gate
	cur.Entries[0].AllocsPerOp = 4 // pinned: trips the alloc gate
	cur.Entries = cur.Entries[:1]  // "sweep" dropped: missing
	ds := Deltas(baseReport(), cur, DefaultOptions())
	if len(ds) != 2 {
		t.Fatalf("got %d deltas, want one per baseline entry (2)", len(ds))
	}
	if d := ds[0]; !d.TimeRegressed || !d.AllocRegressed || d.Missing {
		t.Fatalf("pinned_path delta gates wrong: %+v", d)
	}
	if got := ds[0].TimePct(); got < 29.9 || got > 30.1 {
		t.Fatalf("TimePct() = %v, want ~+30", got)
	}
	if d := ds[1]; !d.Missing || d.TimeRegressed || d.AllocRegressed {
		t.Fatalf("sweep delta should be missing-only: %+v", d)
	}
}

func TestFormatDeltaTable(t *testing.T) {
	cur := baseReport()
	cur.Entries[0].NsPerOp = 1300
	cur.Entries[0].AllocsPerOp = 4
	cur.Entries = cur.Entries[:1]
	table := FormatDeltaTable(Deltas(baseReport(), cur, DefaultOptions()))
	lines := strings.Split(strings.TrimRight(table, "\n"), "\n")
	if len(lines) != 3 { // header + one row per baseline entry
		t.Fatalf("got %d lines, want 3:\n%s", len(lines), table)
	}
	for _, want := range []string{"entry", "Δ%", "Δallocs", "gate"} {
		if !strings.Contains(lines[0], want) {
			t.Fatalf("header lacks %q:\n%s", want, table)
		}
	}
	for _, want := range []string{"pinned_path", "TIME+ALLOCS", "+30.0%", "+1"} {
		if !strings.Contains(lines[1], want) {
			t.Fatalf("pinned_path row lacks %q:\n%s", want, table)
		}
	}
	for _, want := range []string{"sweep", "MISSING"} {
		if !strings.Contains(lines[2], want) {
			t.Fatalf("sweep row lacks %q:\n%s", want, table)
		}
	}
}
