package telemetry

import (
	"sync"
	"testing"
	"time"
)

func TestTracerWraparound(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		tr.Record(Event{At: time.Duration(i), Type: EventMigration})
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want 4", len(evs))
	}
	for i, ev := range evs {
		wantSeq := uint64(6 + i)
		if ev.Seq != wantSeq {
			t.Errorf("event %d seq = %d, want %d (oldest-first after wrap)", i, ev.Seq, wantSeq)
		}
		if ev.At != time.Duration(6+i) {
			t.Errorf("event %d at = %d, want %d", i, ev.At, 6+i)
		}
	}
	if got := tr.Total(); got != 10 {
		t.Errorf("total = %d, want 10", got)
	}
	if got := tr.Dropped(); got != 6 {
		t.Errorf("dropped = %d, want 6", got)
	}
}

func TestTracerPartialFill(t *testing.T) {
	tr := NewTracer(8)
	tr.Record(Event{Type: EventDVFSCap, Node: "node-1"})
	tr.Record(Event{Type: EventDVFSRestore, Node: "node-1"})
	evs := tr.Events()
	if len(evs) != 2 {
		t.Fatalf("retained %d events, want 2", len(evs))
	}
	if evs[0].Seq != 0 || evs[1].Seq != 1 {
		t.Errorf("sequence numbers = %d,%d, want 0,1", evs[0].Seq, evs[1].Seq)
	}
	if tr.Dropped() != 0 {
		t.Errorf("dropped = %d, want 0", tr.Dropped())
	}
}

func TestTracerDefaultCapacity(t *testing.T) {
	tr := NewTracer(0)
	if cap(tr.buf) != DefaultTraceCapacity {
		t.Errorf("capacity = %d, want %d", cap(tr.buf), DefaultTraceCapacity)
	}
}

func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer(64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				tr.Record(Event{Type: EventReconnect})
				_ = tr.Events()
			}
		}()
	}
	wg.Wait()
	if got := tr.Total(); got != 8*500 {
		t.Errorf("total = %d, want %d", got, 8*500)
	}
	evs := tr.Events()
	if len(evs) != 64 {
		t.Fatalf("retained %d, want 64", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq != evs[i-1].Seq+1 {
			t.Fatalf("events not in sequence order at %d: %d then %d", i, evs[i-1].Seq, evs[i].Seq)
		}
	}
}
