// Package battery models valve-regulated lead-acid (VRLA) battery packs of
// the kind the BAAT prototype instruments: 12 V / 35 Ah sealed units attached
// one-per-server (DSN'15, §V-A).
//
// The model is electrical only. It tracks state of charge, terminal voltage
// (open-circuit voltage minus/plus the IR drop), effective capacity under the
// Peukert effect, coulombic losses while charging, self-discharge, and a
// lumped thermal model driven by I²R heating. Aging is *not* computed here:
// the aging package observes usage and feeds degradation back through
// ApplyDegradation, which is exactly the separation the paper draws between
// the sensor layer (electrical observables) and the BAAT controller (aging
// assessment).
package battery

import (
	"errors"
	"fmt"
	"math"
	"time"

	"github.com/green-dc/baat/internal/telemetry"
	"github.com/green-dc/baat/internal/units"
)

// Spec describes a battery product as the manufacturer rates it. The zero
// value is not usable; start from DefaultSpec.
type Spec struct {
	// Chemistry selects the model tier simulating this product (see Kind).
	// The zero value means the reference lead-acid tier, so specs written
	// before model selection existed keep their meaning — and, because the
	// field is omitted from JSON when empty, their checkpoint config
	// hashes. Any non-default tier changes the marshaled spec and thereby
	// the hash, which is what makes a wrong-model resume fail loudly.
	Chemistry Kind `json:",omitempty"`

	// NominalVoltage is the rated terminal voltage (12 V for the prototype
	// units).
	NominalVoltage units.Volt

	// NominalCapacity is the rated 20-hour capacity (35 Ah for the
	// prototype units).
	NominalCapacity units.AmpereHour

	// PeukertExponent captures capacity shrinkage at high discharge rates.
	// Lead-acid batteries are typically 1.1–1.3.
	PeukertExponent float64

	// InternalResistance is the new-battery internal resistance in ohms.
	InternalResistance float64

	// CoulombicEfficiency is the fraction of charge current that is stored
	// while charging a new battery (gassing wastes the rest).
	CoulombicEfficiency float64

	// SelfDischargeFraction is the fraction of stored charge lost per day
	// at rest.
	SelfDischargeFraction float64

	// CutoffVoltage is the terminal voltage below which the battery is
	// disconnected to protect it (§II-B: under-voltage batteries cannot
	// sustain high-current draw and are cut out).
	CutoffVoltage units.Volt

	// MaxChargeCurrent limits the charger (typically C/4 for VRLA).
	MaxChargeCurrent units.Ampere

	// LifetimeThroughput is the nominal life-long Ah output CAP_nom used as
	// the denominator of normalized Ah throughput (Eq 1): the aggregate
	// charge a battery can cycle before wear-out, which prior work treats
	// as approximately constant.
	LifetimeThroughput units.AmpereHour

	// ThermalCapacity is the lumped heat capacity in J/°C.
	ThermalCapacity float64

	// ThermalResistance is the case-to-ambient thermal resistance in °C/W.
	ThermalResistance float64
}

// DefaultSpec returns the specification of the prototype's battery units:
// 12 V 35 Ah sealed lead-acid (Fig 11). LifetimeThroughput corresponds to
// roughly 200 equivalent full cycles at reference conditions, a conservative
// figure for inexpensive VRLA units cycled daily.
func DefaultSpec() Spec {
	return Spec{
		NominalVoltage:        12,
		NominalCapacity:       35,
		PeukertExponent:       1.15,
		InternalResistance:    0.022,
		CoulombicEfficiency:   0.92,
		SelfDischargeFraction: 0.002,
		CutoffVoltage:         10.5,
		MaxChargeCurrent:      8.75, // C/4
		LifetimeThroughput:    7000, // ≈200 full cycles × 35 Ah
		ThermalCapacity:       9000, // ~12 kg × 750 J/(kg·°C)
		ThermalResistance:     2.0,
	}
}

// Parallel returns the spec of n identical units wired in parallel, as in
// the prototype's two-packs-per-server arrangement (twelve 12 V 35 Ah units
// behind six servers, Fig 11): capacity, current limits, lifetime
// throughput, and thermal mass scale with n while resistance divides by n.
// Values of n below 1 are treated as 1.
func Parallel(s Spec, n int) Spec {
	if n < 1 {
		n = 1
	}
	f := float64(n)
	s.NominalCapacity = units.AmpereHour(float64(s.NominalCapacity) * f)
	s.MaxChargeCurrent = units.Ampere(float64(s.MaxChargeCurrent) * f)
	s.LifetimeThroughput = units.AmpereHour(float64(s.LifetimeThroughput) * f)
	s.ThermalCapacity *= f
	s.InternalResistance /= f
	return s
}

// Validate reports whether the spec is physically meaningful.
func (s Spec) Validate() error {
	switch {
	case !s.Chemistry.Valid():
		return fmt.Errorf("battery: unknown chemistry %q", s.Chemistry)
	case s.NominalVoltage <= 0:
		return errors.New("battery: nominal voltage must be positive")
	case s.NominalCapacity <= 0:
		return errors.New("battery: nominal capacity must be positive")
	case s.PeukertExponent < 1:
		return errors.New("battery: Peukert exponent must be >= 1")
	case s.InternalResistance <= 0:
		return errors.New("battery: internal resistance must be positive")
	case s.CoulombicEfficiency <= 0 || s.CoulombicEfficiency > 1:
		return errors.New("battery: coulombic efficiency must be in (0, 1]")
	case s.SelfDischargeFraction < 0 || s.SelfDischargeFraction >= 1:
		return errors.New("battery: self-discharge fraction must be in [0, 1)")
	case s.CutoffVoltage <= 0 || s.CutoffVoltage >= s.NominalVoltage:
		return errors.New("battery: cutoff voltage must be in (0, nominal)")
	case s.MaxChargeCurrent <= 0:
		return errors.New("battery: max charge current must be positive")
	case s.LifetimeThroughput <= 0:
		return errors.New("battery: lifetime throughput must be positive")
	case s.ThermalCapacity <= 0 || s.ThermalResistance <= 0:
		return errors.New("battery: thermal parameters must be positive")
	}
	return nil
}

// ocvCurve maps state of charge to open-circuit voltage for a nominal 12 V
// lead-acid battery at 25 °C. Points follow published VRLA rest-voltage
// tables. Voltages scale with NominalVoltage/12 for other pack voltages.
var ocvCurve = units.MustInterpolator(
	[]float64{0.00, 0.10, 0.20, 0.30, 0.40, 0.50, 0.60, 0.70, 0.80, 0.90, 1.00},
	[]float64{11.30, 11.58, 11.75, 11.90, 12.06, 12.20, 12.32, 12.42, 12.50, 12.60, 12.73},
)

// Degradation is the cumulative, irreversible wear the aging model has
// assessed for a battery. Fractions are in [0, 1); 0 means a new battery.
type Degradation struct {
	// CapacityFade is the fraction of nominal capacity permanently lost
	// (sulphation, active-mass shedding, stratification).
	CapacityFade float64

	// ResistanceGrowth is the fractional growth of internal resistance
	// (grid corrosion): R = R0 × (1 + ResistanceGrowth).
	ResistanceGrowth float64

	// EfficiencyLoss is the absolute reduction of coulombic efficiency
	// (gassing and water loss).
	EfficiencyLoss float64
}

// Health converts degradation to the paper's health figure: the fraction of
// initial capacity still deliverable. A unit is at end-of-life when Health
// falls below 0.8 (§II-B).
func (d Degradation) Health() float64 {
	return units.Clamp01(1 - d.CapacityFade)
}

// EndOfLifeHealth is the capacity fraction below which a battery is no
// longer suitable for mission-critical backup (§II-B).
const EndOfLifeHealth = 0.8

// Pack is a single battery unit with live electrical state. Pack is not safe
// for concurrent use; in the simulator each node owns its pack, and the
// cluster control plane serializes access.
type Pack struct {
	spec Spec

	// kind is the normalized chemistry; curve and curveRef are the OCV
	// table for that chemistry and the pack voltage it is tabulated at,
	// both fixed at construction.
	kind     Kind
	curve    *units.Interpolator
	curveRef float64

	// Manufacturing variation (§IV-B): multiplier on capacity and
	// resistance fixed at construction.
	capacityScale   float64
	resistanceScale float64

	soc  float64
	temp units.Celsius
	deg  Degradation

	// Cumulative counters feeding the aging metrics.
	ahOut      units.AmpereHour // total discharge throughput
	ahIn       units.AmpereHour // total charge throughput (gross, at terminals)
	whOut      units.WattHour
	whIn       units.WattHour
	operating  time.Duration
	cycleStart float64 // SoC at the start of the current discharge half-cycle
	inCycle    bool
	cycles     float64 // equivalent full cycles (throughput-based)

	// Telemetry handles, captured once at construction so the per-step
	// cost is one nil check plus an atomic add. All are nil (and no-ops)
	// unless WithRecorder was supplied.
	telDischarge *telemetry.Counter
	telCharge    *telemetry.Counter
	telRest      *telemetry.Counter
	telCutoff    *telemetry.Counter

	// thermalTau is ThermalCapacity×ThermalResistance, hoisted at
	// construction. restDt/restFactor and heatDt/heatAlpha memoize the two
	// per-step transcendentals, keyed by the only input that varies (dt);
	// a hit returns the identical float the cold path would compute, so
	// results are bit-for-bit unchanged. The simulator steps every pack
	// with one fixed tick, so these hit on every step after the first.
	thermalTau float64
	restDt     time.Duration
	restFactor float64
	heatDt     time.Duration
	heatAlpha  float64

	// hrDt/hrVal memoize dt.Hours() for the charge-integration steps on
	// the same bit-identical terms as the transcendental caches above.
	hrDt  time.Duration
	hrVal float64

	// ocvSoC/ocvVal memoize the open-circuit voltage keyed by the state of
	// charge — the only varying input: the curve, nominal voltage, and
	// reference scale are fixed at construction, and degradation does not
	// enter the OCV map. One tick reads the OCV several times at the same
	// SoC (power limits, the step itself, the sensor row), so most lookups
	// skip the curve interpolation.
	ocvSoC float64
	ocvVal units.Volt
	ocvOk  bool
}

// hours returns dt.Hours() memoized on dt. Callers validate dt > 0 first
// (checkStep), so the zero-valued cache never aliases a real step.
func (p *Pack) hours(dt time.Duration) float64 {
	if dt != p.hrDt {
		p.hrDt, p.hrVal = dt, dt.Hours()
	}
	return p.hrVal
}

// settings collects the construction-time options shared by every model
// tier, so one Option type configures Pack and Linear alike.
type settings struct {
	capScale float64
	resScale float64
	soc      float64
	temp     units.Celsius
	rec      *telemetry.Recorder
}

func defaultSettings() settings {
	return settings{capScale: 1, resScale: 1, soc: 1, temp: 25}
}

// counters resolves the telemetry handles once at construction so the
// per-step cost is one nil check plus an atomic add. A nil recorder
// yields nil (no-op) handles.
func (s settings) counters() (discharge, charge, rest, cutoff *telemetry.Counter) {
	return s.rec.Counter(telemetry.MetricBatteryDischargeSteps),
		s.rec.Counter(telemetry.MetricBatteryChargeSteps),
		s.rec.Counter(telemetry.MetricBatteryRestSteps),
		s.rec.Counter(telemetry.MetricBatteryCutoffs)
}

// Option customizes a battery model at construction.
type Option func(*settings)

// WithInitialSoC sets the starting state of charge (default 1.0).
func WithInitialSoC(soc float64) Option {
	return func(s *settings) { s.soc = units.Clamp01(soc) }
}

// WithManufacturingVariation applies fixed per-unit deviation from the
// nameplate: capScale multiplies capacity, resScale multiplies resistance.
// Imperfect manufacturing is one of the paper's two causes of aging
// variation (§IV-B-1).
func WithManufacturingVariation(capScale, resScale float64) Option {
	return func(s *settings) {
		if capScale > 0 {
			s.capScale = capScale
		}
		if resScale > 0 {
			s.resScale = resScale
		}
	}
}

// WithInitialTemperature sets the starting case temperature (default 25 °C).
func WithInitialTemperature(t units.Celsius) Option {
	return func(s *settings) { s.temp = t }
}

// WithRecorder instruments the model's step loop: discharge, charge, and
// rest step counts plus protection-cutoff trips are recorded under the
// canonical battery metric names. A nil recorder leaves the model exactly
// as un-instrumented (the handles stay nil no-ops).
func WithRecorder(rec *telemetry.Recorder) Option {
	return func(s *settings) { s.rec = rec }
}

// New constructs a Pack from spec.
func New(spec Spec, opts ...Option) (*Pack, error) {
	p := new(Pack)
	if err := NewInto(p, spec, opts...); err != nil {
		return nil, err
	}
	return p, nil
}

// NewInto initializes a Pack from spec in place, overwriting *p. It
// exists so a fleet can lay packs out in one contiguous slice instead of
// allocating each behind its own pointer; the resulting value is
// identical to one built by New.
func NewInto(p *Pack, spec Spec, opts ...Option) error {
	if err := spec.Validate(); err != nil {
		return err
	}
	kind := spec.Chemistry.Normalize()
	if kind == KindLinear {
		return errors.New("battery: the linear tier is a Linear, not a Pack (use NewModel)")
	}
	st := defaultSettings()
	for _, opt := range opts {
		opt(&st)
	}
	curve, ref := chemCurve(kind)
	*p = Pack{
		spec:            spec,
		kind:            kind,
		curve:           curve,
		curveRef:        ref,
		capacityScale:   st.capScale,
		resistanceScale: st.resScale,
		soc:             st.soc,
		temp:            st.temp,
	}
	p.telDischarge, p.telCharge, p.telRest, p.telCutoff = st.counters()
	p.thermalTau = spec.ThermalCapacity * spec.ThermalResistance
	return nil
}

// Kind identifies the model tier simulating this pack.
func (p *Pack) Kind() Kind { return p.kind }

// Spec returns the nameplate specification.
func (p *Pack) Spec() Spec { return p.spec }

// SoC returns the current state of charge in [0, 1].
func (p *Pack) SoC() float64 { return p.soc }

// Temperature returns the current case temperature.
func (p *Pack) Temperature() units.Celsius { return p.temp }

// Degradation returns the wear applied so far.
func (p *Pack) Degradation() Degradation { return p.deg }

// Health returns remaining capacity as a fraction of initial capacity.
func (p *Pack) Health() float64 { return p.deg.Health() }

// ApplyDegradation replaces the pack's wear state. The aging model calls
// this after integrating damage for a control period. Values are clamped to
// physical ranges.
func (p *Pack) ApplyDegradation(d Degradation) {
	d.CapacityFade = units.Clamp01(d.CapacityFade)
	// A resistance beyond ~20× nameplate is a failed battery; clamping
	// keeps deeply-degraded packs numerically stable.
	d.ResistanceGrowth = units.Clamp(d.ResistanceGrowth, 0, 20)
	d.EfficiencyLoss = units.Clamp(d.EfficiencyLoss, 0, p.spec.CoulombicEfficiency-0.05)
	p.deg = d
}

// EffectiveCapacity returns the capacity currently deliverable at the
// reference (20-hour) rate, accounting for manufacturing variation and
// capacity fade.
func (p *Pack) EffectiveCapacity() units.AmpereHour {
	return units.AmpereHour(float64(p.spec.NominalCapacity) * p.capacityScale * p.deg.Health())
}

// referenceCurrent is the 20-hour discharge rate the capacity is rated at.
func (p *Pack) referenceCurrent() units.Ampere {
	return units.Ampere(float64(p.spec.NominalCapacity) / 20)
}

// capacityAt returns the Peukert-adjusted capacity for discharge current i.
// Below the reference rate the rated capacity applies.
func (p *Pack) capacityAt(i units.Ampere) units.AmpereHour {
	c := p.EffectiveCapacity()
	ref := p.referenceCurrent()
	if i <= ref {
		return c
	}
	k := p.spec.PeukertExponent
	scale := math.Pow(float64(ref)/float64(i), k-1)
	return units.AmpereHour(float64(c) * scale)
}

// internalResistance returns the present internal resistance including
// manufacturing variation and corrosion growth.
func (p *Pack) internalResistance() float64 {
	return p.spec.InternalResistance * p.resistanceScale * (1 + p.deg.ResistanceGrowth)
}

// ocv returns the open-circuit voltage at the present SoC, scaled from the
// chemistry's reference curve to the pack's nominal voltage.
func (p *Pack) ocv() units.Volt {
	if p.ocvOk && p.soc == p.ocvSoC {
		return p.ocvVal
	}
	v := p.curve.At(p.soc)
	p.ocvSoC = p.soc
	p.ocvVal = units.Volt(v * float64(p.spec.NominalVoltage) / p.curveRef)
	p.ocvOk = true
	return p.ocvVal
}

// OpenCircuitVoltage exposes the rest voltage (what the sensor module reads
// when the battery idles).
func (p *Pack) OpenCircuitVoltage() units.Volt { return p.ocv() }

// TerminalVoltage returns the loaded terminal voltage for discharge current
// i (positive = discharging, negative = charging).
func (p *Pack) TerminalVoltage(i units.Ampere) units.Volt {
	return units.Volt(float64(p.ocv()) - float64(i)*p.internalResistance())
}

// ErrPowerExceedsLimit is returned by CurrentForPower when the requested
// power cannot be delivered at any current (the IR drop dominates).
var ErrPowerExceedsLimit = errors.New("battery: requested power exceeds deliverable maximum")

// CurrentForPower solves for the discharge current that delivers electrical
// power pw at the terminals: pw = (OCV − I·R)·I. It returns
// ErrPowerExceedsLimit when the quadratic has no real solution.
func (p *Pack) CurrentForPower(pw units.Watt) (units.Ampere, error) {
	if pw <= 0 {
		return 0, nil
	}
	v := float64(p.ocv())
	r := p.internalResistance()
	disc := v*v - 4*r*float64(pw)
	if disc < 0 {
		return 0, fmt.Errorf("%w: %v at OCV %v", ErrPowerExceedsLimit, pw, p.ocv())
	}
	i := (v - math.Sqrt(disc)) / (2 * r)
	return units.Ampere(i), nil
}

// MaxDischargePower returns the maximum instantaneous power deliverable
// without the terminal voltage collapsing below the cutoff line. This is the
// quantity behind the paper's P_threshold (Fig 9): the largest draw the pack
// can sustain.
func (p *Pack) MaxDischargePower() units.Watt {
	v := float64(p.ocv())
	vc := float64(p.spec.CutoffVoltage)
	r := p.internalResistance()
	if v <= vc {
		return 0
	}
	// At the cutoff boundary the current is (v-vc)/r and power vc·I.
	i := (v - vc) / r
	return units.Watt(vc * i)
}

// MaxChargePower returns the battery-side power the charger could push
// into the pack this instant: OCV times the taper-limited charge current.
// Zero when full. The charger-side request adds conversion losses on top
// (the node divides by its charger efficiency).
func (p *Pack) MaxChargePower() units.Watt {
	if p.soc >= 1 {
		return 0
	}
	v := float64(p.ocv())
	maxI := float64(p.spec.MaxChargeCurrent)
	if p.soc > 0.9 {
		maxI *= units.Clamp((1-p.soc)/0.1, 0.05, 1)
	}
	return units.Watt(v * maxI)
}

// CutOff reports whether the battery has reached the protection threshold:
// either empty or unable to hold the cutoff voltage at the reference rate.
func (p *Pack) CutOff() bool {
	if p.soc <= 0.02 {
		return true
	}
	return p.TerminalVoltage(p.referenceCurrent()) < p.spec.CutoffVoltage
}

// StepResult reports what actually happened during a Step.
type StepResult struct {
	// Current is the realized terminal current (positive = discharge).
	Current units.Ampere
	// Voltage is the terminal voltage during the step.
	Voltage units.Volt
	// Energy is the electrical energy exchanged at the terminals
	// (positive = delivered to the load).
	Energy units.WattHour
	// Charge is the charge moved at the terminals (positive = out).
	Charge units.AmpereHour
	// CutOff reports whether the protection threshold tripped during the
	// step (discharge was truncated).
	CutOff bool
}

// finite reports whether x is a usable number (not NaN or ±Inf).
func finite(x float64) bool {
	return !math.IsNaN(x) && !math.IsInf(x, 0)
}

// checkStep validates the inputs every step method shares. Rejecting
// non-finite values here is what keeps a poisoned sensor reading or a
// fuzzer-crafted NaN from flowing through Clamp (which passes NaN) into
// the state of charge.
func checkStep(pw units.Watt, dt time.Duration, amb units.Celsius) error {
	if !finite(float64(pw)) {
		return fmt.Errorf("battery: non-finite power %v", pw)
	}
	if dt <= 0 {
		return fmt.Errorf("battery: non-positive step duration %v", dt)
	}
	if !finite(float64(amb)) {
		return fmt.Errorf("battery: non-finite ambient temperature %v", amb)
	}
	return nil
}

// Discharge draws electrical power pw from the pack for duration dt at
// ambient temperature amb. The realized energy may be lower than requested
// if the pack trips its cutoff mid-step.
func (p *Pack) Discharge(pw units.Watt, dt time.Duration, amb units.Celsius) (StepResult, error) {
	if err := checkStep(pw, dt, amb); err != nil {
		return StepResult{}, err
	}
	if pw < 0 {
		return StepResult{}, fmt.Errorf("battery: negative discharge power %v", pw)
	}
	if pw == 0 || p.CutOff() {
		p.rest(dt, amb)
		res := StepResult{Voltage: p.ocv(), CutOff: p.CutOff()}
		p.telRest.Inc()
		if res.CutOff {
			p.telCutoff.Inc()
		}
		return res, nil
	}
	i, err := p.CurrentForPower(pw)
	if err != nil {
		// Deliver the maximum instead of failing: the switcher asked for
		// more than the chemistry can give, which in the prototype trips
		// the under-voltage disconnect.
		p.rest(dt, amb)
		p.telCutoff.Inc()
		return StepResult{Voltage: p.ocv(), CutOff: true}, nil
	}
	v := p.TerminalVoltage(i)
	if v < p.spec.CutoffVoltage {
		p.rest(dt, amb)
		p.telCutoff.Inc()
		return StepResult{Voltage: v, CutOff: true}, nil
	}

	cap := p.capacityAt(i)
	dq := units.AmpereHour(float64(i) * p.hours(dt)) // units.ChargeOver, memoized hours
	avail := units.AmpereHour(p.soc * float64(cap))
	res := StepResult{Current: i, Voltage: v}
	if dq >= avail {
		// Truncate: the pack empties partway through the step.
		frac := 0.0
		if dq > 0 {
			frac = float64(avail) / float64(dq)
		}
		dq = avail
		dt = time.Duration(float64(dt) * frac)
		res.CutOff = true
	}
	if float64(cap) > 0 {
		p.soc = units.Clamp01(p.soc - float64(dq)/float64(cap))
	}
	res.Charge = dq
	// Energy at the terminals is v × i × hours = v × dq.
	res.Energy = units.WattHour(float64(v) * float64(dq))
	p.ahOut += dq
	p.whOut += res.Energy
	p.cycles += float64(dq) / math.Max(float64(p.spec.NominalCapacity), 1e-9)
	p.heat(i, dt, amb)
	p.operating += dt
	p.telDischarge.Inc()
	if res.CutOff {
		p.telCutoff.Inc()
	}
	return res, nil
}

// Charge pushes electrical power pw into the pack for dt. The charger model
// caps current at MaxChargeCurrent and tapers as the pack approaches full.
// It returns the power actually accepted, which lets the power bus route
// surplus solar elsewhere.
func (p *Pack) Charge(pw units.Watt, dt time.Duration, amb units.Celsius) (StepResult, error) {
	if err := checkStep(pw, dt, amb); err != nil {
		return StepResult{}, err
	}
	if pw < 0 {
		return StepResult{}, fmt.Errorf("battery: negative charge power %v", pw)
	}
	if pw == 0 || p.soc >= 1 {
		p.rest(dt, amb)
		p.telRest.Inc()
		return StepResult{Voltage: p.ocv()}, nil
	}
	v := float64(p.ocv())
	r := p.internalResistance()
	// Charging terminal voltage: v + I·r; current from pw = (v + I·r)·I.
	disc := v*v + 4*r*float64(pw)
	i := (-v + math.Sqrt(disc)) / (2 * r)
	maxI := float64(p.spec.MaxChargeCurrent)
	// Taper: above 90 % SoC the acceptance current falls off linearly.
	if p.soc > 0.9 {
		maxI *= units.Clamp((1-p.soc)/0.1, 0.05, 1)
	}
	if i > maxI {
		i = maxI
	}
	vt := units.Volt(v + i*r)
	eff := p.spec.CoulombicEfficiency - p.deg.EfficiencyLoss
	cap := p.EffectiveCapacity()
	dq := units.AmpereHour(i * p.hours(dt)) // units.ChargeOver, memoized hours
	need := units.AmpereHour((1 - p.soc) * float64(cap) / math.Max(eff, 1e-6))
	if dq > need {
		dq = need
	}
	if float64(cap) > 0 {
		p.soc = units.Clamp01(p.soc + float64(dq)*eff/float64(cap))
	}
	res := StepResult{
		Current: units.Ampere(-i),
		Voltage: vt,
		Energy:  units.WattHour(-float64(vt) * float64(dq)),
		Charge:  units.AmpereHour(-dq),
	}
	p.ahIn += dq
	p.whIn += units.WattHour(float64(vt) * float64(dq))
	p.heat(units.Ampere(i), dt, amb)
	p.operating += dt
	p.telCharge.Inc()
	return res, nil
}

// Rest advances time with no terminal current: self-discharge plus thermal
// relaxation toward ambient.
func (p *Pack) Rest(dt time.Duration, amb units.Celsius) error {
	if err := checkStep(0, dt, amb); err != nil {
		return err
	}
	p.rest(dt, amb)
	p.operating += dt
	p.telRest.Inc()
	return nil
}

func (p *Pack) rest(dt time.Duration, amb units.Celsius) {
	if dt != p.restDt {
		days := dt.Hours() / 24
		p.restFactor = math.Pow(1-p.spec.SelfDischargeFraction, days)
		p.restDt = dt
	}
	p.soc = units.Clamp01(p.soc * p.restFactor)
	p.heat(0, dt, amb)
}

// heat advances the lumped thermal model: I²R generation against a single
// case-to-ambient resistance. The temperature is clamped to a physical
// envelope so that an extremely degraded pack cannot destabilize the model.
func (p *Pack) heat(i units.Ampere, dt time.Duration, amb units.Celsius) {
	gen := 0.0
	if i != 0 {
		gen = float64(i) * float64(i) * p.internalResistance() // watts
	}
	tau := p.thermalTau
	if tau <= 0 {
		return
	}
	if dt != p.heatDt {
		p.heatAlpha = 1 - math.Exp(-dt.Seconds()/tau)
		p.heatDt = dt
	}
	steady := float64(amb) + gen*p.spec.ThermalResistance
	alpha := p.heatAlpha
	t := float64(p.temp) + (steady-float64(p.temp))*alpha
	p.temp = units.Celsius(units.Clamp(t, -20, 90))
}

// Counters returns the cumulative usage counters the sensor table logs
// (Table 2) and the aging metrics consume.
type Counters struct {
	AhOut         units.AmpereHour
	AhIn          units.AmpereHour
	WhOut         units.WattHour
	WhIn          units.WattHour
	OperatingTime time.Duration
	// EquivalentFullCycles is throughput-based cycle count:
	// Σ discharge Ah / nominal capacity.
	EquivalentFullCycles float64
}

// Counters returns a snapshot of the cumulative usage counters.
func (p *Pack) Counters() Counters {
	return Counters{
		AhOut:                p.ahOut,
		AhIn:                 p.ahIn,
		WhOut:                p.whOut,
		WhIn:                 p.whIn,
		OperatingTime:        p.operating,
		EquivalentFullCycles: p.cycles,
	}
}

// RoundTripEfficiency returns lifetime Wh-out / Wh-in, the figure whose
// degradation Fig 5 plots. It returns 0 until some charge has flowed both
// ways.
func (p *Pack) RoundTripEfficiency() float64 {
	if p.whIn <= 0 || p.whOut <= 0 {
		return 0
	}
	return units.Clamp01(float64(p.whOut) / float64(p.whIn))
}

// StoredEnergy estimates the energy currently stored and deliverable at the
// reference rate.
func (p *Pack) StoredEnergy() units.WattHour {
	return units.WattHour(p.soc * float64(p.EffectiveCapacity()) * float64(p.spec.NominalVoltage))
}

// EstimateSoC inverts the voltage model: given a terminal voltage measured
// under discharge current i, it returns the state of charge the sensor
// layer would report. This is how the prototype's controller derives SoC
// from its front sensors (Table 2: "discharging voltage used for
// calculating SoC"). The estimate compensates the IR drop with the pack's
// present (aged) internal resistance, then inverts the OCV curve.
func (p *Pack) EstimateSoC(v units.Volt, i units.Ampere) float64 {
	// Undo the IR drop to recover the open-circuit voltage, then rescale
	// to the canonical 12 V curve.
	ocv := (float64(v) + float64(i)*p.internalResistance()) * p.curveRef / float64(p.spec.NominalVoltage)
	lo, hi := p.curve.Domain()
	if ocv >= p.curve.At(hi) {
		return 1
	}
	if ocv <= p.curve.At(lo) {
		return 0
	}
	// Binary search the monotone OCV curve.
	for iter := 0; iter < 40; iter++ {
		mid := (lo + hi) / 2
		if p.curve.At(mid) < ocv {
			lo = mid
		} else {
			hi = mid
		}
	}
	return units.Clamp01((lo + hi) / 2)
}
