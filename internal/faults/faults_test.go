package faults

import (
	"reflect"
	"testing"
	"time"
)

const tick = time.Minute

// runPlan replays a plan over the given number of days and returns a deep
// copy of every tick's resolved state (the injector reuses its buffers).
func runPlan(t *testing.T, cfg Config, nodes, days int) []TickState {
	t.Helper()
	inj, err := NewInjector(cfg, nodes)
	if err != nil {
		t.Fatalf("NewInjector: %v", err)
	}
	var out []TickState
	for clock := time.Duration(0); clock < time.Duration(days)*24*time.Hour; clock += tick {
		st := inj.Tick(clock, tick)
		cp := TickState{
			PVFactor: st.PVFactor,
			Nodes:    append([]NodeFault(nil), st.Nodes...),
			Injected: append([]Injected(nil), st.Injected...),
		}
		out = append(out, cp)
	}
	return out
}

func TestRuleValidation(t *testing.T) {
	cases := []struct {
		name string
		rule Rule
		ok   bool
	}{
		{"scheduled sensor window", Rule{Kind: SensorStuck, Day: 1, At: 9 * time.Hour, Duration: time.Hour}, true},
		{"probabilistic drop", Rule{Kind: SensorDrop, Node: -1, Probability: 0.01, Duration: 5 * time.Minute}, true},
		{"scheduled one-shot without duration", Rule{Kind: BatteryCapacityLoss, Day: 2, Magnitude: 0.1}, true},
		{"unknown kind", Rule{Kind: "meteor_strike", Day: 1, Duration: time.Hour}, false},
		{"neither scheduled nor probabilistic", Rule{Kind: SensorNaN}, false},
		{"both scheduled and probabilistic", Rule{Kind: SensorNaN, Day: 1, Duration: time.Hour, Probability: 0.5}, false},
		{"negative day", Rule{Kind: SensorNaN, Day: -1}, false},
		{"probability above one", Rule{Kind: SensorDrop, Probability: 1.5}, false},
		{"start past midnight", Rule{Kind: SensorStuck, Day: 1, At: 25 * time.Hour, Duration: time.Hour}, false},
		{"scheduled window without duration", Rule{Kind: SensorStuck, Day: 1, At: time.Hour}, false},
		{"negative magnitude", Rule{Kind: SensorNoise, Probability: 0.1, Magnitude: -0.2}, false},
		{"fractional magnitude above one", Rule{Kind: PVDropout, Day: 1, Duration: time.Hour, Magnitude: 1.5}, false},
		{"node below -1", Rule{Kind: SensorNaN, Node: -2, Day: 1, Duration: time.Hour}, false},
	}
	for _, tc := range cases {
		err := tc.rule.Validate()
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error: %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: expected a validation error", tc.name)
		}
	}
}

func TestInjectorRejectsOutOfRangeTarget(t *testing.T) {
	cfg := Config{Rules: []Rule{{Kind: SensorNaN, Node: 5, Day: 1, Duration: time.Hour}}}
	if _, err := NewInjector(cfg, 3); err == nil {
		t.Fatal("expected an error for a rule targeting node 5 in a 3-node fleet")
	}
}

func TestScheduledWindowSemantics(t *testing.T) {
	cfg := Config{Seed: 1, Rules: []Rule{
		{Kind: SensorStuck, Node: 1, Day: 2, At: 9 * time.Hour, Duration: 2 * time.Hour},
	}}
	states := runPlan(t, cfg, 3, 3)
	idx := func(clock time.Duration) int { return int(clock / tick) }

	start := 24*time.Hour + 9*time.Hour
	end := start + 2*time.Hour
	for _, probe := range []struct {
		clock  time.Duration
		active bool
	}{
		{start - tick, false},
		{start, true},
		{end - tick, true},
		{end, false},
		{9 * time.Hour, false},                // same time of day, wrong day
		{2*24*time.Hour + 9*time.Hour, false}, // day after
	} {
		st := states[idx(probe.clock)]
		got := st.Nodes[1].Sensor.Mode == ModeStuck
		if got != probe.active {
			t.Errorf("clock %v: stuck=%v, want %v", probe.clock, got, probe.active)
		}
		if st.Nodes[0].Sensor.Mode != SensorOK || st.Nodes[2].Sensor.Mode != SensorOK {
			t.Errorf("clock %v: fault leaked to untargeted nodes", probe.clock)
		}
	}

	// Exactly one activation event, emitted at the window start.
	var events []Injected
	for _, st := range states {
		events = append(events, st.Injected...)
	}
	if len(events) != 1 {
		t.Fatalf("got %d activation events, want 1: %v", len(events), events)
	}
	if events[0].At != start || events[0].Until != end || events[0].Node != 1 {
		t.Errorf("activation event %+v, want at=%v until=%v node=1", events[0], start, end)
	}
}

func TestScheduledOneShotFiresOnce(t *testing.T) {
	cfg := Config{Seed: 1, Rules: []Rule{
		{Kind: BatteryCapacityLoss, Node: 0, Day: 1, At: 10 * time.Hour, Magnitude: 0.25},
	}}
	states := runPlan(t, cfg, 2, 2)
	var fades int
	for _, st := range states {
		if st.Nodes[0].CapacityFade > 0 {
			fades++
			if st.Nodes[0].CapacityFade != 0.25 {
				t.Errorf("capacity fade %v, want 0.25", st.Nodes[0].CapacityFade)
			}
		}
	}
	if fades != 1 {
		t.Fatalf("one-shot fired on %d ticks, want exactly 1", fades)
	}
}

func TestDefaultMagnitudes(t *testing.T) {
	cfg := Config{Seed: 1, Rules: []Rule{
		{Kind: PVDropout, Day: 1, At: 12 * time.Hour, Duration: time.Hour}, // default 1.0
		{Kind: BatteryPrematureEOL, Node: 0, Day: 1, At: 8 * time.Hour},    // default 0.75
	}}
	inj, err := NewInjector(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	st := inj.Tick(8*time.Hour, tick)
	if st.Nodes[0].TargetHealth != 0.75 {
		t.Errorf("premature-EOL target health %v, want default 0.75", st.Nodes[0].TargetHealth)
	}
	// The scheduled PV dropout is realized via PVOutages, not PVFactor.
	outs := inj.PVOutages(1)
	if len(outs) != 1 {
		t.Fatalf("got %d outages, want 1", len(outs))
	}
	if outs[0].Factor != 0 {
		t.Errorf("outage factor %v, want 0 (full dropout default)", outs[0].Factor)
	}
}

func TestPVOutagesClipToDay(t *testing.T) {
	// A 6-hour derating starting day 1 at 20:00 spans into day 2.
	cfg := Config{Seed: 1, Rules: []Rule{
		{Kind: PVDropout, Day: 1, At: 20 * time.Hour, Duration: 6 * time.Hour, Magnitude: 0.5},
	}}
	inj, err := NewInjector(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	d1 := inj.PVOutages(1)
	if len(d1) != 1 || d1[0].Start != 20*time.Hour || d1[0].End != 24*time.Hour {
		t.Errorf("day 1 outages %+v, want one [20h, 24h) window", d1)
	}
	d2 := inj.PVOutages(2)
	if len(d2) != 1 || d2[0].Start != 0 || d2[0].End != 26*time.Hour-24*time.Hour {
		t.Errorf("day 2 outages %+v, want one [0, 2h) window", d2)
	}
	if d3 := inj.PVOutages(3); len(d3) != 0 {
		t.Errorf("day 3 outages %+v, want none", d3)
	}
	for _, o := range append(d1, d2...) {
		if o.Factor != 0.5 {
			t.Errorf("outage factor %v, want 0.5", o.Factor)
		}
	}
}

func TestProbabilisticActivationHolds(t *testing.T) {
	cfg := Config{Seed: 7, Rules: []Rule{
		{Kind: SensorDrop, Node: 0, Probability: 0.01, Duration: 10 * time.Minute},
	}}
	states := runPlan(t, cfg, 1, 2)
	ticksPerHold := int(10 * time.Minute / tick)
	active := 0
	var activations int
	for _, st := range states {
		if st.Nodes[0].Sensor.Mode == ModeDrop {
			active++
		}
		activations += len(st.Injected)
	}
	if activations == 0 {
		t.Fatal("no activations over two days at p=0.01/min; seed 7 should trigger")
	}
	// Every activation holds for its full window (windows may only merge,
	// never truncate), so active tick count is at least one hold per
	// activation is wrong when windows overlap — but with p=0.01 over 2880
	// ticks overlaps are rare; sanity-check the lower bound loosely.
	if active < ticksPerHold {
		t.Errorf("fault active %d ticks across %d activations, want >= %d", active, activations, ticksPerHold)
	}
}

func TestSensorSeverityComposition(t *testing.T) {
	// Noise and drop both scheduled on the same node and window: drop wins.
	cfg := Config{Seed: 1, Rules: []Rule{
		{Kind: SensorNoise, Node: 0, Day: 1, At: 9 * time.Hour, Duration: time.Hour, Magnitude: 0.3},
		{Kind: SensorDrop, Node: 0, Day: 1, At: 9 * time.Hour, Duration: time.Hour},
	}}
	inj, err := NewInjector(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	st := inj.Tick(9*time.Hour+30*time.Minute, tick)
	if st.Nodes[0].Sensor.Mode != ModeDrop {
		t.Errorf("composed sensor mode %v, want drop (severest wins)", st.Nodes[0].Sensor.Mode)
	}
}

func TestInjectorDeterminism(t *testing.T) {
	cfg, err := Profile("chaos", 99)
	if err != nil {
		t.Fatal(err)
	}
	a := runPlan(t, cfg, 6, 4)
	b := runPlan(t, cfg, 6, 4)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("identical seed and schedule produced diverging tick states")
	}

	// A different seed must actually change the probabilistic stream.
	cfg2 := cfg
	cfg2.Seed = 100
	c := runPlan(t, cfg2, 6, 4)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical tick states (stream not seeded?)")
	}
}

func TestProfiles(t *testing.T) {
	for _, name := range ProfileNames() {
		cfg, err := Profile(name, 1)
		if err != nil {
			t.Errorf("Profile(%q): %v", name, err)
			continue
		}
		if err := cfg.Validate(); err != nil {
			t.Errorf("profile %q does not validate: %v", name, err)
		}
		if name == "none" && cfg.Enabled() {
			t.Error(`profile "none" must be empty`)
		}
		if name != "none" && !cfg.Enabled() {
			t.Errorf("profile %q is empty", name)
		}
	}
	if _, err := Profile("mixed", 1); err != nil {
		t.Errorf(`alias "mixed": %v`, err)
	}
	if _, err := Profile("nope", 1); err == nil {
		t.Error("unknown profile must error")
	}
}

func TestInjectedString(t *testing.T) {
	i := Injected{Kind: PVDropout, Node: -1, At: time.Hour, Until: 2 * time.Hour, Magnitude: 1}
	if got := i.String(); got == "" {
		t.Fatal("empty event rendering")
	}
	one := Injected{Kind: BatteryCapacityLoss, Node: 3, At: time.Hour, Until: time.Hour, Magnitude: 0.1}
	if got := one.String(); got == "" {
		t.Fatal("empty one-shot rendering")
	}
}
