package fleet

import (
	"sync"
	"sync/atomic"
)

// Pool is a reusable fan-out of shard workers. Workers are long-lived
// goroutines (spawned once by Start) that claim shard indices from an
// atomic cursor each round, so the steady-state Run path spawns no
// goroutines, captures no closures, and allocates nothing — the fix for
// the per-tick goroutine churn that made small-fleet parallel stepping
// slower than serial. The run callback receives a shard index and must
// confine any cross-shard effects to state owned by that shard (plus its
// own error/summary slot); the claim order is scheduling-dependent, so
// the callback must not care which worker runs it or in what order —
// determinism comes from per-shard state plus ordered reduction by the
// caller.
//
// A Pool is not safe for concurrent Runs; Start, Run…Run, Stop is the
// lifecycle, all from one goroutine. The engine scopes a pool to one
// simulated day (288 ticks amortize the start/stop cost), which also
// means no goroutines outlive the call that needed them.
type Pool struct {
	workers int
	run     func(shard int)

	next  atomic.Int64
	total int
	begin chan struct{}
	quit  chan struct{}
	wg    sync.WaitGroup
}

// NewPool prepares a pool of the given width over the run callback; no
// goroutines start until Start.
func NewPool(workers int, run func(shard int)) *Pool {
	return &Pool{workers: workers, run: run}
}

// Start spawns the workers. Calling Start on a started pool is a no-op.
func (p *Pool) Start() {
	if p.begin != nil {
		return
	}
	// Workers capture the channels, not the fields: Stop nils the fields
	// on the caller's goroutine while workers may still be selecting.
	begin := make(chan struct{})
	quit := make(chan struct{})
	p.begin, p.quit = begin, quit
	for w := 0; w < p.workers; w++ {
		go func() {
			for {
				select {
				case <-quit:
					return
				case <-begin:
					for {
						i := int(p.next.Add(1)) - 1
						if i >= p.total {
							break
						}
						p.run(i)
					}
					p.wg.Done()
				}
			}
		}()
	}
}

// Run executes the callback for every shard index in [0, total) across
// the workers and returns when all have finished. The total is written
// before any worker is released and read only after, so each round
// happens-before the next.
func (p *Pool) Run(total int) {
	if p.begin == nil || total <= 0 {
		for i := 0; i < total; i++ {
			p.run(i)
		}
		return
	}
	p.total = total
	p.next.Store(0)
	p.wg.Add(p.workers)
	for w := 0; w < p.workers; w++ {
		p.begin <- struct{}{}
	}
	p.wg.Wait()
}

// Stop terminates the workers. It must not overlap a Run; a stopped pool
// can be started again.
func (p *Pool) Stop() {
	if p.begin == nil {
		return
	}
	close(p.quit)
	p.begin = nil
	p.quit = nil
}
