package faults

import (
	"fmt"
	"slices"
	"time"
)

// sensorRules is the DAQ-glitch regime of the prototype — one morning of a
// stuck front sensor, a midday NaN burst, plus a light probabilistic mix of
// noisy and dropped readings across the fleet.
func sensorRules() []Rule {
	return []Rule{
		{Kind: SensorStuck, Node: 0, Day: 2, At: 9 * time.Hour, Duration: 2 * time.Hour},
		{Kind: SensorNaN, Node: 1, Day: 3, At: 12 * time.Hour, Duration: 30 * time.Minute},
		{Kind: SensorNoise, Node: -1, Probability: 0.002, Duration: 15 * time.Minute, Magnitude: 0.25},
		{Kind: SensorDrop, Node: -1, Probability: 0.001, Duration: 10 * time.Minute},
	}
}

// batteryRules are mid-study cell failures — a sudden capacity step on one
// node, resistance growth on another, and a premature end-of-life.
func batteryRules() []Rule {
	return []Rule{
		{Kind: BatteryCapacityLoss, Node: 0, Day: 3, At: 10 * time.Hour, Magnitude: 0.08},
		{Kind: BatteryResistanceGrowth, Node: 1, Day: 5, At: 14 * time.Hour, Magnitude: 0.6},
		{Kind: BatteryPrematureEOL, Node: 2, Day: 8, At: 11 * time.Hour, Magnitude: 0.78},
	}
}

// powerRules are supply-side trouble — a scheduled half-day PV derating,
// short probabilistic generation dips, and a utility brownout window.
func powerRules() []Rule {
	return []Rule{
		{Kind: PVDropout, Day: 2, At: 11 * time.Hour, Duration: 3 * time.Hour, Magnitude: 0.6},
		{Kind: PVDropout, Probability: 0.003, Duration: 20 * time.Minute, Magnitude: 0.8},
		{Kind: UtilityBrownout, Node: -1, Day: 4, At: 9 * time.Hour, Duration: 4 * time.Hour},
	}
}

// chaosRules compose everything at once, at the intensities of the
// individual profiles — the schedule the chaos-smoke CI step and the
// faulted golden trace pin down.
func chaosRules() []Rule {
	var rules []Rule
	rules = append(rules, sensorRules()...)
	rules = append(rules, batteryRules()...)
	rules = append(rules, powerRules()...)
	return append(rules,
		Rule{Kind: AgentDisconnect, Node: -1, Probability: 0.01, Duration: 5 * time.Minute})
}

// profiles are the named fault plans the -faults flag on baatsim/baatbench
// selects. "none" is the clean path: no rules, no injector.
var profiles = map[string]func() []Rule{
	"none":    func() []Rule { return nil },
	"sensor":  sensorRules,
	"battery": batteryRules,
	"power":   powerRules,
	"chaos":   chaosRules,
}

// Profile returns the named fault plan with the given injector seed. The
// seed is attached here so the same plan replays differently (but still
// deterministically) under different -faults-seed values. "mixed" is
// accepted as an alias for "chaos".
func Profile(name string, seed int64) (Config, error) {
	if name == "mixed" {
		name = "chaos"
	}
	build, ok := profiles[name]
	if !ok {
		return Config{}, fmt.Errorf("faults: unknown profile %q (have %v)", name, ProfileNames())
	}
	return Config{Seed: seed, Rules: build()}, nil
}

// ProfileNames lists the selectable profiles in sorted order.
func ProfileNames() []string {
	names := make([]string, 0, len(profiles))
	for name := range profiles {
		names = append(names, name)
	}
	slices.Sort(names)
	return names
}
