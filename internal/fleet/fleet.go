// Package fleet owns the warehouse-scale storage layout of a battery-node
// fleet: a struct-of-arrays arrangement where every node's server, battery
// pack, aging tracker, damage model, and power-table rows live in
// contiguous per-component slabs instead of individually heap-allocated
// objects. The existing component types (node.Node, battery.Pack, …) are
// kept as views into the slabs — node i is &nodes[i], its pack is
// &packs[i] — so every API built on *node.Node keeps working while the
// hot per-tick loops walk dense memory.
//
// The fleet is partitioned into rack-group shards (Shard), each owning a
// contiguous index range and a named RNG substream derived from the run
// seed via rng.Shard(i). The shard→stream mapping depends only on the
// shard index, never on worker count, so sharded runs stay bit-identical
// however many goroutines execute them. Per-shard Summary values
// accumulate integer aggregates (suspect counts, SoC histogram bins,
// end-of-life and migration-candidate indices) that recombine exactly —
// bin-by-bin, count-by-count — to whole-fleet values, which is what lets
// a controller consume O(shards) summaries instead of rescanning O(nodes)
// state. Float fields (SoC and energy sums) merge in shard order and are
// deterministic for a fixed shard size, but their rounding differs from a
// flat serial sum; consumers must treat them as telemetry-grade and never
// let them pick between otherwise-equal trace-visible decisions.
//
// Pool is the reusable worker fan-out that executes shards concurrently:
// workers are long-lived and claim shard indices from an atomic cursor,
// so the steady-state tick path spawns no goroutines and allocates
// nothing. See docs/ARCHITECTURE.md for how the pieces compose with the
// simulation engine, checkpoint/resume, and fault injection.
package fleet

import (
	"fmt"

	"github.com/green-dc/baat/internal/aging"
	"github.com/green-dc/baat/internal/battery"
	"github.com/green-dc/baat/internal/node"
	"github.com/green-dc/baat/internal/powernet"
	"github.com/green-dc/baat/internal/server"
)

// DefaultShardSize is the rack-group granularity when Config.ShardSize is
// zero: 64 nodes ≈ two Open Rack columns, small enough that shards spread
// across workers at modest fleet sizes and large enough that per-shard
// bookkeeping amortizes.
const DefaultShardSize = 64

// Config assembles a fleet.
type Config struct {
	// Nodes is the fleet size.
	Nodes int
	// ShardSize is the rack-group partition width (the last shard may be
	// smaller). Zero means DefaultShardSize.
	ShardSize int
	// Seed derives each shard's named RNG substream (rng.Shard).
	Seed int64
	// ID names node i. Nil defaults to "node-<i>".
	ID func(i int) string
	// Node returns node i's configuration. It is called exactly once per
	// node, in ascending index order — construction-time randomness (e.g.
	// manufacturing variation drawn from a caller stream) therefore lands
	// on the same node it always has, which golden traces rely on.
	Node func(i int) (node.Config, error)
	// Model declares node i's battery model tier ahead of construction so
	// the per-tier slabs (electrochemical packs vs. linear models) can be
	// sized exactly — Node is called once per node, so the fleet cannot
	// pre-scan configs. It must agree with what Node(i) returns; a
	// mismatch is a construction error. Nil means all-electrochemical
	// slab sizing: nodes whose config selects the linear tier still work
	// but fall back to a private heap allocation for their model.
	Model func(i int) battery.Kind
}

// Columns is the fleet-wide allocator scratch: one dense column per
// per-node quantity the tick prologue reads or writes (SoC snapshot,
// demand, grants, sort order). The engine reuses them every tick, so the
// steady-state step path allocates nothing. SortKey and SortScratch are
// the radix-ordering scratch for the engine's incremental SoC order: a
// key column and a ping-pong index buffer, preallocated here so the
// per-control-pass sort stays alloc-free.
type Columns struct {
	SoC         []float64
	Demand      []float64
	LoadGrant   []float64
	ChargeGrant []float64
	Order       []int
	SortKey     []uint64
	SortScratch []int
}

// tierRun is a maximal run of consecutive node indices whose battery
// models occupy consecutive slots of one per-tier slab. Fleets are
// usually one run (homogeneous) or a few (the contiguous chemistry blocks
// of Config.BatteryFleet); only a node whose model fell back to a private
// heap allocation (slab=false) breaks columnar access.
type tierRun struct {
	lo, hi int  // node index range [lo, hi)
	off    int  // slab offset of node lo's model within its tier slab
	linear bool // linears slab vs packs slab
	slab   bool // false: private models, read through the node view
}

// Fleet is the struct-of-arrays storage of a node fleet. All component
// state lives in the contiguous slabs below; the views slice exposes the
// conventional *node.Node handles into them.
type Fleet struct {
	nodes    []node.Node
	views    []*node.Node
	servers  []server.Server
	packs    []battery.Pack   // electrochemical tiers (lead-acid, LFP)
	linears  []battery.Linear // linear coulomb-counting tier
	trackers []aging.Tracker
	models   []aging.Model
	tables   []powernet.PowerTable
	rows     []powernet.Reading
	shards   []Shard
	cols     Columns
	runs     []tierRun
}

// New builds a fleet: one contiguous slab per component type, every node
// initialized in place into its slab slots, and the shard partition laid
// over the index space.
func New(cfg Config) (*Fleet, error) {
	if cfg.Nodes <= 0 {
		return nil, fmt.Errorf("fleet: need at least one node, got %d", cfg.Nodes)
	}
	if cfg.ShardSize < 0 {
		return nil, fmt.Errorf("fleet: shard size must be non-negative, got %d", cfg.ShardSize)
	}
	if cfg.Node == nil {
		return nil, fmt.Errorf("fleet: Config.Node must not be nil")
	}
	id := cfg.ID
	if id == nil {
		id = func(i int) string { return fmt.Sprintf("node-%d", i) }
	}
	n := cfg.Nodes
	// Size the per-tier battery slabs. With no Model declaration every
	// node gets an electrochemical slot (linear-tier nodes then allocate
	// privately in node.NewInto).
	nLinear := 0
	if cfg.Model != nil {
		for i := 0; i < n; i++ {
			if cfg.Model(i).Normalize() == battery.KindLinear {
				nLinear++
			}
		}
	}
	f := &Fleet{
		nodes:    make([]node.Node, n),
		views:    make([]*node.Node, n),
		servers:  make([]server.Server, n),
		packs:    make([]battery.Pack, n-nLinear),
		linears:  make([]battery.Linear, nLinear),
		trackers: make([]aging.Tracker, n),
		models:   make([]aging.Model, n),
		tables:   make([]powernet.PowerTable, n),
	}
	// The power-table row slab is sized off the first node's capacity;
	// a node with a different capacity (heterogeneous configs) falls back
	// to private rows rather than fragmenting the slab.
	rowCap := -1
	packCursor, linCursor := 0, 0
	type placement struct {
		linear, slab bool
		off          int
	}
	places := make([]placement, n)
	for i := 0; i < n; i++ {
		ncfg, err := cfg.Node(i)
		if err != nil {
			return nil, fmt.Errorf("fleet: node %d config: %w", i, err)
		}
		if rowCap < 0 {
			rowCap = ncfg.TableCapacity
			f.rows = make([]powernet.Reading, n*rowCap)
		}
		kind := ncfg.BatterySpec.Chemistry.Normalize()
		if cfg.Model != nil {
			if declared := cfg.Model(i).Normalize(); declared != kind {
				return nil, fmt.Errorf("fleet: node %d declared battery model %q but its config selects %q",
					i, declared, kind)
			}
		}
		parts := node.Parts{
			Server:  &f.servers[i],
			Tracker: &f.trackers[i],
			Model:   &f.models[i],
			Table:   &f.tables[i],
		}
		if kind == battery.KindLinear {
			if cfg.Model != nil {
				places[i] = placement{linear: true, slab: true, off: linCursor}
				parts.Linear = &f.linears[linCursor]
				linCursor++
			} else {
				places[i] = placement{linear: true}
			}
		} else {
			places[i] = placement{slab: true, off: packCursor}
			parts.Pack = &f.packs[packCursor]
			packCursor++
		}
		if rowCap > 0 && ncfg.TableCapacity == rowCap {
			// Slot j of node i lives at rows[j*n+i]: rings are interleaved
			// by slot, so the lockstep per-tick Record across nodes writes
			// one contiguous band of the slab instead of striding a full
			// private ring (rowCap rows) per node.
			parts.TableRows = f.rows[i : (rowCap-1)*n+i+1]
			parts.TableStride = n
		}
		if err := node.NewInto(&f.nodes[i], id(i), ncfg, parts); err != nil {
			return nil, err
		}
		f.views[i] = &f.nodes[i]
	}
	f.cols = Columns{
		SoC:         make([]float64, n),
		Demand:      make([]float64, n),
		LoadGrant:   make([]float64, n),
		ChargeGrant: make([]float64, n),
		Order:       make([]int, n),
		SortKey:     make([]uint64, n),
		SortScratch: make([]int, n),
	}
	// Coalesce the per-node placements into maximal tier runs; slab
	// cursors advance in node order, so consecutive same-tier nodes are
	// automatically consecutive in their slab.
	for i := 0; i < n; {
		j := i + 1
		for j < n && places[j].linear == places[i].linear && places[j].slab == places[i].slab {
			j++
		}
		f.runs = append(f.runs, tierRun{
			lo: i, hi: j,
			off:    places[i].off,
			linear: places[i].linear,
			slab:   places[i].slab,
		})
		i = j
	}
	f.shards = partition(n, cfg.ShardSize, cfg.Seed)
	return f, nil
}

// SoCColumn fills dst (length Len) with every node's state of charge,
// sweeping the per-chemistry battery slabs with the columnar batch
// kernels instead of calling through each node. Nodes whose model lives
// outside the slabs (heterogeneous fallback) are read through their view.
// The engine calls this for the snapshot behind every SoC ordering pass.
func (f *Fleet) SoCColumn(dst []float64) {
	if len(dst) != len(f.nodes) {
		panic("fleet: SoCColumn length mismatch")
	}
	for _, r := range f.runs {
		switch {
		case !r.slab:
			for i := r.lo; i < r.hi; i++ {
				dst[i] = f.nodes[i].SoC()
			}
		case r.linear:
			battery.LinearSoCs(f.linears[r.off:r.off+(r.hi-r.lo)], dst[r.lo:r.hi])
		default:
			battery.PackSoCs(f.packs[r.off:r.off+(r.hi-r.lo)], dst[r.lo:r.hi])
		}
	}
}

// Len returns the fleet size.
func (f *Fleet) Len() int { return len(f.nodes) }

// Views returns the conventional *node.Node handles into the fleet's
// slabs. The slice is shared, not copied: callers must treat it as
// read-only (the nodes themselves are mutable through the pointers, as
// with any fleet).
func (f *Fleet) Views() []*node.Node { return f.views }

// View returns node i's handle.
func (f *Fleet) View(i int) *node.Node { return f.views[i] }

// Shards returns the rack-group partition. The slice is shared; shard
// boundaries and streams are fixed at construction.
func (f *Fleet) Shards() []Shard { return f.shards }

// Cols returns the fleet's allocator scratch columns (shared, reused
// every tick by the engine).
func (f *Fleet) Cols() *Columns { return &f.cols }
