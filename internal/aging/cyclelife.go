package aging

import (
	"fmt"

	"github.com/green-dc/baat/internal/units"
)

// Manufacturer identifies one of the three battery vendors whose cycle-life
// data Fig 10 plots.
type Manufacturer int

// The three manufacturers of Fig 10.
const (
	Hoppecke Manufacturer = iota + 1
	Trojan
	UPG
)

// String returns the vendor name.
func (m Manufacturer) String() string {
	switch m {
	case Hoppecke:
		return "Hoppecke"
	case Trojan:
		return "Trojan"
	case UPG:
		return "UPG"
	default:
		return fmt.Sprintf("Manufacturer(%d)", int(m))
	}
}

// Manufacturers lists the vendors in Fig 10 order.
func Manufacturers() []Manufacturer { return []Manufacturer{Hoppecke, Trojan, UPG} }

// cycleLifeCurves holds piecewise-linear cycle-life vs depth-of-discharge
// samples digitized to match the qualitative shape of Fig 10: cycle life
// roughly halves when the battery is routinely discharged beyond 50 % DoD,
// with vendor-to-vendor spread.
var cycleLifeCurves = map[Manufacturer]*units.Interpolator{
	Hoppecke: units.MustInterpolator(
		[]float64{0.10, 0.20, 0.30, 0.40, 0.50, 0.60, 0.70, 0.80, 0.90, 1.00},
		[]float64{7200, 3800, 2600, 1950, 1500, 1180, 980, 820, 700, 600},
	),
	Trojan: units.MustInterpolator(
		[]float64{0.10, 0.20, 0.30, 0.40, 0.50, 0.60, 0.70, 0.80, 0.90, 1.00},
		[]float64{5600, 3000, 2050, 1550, 1200, 950, 780, 650, 560, 480},
	),
	UPG: units.MustInterpolator(
		[]float64{0.10, 0.20, 0.30, 0.40, 0.50, 0.60, 0.70, 0.80, 0.90, 1.00},
		[]float64{3600, 1950, 1350, 1000, 780, 620, 510, 430, 370, 320},
	),
}

// CycleLife returns the rated number of cycles a vendor's battery survives
// when repeatedly discharged to depth dod (fraction in (0, 1]).
func CycleLife(m Manufacturer, dod float64) (float64, error) {
	curve, ok := cycleLifeCurves[m]
	if !ok {
		return 0, fmt.Errorf("aging: unknown manufacturer %v", m)
	}
	if dod <= 0 || dod > 1 {
		return 0, fmt.Errorf("aging: depth of discharge must be in (0, 1], got %v", dod)
	}
	return curve.At(dod), nil
}

// LifetimeThroughputAt returns the total Ah a battery of capacity capNom can
// cycle at depth dod before wear-out: cycles × (dod × capacity). Fig 10's
// central observation is that this product is *not* constant — shallow
// cycling yields more lifetime throughput — which is what planned aging
// exploits.
func LifetimeThroughputAt(m Manufacturer, capNom units.AmpereHour, dod float64) (units.AmpereHour, error) {
	cycles, err := CycleLife(m, dod)
	if err != nil {
		return 0, err
	}
	return units.AmpereHour(cycles * dod * float64(capNom)), nil
}
