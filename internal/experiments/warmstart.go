package experiments

import (
	"bytes"
	"sync"
	"sync/atomic"

	"github.com/green-dc/baat/internal/rng"
	"github.com/green-dc/baat/internal/sim"
)

// The single-day comparisons (Figs 13/20) measure each policy on a fleet
// pre-aged to the "old" battery stage (§VI-B). The burn-in is months of
// simulated aging and — for the neutral-aging variants — identical across
// every (policy, weather) cell of a sweep, so re-simulating it per cell
// dominated the suite's wall time. The warm-start path runs each distinct
// burn-in once, snapshots the simulator through the checkpoint envelope,
// and fast-forwards every later variant by restoring the snapshot into its
// freshly built simulator. Resume-at-day-N is byte-identical to an
// uninterrupted run (the engine's checkpoint guarantee), so warm sweeps
// render byte-identically to cold ones — enforced by warmstart_test.go.

// warmStartOff disables memoization so every variant re-runs its own
// burn-in (the cold path). Test hook for the warm-vs-cold equivalence
// assertions; production code never sets it.
var warmStartOff atomic.Bool

// burnInRuns counts full burn-in executions. Test hook: a warm sweep with
// one distinct burn-in must increment it exactly once.
var burnInRuns atomic.Int64

// warmEntry is one memoized burn-in: the checkpoint bytes of the pre-aged
// simulator, computed at most once.
type warmEntry struct {
	once sync.Once
	data []byte
	err  error
}

// warmStarts memoizes burn-in checkpoints keyed by the simulator's config
// hash plus an aging-policy discriminator. The hash covers everything that
// shapes the burn-in (seed, acceleration, services, PV scale, fault plan),
// and ResumeFrom re-verifies it, so a wrong entry fails loudly instead of
// silently corrupting a variant.
var warmStarts = struct {
	sync.Mutex
	m map[string]*warmEntry
}{m: map[string]*warmEntry{}}

// resetWarmStarts clears the memo (test hook).
func resetWarmStarts() {
	warmStarts.Lock()
	defer warmStarts.Unlock()
	warmStarts.m = map[string]*warmEntry{}
	burnInRuns.Store(0)
}

// runBurnIn ages a freshly built fleet through the shared pre-aging
// sequence (§VI-B's synchronized aging interval).
func runBurnIn(cfg Config, s *sim.Simulator) error {
	burnInRuns.Add(1)
	for _, pw := range weatherSequence(cfg.Seed, rng.ExpBurnIn, 0.5, preAgeDays(cfg)) {
		if _, err := s.RunDay(pw); err != nil {
			return err
		}
	}
	return nil
}

// preAge brings s to the "old" battery stage. agingKey discriminates which
// policy manages the fleet while it ages ("neutral" for the synchronized
// burn-in, the policy name for own-aging deployment runs); build must
// construct a simulator equivalent to s with that aging policy installed.
// The first caller per (config, agingKey) runs the burn-in on a fresh
// simulator and checkpoints it; everyone — including that first caller's s
// — restores the checkpoint, so the warm path exercises exactly one code
// path regardless of cache state.
func preAge(cfg Config, s *sim.Simulator, agingKey string, build func() (*sim.Simulator, error)) error {
	if warmStartOff.Load() {
		return runBurnIn(cfg, s)
	}
	hash, err := s.ConfigHash()
	if err != nil {
		return err
	}
	key := hash + "/" + agingKey

	warmStarts.Lock()
	e := warmStarts.m[key]
	if e == nil {
		e = &warmEntry{}
		warmStarts.m[key] = e
	}
	warmStarts.Unlock()

	e.once.Do(func() {
		fresh, err := build()
		if err != nil {
			e.err = err
			return
		}
		if err := runBurnIn(cfg, fresh); err != nil {
			e.err = err
			return
		}
		var buf bytes.Buffer
		if err := fresh.Checkpoint(&buf); err != nil {
			e.err = err
			return
		}
		e.data = buf.Bytes()
	})
	if e.err != nil {
		return e.err
	}
	return s.ResumeFrom(bytes.NewReader(e.data))
}
