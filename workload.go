package baat

import (
	"github.com/green-dc/baat/internal/cluster"
	"github.com/green-dc/baat/internal/cost"
	"github.com/green-dc/baat/internal/rng"
	"github.com/green-dc/baat/internal/vm"
	"github.com/green-dc/baat/internal/workload"
)

// WorkloadKind identifies one of the six prototype workloads (§V-B).
type WorkloadKind = workload.Kind

// The six workloads: three HiBench jobs and three CloudSuite applications.
const (
	NutchIndexing   = workload.NutchIndexing
	KMeans          = workload.KMeans
	WordCount       = workload.WordCount
	SoftwareTesting = workload.SoftwareTesting
	WebServing      = workload.WebServing
	DataAnalytics   = workload.DataAnalytics
)

// WorkloadKinds lists the six workloads in paper order.
func WorkloadKinds() []WorkloadKind { return workload.Kinds() }

// WorkloadProfile describes a workload's utilization shape, total work, and
// Table 3 demand class.
type WorkloadProfile = workload.Profile

// WorkloadProfiles returns the built-in profile library.
func WorkloadProfiles() map[WorkloadKind]WorkloadProfile { return workload.Profiles() }

// WorkloadProfileFor returns the built-in profile for a workload kind.
func WorkloadProfileFor(k WorkloadKind) (WorkloadProfile, error) { return workload.ProfileFor(k) }

// PrototypeServices returns the six workloads as persistent services —
// the prototype's static per-server assignment (§V-B).
func PrototypeServices() []WorkloadProfile { return workload.PrototypeServices() }

// WorkloadGenerator produces job arrival sequences for multi-day runs.
type WorkloadGenerator = workload.Generator

// RandomStream is a named, serializable random substream (see NewStream).
type RandomStream = rng.Stream

// NewStream derives the named random substream of a seed. The same
// (seed, name) pair always yields the same sequence, and the stream's
// exact position round-trips through MarshalBinary/UnmarshalBinary.
func NewStream(seed int64, name string) *RandomStream { return rng.New(seed, name) }

// StreamCLIWeather names the substream drawing mixed-weather day sequences
// in cmd/baatsim and the golden-trace fixtures (see NewStream).
const StreamCLIWeather = rng.CLIWeather

// NewWorkloadGenerator builds a generator drawing uniformly from kinds
// (all six when empty).
func NewWorkloadGenerator(stream *RandomStream, kinds ...WorkloadKind) (*WorkloadGenerator, error) {
	return workload.NewGenerator(stream, kinds...)
}

// VM is one schedulable virtual machine.
type VM = vm.VM

// VMState is a VM lifecycle state.
type VMState = vm.Lifecycle

// VM lifecycle states.
const (
	VMRunning   = vm.Running
	VMPaused    = vm.Paused
	VMMigrating = vm.Migrating
	VMCompleted = vm.Completed
)

// DefaultMigrationTime is how long a live migration pauses a VM.
const DefaultMigrationTime = vm.DefaultMigrationTime

// NewVM creates a VM hosting the given workload profile.
func NewVM(id string, p WorkloadProfile) (*VM, error) { return vm.New(id, p) }

// MigrateVM moves a VM between nodes, charging the transfer pause (§IV-C).
var MigrateVM = coreMigrateVM

// CostModel carries the battery/server price book and planning horizon for
// the §VI-D economics (Figs 16–17).
type CostModel = cost.Model

// DefaultCostModel returns prototype-scale prices.
func DefaultCostModel() CostModel { return cost.DefaultModel() }

// Controller is the central BAAT monitoring/actuation endpoint of the
// distributed control plane (Fig 7).
type Controller = cluster.Controller

// ControllerConfig parameterizes the controller.
type ControllerConfig = cluster.ControllerConfig

// Agent connects one battery node to the controller over TCP.
type Agent = cluster.Agent

// AgentConfig parameterizes an agent.
type AgentConfig = cluster.AgentConfig

// NodeReport is one sensor report in the control plane (Table 2 plus the
// five metrics).
type NodeReport = cluster.Report

// NodeCommand is one controller actuation.
type NodeCommand = cluster.Command

// Control-plane actions.
const (
	ActionSetFrequency = cluster.ActionSetFrequency
	ActionSetFloor     = cluster.ActionSetFloor
	ActionSetPowered   = cluster.ActionSetPowered
	ActionPing         = cluster.ActionPing
)

// ListenController starts a controller on the given TCP address.
func ListenController(cfg ControllerConfig) (*Controller, error) {
	return cluster.ListenController(cfg)
}

// DefaultControllerConfig returns local controller defaults.
func DefaultControllerConfig(addr string) ControllerConfig {
	return cluster.DefaultControllerConfig(addr)
}

// StartAgent connects a node to the controller and starts reporting.
func StartAgent(cfg AgentConfig, handle cluster.NodeHandle) (*Agent, error) {
	return cluster.StartAgent(cfg, handle)
}

// DefaultAgentConfig returns local agent defaults for a controller address.
func DefaultAgentConfig(addr string) AgentConfig { return cluster.DefaultAgentConfig(addr) }

// NewLocalNode wraps a Node as a control-plane handle.
func NewLocalNode(n *Node) (*cluster.LocalNode, error) { return cluster.NewLocalNode(n) }
