package node

// Property tests over the node snapshot/restore pair: for any reachable
// node state — VMs attached, ticks stepped, sensor faults installed —
// Restore(Snapshot()) is the identity, and corrupted snapshots are
// rejected without mutating the node.

import (
	"math"
	"math/rand/v2"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"github.com/green-dc/baat/internal/units"
	"github.com/green-dc/baat/internal/workload"
)

// walkedNode builds a node with a hosted service and steps it through a
// random solar trace so the snapshot covers live battery, aging, table,
// and sensor state.
func walkedNode(t *testing.T, seed int64) *Node {
	t.Helper()
	n := newNode(t, func(c *Config) { c.AgingConfig.AccelFactor = 20 })
	attachVM(t, n, "vm-1", workload.WebServing)
	rng := rand.New(rand.NewPCG(uint64(seed), 0))
	for i := 0; i < 50; i++ {
		solar := units.Watt(rng.Float64() * 400)
		if _, err := n.Step(time.Minute, solar, solar/2); err != nil {
			t.Fatal(err)
		}
	}
	return n
}

// TestQuickNodeSnapshotRestoreIdentity: a node restored from a snapshot
// reports that snapshot exactly, however far it has drifted since.
func TestQuickNodeSnapshotRestoreIdentity(t *testing.T) {
	prop := func(seed int64) bool {
		n := walkedNode(t, seed)
		want := n.Snapshot()

		// Drift: more ticks move the clock, battery, and aging state.
		rng := rand.New(rand.NewPCG(uint64(seed), 1))
		for i := 0; i < 25; i++ {
			if _, err := n.Step(time.Minute, units.Watt(rng.Float64()*400), 0); err != nil {
				t.Fatal(err)
			}
		}
		if err := n.Restore(want); err != nil {
			t.Logf("seed %d: restore of own snapshot rejected: %v", seed, err)
			return false
		}
		return reflect.DeepEqual(n.Snapshot(), want)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestQuickNodeRestoreRejectsCorrupt: a poisoned snapshot — wrong identity,
// NaN, negative counters, inconsistent ticks, out-of-range sensor mode —
// must fail loudly and leave the node byte-identical.
func TestQuickNodeRestoreRejectsCorrupt(t *testing.T) {
	corruptions := []struct {
		name string
		f    func(*State)
	}{
		{"wrong node id", func(st *State) { st.ID = "someone-else" }},
		{"negative clock", func(st *State) { st.Clock = -time.Second }},
		{"nan soc floor", func(st *State) { st.SoCFloor = math.NaN() }},
		{"floor at one", func(st *State) { st.SoCFloor = 1 }},
		{"nan utility energy", func(st *State) { st.UtilityWh = units.WattHour(math.NaN()) }},
		{"negative solar energy", func(st *State) { st.SolarWh = -1 }},
		{"down exceeds total", func(st *State) { st.DownTicks = st.TotalTicks + 1 }},
		{"negative missed", func(st *State) { st.Missed = -1 }},
		{"negative quarantine", func(st *State) { st.SuspectUntil = -time.Minute }},
		{"unknown sensor mode", func(st *State) { st.Sensor.Mode = 99 }},
		{"nan pack soc", func(st *State) { st.Pack.SoC = math.NaN() }},
		{"negative tracker ah", func(st *State) { st.Tracker.AhOut = -1 }},
		{"nan model fade", func(st *State) { st.Model.CapFade = math.NaN() }},
	}
	prop := func(seed int64, which uint8) bool {
		n := walkedNode(t, seed)
		before := n.Snapshot()
		c := corruptions[int(which)%len(corruptions)]
		st := before
		c.f(&st)
		if err := n.Restore(st); err == nil {
			t.Logf("seed %d: corrupt state (%s) accepted", seed, c.name)
			return false
		}
		return reflect.DeepEqual(n.Snapshot(), before)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
