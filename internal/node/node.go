// Package node composes one battery node of the distributed energy-storage
// architecture: a server with its individual battery unit, the sensor chain
// filling its power table, and the aging bookkeeping the BAAT controller
// reads (DSN'15 Fig 7, per-server integration).
//
// Each simulation tick the node routes power: solar feeds the server first,
// surplus charges the battery, and shortfall discharges the battery through
// the inverter. If neither solar nor battery (nor utility, when allowed)
// can carry the load, the server goes dark and its VMs checkpoint — the
// single-point-of-failure scenario of §VI-E.
package node

import (
	"fmt"
	"math"
	"time"

	"github.com/green-dc/baat/internal/aging"
	"github.com/green-dc/baat/internal/battery"
	"github.com/green-dc/baat/internal/faults"
	"github.com/green-dc/baat/internal/powernet"
	"github.com/green-dc/baat/internal/server"
	"github.com/green-dc/baat/internal/telemetry"
	"github.com/green-dc/baat/internal/units"
)

// Config assembles one node.
type Config struct {
	BatterySpec battery.Spec
	ServerSpec  server.Spec
	AgingConfig aging.ModelConfig
	Losses      powernet.Losses

	// Ambient is the machine-room temperature.
	Ambient units.Celsius

	// TableCapacity bounds the power-table history (default 2048 rows).
	TableCapacity int

	// UtilityBackup allows falling back to grid power instead of going
	// dark when solar+battery cannot carry the load. The paper's green
	// experiments run without it during the solar window.
	UtilityBackup bool

	// SoCFloor is the state of charge below which the node refuses to
	// discharge its battery (on top of the pack's own voltage protection).
	// Policies adjust it at runtime (planned aging, §IV-D).
	SoCFloor float64

	// SensorQuarantine is how long the node's aging metrics stay flagged
	// untrustworthy after the sensor chain delivered an implausible sample
	// or went stale. While quarantined, MetricsSuspect reports true and
	// the BAAT policies fall back to conservative decisions. Zero selects
	// the DefaultSensorQuarantine.
	SensorQuarantine time.Duration

	// StaleAfter is how many consecutive missed sensor samples (dropped
	// readings) make the metrics stale enough to quarantine. Zero selects
	// DefaultStaleAfter.
	StaleAfter int

	// BatteryOptions customize the pack (manufacturing variation etc.).
	BatteryOptions []battery.Option

	// Telemetry instruments the node and its battery pack (dark ticks,
	// utility ticks, pack step counters). Nil leaves the node
	// un-instrumented at no cost.
	Telemetry *telemetry.Recorder
}

// DefaultConfig returns a prototype-scale node configuration.
func DefaultConfig() Config {
	return Config{
		// The prototype pairs two 12 V 35 Ah units per server (twelve
		// batteries behind six servers, Fig 11).
		BatterySpec:   battery.Parallel(battery.DefaultSpec(), 2),
		ServerSpec:    server.DefaultSpec(),
		AgingConfig:   aging.DefaultModelConfig(),
		Losses:        powernet.DefaultLosses(),
		Ambient:       25,
		TableCapacity: 2048,
		SoCFloor:      0.05,
	}
}

// WithBatteryModel returns a copy of c re-based on the stock battery spec
// and aging constants for the given model tier, preserving the
// acceleration factor. Selecting the reference tier reproduces
// DefaultConfig's battery exactly, so -battery-model=leadacid is
// indistinguishable from — and checkpoint-hash-identical to — the
// default.
func (c Config) WithBatteryModel(k battery.Kind) (Config, error) {
	spec, err := battery.DefaultSpecFor(k)
	if err != nil {
		return Config{}, err
	}
	acfg, err := aging.DefaultModelConfigFor(k)
	if err != nil {
		return Config{}, err
	}
	acfg.AccelFactor = c.AgingConfig.AccelFactor
	c.BatterySpec = spec
	c.AgingConfig = acfg
	return c, nil
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if err := c.BatterySpec.Validate(); err != nil {
		return err
	}
	if err := c.ServerSpec.Validate(); err != nil {
		return err
	}
	if err := c.AgingConfig.Validate(); err != nil {
		return err
	}
	if bk, ak := c.BatterySpec.Chemistry.Normalize(), c.AgingConfig.Chemistry.Normalize(); bk != ak {
		return fmt.Errorf("node: battery spec chemistry %q does not match aging chemistry %q", bk, ak)
	}
	if err := c.Losses.Validate(); err != nil {
		return err
	}
	if c.TableCapacity <= 0 {
		return fmt.Errorf("node: table capacity must be positive, got %d", c.TableCapacity)
	}
	if c.SoCFloor < 0 || c.SoCFloor >= 1 {
		return fmt.Errorf("node: SoC floor must be in [0, 1), got %v", c.SoCFloor)
	}
	if c.SensorQuarantine < 0 {
		return fmt.Errorf("node: sensor quarantine must be non-negative, got %v", c.SensorQuarantine)
	}
	if c.StaleAfter < 0 {
		return fmt.Errorf("node: stale-after must be non-negative, got %d", c.StaleAfter)
	}
	return nil
}

// DefaultSensorQuarantine is how long metrics stay suspect after a bad or
// stale sample when Config.SensorQuarantine is zero: two default control
// periods, so a recovered sensor is trusted again within a couple of
// control decisions rather than instantly.
const DefaultSensorQuarantine = 10 * time.Minute

// DefaultStaleAfter is how many consecutive lost samples quarantine the
// metrics when Config.StaleAfter is zero.
const DefaultStaleAfter = 3

// StepResult summarizes one tick of node operation.
type StepResult struct {
	// Demand is the server draw the node tried to satisfy.
	Demand units.Watt
	// SolarUsed is solar power consumed (load + charging), at the bus.
	SolarUsed units.Watt
	// BatteryPower is terminal battery power: positive discharging into
	// the load, negative charging.
	BatteryPower units.Watt
	// UtilityPower is grid draw (only with UtilityBackup).
	UtilityPower units.Watt
	// Down reports the server spent the tick dark.
	Down bool
	// WorkDone is the compute work completed this tick.
	WorkDone float64
	// Source is the dominant feed this tick.
	Source powernet.Source
}

// Node is one server+battery unit.
//
// A single Node is not safe for concurrent use, but distinct Nodes are
// fully independent: every field a Step/StepOffline touches (pack, server,
// tracker, model, power table) is owned by that node, and the only shared
// state — telemetry counters — is atomic. The simulator's parallel fleet
// stepping relies on this: stepping disjoint nodes from multiple
// goroutines is race-free and produces results identical to serial order.
type Node struct {
	id      string
	cfg     Config
	srv     *server.Server
	batt    battery.Model
	tracker *aging.Tracker
	model   *aging.Model
	table   *powernet.PowerTable

	// pack/lin hold the same model as batt, as a concrete typed pointer
	// (exactly one is non-nil, fixed at construction). The per-tick paths
	// dispatch through the batt* leaf helpers below, which nil-check these
	// and make direct calls the compiler can inline — one devirtualized
	// call per node per tick is a measurable win at warehouse scale, and
	// it is what the per-chemistry batch kernels in internal/battery lean
	// on for columnar reads.
	pack *battery.Pack
	lin  *battery.Linear

	clock    time.Duration
	socFloor float64

	utilityWh  units.WattHour
	solarWh    units.WattHour
	downTicks  int
	totalTicks int

	// hrDt/hrVal memoize dt.Hours() for the per-tick energy integration
	// (Step validates dt > 0 first). A hit returns the identical division
	// result, so accumulated energies are bit-for-bit unchanged.
	hrDt  time.Duration
	hrVal float64

	// Sensor-chain fault state: the corruption applied to the *reported*
	// battery sample this tick (the aging model always observes the
	// truth), the last reading actually delivered (replayed by a stuck
	// sensor), and the suspect/quarantine bookkeeping that tells the
	// controller when to stop trusting the metrics.
	sensor       faults.SensorFault
	lastSample   aging.Sample
	haveSample   bool
	missed       int // consecutive samples the tracker never received
	rejected     int // total samples rejected as implausible
	dropped      int // total samples lost outright
	suspectUntil time.Duration
	quarantine   time.Duration
	staleAfter   int

	// utilityDown gates the UtilityBackup path (injected brownouts).
	utilityDown bool

	// Telemetry handles (nil no-ops unless Config.Telemetry was set).
	telDark       *telemetry.Counter
	telUtility    *telemetry.Counter
	telSensorBad  *telemetry.Counter
	telSensorLost *telemetry.Counter
}

// New assembles a node.
func New(id string, cfg Config) (*Node, error) {
	n := new(Node)
	if err := NewInto(n, id, cfg, Parts{}); err != nil {
		return nil, err
	}
	return n, nil
}

// Parts is caller-provided storage for a node's components. A fleet that
// lays batteries, servers, trackers, models, and power-table rows out in
// contiguous slabs passes pointers into those slabs here; NewInto
// initializes each component in place. Any nil part is heap-allocated
// individually, so the zero Parts reproduces New exactly. TableRows, when
// non-nil, backs the power table and must have length Config.TableCapacity
// and not be shared with any other table.
type Parts struct {
	Server *server.Server
	// Pack backs the electrochemical tiers (lead-acid, LFP); Linear backs
	// the coulomb-counting tier. Only the one matching the config's
	// chemistry is used; the other may stay nil.
	Pack      *battery.Pack
	Linear    *battery.Linear
	Tracker   *aging.Tracker
	Model     *aging.Model
	Table     *powernet.PowerTable
	TableRows []powernet.Reading
	// TableStride is the element distance between this node's consecutive
	// ring slots within TableRows (zero means dense). A fleet interleaves
	// every node's slot j into one band of a shared slab so the per-tick
	// table writes stream sequentially across nodes; see
	// powernet.NewPowerTableStridedInto.
	TableStride int
}

// NewInto assembles a node in place, overwriting *n and initializing its
// components into the storage parts provides (allocating whatever parts
// leaves nil). The resulting node is identical to one built by New.
func NewInto(n *Node, id string, cfg Config, parts Parts) error {
	if id == "" {
		return fmt.Errorf("node: id must not be empty")
	}
	if err := cfg.Validate(); err != nil {
		return fmt.Errorf("node %s: %w", id, err)
	}
	srv := parts.Server
	if srv == nil {
		srv = new(server.Server)
	}
	if err := server.NewInto(srv, id+"/server", cfg.ServerSpec); err != nil {
		return err
	}
	// The battery's recorder option goes first so an explicit WithRecorder
	// in BatteryOptions can still override it.
	packOpts := append([]battery.Option{battery.WithRecorder(cfg.Telemetry)}, cfg.BatteryOptions...)
	var batt battery.Model
	var cpack *battery.Pack
	var clin *battery.Linear
	if cfg.BatterySpec.Chemistry.Normalize() == battery.KindLinear {
		clin = parts.Linear
		if clin == nil {
			clin = new(battery.Linear)
		}
		if err := battery.NewLinearInto(clin, cfg.BatterySpec, packOpts...); err != nil {
			return err
		}
		batt = clin
	} else {
		cpack = parts.Pack
		if cpack == nil {
			cpack = new(battery.Pack)
		}
		if err := battery.NewInto(cpack, cfg.BatterySpec, packOpts...); err != nil {
			return err
		}
		batt = cpack
	}
	tracker := parts.Tracker
	if tracker == nil {
		tracker = new(aging.Tracker)
	}
	if err := aging.NewTrackerInto(tracker, cfg.BatterySpec.LifetimeThroughput); err != nil {
		return err
	}
	model := parts.Model
	if model == nil {
		model = new(aging.Model)
	}
	if err := aging.NewModelInto(model, cfg.AgingConfig, cfg.BatterySpec.NominalCapacity); err != nil {
		return err
	}
	rows := parts.TableRows
	stride := parts.TableStride
	if stride <= 0 {
		stride = 1
	}
	if rows == nil {
		rows = make([]powernet.Reading, cfg.TableCapacity)
		stride = 1
	} else if need := (cfg.TableCapacity-1)*stride + 1; len(rows) < need {
		return fmt.Errorf("node %s: %d table rows provided for capacity %d at stride %d (need %d)",
			id, len(rows), cfg.TableCapacity, stride, need)
	}
	table := parts.Table
	if table == nil {
		table = new(powernet.PowerTable)
	}
	if err := powernet.NewPowerTableStridedInto(table, rows, cfg.TableCapacity, stride); err != nil {
		return err
	}
	quarantine := cfg.SensorQuarantine
	if quarantine == 0 {
		quarantine = DefaultSensorQuarantine
	}
	staleAfter := cfg.StaleAfter
	if staleAfter == 0 {
		staleAfter = DefaultStaleAfter
	}
	*n = Node{
		id:            id,
		cfg:           cfg,
		srv:           srv,
		batt:          batt,
		pack:          cpack,
		lin:           clin,
		tracker:       tracker,
		model:         model,
		table:         table,
		socFloor:      cfg.SoCFloor,
		quarantine:    quarantine,
		staleAfter:    staleAfter,
		telDark:       cfg.Telemetry.Counter(telemetry.MetricNodeDarkTicks),
		telUtility:    cfg.Telemetry.Counter(telemetry.MetricNodeUtilityTicks),
		telSensorBad:  cfg.Telemetry.Counter(telemetry.MetricNodeSensorRejected),
		telSensorLost: cfg.Telemetry.Counter(telemetry.MetricNodeSensorMissed),
	}
	return nil
}

// ID returns the node identifier.
func (n *Node) ID() string { return n.id }

// Server exposes the compute side for VM placement and DVFS control.
func (n *Node) Server() *server.Server { return n.srv }

// Battery exposes the battery model for read-mostly inspection.
func (n *Node) Battery() battery.Model { return n.batt }

// The batt* helpers dispatch to the concrete battery tier with a nil check
// instead of an interface call. Each is a leaf small enough to inline, so
// the hot tick paths pay a predictable branch rather than a virtual call
// per node per tick.

// SoC returns the battery's state of charge in [0, 1] without an
// interface call — the fleet summary and SoC ordering read it for every
// node every tick.
func (n *Node) SoC() float64 {
	if n.pack != nil {
		return n.pack.SoC()
	}
	return n.lin.SoC()
}

// Health returns the battery's remaining-capacity fraction without an
// interface call.
func (n *Node) Health() float64 {
	if n.pack != nil {
		return n.pack.Health()
	}
	return n.lin.Health()
}

// NAT returns the node's normalized Ah throughput (Eq 1) alone, without
// assembling the full aging.Metrics snapshot. The per-tick fleet summary
// reads only this metric; Metrics remains the full snapshot for control
// decisions.
func (n *Node) NAT() float64 { return n.tracker.NAT() }

func (n *Node) battTemperature() units.Celsius {
	if n.pack != nil {
		return n.pack.Temperature()
	}
	return n.lin.Temperature()
}

func (n *Node) battCutOff() bool {
	if n.pack != nil {
		return n.pack.CutOff()
	}
	return n.lin.CutOff()
}

func (n *Node) battMaxDischargePower() units.Watt {
	if n.pack != nil {
		return n.pack.MaxDischargePower()
	}
	return n.lin.MaxDischargePower()
}

func (n *Node) battMaxChargePower() units.Watt {
	if n.pack != nil {
		return n.pack.MaxChargePower()
	}
	return n.lin.MaxChargePower()
}

func (n *Node) battOpenCircuitVoltage() units.Volt {
	if n.pack != nil {
		return n.pack.OpenCircuitVoltage()
	}
	return n.lin.OpenCircuitVoltage()
}

func (n *Node) battTerminalVoltage(i units.Ampere) units.Volt {
	if n.pack != nil {
		return n.pack.TerminalVoltage(i)
	}
	return n.lin.TerminalVoltage(i)
}

func (n *Node) battDischarge(pw units.Watt, dt time.Duration, amb units.Celsius) (battery.StepResult, error) {
	if n.pack != nil {
		return n.pack.Discharge(pw, dt, amb)
	}
	return n.lin.Discharge(pw, dt, amb)
}

func (n *Node) battCharge(pw units.Watt, dt time.Duration, amb units.Celsius) (battery.StepResult, error) {
	if n.pack != nil {
		return n.pack.Charge(pw, dt, amb)
	}
	return n.lin.Charge(pw, dt, amb)
}

func (n *Node) battRest(dt time.Duration, amb units.Celsius) error {
	if n.pack != nil {
		return n.pack.Rest(dt, amb)
	}
	return n.lin.Rest(dt, amb)
}

func (n *Node) battApplyDegradation(d battery.Degradation) {
	if n.pack != nil {
		n.pack.ApplyDegradation(d)
		return
	}
	n.lin.ApplyDegradation(d)
}

// Metrics returns the five aging metrics computed from the node's history.
func (n *Node) Metrics() aging.Metrics { return n.tracker.Metrics() }

// ResetMetrics clears the metric tracker while keeping the battery's
// accumulated damage. The evaluation uses this to measure one day's metric
// log on an already-aged battery (§VI-B runs each scheme for one recorded
// day at the "young" and "old" aging stages).
func (n *Node) ResetMetrics() { n.tracker.Reset() }

// AgingModel exposes the damage integrator (for lifetime prediction).
func (n *Node) AgingModel() *aging.Model { return n.model }

// PowerTable returns the sensor history log.
func (n *Node) PowerTable() *powernet.PowerTable { return n.table }

// Clock returns accumulated simulated time.
func (n *Node) Clock() time.Duration { return n.clock }

// SoCFloor returns the discharge floor currently enforced.
func (n *Node) SoCFloor() float64 { return n.socFloor }

// SetSoCFloor adjusts the discharge floor; planned aging sets it to
// 1 − DoD_goal (§IV-D).
func (n *Node) SetSoCFloor(f float64) error {
	if f < 0 || f >= 1 {
		return fmt.Errorf("node %s: SoC floor must be in [0, 1), got %v", n.id, f)
	}
	n.socFloor = f
	return nil
}

// SetSensorFault installs the sensor-chain corruption applied to the
// node's *reported* battery sample from the next step on (the aging model
// keeps observing the truth — damage physics are not fooled by a broken
// DAQ). The zero value restores a healthy sensor chain. The simulator
// resolves the fault deterministically before the parallel fan-out, so
// calling this from inside a step worker is not allowed.
func (n *Node) SetSensorFault(f faults.SensorFault) { n.sensor = f }

// SensorFault returns the sensor-chain corruption currently applied (the
// zero value for a healthy chain).
func (n *Node) SensorFault() faults.SensorFault { return n.sensor }

// SetUtilityAvailable gates the UtilityBackup path at runtime: during an
// injected utility brownout the node cannot fall back to grid power even
// when Config.UtilityBackup is set.
func (n *Node) SetUtilityAvailable(available bool) { n.utilityDown = !available }

// UtilityAvailable reports whether the grid-backup path is currently
// usable (Config.UtilityBackup set and no brownout in effect).
func (n *Node) UtilityAvailable() bool { return n.cfg.UtilityBackup && !n.utilityDown }

// InjectBatteryWear books sudden, irreversible battery damage — a cell
// failure, not gradual wear — through the aging model so the pack and the
// damage ledger stay consistent.
func (n *Node) InjectBatteryWear(capFade, resGrowth, effLoss float64) {
	n.model.InjectDamage(capFade, resGrowth, effLoss)
	n.battApplyDegradation(n.model.Degradation())
}

// MetricsSuspect reports whether the node's aging metrics are currently
// quarantined: the sensor chain recently delivered implausible samples or
// went stale, so DDT/DR/NAT readings may be garbage and the controller
// should fall back to conservative decisions.
func (n *Node) MetricsSuspect() bool { return n.clock < n.suspectUntil }

// SensorRejected returns how many samples the tracker rejected as
// implausible over the node's lifetime.
func (n *Node) SensorRejected() int { return n.rejected }

// SensorDropped returns how many samples were lost before reaching the
// tracker over the node's lifetime.
func (n *Node) SensorDropped() int { return n.dropped }

// Demand returns the power the node's server wants right now if powered
// (used by the bus allocator before Step). A node with no active VMs is
// scheduled off and demands nothing.
func (n *Node) Demand() units.Watt {
	if n.srv.ActiveVMCount() == 0 {
		return 0
	}
	if n.srv.Powered() {
		return n.srv.Power()
	}
	// A dark server still reports what it would draw if revived, so the
	// allocator can decide whether to bring it back.
	n.srv.SetPowered(true)
	d := n.srv.Power()
	n.srv.SetPowered(false)
	return d
}

// ChargeRequest returns the maximum solar power (at the bus, before charger
// loss) the battery could absorb this tick.
func (n *Node) ChargeRequest() units.Watt {
	mcp := n.battMaxChargePower()
	if mcp == 0 {
		return 0
	}
	return units.Watt(float64(mcp) / n.cfg.Losses.ChargerEfficiency)
}

// hours returns dt.Hours() memoized on dt.
func (n *Node) hours(dt time.Duration) float64 {
	if dt != n.hrDt {
		n.hrDt, n.hrVal = dt, dt.Hours()
	}
	return n.hrVal
}

// batteryAvailable reports whether discharging is currently permitted.
func (n *Node) batteryAvailable() bool {
	return !n.battCutOff() && n.SoC() > n.socFloor
}

// Step advances the node by dt. solarForLoad is bus solar power granted for
// the server feed; solarForCharge is bus solar granted for battery charging.
func (n *Node) Step(dt time.Duration, solarForLoad, solarForCharge units.Watt) (StepResult, error) {
	if dt <= 0 {
		return StepResult{}, fmt.Errorf("node %s: step duration must be positive, got %v", n.id, dt)
	}
	if solarForLoad < 0 || solarForCharge < 0 {
		return StepResult{}, fmt.Errorf("node %s: negative solar allocation (%v, %v)", n.id, solarForLoad, solarForCharge)
	}
	res := StepResult{}

	// A node with no active VMs is scheduled off: no idle burn, no
	// downtime accounting — the prototype only powers servers that host
	// work (§V-B). Any solar grant charges the battery.
	if n.srv.ActiveVMCount() == 0 {
		n.srv.SetPowered(false)
		off, err := n.StepOffline(dt, solarForLoad+solarForCharge)
		if err != nil {
			return StepResult{}, err
		}
		n.totalTicks++
		return off, nil
	}

	// Decide whether the server can run this tick. Recovery needs either
	// direct solar coverage or battery above floor with margin, giving a
	// little hysteresis against flapping.
	wasDown := !n.srv.Powered()
	n.srv.SetPowered(true)
	demand := n.srv.Power()
	res.Demand = demand

	solarDeliverable := units.Watt(float64(solarForLoad) * n.cfg.Losses.SolarDirectEfficiency)
	deficit := demand - solarDeliverable
	canRecover := !wasDown || solarDeliverable >= demand || n.SoC() > n.socFloor+0.05

	run := true
	var batteryNeed units.Watt
	if deficit > 0 {
		// Battery must bridge deficit through the inverter.
		batteryNeed = units.Watt(float64(deficit) / n.cfg.Losses.InverterEfficiency)
		if !canRecover || !n.batteryAvailable() || n.battMaxDischargePower() < batteryNeed {
			if n.UtilityAvailable() {
				res.UtilityPower = deficit
				res.Source = powernet.SourceUtility
				batteryNeed = 0
				n.telUtility.Inc()
			} else {
				run = false
			}
		}
	}

	var sr battery.StepResult
	var err error
	if run {
		res.SolarUsed = solarForLoad
		if demand > 0 && solarDeliverable >= demand {
			// Solar alone carries the load; excess granted for the load is
			// returned (only what was needed is counted).
			res.SolarUsed = units.Watt(float64(demand) / n.cfg.Losses.SolarDirectEfficiency)
			if res.Source == powernet.SourceNone {
				res.Source = powernet.SourceSolar
			}
		}
		if batteryNeed > 0 {
			sr, err = n.battDischarge(batteryNeed, dt, n.cfg.Ambient)
			if err != nil {
				return StepResult{}, err
			}
			if sr.CutOff {
				// The pack tripped mid-step: treat the tick as dark.
				run = false
			} else {
				res.BatteryPower = units.Watt(float64(sr.Voltage) * float64(sr.Current))
				if solarDeliverable > 0 {
					res.Source = powernet.SourceMixed
				} else {
					res.Source = powernet.SourceBattery
				}
			}
		}
	}

	if !run {
		// Dark tick: server checkpoints; all granted solar charges the pack.
		n.srv.SetPowered(false)
		res.Down = true
		res.SolarUsed = 0
		res.Source = powernet.SourceNone
		solarForCharge += solarForLoad
		n.downTicks++
		n.telDark.Inc()
	}

	// Charging with the charge allocation (plus reclaimed load solar on a
	// dark tick).
	if solarForCharge > 0 && res.BatteryPower == 0 {
		chargePower := units.Watt(float64(solarForCharge) * n.cfg.Losses.ChargerEfficiency)
		cr, cerr := n.battCharge(chargePower, dt, n.cfg.Ambient)
		if cerr != nil {
			return StepResult{}, cerr
		}
		if cr.Charge != 0 {
			accepted := -float64(cr.Energy) / n.hours(dt) // battery-side watts
			res.SolarUsed += units.Watt(accepted / n.cfg.Losses.ChargerEfficiency)
			res.BatteryPower = units.Watt(-accepted)
			sr = cr
		}
	} else if res.BatteryPower == 0 {
		if rerr := n.battRest(dt, n.cfg.Ambient); rerr != nil {
			return StepResult{}, rerr
		}
	}

	// Advance compute and bookkeeping.
	res.WorkDone = n.srv.Step(dt)
	n.clock += dt
	n.totalTicks++
	hrs := n.hours(dt)
	n.solarWh += units.WattHour(float64(res.SolarUsed) * hrs) // units.EnergyOver, memoized hours
	n.utilityWh += units.WattHour(float64(res.UtilityPower) * hrs)

	if err := n.observe(dt, sr, res.Source); err != nil {
		return StepResult{}, err
	}
	return res, nil
}

// StepOffline advances the node through a tick outside the operating
// window (the prototype shuts servers down after 18:30, §V-B): the server is
// off by schedule — not counted as downtime — while the battery charges from
// any solar grant or rests.
func (n *Node) StepOffline(dt time.Duration, solarForCharge units.Watt) (StepResult, error) {
	if dt <= 0 {
		return StepResult{}, fmt.Errorf("node %s: step duration must be positive, got %v", n.id, dt)
	}
	if solarForCharge < 0 {
		return StepResult{}, fmt.Errorf("node %s: negative solar allocation %v", n.id, solarForCharge)
	}
	n.srv.SetPowered(false)
	res := StepResult{Source: powernet.SourceNone}

	var sr battery.StepResult
	if solarForCharge > 0 {
		chargePower := units.Watt(float64(solarForCharge) * n.cfg.Losses.ChargerEfficiency)
		cr, err := n.battCharge(chargePower, dt, n.cfg.Ambient)
		if err != nil {
			return StepResult{}, err
		}
		if cr.Charge != 0 {
			accepted := -float64(cr.Energy) / n.hours(dt)
			res.SolarUsed = units.Watt(accepted / n.cfg.Losses.ChargerEfficiency)
			res.BatteryPower = units.Watt(-accepted)
			res.Source = powernet.SourceSolar
			sr = cr
		}
	} else {
		if rerr := n.battRest(dt, n.cfg.Ambient); rerr != nil {
			return StepResult{}, rerr
		}
	}

	n.clock += dt
	n.solarWh += units.WattHour(float64(res.SolarUsed) * n.hours(dt)) // units.EnergyOver, memoized hours

	if err := n.observe(dt, sr, res.Source); err != nil {
		return StepResult{}, err
	}
	return res, nil
}

// observe closes out a step: the true battery sample feeds the damage
// model (physics cannot be fooled by a broken DAQ), while the sensor chain
// — possibly faulted — decides what the aging tracker and the power table
// get to see. Implausible readings the tracker rejects and stale streaks
// quarantine the metrics instead of failing the step: a broken sensor is a
// fault symptom for the controller to degrade around, not a simulation
// error.
func (n *Node) observe(dt time.Duration, sr battery.StepResult, source powernet.Source) error {
	truth := aging.Sample{
		Dt:          dt,
		Current:     sr.Current,
		SoC:         n.SoC(),
		Temperature: n.battTemperature(),
	}

	reported, delivered, quality := n.applySensor(truth)
	accepted := false
	if !delivered {
		n.dropped++
		n.missed++
		n.telSensorLost.Inc()
		if n.missed >= n.staleAfter {
			n.suspectUntil = n.clock + n.quarantine
		}
	} else if err := n.tracker.Observe(reported); err != nil {
		// The tracker's input hardening caught an implausible sample:
		// immediate quarantine. The table will log a sanitized flagged row.
		n.rejected++
		n.missed++
		n.telSensorBad.Inc()
		n.suspectUntil = n.clock + n.quarantine
	} else {
		accepted = true
		n.missed = 0
		n.lastSample = reported
		n.haveSample = true
	}

	if err := n.model.Observe(truth); err != nil {
		return err
	}
	n.battApplyDegradation(n.model.Degradation())

	// The table row is recorded after degradation is applied, like the
	// sensor chain sampling at the end of the interval. A clean chain
	// reports live pack state; a corrupted one reports its own view; a
	// rejected sample leaves a sanitized flagged row; a dropped sample
	// leaves nothing.
	switch {
	case !delivered:
	case !accepted:
		n.table.Record(powernet.Reading{
			At:          n.clock,
			Current:     0,
			Voltage:     n.battOpenCircuitVoltage(),
			Temperature: n.battTemperature(),
			SoC:         n.SoC(),
			Source:      source,
			Quality:     powernet.QualityBad,
		})
	case quality == powernet.QualityGood:
		n.table.Record(powernet.Reading{
			At:          n.clock,
			Current:     reported.Current,
			Voltage:     n.battTerminalVoltage(reported.Current),
			Temperature: n.battTemperature(),
			SoC:         n.SoC(),
			Source:      source,
		})
	default:
		n.table.Record(powernet.Reading{
			At:          n.clock,
			Current:     reported.Current,
			Voltage:     n.battTerminalVoltage(reported.Current),
			Temperature: reported.Temperature,
			SoC:         reported.SoC,
			Source:      source,
			Quality:     quality,
		})
	}
	return nil
}

// applySensor corrupts the true sample per the installed sensor fault and
// reports whether a reading was delivered at all, plus the quality flag
// the power table should carry for it.
func (n *Node) applySensor(truth aging.Sample) (aging.Sample, bool, powernet.Quality) {
	switch n.sensor.Mode {
	case faults.ModeDrop:
		return aging.Sample{}, false, powernet.QualityBad
	case faults.ModeNaN:
		s := truth
		s.Current = units.Ampere(math.NaN())
		return s, true, powernet.QualityBad
	case faults.ModeStuck:
		if n.haveSample {
			s := n.lastSample
			s.Dt = truth.Dt
			return s, true, powernet.QualitySuspect
		}
		// A sensor frozen since power-on repeats its very first reading.
		return truth, true, powernet.QualitySuspect
	case faults.ModeNoise:
		s := truth
		// Relative noise on current with a 1 A absolute floor (so an idle
		// battery still reads noisy), plus small SoC and temperature
		// perturbations. The standard-normal draws were pre-resolved by
		// the injector, keeping this path deterministic under parallel
		// node stepping.
		base := math.Abs(float64(s.Current))
		if base < 1 {
			base = 1
		}
		s.Current += units.Ampere(n.sensor.Sigma * n.sensor.Noise[0] * base)
		s.SoC = units.Clamp01(s.SoC + 0.1*n.sensor.Sigma*n.sensor.Noise[1])
		s.Temperature += units.Celsius(10 * n.sensor.Sigma * n.sensor.Noise[2])
		return s, true, powernet.QualitySuspect
	default:
		return truth, true, powernet.QualityGood
	}
}

// Stats aggregates node-level accounting for experiments.
type Stats struct {
	SolarEnergy   units.WattHour
	UtilityEnergy units.WattHour
	Throughput    float64
	Downtime      time.Duration
	Uptime        time.Duration
	DownFraction  float64
	Health        float64
	SoC           float64
}

// Stats returns the node's accumulated accounting.
func (n *Node) Stats() Stats {
	s := Stats{
		SolarEnergy:   n.solarWh,
		UtilityEnergy: n.utilityWh,
		Throughput:    n.srv.Throughput(),
		Downtime:      n.srv.Downtime(),
		Uptime:        n.srv.Uptime(),
		Health:        n.Health(),
		SoC:           n.SoC(),
	}
	if n.totalTicks > 0 {
		s.DownFraction = float64(n.downTicks) / float64(n.totalTicks)
	}
	return s
}

// SolarEnergy returns accumulated solar consumption — Stats().SolarEnergy
// without assembling the whole Stats value, for per-tick fleet summaries.
func (n *Node) SolarEnergy() units.WattHour { return n.solarWh }

// AtEndOfLife reports whether the battery fell below the 80 % health line.
func (n *Node) AtEndOfLife() bool {
	return n.Health() < battery.EndOfLifeHealth
}
