// Planned aging: if the datacenter will be decommissioned before its
// batteries wear out, BAAT can deliberately spend the unused battery life
// on performance (§IV-D, Figs 21–22). The depth-of-discharge goal of Eq 7
// divides the remaining lifetime Ah budget over the cycles left until the
// datacenter's end-of-life.
//
// The example compares an unplanned BAAT fleet against planned fleets with
// different expected service lives, on identical weather.
//
// Run with:
//
//	go run ./examples/planned-aging
package main

import (
	"fmt"
	"log"

	baat "github.com/green-dc/baat"
)

const (
	accel = 10
	days  = 15 // ≈5 months of aging at the acceleration factor
)

func main() {
	// Shared weather for every variant: a moderately sunny site.
	stream := baat.NewStream(99, "examples/planned-aging")
	loc := baat.Location{SunshineFraction: 0.5}
	weather := make([]baat.Weather, days)
	for i := range weather {
		weather[i] = loc.DrawWeather(stream.Rand)
	}

	// Eq 7 by hand first: how deep should a battery cycle if we want to
	// spend its budget over a given number of remaining cycles?
	spec := baat.DefaultBatterySpec()
	fmt.Println("Eq 7: DoD goal for a", spec.NominalCapacity, "battery with a",
		spec.LifetimeThroughput, "lifetime budget")
	for _, cycles := range []float64{90, 180, 360, 720} {
		goal, err := baat.DoDGoal(spec.LifetimeThroughput, 0, cycles, spec.NominalCapacity)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %4.0f cycles remaining -> DoD goal %.0f%%\n", cycles, goal*100)
	}
	fmt.Println()

	type variant struct {
		name   string
		months string // planned-months policy option; "" = planning off
	}
	variants := []variant{
		{"BAAT (no planning)", ""},
		{"planned, 6-month service life", "6"},
		{"planned, 12-month service life", "12"},
		{"planned, 48-month service life", "48"},
	}

	fmt.Printf("%-32s %12s %14s\n", "variant", "throughput", "worst health")
	for _, v := range variants {
		spec := baat.PolicySpec{Name: "baat"}
		if v.months != "" {
			spec.Options = map[string]string{"planned-months": v.months}
		}
		cfg := baat.DefaultSimConfig()
		cfg.Policy = spec
		cfg.Services = baat.PrototypeServices()
		cfg.JobsPerDay = 2
		cfg.Solar.Scale = 1.15 // tight supply: depth decisions matter
		cfg.Node.AgingConfig.AccelFactor = accel
		sim, err := baat.NewSimulator(cfg)
		if err != nil {
			log.Fatal(err)
		}
		res, err := sim.Run(weather)
		if err != nil {
			log.Fatal(err)
		}
		worst := 1.0
		for _, n := range res.Nodes {
			if n.Health < worst {
				worst = n.Health
			}
		}
		fmt.Printf("%-32s %12.1f %14.3f\n", v.name, res.Throughput, worst)
	}
	fmt.Println("\nshort service lives spend the battery aggressively (up to the 90% DoD")
	fmt.Println("bound); long service lives keep the batteries shallow and durable.")
}
