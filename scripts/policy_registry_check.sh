#!/bin/sh
# policy_registry_check.sh — registry hygiene, part of `make check`.
#
# The policy registry (internal/core/registry.go) is the single construction
# path for control policies: everything outside internal/core must go
# through core.Build/core.Normalize with a core.PolicySpec. This guard fails
# when code reintroduces the pre-registry idioms:
#   1. the deleted closed enum (core.Kind, core.New, the Kind constants);
#   2. direct construction of a concrete policy type outside internal/core
#      (which would bypass option validation and the Stateful wiring);
#   3. a hand-rolled policy-name table outside the registry (switch/map on
#      literal policy names decides behavior the registry should own).
# Usage: ./scripts/policy_registry_check.sh  (from the repository root)
set -eu

fail=0

# Go sources outside internal/core (tests included: they must use the
# public surface too).
files=$(find . -name '*.go' -not -path './internal/core/*' -not -path './.git/*')

# 1. The deleted enum API. Any of these means a migration sweep was undone.
if echo "$files" | xargs grep -nE 'core\.(Kind|New\(|EBuff|BAATSlowdown|BAATHiding|BAATFull|PolicyKinds|Kinds\()' /dev/null; then
    echo "policy-registry-check: deleted core.Kind enum API referenced outside internal/core" >&2
    fail=1
fi

# 2. Concrete policy construction. The concrete types are unexported, so
# this can only appear as a freshly exported leak — catch it by name.
if echo "$files" | xargs grep -nE 'core\.(eBuff|baatSlowdown|baatHiding|baat|baatF)\{' /dev/null; then
    echo "policy-registry-check: concrete policy constructed outside internal/core" >&2
    fail=1
fi

# 3. Hand-rolled policy-name dispatch: a switch or map keyed on the literal
# canonical names duplicates the registry's lookup table. (The experiments
# package pins the paper's fixed Table 4 roster as PolicySpec literals —
# that is data, not dispatch, and does not match these patterns.)
if echo "$files" | xargs grep -nE 'case "(ebuff|e-buff|baat-s|baat-h|baat-f|baats|baath|baatf)"' /dev/null; then
    echo "policy-registry-check: switch on literal policy names outside internal/core (use core.Normalize/core.Build)" >&2
    fail=1
fi

if [ "$fail" -ne 0 ]; then
    exit 1
fi
echo "policy-registry-check: OK"
