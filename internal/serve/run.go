package serve

import (
	"bytes"
	"fmt"
	"net/http"
	"slices"
	"strings"
	"sync"
	"time"

	"github.com/green-dc/baat/internal/core"
	"github.com/green-dc/baat/internal/faults"
	"github.com/green-dc/baat/internal/rng"
	"github.com/green-dc/baat/internal/sim"
	"github.com/green-dc/baat/internal/solar"
	"github.com/green-dc/baat/internal/telemetry"
)

// State is a run's lifecycle phase. The machine:
//
//	created ──start/step──▶ running ──pause/target──▶ paused
//	                          │  ▲                      │
//	                          │  └──────resume/step─────┘
//	                          ├── horizon reached ──▶ done
//	                          └── engine error ─────▶ failed
//
// Delete and server shutdown stop a run in any state.
type State string

// The lifecycle states.
const (
	StateCreated State = "created"
	StateRunning State = "running"
	StatePaused  State = "paused"
	StateDone    State = "done"
	StateFailed  State = "failed"
)

// Error is a structured API failure: an HTTP status, a stable machine-
// readable code, and a human message. Every handler failure marshals as
//
//	{"error": {"code": "...", "message": "..."}}
//
// so clients switch on Code, not on message prose.
type Error struct {
	Status  int    `json:"-"`
	Code    string `json:"code"`
	Message string `json:"message"`
}

// Error implements the error interface.
func (e *Error) Error() string { return e.Message }

// The error codes of the API contract (docs/SERVICE.md).
const (
	CodeBadRequest   = "bad_request"
	CodeRunNotFound  = "run_not_found"
	CodeConflict     = "conflict"
	CodeNoCheckpoint = "no_checkpoint"
	CodeInternal     = "internal"
)

// errf builds a structured API error.
func errf(status int, code, format string, args ...any) *Error {
	return &Error{Status: status, Code: code, Message: fmt.Sprintf(format, args...)}
}

// checkpointRecord pins one day-boundary envelope together with the spec
// and weather sequence that were in force when it was written. Forking
// rebuilds a simulator from the record's spec — not the parent's *current*
// spec, which later mutations may have moved — so the envelope's config
// hash always matches.
type checkpointRecord struct {
	data    []byte
	spec    RunSpec
	weather []solar.Weather
}

// finalSummary is the end-of-run fleet summary, computed once by the run
// goroutine when the horizon completes (it requires simulator access, which
// only that goroutine has).
type finalSummary struct {
	nodes         []sim.NodeSummary
	fleetLifetime time.Duration
	socCounts     []int64
	socTotal      int64
}

// Run is one hosted simulation: a Simulator owned by a single goroutine
// (the loop), a lifecycle state machine driven through the control plane,
// an in-memory checkpoint series, and a subscriber set for SSE streaming.
//
// Ownership discipline: only the loop goroutine touches the Simulator.
// Handlers read and write the bookkeeping fields under mu and communicate
// simulator work to the loop as queued closures (mutations) or state
// transitions (start/pause/step targets); the loop applies both between
// days, where the engine contract allows them.
type Run struct {
	// Immutable after construction.
	id         string
	forkedFrom string
	forkDay    int
	rec        *telemetry.Recorder
	telemetry  http.Handler

	mu   sync.Mutex
	cond *sync.Cond
	// spec is the live scenario; mutations rewrite its fields (always
	// replacing pointer fields, never writing through them, so checkpoint
	// records that copied the struct stay frozen).
	spec    RunSpec
	s       *sim.Simulator
	weather []solar.Weather
	state   State
	// day counts completed days; target is where the loop stops (the
	// horizon after start/resume, an earlier day after step).
	day     int
	target  int
	runErr  error
	stopReq bool
	// pending holds mutation closures the loop applies before the next
	// day; reweather counts sunshine mutations to derive each redraw's
	// rng stream name.
	pending   []func(*sim.Simulator) error
	reweather int

	checkpoints map[int]checkpointRecord
	days        []sim.DayStats
	final       *finalSummary

	subs     map[chan struct{}]struct{}
	loopDone chan struct{}
}

// newRun builds a run from a normalized spec and starts its loop goroutine
// (idle until a start/step transition).
func newRun(id string, sp RunSpec) (*Run, error) {
	rec := telemetry.NewRecorder()
	s, err := buildSim(sp, rec)
	if err != nil {
		return nil, errf(http.StatusBadRequest, CodeBadRequest, "invalid run spec: %v", err)
	}
	r := &Run{
		id:          id,
		rec:         rec,
		telemetry:   rec.Handler(),
		spec:        sp,
		s:           s,
		weather:     weatherFor(sp),
		state:       StateCreated,
		checkpoints: make(map[int]checkpointRecord),
		subs:        make(map[chan struct{}]struct{}),
		loopDone:    make(chan struct{}),
	}
	r.cond = sync.NewCond(&r.mu)
	go r.loop()
	return r, nil
}

// newForkedRun builds a run resumed from a parent's checkpoint record. The
// child re-serializes its restored state as its own day-N checkpoint —
// which the fork test requires to be byte-identical to the parent's
// envelope, proving the restore lost nothing.
func newForkedRun(id, parentID string, day int, ck checkpointRecord) (*Run, error) {
	rec := telemetry.NewRecorder()
	s, err := buildSim(ck.spec, rec)
	if err != nil {
		return nil, errf(http.StatusInternalServerError, CodeInternal, "fork: rebuild simulator: %v", err)
	}
	if err := s.ResumeFrom(bytes.NewReader(ck.data)); err != nil {
		return nil, errf(http.StatusInternalServerError, CodeInternal, "fork: %v", err)
	}
	var buf bytes.Buffer
	if err := s.Checkpoint(&buf); err != nil {
		return nil, errf(http.StatusInternalServerError, CodeInternal, "fork: %v", err)
	}
	r := &Run{
		id:          id,
		forkedFrom:  parentID,
		forkDay:     day,
		rec:         rec,
		telemetry:   rec.Handler(),
		spec:        ck.spec,
		s:           s,
		weather:     slices.Clone(ck.weather),
		state:       StatePaused,
		day:         day,
		target:      day,
		checkpoints: make(map[int]checkpointRecord),
		days:        s.History(),
		subs:        make(map[chan struct{}]struct{}),
		loopDone:    make(chan struct{}),
	}
	r.checkpoints[day] = checkpointRecord{
		data:    append([]byte(nil), buf.Bytes()...),
		spec:    ck.spec,
		weather: slices.Clone(ck.weather),
	}
	r.cond = sync.NewCond(&r.mu)
	go r.loop()
	return r, nil
}

// loop is the run goroutine: it owns the Simulator from birth to deletion.
// It sleeps whenever the run is not meant to advance, applies queued
// mutations and steps one day at a time while running, checkpoints on the
// configured cadence, and folds every outcome back into the bookkeeping
// fields under mu.
func (r *Run) loop() {
	defer close(r.loopDone)
	r.mu.Lock()
	defer r.mu.Unlock()
	for {
		for !r.stopReq && r.state != StateRunning {
			r.cond.Wait()
		}
		if r.stopReq {
			r.notifyLocked()
			return
		}
		horizon := len(r.weather)
		if r.day >= horizon {
			r.finishLocked()
			continue
		}
		if r.day >= min(r.target, horizon) {
			r.setStateLocked(StatePaused)
			continue
		}
		muts := r.pending
		r.pending = nil
		w := r.weather[r.day]
		s := r.s
		every := r.spec.CheckpointEvery
		r.mu.Unlock()

		// Simulator work happens outside the lock: the loop owns the
		// engine, and handlers must stay responsive during a day's physics.
		var ds sim.DayStats
		var ck []byte
		var err error
		for _, m := range muts {
			if err = m(s); err != nil {
				break
			}
		}
		if err == nil {
			ds, err = s.RunDay(w)
		}
		if err == nil && every > 0 && s.Day()%every == 0 {
			var buf bytes.Buffer
			if cerr := s.Checkpoint(&buf); cerr != nil {
				err = cerr
			} else {
				ck = append([]byte(nil), buf.Bytes()...)
			}
		}

		r.mu.Lock()
		if err != nil {
			r.runErr = err
			r.setStateLocked(StateFailed)
			continue
		}
		r.day++
		r.days = append(r.days, ds)
		if ck != nil {
			r.checkpoints[r.day] = checkpointRecord{
				data:    ck,
				spec:    r.spec,
				weather: slices.Clone(r.weather),
			}
		}
		switch {
		case r.day >= len(r.weather):
			r.finishLocked()
		case r.day >= min(r.target, len(r.weather)) && r.state == StateRunning:
			r.setStateLocked(StatePaused)
		default:
			r.notifyLocked()
		}
	}
}

// finishLocked computes the end-of-run summary and moves to done. Called
// only by the loop (simulator access) with mu held.
func (r *Run) finishLocked() {
	if r.final == nil {
		// Run with no weather steps nothing; it only assembles the final
		// fleet summary from the simulator's current state.
		res, err := r.s.Run(nil)
		if err != nil {
			r.runErr = err
			r.setStateLocked(StateFailed)
			return
		}
		r.final = &finalSummary{
			nodes:         res.Nodes,
			fleetLifetime: res.FleetLifetime,
			socCounts:     res.SoCHistogram.Counts(),
			socTotal:      res.SoCHistogram.Total(),
		}
	}
	r.setStateLocked(StateDone)
}

// setStateLocked transitions the lifecycle state and wakes waiters and
// subscribers. mu must be held.
func (r *Run) setStateLocked(st State) {
	r.state = st
	r.notifyLocked()
}

// notifyLocked wakes the loop (cond) and nudges every SSE subscriber with
// a coalescing, never-blocking send. mu must be held.
func (r *Run) notifyLocked() {
	r.cond.Broadcast()
	for ch := range r.subs {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
}

// start moves a created or paused run toward the full horizon.
func (r *Run) start() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	switch r.state {
	case StateCreated, StatePaused:
		r.target = len(r.weather)
		r.setStateLocked(StateRunning)
		return nil
	case StateRunning:
		return errf(http.StatusConflict, CodeConflict, "run %s is already running", r.id)
	default:
		return errf(http.StatusConflict, CodeConflict, "run %s is %s and cannot start", r.id, r.state)
	}
}

// pause stops a running run at the next day boundary. Pausing a paused run
// is a no-op; pausing a run that never started (or already ended) is a
// conflict.
func (r *Run) pause() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	switch r.state {
	case StateRunning, StatePaused:
		r.setStateLocked(StatePaused)
		return nil
	case StateCreated:
		return errf(http.StatusConflict, CodeConflict, "run %s has not started; POST /runs/%s/start first", r.id, r.id)
	default:
		return errf(http.StatusConflict, CodeConflict, "run %s is %s and cannot pause", r.id, r.state)
	}
}

// resume continues a paused run toward the full horizon. Resuming a
// running run is a no-op.
func (r *Run) resume() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	switch r.state {
	case StatePaused, StateRunning:
		r.target = len(r.weather)
		r.setStateLocked(StateRunning)
		return nil
	case StateCreated:
		return errf(http.StatusConflict, CodeConflict, "run %s has not started; POST /runs/%s/start first", r.id, r.id)
	default:
		return errf(http.StatusConflict, CodeConflict, "run %s is %s and cannot resume", r.id, r.state)
	}
}

// stepTo runs a created or paused run up to (and including) the given day,
// then pauses.
func (r *Run) stepTo(day int) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	switch r.state {
	case StateCreated, StatePaused:
	case StateRunning:
		return errf(http.StatusConflict, CodeConflict, "run %s is already running; pause it before stepping", r.id)
	default:
		return errf(http.StatusConflict, CodeConflict, "run %s is %s and cannot step", r.id, r.state)
	}
	if day <= r.day {
		return errf(http.StatusBadRequest, CodeBadRequest, "run %s has already completed day %d; step target %d must be later", r.id, r.day, day)
	}
	if day > len(r.weather) {
		return errf(http.StatusBadRequest, CodeBadRequest, "step target %d is beyond the %d-day horizon", day, len(r.weather))
	}
	r.target = day
	r.setStateLocked(StateRunning)
	return nil
}

// mutate rewrites scenario knobs mid-flight. All requested changes are
// validated before any is applied, so a bad field leaves the run
// untouched. Changes that match the current spec are reported as no-ops
// and — by contract — have no effect whatsoever on the run's output.
func (r *Run) mutate(m Mutation) (applied, noops []string, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.state == StateDone || r.state == StateFailed {
		return nil, nil, errf(http.StatusConflict, CodeConflict, "run %s is %s and cannot mutate", r.id, r.state)
	}
	if m.Policy == "" && m.PolicyOptions == nil && m.Sunshine == nil && m.Faults == nil {
		return nil, nil, errf(http.StatusBadRequest, CodeBadRequest, "mutation names no knobs (policy, policy_options, sunshine, faults)")
	}

	// Validate everything first.
	var commit []func()
	if m.Policy != "" || m.PolicyOptions != nil {
		// Omitting the name retunes the current policy's options; an empty
		// options map resets the (possibly new) policy to its defaults.
		name := m.Policy
		if name == "" {
			name = r.spec.Policy
		}
		norm, perr := core.Normalize(core.PolicySpec{Name: name, Options: m.PolicyOptions})
		if perr != nil {
			return nil, nil, errf(http.StatusBadRequest, CodeBadRequest, "%v", perr)
		}
		if _, perr := core.Build(norm); perr != nil {
			return nil, nil, errf(http.StatusBadRequest, CodeBadRequest, "%v", perr)
		}
		if norm.Equal(r.spec.policySpec()) {
			noops = append(noops, "policy")
		} else {
			commit = append(commit, func() {
				r.spec.Policy = norm.Name
				r.spec.PolicyOptions = norm.Options
				// The engine re-validates the spec before touching the
				// running policy, so a race with registry state cannot
				// strand the run with a half-swapped scheme.
				r.pending = append(r.pending, func(s *sim.Simulator) error { return s.SetPolicy(norm) })
			})
			applied = append(applied, "policy")
		}
	}
	if m.Sunshine != nil {
		if r.spec.Weather != "mix" {
			return nil, nil, errf(http.StatusBadRequest, CodeBadRequest, "sunshine applies only to mix-weather runs (this run is %q)", r.spec.Weather)
		}
		v := *m.Sunshine
		if v == *r.spec.Sunshine {
			noops = append(noops, "sunshine")
		} else {
			loc := solar.Location{SunshineFraction: v}
			if lerr := loc.Validate(); lerr != nil {
				return nil, nil, errf(http.StatusBadRequest, CodeBadRequest, "%v", lerr)
			}
			commit = append(commit, func() {
				// Redraw the not-yet-started suffix from this mutation's own
				// named stream: deterministic given (seed, mutation count),
				// and the day currently in flight keeps the sky it started
				// under.
				r.reweather++
				stream := rng.New(r.spec.Seed, rng.ServeReweather(r.reweather))
				from := r.day
				if r.state == StateRunning {
					from++
				}
				for i := from; i < len(r.weather); i++ {
					r.weather[i] = loc.DrawWeather(stream.Rand)
				}
				r.spec.Sunshine = ptr(v)
			})
			applied = append(applied, "sunshine")
		}
	}
	if m.Faults != nil {
		name := strings.ToLower(strings.TrimSpace(*m.Faults))
		fcfg, ferr := faults.Profile(name, 0)
		if ferr != nil {
			return nil, nil, errf(http.StatusBadRequest, CodeBadRequest, "%v", ferr)
		}
		if name == r.spec.Faults {
			noops = append(noops, "faults")
		} else {
			commit = append(commit, func() {
				r.spec.Faults = name
				r.pending = append(r.pending, func(s *sim.Simulator) error { return s.SetFaults(fcfg) })
			})
			applied = append(applied, "faults")
		}
	}

	for _, c := range commit {
		c()
	}
	if len(applied) > 0 {
		r.notifyLocked()
	}
	return applied, noops, nil
}

// forkRecord returns the checkpoint record at the given day, for building
// a forked child.
func (r *Run) forkRecord(day int) (checkpointRecord, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	ck, ok := r.checkpoints[day]
	if !ok {
		return checkpointRecord{}, errf(http.StatusConflict, CodeNoCheckpoint,
			"run %s holds no checkpoint at day %d (completed %d days, checkpoint cadence %d)",
			r.id, day, r.day, r.spec.CheckpointEvery)
	}
	return ck, nil
}

// checkpointBytes returns the serialized envelope stored at the given day.
func (r *Run) checkpointBytes(day int) ([]byte, error) {
	ck, err := r.forkRecord(day)
	if err != nil {
		return nil, err
	}
	return ck.data, nil
}

// stop asks the loop to exit and waits for it. Safe to call more than
// once; after stop returns, the run's goroutine is gone and its SSE
// subscribers have been woken for their final drain.
func (r *Run) stop() {
	r.mu.Lock()
	r.stopReq = true
	r.cond.Broadcast()
	r.mu.Unlock()
	<-r.loopDone
}

// subscribe registers an SSE wake channel. The returned cancel must be
// called when the subscriber leaves.
func (r *Run) subscribe() (ch chan struct{}, cancel func()) {
	ch = make(chan struct{}, 1)
	r.mu.Lock()
	r.subs[ch] = struct{}{}
	r.mu.Unlock()
	return ch, func() {
		r.mu.Lock()
		delete(r.subs, ch)
		r.mu.Unlock()
	}
}

// RunInfo is the status document of one run.
type RunInfo struct {
	ID     string `json:"id"`
	Name   string `json:"name,omitempty"`
	State  State  `json:"state"`
	Day    int    `json:"day"`
	Days   int    `json:"days"`
	Policy string `json:"policy"`
	// PolicyOptions is present only when the run's policy carries non-default
	// option knobs, so existing status documents stay byte-identical.
	PolicyOptions map[string]string `json:"policy_options,omitempty"`
	Weather       string            `json:"weather"`
	Sunshine      float64           `json:"sunshine"`
	Faults        string            `json:"faults"`
	BatteryModel  string            `json:"battery_model"`
	Seed          int64             `json:"seed"`
	Nodes         int               `json:"nodes"`
	Workers       int               `json:"workers,omitempty"`
	ForkedFrom    string            `json:"forked_from,omitempty"`
	ForkDay       int               `json:"fork_day,omitempty"`
	Checkpoints   []int             `json:"checkpoints,omitempty"`
	Error         string            `json:"error,omitempty"`
}

// info snapshots the run's status.
func (r *Run) info() RunInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	inf := RunInfo{
		ID:            r.id,
		Name:          r.spec.Name,
		State:         r.state,
		Day:           r.day,
		Days:          len(r.weather),
		Policy:        r.spec.Policy,
		PolicyOptions: r.spec.PolicyOptions,
		Weather:       r.spec.Weather,
		Sunshine:      *r.spec.Sunshine,
		Faults:        r.spec.Faults,
		BatteryModel:  r.spec.BatteryModel,
		Seed:          r.spec.Seed,
		Nodes:         r.spec.Nodes,
		Workers:       r.spec.Workers,
		ForkedFrom:    r.forkedFrom,
		ForkDay:       r.forkDay,
	}
	if len(r.checkpoints) > 0 {
		inf.Checkpoints = make([]int, 0, len(r.checkpoints))
		for d := range r.checkpoints {
			inf.Checkpoints = append(inf.Checkpoints, d)
		}
		slices.Sort(inf.Checkpoints)
	}
	if r.runErr != nil {
		inf.Error = r.runErr.Error()
	}
	return inf
}

// RunResult is the (possibly partial) outcome document of one run. It
// deliberately carries no run ID: two runs with identical specs and
// identical histories marshal byte-identically, which is what the
// pause/resume- and fork-equivalence tests compare.
type RunResult struct {
	Policy          string            `json:"policy"`
	Done            bool              `json:"done"`
	Days            []sim.DayStats    `json:"days"`
	Throughput      float64           `json:"throughput"`
	FleetLifetimeNS int64             `json:"fleet_lifetime_ns,omitempty"`
	Nodes           []sim.NodeSummary `json:"nodes,omitempty"`
	SoCCounts       []int64           `json:"soc_counts,omitempty"`
	SoCTotal        int64             `json:"soc_total,omitempty"`
	Error           string            `json:"error,omitempty"`
}

// result snapshots the run's outcome so far: per-day stats always, the
// fleet summary once done.
func (r *Run) result() RunResult {
	r.mu.Lock()
	defer r.mu.Unlock()
	res := RunResult{
		Policy: r.spec.Policy,
		Done:   r.state == StateDone,
		Days:   slices.Clone(r.days),
	}
	for _, d := range r.days {
		res.Throughput += d.Throughput
	}
	if r.final != nil {
		res.Nodes = slices.Clone(r.final.nodes)
		res.FleetLifetimeNS = int64(r.final.fleetLifetime)
		res.SoCCounts = slices.Clone(r.final.socCounts)
		res.SoCTotal = r.final.socTotal
	}
	if r.runErr != nil {
		res.Error = r.runErr.Error()
	}
	return res
}

// streamState is one SSE drain snapshot: the day stats the subscriber has
// not yet seen, the current lifecycle state, and the terminal error if any.
type streamState struct {
	days   []sim.DayStats
	state  State
	day    int
	errMsg string
}

// streamSnapshot copies everything an SSE subscriber needs past its
// high-water mark.
func (r *Run) streamSnapshot(sent int) streamState {
	r.mu.Lock()
	defer r.mu.Unlock()
	ss := streamState{state: r.state, day: r.day}
	if sent < len(r.days) {
		ss.days = slices.Clone(r.days[sent:])
	}
	if r.runErr != nil {
		ss.errMsg = r.runErr.Error()
	}
	return ss
}
