package battery

import (
	"testing"
)

func packColumn(t *testing.T, kind Kind, n int) []Pack {
	t.Helper()
	spec, err := DefaultSpecFor(kind)
	if err != nil {
		t.Fatalf("spec for %q: %v", kind, err)
	}
	packs := make([]Pack, n)
	for i := range packs {
		if err := NewInto(&packs[i], spec, WithInitialSoC(float64(i)/float64(n))); err != nil {
			t.Fatalf("pack %d: %v", i, err)
		}
	}
	return packs
}

func linearColumn(t *testing.T, n int) []Linear {
	t.Helper()
	spec, err := DefaultSpecFor(KindLinear)
	if err != nil {
		t.Fatalf("linear spec: %v", err)
	}
	lins := make([]Linear, n)
	for i := range lins {
		if err := NewLinearInto(&lins[i], spec, WithInitialSoC(float64(i)/float64(n))); err != nil {
			t.Fatalf("linear %d: %v", i, err)
		}
	}
	return lins
}

// TestBatchKernelsMatchPerModelCalls pins the columnar kernels to the
// per-model accessors they replace: identical values, element by element.
func TestBatchKernelsMatchPerModelCalls(t *testing.T) {
	const n = 257
	for _, kind := range []Kind{KindLeadAcid, KindLFP} {
		packs := packColumn(t, kind, n)
		soc := make([]float64, n)
		health := make([]float64, n)
		PackSoCs(packs, soc)
		PackHealths(packs, health)
		for i := range packs {
			if soc[i] != packs[i].SoC() {
				t.Fatalf("%s: PackSoCs[%d] = %v, want %v", kind, i, soc[i], packs[i].SoC())
			}
			if health[i] != packs[i].Health() {
				t.Fatalf("%s: PackHealths[%d] = %v, want %v", kind, i, health[i], packs[i].Health())
			}
		}
	}
	lins := linearColumn(t, n)
	soc := make([]float64, n)
	health := make([]float64, n)
	LinearSoCs(lins, soc)
	LinearHealths(lins, health)
	for i := range lins {
		if soc[i] != lins[i].SoC() {
			t.Fatalf("linear: LinearSoCs[%d] = %v, want %v", i, soc[i], lins[i].SoC())
		}
		if health[i] != lins[i].Health() {
			t.Fatalf("linear: LinearHealths[%d] = %v, want %v", i, health[i], lins[i].Health())
		}
	}
}

// TestBatchKernelsLengthMismatchPanics pins the documented contract: a
// destination column of the wrong length panics instead of silently
// partially filling.
func TestBatchKernelsLengthMismatchPanics(t *testing.T) {
	packs := packColumn(t, KindLeadAcid, 4)
	lins := linearColumn(t, 4)
	short := make([]float64, 3)
	for name, fn := range map[string]func(){
		"PackSoCs":      func() { PackSoCs(packs, short) },
		"PackHealths":   func() { PackHealths(packs, short) },
		"LinearSoCs":    func() { LinearSoCs(lins, short) },
		"LinearHealths": func() { LinearHealths(lins, short) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: no panic on length mismatch", name)
				}
			}()
			fn()
		}()
	}
}

// TestBatchKernelsAllocFree pins every per-chemistry kernel at zero
// allocations per sweep — the property the fleet's columnar SoC snapshot
// relies on to keep the engine's steady-state tick path alloc-free.
func TestBatchKernelsAllocFree(t *testing.T) {
	const n = 4096
	dst := make([]float64, n)
	for _, kind := range []Kind{KindLeadAcid, KindLFP} {
		packs := packColumn(t, kind, n)
		for name, fn := range map[string]func(){
			"PackSoCs":    func() { PackSoCs(packs, dst) },
			"PackHealths": func() { PackHealths(packs, dst) },
		} {
			if allocs := testing.AllocsPerRun(10, fn); allocs != 0 {
				t.Fatalf("%s/%s allocated %v times per sweep, want 0", name, kind, allocs)
			}
		}
	}
	lins := linearColumn(t, n)
	for name, fn := range map[string]func(){
		"LinearSoCs":    func() { LinearSoCs(lins, dst) },
		"LinearHealths": func() { LinearHealths(lins, dst) },
	} {
		if allocs := testing.AllocsPerRun(10, fn); allocs != 0 {
			t.Fatalf("%s allocated %v times per sweep, want 0", name, allocs)
		}
	}
}
