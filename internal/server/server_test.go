package server

import (
	"strings"
	"testing"
	"time"

	"github.com/green-dc/baat/internal/vm"
	"github.com/green-dc/baat/internal/workload"
)

func newServer(t *testing.T) *Server {
	t.Helper()
	s, err := New("node-1", DefaultSpec())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func newVM(t *testing.T, id string, k workload.Kind) *vm.VM {
	t.Helper()
	p, err := workload.ProfileFor(k)
	if err != nil {
		t.Fatal(err)
	}
	v, err := vm.New(id, p)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestSpecValidate(t *testing.T) {
	if err := DefaultSpec().Validate(); err != nil {
		t.Fatalf("default spec invalid: %v", err)
	}
	tests := []struct {
		name   string
		mutate func(*Spec)
	}{
		{"zero idle", func(s *Spec) { s.IdlePower = 0 }},
		{"peak below idle", func(s *Spec) { s.PeakPower = 50 }},
		{"no levels", func(s *Spec) { s.FreqLevels = nil }},
		{"descending levels", func(s *Spec) { s.FreqLevels = []float64{1.0, 0.5} }},
		{"level above one", func(s *Spec) { s.FreqLevels = []float64{0.5, 1.5} }},
		{"top level not one", func(s *Spec) { s.FreqLevels = []float64{0.5, 0.9} }},
		{"zero capacity", func(s *Spec) { s.CPUCapacity = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			s := DefaultSpec()
			s.FreqLevels = append([]float64(nil), DefaultSpec().FreqLevels...)
			tt.mutate(&s)
			if err := s.Validate(); err == nil {
				t.Error("Validate() = nil, want error")
			}
		})
	}
	if _, err := New("", DefaultSpec()); err == nil {
		t.Error("empty id accepted")
	}
}

func TestIdlePower(t *testing.T) {
	s := newServer(t)
	if got := s.Power(); got != DefaultSpec().IdlePower {
		t.Errorf("idle power = %v, want %v", got, DefaultSpec().IdlePower)
	}
}

func TestPowerGrowsWithLoad(t *testing.T) {
	s := newServer(t)
	idle := s.Power()
	if err := s.Attach(newVM(t, "v1", workload.SoftwareTesting)); err != nil {
		t.Fatal(err)
	}
	loaded := s.Power()
	if loaded <= idle {
		t.Errorf("loaded power %v not above idle %v", loaded, idle)
	}
	if loaded > DefaultSpec().PeakPower {
		t.Errorf("power %v exceeds peak %v", loaded, DefaultSpec().PeakPower)
	}
}

func TestDVFSReducesPowerAndWork(t *testing.T) {
	s := newServer(t)
	if err := s.Attach(newVM(t, "v1", workload.SoftwareTesting)); err != nil {
		t.Fatal(err)
	}
	pFull := s.Power()
	doneFull := s.Step(time.Minute)

	s2 := newServer(t)
	if err := s2.Attach(newVM(t, "v1", workload.SoftwareTesting)); err != nil {
		t.Fatal(err)
	}
	if err := s2.SetFrequencyIndex(0); err != nil {
		t.Fatal(err)
	}
	pCapped := s2.Power()
	doneCapped := s2.Step(time.Minute)

	if pCapped >= pFull {
		t.Errorf("capped power %v not below full power %v", pCapped, pFull)
	}
	if doneCapped >= doneFull {
		t.Errorf("capped work %v not below full work %v", doneCapped, doneFull)
	}
}

func TestFrequencyLadder(t *testing.T) {
	s := newServer(t)
	if s.Frequency() != 1.0 {
		t.Fatalf("initial frequency = %v, want 1.0", s.Frequency())
	}
	if s.StepUpFrequency() {
		t.Error("StepUp at top succeeded")
	}
	steps := 0
	for s.StepDownFrequency() {
		steps++
	}
	if steps != len(DefaultSpec().FreqLevels)-1 {
		t.Errorf("stepped down %d times, want %d", steps, len(DefaultSpec().FreqLevels)-1)
	}
	if s.Frequency() != DefaultSpec().FreqLevels[0] {
		t.Errorf("bottom frequency = %v, want %v", s.Frequency(), DefaultSpec().FreqLevels[0])
	}
	if !s.StepUpFrequency() {
		t.Error("StepUp from bottom failed")
	}
	if err := s.SetFrequencyIndex(99); err == nil {
		t.Error("out-of-range index accepted")
	}
	if _, err := s.PeakPowerAt(99); err == nil {
		t.Error("out-of-range PeakPowerAt accepted")
	}
	p0, err := s.PeakPowerAt(0)
	if err != nil {
		t.Fatal(err)
	}
	pTop, err := s.PeakPowerAt(len(DefaultSpec().FreqLevels) - 1)
	if err != nil {
		t.Fatal(err)
	}
	if p0 >= pTop {
		t.Errorf("peak at bottom ladder %v not below top %v", p0, pTop)
	}
}

func TestCapacityEnforcement(t *testing.T) {
	s := newServer(t)
	// Software testing peaks at 0.95: two fit in the 2.0 capacity, a
	// third cannot.
	if err := s.Attach(newVM(t, "v1", workload.SoftwareTesting)); err != nil {
		t.Fatal(err)
	}
	if err := s.Attach(newVM(t, "v2", workload.SoftwareTesting)); err != nil {
		t.Fatal(err)
	}
	v3 := newVM(t, "v3", workload.SoftwareTesting)
	if s.CanHost(v3) {
		t.Error("CanHost accepted an overcommit")
	}
	if err := s.Attach(v3); err == nil {
		t.Error("Attach accepted an overcommit")
	}
	if s.CanHost(nil) {
		t.Error("CanHost(nil) = true")
	}
}

func TestAttachDetach(t *testing.T) {
	s := newServer(t)
	v := newVM(t, "v1", workload.WordCount)
	if err := s.Attach(v); err != nil {
		t.Fatal(err)
	}
	if err := s.Attach(v); err == nil || !strings.Contains(err.Error(), "already attached") {
		t.Errorf("duplicate attach error = %v", err)
	}
	if err := s.Attach(nil); err == nil {
		t.Error("nil attach accepted")
	}
	got, err := s.Detach("v1")
	if err != nil || got != v {
		t.Fatalf("Detach = (%v, %v), want (v, nil)", got, err)
	}
	if _, err := s.Detach("v1"); err == nil {
		t.Error("double detach accepted")
	}
	if len(s.VMs()) != 0 {
		t.Error("VMs remain after detach")
	}
}

func TestCompletedVMFreesCapacity(t *testing.T) {
	s := newServer(t)
	v := newVM(t, "v1", workload.SoftwareTesting)
	if err := s.Attach(v); err != nil {
		t.Fatal(err)
	}
	// Run the job to completion.
	for i := 0; i < 100000 && v.State() != vm.Completed; i++ {
		s.Step(time.Minute)
	}
	if v.State() != vm.Completed {
		t.Fatal("job never completed")
	}
	if !s.CanHost(newVM(t, "v2", workload.SoftwareTesting)) {
		t.Error("completed VM still holds capacity")
	}
}

func TestPowerOffPausesVMsAndAccruesDowntime(t *testing.T) {
	s := newServer(t)
	v := newVM(t, "v1", workload.KMeans)
	if err := s.Attach(v); err != nil {
		t.Fatal(err)
	}
	s.SetPowered(false)
	if s.Power() != 0 {
		t.Errorf("dark server draws %v", s.Power())
	}
	if v.State() != vm.Paused {
		t.Errorf("VM state after power-off = %v, want paused", v.State())
	}
	if done := s.Step(time.Minute); done != 0 {
		t.Errorf("dark server did %v work", done)
	}
	if s.Downtime() != time.Minute {
		t.Errorf("downtime = %v, want 1m", s.Downtime())
	}
	s.SetPowered(true)
	if v.State() != vm.Running {
		t.Errorf("VM state after power-on = %v, want running", v.State())
	}
	// Idempotent.
	s.SetPowered(true)
	if !s.Powered() {
		t.Error("SetPowered(true) twice broke state")
	}
}

func TestThroughputAccumulates(t *testing.T) {
	s := newServer(t)
	if err := s.Attach(newVM(t, "v1", workload.DataAnalytics)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		s.Step(time.Minute)
	}
	if s.Throughput() <= 0 {
		t.Error("no throughput accumulated")
	}
	if s.Uptime() != time.Hour {
		t.Errorf("uptime = %v, want 1h", s.Uptime())
	}
	if got := s.Step(0); got != 0 {
		t.Error("zero-duration step did work")
	}
}

func TestActiveUtilizationClamped(t *testing.T) {
	spec := DefaultSpec()
	spec.CPUCapacity = 2.0
	s, err := New("big", spec)
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range []workload.Kind{workload.SoftwareTesting, workload.KMeans} {
		if err := s.Attach(newVM(t, string(rune('a'+i)), k)); err != nil {
			t.Fatal(err)
		}
	}
	if u := s.ActiveUtilization(); u > 2.0 {
		t.Errorf("utilization %v above capacity", u)
	}
}
