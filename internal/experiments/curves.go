package experiments

import (
	"fmt"
	"time"

	"github.com/green-dc/baat/internal/aging"
	"github.com/green-dc/baat/internal/battery"
	"github.com/green-dc/baat/internal/units"
)

// CycleLifeCurves reproduces Fig 10: battery cycle life under varying depth
// of discharge for the three manufacturers (Hoppecke, Trojan, UPG).
func CycleLifeCurves(cfg Config) (*Table, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig10",
		Title:   "Battery cycle life under varying depth of discharge (DoD)",
		Columns: []string{"DoD", "Hoppecke", "Trojan", "UPG"},
		Values:  map[string]float64{},
	}
	dods := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
	if cfg.Quick {
		dods = []float64{0.2, 0.5, 0.8}
	}
	for _, dod := range dods {
		row := []string{pct(dod)}
		for _, m := range aging.Manufacturers() {
			c, err := aging.CycleLife(m, dod)
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%.0f", c))
		}
		t.Rows = append(t.Rows, row)
	}
	// Headline: the 25 %→50 % DoD cycle-life ratio ("decreases by 50% if
	// frequently discharged at a DoD above 50%").
	shallow, err := aging.CycleLife(aging.Trojan, 0.25)
	if err != nil {
		return nil, err
	}
	deep, err := aging.CycleLife(aging.Trojan, 0.5)
	if err != nil {
		return nil, err
	}
	t.Values["halving_ratio"] = shallow / deep
	t.Notes = append(t.Notes, "paper: cycle life decreases ~50% beyond 50% DoD")
	return t, nil
}

// UsageScenarios reproduces Table 1: the aging speed and variation of the
// three battery usage scenarios (power backup, demand response, power
// smoothing), measured by driving identical packs through each usage
// pattern for a simulated quarter.
func UsageScenarios(cfg Config) (*Table, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	days := 90
	if cfg.Quick {
		days = 20
	}

	type scenario struct {
		name string
		// drive runs one day of the pattern on the pack and model; jitter
		// perturbs per-unit depth to expose aging variation.
		drive func(pack *battery.Pack, model *aging.Model, jitter float64) error
	}
	observe := func(pack *battery.Pack, model *aging.Model, res battery.StepResult, dt time.Duration) error {
		return model.Observe(aging.Sample{
			Dt:          dt,
			Current:     res.Current,
			SoC:         pack.SoC(),
			Temperature: pack.Temperature(),
		})
	}
	scenarios := []scenario{
		{
			name: "power backup (rarely used)",
			drive: func(pack *battery.Pack, model *aging.Model, jitter float64) error {
				// Float at full; a brief monthly self-test discharge.
				if err := pack.Rest(24*time.Hour, 25); err != nil {
					return err
				}
				return observe(pack, model, battery.StepResult{}, 24*time.Hour)
			},
		},
		{
			name: "demand response (occasional)",
			drive: func(pack *battery.Pack, model *aging.Model, jitter float64) error {
				// A one-hour evening peak shave (~15 % DoD), then recharge.
				res, err := pack.Discharge(units.Watt(60+20*jitter), time.Hour, 25)
				if err != nil {
					return err
				}
				if err := observe(pack, model, res, time.Hour); err != nil {
					return err
				}
				cres, err := pack.Charge(60, 2*time.Hour, 25)
				if err != nil {
					return err
				}
				if err := observe(pack, model, cres, 2*time.Hour); err != nil {
					return err
				}
				if err := pack.Rest(21*time.Hour, 25); err != nil {
					return err
				}
				return observe(pack, model, battery.StepResult{}, 21*time.Hour)
			},
		},
		{
			name: "power smoothing (cyclic)",
			drive: func(pack *battery.Pack, model *aging.Model, jitter float64) error {
				// Deep daily cycling with unit-to-unit depth spread.
				for h := 0; h < 4; h++ {
					res, err := pack.Discharge(units.Watt(55+35*jitter), time.Hour, 25)
					if err != nil {
						return err
					}
					if err := observe(pack, model, res, time.Hour); err != nil {
						return err
					}
				}
				cres, err := pack.Charge(70, 5*time.Hour, 25)
				if err != nil {
					return err
				}
				if err := observe(pack, model, cres, 5*time.Hour); err != nil {
					return err
				}
				if err := pack.Rest(15*time.Hour, 25); err != nil {
					return err
				}
				return observe(pack, model, battery.StepResult{}, 15*time.Hour)
			},
		},
	}

	t := &Table{
		ID:      "table1",
		Title:   "Battery usage scenarios in datacenters",
		Columns: []string{"usage objective", "aging speed (fade/quarter)", "aging variation (spread)"},
		Values:  map[string]float64{},
	}
	keys := []string{"backup", "demand_response", "smoothing"}
	for si, sc := range scenarios {
		// Three units with different per-unit jitter expose variation.
		var fades []float64
		for _, jitter := range []float64{-1, 0, 1} {
			pack, err := battery.New(battery.DefaultSpec())
			if err != nil {
				return nil, err
			}
			model, err := aging.NewModel(aging.DefaultModelConfig(), battery.DefaultSpec().NominalCapacity)
			if err != nil {
				return nil, err
			}
			for d := 0; d < days; d++ {
				if err := sc.drive(pack, model, jitter); err != nil {
					return nil, err
				}
				pack.ApplyDegradation(model.Degradation())
			}
			fades = append(fades, 1-pack.Health())
		}
		mean := (fades[0] + fades[1] + fades[2]) / 3
		spread := fades[2] - fades[0]
		if spread < 0 {
			spread = -spread
		}
		t.Rows = append(t.Rows, []string{sc.name, f3(mean), f3(spread)})
		t.Values[keys[si]+"_fade"] = mean
		t.Values[keys[si]+"_spread"] = spread
	}
	t.Notes = append(t.Notes,
		"paper: backup=light/small, demand response=medium/medium, smoothing=severe/large")
	return t, nil
}

// DemandSensitivity reproduces Table 3: how a workload's power/energy class
// moves the three placement metrics, measured by running each class against
// a fresh battery node for a day and reporting the metric deltas.
func DemandSensitivity(cfg Config) (*Table, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "table3",
		Title:   "Relation between power demands and aging factors",
		Columns: []string{"power", "energy", "ΔNAT", "ΔCF", "ΔPC", "paper row"},
		Values:  map[string]float64{},
	}
	classes := []aging.DemandClass{
		{LargePower: true, MoreEnergy: false},
		{LargePower: true, MoreEnergy: true},
		{LargePower: false, MoreEnergy: true},
		{LargePower: false, MoreEnergy: false},
	}
	paperRows := []string{
		"Medium/High/High",
		"High/High/High",
		"High/Low/Medium",
		"Low/Low/Low",
	}
	for i, c := range classes {
		// Synthesize a day of battery usage matching the class: power
		// sets the discharge current, energy sets how long it runs.
		pack, err := battery.New(battery.DefaultSpec())
		if err != nil {
			return nil, err
		}
		tracker, err := aging.NewTracker(battery.DefaultSpec().LifetimeThroughput)
		if err != nil {
			return nil, err
		}
		power := units.Watt(35)
		if c.LargePower {
			power = 110
		}
		hours := 3
		if c.MoreEnergy {
			hours = 8
		}
		for h := 0; h < hours; h++ {
			res, err := pack.Discharge(power, time.Hour, 25)
			if err != nil {
				return nil, err
			}
			if err := tracker.Observe(aging.Sample{
				Dt: time.Hour, Current: res.Current, SoC: pack.SoC(), Temperature: pack.Temperature(),
			}); err != nil {
				return nil, err
			}
		}
		// Partial recharge for the rest of the window.
		cres, err := pack.Charge(50, 2*time.Hour, 25)
		if err != nil {
			return nil, err
		}
		if err := tracker.Observe(aging.Sample{
			Dt: 2 * time.Hour, Current: cres.Current, SoC: pack.SoC(), Temperature: pack.Temperature(),
		}); err != nil {
			return nil, err
		}
		m := tracker.Metrics()
		powerLabel, energyLabel := "Small", "Less"
		if c.LargePower {
			powerLabel = "Large"
		}
		if c.MoreEnergy {
			energyLabel = "More"
		}
		t.Rows = append(t.Rows, []string{
			powerLabel, energyLabel, f3(m.NAT), f2(m.CF), f2(m.PC), paperRows[i],
		})
		key := fmt.Sprintf("class%d", i)
		t.Values[key+"_nat"] = m.NAT
		t.Values[key+"_cf"] = m.CF
		t.Values[key+"_pc"] = m.PC
	}
	t.Notes = append(t.Notes,
		"ΔNAT grows with energy request; ΔCF/ΔPC degrade with large power (Table 3 semantics)")
	return t, nil
}
