package node

import (
	"testing"
	"time"

	"github.com/green-dc/baat/internal/powernet"
	"github.com/green-dc/baat/internal/vm"
	"github.com/green-dc/baat/internal/workload"
)

func newNode(t *testing.T, mutate ...func(*Config)) *Node {
	t.Helper()
	cfg := DefaultConfig()
	for _, m := range mutate {
		m(&cfg)
	}
	n, err := New("n1", cfg)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func attachVM(t *testing.T, n *Node, id string, k workload.Kind) *vm.VM {
	t.Helper()
	p, err := workload.ProfileFor(k)
	if err != nil {
		t.Fatal(err)
	}
	v, err := vm.New(id, p)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Server().Attach(v); err != nil {
		t.Fatal(err)
	}
	return v
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"bad battery", func(c *Config) { c.BatterySpec.NominalVoltage = 0 }},
		{"bad server", func(c *Config) { c.ServerSpec.IdlePower = 0 }},
		{"bad aging", func(c *Config) { c.AgingConfig.AccelFactor = 0 }},
		{"bad losses", func(c *Config) { c.Losses.InverterEfficiency = 2 }},
		{"bad table", func(c *Config) { c.TableCapacity = 0 }},
		{"bad floor", func(c *Config) { c.SoCFloor = 1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tt.mutate(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Error("Validate() = nil, want error")
			}
			if _, err := New("x", cfg); err == nil {
				t.Error("New accepted invalid config")
			}
		})
	}
	if _, err := New("", DefaultConfig()); err == nil {
		t.Error("empty id accepted")
	}
}

func TestSolarCoversLoad(t *testing.T) {
	n := newNode(t)
	attachVM(t, n, "v1", workload.WordCount)
	demand := n.Demand()
	res, err := n.Step(time.Minute, demand*2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Down {
		t.Fatal("node went dark with abundant solar")
	}
	if res.Source != powernet.SourceSolar {
		t.Errorf("source = %v, want solar", res.Source)
	}
	if res.BatteryPower > 0 {
		t.Errorf("battery discharged (%v) despite solar surplus", res.BatteryPower)
	}
	// Only the needed solar is consumed, not the whole grant.
	if res.SolarUsed >= demand*2 {
		t.Errorf("SolarUsed = %v, want < grant %v", res.SolarUsed, demand*2)
	}
	if res.WorkDone <= 0 {
		t.Error("no work done")
	}
}

func TestBatteryBridgesDeficit(t *testing.T) {
	n := newNode(t)
	attachVM(t, n, "v1", workload.SoftwareTesting)
	res, err := n.Step(time.Minute, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Down {
		t.Fatal("node went dark with a healthy battery")
	}
	if res.Source != powernet.SourceBattery {
		t.Errorf("source = %v, want battery", res.Source)
	}
	if res.BatteryPower <= 0 {
		t.Errorf("battery power = %v, want positive discharge", res.BatteryPower)
	}
	if n.Battery().SoC() >= 1 {
		t.Error("SoC did not drop")
	}
}

func TestMixedSolarAndBattery(t *testing.T) {
	n := newNode(t)
	attachVM(t, n, "v1", workload.SoftwareTesting)
	demand := n.Demand()
	res, err := n.Step(time.Minute, demand/2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Source != powernet.SourceMixed {
		t.Errorf("source = %v, want mixed", res.Source)
	}
	if res.BatteryPower <= 0 {
		t.Error("battery did not bridge the partial deficit")
	}
}

func TestNodeGoesDarkWhenBatteryEmpty(t *testing.T) {
	n := newNode(t)
	attachVM(t, n, "v1", workload.SoftwareTesting)
	var wentDark bool
	for i := 0; i < 10*60; i++ { // up to 10 hours on battery alone
		res, err := n.Step(time.Minute, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		if res.Down {
			wentDark = true
			break
		}
	}
	if !wentDark {
		t.Fatal("node never went dark on battery alone")
	}
	if n.Server().Powered() {
		t.Error("server still powered after dark tick")
	}
	if n.Stats().DownFraction <= 0 {
		t.Error("down fraction not recorded")
	}
}

func TestDarkNodeChargesAndRecovers(t *testing.T) {
	n := newNode(t)
	attachVM(t, n, "v1", workload.SoftwareTesting)
	// Drain until dark.
	for !n.Stats().isDown() {
		if _, err := n.Step(time.Minute, 0, 0); err != nil {
			t.Fatal(err)
		}
		if n.Clock() > 12*time.Hour {
			t.Fatal("never went dark")
		}
	}
	socDark := n.Battery().SoC()
	// Generous solar charges the battery and revives the server.
	var recovered bool
	for i := 0; i < 6*60; i++ {
		res, err := n.Step(time.Minute, 400, 200)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Down {
			recovered = true
			break
		}
	}
	if !recovered {
		t.Fatal("node never recovered with abundant solar")
	}
	if n.Battery().SoC() < socDark {
		t.Error("battery did not charge while dark")
	}
}

// isDown is a test helper on Stats.
func (s Stats) isDown() bool { return s.DownFraction > 0 }

func TestUtilityBackupPreventsDarkness(t *testing.T) {
	n := newNode(t, func(c *Config) { c.UtilityBackup = true })
	attachVM(t, n, "v1", workload.SoftwareTesting)
	// Exhaust the battery; with utility backup the node must stay up.
	for i := 0; i < 12*60; i++ {
		res, err := n.Step(time.Minute, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		if res.Down {
			t.Fatal("node went dark despite utility backup")
		}
	}
	if n.Stats().UtilityEnergy <= 0 {
		t.Error("no utility energy recorded")
	}
}

func TestSoCFloorStopsDischarge(t *testing.T) {
	n := newNode(t, func(c *Config) { c.SoCFloor = 0.6 })
	attachVM(t, n, "v1", workload.SoftwareTesting)
	for i := 0; i < 8*60; i++ {
		if _, err := n.Step(time.Minute, 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	// The floor blocks discharge below 0.6 (small overshoot within the
	// tick that crosses the floor is possible).
	if soc := n.Battery().SoC(); soc < 0.55 {
		t.Errorf("SoC = %v, floor 0.6 not enforced", soc)
	}
}

func TestSetSoCFloor(t *testing.T) {
	n := newNode(t)
	if err := n.SetSoCFloor(0.5); err != nil {
		t.Fatal(err)
	}
	if n.SoCFloor() != 0.5 {
		t.Errorf("SoCFloor = %v, want 0.5", n.SoCFloor())
	}
	for _, bad := range []float64{-0.1, 1.0, 2.0} {
		if err := n.SetSoCFloor(bad); err == nil {
			t.Errorf("floor %v accepted", bad)
		}
	}
}

func TestChargeRequest(t *testing.T) {
	n := newNode(t)
	// Full battery requests nothing.
	if got := n.ChargeRequest(); got != 0 {
		t.Errorf("ChargeRequest at full = %v, want 0", got)
	}
	// Drain, then the request becomes positive.
	attachVM(t, n, "v1", workload.SoftwareTesting)
	for i := 0; i < 120; i++ {
		if _, err := n.Step(time.Minute, 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	if got := n.ChargeRequest(); got <= 0 {
		t.Errorf("ChargeRequest after drain = %v, want > 0", got)
	}
}

func TestStepValidation(t *testing.T) {
	n := newNode(t)
	if _, err := n.Step(0, 0, 0); err == nil {
		t.Error("zero duration accepted")
	}
	if _, err := n.Step(time.Minute, -1, 0); err == nil {
		t.Error("negative load solar accepted")
	}
	if _, err := n.Step(time.Minute, 0, -1); err == nil {
		t.Error("negative charge solar accepted")
	}
}

func TestMetricsAccumulate(t *testing.T) {
	n := newNode(t)
	attachVM(t, n, "v1", workload.SoftwareTesting)
	for i := 0; i < 240; i++ {
		if _, err := n.Step(time.Minute, 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	m := n.Metrics()
	if m.NAT <= 0 {
		t.Error("NAT did not accumulate under discharge")
	}
	if m.DR <= 0 {
		t.Error("DR not recorded")
	}
	if n.PowerTable().TotalRecorded() != 240 {
		t.Errorf("power table rows = %d, want 240", n.PowerTable().TotalRecorded())
	}
	last, ok := n.PowerTable().Last()
	if !ok || last.At != n.Clock() {
		t.Errorf("last reading At = %v, want %v", last.At, n.Clock())
	}
}

func TestAgingFeedsBackToPack(t *testing.T) {
	n := newNode(t)
	attachVM(t, n, "v1", workload.SoftwareTesting)
	// Several brutal deep-discharge days at accelerated aging.
	cfg := DefaultConfig()
	cfg.AgingConfig.AccelFactor = 200
	hard, err := New("hard", cfg)
	if err != nil {
		t.Fatal(err)
	}
	p, _ := workload.ProfileFor(workload.SoftwareTesting)
	v, _ := vm.New("v", p)
	if err := hard.Server().Attach(v); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6*60; i++ {
		if _, err := hard.Step(time.Minute, 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	if hard.Battery().Health() >= 1 {
		t.Error("degradation not applied to pack")
	}
	if hard.Stats().Health >= 1 {
		t.Error("stats health not reflecting degradation")
	}
}

func TestDemandRestoresPoweredState(t *testing.T) {
	n := newNode(t)
	n.Server().SetPowered(false)
	_ = n.Demand()
	if n.Server().Powered() {
		t.Error("Demand() flipped a dark server on")
	}
}
