package baat

import (
	"time"

	"github.com/green-dc/baat/internal/core"
	"github.com/green-dc/baat/internal/experiments"
	"github.com/green-dc/baat/internal/node"
)

// coreMigrateVM adapts core.MigrateVM for the façade's MigrateVM variable.
func coreMigrateVM(src, dst *node.Node, vmID string, transfer time.Duration) error {
	return core.MigrateVM(src, dst, vmID, transfer)
}

// ExperimentTable is one regenerated figure/table of the paper's
// evaluation: formatted rows plus headline values.
type ExperimentTable = experiments.Table

// ExperimentConfig scales the experiment suite (seed, aging acceleration,
// quick mode).
type ExperimentConfig = experiments.Config

// DefaultExperimentConfig returns the full-fidelity configuration.
func DefaultExperimentConfig() ExperimentConfig { return experiments.DefaultConfig() }

// Experiments lists every reproducible paper artifact ID in paper order
// (fig3 … fig22, table1, table3).
func Experiments() []string { return experiments.IDs() }

// RunExperiment regenerates one figure/table by ID.
func RunExperiment(id string, cfg ExperimentConfig) (*ExperimentTable, error) {
	r, err := experiments.Lookup(id)
	if err != nil {
		return nil, err
	}
	return r(cfg)
}

// RunAllExperiments regenerates every figure and table in paper order.
func RunAllExperiments(cfg ExperimentConfig) ([]*ExperimentTable, error) {
	return experiments.RunAll(cfg)
}
