// Command agingreport computes the five BAAT aging metrics (DSN'15 §III) —
// normalized Ah throughput, charge factor, partial cycling, deep-discharge
// time, and discharge rate — from a CSV of battery sensor samples, plus the
// Eq 6 weighted-aging score for a chosen workload demand class.
//
// Input format (header optional):
//
//	seconds,current_a,soc,temp_c
//	60,5.2,0.93,25.1
//	60,5.1,0.91,25.3
//	...
//
// where current_a is terminal current (positive = discharging) and soc is
// the state of charge in [0, 1].
//
// Examples:
//
//	agingreport -in battery.csv -lifetime 7000
//	agingreport -in battery.csv -large-power -more-energy
//	baatsim -csv day.csv && agingreport -demo | head
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"time"

	baat "github.com/green-dc/baat"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "agingreport:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		inPath     = flag.String("in", "-", "input CSV path ('-' for stdin)")
		lifetime   = flag.Float64("lifetime", 7000, "battery nominal life-long Ah throughput (NAT denominator)")
		largePower = flag.Bool("large-power", false, "classify the candidate workload as Large power (Table 3)")
		moreEnergy = flag.Bool("more-energy", false, "classify the candidate workload as More energy (Table 3)")
		demo       = flag.Bool("demo", false, "print a synthetic sample CSV instead of analyzing")
	)
	flag.Parse()

	if *demo {
		return printDemo()
	}

	var r io.Reader = os.Stdin
	if *inPath != "-" {
		f, err := os.Open(*inPath)
		if err != nil {
			return err
		}
		defer func() { _ = f.Close() }()
		r = f
	}

	tracker, err := baat.NewMetricsTracker(baat.AmpereHour(*lifetime))
	if err != nil {
		return err
	}
	n, err := feed(tracker, r)
	if err != nil {
		return err
	}
	if n == 0 {
		return fmt.Errorf("no samples in input")
	}

	m := tracker.Metrics()
	out, in := tracker.Totals()
	fmt.Printf("samples analyzed: %d (%.1f h)\n\n", n, tracker.ElapsedTime().Hours())
	fmt.Printf("NAT  (normalized Ah throughput) : %.4f  (%.1f Ah of %.0f Ah budget)\n", m.NAT, float64(out), *lifetime)
	fmt.Printf("CF   (charge factor)            : %.3f  (%.1f Ah in / %.1f Ah out; healthy 1.0–1.3)\n", m.CF, float64(in), float64(out))
	fmt.Printf("PC   (partial cycling)          : %.3f  (1.0 = all cycling at high SoC)\n", m.PC)
	fmt.Printf("DDT  (deep-discharge time)      : %.1f%% of elapsed time below 40%% SoC\n", m.DDT*100)
	fmt.Printf("DR   (mean discharge rate)      : %.2f A (peak %.2f A, %.2f A while deep)\n\n", m.DR, m.DRPeak, m.DRLowSoC)

	class := baat.DemandClass{LargePower: *largePower, MoreEnergy: *moreEnergy}
	sens := baat.DemandSensitivity(class)
	score := baat.WeightedAging(m, sens)
	fmt.Printf("weighted aging (Eq 6) for a %s workload: %.4f\n", class, score)
	fmt.Println("(rank candidate nodes by this score and place load on the lowest)")
	return nil
}

// feed parses the CSV into the tracker, tolerating a header row.
func feed(tracker *baat.MetricsTracker, r io.Reader) (int, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 4
	var n int
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return n, err
		}
		secs, err1 := strconv.ParseFloat(rec[0], 64)
		cur, err2 := strconv.ParseFloat(rec[1], 64)
		soc, err3 := strconv.ParseFloat(rec[2], 64)
		temp, err4 := strconv.ParseFloat(rec[3], 64)
		if err1 != nil || err2 != nil || err3 != nil || err4 != nil {
			if n == 0 {
				continue // header row
			}
			return n, fmt.Errorf("line %d: malformed sample %v", n+1, rec)
		}
		s := baat.AgingSample{
			Dt:          time.Duration(secs * float64(time.Second)),
			Current:     baat.Ampere(cur),
			SoC:         soc,
			Temperature: baat.Celsius(temp),
		}
		if err := tracker.Observe(s); err != nil {
			return n, fmt.Errorf("line %d: %w", n+1, err)
		}
		n++
	}
}

// printDemo writes a day of synthetic sensor samples: a morning discharge,
// a midday solar recharge, and an evening discharge into the night.
func printDemo() error {
	w := csv.NewWriter(os.Stdout)
	defer w.Flush()
	if err := w.Write([]string{"seconds", "current_a", "soc", "temp_c"}); err != nil {
		return err
	}
	soc := 0.95
	write := func(current float64, hours float64) error {
		steps := int(hours * 60)
		for i := 0; i < steps; i++ {
			soc -= current / 35 / 60 // 35 Ah pack
			if soc > 1 {
				soc = 1
			}
			if soc < 0.02 {
				soc = 0.02
			}
			rec := []string{
				"60",
				strconv.FormatFloat(current, 'f', 2, 64),
				strconv.FormatFloat(soc, 'f', 4, 64),
				"25.0",
			}
			if err := w.Write(rec); err != nil {
				return err
			}
		}
		return nil
	}
	if err := write(4.5, 3); err != nil { // morning on battery
		return err
	}
	if err := write(-6.0, 4); err != nil { // midday recharge
		return err
	}
	if err := write(5.5, 4); err != nil { // evening discharge
		return err
	}
	return nil
}
