package core

import (
	"github.com/green-dc/baat/internal/node"
	"github.com/green-dc/baat/internal/vm"
)

// baatS is BAAT-s (Table 4): aging-aware CPU frequency throttling only.
// It runs the slowdown checks of Fig 9 but, lacking the migration arm,
// always answers an at-risk battery with DVFS — the "passive solution"
// whose performance cost §VI-B calls out.
type baatS struct {
	cfg Config
}

func init() {
	Register("baat-s", Descriptor{
		Display: "BAAT-s",
		Aliases: []string{"baats"},
		Rank:    2,
		Doc:     "aging-aware CPU frequency throttling only (the slowdown arm, Fig 9)",
		Options: slowdownOptionDocs,
		Build: func(spec PolicySpec) (Policy, error) {
			cfg, err := configFromOptions(spec.Options)
			if err != nil {
				return nil, err
			}
			return &baatS{cfg: cfg}, nil
		},
	})
}

// Name returns the Table 4 scheme name.
func (*baatS) Name() string { return "BAAT-s" }

// PlaceVM is load-balance placement: BAAT-s has no aging-aware scheduler.
func (*baatS) PlaceVM(ctx *Context, v *vm.VM) (*node.Node, error) {
	if best := leastReserved(ctx.Nodes, v); best != nil {
		return best, nil
	}
	return nil, ErrNoCapacity
}

// Control applies the Fig 9 loop with power capping as the only actuator:
// DVFS throttling while the battery is at risk, and the protective
// discharge floor that checkpoints the server instead of dragging the pack
// to its hardware cutoff (§I: "power capping mechanisms at critical points
// to avoid aggressively discharging batteries").
func (p *baatS) Control(ctx *Context) error {
	for _, n := range ctx.Nodes {
		if n.SoCFloor() != p.cfg.Slowdown.FloorSoC {
			_ = n.SetSoCFloor(p.cfg.Slowdown.FloorSoC)
		}
		if slowdownNeeded(n, p.cfg.Slowdown) {
			capFrequency(ctx, n)
		} else if recovered(n, p.cfg.Slowdown) {
			restoreFrequency(ctx, n)
		}
	}
	return nil
}

// slowdownNeeded evaluates the Fig 9 trigger: the battery is below the
// trigger SoC and either its deep-discharge time exceeded the threshold or
// its recent discharge rate exceeds P_threshold — the current the pack can
// sustain for the 2-minute reserve (§IV-C, §VI-E).
func slowdownNeeded(n *node.Node, cfg SlowdownConfig) bool {
	if n.Battery().SoC() >= cfg.TriggerSoC {
		return false
	}
	if n.MetricsSuspect() {
		// Quarantined metrics: DDT and DR may be garbage, so below the
		// trigger the policy assumes the worst instead of trusting them —
		// the graceful-degradation posture (cap now, re-evaluate when the
		// sensor chain is trusted again).
		return true
	}
	m := n.Metrics()
	if m.DDT > cfg.DDTThreshold {
		return true
	}
	limit := reserveCurrentLimit(n, cfg.ReserveTime)
	if m.DRLowSoC > limit || m.DRPeak > limit {
		return true
	}
	// Voltage headroom: an aged pack (grown internal resistance) may be
	// unable to hold the server's draw with the 20 % emergency margin even
	// when charge remains — the under-voltage disconnect scenario of §II-B.
	return float64(n.Battery().MaxDischargePower()) < 1.2*float64(n.Server().Power())
}

// recovered reports the battery climbed comfortably above the trigger, so a
// previously capped server may take one step back up the DVFS ladder.
// A node whose metrics are quarantined never reports recovery: DVFS
// uncapping waits until the sensor chain is trusted again.
func recovered(n *node.Node, cfg SlowdownConfig) bool {
	if n.MetricsSuspect() {
		return false
	}
	return n.Battery().SoC() > cfg.TriggerSoC+cfg.Hysteresis
}
