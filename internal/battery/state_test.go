package battery

// Property tests over the snapshot/restore pair: for any reachable pack
// state, Restore(Snapshot()) is the identity, and a corrupted snapshot —
// NaN, infinity, or out-of-range in any field — is rejected without
// touching the pack.

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"github.com/green-dc/baat/internal/units"
)

// walkedPack drives a fresh pack through a short random operation sequence
// so snapshots cover arbitrary reachable states, not just the factory one.
func walkedPack(t *testing.T, seed int64) *Pack {
	t.Helper()
	rng := rand.New(rand.NewPCG(uint64(seed), 0))
	p, err := New(DefaultSpec())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if _, _, err := randomStep(rng, p); err != nil {
			t.Fatal(err)
		}
	}
	return p
}

// TestQuickSnapshotRestoreIdentity: restoring a snapshot onto a pack in any
// other state reproduces the snapshot exactly.
func TestQuickSnapshotRestoreIdentity(t *testing.T) {
	prop := func(seed int64) bool {
		p := walkedPack(t, seed)
		want := p.Snapshot()

		// Drive the pack away from the snapshot, then restore.
		rng := rand.New(rand.NewPCG(uint64(seed), 1))
		for i := 0; i < 20; i++ {
			if _, _, err := randomStep(rng, p); err != nil {
				t.Fatal(err)
			}
		}
		if err := p.Restore(want); err != nil {
			t.Logf("seed %d: restore of own snapshot rejected: %v", seed, err)
			return false
		}
		return p.Snapshot() == want
	}
	if err := quick.Check(prop, quickConfig()); err != nil {
		t.Error(err)
	}
}

// TestQuickRestoreRejectsCorrupt: poisoning any single field with NaN,
// infinity, or a sign flip must fail the restore and leave the pack
// untouched.
func TestQuickRestoreRejectsCorrupt(t *testing.T) {
	corruptions := []struct {
		name string
		f    func(*State)
	}{
		{"nan soc", func(st *State) { st.SoC = math.NaN() }},
		{"soc above one", func(st *State) { st.SoC = 1.5 }},
		{"negative soc", func(st *State) { st.SoC = -0.01 }},
		{"nan capacity scale", func(st *State) { st.CapacityScale = math.NaN() }},
		{"zero capacity scale", func(st *State) { st.CapacityScale = 0 }},
		{"inf ah out", func(st *State) { st.AhOut = units.AmpereHour(math.Inf(1)) }},
		{"negative ah in", func(st *State) { st.AhIn = -1 }},
		{"negative wh out", func(st *State) { st.WhOut = -1 }},
		{"nan cycles", func(st *State) { st.Cycles = math.NaN() }},
		{"negative operating", func(st *State) { st.Operating = -1 }},
		{"fade above one", func(st *State) { st.Degradation.CapacityFade = 1.5 }},
		{"nan fade", func(st *State) { st.Degradation.CapacityFade = math.NaN() }},
		{"frozen temperature", func(st *State) { st.Temperature = -300 }},
	}
	prop := func(seed int64, which uint8) bool {
		p := walkedPack(t, seed)
		before := p.Snapshot()
		c := corruptions[int(which)%len(corruptions)]
		st := before
		c.f(&st)
		if err := p.Restore(st); err == nil {
			t.Logf("seed %d: corrupt state (%s) accepted", seed, c.name)
			return false
		}
		return p.Snapshot() == before
	}
	if err := quick.Check(prop, quickConfig()); err != nil {
		t.Error(err)
	}
}
