module github.com/green-dc/baat

go 1.22
