package sim

import (
	"testing"

	"github.com/green-dc/baat/internal/core"
	"github.com/green-dc/baat/internal/solar"
)

func TestSetPolicyMidRun(t *testing.T) {
	s := newSim(t, "ebuff")
	if _, err := s.RunDay(solar.Cloudy); err != nil {
		t.Fatal(err)
	}
	if err := s.SetPolicy(core.PolicySpec{Name: "baat"}); err != nil {
		t.Fatal(err)
	}
	ds, err := s.RunDay(solar.Cloudy)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Throughput <= 0 {
		t.Error("no throughput after policy swap")
	}
	res, err := s.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Policy != "BAAT" {
		t.Errorf("result policy = %q, want BAAT after swap", res.Policy)
	}
}

func TestSetPolicyInvalidSpecLeavesRunUntouched(t *testing.T) {
	s := newSim(t, "ebuff")
	if err := s.SetPolicy(core.PolicySpec{}); err == nil {
		t.Error("empty policy spec accepted")
	}
	if err := s.SetPolicy(core.PolicySpec{Name: "no-such-policy"}); err == nil {
		t.Error("unknown policy accepted")
	}
	if err := s.SetPolicy(core.PolicySpec{Name: "baat", Options: map[string]string{"bogus": "1"}}); err == nil {
		t.Error("unknown option accepted")
	}
	if err := s.SetPolicy(core.PolicySpec{Name: "baat", Options: map[string]string{"floor": "2"}}); err == nil {
		t.Error("out-of-range option value accepted")
	}
	// A failed swap must leave the running policy in place (validate
	// before teardown): the run continues under the original scheme.
	res, err := s.Run([]solar.Weather{solar.Sunny})
	if err != nil {
		t.Fatal(err)
	}
	if res.Policy != "e-Buff" {
		t.Errorf("result policy = %q, want e-Buff after rejected swaps", res.Policy)
	}
}

func TestIdenticalWeatherAcrossPolicies(t *testing.T) {
	// The whole §VI-B methodology rests on this: two simulators with the
	// same seed but different policies must see byte-identical solar days.
	a := newSim(t, "ebuff")
	b := newSim(t, "baat")
	ra, err := a.Run([]solar.Weather{solar.Cloudy, solar.Rainy})
	if err != nil {
		t.Fatal(err)
	}
	rb, err := b.Run([]solar.Weather{solar.Cloudy, solar.Rainy})
	if err != nil {
		t.Fatal(err)
	}
	// Potential generation is identical, so total solar *used* can differ
	// only through policy decisions — but the weather class sequence and
	// per-day identity must match exactly.
	for i := range ra.Days {
		if ra.Days[i].Weather != rb.Days[i].Weather {
			t.Fatalf("day %d weather diverged: %v vs %v", i, ra.Days[i].Weather, rb.Days[i].Weather)
		}
	}
}

func TestRunUntilEndOfLifeSameWeatherAcrossPolicies(t *testing.T) {
	// RunUntilEndOfLife draws weather from the dedicated stream; the draw
	// sequence must not depend on the policy's own randomness.
	mk := func(policy string) *Result {
		s := newSim(t, policy, func(c *Config) { c.Node.AgingConfig.AccelFactor = 50 })
		res, err := s.RunUntilEndOfLife(solar.Location{SunshineFraction: 0.5}, 6)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ra := mk("ebuff")
	rb := mk("baat-h") // BAAT-h consumes policy randomness (rng.Perm)
	n := len(ra.Days)
	if len(rb.Days) < n {
		n = len(rb.Days)
	}
	for i := 0; i < n; i++ {
		if ra.Days[i].Weather != rb.Days[i].Weather {
			t.Fatalf("day %d weather diverged across policies: %v vs %v",
				i, ra.Days[i].Weather, rb.Days[i].Weather)
		}
	}
}
