package telemetry

// Canonical metric names. Every instrumented package records under these
// constants so that dashboards, tests, and docs/OBSERVABILITY.md agree on
// spelling; the help strings below become the /metrics HELP lines.
const (
	// Simulation engine (internal/sim).
	MetricSimTicks              = "baat_sim_ticks_total"
	MetricSimDays               = "baat_sim_days_total"
	MetricSimJobsSubmitted      = "baat_sim_jobs_submitted_total"
	MetricSimPlacements         = "baat_sim_vm_placements_total"
	MetricSimPlacementsDeferred = "baat_sim_vm_placements_deferred_total"
	MetricSimClockSeconds       = "baat_sim_clock_seconds"
	MetricSimControlSeconds     = "baat_sim_control_duration_seconds"
	MetricSoC                   = "baat_soc_ratio"

	// Fleet health (internal/sim, refreshed every control period).
	MetricFleetMinHealth = "baat_fleet_min_health_ratio"
	MetricFleetAvgSoC    = "baat_fleet_avg_soc_ratio"

	// Policy decisions (internal/core).
	MetricMigrations        = "baat_policy_migrations_total"
	MetricMigrationFailures = "baat_policy_migration_failures_total"
	MetricDVFSCaps          = "baat_policy_dvfs_caps_total"
	MetricDVFSRestores      = "baat_policy_dvfs_restores_total"
	MetricDoDAdjusts        = "baat_policy_dod_adjusts_total"
	MetricDoDGoal           = "baat_policy_dod_goal_ratio"

	// Battery model (internal/battery).
	MetricBatteryDischargeSteps = "baat_battery_discharge_steps_total"
	MetricBatteryChargeSteps    = "baat_battery_charge_steps_total"
	MetricBatteryRestSteps      = "baat_battery_rest_steps_total"
	MetricBatteryCutoffs        = "baat_battery_cutoffs_total"
	MetricBatteryEOL            = "baat_battery_eol_total"

	// Node power routing (internal/node).
	MetricNodeDarkTicks    = "baat_node_dark_ticks_total"
	MetricNodeUtilityTicks = "baat_node_utility_ticks_total"

	// Fault injection and graceful degradation (internal/faults wired
	// through sim and node).
	MetricFaultsInjected      = "baat_faults_injected_total"
	MetricNodeSensorRejected  = "baat_node_sensor_rejected_total"
	MetricNodeSensorMissed    = "baat_node_sensor_missed_total"
	MetricFleetSuspectNodes   = "baat_fleet_suspect_nodes"
	MetricDegradedTransitions = "baat_sim_degraded_transitions_total"

	// Cluster control plane (internal/cluster).
	MetricClusterReportsSent     = "baat_cluster_reports_sent_total"
	MetricClusterReportsReceived = "baat_cluster_reports_received_total"
	MetricClusterCommandsSent    = "baat_cluster_commands_sent_total"
	MetricClusterAcksOK          = "baat_cluster_acks_ok_total"
	MetricClusterAcksRejected    = "baat_cluster_acks_rejected_total"
	MetricClusterTimeouts        = "baat_cluster_command_timeouts_total"
	MetricClusterReconnects      = "baat_cluster_reconnects_total"
	MetricClusterSendErrors      = "baat_cluster_send_errors_total"
	MetricClusterAgents          = "baat_cluster_connected_agents"
)

// helpText is the HELP line served for each canonical metric. Metrics
// registered under ad-hoc names are exposed without a HELP line.
var helpText = map[string]string{
	MetricSimTicks:               "Simulation ticks stepped across all days.",
	MetricSimDays:                "Simulated days completed.",
	MetricSimJobsSubmitted:       "Workload VMs enqueued (services and batch jobs).",
	MetricSimPlacements:          "VM placements accepted by the policy.",
	MetricSimPlacementsDeferred:  "VM placements deferred for lack of capacity (retried each control period).",
	MetricSimClockSeconds:        "Simulated clock in seconds.",
	MetricSimControlSeconds:      "Wall-clock duration of one policy Control invocation in seconds.",
	MetricSoC:                    "Per-node state-of-charge samples inside the operating window (the seven bins of Fig 19).",
	MetricFleetMinHealth:         "Lowest battery health across the fleet (end-of-life at 0.8, DSN'15 §II-B).",
	MetricFleetAvgSoC:            "Mean battery state of charge across the fleet.",
	MetricMigrations:             "VM migrations issued by the power-management policy (Figs 8/9).",
	MetricMigrationFailures:      "VM migrations that failed and rolled back.",
	MetricDVFSCaps:               "Downward DVFS steps applied to protect at-risk batteries (Fig 9).",
	MetricDVFSRestores:           "Upward DVFS steps after battery recovery past trigger plus hysteresis.",
	MetricDoDAdjusts:             "Planned-aging DoD-goal recomputations (Eq 7).",
	MetricDoDGoal:                "Latest fleet-average planned-aging DoD goal (Eq 7).",
	MetricBatteryDischargeSteps:  "Battery pack discharge steps executed.",
	MetricBatteryChargeSteps:     "Battery pack charge steps executed.",
	MetricBatteryRestSteps:       "Battery pack rest (idle) steps executed.",
	MetricBatteryCutoffs:         "Discharge steps truncated by the under-voltage/empty protection cutoff (§II-B).",
	MetricBatteryEOL:             "Batteries that crossed the 80% health end-of-life line.",
	MetricNodeDarkTicks:          "Ticks a server spent dark because neither solar, battery, nor utility could carry it (§VI-E).",
	MetricNodeUtilityTicks:       "Ticks a server drew utility power (UtilityBackup only).",
	MetricFaultsInjected:         "Fault activations delivered by the deterministic injector (docs/FAULTS.md).",
	MetricNodeSensorRejected:     "Battery sensor samples rejected as implausible by the aging tracker's input hardening.",
	MetricNodeSensorMissed:       "Battery sensor samples lost before reaching the aging tracker (dropped readings).",
	MetricFleetSuspectNodes:      "Nodes whose aging metrics are currently quarantined as untrustworthy.",
	MetricDegradedTransitions:    "Node transitions into or out of degraded (metrics-suspect) mode.",
	MetricClusterReportsSent:     "Sensor reports sent by cluster agents.",
	MetricClusterReportsReceived: "Sensor reports received by the controller.",
	MetricClusterCommandsSent:    "Actuation commands pushed by the controller.",
	MetricClusterAcksOK:          "Commands acknowledged as applied.",
	MetricClusterAcksRejected:    "Commands acknowledged as failed by the agent.",
	MetricClusterTimeouts:        "Commands that timed out waiting for an ack.",
	MetricClusterReconnects:      "Agent reconnects after transport failures.",
	MetricClusterSendErrors:      "Agent transport write failures.",
	MetricClusterAgents:          "Agents currently connected to the controller.",
}

// Help returns the canonical help string for a metric name ("" when the
// name is not canonical).
func Help(name string) string { return helpText[name] }
