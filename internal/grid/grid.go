// Package grid models the utility-side economics behind the demand-response
// battery usage scenario of DSN'15 §II-A and Table 1: a time-of-use tariff,
// a peak-shaving controller that discharges the battery through the evening
// tariff peak and recharges it off-peak, and the cost ledger that says
// whether the energy-arbitrage savings outrun the battery wear they cause.
//
// This is the "Demand Response" row of Table 1 made concrete: occasional
// cycling, medium aging speed — and the package quantifies the trade the
// paper warns about, battery depreciation silently eating demand-response
// savings.
package grid

import (
	"fmt"
	"time"

	"github.com/green-dc/baat/internal/aging"
	"github.com/green-dc/baat/internal/battery"
	"github.com/green-dc/baat/internal/units"
)

// Tariff is a time-of-use electricity price schedule.
type Tariff struct {
	// OffPeakPerKWh is the base price in $/kWh.
	OffPeakPerKWh float64
	// PeakPerKWh is the price during the peak window.
	PeakPerKWh float64
	// PeakStart and PeakEnd bound the daily peak window (offsets from
	// midnight; PeakStart < PeakEnd).
	PeakStart time.Duration
	PeakEnd   time.Duration
}

// DefaultTariff returns a typical commercial time-of-use schedule: a 17:00
// to 21:00 evening peak at three times the off-peak rate.
func DefaultTariff() Tariff {
	return Tariff{
		OffPeakPerKWh: 0.08,
		PeakPerKWh:    0.24,
		PeakStart:     17 * time.Hour,
		PeakEnd:       21 * time.Hour,
	}
}

// Validate checks the tariff.
func (t Tariff) Validate() error {
	if t.OffPeakPerKWh <= 0 || t.PeakPerKWh <= 0 {
		return fmt.Errorf("grid: prices must be positive")
	}
	if t.PeakPerKWh < t.OffPeakPerKWh {
		return fmt.Errorf("grid: peak price %v below off-peak %v", t.PeakPerKWh, t.OffPeakPerKWh)
	}
	if t.PeakStart < 0 || t.PeakEnd > 24*time.Hour || t.PeakEnd <= t.PeakStart {
		return fmt.Errorf("grid: need 0 <= peak start < end <= 24h (got %v, %v)", t.PeakStart, t.PeakEnd)
	}
	return nil
}

// PriceAt returns the $/kWh price at a time of day.
func (t Tariff) PriceAt(tod time.Duration) float64 {
	for tod < 0 {
		tod += 24 * time.Hour
	}
	tod %= 24 * time.Hour
	if tod >= t.PeakStart && tod < t.PeakEnd {
		return t.PeakPerKWh
	}
	return t.OffPeakPerKWh
}

// InPeak reports whether a time of day falls in the peak window.
func (t Tariff) InPeak(tod time.Duration) bool {
	return t.PriceAt(tod) == t.PeakPerKWh
}

// ShaverConfig parameterizes the peak-shaving controller.
type ShaverConfig struct {
	// Tariff is the price schedule being arbitraged.
	Tariff Tariff
	// BatterySpec describes the installed battery.
	BatterySpec battery.Spec
	// AgingConfig parameterizes battery wear accounting.
	AgingConfig aging.ModelConfig
	// FloorSoC stops peak-shave discharge (an aging-aware shaver keeps
	// this at 0.4+; an aggressive one runs to the protection limit).
	FloorSoC float64
	// RechargeRate is the off-peak charger power.
	RechargeRate units.Watt
	// InverterEfficiency applies to battery→load delivery.
	InverterEfficiency float64
	// ChargerEfficiency applies to grid→battery charging.
	ChargerEfficiency float64
	// Ambient is the battery-room temperature.
	Ambient units.Celsius
}

// DefaultShaverConfig returns a single-unit shaver at the default tariff.
func DefaultShaverConfig() ShaverConfig {
	return ShaverConfig{
		Tariff:             DefaultTariff(),
		BatterySpec:        battery.DefaultSpec(),
		AgingConfig:        aging.DefaultModelConfig(),
		FloorSoC:           0.40,
		RechargeRate:       120,
		InverterEfficiency: 0.90,
		ChargerEfficiency:  0.93,
		Ambient:            25,
	}
}

// Validate checks the configuration.
func (c ShaverConfig) Validate() error {
	if err := c.Tariff.Validate(); err != nil {
		return err
	}
	if err := c.BatterySpec.Validate(); err != nil {
		return err
	}
	if err := c.AgingConfig.Validate(); err != nil {
		return err
	}
	if c.FloorSoC < 0 || c.FloorSoC >= 1 {
		return fmt.Errorf("grid: floor SoC must be in [0, 1), got %v", c.FloorSoC)
	}
	if c.RechargeRate <= 0 {
		return fmt.Errorf("grid: recharge rate must be positive, got %v", c.RechargeRate)
	}
	if c.InverterEfficiency <= 0 || c.InverterEfficiency > 1 ||
		c.ChargerEfficiency <= 0 || c.ChargerEfficiency > 1 {
		return fmt.Errorf("grid: efficiencies must be in (0, 1]")
	}
	return nil
}

// Ledger is the running cost accounting of a shaver.
type Ledger struct {
	// GridEnergyKWh is total energy bought from the grid.
	GridEnergyKWh float64
	// GridCost is total dollars paid for it.
	GridCost float64
	// ShavedKWh is peak-window load energy served from the battery.
	ShavedKWh float64
	// ArbitrageSavings is the tariff differential earned by shaving
	// (peak price avoided minus the off-peak cost of the recharge energy,
	// including conversion losses).
	ArbitrageSavings float64
}

// Shaver runs a load against the grid with battery peak shaving. Not safe
// for concurrent use.
type Shaver struct {
	cfg    ShaverConfig
	pack   *battery.Pack
	model  *aging.Model
	ledger Ledger
	clock  time.Duration
}

// NewShaver builds a peak shaver with a fresh battery.
func NewShaver(cfg ShaverConfig) (*Shaver, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	pack, err := battery.New(cfg.BatterySpec)
	if err != nil {
		return nil, err
	}
	model, err := aging.NewModel(cfg.AgingConfig, cfg.BatterySpec.NominalCapacity)
	if err != nil {
		return nil, err
	}
	return &Shaver{cfg: cfg, pack: pack, model: model}, nil
}

// Battery exposes the pack for inspection.
func (s *Shaver) Battery() *battery.Pack { return s.pack }

// Ledger returns the cost accounting so far.
func (s *Shaver) Ledger() Ledger { return s.ledger }

// Clock returns elapsed simulated time.
func (s *Shaver) Clock() time.Duration { return s.clock }

// Step serves the given load for dt at time-of-day tod. During the tariff
// peak the battery carries as much of the load as it can down to the floor;
// off-peak the load runs on grid power and the battery recharges.
func (s *Shaver) Step(tod time.Duration, dt time.Duration, load units.Watt) error {
	if dt <= 0 {
		return fmt.Errorf("grid: step duration must be positive, got %v", dt)
	}
	if load < 0 {
		return fmt.Errorf("grid: negative load %v", load)
	}
	price := s.cfg.Tariff.PriceAt(tod)
	inPeak := s.cfg.Tariff.InPeak(tod)

	gridPower := float64(load)
	var res battery.StepResult
	var err error
	switch {
	case inPeak && load > 0 && s.pack.SoC() > s.cfg.FloorSoC && !s.pack.CutOff():
		// Shave: the battery carries the load through the inverter.
		need := units.Watt(float64(load) / s.cfg.InverterEfficiency)
		if max := s.pack.MaxDischargePower(); need > max {
			need = max
		}
		res, err = s.pack.Discharge(need, dt, s.cfg.Ambient)
		if err != nil {
			return err
		}
		served := float64(res.Energy) * s.cfg.InverterEfficiency // Wh at the load
		shaved := served
		if lim := float64(load) * dt.Hours(); shaved > lim {
			shaved = lim
		}
		gridPower = float64(load) - shaved/dt.Hours()
		if gridPower < 0 {
			gridPower = 0
		}
		s.ledger.ShavedKWh += shaved / 1000
		// Savings: peak price avoided now, minus what the recharge energy
		// will cost off-peak including round-trip losses.
		rechargeKWh := shaved / 1000 / s.cfg.InverterEfficiency / s.cfg.ChargerEfficiency
		s.ledger.ArbitrageSavings += shaved/1000*s.cfg.Tariff.PeakPerKWh -
			rechargeKWh*s.cfg.Tariff.OffPeakPerKWh
	case !inPeak && s.pack.SoC() < 1:
		// Off-peak: recharge from the grid alongside the load.
		res, err = s.pack.Charge(units.Watt(float64(s.cfg.RechargeRate)*s.cfg.ChargerEfficiency), dt, s.cfg.Ambient)
		if err != nil {
			return err
		}
		boughtWh := -float64(res.Energy) / s.cfg.ChargerEfficiency
		s.ledger.GridEnergyKWh += boughtWh / 1000
		s.ledger.GridCost += boughtWh / 1000 * price
	default:
		if rerr := s.pack.Rest(dt, s.cfg.Ambient); rerr != nil {
			return rerr
		}
	}

	// The load itself always draws whatever the battery did not cover.
	loadWh := gridPower * dt.Hours()
	s.ledger.GridEnergyKWh += loadWh / 1000
	s.ledger.GridCost += loadWh / 1000 * price

	s.clock += dt
	sample := aging.Sample{
		Dt:          dt,
		Current:     res.Current,
		SoC:         s.pack.SoC(),
		Temperature: s.pack.Temperature(),
	}
	if err := s.model.Observe(sample); err != nil {
		return err
	}
	s.pack.ApplyDegradation(s.model.Degradation())
	return nil
}

// RunDays drives the shaver through whole days of a constant load.
func (s *Shaver) RunDays(days int, load units.Watt, tick time.Duration) error {
	if days <= 0 {
		return fmt.Errorf("grid: days must be positive, got %d", days)
	}
	if tick <= 0 {
		tick = time.Minute
	}
	for d := 0; d < days; d++ {
		for tod := time.Duration(0); tod < 24*time.Hour; tod += tick {
			if err := s.Step(tod, tick, load); err != nil {
				return err
			}
		}
	}
	return nil
}

// NetBenefit returns arbitrage savings minus battery depreciation over the
// elapsed period, given the battery's unit cost: the quantity that decides
// whether dual-purposing backup batteries for demand response pays off
// (the question of [21] in the paper's related work).
func (s *Shaver) NetBenefit(batteryCost float64) float64 {
	wear := 1 - s.pack.Health()
	// Depreciate the battery linearly over the capacity it may lose
	// before end-of-life (20 %).
	depreciation := batteryCost * wear / (1 - battery.EndOfLifeHealth)
	return s.ledger.ArbitrageSavings - depreciation
}
