package aging

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"github.com/green-dc/baat/internal/units"
)

// TestDamageMonotoneProperty: whatever the sample stream, accumulated
// damage never decreases — aging is irreversible (§II-B).
func TestDamageMonotoneProperty(t *testing.T) {
	f := func(raw []int16) bool {
		m, err := NewModel(DefaultModelConfig(), 35)
		if err != nil {
			return false
		}
		prevFade := 0.0
		prevRes := 0.0
		prevEff := 0.0
		for _, r := range raw {
			s := Sample{
				Dt:          time.Minute,
				Current:     units.Ampere(float64(r % 40)), // charge and discharge
				SoC:         math.Abs(float64(r%100)) / 100,
				Temperature: units.Celsius(20 + float64(r%30)),
			}
			if err := m.Observe(s); err != nil {
				return false
			}
			d := m.Degradation()
			if d.CapacityFade < prevFade || d.ResistanceGrowth < prevRes || d.EfficiencyLoss < prevEff {
				return false
			}
			prevFade, prevRes, prevEff = d.CapacityFade, d.ResistanceGrowth, d.EfficiencyLoss
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestMechanismTotalsConsistent: the per-mechanism decomposition is always
// non-negative and only grows.
func TestMechanismTotalsConsistent(t *testing.T) {
	m, err := NewModel(DefaultModelConfig(), 35)
	if err != nil {
		t.Fatal(err)
	}
	prev := map[Mechanism]float64{}
	for i := 0; i < 200; i++ {
		s := Sample{
			Dt:          15 * time.Minute,
			Current:     units.Ampere(float64(i%21) - 10),
			SoC:         float64(i%100) / 100,
			Temperature: 30,
		}
		if err := m.Observe(s); err != nil {
			t.Fatal(err)
		}
		cur := m.ByMechanism()
		for mech, v := range cur {
			if v < 0 {
				t.Fatalf("%v went negative: %v", mech, v)
			}
			if v < prev[mech] {
				t.Fatalf("%v decreased: %v -> %v", mech, prev[mech], v)
			}
		}
		prev = cur
	}
	// All five mechanisms must appear in the decomposition.
	if len(prev) != NumMechanisms {
		t.Errorf("decomposition has %d mechanisms, want %d", len(prev), NumMechanisms)
	}
}

// TestLowSoCStressShape pins the nonlinearity every lifetime result rests
// on: 1 at the 40% line, monotone increasing below it, bounded at empty.
func TestLowSoCStressShape(t *testing.T) {
	if got := lowSoCStress(0.40); got != 1 {
		t.Errorf("stress at the deep-discharge line = %v, want 1", got)
	}
	if got := lowSoCStress(0.80); got != 1 {
		t.Errorf("stress above the line = %v, want 1", got)
	}
	prev := 1.0
	for soc := 0.39; soc >= 0; soc -= 0.01 {
		cur := lowSoCStress(soc)
		if cur < prev {
			t.Fatalf("stress not monotone at SoC %.2f: %v < %v", soc, cur, prev)
		}
		prev = cur
	}
	if empty := lowSoCStress(0); empty < 3 || empty > 10 {
		t.Errorf("stress at empty = %v, want within the calibrated 3–10 band", empty)
	}
}
