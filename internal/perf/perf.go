// Package perf is the benchmark-regression harness: a fixed suite of
// steady-state benchmarks over the hot paths (fleet stepping, aging-metric
// tracking, battery physics, experiment sweeps), a JSON report format, and
// a comparator that fails when a run regresses against a committed
// baseline (BENCH_baseline.json at the repository root).
//
// The suite runs inside any binary via testing.Benchmark, so the
// baatbench CLI can emit and compare reports without a test harness:
//
//	baatbench -bench-json BENCH_baseline.json   # refresh the baseline
//	baatbench -bench-compare BENCH_baseline.json
//
// Time-per-op comparisons get a slack factor (default 15 %) because wall
// time is machine- and load-dependent. Allocations are deterministic for
// the steady-state paths, so entries marked Pinned — the allocation-free
// tick paths — tolerate no allocs/op growth at all; the remaining entries
// get a small slack that absorbs b.N-averaging jitter while still
// catching any real allocation regression.
package perf

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// Entry is one benchmark measurement.
type Entry struct {
	// Name identifies the benchmark, e.g. "fleet_step/nodes=64/workers=1".
	Name string `json:"name"`
	// NsPerOp is wall time per operation in nanoseconds.
	NsPerOp float64 `json:"ns_per_op"`
	// AllocsPerOp is heap allocations per operation.
	AllocsPerOp int64 `json:"allocs_per_op"`
	// BytesPerOp is heap bytes per operation.
	BytesPerOp int64 `json:"bytes_per_op"`
	// Pinned marks an allocation-free hot path: the comparator rejects any
	// allocs/op increase, however small.
	Pinned bool `json:"pinned,omitempty"`
	// NodeStepsPerSec is simulated node-steps per wall second for the
	// fleet-stepping entries (nodes × ticks-per-day ÷ time-per-day): the
	// throughput figure the ROADMAP's scaling axis is tracked by. It is
	// derived from NsPerOp, so the comparator gates only the latter;
	// zero for entries where the notion does not apply.
	NodeStepsPerSec float64 `json:"node_steps_per_sec,omitempty"`
}

// Report is a full suite run.
type Report struct {
	Entries []Entry `json:"entries"`
}

// Lookup returns the entry with the given name.
func (r Report) Lookup(name string) (Entry, bool) {
	for _, e := range r.Entries {
		if e.Name == name {
			return e, true
		}
	}
	return Entry{}, false
}

// ReadReport loads a report from a JSON file.
func ReadReport(path string) (Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Report{}, fmt.Errorf("perf: %w", err)
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return Report{}, fmt.Errorf("perf: parse %s: %w", path, err)
	}
	return r, nil
}

// WriteJSON serializes the report, indented, with a trailing newline.
func (r Report) WriteJSON() ([]byte, error) {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("perf: %w", err)
	}
	return append(data, '\n'), nil
}

// Options tunes the comparator.
type Options struct {
	// TimeSlack is the tolerated fractional ns/op growth (0.15 = +15 %).
	TimeSlack float64
	// AllocSlack is the tolerated fractional allocs/op growth for entries
	// that are not pinned. Pinned entries always use zero.
	AllocSlack float64
}

// DefaultOptions matches the check.sh gate: 15 % time slack, 1 % alloc
// slack on unpinned entries, none on pinned ones.
func DefaultOptions() Options {
	return Options{TimeSlack: 0.15, AllocSlack: 0.01}
}

// Delta is one baseline-vs-current comparison row: the raw measurements
// plus which gates tripped. Deltas reports every baseline entry — not only
// the regressed ones — so a failing gate can print the whole table and
// show regressions in the context of their neighbors.
type Delta struct {
	Name   string
	Pinned bool
	// Missing marks a baseline entry absent from the current run (itself a
	// regression: a silently dropped benchmark is a blind spot).
	Missing    bool
	BaseNs     float64
	CurNs      float64
	BaseAllocs int64
	CurAllocs  int64
	// TimeRegressed / AllocRegressed report whether the respective gate
	// tripped under the Options the deltas were computed with.
	TimeRegressed  bool
	AllocRegressed bool
}

// TimePct returns the ns/op change as a signed percentage of the baseline
// (+12.3 means 12.3 % slower). Zero for missing entries.
func (d Delta) TimePct() float64 {
	if d.Missing || d.BaseNs == 0 {
		return 0
	}
	return (d.CurNs - d.BaseNs) / d.BaseNs * 100
}

// Deltas compares current against baseline entry by entry, in baseline
// order. Entries new in current are ignored so the baseline can lag a
// suite extension.
func Deltas(baseline, current Report, opt Options) []Delta {
	ds := make([]Delta, 0, len(baseline.Entries))
	for _, base := range baseline.Entries {
		d := Delta{
			Name:       base.Name,
			Pinned:     base.Pinned,
			BaseNs:     base.NsPerOp,
			BaseAllocs: base.AllocsPerOp,
		}
		cur, ok := current.Lookup(base.Name)
		if !ok {
			d.Missing = true
			ds = append(ds, d)
			continue
		}
		d.CurNs = cur.NsPerOp
		d.CurAllocs = cur.AllocsPerOp
		d.TimeRegressed = cur.NsPerOp > base.NsPerOp*(1+opt.TimeSlack)
		allocSlack := opt.AllocSlack
		if base.Pinned {
			allocSlack = 0
		}
		d.AllocRegressed = float64(cur.AllocsPerOp) > float64(base.AllocsPerOp)*(1+allocSlack)
		ds = append(ds, d)
	}
	return ds
}

// FormatDeltaTable renders deltas as an aligned text table — one row per
// baseline entry with ns/op, Δ%, allocs/op, the allocation delta, and
// which gate (if any) tripped. The bench-regression gate prints this on
// failure so a regression is diagnosed from the report itself rather than
// from the first offending entry alone.
func FormatDeltaTable(ds []Delta) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-46s %14s %14s %8s %12s %12s %8s  %s\n",
		"entry", "base ns/op", "cur ns/op", "Δ%", "base allocs", "cur allocs", "Δallocs", "gate")
	for _, d := range ds {
		gate := "ok"
		switch {
		case d.Missing:
			gate = "MISSING"
		case d.TimeRegressed && d.AllocRegressed:
			gate = "TIME+ALLOCS"
		case d.TimeRegressed:
			gate = "TIME"
		case d.AllocRegressed:
			gate = "ALLOCS"
		}
		if d.Missing {
			fmt.Fprintf(&b, "%-46s %14.0f %14s %8s %12d %12s %8s  %s\n",
				d.Name, d.BaseNs, "-", "-", d.BaseAllocs, "-", "-", gate)
			continue
		}
		fmt.Fprintf(&b, "%-46s %14.0f %14.0f %+7.1f%% %12d %12d %+8d  %s\n",
			d.Name, d.BaseNs, d.CurNs, d.TimePct(), d.BaseAllocs, d.CurAllocs,
			d.CurAllocs-d.BaseAllocs, gate)
	}
	return b.String()
}

// Compare checks current against baseline and returns one human-readable
// line per regression; an empty slice means the gate passes. Baseline
// entries missing from the current report are regressions (a benchmark
// silently dropped is a blind spot, not a pass); entries new in current
// are ignored so the baseline can lag a suite extension.
func Compare(baseline, current Report, opt Options) []string {
	var regressions []string
	for _, d := range Deltas(baseline, current, opt) {
		if d.Missing {
			regressions = append(regressions,
				fmt.Sprintf("%s: present in baseline but missing from current run", d.Name))
			continue
		}
		if d.TimeRegressed {
			regressions = append(regressions,
				fmt.Sprintf("%s: time/op %.0f ns exceeds baseline %.0f ns by more than %.0f%%",
					d.Name, d.CurNs, d.BaseNs, opt.TimeSlack*100))
		}
		if d.AllocRegressed {
			regressions = append(regressions,
				fmt.Sprintf("%s: allocs/op %d exceeds baseline %d (pinned=%v)",
					d.Name, d.CurAllocs, d.BaseAllocs, d.Pinned))
		}
	}
	return regressions
}
