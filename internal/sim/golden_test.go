package sim

// The golden-trace regression harness: a fixed-seed 30-day simulation whose
// per-day aging metrics, SoC distribution, and final fleet health are
// pinned to testdata/golden_trace.json. Any change to the physics, the
// allocator, or the policy engine that moves a number shows up as a
// field-level diff here — the reproducibility discipline Valentini et al.
// call for when validating aging controllers against battery-state
// trajectories.
//
// Counters compare exactly; floating-point fields compare to a relative
// 1e-9, loose enough to survive serialization round-trips and tight enough
// to catch any real physics change. After an *intentional* change,
// regenerate with:
//
//	go test ./internal/sim -run TestGoldenTrace -update
//
// and review the JSON diff like any other code change.

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"github.com/green-dc/baat/internal/core"
	"github.com/green-dc/baat/internal/rng"
	"github.com/green-dc/baat/internal/solar"
	"github.com/green-dc/baat/internal/workload"
)

var update = flag.Bool("update", false, "regenerate golden trace fixtures")

const goldenPath = "testdata/golden_trace.json"

// goldenMetrics is one node's five-metric aging snapshot (§III).
type goldenMetrics struct {
	NodeID string
	NAT    float64
	CF     float64
	PC     float64
	DDT    float64
	DR     float64
}

// goldenDay is one simulated day of the trace.
type goldenDay struct {
	Day         int
	Weather     string
	Throughput  float64
	DowntimeNS  int64
	LowSoCNS    int64
	SolarWh     float64
	NodeMetrics []goldenMetrics
}

// goldenNode is a node's end-of-run state.
type goldenNode struct {
	ID                   string
	Health               float64
	SoC                  float64
	Throughput           float64
	DowntimeNS           int64
	AhOut                float64
	AhIn                 float64
	EquivalentFullCycles float64
}

// goldenTrace is the serialized fixture.
type goldenTrace struct {
	Description     string
	Seed            int64
	Days            int
	Policy          string
	Throughput      float64
	FleetLifetimeNS int64
	SoCCounts       []int64
	SoCTotal        int64
	DayTrace        []goldenDay
	FinalNodes      []goldenNode
}

// goldenRun replays the pinned scenario: the six-node prototype fleet under
// the full BAAT policy, 30 days of seed-derived mixed weather, aging
// accelerated so the metrics move visibly within the window.
func goldenRun(t *testing.T) *goldenTrace {
	return goldenScenario(t,
		"six-node prototype fleet, BAAT policy, 30 days, sunshine fraction 0.5, accel 10",
		nil)
}

const (
	goldenSeed = 20150614 // the paper's venue date; any fixed value works
	goldenDays = 30
)

// goldenSim constructs a simulator for the pinned golden configuration,
// letting variants (the faulted trace, worker sweeps) adjust the config
// before construction.
func goldenSim(t *testing.T, mutate func(*Config)) *Simulator {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Policy = core.PolicySpec{Name: "baat"}
	cfg.Seed = goldenSeed
	cfg.Services = workload.PrototypeServices()
	cfg.JobsPerDay = 2
	cfg.Solar.Scale = 1.5
	cfg.Node.AgingConfig.AccelFactor = 10
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// goldenWeather draws the pinned 30-day weather sequence up front, exactly
// as cmd/baatsim's -weather mix does, so a run can be split at any day
// boundary without disturbing the sequence.
func goldenWeather() []solar.Weather {
	wxRng := rng.New(goldenSeed, rng.CLIWeather)
	loc := solar.Location{SunshineFraction: 0.5}
	seq := make([]solar.Weather, goldenDays)
	for i := range seq {
		seq[i] = loc.DrawWeather(wxRng.Rand)
	}
	return seq
}

// traceDays steps the simulator through the weather slice, appending each
// day's stats and per-node aging metrics to the trace.
func traceDays(t *testing.T, s *Simulator, weathers []solar.Weather, trace *goldenTrace) {
	t.Helper()
	for _, w := range weathers {
		ds, err := s.RunDay(w)
		if err != nil {
			t.Fatal(err)
		}
		gd := goldenDay{
			Day:        ds.Day,
			Weather:    ds.Weather.String(),
			Throughput: ds.Throughput,
			DowntimeNS: int64(ds.Downtime),
			LowSoCNS:   int64(ds.LowSoCTime),
			SolarWh:    float64(ds.SolarEnergy),
		}
		for _, n := range s.Nodes() {
			m := n.Metrics()
			gd.NodeMetrics = append(gd.NodeMetrics, goldenMetrics{
				NodeID: n.ID(), NAT: m.NAT, CF: m.CF, PC: m.PC, DDT: m.DDT, DR: m.DR,
			})
		}
		trace.DayTrace = append(trace.DayTrace, gd)
		trace.Throughput += ds.Throughput
	}
}

// traceFinish folds the end-of-run fleet state into the trace.
func traceFinish(s *Simulator, trace *goldenTrace) {
	res := &Result{Policy: trace.Policy}
	s.finish(res)
	trace.FleetLifetimeNS = int64(res.FleetLifetime)
	trace.SoCCounts = res.SoCHistogram.Counts()
	trace.SoCTotal = res.SoCHistogram.Total()
	for _, n := range res.Nodes {
		trace.FinalNodes = append(trace.FinalNodes, goldenNode{
			ID:                   n.ID,
			Health:               n.Health,
			SoC:                  n.SoC,
			Throughput:           n.Throughput,
			DowntimeNS:           int64(n.Downtime),
			AhOut:                float64(n.Counters.AhOut),
			AhIn:                 float64(n.Counters.AhIn),
			EquivalentFullCycles: n.Counters.EquivalentFullCycles,
		})
	}
}

// goldenScenario runs the shared golden setup end to end.
func goldenScenario(t *testing.T, desc string, mutate func(*Config)) *goldenTrace {
	t.Helper()
	s := goldenSim(t, mutate)
	trace := &goldenTrace{
		Description: desc,
		Seed:        goldenSeed,
		Days:        goldenDays,
		Policy:      s.policy.Name(),
	}
	traceDays(t, s, goldenWeather(), trace)
	traceFinish(s, trace)
	return trace
}

func TestGoldenTrace(t *testing.T) {
	checkGolden(t, goldenPath, goldenRun(t))
}

// checkGolden compares a trace against its pinned fixture, or regenerates
// the fixture under -update.
func checkGolden(t *testing.T, path string, got *goldenTrace) {
	t.Helper()
	raw, err := json.MarshalIndent(got, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	raw = append(raw, '\n')

	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden trace regenerated: %s", path)
		return
	}

	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden trace (run with -update to create): %v", err)
	}
	diffs := compareJSON(t, want, raw)
	for _, d := range diffs {
		t.Error(d)
	}
	if len(diffs) > 0 {
		t.Fatalf("%d field(s) diverged from %s; if the change is intentional, regenerate with -update and review the diff", len(diffs), path)
	}
}

// compareJSON walks two JSON documents field-by-field: integers (counters,
// durations, bin counts) must match exactly, other numbers to a relative
// 1e-9, everything else byte-for-byte. It returns human-readable diffs.
func compareJSON(t *testing.T, want, got []byte) []string {
	t.Helper()
	var w, g any
	if err := unmarshalNumbers(want, &w); err != nil {
		t.Fatalf("golden fixture unreadable: %v", err)
	}
	if err := unmarshalNumbers(got, &g); err != nil {
		t.Fatal(err)
	}
	var diffs []string
	diffValue("$", w, g, &diffs)
	return diffs
}

func unmarshalNumbers(raw []byte, v *any) error {
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.UseNumber()
	return dec.Decode(v)
}

func diffValue(path string, want, got any, diffs *[]string) {
	switch w := want.(type) {
	case map[string]any:
		g, ok := got.(map[string]any)
		if !ok {
			*diffs = append(*diffs, fmt.Sprintf("%s: want object, got %T", path, got))
			return
		}
		for k, wv := range w {
			gv, ok := g[k]
			if !ok {
				*diffs = append(*diffs, fmt.Sprintf("%s.%s: missing", path, k))
				continue
			}
			diffValue(path+"."+k, wv, gv, diffs)
		}
		for k := range g {
			if _, ok := w[k]; !ok {
				*diffs = append(*diffs, fmt.Sprintf("%s.%s: unexpected field", path, k))
			}
		}
	case []any:
		g, ok := got.([]any)
		if !ok {
			*diffs = append(*diffs, fmt.Sprintf("%s: want array, got %T", path, got))
			return
		}
		if len(w) != len(g) {
			*diffs = append(*diffs, fmt.Sprintf("%s: length %d, want %d", path, len(g), len(w)))
			return
		}
		for i := range w {
			diffValue(fmt.Sprintf("%s[%d]", path, i), w[i], g[i], diffs)
		}
	case json.Number:
		g, ok := got.(json.Number)
		if !ok {
			*diffs = append(*diffs, fmt.Sprintf("%s: want number, got %T", path, got))
			return
		}
		diffNumber(path, w, g, diffs)
	default:
		if want != got {
			*diffs = append(*diffs, fmt.Sprintf("%s: got %v, want %v", path, got, want))
		}
	}
}

// diffNumber applies the exact-for-counters / 1e-9-for-floats rule: when
// both sides serialized as integers they must be identical; otherwise they
// compare as floats with relative tolerance.
func diffNumber(path string, want, got json.Number, diffs *[]string) {
	wi, werr := strconv.ParseInt(want.String(), 10, 64)
	gi, gerr := strconv.ParseInt(got.String(), 10, 64)
	if werr == nil && gerr == nil {
		if wi != gi {
			*diffs = append(*diffs, fmt.Sprintf("%s: got %d, want %d (exact)", path, gi, wi))
		}
		return
	}
	wf, err1 := want.Float64()
	gf, err2 := got.Float64()
	if err1 != nil || err2 != nil {
		*diffs = append(*diffs, fmt.Sprintf("%s: unparsable numbers %q vs %q", path, got, want))
		return
	}
	tol := 1e-9 * math.Max(1, math.Max(math.Abs(wf), math.Abs(gf)))
	if math.Abs(wf-gf) > tol {
		*diffs = append(*diffs, fmt.Sprintf("%s: got %v, want %v (±%g)", path, gf, wf, tol))
	}
}

// TestGoldenTraceStable replays the golden scenario twice in one process
// and requires identical traces — the precondition for the fixture to be
// meaningful at all (no hidden global state, map-order, or time.Now leaks).
func TestGoldenTraceStable(t *testing.T) {
	if testing.Short() {
		t.Skip("double 30-day replay")
	}
	a, err := json.Marshal(goldenRun(t))
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(goldenRun(t))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("two replays of the golden scenario diverged")
	}
}
