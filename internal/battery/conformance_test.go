package battery_test

// Every battery model tier must pass the shared conformance suite: the
// interface contract (SoC bounds, health monotonicity, energy balance,
// snapshot/restore identity, corrupt-state and bad-input rejection) is
// chemistry-independent, so the suite runs identically against the
// electrochemical lead-acid reference, the linear coulomb-counting tier,
// and the LFP chemistry. Adding a Kind without a passing entry here is a
// test failure by construction (the loop walks battery.Kinds()).

import (
	"testing"

	"github.com/green-dc/baat/internal/battery"
	"github.com/green-dc/baat/internal/battery/modeltest"
)

func TestModelConformance(t *testing.T) {
	for _, kind := range battery.Kinds() {
		kind := kind
		modeltest.Run(t, string(kind), func(t *testing.T) battery.Model {
			spec, err := battery.DefaultSpecFor(kind)
			if err != nil {
				t.Fatal(err)
			}
			m, err := battery.NewModel(spec)
			if err != nil {
				t.Fatal(err)
			}
			return m
		})
	}
}
