package battery

import (
	"fmt"
	"math"
	"time"

	"github.com/green-dc/baat/internal/units"
)

// State is the serializable state of a Pack: live electrical state, the
// fixed manufacturing variation, applied wear, and the cumulative usage
// counters. The Spec is construction-time input, not state — a snapshot
// restores only onto a pack built from the same spec.
type State struct {
	CapacityScale   float64          `json:"capacity_scale"`
	ResistanceScale float64          `json:"resistance_scale"`
	SoC             float64          `json:"soc"`
	Temperature     units.Celsius    `json:"temperature"`
	Degradation     Degradation      `json:"degradation"`
	AhOut           units.AmpereHour `json:"ah_out"`
	AhIn            units.AmpereHour `json:"ah_in"`
	WhOut           units.WattHour   `json:"wh_out"`
	WhIn            units.WattHour   `json:"wh_in"`
	Operating       time.Duration    `json:"operating"`
	Cycles          float64          `json:"cycles"`
}

// Snapshot captures the pack's state.
func (p *Pack) Snapshot() State {
	return State{
		CapacityScale:   p.capacityScale,
		ResistanceScale: p.resistanceScale,
		SoC:             p.soc,
		Temperature:     p.temp,
		Degradation:     p.deg,
		AhOut:           p.ahOut,
		AhIn:            p.ahIn,
		WhOut:           p.whOut,
		WhIn:            p.whIn,
		Operating:       p.operating,
		Cycles:          p.cycles,
	}
}

// Restore overwrites the pack's state from a snapshot. The state is
// validated against the pack's spec first and rejected wholesale on any
// out-of-range or non-finite field, so a corrupt checkpoint fails loudly
// instead of producing silent physics.
func (p *Pack) Restore(st State) error {
	if err := st.validate(p.spec); err != nil {
		return err
	}
	p.capacityScale = st.CapacityScale
	p.resistanceScale = st.ResistanceScale
	p.soc = st.SoC
	p.temp = st.Temperature
	p.deg = st.Degradation
	p.ahOut = st.AhOut
	p.ahIn = st.AhIn
	p.whOut = st.WhOut
	p.whIn = st.WhIn
	p.operating = st.Operating
	p.cycles = st.Cycles
	return nil
}

func (st State) validate(spec Spec) error {
	inRange := func(name string, v, lo, hi float64) error {
		if math.IsNaN(v) || v < lo || v > hi {
			return fmt.Errorf("battery: restore: %s must be in [%v, %v], got %v", name, lo, hi, v)
		}
		return nil
	}
	nonNeg := func(name string, v float64) error {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			return fmt.Errorf("battery: restore: %s must be finite and non-negative, got %v", name, v)
		}
		return nil
	}
	checks := []error{
		// Manufacturing variation is drawn clamped to [0.7, 1.3]; accept a
		// wider but still physical envelope.
		inRange("capacity scale", st.CapacityScale, 0.1, 10),
		inRange("resistance scale", st.ResistanceScale, 0.1, 10),
		inRange("soc", st.SoC, 0, 1),
		inRange("temperature", float64(st.Temperature), -273, 200),
		inRange("capacity fade", st.Degradation.CapacityFade, 0, 1),
		inRange("resistance growth", st.Degradation.ResistanceGrowth, 0, 20),
		inRange("efficiency loss", st.Degradation.EfficiencyLoss, 0, spec.CoulombicEfficiency-0.05),
		nonNeg("ah out", float64(st.AhOut)),
		nonNeg("ah in", float64(st.AhIn)),
		nonNeg("wh out", float64(st.WhOut)),
		nonNeg("wh in", float64(st.WhIn)),
		nonNeg("cycles", st.Cycles),
	}
	for _, err := range checks {
		if err != nil {
			return err
		}
	}
	if st.Operating < 0 {
		return fmt.Errorf("battery: restore: operating time must be non-negative, got %v", st.Operating)
	}
	return nil
}
