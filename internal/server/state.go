package server

import (
	"fmt"
	"math"
	"time"

	"github.com/green-dc/baat/internal/vm"
)

// State is the serializable state of a Server: power and DVFS position,
// accumulated work and up/down time, and the full state of every hosted
// VM. The Spec is construction-time input.
type State struct {
	FreqIdx    int           `json:"freq_idx"`
	Powered    bool          `json:"powered"`
	Throughput float64       `json:"throughput"`
	Downtime   time.Duration `json:"downtime"`
	Uptime     time.Duration `json:"uptime"`
	VMs        []vm.State    `json:"vms"`
}

// Snapshot captures the server's state, including its hosted VMs.
func (s *Server) Snapshot() State {
	st := State{
		FreqIdx:    s.freqIdx,
		Powered:    s.powered,
		Throughput: s.throughput,
		Downtime:   s.downtime,
		Uptime:     s.uptime,
	}
	for _, v := range s.vms {
		st.VMs = append(st.VMs, v.Snapshot())
	}
	return st
}

// Restore overwrites the server's state from a snapshot, rebuilding its
// hosted VMs from their serialized states. Invalid state is rejected
// wholesale before anything is mutated.
func (s *Server) Restore(st State) error {
	if st.FreqIdx < 0 || st.FreqIdx >= len(s.spec.FreqLevels) {
		return fmt.Errorf("server %s: restore: DVFS index %d out of range [0, %d)",
			s.id, st.FreqIdx, len(s.spec.FreqLevels))
	}
	if math.IsNaN(st.Throughput) || math.IsInf(st.Throughput, 0) || st.Throughput < 0 {
		return fmt.Errorf("server %s: restore: throughput must be finite and non-negative, got %v",
			s.id, st.Throughput)
	}
	if st.Downtime < 0 || st.Uptime < 0 {
		return fmt.Errorf("server %s: restore: negative up/down time", s.id)
	}
	vms := make([]*vm.VM, 0, len(st.VMs))
	for _, vst := range st.VMs {
		v, err := vm.FromState(vst)
		if err != nil {
			return fmt.Errorf("server %s: restore: %w", s.id, err)
		}
		vms = append(vms, v)
	}
	s.freqIdx = st.FreqIdx
	s.powered = st.Powered
	s.throughput = st.Throughput
	s.downtime = st.Downtime
	s.uptime = st.Uptime
	s.vms = vms
	return nil
}
