package experiments

// The battery-model experiments beyond the paper's artifact list:
//
//   - ModelFidelity ("model-fidelity") is the fidelity-vs-accuracy
//     harness. It replays the same multi-day scenario — clean and under
//     the chaos fault profile — once per battery model tier and reports
//     each tier's headline metrics side by side, plus the relative error
//     of the cheap linear tier against the electrochemical lead-acid
//     reference. This is the number that tells you when the linear tier
//     is good enough for a capacity-planning sweep (it runs the same
//     physics loop with no Peukert solve, no sag, no thermal model).
//     The LFP column is informational: a different chemistry is expected
//     to behave differently, not to approximate lead-acid.
//
//   - MixedFleet ("mixed-fleet") runs the retrofit scenario: half the
//     fleet on legacy lead-acid, half on LFP retrofits (sim.BatteryFleet),
//     under each policy. LFP's flat OCV and cycle tolerance mean the two
//     halves age at different speeds — exactly the variation BAAT's
//     hiding/slowdown machinery is supposed to manage — so the table
//     reports per-chemistry health alongside the usual policy metrics.

import (
	"fmt"
	"math"
	"time"

	"github.com/green-dc/baat/internal/battery"
	"github.com/green-dc/baat/internal/faults"
	"github.com/green-dc/baat/internal/rng"
	"github.com/green-dc/baat/internal/sim"
	"github.com/green-dc/baat/internal/solar"
	"github.com/green-dc/baat/internal/workload"
)

// fidelityCell is one tier's summary over one scenario replay.
type fidelityCell struct {
	throughput float64
	meanHealth float64
	meanSoC    float64
	lowSoCHrs  float64
	ahOut      float64
}

// runTier replays the weather sequence under one battery model tier.
func runTier(cfg Config, kind battery.Kind, chaos bool, seq []solar.Weather) (fidelityCell, error) {
	tcfg := cfg
	tcfg.BatteryModel = kind
	if chaos {
		fcfg, err := faults.Profile("chaos", 0)
		if err != nil {
			return fidelityCell{}, err
		}
		tcfg.Faults = fcfg
	}
	s, err := prototypeSim(tcfg, cfg.treatment())
	if err != nil {
		return fidelityCell{}, err
	}
	var cell fidelityCell
	for _, w := range seq {
		ds, err := s.RunDay(w)
		if err != nil {
			return fidelityCell{}, err
		}
		cell.throughput += ds.Throughput
		cell.lowSoCHrs += ds.LowSoCTime.Hours()
	}
	nodes := s.Nodes()
	for _, n := range nodes {
		cell.meanHealth += n.Battery().Health()
		cell.meanSoC += n.Battery().SoC()
		cell.ahOut += float64(n.Battery().Counters().AhOut)
	}
	if len(nodes) > 0 {
		cell.meanHealth /= float64(len(nodes))
		cell.meanSoC /= float64(len(nodes))
	}
	return cell, nil
}

// ModelFidelity is the "model-fidelity" experiment: every battery model
// tier replays identical clean and chaos scenarios; the table reports each
// tier's metrics and the linear tier's error against the electrochemical
// reference.
func ModelFidelity(cfg Config) (*Table, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	days := 12
	if cfg.Quick {
		days = 4
	}
	seq := weatherSequence(cfg.Seed, rng.ExpFidelity, 0.5, days)

	tiers := battery.Kinds()
	scenarios := []struct {
		name  string
		chaos bool
	}{{"clean", false}, {"chaos", true}}

	type slot struct {
		cell fidelityCell
		err  error
	}
	cells := make([]slot, len(tiers)*len(scenarios))
	if err := runSweep(cfg.sweepWorkers(), len(cells), func(i int) error {
		tier := tiers[i%len(tiers)]
		sc := scenarios[i/len(tiers)]
		cell, err := runTier(cfg, tier, sc.chaos, seq)
		cells[i] = slot{cell, err}
		return err
	}); err != nil {
		return nil, err
	}

	t := &Table{
		ID:    "model-fidelity",
		Title: "Battery model fidelity tiers vs the electrochemical reference (BAAT policy)",
		Columns: []string{
			"scenario", "model", "throughput", "mean health", "mean SoC", "low-SoC h", "Ah out",
		},
		Values: map[string]float64{},
	}
	relErr := func(a, b float64) float64 {
		return math.Abs(a-b) / math.Max(math.Abs(b), 1e-12)
	}
	for si, sc := range scenarios {
		byTier := map[battery.Kind]fidelityCell{}
		for ti, tier := range tiers {
			cell := cells[si*len(tiers)+ti].cell
			byTier[tier] = cell
			t.Rows = append(t.Rows, []string{
				sc.name, string(tier),
				fmt.Sprintf("%.1f", cell.throughput),
				f3(cell.meanHealth), f3(cell.meanSoC),
				f2(cell.lowSoCHrs), fmt.Sprintf("%.1f", cell.ahOut),
			})
			prefix := sc.name + "_" + string(tier)
			t.Values[prefix+"_throughput"] = cell.throughput
			t.Values[prefix+"_health"] = cell.meanHealth
		}
		ref, lin := byTier[battery.KindLeadAcid], byTier[battery.KindLinear]
		t.Values[sc.name+"_linear_throughput_err"] = relErr(lin.throughput, ref.throughput)
		t.Values[sc.name+"_linear_health_err"] = math.Abs(lin.meanHealth - ref.meanHealth)
		t.Values[sc.name+"_linear_ahout_err"] = relErr(lin.ahOut, ref.ahOut)
		t.Rows = append(t.Rows, []string{
			sc.name, "linear vs ref",
			pct(t.Values[sc.name+"_linear_throughput_err"]) + " err",
			f3(t.Values[sc.name+"_linear_health_err"]) + " err", "-", "-",
			pct(t.Values[sc.name+"_linear_ahout_err"]) + " err",
		})
	}
	t.Notes = append(t.Notes,
		"linear tier: coulomb counting, no Peukert/sag/thermal — error columns quantify the fidelity trade",
		"lfp row is a different chemistry, not an approximation of the reference",
		"the cross-fidelity golden test pins these errors with tolerances on the 30-day fixtures")
	return t, nil
}

// MixedFleet is the "mixed-fleet" experiment: a 50/50 lead-acid + LFP
// retrofit fleet under each policy, reporting whole-fleet results plus
// per-chemistry health so the cross-chemistry aging gap is visible.
func MixedFleet(cfg Config) (*Table, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	days := 12
	if cfg.Quick {
		days = 4
	}
	seq := weatherSequence(cfg.Seed, rng.ExpMixedFleet, 0.5, days)

	type cell struct {
		throughput  float64
		lowSoCHrs   float64
		leadHealth  float64 // mean health of the lead-acid block
		lfpHealth   float64 // mean health of the LFP block
		worstHealth float64
	}
	cells := make([]cell, len(table4))
	if err := runSweep(cfg.sweepWorkers(), len(table4), func(i int) error {
		scfg := sim.DefaultConfig()
		scfg.Policy = table4[i]
		scfg.Seed = cfg.Seed
		scfg.Node.AgingConfig.AccelFactor = cfg.Accel
		scfg.Services = workload.PrototypeServices()
		scfg.JobsPerDay = 2
		scfg.Solar.Scale = 1.5
		scfg.Telemetry = cfg.Telemetry
		scfg.Workers = cfg.simWorkers()
		scfg.Faults = cfg.Faults
		scfg.BatteryFleet = []sim.BatteryShare{
			{Model: battery.KindLeadAcid, Fraction: 0.5},
			{Model: battery.KindLFP, Fraction: 0.5},
		}
		s, err := sim.New(scfg)
		if err != nil {
			return err
		}
		var c cell
		for _, w := range seq {
			ds, err := s.RunDay(w)
			if err != nil {
				return err
			}
			c.throughput += ds.Throughput
			c.lowSoCHrs += ds.LowSoCTime.Hours()
		}
		c.worstHealth = 1
		var nLead, nLFP int
		for _, n := range s.Nodes() {
			h := n.Battery().Health()
			if h < c.worstHealth {
				c.worstHealth = h
			}
			switch n.Battery().Kind() {
			case battery.KindLFP:
				c.lfpHealth += h
				nLFP++
			default:
				c.leadHealth += h
				nLead++
			}
		}
		if nLead > 0 {
			c.leadHealth /= float64(nLead)
		}
		if nLFP > 0 {
			c.lfpHealth /= float64(nLFP)
		}
		cells[i] = c
		return nil
	}); err != nil {
		return nil, err
	}

	t := &Table{
		ID:    "mixed-fleet",
		Title: "Mixed lead-acid + LFP retrofit fleet under each policy (50/50 split)",
		Columns: []string{
			"policy", "throughput", "low-SoC time", "lead-acid health", "lfp health", "worst health",
		},
		Values: map[string]float64{},
	}
	for i, spec := range table4 {
		c := cells[i]
		t.Rows = append(t.Rows, []string{
			label(spec),
			fmt.Sprintf("%.1f", c.throughput),
			(time.Duration(c.lowSoCHrs * float64(time.Hour))).Round(time.Minute).String(),
			f3(c.leadHealth), f3(c.lfpHealth), f3(c.worstHealth),
		})
		t.Values[label(spec)+"_throughput"] = c.throughput
		t.Values[label(spec)+"_worst_health"] = c.worstHealth
		t.Values[label(spec)+"_lead_health"] = c.leadHealth
		t.Values[label(spec)+"_lfp_health"] = c.lfpHealth
	}
	t.Notes = append(t.Notes,
		"50/50 contiguous split via sim.Config.BatteryFleet: nodes 0-2 lead-acid, 3-5 LFP on the prototype fleet",
		"LFP's calendar+cycle curves age slower than VRLA under the same duty — the gap the aging-aware policies must manage")
	return t, nil
}
