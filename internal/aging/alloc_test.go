package aging

// Allocation guard for the per-tick metric fold: Tracker.Observe runs once
// per node per simulated minute, so a single heap allocation here
// multiplies into millions per experiment sweep. The benchmark-regression
// harness (internal/perf) pins the same path across releases; this test
// catches a regression at `go test` time with an exact zero.

import (
	"testing"
	"time"
)

func TestObserveAllocFree(t *testing.T) {
	tr, err := NewTracker(2100)
	if err != nil {
		t.Fatal(err)
	}
	samples := []Sample{
		{Dt: time.Minute, Current: 5, SoC: 0.55, Temperature: 25},  // discharge, band C
		{Dt: time.Minute, Current: -5, SoC: 0.55, Temperature: 25}, // charge
		{Dt: time.Minute, Current: 8, SoC: 0.25, Temperature: 30},  // deep discharge
		{Dt: time.Minute, Current: 0, SoC: 0.90, Temperature: 20},  // rest
	}
	var i int
	allocs := testing.AllocsPerRun(1000, func() {
		if err := tr.Observe(samples[i%len(samples)]); err != nil {
			t.Fatal(err)
		}
		i++
	})
	if allocs != 0 {
		t.Fatalf("Tracker.Observe allocates %.1f objects per call, want 0", allocs)
	}
}

func TestMetricsSnapshotAllocFree(t *testing.T) {
	tr, err := NewTracker(2100)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Observe(Sample{Dt: time.Hour, Current: 5, SoC: 0.5, Temperature: 25}); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		_ = tr.Metrics()
	})
	if allocs != 0 {
		t.Fatalf("Tracker.Metrics allocates %.1f objects per call, want 0", allocs)
	}
}
