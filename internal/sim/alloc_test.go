package sim

// Allocation guards for the tick path. The per-tick prologue (demand
// water-fill, SoC-ordered charge allocation) plus the serial node fan-out
// must not touch the heap in steady state: every scratch slice lives on
// the Simulator and the SoC sort runs over a cached index slice. A single
// allocation per tick multiplies into ~10⁶ per simulated week per node,
// which is exactly the regression the benchmark-regression harness
// (internal/perf) pins across releases; these tests catch it at `go test`
// time with exact thresholds.

import (
	"testing"

	"github.com/green-dc/baat/internal/battery"
	"github.com/green-dc/baat/internal/solar"
)

// allocSim builds a serial-stepping fleet and runs one warm-up day so
// service placement and scratch growth are behind us before measuring.
func allocSim(t *testing.T) *Simulator {
	return allocSimModel(t, battery.KindLeadAcid)
}

// allocSimModel is allocSim under a chosen battery model tier: the
// allocation-free guarantee holds per tier, not just for the default
// electrochemical path.
func allocSimModel(t *testing.T, kind battery.Kind) *Simulator {
	t.Helper()
	s := newSim(t, "ebuff", func(c *Config) {
		c.Nodes = 8
		c.Workers = 1
		// No batch jobs: submitJobs legitimately allocates fresh VMs, and
		// these guards measure the steady-state stepping machinery.
		c.JobsPerDay = 0
		ncfg, err := c.Node.WithBatteryModel(kind)
		if err != nil {
			t.Fatal(err)
		}
		c.Node = ncfg
	})
	if _, err := s.RunDay(solar.Sunny); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestStepInWindowAllocFree(t *testing.T) {
	for _, kind := range battery.Kinds() {
		t.Run(string(kind), func(t *testing.T) {
			s := allocSimModel(t, kind)
			allocs := testing.AllocsPerRun(500, func() {
				if err := s.step(500, true); err != nil {
					t.Fatal(err)
				}
			})
			if allocs != 0 {
				t.Fatalf("in-window step allocates %.1f objects per tick, want 0", allocs)
			}
		})
	}
}

func TestStepOfflineAllocFree(t *testing.T) {
	s := allocSim(t)
	allocs := testing.AllocsPerRun(500, func() {
		if err := s.step(300, false); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("offline step allocates %.1f objects per tick, want 0", allocs)
	}
}

// TestRunDayAllocBudgetMixedFleet covers the heterogeneous slab layout: a
// half lead-acid, half LFP fleet must hit the same per-day budget as a
// homogeneous one — the mixed columns are sized at construction, never
// grown on the tick path.
func TestRunDayAllocBudgetMixedFleet(t *testing.T) {
	s := newSim(t, "ebuff", func(c *Config) {
		c.Nodes = 8
		c.Workers = 1
		c.JobsPerDay = 0
		c.BatteryFleet = []BatteryShare{
			{Model: battery.KindLeadAcid, Fraction: 0.5},
			{Model: battery.KindLFP, Fraction: 0.5},
		}
	})
	if _, err := s.RunDay(solar.Sunny); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(5, func() {
		if _, err := s.RunDay(solar.Cloudy); err != nil {
			t.Fatal(err)
		}
	})
	const budget = 16
	if allocs > budget {
		t.Fatalf("mixed-fleet RunDay allocates %.1f objects per day, want ≤ %d", allocs, budget)
	}
}

// TestRunDayAllocBudget bounds the whole-day path: after the scratch
// buffers exist, a full simulated day may allocate only the per-day
// setup (the generated solar profile) — single digits, not per-tick or
// per-node quantities.
func TestRunDayAllocBudget(t *testing.T) {
	for _, kind := range battery.Kinds() {
		t.Run(string(kind), func(t *testing.T) {
			s := allocSimModel(t, kind)
			allocs := testing.AllocsPerRun(5, func() {
				if _, err := s.RunDay(solar.Cloudy); err != nil {
					t.Fatal(err)
				}
			})
			const budget = 16
			if allocs > budget {
				t.Fatalf("RunDay allocates %.1f objects per day, want ≤ %d (per-day setup only)", allocs, budget)
			}
		})
	}
}
