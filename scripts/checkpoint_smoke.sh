#!/bin/sh
# checkpoint_smoke.sh — end-to-end checkpoint/resume smoke over the baatsim
# CLI: run six days straight, run the first three days with a checkpoint,
# resume the remaining three from the file, and require the resumed report
# — every day row, the totals, the node summary, and the lifetime
# projections — to be byte-identical to the uninterrupted run. Runs under
# the chaos fault profile so the checkpoint carries injector state, not
# just clean physics.
# Usage: ./scripts/checkpoint_smoke.sh  (or: make checkpoint-smoke)
set -eu

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

go build -o "$tmp/baatsim" ./cmd/baatsim

run() {
    "$tmp/baatsim" -policy baat -seed 7 -accel 10 -faults chaos "$@"
}

run -days 6 > "$tmp/full.txt"
run -days 3 -checkpoint-every 3 -checkpoint "$tmp/ck.json" > /dev/null
run -days 6 -resume "$tmp/ck.json" > "$tmp/resumed.txt"

# The resumed report must match the uninterrupted one exactly, minus its
# leading "resumed from ..." banner.
grep -v '^resumed from ' "$tmp/resumed.txt" > "$tmp/resumed.clean"

if ! [ -s "$tmp/full.txt" ]; then
    echo "checkpoint-smoke: empty reference output" >&2
    exit 1
fi
if ! diff -u "$tmp/full.txt" "$tmp/resumed.clean"; then
    echo "checkpoint-smoke: resumed run diverged from the uninterrupted run" >&2
    exit 1
fi
echo "checkpoint-smoke: resumed report byte-identical to the uninterrupted run"
