package aging

import (
	"fmt"

	"github.com/green-dc/baat/internal/units"
)

// Impact is the qualitative sensitivity of an aging metric to a workload's
// power/energy demand (Table 3 cells).
type Impact int

// Impact levels and their Eq 6 weighting factors (§IV-B: 50 % High,
// 30 % Medium, 20 % Low).
const (
	ImpactLow Impact = iota + 1
	ImpactMedium
	ImpactHigh
)

// Weight returns the Eq 6 weighting factor for the impact level.
func (im Impact) Weight() float64 {
	switch im {
	case ImpactHigh:
		return 0.5
	case ImpactMedium:
		return 0.3
	default:
		return 0.2
	}
}

// String returns the Table 3 label.
func (im Impact) String() string {
	switch im {
	case ImpactLow:
		return "Low"
	case ImpactMedium:
		return "Medium"
	case ImpactHigh:
		return "High"
	default:
		return fmt.Sprintf("Impact(%d)", int(im))
	}
}

// DemandClass is the paper's coarse classification of a workload's power and
// energy demand (§IV-B): power is "Large" when consumption exceeds 50 % of
// peak, energy is "More" when the total energy request / running length is
// high.
type DemandClass struct {
	LargePower bool
	MoreEnergy bool
}

// String renders the class as in Table 3.
func (c DemandClass) String() string {
	p, e := "Small", "Less"
	if c.LargePower {
		p = "Large"
	}
	if c.MoreEnergy {
		e = "More"
	}
	return p + "/" + e
}

// Sensitivity gives the Table 3 impact levels for the three placement
// metrics (ΔNAT, ΔCF, ΔPC).
type Sensitivity struct {
	NAT Impact
	CF  Impact
	PC  Impact
}

// DemandSensitivity returns the Table 3 row for a demand class:
//
//	Power  Energy  ΔNAT    ΔCF   ΔPC
//	Large  Less    Medium  High  High
//	Large  More    High    High  High
//	Small  More    High    Low   Medium
//	Small  Less    Low     Low   Low
func DemandSensitivity(c DemandClass) Sensitivity {
	switch {
	case c.LargePower && !c.MoreEnergy:
		return Sensitivity{NAT: ImpactMedium, CF: ImpactHigh, PC: ImpactHigh}
	case c.LargePower && c.MoreEnergy:
		return Sensitivity{NAT: ImpactHigh, CF: ImpactHigh, PC: ImpactHigh}
	case !c.LargePower && c.MoreEnergy:
		return Sensitivity{NAT: ImpactHigh, CF: ImpactLow, PC: ImpactMedium}
	default:
		return Sensitivity{NAT: ImpactLow, CF: ImpactLow, PC: ImpactLow}
	}
}

// Badness normalizations: each metric is converted to a [0, 1] "aging
// pressure" so Eq 6 can combine them. The BAAT controller ranks nodes by the
// weighted sum and places load on the *lowest* score (slowest-aging) node.

// natBadness is the fraction of the cycled-charge budget already consumed.
func natBadness(nat float64) float64 { return units.Clamp01(nat) }

// cfBadness penalizes charge factors outside the healthy 1.05–1.30 window
// (§III-B): low CF marks under-recharge (sulphation/stratification), high CF
// marks float-charge abuse (shedding/corrosion/water loss).
func cfBadness(cf float64) float64 {
	const lo, hi = 1.05, 1.30
	switch {
	case cf <= 0:
		return 1 // nothing ever recharged: worst case
	case cf < lo:
		return units.Clamp01((lo - cf) / lo)
	case cf > hi:
		return units.Clamp01((cf - hi) / hi)
	default:
		return 0
	}
}

// pcBadness converts healthy-high PC (1 = all cycling at high SoC) into an
// aging pressure (0 = healthy, 1 = all cycling below 40 % SoC).
func pcBadness(pc float64) float64 {
	if pc <= 0 {
		return 0 // no throughput yet — nothing to penalize
	}
	return units.Clamp01((1 - pc) / 0.75)
}

// WeightedAging computes Eq 6 for one battery: the sensitivity-weighted
// combination of the three placement metrics, each normalized to [0, 1]
// aging pressure. Larger values indicate faster expected aging if the
// candidate workload lands on this battery.
func WeightedAging(m Metrics, s Sensitivity) float64 {
	return s.CF.Weight()*cfBadness(m.CF) +
		s.PC.Weight()*pcBadness(m.PC) +
		s.NAT.Weight()*natBadness(m.NAT)
}

// DoDGoal computes Eq 7: the depth of discharge that spends the remaining
// lifetime Ah budget evenly over the planned number of remaining cycles.
//
//	DoD_goal = (C_total − C_used) / Cycle_plan   (as a fraction of capNom)
//
// The result is clamped to [0.05, 0.9]: the paper notes discharge beyond
// 90 % DoD is not usable (§VI-G).
func DoDGoal(total, used units.AmpereHour, cyclePlan float64, capNom units.AmpereHour) (float64, error) {
	if total <= 0 || capNom <= 0 {
		return 0, fmt.Errorf("aging: total throughput and capacity must be positive (total=%v, cap=%v)", total, capNom)
	}
	if cyclePlan <= 0 {
		return 0, fmt.Errorf("aging: planned cycles must be positive, got %v", cyclePlan)
	}
	remaining := float64(total) - float64(used)
	if remaining < 0 {
		remaining = 0
	}
	perCycle := remaining / cyclePlan
	return units.Clamp(perCycle/float64(capNom), 0.05, 0.90), nil
}
