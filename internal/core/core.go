// Package core implements the paper's contribution: the BAAT battery
// anti-aging treatment framework (DSN'15 §IV) and the baseline power-
// management policies it is evaluated against (Table 4):
//
//	e-Buff  — aggressively use the battery as a green-energy buffer
//	BAAT-s  — aging-aware CPU frequency throttling only (slowdown)
//	BAAT-h  — aging-aware VM migration only (hiding)
//	BAAT    — coordinated hiding + slowdown (+ optional planned aging)
//
// A policy interacts with the fleet through two hooks the simulator calls:
// PlaceVM when a new workload arrives (aging-driven scheduling, Fig 8) and
// Control every control period (slowdown checks, Fig 9).
//
// Policies are open: each one registers itself under a canonical name via
// Register (registry.go), and every construction path in the system goes
// through Build(PolicySpec). A policy with controller state additionally
// implements StatefulPolicy so the simulator can carry that state through
// its checkpoint envelope.
package core

import (
	"errors"
	"fmt"
	"math"
	"math/rand/v2"
	"time"

	"github.com/green-dc/baat/internal/aging"
	"github.com/green-dc/baat/internal/fleet"
	"github.com/green-dc/baat/internal/node"
	"github.com/green-dc/baat/internal/signal"
	"github.com/green-dc/baat/internal/telemetry"
	"github.com/green-dc/baat/internal/vm"
	"github.com/green-dc/baat/internal/workload"
)

// Context is the fleet view a policy acts on. The simulator owns the nodes;
// policies mutate them synchronously inside the hooks.
type Context struct {
	// Nodes is the battery-node fleet.
	Nodes []*node.Node
	// Clock is the simulation time.
	Clock time.Duration
	// Rng drives any randomized decision (BAAT-h's non-holistic target
	// selection); it is seeded by the simulation for reproducibility.
	Rng *rand.Rand
	// Telemetry records policy decisions (migrations, DVFS caps, DoD
	// adjustments) as counters and traced events. Nil is valid and
	// records nothing.
	Telemetry *telemetry.Recorder
	// Summary, when non-nil and Valid, is the engine's merged per-shard
	// fleet summary for the current tick. Its integer aggregates (suspect
	// and DVFS-capped counts, end-of-life index, extremum indices) let a
	// policy skip O(nodes) scans whose outcome the summary already
	// decides; the float sums are telemetry-grade and must never pick
	// between otherwise-equal trace-visible decisions. Nil is valid:
	// every policy must behave identically without it, just slower.
	Summary *fleet.Summary
	// Signals is the forward-looking signal plane: a deterministic solar
	// forecast (24–72 h lookahead) and a time-of-use electricity tariff.
	// Either field may be nil (unit-test contexts); policies must degrade
	// to their signal-free behavior in that case.
	Signals signal.Signals
}

// Policy is a battery power-management scheme.
type Policy interface {
	// Name returns the Table 4 scheme name.
	Name() string
	// PlaceVM selects a node for a new workload. Implementations must
	// only return nodes that can host the VM.
	PlaceVM(ctx *Context, v *vm.VM) (*node.Node, error)
	// Control runs management actions (migration, DVFS, floor updates)
	// once per control period.
	Control(ctx *Context) error
}

// ErrNoCapacity is returned by PlaceVM when no node can host the VM.
var ErrNoCapacity = errors.New("core: no node has capacity for the VM")

// SlowdownConfig parameterizes the aging-slowdown algorithm (Fig 9).
type SlowdownConfig struct {
	// TriggerSoC is the state of charge below which DDT/DR checks run
	// (40 % in §IV-C; planned aging replaces it with 1 − DoD_goal).
	TriggerSoC float64
	// DDTThreshold is the deep-discharge time fraction above which the
	// policy intervenes.
	DDTThreshold float64
	// ReserveTime is T_threshold: the discharge the battery must be able
	// to sustain for emergency handling (2 minutes, §IV-C / §VI-E).
	ReserveTime time.Duration
	// Hysteresis is the SoC margin above TriggerSoC at which capped
	// frequencies are restored.
	Hysteresis float64

	// FloorSoC is the protective discharge floor the full BAAT scheme
	// enforces on every battery: rather than letting an at-risk battery
	// discharge to its hardware cutoff (the e-Buff failure mode), BAAT
	// checkpoints the server at this state of charge and waits for supply.
	// This is the slowdown-optimization threshold Fig 16 sweeps —
	// raising it extends battery life at some performance cost.
	FloorSoC float64
}

// DefaultSlowdownConfig returns the paper's parameters.
func DefaultSlowdownConfig() SlowdownConfig {
	return SlowdownConfig{
		TriggerSoC:   aging.DeepDischargeSoC,
		DDTThreshold: 0.15,
		ReserveTime:  2 * time.Minute,
		Hysteresis:   0.10,
		FloorSoC:     0.35,
	}
}

// Validate checks the slowdown parameters.
func (c SlowdownConfig) Validate() error {
	if c.TriggerSoC <= 0 || c.TriggerSoC >= 1 {
		return fmt.Errorf("core: trigger SoC must be in (0, 1), got %v", c.TriggerSoC)
	}
	if c.DDTThreshold < 0 || c.DDTThreshold > 1 {
		return fmt.Errorf("core: DDT threshold must be in [0, 1], got %v", c.DDTThreshold)
	}
	if c.ReserveTime <= 0 {
		return fmt.Errorf("core: reserve time must be positive, got %v", c.ReserveTime)
	}
	if c.Hysteresis < 0 || c.Hysteresis >= 1 {
		return fmt.Errorf("core: hysteresis must be in [0, 1), got %v", c.Hysteresis)
	}
	if c.FloorSoC < 0 || c.FloorSoC >= c.TriggerSoC {
		return fmt.Errorf("core: floor SoC must be in [0, trigger %v), got %v", c.TriggerSoC, c.FloorSoC)
	}
	return nil
}

// PlannedAgingConfig enables DoD-goal regulation (§IV-D, Eq 7).
type PlannedAgingConfig struct {
	// Enabled turns planned aging on.
	Enabled bool
	// ServiceLife is the expected duration from battery installation to
	// datacenter end-of-life the batteries should be synchronized with.
	ServiceLife time.Duration
	// CyclesPerDay estimates how many charge/discharge cycles a day of
	// operation produces (1 for the prototype's daily solar cycle).
	CyclesPerDay float64
}

// Validate checks the planned-aging parameters.
func (c PlannedAgingConfig) Validate() error {
	if !c.Enabled {
		return nil
	}
	if c.ServiceLife <= 0 {
		return fmt.Errorf("core: planned-aging service life must be positive, got %v", c.ServiceLife)
	}
	if c.CyclesPerDay <= 0 {
		return fmt.Errorf("core: planned-aging cycles/day must be positive, got %v", c.CyclesPerDay)
	}
	return nil
}

// Config assembles a policy.
type Config struct {
	Slowdown SlowdownConfig
	Planned  PlannedAgingConfig
	// MigrationTime is the VM pause incurred by one migration.
	MigrationTime time.Duration
}

// DefaultConfig returns the paper's parameters.
func DefaultConfig() Config {
	return Config{
		Slowdown:      DefaultSlowdownConfig(),
		MigrationTime: vm.DefaultMigrationTime,
	}
}

// Validate checks the policy configuration.
func (c Config) Validate() error {
	if err := c.Slowdown.Validate(); err != nil {
		return err
	}
	if err := c.Planned.Validate(); err != nil {
		return err
	}
	if c.MigrationTime <= 0 {
		return fmt.Errorf("core: migration time must be positive, got %v", c.MigrationTime)
	}
	return nil
}

// migrate wraps MigrateVM with policy telemetry: a successful move counts
// one migration and traces an EventMigration; a rollback counts a failure.
// The "cannot host" rejection returns an error only to the caller that
// mispicked — policies treat it as a skipped candidate.
func migrate(ctx *Context, src, dst *node.Node, vmID string, transfer time.Duration) error {
	if err := MigrateVM(src, dst, vmID, transfer); err != nil {
		ctx.Telemetry.Counter(telemetry.MetricMigrationFailures).Inc()
		return err
	}
	ctx.Telemetry.Counter(telemetry.MetricMigrations).Inc()
	ctx.Telemetry.Emit(ctx.Clock, telemetry.EventMigration, src.ID(), vmID+" -> "+dst.ID())
	return nil
}

// capFrequency steps a server one DVFS notch down for battery protection,
// recording the cap when it actually moved the ladder.
func capFrequency(ctx *Context, n *node.Node) {
	if n.Server().StepDownFrequency() {
		ctx.Telemetry.Counter(telemetry.MetricDVFSCaps).Inc()
		ctx.Telemetry.Emit(ctx.Clock, telemetry.EventDVFSCap, n.ID(),
			fmt.Sprintf("freq index %d", n.Server().FrequencyIndex()))
	}
}

// restoreFrequency steps a server one DVFS notch back up after recovery,
// recording the restore when it actually moved the ladder.
func restoreFrequency(ctx *Context, n *node.Node) {
	if n.Server().StepUpFrequency() {
		ctx.Telemetry.Counter(telemetry.MetricDVFSRestores).Inc()
		ctx.Telemetry.Emit(ctx.Clock, telemetry.EventDVFSRestore, n.ID(),
			fmt.Sprintf("freq index %d", n.Server().FrequencyIndex()))
	}
}

// MigrateVM moves the named VM from src to dst, charging the transfer pause
// to the VM (§IV-C prefers migration; §VI-F charges its overhead).
func MigrateVM(src, dst *node.Node, vmID string, transfer time.Duration) error {
	if src == nil || dst == nil {
		return errors.New("core: migration needs both source and destination")
	}
	if src == dst {
		return fmt.Errorf("core: VM %s is already on %s", vmID, src.ID())
	}
	v, err := src.Server().Detach(vmID)
	if err != nil {
		return err
	}
	if !dst.Server().CanHost(v) {
		// Roll back: the VM stays where it was.
		if aerr := src.Server().Attach(v); aerr != nil {
			return fmt.Errorf("core: migration rollback failed: %w", aerr)
		}
		return fmt.Errorf("core: node %s cannot host VM %s", dst.ID(), vmID)
	}
	if err := v.BeginMigration(transfer); err != nil {
		if aerr := src.Server().Attach(v); aerr != nil {
			return fmt.Errorf("core: migration rollback failed: %w", aerr)
		}
		return err
	}
	return dst.Server().Attach(v)
}

// leastReserved returns the node with the most spare peak-utilization
// headroom that can host v, or nil.
func leastReserved(nodes []*node.Node, v *vm.VM) *node.Node {
	var best *node.Node
	bestLoad := 0.0
	for _, n := range nodes {
		if !n.Server().CanHost(v) {
			continue
		}
		load := reservedLoad(n)
		if best == nil || load < bestLoad {
			best, bestLoad = n, load
		}
	}
	return best
}

// reservedLoad sums hosted VM peak demands.
func reservedLoad(n *node.Node) float64 {
	var u float64
	for _, v := range n.Server().VMs() {
		if v.State() != vm.Completed {
			u += v.Profile().PeakUtilization
		}
	}
	return u
}

// weightedAgingOf evaluates Eq 6 for a node against a workload profile's
// Table 3 demand class.
func weightedAgingOf(n *node.Node, p workload.Profile) float64 {
	return aging.WeightedAging(n.Metrics(), aging.DemandSensitivity(p.DemandClass()))
}

// minWeightedAging returns the hostable node with the lowest Eq 6 score —
// "the aging slowest battery node" of §IV-B — or nil. Candidates whose
// battery is currently below minSoC are considered only if nothing better
// exists (moving load onto an at-risk battery would just mint a new victim),
// and candidates whose aging metrics are quarantined rank below everything
// else: a suspect score may be garbage, so the scheduler treats the node as
// worst-aged and places there only when no trusted node has capacity.
// Near-ties are broken by the highest present state of charge.
func minWeightedAging(nodes []*node.Node, v *vm.VM, exclude *node.Node, minSoC float64) *node.Node {
	const tie = 1e-3
	pick := func(requireSoC, requireTrusted bool) *node.Node {
		var best *node.Node
		bestScore, bestSoC := 0.0, 0.0
		for _, n := range nodes {
			if n == exclude || !n.Server().CanHost(v) {
				continue
			}
			if requireTrusted && n.MetricsSuspect() {
				continue
			}
			soc := n.Battery().SoC()
			if requireSoC && soc < minSoC {
				continue
			}
			score := weightedAgingOf(n, v.Profile())
			better := best == nil ||
				score < bestScore-tie ||
				(score < bestScore+tie && soc > bestSoC)
			if better {
				best, bestScore, bestSoC = n, score, soc
			}
		}
		return best
	}
	if best := pick(true, true); best != nil {
		return best
	}
	if best := pick(false, true); best != nil {
		return best
	}
	return pick(false, false)
}

// LifetimePrediction is one node's projected battery end-of-life.
type LifetimePrediction struct {
	// NodeID identifies the battery node.
	NodeID string
	// Health is the present remaining-capacity fraction.
	Health float64
	// TimeToEndOfLife extrapolates when health crosses the 80 % line at
	// the damage rate observed so far; 0 when already there.
	TimeToEndOfLife time.Duration
}

// PredictLifetimes projects battery end-of-life for every node from its
// observed damage rate (§I: BAAT "proactively predicts battery lifetime and
// trades off unnecessary battery service life for better datacenter
// productivity"). The planner consumes these to choose DoD goals; operators
// consume them for replacement scheduling.
func PredictLifetimes(ctx *Context) []LifetimePrediction {
	out := make([]LifetimePrediction, 0, len(ctx.Nodes))
	for _, n := range ctx.Nodes {
		var remaining time.Duration
		if n.Clock() == 0 {
			// No operating history yet: nothing to extrapolate from, so
			// the projection is unbounded rather than zero.
			remaining = time.Duration(math.MaxInt64)
		} else {
			remaining = n.AgingModel().EstimateLifetime(n.Clock()) - n.Clock()
			if remaining < 0 {
				remaining = 0
			}
		}
		out = append(out, LifetimePrediction{
			NodeID:          n.ID(),
			Health:          n.Battery().Health(),
			TimeToEndOfLife: remaining,
		})
	}
	return out
}

// reserveCurrentLimit returns P_threshold as a current: the draw the pack
// could sustain for the reserve time from its energy above the floor.
func reserveCurrentLimit(n *node.Node, reserve time.Duration) float64 {
	soc := n.Battery().SoC()
	floor := n.SoCFloor()
	if soc <= floor {
		return 0
	}
	usable := (soc - floor) * float64(n.Battery().EffectiveCapacity()) // Ah
	return usable / reserve.Hours()
}
