package aging

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"github.com/green-dc/baat/internal/units"
)

func TestRangeOf(t *testing.T) {
	tests := []struct {
		soc  float64
		want SoCRange
	}{
		{1.00, RangeA},
		{0.80, RangeA},
		{0.79, RangeB},
		{0.60, RangeB},
		{0.59, RangeC},
		{0.40, RangeC},
		{0.39, RangeD},
		{0.00, RangeD},
	}
	for _, tt := range tests {
		if got := RangeOf(tt.soc); got != tt.want {
			t.Errorf("RangeOf(%v) = %v, want %v", tt.soc, got, tt.want)
		}
	}
}

func TestSoCRangeString(t *testing.T) {
	if RangeA.String() != "A" || RangeD.String() != "D" {
		t.Error("range labels wrong")
	}
	if SoCRange(9).String() == "" {
		t.Error("unknown range should still render")
	}
}

func TestNewTrackerRejectsNonPositiveLifetime(t *testing.T) {
	if _, err := NewTracker(0); err == nil {
		t.Error("NewTracker(0) succeeded, want error")
	}
	if _, err := NewTracker(-5); err == nil {
		t.Error("NewTracker(-5) succeeded, want error")
	}
}

func mustTracker(t *testing.T) *Tracker {
	t.Helper()
	tr, err := NewTracker(7000)
	if err != nil {
		t.Fatalf("NewTracker: %v", err)
	}
	return tr
}

func TestTrackerNAT(t *testing.T) {
	tr := mustTracker(t)
	// 70 Ah out of a 7000 Ah budget => NAT 0.01.
	if err := tr.Observe(Sample{Dt: 10 * time.Hour, Current: 7, SoC: 0.9, Temperature: 25}); err != nil {
		t.Fatal(err)
	}
	if got := tr.Metrics().NAT; !units.NearlyEqual(got, 0.01, 1e-12) {
		t.Errorf("NAT = %v, want 0.01", got)
	}
}

func TestTrackerChargeFactor(t *testing.T) {
	tr := mustTracker(t)
	steps := []Sample{
		{Dt: time.Hour, Current: 10, SoC: 0.7, Temperature: 25},  // 10 Ah out
		{Dt: time.Hour, Current: -12, SoC: 0.6, Temperature: 25}, // 12 Ah in
	}
	for _, s := range steps {
		if err := tr.Observe(s); err != nil {
			t.Fatal(err)
		}
	}
	if got := tr.Metrics().CF; !units.NearlyEqual(got, 1.2, 1e-12) {
		t.Errorf("CF = %v, want 1.2", got)
	}
	out, in := tr.Totals()
	if out != 10 || in != 12 {
		t.Errorf("Totals() = (%v, %v), want (10, 12)", out, in)
	}
}

func TestTrackerPartialCycling(t *testing.T) {
	tests := []struct {
		name    string
		samples []Sample
		want    float64
	}{
		{
			"all in band A is healthiest",
			[]Sample{{Dt: time.Hour, Current: 5, SoC: 0.9, Temperature: 25}},
			1.0,
		},
		{
			"all in band D is worst",
			[]Sample{{Dt: time.Hour, Current: 5, SoC: 0.1, Temperature: 25}},
			0.25,
		},
		{
			"even split across A and D",
			[]Sample{
				{Dt: time.Hour, Current: 5, SoC: 0.9, Temperature: 25},
				{Dt: time.Hour, Current: 5, SoC: 0.2, Temperature: 25},
			},
			(4 + 1) / 8.0,
		},
		{
			"bands B and C take middle weights",
			[]Sample{
				{Dt: time.Hour, Current: 5, SoC: 0.7, Temperature: 25},
				{Dt: time.Hour, Current: 5, SoC: 0.5, Temperature: 25},
			},
			(3 + 2) / 8.0,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			tr := mustTracker(t)
			for _, s := range tt.samples {
				if err := tr.Observe(s); err != nil {
					t.Fatal(err)
				}
			}
			if got := tr.Metrics().PC; !units.NearlyEqual(got, tt.want, 1e-12) {
				t.Errorf("PC = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestTrackerDDTTimeBasedNotAhBased(t *testing.T) {
	tr := mustTracker(t)
	// An hour resting at low SoC counts toward DDT even with zero current
	// (Eq 5 is based only on time, §III-D).
	if err := tr.Observe(Sample{Dt: time.Hour, Current: 0, SoC: 0.2, Temperature: 25}); err != nil {
		t.Fatal(err)
	}
	if err := tr.Observe(Sample{Dt: 3 * time.Hour, Current: 0, SoC: 0.9, Temperature: 25}); err != nil {
		t.Fatal(err)
	}
	if got := tr.Metrics().DDT; !units.NearlyEqual(got, 0.25, 1e-12) {
		t.Errorf("DDT = %v, want 0.25", got)
	}
}

func TestTrackerDischargeRate(t *testing.T) {
	tr := mustTracker(t)
	samples := []Sample{
		{Dt: time.Hour, Current: 4, SoC: 0.9, Temperature: 25},
		{Dt: time.Hour, Current: 8, SoC: 0.3, Temperature: 25}, // low-SoC high draw
		{Dt: time.Hour, Current: -5, SoC: 0.5, Temperature: 25},
	}
	for _, s := range samples {
		if err := tr.Observe(s); err != nil {
			t.Fatal(err)
		}
	}
	m := tr.Metrics()
	if !units.NearlyEqual(m.DR, 6, 1e-12) {
		t.Errorf("DR = %v, want 6 (mean of 4 and 8)", m.DR)
	}
	if m.DRPeak != 8 {
		t.Errorf("DRPeak = %v, want 8", m.DRPeak)
	}
	if !units.NearlyEqual(m.DRLowSoC, 8, 1e-12) {
		t.Errorf("DRLowSoC = %v, want 8", m.DRLowSoC)
	}
}

func TestTrackerRejectsBadSample(t *testing.T) {
	tr := mustTracker(t)
	if err := tr.Observe(Sample{Dt: 0, Current: 1, SoC: 0.5}); err == nil {
		t.Error("zero-duration sample accepted")
	}
	if err := tr.Observe(Sample{Dt: -time.Second, Current: 1, SoC: 0.5}); err == nil {
		t.Error("negative-duration sample accepted")
	}
}

func TestTrackerReset(t *testing.T) {
	tr := mustTracker(t)
	if err := tr.Observe(Sample{Dt: time.Hour, Current: 5, SoC: 0.5, Temperature: 25}); err != nil {
		t.Fatal(err)
	}
	tr.Reset()
	m := tr.Metrics()
	if m.NAT != 0 || m.CF != 0 || m.PC != 0 || m.DDT != 0 || m.DR != 0 {
		t.Errorf("metrics after Reset = %+v, want zeros", m)
	}
	// Lifetime denominator survives the reset.
	if err := tr.Observe(Sample{Dt: time.Hour, Current: 70, SoC: 0.5, Temperature: 25}); err != nil {
		t.Fatal(err)
	}
	if got := tr.Metrics().NAT; !units.NearlyEqual(got, 0.01, 1e-12) {
		t.Errorf("NAT after reset = %v, want 0.01", got)
	}
}

func TestTrackerMetricsBoundsProperty(t *testing.T) {
	f := func(raw []int16) bool {
		tr, err := NewTracker(7000)
		if err != nil {
			return false
		}
		for _, r := range raw {
			s := Sample{
				Dt:          time.Minute,
				Current:     units.Ampere(float64(r%40) / 2),
				SoC:         math.Abs(float64(r%100)) / 100,
				Temperature: 25,
			}
			if err := tr.Observe(s); err != nil {
				return false
			}
		}
		m := tr.Metrics()
		if m.NAT < 0 || m.CF < 0 || m.DDT < 0 || m.DDT > 1 || m.DR < 0 || m.DRPeak < 0 {
			return false
		}
		if m.PC != 0 && (m.PC < 0.25 || m.PC > 1) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
