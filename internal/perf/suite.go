package perf

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"github.com/green-dc/baat/internal/aging"
	"github.com/green-dc/baat/internal/battery"
	"github.com/green-dc/baat/internal/core"
	"github.com/green-dc/baat/internal/experiments"
	"github.com/green-dc/baat/internal/sim"
	"github.com/green-dc/baat/internal/solar"
)

// suiteFleetNodes sizes the small fleet-stepping benchmarks: big enough
// that the per-tick fan-out dominates, small enough that the suite stays
// in CI budget.
const suiteFleetNodes = 64

// suiteWarehouseNodes is the warehouse-scale stepping entry: 65536 nodes
// exercises the struct-of-arrays slab layout at the fleet sizes the
// ROADMAP's scaling axis targets. One simulated day at this size is
// seconds, not milliseconds, so the suite runs exactly one op of it.
const suiteWarehouseNodes = 65536

// suiteTick is the simulated tick the fleet-stepping entries use; it sets
// the ticks-per-day factor in the node-steps/s derivation.
const suiteTick = 5 * time.Minute

// suiteSweepID is the experiment the sweep benchmarks run in quick mode:
// fig18 fans four policy kinds across the variant pool, so the parallel
// entry genuinely exercises runSweep.
const suiteSweepID = "fig18"

// RunSuite executes the fixed benchmark suite and returns its report. It
// drives testing.Benchmark directly, so it works from any binary — no test
// runner required. Entry names are stable identifiers the comparator keys
// on; changing one orphans its baseline line.
func RunSuite() (Report, error) {
	var r Report
	var err error
	add := func(name string, pinned bool, fn func(b *testing.B)) {
		if err != nil {
			return
		}
		res := testing.Benchmark(fn)
		if res.N == 0 {
			err = fmt.Errorf("perf: benchmark %s did not run", name)
			return
		}
		r.Entries = append(r.Entries, Entry{
			Name:        name,
			NsPerOp:     float64(res.NsPerOp()),
			AllocsPerOp: res.AllocsPerOp(),
			BytesPerOp:  res.AllocedBytesPerOp(),
			Pinned:      pinned,
		})
	}
	// addFleet derives node-steps/s for a fleet-stepping entry (one op is
	// one simulated day of ticksPerDay ticks across the whole fleet).
	addFleet := func(name string, pinned bool, nodes int, fn func(b *testing.B)) {
		add(name, pinned, fn)
		if err != nil {
			return
		}
		e := &r.Entries[len(r.Entries)-1]
		ticksPerDay := float64(24 * time.Hour / suiteTick)
		e.NodeStepsPerSec = float64(nodes) * ticksPerDay * 1e9 / e.NsPerOp
	}

	// The serial tick path is the allocation-free core this harness
	// protects. Both 64-node entries are pinned: below the engine's
	// parallel threshold Workers=4 takes the same serial path, which is
	// exactly the fix for the old per-tick goroutine churn that made the
	// small parallel entry 1.8× slower with thousands of allocations.
	// The unsuffixed names run the default electrochemical lead-acid tier
	// (names are baseline keys — renaming them would orphan history); the
	// /model= variants pin the same allocation budget under the other
	// battery model tiers, so a tier can never quietly grow a heap path
	// the lead-acid slab layout avoids.
	addFleet(fmt.Sprintf("fleet_step/nodes=%d/workers=1", suiteFleetNodes), true,
		suiteFleetNodes, fleetStepBench(suiteFleetNodes, 1, battery.KindLeadAcid))
	addFleet(fmt.Sprintf("fleet_step/nodes=%d/workers=4", suiteFleetNodes), true,
		suiteFleetNodes, fleetStepBench(suiteFleetNodes, 4, battery.KindLeadAcid))
	addFleet(fmt.Sprintf("fleet_step/nodes=%d/workers=1/model=linear", suiteFleetNodes), true,
		suiteFleetNodes, fleetStepBench(suiteFleetNodes, 1, battery.KindLinear))
	addFleet(fmt.Sprintf("fleet_step/nodes=%d/workers=1/model=lfp", suiteFleetNodes), true,
		suiteFleetNodes, fleetStepBench(suiteFleetNodes, 1, battery.KindLFP))
	addFleet(fmt.Sprintf("fleet_step/nodes=%d/workers=1", suiteWarehouseNodes), true,
		suiteWarehouseNodes, fleetStepBench(suiteWarehouseNodes, 1, battery.KindLeadAcid))
	// The linear tier exists for warehouse-scale sweeps; this entry is the
	// headline it has to earn — same 65536-node day, cheap per-node model.
	addFleet(fmt.Sprintf("fleet_step/nodes=%d/workers=1/model=linear", suiteWarehouseNodes), true,
		suiteWarehouseNodes, fleetStepBench(suiteWarehouseNodes, 1, battery.KindLinear))
	// The LFP tier shares the electrochemical Pack but swaps the OCV curve
	// and damage model; pinning it at warehouse scale keeps all three tiers
	// on the same scaling axis instead of only at the 64-node size.
	addFleet(fmt.Sprintf("fleet_step/nodes=%d/workers=1/model=lfp", suiteWarehouseNodes), true,
		suiteWarehouseNodes, fleetStepBench(suiteWarehouseNodes, 1, battery.KindLFP))
	// The columnar batch kernels behind the engine's SoC ordering snapshot:
	// one op sweeps a warehouse-sized per-chemistry column. Pinned at zero
	// allocations — the kernels read slabs into caller-owned columns.
	add("soc_column/model=leadacid", true, socColumnBench(battery.KindLeadAcid))
	add("soc_column/model=lfp", true, socColumnBench(battery.KindLFP))
	add("soc_column/model=linear", true, socColumnBench(battery.KindLinear))
	add("tracker_observe", true, trackerObserveBench)
	add("battery_step", true, batteryStepBench(battery.KindLeadAcid))
	add("battery_step/model=linear", true, batteryStepBench(battery.KindLinear))
	add("battery_step/model=lfp", true, batteryStepBench(battery.KindLFP))
	add("experiment_sweep/"+suiteSweepID+"/workers=1", false, experimentSweepBench(1))
	add("experiment_sweep/"+suiteSweepID+"/workers=4", false, experimentSweepBench(4))
	add("checkpoint_roundtrip", false, checkpointRoundtripBench)
	return r, err
}

// fleetStepBench mirrors internal/sim's BenchmarkFleetStep: one simulated
// day per op on a consolidated fleet, with the one-off placement pass
// warmed up outside the timer so the steady-state step path is what's
// measured. Warehouse sizes provision services directly (the policy's
// placement scan is O(nodes) per VM) and trim the per-node power-table
// history so the row slab stays within a sane footprint.
func fleetStepBench(nodes, workers int, model battery.Kind) func(b *testing.B) {
	return func(b *testing.B) {
		cfg := sim.DefaultConfig()
		cfg.Policy = core.PolicySpec{Name: "ebuff"}
		cfg.Nodes = nodes
		cfg.Workers = workers
		cfg.Tick = suiteTick
		ncfg, err := cfg.Node.WithBatteryModel(model)
		if err != nil {
			b.Fatal(err)
		}
		cfg.Node = ncfg
		cfg.JobsPerDay = 0
		cfg.ServiceVMs = nodes / 4
		cfg.Solar.Scale = 1.5 * float64(nodes) / 6
		warehouse := nodes >= 16384
		if warehouse {
			cfg.ServiceVMs = 0 // provisioned directly below
			cfg.Node.TableCapacity = 64
		}
		s, err := sim.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if warehouse {
			if err := s.ProvisionServices(nodes / 4); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := s.RunDay(solar.Sunny); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.RunDay(solar.Cloudy); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// socColumnBench measures one columnar SoC sweep over a warehouse-sized
// same-chemistry column — the batch kernel the fleet's SoC snapshot runs
// per control pass instead of 65536 per-node calls.
func socColumnBench(kind battery.Kind) func(b *testing.B) {
	return func(b *testing.B) {
		spec, err := battery.DefaultSpecFor(kind)
		if err != nil {
			b.Fatal(err)
		}
		dst := make([]float64, suiteWarehouseNodes)
		if kind == battery.KindLinear {
			lins := make([]battery.Linear, suiteWarehouseNodes)
			for i := range lins {
				if err := battery.NewLinearInto(&lins[i], spec); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				battery.LinearSoCs(lins, dst)
			}
			return
		}
		packs := make([]battery.Pack, suiteWarehouseNodes)
		for i := range packs {
			if err := battery.NewInto(&packs[i], spec); err != nil {
				b.Fatal(err)
			}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			battery.PackSoCs(packs, dst)
		}
	}
}

// trackerObserveBench measures one aging-metric sample fold — the call
// every node makes every tick.
func trackerObserveBench(b *testing.B) {
	tr, err := aging.NewTracker(2100)
	if err != nil {
		b.Fatal(err)
	}
	discharge := aging.Sample{Dt: time.Minute, Current: 5, SoC: 0.55, Temperature: 25}
	charge := aging.Sample{Dt: time.Minute, Current: -5, SoC: 0.55, Temperature: 25}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := discharge
		if i&1 == 1 {
			s = charge
		}
		if err := tr.Observe(s); err != nil {
			b.Fatal(err)
		}
	}
}

// batteryStepBench measures one model step of the given tier, alternating
// between discharging and charging around mid-SoC so neither cut-off is
// reached however large b.N grows.
func batteryStepBench(kind battery.Kind) func(b *testing.B) {
	return func(b *testing.B) {
		spec, err := battery.DefaultSpecFor(kind)
		if err != nil {
			b.Fatal(err)
		}
		m, err := battery.NewModel(spec, battery.WithInitialSoC(0.6))
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if m.SoC() > 0.5 {
				if _, err := m.Discharge(60, time.Second, 25); err != nil {
					b.Fatal(err)
				}
			} else {
				if _, err := m.Charge(60, time.Second, 25); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}

// checkpointRoundtripBench measures one full checkpoint/resume cycle on a
// live prototype-scale fleet: serialize the simulator mid-run, then
// restore into a freshly built one. This is the fixed cost a warm-started
// sweep pays per variant instead of re-simulating the burn-in.
func checkpointRoundtripBench(b *testing.B) {
	build := func() *sim.Simulator {
		cfg := sim.DefaultConfig()
		s, err := sim.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		return s
	}
	src := build()
	if _, err := src.RunDay(solar.Cloudy); err != nil {
		b.Fatal(err)
	}
	dst := build()
	var buf bytes.Buffer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := src.Checkpoint(&buf); err != nil {
			b.Fatal(err)
		}
		if err := dst.ResumeFrom(bytes.NewReader(buf.Bytes())); err != nil {
			b.Fatal(err)
		}
	}
}

// experimentSweepBench runs one quick-mode experiment per op, serially or
// across the variant worker pool.
func experimentSweepBench(workers int) func(b *testing.B) {
	return func(b *testing.B) {
		runner, err := experiments.Lookup(suiteSweepID)
		if err != nil {
			b.Fatal(err)
		}
		cfg := experiments.DefaultConfig()
		cfg.Quick = true
		cfg.Workers = workers
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := runner(cfg); err != nil {
				b.Fatal(err)
			}
		}
	}
}
