package serve

import (
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
)

// registry is the set of live runs. IDs are a deterministic counter
// ("r1", "r2", ...) rather than anything random: the daemon stays
// reproducible end to end, and smoke tests can predict the IDs they will
// be handed.
type registry struct {
	mu     sync.Mutex
	runs   map[string]*Run
	nextID int
	closed bool
}

func newRegistry() *registry {
	return &registry{runs: make(map[string]*Run)}
}

// allocID reserves the next run ID. Allocation is split from put so that
// simulator construction — the expensive part — happens outside the
// registry lock with the ID already burned into the Run.
func (g *registry) allocID() string {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.nextID++
	return fmt.Sprintf("r%d", g.nextID)
}

// put publishes a fully-constructed run. It fails only when the registry
// is already closed (server shutting down); the caller must then stop the
// orphaned run itself.
func (g *registry) put(r *Run) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closed {
		return errf(http.StatusServiceUnavailable, CodeConflict, "server is shutting down")
	}
	g.runs[r.id] = r
	return nil
}

// get looks a run up by ID.
func (g *registry) get(id string) (*Run, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	r, ok := g.runs[id]
	if !ok {
		return nil, errf(http.StatusNotFound, CodeRunNotFound, "no run %q", id)
	}
	return r, nil
}

// remove unpublishes a run and hands it back for the caller to stop —
// stopping blocks until the run goroutine exits, which must not happen
// under the registry lock.
func (g *registry) remove(id string) (*Run, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	r, ok := g.runs[id]
	if !ok {
		return nil, errf(http.StatusNotFound, CodeRunNotFound, "no run %q", id)
	}
	delete(g.runs, id)
	return r, nil
}

// list snapshots every live run in creation order.
func (g *registry) list() []*Run {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]*Run, 0, len(g.runs))
	for _, r := range g.runs {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return runSeq(out[i].id) < runSeq(out[j].id) })
	return out
}

// runSeq extracts the counter from an "r<n>" ID for ordering.
func runSeq(id string) int {
	n, _ := strconv.Atoi(id[1:])
	return n
}

// closeAll marks the registry closed, then stops every run. After it
// returns, no run goroutine survives.
func (g *registry) closeAll() {
	g.mu.Lock()
	g.closed = true
	runs := make([]*Run, 0, len(g.runs))
	for _, r := range g.runs {
		runs = append(runs, r)
	}
	g.runs = map[string]*Run{}
	g.mu.Unlock()
	for _, r := range runs {
		r.stop()
	}
}
