// Quickstart: simulate three days of a solar-powered datacenter under the
// full BAAT policy and print what the controller saw.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	baat "github.com/green-dc/baat"
)

func main() {
	// 1. Build the simulated prototype: six servers, each backed by two
	//    12 V 35 Ah lead-acid batteries, fed by a shared PV array, running
	//    the six paper workloads in VMs. The policy is named by its registry
	//    spec — "baat" is the full controller with the paper's parameters:
	//    slowdown triggers below 40 % SoC, a 2-minute emergency reserve, and
	//    a protective discharge floor.
	cfg := baat.DefaultSimConfig()
	cfg.Policy = baat.PolicySpec{Name: "baat"}
	cfg.Services = baat.PrototypeServices()
	sim, err := baat.NewSimulator(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Run a sunny, a cloudy, and a rainy day (the paper's 8/6/3 kWh
	//    conditions) and inspect the results.
	result, err := sim.Run([]baat.Weather{baat.Sunny, baat.Cloudy, baat.Rainy})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("policy: %s\n\n", result.Policy)
	for _, day := range result.Days {
		fmt.Printf("day %d (%s): throughput %.1f work units, worst downtime %v, solar %.1f kWh\n",
			day.Day, day.Weather, day.Throughput, day.Downtime, float64(day.SolarEnergy)/1000)
	}

	fmt.Println("\nbattery fleet after three days:")
	for _, n := range result.Nodes {
		m := n.Metrics
		fmt.Printf("  %-8s health %.3f  SoC %.2f  NAT %.4f  CF %.2f  PC %.3f  DDT %.1f%%\n",
			n.ID, n.Health, n.SoC, m.NAT, m.CF, m.PC, m.DDT*100)
	}

	// 4. The five metrics of §III feed Eq 6: score any battery for a
	//    candidate workload placement.
	worst, _ := result.WorstNode()
	class := baat.DemandClass{LargePower: true, MoreEnergy: true}
	score := baat.WeightedAging(worst.Metrics, baat.DemandSensitivity(class))
	fmt.Printf("\nweighted aging of worst node %s for a Large/More workload: %.4f\n", worst.ID, score)
}
