package experiments

import (
	"fmt"
	"time"

	"github.com/green-dc/baat/internal/core"
	"github.com/green-dc/baat/internal/sim"
	"github.com/green-dc/baat/internal/solar"
)

// preAgeDays is how many accelerated days produce the "old" battery stage:
// at the default ×10 acceleration, 18 simulated days correspond to the
// April→October interval of §VI-B.
func preAgeDays(cfg Config) int {
	days := int(270 / cfg.Accel)
	if days < 2 {
		days = 2
	}
	return days
}

// runOneDay builds the prototype fleet, optionally ages it synchronously
// under the neutral e-Buff usage (§VI-B: "we regularly use the batteries
// and make them gradually and synchronously aging"), then measures one day
// of the given weather under the target policy with fresh metric logs.
// The measured day runs on a tighter PV array (the prototype's own scale)
// so that weather actually stresses the batteries.
func runOneDay(cfg Config, kind core.Kind, w solar.Weather, old bool) (*sim.Simulator, sim.DayStats, error) {
	neutral, err := core.New(core.EBuff, core.DefaultConfig())
	if err != nil {
		return nil, sim.DayStats{}, err
	}
	s, err := prototypeSimWithScale(cfg, core.EBuff, core.DefaultConfig(), tightScale)
	if err != nil {
		return nil, sim.DayStats{}, err
	}
	if err := s.SetPolicy(neutral); err != nil {
		return nil, sim.DayStats{}, err
	}
	if old {
		for _, pw := range weatherSequence(cfg.Seed+11, 0.5, preAgeDays(cfg)) {
			if _, err := s.RunDay(pw); err != nil {
				return nil, sim.DayStats{}, err
			}
		}
		for _, n := range s.Nodes() {
			n.ResetMetrics()
		}
	}
	policy, err := core.New(kind, core.DefaultConfig())
	if err != nil {
		return nil, sim.DayStats{}, err
	}
	if err := s.SetPolicy(policy); err != nil {
		return nil, sim.DayStats{}, err
	}
	ds, err := s.RunDay(w)
	if err != nil {
		return nil, sim.DayStats{}, err
	}
	return s, ds, nil
}

// runOneDayOwnAging is the deployment variant of runOneDay used for the
// throughput comparison: the fleet ages under the *measured* policy, so the
// October batteries reflect six months of that scheme's management — the
// mechanism behind the paper's worst-case throughput gap (aged e-Buff
// batteries cannot carry the cloudy day; BAAT's can).
func runOneDayOwnAging(cfg Config, kind core.Kind, w solar.Weather, old bool) (*sim.Simulator, sim.DayStats, error) {
	s, err := prototypeSimWithScale(cfg, kind, core.DefaultConfig(), tightScale)
	if err != nil {
		return nil, sim.DayStats{}, err
	}
	if old {
		for _, pw := range weatherSequence(cfg.Seed+11, 0.5, preAgeDays(cfg)) {
			if _, err := s.RunDay(pw); err != nil {
				return nil, sim.DayStats{}, err
			}
		}
		for _, n := range s.Nodes() {
			n.ResetMetrics()
		}
	}
	ds, err := s.RunDay(w)
	if err != nil {
		return nil, sim.DayStats{}, err
	}
	return s, ds, nil
}

// worstDayNAT returns the highest per-day NAT across the fleet after a
// measured day ("we select the worst battery node that has the most
// Ah-throughput", §VI-B).
func worstDayNAT(s *sim.Simulator) (nat, cf, pc float64) {
	for _, n := range s.Nodes() {
		m := n.Metrics()
		if m.NAT > nat {
			nat, cf, pc = m.NAT, m.CF, m.PC
		}
	}
	return nat, cf, pc
}

// WeatherProfile reproduces Fig 12: the aging metrics of the prototype
// under sunny, cloudy, and rainy conditions (the 8/6/3 kWh energy budgets
// of §VI-A) for the e-Buff baseline.
func WeatherProfile(cfg Config) (*Table, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig12",
		Title:   "Aging metric variation under different weather conditions",
		Columns: []string{"weather", "solar used (kWh)", "worst NAT", "CF", "PC", "low-SoC time"},
		Values:  map[string]float64{},
	}
	for _, w := range solar.Weathers() {
		s, ds, err := runOneDay(cfg, core.EBuff, w, false)
		if err != nil {
			return nil, err
		}
		nat, cf, pc := worstDayNAT(s)
		t.Rows = append(t.Rows, []string{
			w.String(),
			f2(float64(ds.SolarEnergy) / 1000),
			fmt.Sprintf("%.5f", nat),
			f2(cf), f3(pc),
			ds.LowSoCTime.String(),
		})
		t.Values[w.String()+"_nat"] = nat
		t.Values[w.String()+"_cf"] = cf
		t.Values[w.String()+"_pc"] = pc
	}
	t.Notes = append(t.Notes,
		"paper: sunny days show low Ah-throughput, higher CF, and high-SoC cycling;",
		"cloudy/rainy days show more throughput, lower CF, and lower PC")
	return t, nil
}

// AgingComparison reproduces Fig 13: NAT/CF/PC of the four policies across
// {sunny, cloudy} weather and {young, old} battery stages, measured on the
// worst battery node of each run.
func AgingComparison(cfg Config) (*Table, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig13",
		Title:   "Aging metrics of four power management schemes (worst node)",
		Columns: []string{"scenario", "policy", "NAT", "CF", "PC"},
		Values:  map[string]float64{},
	}
	type scenario struct {
		name string
		w    solar.Weather
		old  bool
	}
	scenarios := []scenario{
		{"young/sunny", solar.Sunny, false},
		{"young/cloudy", solar.Cloudy, false},
		{"old/sunny", solar.Sunny, true},
		{"old/cloudy", solar.Cloudy, true},
	}
	if cfg.Quick {
		scenarios = scenarios[1:2] // young/cloudy only
	}
	nats := map[string]float64{}
	for _, sc := range scenarios {
		for _, k := range core.Kinds() {
			s, _, err := runOneDay(cfg, k, sc.w, sc.old)
			if err != nil {
				return nil, err
			}
			nat, cf, pc := worstDayNAT(s)
			t.Rows = append(t.Rows, []string{
				sc.name, k.String(), fmt.Sprintf("%.5f", nat), f2(cf), f3(pc),
			})
			key := sc.name + "/" + k.String()
			nats[key] = nat
			t.Values[key+"_nat"] = nat
			t.Values[key+"_pc"] = pc
		}
	}
	if v, ok := ratio(nats, "young/cloudy/e-Buff", "young/cloudy/BAAT"); ok {
		t.Values["ebuff_vs_baat_nat_young_cloudy"] = v
	}
	if v, ok := ratio(nats, "old/cloudy/e-Buff", "old/cloudy/BAAT"); ok {
		t.Values["ebuff_vs_baat_nat_old_cloudy"] = v
	}
	if v, ok := ratio(nats, "young/cloudy/e-Buff", "young/sunny/e-Buff"); ok {
		t.Values["ebuff_cloudy_vs_sunny"] = v
	}
	t.Notes = append(t.Notes,
		"paper: e-Buff Ah-throughput ×1.3 of BAAT on average, ×2.1 when cloudy+old;",
		"e-Buff cloudy throughput ×1.35 of sunny")
	return t, nil
}

func ratio(m map[string]float64, num, den string) (float64, bool) {
	n, okN := m[num]
	d, okD := m[den]
	if !okN || !okD || d == 0 {
		return 0, false
	}
	return n / d, true
}

// LowSoCDuration reproduces Fig 18: the accumulated low-SoC (below 40 %)
// duration of the worst battery node under each policy over a multi-day
// run. The paper reads this as the availability risk: low SoC leaves less
// than the 2-minute emergency reserve.
func LowSoCDuration(cfg Config) (*Table, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	days := 12
	frac := 0.5
	scale := 1.5
	if cfg.Quick {
		// Shorter but harsher (less sun, smaller PV) so low-SoC exposure
		// still appears within the reduced horizon.
		days = 6
		frac = 0.3
		scale = tightScale
	}
	seq := weatherSequence(cfg.Seed+3, frac, days)
	t := &Table{
		ID:      "fig18",
		Title:   "Low-SoC duration comparison (worst node)",
		Columns: []string{"policy", "low-SoC time", "share of window", "server downtime"},
		Values:  map[string]float64{},
	}
	window := float64(days) * 10 // hours of operating window
	lows := map[core.Kind]float64{}
	for _, k := range core.Kinds() {
		s, err := prototypeSimWithScale(cfg, k, core.DefaultConfig(), scale)
		if err != nil {
			return nil, err
		}
		var lowH, downH float64
		for _, w := range seq {
			ds, err := s.RunDay(w)
			if err != nil {
				return nil, err
			}
			lowH += ds.LowSoCTime.Hours()
			downH += ds.Downtime.Hours()
		}
		lows[k] = lowH
		t.Rows = append(t.Rows, []string{
			k.String(),
			(time.Duration(lowH * float64(time.Hour))).Round(time.Minute).String(),
			pct(lowH / window),
			(time.Duration(downH * float64(time.Hour))).Round(time.Minute).String(),
		})
		t.Values[k.String()+"_low_hours"] = lowH
	}
	if lows[core.EBuff] > 0 {
		t.Values["availability_gain"] = (lows[core.EBuff] - lows[core.BAATFull]) / lows[core.EBuff]
	}
	t.Notes = append(t.Notes, "paper: BAAT increases battery availability by 47% (worst node)")
	return t, nil
}

// SoCDistribution reproduces Fig 19: the distribution of battery SoC over a
// long run, in the paper's seven bins, per policy.
func SoCDistribution(cfg Config) (*Table, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	days := int(270 / cfg.Accel)
	if cfg.Quick {
		days = 5
	}
	seq := weatherSequence(cfg.Seed+5, 0.5, days)
	labels := []string{
		"[0,15%)", "[15,30%)", "[30,45%)", "[45,60%)", "[60,75%)", "[75,90%)", "[90,100%]",
	}
	t := &Table{
		ID:      "fig19",
		Title:   "Distribution of battery SoC under different schemes",
		Columns: append([]string{"SoC bin"}, policyNames()...),
		Values:  map[string]float64{},
	}
	fracs := map[core.Kind][]float64{}
	for _, k := range core.Kinds() {
		s, err := prototypeSim(cfg, k, core.DefaultConfig())
		if err != nil {
			return nil, err
		}
		res, err := s.Run(seq)
		if err != nil {
			return nil, err
		}
		fracs[k] = res.SoCHistogram.Fractions()
	}
	for bin := 0; bin < len(labels); bin++ {
		row := []string{labels[bin]}
		for _, k := range core.Kinds() {
			row = append(row, pct(fracs[k][bin]))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Values["ebuff_lowest_bin"] = fracs[core.EBuff][0]
	t.Values["baat_lowest_bin"] = fracs[core.BAATFull][0]
	t.Values["ebuff_top_bin"] = fracs[core.EBuff][6]
	t.Values["baat_top_bin"] = fracs[core.BAATFull][6]
	t.Notes = append(t.Notes,
		"paper: e-Buff leaves batteries in low-SoC bins; BAAT shifts the mass toward 90-100%")
	return t, nil
}

func policyNames() []string {
	out := make([]string, 0, len(core.Kinds()))
	for _, k := range core.Kinds() {
		out = append(out, k.String())
	}
	return out
}

// Throughput reproduces Fig 20: one-day compute throughput of the four
// schemes across battery ages and weather, with the paper's headline being
// BAAT's advantage over e-Buff in the worst case (cloudy, old batteries).
func Throughput(cfg Config) (*Table, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig20",
		Title:   "One-day workload throughput of four schemes",
		Columns: []string{"scenario", "policy", "throughput (work units)", "downtime"},
		Values:  map[string]float64{},
	}
	type scenario struct {
		name string
		w    solar.Weather
		old  bool
	}
	scenarios := []scenario{
		{"young/sunny", solar.Sunny, false},
		{"young/cloudy", solar.Cloudy, false},
		{"old/sunny", solar.Sunny, true},
		{"old/cloudy", solar.Cloudy, true},
	}
	if cfg.Quick {
		scenarios = scenarios[3:]
	}
	thr := map[string]float64{}
	for _, sc := range scenarios {
		for _, k := range core.Kinds() {
			_, ds, err := runOneDayOwnAging(cfg, k, sc.w, sc.old)
			if err != nil {
				return nil, err
			}
			key := sc.name + "/" + k.String()
			thr[key] = ds.Throughput
			t.Rows = append(t.Rows, []string{
				sc.name, k.String(), fmt.Sprintf("%.1f", ds.Throughput), ds.Downtime.Round(time.Minute).String(),
			})
			t.Values[key] = ds.Throughput
		}
	}
	if base := thr["old/cloudy/e-Buff"]; base > 0 {
		t.Values["baat_gain_worst_case"] = thr["old/cloudy/BAAT"]/base - 1
	}
	t.Notes = append(t.Notes, "paper: BAAT improves worst-case (cloudy+old) throughput by 28% over e-Buff")
	return t, nil
}
