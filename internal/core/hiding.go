package core

import (
	"github.com/green-dc/baat/internal/node"
	"github.com/green-dc/baat/internal/vm"
)

// baatH is BAAT-h (Table 4): aging-aware VM migration only. It watches a
// single aging signal — deep-discharge exposure (DDT), the most direct
// symptom of a weak or overloaded battery — and migrates load off batteries
// that sit visibly deeper than the fleet. Per §VI-B it lacks the holistic
// weighted-aging view: migration *targets* are drawn at random from nodes
// with capacity rather than ranked by Eq 6, which makes its migrations
// "random and low efficiency" and costs throughput (§VI-F).
type baatH struct {
	cfg Config
}

// ddtImbalanceFactor is how far above the fleet-average deep-discharge time
// a node must be before BAAT-h migrates load away from it.
const ddtImbalanceFactor = 1.15

// natImbalanceFactor is the bootstrap criterion before any battery has seen
// deep discharge: throughput imbalance.
const natImbalanceFactor = 1.15

func init() {
	Register("baat-h", Descriptor{
		Display: "BAAT-h",
		Aliases: []string{"baath"},
		Rank:    3,
		Doc:     "aging-aware VM migration only (the hiding arm, single-metric DDT view)",
		Options: migrationOptionDocs,
		Build: func(spec PolicySpec) (Policy, error) {
			cfg, err := configFromOptions(spec.Options)
			if err != nil {
				return nil, err
			}
			return &baatH{cfg: cfg}, nil
		},
	})
}

// Name returns the Table 4 scheme name.
func (*baatH) Name() string { return "BAAT-h" }

// PlaceVM places new VMs on the node with the least deep-discharge exposure
// (falling back to load on ties) — aging-aware but single-metric. Nodes
// with quarantined metrics report a DDT the policy cannot trust, so they
// are considered only when no trusted node has capacity.
func (*baatH) PlaceVM(ctx *Context, v *vm.VM) (*node.Node, error) {
	const tie = 1e-4
	pick := func(allowSuspect bool) *node.Node {
		var best *node.Node
		bestDDT, bestLoad := 0.0, 0.0
		for _, n := range ctx.Nodes {
			if !n.Server().CanHost(v) {
				continue
			}
			if !allowSuspect && n.MetricsSuspect() {
				continue
			}
			ddt := n.Metrics().DDT
			load := reservedLoad(n)
			better := best == nil ||
				ddt < bestDDT-tie ||
				(ddt < bestDDT+tie && load < bestLoad)
			if better {
				best, bestDDT, bestLoad = n, ddt, load
			}
		}
		return best
	}
	best := pick(false)
	if best == nil {
		best = pick(true)
	}
	if best == nil {
		return nil, ErrNoCapacity
	}
	return best, nil
}

// Control migrates one VM off every node whose deep-discharge exposure
// (or, before any deep discharge exists, Ah throughput) exceeds the fleet
// average by the imbalance factor, to a random node with capacity.
func (p *baatH) Control(ctx *Context) error {
	if len(ctx.Nodes) < 2 {
		return nil
	}
	// Fleet averages are computed over trusted nodes only — quarantined
	// metrics would poison the baseline every other decision compares
	// against.
	var sumDDT, sumNAT float64
	var trusted int
	for _, n := range ctx.Nodes {
		if n.MetricsSuspect() {
			continue
		}
		m := n.Metrics()
		sumDDT += m.DDT
		sumNAT += m.NAT
		trusted++
	}
	var avgDDT, avgNAT float64
	if trusted > 0 {
		avgDDT = sumDDT / float64(trusted)
		avgNAT = sumNAT / float64(trusted)
	}
	for _, src := range ctx.Nodes {
		// A quarantined source is treated as worst-aged: migrate load off
		// it without consulting its (untrustworthy) metrics.
		overloaded := src.MetricsSuspect()
		if !overloaded && avgDDT > 0 {
			overloaded = src.Metrics().DDT > avgDDT*ddtImbalanceFactor
		} else if !overloaded && avgNAT > 0 {
			overloaded = src.Metrics().NAT > avgNAT*natImbalanceFactor
		}
		if !overloaded {
			continue
		}
		v := migratableVM(src)
		if v == nil {
			continue
		}
		// Non-holistic target choice: a random permutation of the other
		// nodes, first fit — but never onto another quarantined node.
		for _, idx := range ctx.Rng.Perm(len(ctx.Nodes)) {
			dst := ctx.Nodes[idx]
			if dst == src || dst.MetricsSuspect() || !dst.Server().CanHost(v) {
				continue
			}
			if err := migrate(ctx, src, dst, v.ID(), p.cfg.MigrationTime); err != nil {
				return err
			}
			break
		}
	}
	return nil
}

// migratableVM returns a running or paused VM on the node, or nil.
func migratableVM(n *node.Node) *vm.VM {
	for _, v := range n.Server().VMs() {
		if s := v.State(); s == vm.Running || s == vm.Paused {
			return v
		}
	}
	return nil
}
