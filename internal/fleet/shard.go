package fleet

import (
	"github.com/green-dc/baat/internal/rng"
)

// Shard is one rack-group partition of the fleet: the contiguous node
// index range [Lo, Hi) plus the shard's named RNG substream. Shards are
// the unit of parallel work — distinct shards touch disjoint node state,
// so any assignment of shards to workers computes the same fleet state —
// and the unit of aggregation: per-shard Summary values merge in shard
// order into whole-fleet aggregates.
type Shard struct {
	// Index is the shard's position in the partition.
	Index int
	// Lo and Hi bound the shard's node index range: [Lo, Hi).
	Lo, Hi int
	// Rng is the shard's substream, derived from the run seed and the
	// shard index alone (rng.Shard), so draws stay identical at any
	// worker count. It must only be used by whichever goroutine is
	// executing the shard.
	Rng *rng.Stream
}

// Len returns the number of nodes in the shard.
func (s Shard) Len() int { return s.Hi - s.Lo }

// partition slices n nodes into shards of the given size (default
// DefaultShardSize; the last shard takes the remainder), deriving each
// shard's substream from seed.
func partition(n, size int, seed int64) []Shard {
	if size <= 0 {
		size = DefaultShardSize
	}
	shards := make([]Shard, 0, (n+size-1)/size)
	for lo := 0; lo < n; lo += size {
		hi := min(lo+size, n)
		i := len(shards)
		shards = append(shards, Shard{
			Index: i,
			Lo:    lo,
			Hi:    hi,
			Rng:   rng.New(seed, rng.Shard(i)),
		})
	}
	return shards
}
