# Development targets. `make check` is the pre-commit gate CI expects.

GO ?= go

.PHONY: check fmt vet build test test-race bench bench-smoke bench-regression bench-baseline bench-trend profile conformance fuzz-smoke chaos-smoke checkpoint-smoke serve-smoke docs-check policy-registry-check golden-update

check: ## gofmt -l + vet + build + race tests
	./check.sh

fmt: ## rewrite formatting in place
	gofmt -w .

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

bench: ## quick-mode experiment benchmarks
	$(GO) test -bench=. -benchmem -run=^$$ ./...

bench-smoke: ## one-iteration fleet-stepping benchmark (compile + run sanity; warehouse sizes are covered by bench-regression)
	$(GO) test -run=NONE -bench='FleetStep/nodes=(16|256|2048)$$/' -benchtime=1x ./internal/sim/

bench-regression: ## run the fixed suite and fail on regressions vs BENCH_baseline.json
	$(GO) run ./cmd/baatbench -bench-compare BENCH_baseline.json

bench-baseline: ## re-measure and overwrite BENCH_baseline.json (commit the result)
	$(GO) run ./cmd/baatbench -bench-json BENCH_baseline.json

bench-trend: ## append a suite run (with git SHA) to BENCH_history.jsonl
	./scripts/bench_trend.sh

profile: ## CPU+heap profile of the 65536-node serial fleet step (then: go tool pprof cpu.pprof)
	$(GO) test -run=NONE -bench='FleetStep/nodes=65536/workers=1$$' -benchtime=2x \
		-cpuprofile cpu.pprof -memprofile mem.pprof ./internal/sim/
	@echo "profile: go tool pprof -top cpu.pprof   # or -http=:8080 for the flame graph"

conformance: ## shared battery-model contract across all tiers + chemistry fuzz smoke
	$(GO) test -count=1 -run 'TestModelConformance' ./internal/battery/
	$(GO) test -run=NONE -fuzz=FuzzModelStep -fuzztime=5s ./internal/battery/

fuzz-smoke: ## short fuzz pass over the aging-metric tracker
	$(GO) test -run=NONE -fuzz=FuzzAgingMetrics -fuzztime=5s ./internal/aging/

chaos-smoke: ## cluster kill/restart chaos + degraded-mode scenarios under -race
	$(GO) test -race -count=1 -run 'TestClusterChaos|TestFailPending|TestChaosReRegistration' ./internal/cluster/
	$(GO) test -count=1 -run 'TestGoldenTraceFaulted$$|TestDegradedModeScenarios' ./internal/sim/

checkpoint-smoke: ## checkpoint a baatsim run mid-flight, resume it, diff the reports
	./scripts/checkpoint_smoke.sh

serve-smoke: ## start the baatsim serve daemon, fork a run over the API, diff the results
	./scripts/serve_smoke.sh

docs-check: ## every docs/*.md linked from README; intra-repo doc links resolve
	./scripts/docs_check.sh

policy-registry-check: ## no core.Kind enum or policy-name dispatch outside internal/core
	./scripts/policy_registry_check.sh

golden-update: ## regenerate the 30-day golden trace fixtures (clean + faulted)
	$(GO) test ./internal/sim/ -run 'TestGoldenTrace$$|TestGoldenTraceFaulted$$' -update
