package serve

import (
	"fmt"
	"strings"

	"github.com/green-dc/baat/internal/battery"
	"github.com/green-dc/baat/internal/core"
	"github.com/green-dc/baat/internal/faults"
	"github.com/green-dc/baat/internal/rng"
	"github.com/green-dc/baat/internal/sim"
	"github.com/green-dc/baat/internal/solar"
	"github.com/green-dc/baat/internal/telemetry"
	"github.com/green-dc/baat/internal/workload"
)

// maxDays bounds one run's horizon. A served simulation pre-draws its
// weather sequence and retains per-day checkpoints, so the horizon must be
// finite; ten simulated years is far beyond any battery study's window.
const maxDays = 3650

// RunSpec is the JSON body of POST /runs: everything needed to construct
// one simulation, mirroring the cmd/baatsim flags so a served run with a
// given spec reproduces the CLI run with the same settings (identical
// seeds, identical weather stream). Zero values take the CLI's defaults.
//
// The spec is also the unit of mutation bookkeeping: the mutate endpoint
// edits the live spec field-for-field, and every checkpoint snapshots the
// spec that was in force when it was written, so a fork rebuilds its
// simulator from exactly the configuration that produced the envelope.
type RunSpec struct {
	// Name is a free-form label echoed in statuses and listings.
	Name string `json:"name,omitempty"`
	// Policy selects the power-management scheme by registry name (any
	// name `baatsim policies` lists, aliases accepted; default baat).
	Policy string `json:"policy,omitempty"`
	// PolicyOptions are the policy's option knobs (the same key=value
	// vocabulary as the CLI's -policy flag, e.g. {"floor": "0.25"}).
	// Normalization validates them against the policy's registered option
	// set before any run state exists.
	PolicyOptions map[string]string `json:"policy_options,omitempty"`
	// Days is the simulated horizon (default 7, max 3650).
	Days int `json:"days,omitempty"`
	// Nodes is the fleet size (default 6, the prototype).
	Nodes int `json:"nodes,omitempty"`
	// Seed pins all randomness (default 1).
	Seed int64 `json:"seed,omitempty"`
	// Weather is sunny | cloudy | rainy | mix (default mix). Mix draws
	// the day sequence from the run seed's cli-weather stream, exactly as
	// cmd/baatsim does.
	Weather string `json:"weather,omitempty"`
	// Sunshine is the sunshine fraction for mix weather (default 0.5).
	Sunshine *float64 `json:"sunshine,omitempty"`
	// JobsPerDay is the batch arrivals per morning (default 2).
	JobsPerDay *int `json:"jobs_per_day,omitempty"`
	// SolarScale scales the PV array relative to the prototype
	// (default 1.5).
	SolarScale *float64 `json:"solar_scale,omitempty"`
	// Accel is the battery aging acceleration factor (default 1).
	Accel *float64 `json:"accel,omitempty"`
	// Workers is the node-stepping worker count (default 1; -1 = all
	// CPUs; never changes results).
	Workers int `json:"workers,omitempty"`
	// Faults names a fault-injection profile: none | sensor | battery |
	// power | chaos (default none).
	Faults string `json:"faults,omitempty"`
	// BatteryModel selects the battery tier: leadacid | linear | lfp
	// (default leadacid).
	BatteryModel string `json:"battery_model,omitempty"`
	// PrototypeServices deploys the six paper workloads as persistent
	// services (default true).
	PrototypeServices *bool `json:"prototype_services,omitempty"`
	// CheckpointEvery stores an in-memory checkpoint after every N
	// completed days (default 1 — every day is forkable; -1 disables
	// checkpointing and therefore forking).
	CheckpointEvery int `json:"checkpoint_every,omitempty"`
}

// withDefaults returns the spec with every zero field replaced by its
// default, without validating.
func (sp RunSpec) withDefaults() RunSpec {
	if sp.Policy == "" {
		sp.Policy = "baat"
	}
	if sp.Days == 0 {
		sp.Days = 7
	}
	if sp.Nodes == 0 {
		sp.Nodes = 6
	}
	if sp.Seed == 0 {
		sp.Seed = 1
	}
	if sp.Weather == "" {
		sp.Weather = "mix"
	}
	sp.Weather = strings.ToLower(sp.Weather)
	if sp.Sunshine == nil {
		sp.Sunshine = ptr(0.5)
	}
	if sp.JobsPerDay == nil {
		sp.JobsPerDay = ptr(2)
	}
	if sp.SolarScale == nil {
		sp.SolarScale = ptr(1.5)
	}
	if sp.Accel == nil {
		sp.Accel = ptr(1.0)
	}
	if sp.Faults == "" {
		sp.Faults = "none"
	}
	sp.Faults = strings.ToLower(sp.Faults)
	if sp.BatteryModel == "" {
		sp.BatteryModel = "leadacid"
	}
	if sp.PrototypeServices == nil {
		sp.PrototypeServices = ptr(true)
	}
	if sp.CheckpointEvery == 0 {
		sp.CheckpointEvery = 1
	} else if sp.CheckpointEvery < 0 {
		sp.CheckpointEvery = 0 // normalized "never"
	}
	return sp
}

func ptr[T any](v T) *T { return &v }

// normalize fills defaults and validates every field, returning the
// canonical spec. All validation that can fail without building a
// simulator happens here, so the API can answer 400 with a precise message
// before any state exists.
func (sp RunSpec) normalize() (RunSpec, error) {
	sp = sp.withDefaults()
	norm, err := core.Normalize(core.PolicySpec{Name: sp.Policy, Options: sp.PolicyOptions})
	if err != nil {
		return sp, err
	}
	// Build validates option *values* too (Normalize only checks keys), so
	// a bad floor or duration fails here with a 400, not at run start.
	if _, err := core.Build(norm); err != nil {
		return sp, err
	}
	sp.Policy = norm.Name
	sp.PolicyOptions = norm.Options
	if sp.Days < 0 || sp.Days > maxDays {
		return sp, fmt.Errorf("days must be in [1, %d], got %d", maxDays, sp.Days)
	}
	if sp.Nodes < 0 {
		return sp, fmt.Errorf("nodes must be positive, got %d", sp.Nodes)
	}
	switch sp.Weather {
	case "sunny", "cloudy", "rainy":
	case "mix":
		loc := solar.Location{SunshineFraction: *sp.Sunshine}
		if err := loc.Validate(); err != nil {
			return sp, err
		}
	default:
		return sp, fmt.Errorf("unknown weather %q (want sunny, cloudy, rainy, or mix)", sp.Weather)
	}
	if *sp.JobsPerDay < 0 {
		return sp, fmt.Errorf("jobs_per_day must be non-negative, got %d", *sp.JobsPerDay)
	}
	if *sp.SolarScale <= 0 {
		return sp, fmt.Errorf("solar_scale must be positive, got %v", *sp.SolarScale)
	}
	if *sp.Accel <= 0 {
		return sp, fmt.Errorf("accel must be positive, got %v", *sp.Accel)
	}
	if _, err := faults.Profile(sp.Faults, 0); err != nil {
		return sp, err
	}
	if _, err := battery.ParseKind(sp.BatteryModel); err != nil {
		return sp, err
	}
	return sp, nil
}

// policySpec assembles the spec's registry identity. Normalization stored
// the canonical name and options, so the result round-trips through
// core.Normalize unchanged.
func (sp RunSpec) policySpec() core.PolicySpec {
	return core.PolicySpec{Name: sp.Policy, Options: sp.PolicyOptions}.Clone()
}

// weatherFor materializes the run's full weather sequence up front — the
// property that makes pause, resume, and forking deterministic: the skies a
// run will see are fixed at creation (and only change through an explicit
// sunshine mutation, which redraws the remaining suffix from its own named
// stream).
func weatherFor(sp RunSpec) []solar.Weather {
	fixed := map[string]solar.Weather{
		"sunny":  solar.Sunny,
		"cloudy": solar.Cloudy,
		"rainy":  solar.Rainy,
	}
	seq := make([]solar.Weather, sp.Days)
	if w, ok := fixed[sp.Weather]; ok {
		for i := range seq {
			seq[i] = w
		}
		return seq
	}
	stream := rng.New(sp.Seed, rng.CLIWeather)
	loc := solar.Location{SunshineFraction: *sp.Sunshine}
	for i := range seq {
		seq[i] = loc.DrawWeather(stream.Rand)
	}
	return seq
}

// simConfig converts a normalized spec into the engine configuration.
func simConfig(sp RunSpec) (sim.Config, error) {
	cfg := sim.DefaultConfig()
	cfg.Policy = sp.policySpec()
	cfg.Seed = sp.Seed
	cfg.Nodes = sp.Nodes
	cfg.Workers = sp.Workers
	cfg.JobsPerDay = *sp.JobsPerDay
	cfg.Solar.Scale = *sp.SolarScale
	cfg.Node.AgingConfig.AccelFactor = *sp.Accel
	bk, err := battery.ParseKind(sp.BatteryModel)
	if err != nil {
		return sim.Config{}, err
	}
	ncfg, err := cfg.Node.WithBatteryModel(bk)
	if err != nil {
		return sim.Config{}, err
	}
	cfg.Node = ncfg
	if *sp.PrototypeServices {
		cfg.Services = workload.PrototypeServices()
	}
	fcfg, err := faults.Profile(sp.Faults, 0)
	if err != nil {
		return sim.Config{}, err
	}
	cfg.Faults = fcfg
	return cfg, nil
}

// buildSim constructs the simulator for a normalized spec, instrumented
// with the run's own telemetry recorder. The policy itself is built by the
// engine from cfg.Policy via the registry.
func buildSim(sp RunSpec, rec *telemetry.Recorder) (*sim.Simulator, error) {
	cfg, err := simConfig(sp)
	if err != nil {
		return nil, err
	}
	cfg.Telemetry = rec
	return sim.New(cfg)
}

// Mutation is the JSON body of POST /runs/{id}/mutate: each present field
// rewrites one scenario knob mid-flight. Fields that match the run's
// current spec are reported as no-ops and change nothing — the guarantee
// the concurrent-hammering tests lean on.
type Mutation struct {
	// Policy swaps the power-management scheme between days (any registry
	// name). Omitting it while sending PolicyOptions retunes the *current*
	// policy's options.
	Policy string `json:"policy,omitempty"`
	// PolicyOptions are the option knobs for the (possibly new) policy.
	// They replace the run's current option set wholesale; a policy swap
	// without options resets to the policy's defaults.
	PolicyOptions map[string]string `json:"policy_options,omitempty"`
	// Sunshine re-rolls the remaining weather suffix at a new sunshine
	// fraction (mix-weather runs only).
	Sunshine *float64 `json:"sunshine,omitempty"`
	// Faults swaps the fault-injection profile between days.
	Faults *string `json:"faults,omitempty"`
}
