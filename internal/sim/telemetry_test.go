package sim

import (
	"testing"
	"time"

	"github.com/green-dc/baat/internal/solar"
	"github.com/green-dc/baat/internal/telemetry"
)

// telemetrySim builds a simulator with its own recorder under harsh
// conditions: accelerated aging, a tight PV array, and default services, so
// batteries spend real time below the slowdown trigger.
func telemetrySim(t *testing.T, policy string) (*Simulator, *telemetry.Recorder) {
	t.Helper()
	rec := telemetry.NewRecorder()
	s := newSim(t, policy, func(c *Config) {
		c.Telemetry = rec
		c.Node.AgingConfig.AccelFactor = 50
		c.Solar.Scale = 0.8
		c.JobsPerDay = 6
	})
	return s, rec
}

// stressWeather is a battery-punishing sequence: rain drains the bank and
// the lone cloudy day cannot refill it.
var stressWeather = []solar.Weather{
	solar.Rainy, solar.Rainy, solar.Cloudy, solar.Rainy, solar.Rainy,
}

// TestTelemetryPolicyDivergence is the acceptance check for the telemetry
// subsystem: on an identical trace, e-Buff (which never migrates nor caps
// frequency) and BAAT (which does both, Figs 8/9) must produce different
// policy counters while agreeing on the pure engine counters.
func TestTelemetryPolicyDivergence(t *testing.T) {
	ebuffSim, ebuffRec := telemetrySim(t, "ebuff")
	baatSim, baatRec := telemetrySim(t, "baat")

	if _, err := ebuffSim.Run(stressWeather); err != nil {
		t.Fatal(err)
	}
	if _, err := baatSim.Run(stressWeather); err != nil {
		t.Fatal(err)
	}

	ebuff := ebuffRec.Snapshot()
	baat := baatRec.Snapshot()

	// Engine counters must match exactly: same days, same tick count.
	for _, name := range []string{telemetry.MetricSimTicks, telemetry.MetricSimDays} {
		if e, b := ebuff.Counter(name), baat.Counter(name); e != b {
			t.Errorf("%s: ebuff %d != baat %d (engines diverged)", name, e, b)
		}
	}
	if got, want := baat.Counter(telemetry.MetricSimDays), int64(len(stressWeather)); got != want {
		t.Errorf("days = %d, want %d", got, want)
	}

	// e-Buff is aging-oblivious: it never issues migrations or DVFS caps.
	for _, name := range []string{
		telemetry.MetricMigrations,
		telemetry.MetricDVFSCaps,
		telemetry.MetricDVFSRestores,
	} {
		if got := ebuff.Counter(name); got != 0 {
			t.Errorf("ebuff %s = %d, want 0", name, got)
		}
	}

	// BAAT must have actually managed the fleet on this trace.
	migrations := baat.Counter(telemetry.MetricMigrations)
	caps := baat.Counter(telemetry.MetricDVFSCaps)
	if migrations+caps == 0 {
		t.Fatalf("BAAT issued no migrations and no DVFS caps on a stress trace (migrations=%d caps=%d)",
			migrations, caps)
	}

	// And the actions must be visible in the event trace.
	policyEvents := func(evs []telemetry.Event) int {
		var n int
		for _, ev := range evs {
			if ev.Type == telemetry.EventMigration || ev.Type == telemetry.EventDVFSCap {
				n++
			}
		}
		return n
	}
	if policyEvents(baat.Events) == 0 {
		t.Error("BAAT counters moved but no migration/DVFS events were traced")
	}
	if got := policyEvents(ebuff.Events); got != 0 {
		t.Errorf("ebuff traced %d policy events, want 0", got)
	}
}

// TestTelemetryEngineCounters pins the engine-side counters to values
// derivable from the configuration.
func TestTelemetryEngineCounters(t *testing.T) {
	rec := telemetry.NewRecorder()
	s := newSim(t, "baat", func(c *Config) { c.Telemetry = rec })
	if _, err := s.RunDay(solar.Sunny); err != nil {
		t.Fatal(err)
	}
	snap := rec.Snapshot()

	ticksPerDay := int64(24 * time.Hour / DefaultConfig().Tick)
	if got := snap.Counter(telemetry.MetricSimTicks); got != ticksPerDay {
		t.Errorf("ticks = %d, want %d", got, ticksPerDay)
	}
	if got := snap.Counter(telemetry.MetricSimDays); got != 1 {
		t.Errorf("days = %d, want 1", got)
	}
	if got := snap.Counter(telemetry.MetricSimJobsSubmitted); got == 0 {
		t.Error("no jobs submitted")
	}
	if got := snap.Counter(telemetry.MetricSimPlacements); got == 0 {
		t.Error("no placements recorded")
	}
	// The clock gauge refreshes at control periods, so after one day it
	// holds the last in-window control time (within the operating window).
	clock := snap.Gauge(telemetry.MetricSimClockSeconds)
	if clock < DefaultConfig().WindowStart.Seconds() || clock > (24*time.Hour).Seconds() {
		t.Errorf("clock gauge = %v, want within the first day's window", clock)
	}

	soc, ok := snap.Histograms[telemetry.MetricSoC]
	if !ok {
		t.Fatal("SoC histogram missing")
	}
	// One in-window sample per node per tick: 10 h window, 6 nodes.
	window := DefaultConfig().WindowEnd - DefaultConfig().WindowStart
	want := int64(window/DefaultConfig().Tick) * int64(DefaultConfig().Nodes)
	if soc.Count != want {
		t.Errorf("SoC samples = %d, want %d", soc.Count, want)
	}
	// Seven finite bounds are the seven bins of Fig 19; SoC never exceeds
	// 1.0 so the implicit +Inf overflow bucket stays empty.
	if len(soc.Bounds) != 7 {
		t.Errorf("SoC histogram has %d bounds, want 7", len(soc.Bounds))
	}
	if overflow := soc.Counts[len(soc.Counts)-1]; overflow != 0 {
		t.Errorf("SoC overflow bucket = %d, want 0", overflow)
	}

	if got := snap.Gauge(telemetry.MetricFleetMinHealth); got <= 0 || got > 1 {
		t.Errorf("fleet min health gauge = %v, want in (0, 1]", got)
	}
}

// TestTelemetryNilRecorder ensures a full run with no recorder works and
// allocates no telemetry state.
func TestTelemetryNilRecorder(t *testing.T) {
	s := newSim(t, "baat")
	if s.tel != nil {
		t.Fatal("nil config produced a recorder")
	}
	if _, err := s.RunDay(solar.Rainy); err != nil {
		t.Fatal(err)
	}
}
