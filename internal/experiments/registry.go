package experiments

import (
	"fmt"
	"slices"
)

// Runner executes one experiment.
type Runner func(Config) (*Table, error)

// registry maps experiment IDs to their harnesses, in paper order.
var registry = []struct {
	ID     string
	Runner Runner
}{
	{"fig3", VoltageDrop},
	{"fig4", CapacityDrop},
	{"fig5", EfficiencyDegradation},
	{"fig10", CycleLifeCurves},
	{"fig12", WeatherProfile},
	{"fig13", AgingComparison},
	{"fig14", LifetimeVsSunshine},
	{"fig15", LifetimeVsRatio},
	{"fig16", DepreciationCost},
	{"fig17", ServerExpansion},
	{"fig18", LowSoCDuration},
	{"fig19", SoCDistribution},
	{"fig20", Throughput},
	{"fig21", PerfVsDoD},
	{"fig22", PlannedAgingBenefit},
	{"table1", UsageScenarios},
	{"table3", DemandSensitivity},
	// Extensions beyond the paper's artifact list: ablations of BAAT's
	// design choices and the Fig 7 architecture comparison.
	{"ablation-floor", AblationFloor},
	{"ablation-migration", AblationMigration},
	{"arch-comparison", ArchitectureComparison},
	{"demand-response", DemandResponse},
	{"model-fidelity", ModelFidelity},
	{"mixed-fleet", MixedFleet},
}

// IDs lists all experiment IDs in paper order.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for _, e := range registry {
		out = append(out, e.ID)
	}
	return out
}

// Lookup returns the runner for an experiment ID.
func Lookup(id string) (Runner, error) {
	for _, e := range registry {
		if e.ID == id {
			return e.Runner, nil
		}
	}
	known := IDs()
	slices.Sort(known)
	return nil, fmt.Errorf("experiments: unknown experiment %q (known: %v)", id, known)
}

// RunAll executes every experiment and returns the tables in paper order.
// It stops at the first error.
func RunAll(cfg Config) ([]*Table, error) {
	out := make([]*Table, 0, len(registry))
	for _, e := range registry {
		t, err := e.Runner(cfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", e.ID, err)
		}
		out = append(out, t)
	}
	return out, nil
}
