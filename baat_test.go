package baat_test

import (
	"context"
	"testing"
	"time"

	baat "github.com/green-dc/baat"
)

func TestPublicQuickstart(t *testing.T) {
	cfg := baat.DefaultSimConfig()
	cfg.Policy = baat.PolicySpec{Name: "baat"}
	s, err := baat.NewSimulator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run([]baat.Weather{baat.Sunny, baat.Cloudy})
	if err != nil {
		t.Fatal(err)
	}
	if res.Policy != "BAAT" || res.Throughput <= 0 || len(res.Days) != 2 {
		t.Errorf("unexpected result: policy=%q throughput=%v days=%d", res.Policy, res.Throughput, len(res.Days))
	}
}

func TestPublicPolicyRegistry(t *testing.T) {
	infos := baat.RegisteredPolicies()
	if len(infos) < 4 {
		t.Fatalf("RegisteredPolicies() = %d entries, want at least the 4 of Table 4", len(infos))
	}
	for _, info := range infos {
		p, err := baat.BuildPolicy(baat.PolicySpec{Name: info.Name})
		if err != nil {
			t.Fatalf("BuildPolicy(%q): %v", info.Name, err)
		}
		if p.Name() != info.Display {
			t.Errorf("policy %q names itself %q, registry says %q", info.Name, p.Name(), info.Display)
		}
	}
	spec, err := baat.ParsePolicySpec("baat,floor=0.25")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := baat.BuildPolicy(spec); err != nil {
		t.Fatal(err)
	}
}

func TestPublicBatteryAndAging(t *testing.T) {
	pack, err := baat.NewBattery(baat.DefaultBatterySpec(), baat.WithInitialSoC(0.8))
	if err != nil {
		t.Fatal(err)
	}
	if pack.SoC() != 0.8 {
		t.Errorf("SoC = %v, want 0.8", pack.SoC())
	}
	model, err := baat.NewAgingModel(baat.DefaultAgingModelConfig(), baat.DefaultBatterySpec().NominalCapacity)
	if err != nil {
		t.Fatal(err)
	}
	res, err := pack.Discharge(100, time.Hour, 25)
	if err != nil {
		t.Fatal(err)
	}
	if err := model.Observe(baat.AgingSample{
		Dt: time.Hour, Current: res.Current, SoC: pack.SoC(), Temperature: pack.Temperature(),
	}); err != nil {
		t.Fatal(err)
	}
	pack.ApplyDegradation(model.Degradation())
	if pack.Health() >= 1 {
		t.Error("no degradation applied")
	}
}

func TestPublicWorkloadsAndVMs(t *testing.T) {
	if got := len(baat.WorkloadKinds()); got != 6 {
		t.Fatalf("WorkloadKinds() = %d, want 6", got)
	}
	p, err := baat.WorkloadProfileFor(baat.KMeans)
	if err != nil {
		t.Fatal(err)
	}
	v, err := baat.NewVM("vm-1", p)
	if err != nil {
		t.Fatal(err)
	}
	if v.State() != baat.VMRunning {
		t.Errorf("state = %v, want running", v.State())
	}
	if len(baat.PrototypeServices()) != 6 {
		t.Error("prototype services should cover all six workloads")
	}
}

func TestPublicCycleLifeAndEquations(t *testing.T) {
	for _, m := range baat.Manufacturers() {
		c, err := baat.CycleLife(m, 0.5)
		if err != nil || c <= 0 {
			t.Errorf("CycleLife(%v) = (%v, %v)", m, c, err)
		}
	}
	sens := baat.DemandSensitivity(baat.DemandClass{LargePower: true, MoreEnergy: true})
	w := baat.WeightedAging(baat.Metrics{NAT: 0.5, CF: 0.5, PC: 0.5}, sens)
	if w <= 0 {
		t.Errorf("WeightedAging = %v, want positive for a worn battery", w)
	}
	goal, err := baat.DoDGoal(7000, 1000, 300, 35)
	if err != nil || goal <= 0 {
		t.Errorf("DoDGoal = (%v, %v)", goal, err)
	}
}

func TestPublicExperimentRegistry(t *testing.T) {
	ids := baat.Experiments()
	if len(ids) != 23 {
		t.Fatalf("Experiments() = %d entries, want 23 (15 figures + 2 tables + 6 extensions)", len(ids))
	}
	cfg := baat.DefaultExperimentConfig()
	cfg.Quick = true
	table, err := baat.RunExperiment("fig10", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if table.ID != "fig10" || len(table.Rows) == 0 {
		t.Errorf("fig10 table malformed: %+v", table)
	}
	if table.Render() == "" {
		t.Error("Render produced nothing")
	}
	if _, err := baat.RunExperiment("fig99", cfg); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestPublicControlPlane(t *testing.T) {
	ctrl, err := baat.ListenController(baat.DefaultControllerConfig("127.0.0.1:0"))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = ctrl.Close() }()

	n, err := baat.NewNode("edge-1", baat.DefaultNodeConfig())
	if err != nil {
		t.Fatal(err)
	}
	handle, err := baat.NewLocalNode(n)
	if err != nil {
		t.Fatal(err)
	}
	acfg := baat.DefaultAgentConfig(ctrl.Addr())
	acfg.ReportInterval = 20 * time.Millisecond
	agent, err := baat.StartAgent(acfg, handle)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = agent.Close() }()

	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) && len(ctrl.Snapshot()) == 0 {
		time.Sleep(10 * time.Millisecond)
	}
	snap := ctrl.Snapshot()
	if len(snap) != 1 || snap[0].Report.NodeID != "edge-1" {
		t.Fatalf("snapshot = %+v", snap)
	}
	ack, err := ctrl.SendCommand(context.Background(), "edge-1", baat.NodeCommand{Action: baat.ActionPing})
	if err != nil || !ack.OK {
		t.Fatalf("ping: ack=%+v err=%v", ack, err)
	}
}

func TestPublicCostModel(t *testing.T) {
	m := baat.DefaultCostModel()
	dep, err := m.AnnualBatteryDepreciation(6, 365*24*time.Hour)
	if err != nil || dep <= 0 {
		t.Errorf("depreciation = (%v, %v)", dep, err)
	}
}

func TestPublicMigration(t *testing.T) {
	a, err := baat.NewNode("a", baat.DefaultNodeConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := baat.NewNode("b", baat.DefaultNodeConfig())
	if err != nil {
		t.Fatal(err)
	}
	p, err := baat.WorkloadProfileFor(baat.WordCount)
	if err != nil {
		t.Fatal(err)
	}
	v, err := baat.NewVM("v", p)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Server().Attach(v); err != nil {
		t.Fatal(err)
	}
	if err := baat.MigrateVM(a, b, "v", baat.DefaultMigrationTime); err != nil {
		t.Fatal(err)
	}
	if len(b.Server().VMs()) != 1 {
		t.Error("VM did not land on destination")
	}
}
