package aging

import (
	"testing"
	"testing/quick"

	"github.com/green-dc/baat/internal/units"
)

func TestImpactWeights(t *testing.T) {
	tests := []struct {
		im   Impact
		want float64
	}{
		{ImpactHigh, 0.5},
		{ImpactMedium, 0.3},
		{ImpactLow, 0.2},
	}
	for _, tt := range tests {
		if got := tt.im.Weight(); got != tt.want {
			t.Errorf("%v.Weight() = %v, want %v", tt.im, got, tt.want)
		}
	}
}

func TestImpactString(t *testing.T) {
	if ImpactHigh.String() != "High" || ImpactMedium.String() != "Medium" || ImpactLow.String() != "Low" {
		t.Error("impact labels wrong")
	}
	if Impact(0).String() == "" {
		t.Error("unknown impact should render")
	}
}

func TestDemandSensitivityTable3(t *testing.T) {
	tests := []struct {
		class DemandClass
		want  Sensitivity
	}{
		{DemandClass{LargePower: true, MoreEnergy: false}, Sensitivity{NAT: ImpactMedium, CF: ImpactHigh, PC: ImpactHigh}},
		{DemandClass{LargePower: true, MoreEnergy: true}, Sensitivity{NAT: ImpactHigh, CF: ImpactHigh, PC: ImpactHigh}},
		{DemandClass{LargePower: false, MoreEnergy: true}, Sensitivity{NAT: ImpactHigh, CF: ImpactLow, PC: ImpactMedium}},
		{DemandClass{LargePower: false, MoreEnergy: false}, Sensitivity{NAT: ImpactLow, CF: ImpactLow, PC: ImpactLow}},
	}
	for _, tt := range tests {
		t.Run(tt.class.String(), func(t *testing.T) {
			if got := DemandSensitivity(tt.class); got != tt.want {
				t.Errorf("DemandSensitivity(%v) = %+v, want %+v", tt.class, got, tt.want)
			}
		})
	}
}

func TestDemandClassString(t *testing.T) {
	if got := (DemandClass{LargePower: true, MoreEnergy: true}).String(); got != "Large/More" {
		t.Errorf("String() = %q, want Large/More", got)
	}
	if got := (DemandClass{}).String(); got != "Small/Less" {
		t.Errorf("String() = %q, want Small/Less", got)
	}
}

func TestWeightedAgingOrdersNodesByHealthiness(t *testing.T) {
	sens := DemandSensitivity(DemandClass{LargePower: true, MoreEnergy: true})
	healthy := Metrics{NAT: 0.05, CF: 1.15, PC: 0.95}
	tired := Metrics{NAT: 0.60, CF: 0.85, PC: 0.40}
	if WeightedAging(healthy, sens) >= WeightedAging(tired, sens) {
		t.Error("healthy battery scored worse than tired battery")
	}
}

func TestWeightedAgingComponents(t *testing.T) {
	sens := Sensitivity{NAT: ImpactHigh, CF: ImpactHigh, PC: ImpactHigh}
	tests := []struct {
		name string
		m    Metrics
		want float64
	}{
		{"pristine", Metrics{NAT: 0, CF: 1.15, PC: 1}, 0},
		{"budget spent", Metrics{NAT: 1, CF: 1.15, PC: 1}, 0.5},
		{"no recharge ever", Metrics{NAT: 0, CF: 0, PC: 1}, 0.5},
		{"all low-SoC cycling", Metrics{NAT: 0, CF: 1.15, PC: 0.25}, 0.5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := WeightedAging(tt.m, sens); !units.NearlyEqual(got, tt.want, 1e-9) {
				t.Errorf("WeightedAging = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestCFBadnessWindow(t *testing.T) {
	// Inside the healthy window there is no penalty; both directions out
	// of it are penalized (§III-B).
	if cfBadness(1.1) != 0 || cfBadness(1.3) != 0 || cfBadness(1.05) != 0 {
		t.Error("healthy CF window penalized")
	}
	if cfBadness(0.8) <= 0 {
		t.Error("under-recharge CF not penalized")
	}
	if cfBadness(1.6) <= 0 {
		t.Error("float-charge CF not penalized")
	}
	if cfBadness(0) != 1 {
		t.Error("never-recharged battery should be worst case")
	}
}

func TestWeightedAgingBoundedProperty(t *testing.T) {
	f := func(nat, cf, pc float64, largePower, moreEnergy bool) bool {
		m := Metrics{
			NAT: units.Clamp(nat, 0, 2),
			CF:  units.Clamp(cf, 0, 3),
			PC:  units.Clamp(pc, 0.25, 1),
		}
		s := DemandSensitivity(DemandClass{LargePower: largePower, MoreEnergy: moreEnergy})
		w := WeightedAging(m, s)
		return w >= 0 && w <= 1.5 // three weights each ≤ 0.5, badness ≤ 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDoDGoal(t *testing.T) {
	tests := []struct {
		name    string
		total   units.AmpereHour
		used    units.AmpereHour
		cycles  float64
		want    float64
		wantErr bool
	}{
		{"even spend", 7000, 0, 400, 0.5, false},      // 7000/400/35 = 0.5
		{"half used", 7000, 3500, 200, 0.5, false},    // 3500/200/35 = 0.5
		{"clamped high", 7000, 0, 100, 0.9, false},    // 2.0 → 0.9
		{"clamped low", 7000, 6900, 500, 0.05, false}, // 0.0057 → 0.05
		{"overdrawn", 7000, 9000, 100, 0.05, false},   // negative remaining → floor
		{"zero total", 0, 0, 100, 0, true},
		{"zero cycles", 7000, 0, 0, 0, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := DoDGoal(tt.total, tt.used, tt.cycles, 35)
			if tt.wantErr {
				if err == nil {
					t.Error("DoDGoal succeeded, want error")
				}
				return
			}
			if err != nil {
				t.Fatalf("DoDGoal: %v", err)
			}
			if !units.NearlyEqual(got, tt.want, 1e-9) {
				t.Errorf("DoDGoal = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestDoDGoalMonotoneInRemainingBudget(t *testing.T) {
	f := func(usedRaw uint16) bool {
		used := units.AmpereHour(usedRaw % 7000)
		g1, err1 := DoDGoal(7000, used, 300, 35)
		g2, err2 := DoDGoal(7000, used+100, 300, 35)
		if err1 != nil || err2 != nil {
			return false
		}
		return g2 <= g1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
