package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/green-dc/baat/internal/serve/leaktest"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer func() { _ = resp.Body.Close() }()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading %s: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

func TestMetricsEndpoint(t *testing.T) {
	leaktest.Check(t)
	r := NewRecorder()
	r.Counter(MetricMigrations).Add(7)
	r.Gauge(MetricFleetMinHealth).Set(0.93)
	h := r.Histogram(MetricSoC, LinearBounds(0, 1, 7))
	h.Observe(0.2)
	h.Observe(0.9)

	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	code, body := get(t, srv.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status = %d", code)
	}
	for _, want := range []string{
		"# TYPE " + MetricMigrations + " counter",
		MetricMigrations + " 7",
		"# HELP " + MetricMigrations + " ",
		"# TYPE " + MetricFleetMinHealth + " gauge",
		MetricFleetMinHealth + " 0.93",
		"# TYPE " + MetricSoC + " histogram",
		MetricSoC + `_bucket{le="+Inf"} 2`,
		MetricSoC + "_count 2",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q in:\n%s", want, body)
		}
	}
	// Cumulative buckets: 0.9 lands above the 6/7 bound, so the first
	// bucket line holds only the 0.2 sample.
	if !strings.Contains(body, MetricSoC+`_bucket{le="0.14`) {
		t.Errorf("/metrics missing first SoC bucket in:\n%s", body)
	}
}

func TestEventsEndpoint(t *testing.T) {
	leaktest.Check(t)
	r := NewRecorder(WithTraceCapacity(8))
	r.Emit(time.Minute, EventBatteryEOL, "node-3", "health 0.79")
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	code, body := get(t, srv.URL+"/events")
	if code != http.StatusOK {
		t.Fatalf("/events status = %d", code)
	}
	var dump struct {
		Events  []Event `json:"events"`
		Total   uint64  `json:"total"`
		Dropped uint64  `json:"dropped"`
	}
	if err := json.Unmarshal([]byte(body), &dump); err != nil {
		t.Fatalf("/events not JSON: %v\n%s", err, body)
	}
	if len(dump.Events) != 1 || dump.Total != 1 || dump.Dropped != 0 {
		t.Fatalf("/events dump = %+v, want one event", dump)
	}
	ev := dump.Events[0]
	if ev.Type != EventBatteryEOL || ev.Node != "node-3" || ev.At != time.Minute {
		t.Errorf("event = %+v", ev)
	}
}

func TestPprofEndpoint(t *testing.T) {
	leaktest.Check(t)
	r := NewRecorder()
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	code, body := get(t, srv.URL+"/debug/pprof/")
	if code != http.StatusOK {
		t.Fatalf("/debug/pprof/ status = %d", code)
	}
	if !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ index missing profiles:\n%s", body)
	}
	code, _ = get(t, srv.URL+"/debug/pprof/cmdline")
	if code != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline status = %d", code)
	}
}

func TestListenAndServe(t *testing.T) {
	leaktest.Check(t)
	r := NewRecorder()
	r.Counter(MetricSimTicks).Inc()
	srv, err := r.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = srv.Close() }()
	code, body := get(t, "http://"+srv.Addr()+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if !strings.Contains(body, MetricSimTicks+" 1") {
		t.Errorf("metrics body missing tick counter:\n%s", body)
	}
}

func TestEmptyMetricsAndEvents(t *testing.T) {
	leaktest.Check(t)
	r := NewRecorder()
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	if code, _ := get(t, srv.URL+"/metrics"); code != http.StatusOK {
		t.Errorf("/metrics on empty registry status = %d", code)
	}
	code, body := get(t, srv.URL+"/events")
	if code != http.StatusOK {
		t.Errorf("/events on empty ring status = %d", code)
	}
	if !strings.Contains(body, `"events":[]`) {
		t.Errorf("/events should serialize an empty array, got %s", body)
	}
}
