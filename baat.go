// Package baat is a library reproduction of BAAT — Battery Anti-Aging
// Treatment — the battery-aging-aware power-management framework for green
// datacenters from "BAAT: Towards Dynamically Managing Battery Aging in
// Green Datacenters" (DSN 2015).
//
// The library contains everything the paper's system needs, implemented
// from scratch on the standard library:
//
//   - an electrochemical lead-acid battery model with aging feedback
//     (Battery, BatterySpec, Degradation);
//   - the five system-level aging metrics of §III — NAT, CF, PC, DDT, DR —
//     plus a mechanism-level damage model and manufacturer cycle-life
//     curves (Metrics, MetricsTracker, AgingModel, CycleLife);
//   - the BAAT controller and the baseline policies of Table 4, selected
//     by name through an extensible policy registry (BuildPolicy,
//     RegisteredPolicies), including weighted-aging placement (Eq 6),
//     slowdown control (Fig 9), and planned aging (Eq 7);
//   - the simulated green-datacenter prototype of §V: solar supply, six
//     workloads, VMs with migration, DVFS-capable servers, per-server
//     battery nodes, and a discrete-time engine (Simulator);
//   - a TCP control plane mirroring the prototype's controller/sensor
//     architecture (Controller, Agent);
//   - an experiment harness regenerating every evaluation figure and table
//     (Experiments, RunExperiment, RunAllExperiments).
//
// # Quick start
//
//	cfg := baat.DefaultSimConfig()
//	cfg.Policy = baat.PolicySpec{Name: "baat"}
//	sim, err := baat.NewSimulator(cfg)
//	if err != nil { ... }
//	result, err := sim.Run([]baat.Weather{baat.Sunny, baat.Cloudy, baat.Rainy})
//
// See examples/ for runnable scenarios and EXPERIMENTS.md for the
// paper-versus-measured record.
package baat

import (
	"github.com/green-dc/baat/internal/core"
	"github.com/green-dc/baat/internal/sim"
	"github.com/green-dc/baat/internal/solar"
)

// PolicySpec names a registered power-management scheme plus its option
// knobs — the serializable policy identity used by SimConfig, checkpoints,
// the experiment harness, and the control plane. Registered names include
// "ebuff", "baat-s", "baat-h", "baat", and "baat-f".
type PolicySpec = core.PolicySpec

// PolicyInfo describes one registered policy (name, display name, doc,
// option vocabulary).
type PolicyInfo = core.Info

// RegisteredPolicies lists every registered policy in Table 4 rank order.
func RegisteredPolicies() []PolicyInfo { return core.Registered() }

// ParsePolicySpec parses the CLI form "name[,key=value...]".
func ParsePolicySpec(s string) (PolicySpec, error) { return core.ParsePolicySpec(s) }

// Policy is a battery power-management scheme driving a node fleet.
type Policy = core.Policy

// PolicyConfig parameterizes policy construction.
type PolicyConfig = core.Config

// SlowdownConfig parameterizes the aging-slowdown algorithm (Fig 9).
type SlowdownConfig = core.SlowdownConfig

// PlannedAgingConfig enables DoD-goal regulation (§IV-D, Eq 7).
type PlannedAgingConfig = core.PlannedAgingConfig

// DefaultPolicyConfig returns the paper's parameters.
func DefaultPolicyConfig() PolicyConfig { return core.DefaultConfig() }

// BuildPolicy constructs a registered policy from its spec.
func BuildPolicy(spec PolicySpec) (Policy, error) {
	return core.Build(spec)
}

// ErrNoCapacity is returned by Policy.PlaceVM when no node can host a VM.
var ErrNoCapacity = core.ErrNoCapacity

// Simulator replays the prototype: a solar-powered fleet of battery nodes
// running VM-hosted workloads under a policy.
type Simulator = sim.Simulator

// SimConfig parameterizes a simulation.
type SimConfig = sim.Config

// SimResult is the outcome of a simulation run.
type SimResult = sim.Result

// DayStats summarizes one simulated day.
type DayStats = sim.DayStats

// NodeSummary is the end-of-run state of one battery node.
type NodeSummary = sim.NodeSummary

// BatteryShare is one block of a mixed battery fleet (SimConfig.
// BatteryFleet): a model tier and the fraction of the fleet it covers.
type BatteryShare = sim.BatteryShare

// DefaultSimConfig mirrors the prototype: six nodes, one-minute ticks,
// 08:30–18:30 operating window.
func DefaultSimConfig() SimConfig { return sim.DefaultConfig() }

// NewSimulator builds a simulator running the policy named by cfg.Policy.
func NewSimulator(cfg SimConfig) (*Simulator, error) {
	return sim.New(cfg)
}

// Weather classifies a day's solar potential.
type Weather = solar.Weather

// The three weather conditions of §VI-A (daily budgets 8/6/3 kWh).
const (
	Sunny  = solar.Sunny
	Cloudy = solar.Cloudy
	Rainy  = solar.Rainy
)

// Location models a deployment site by its sunshine fraction (§VI-C).
type Location = solar.Location

// SolarConfig shapes generated solar days.
type SolarConfig = solar.Config

// SolarDay is one generated day of solar supply.
type SolarDay = solar.Day

// DailyBudget returns the paper's measured daily generation for a weather
// condition at prototype scale.
func DailyBudget(w Weather) WattHour { return solar.DailyBudget(w) }

// LifetimePrediction is one node's projected battery end-of-life.
type LifetimePrediction = core.LifetimePrediction

// PredictLifetimes projects battery end-of-life for a fleet from its
// observed damage rates (§I: BAAT "proactively predicts battery lifetime").
func PredictLifetimes(nodes []*Node) []LifetimePrediction {
	return core.PredictLifetimes(&core.Context{Nodes: nodes})
}
