package serve

// The determinism contracts of the service, asserted at byte granularity:
// a fork is indistinguishable from its parent's checkpoint, and pausing or
// resuming a run leaves no trace in its output. Byte equality — not
// semantic equality — is the bar, because the checkpoint envelope and the
// result document are the interchange formats clients diff.

import (
	"bytes"
	"net/http"
	"testing"
)

// equivSpec is a scenario with enough moving parts to catch a lossy
// restore: chaos fault injection (injector state, degraded flags, sensor
// corruption), accelerated aging (battery wear in flight), and mixed
// weather (live RNG streams).
func equivSpec(days int, seed int64) RunSpec {
	return RunSpec{Days: days, Seed: seed, Accel: ptr(10.0), Faults: "chaos"}
}

// TestForkMatchesParentCheckpoint forks a finished run at day 5 and
// demands the child's day-5 envelope be byte-identical to the parent's:
// build config from the snapshot spec, restore, re-serialize, and nothing
// may shift. Then both runs finish and their result documents must also
// be byte-identical — the fork truly is the same simulation.
func TestForkMatchesParentCheckpoint(t *testing.T) {
	c := newTestClient(t)
	const forkDay = 5
	parent := c.create(equivSpec(8, 11))
	c.post("/runs/" + parent.ID + "/start")
	c.waitState(parent.ID, StateDone)
	parentCk := c.checkpoint(parent.ID, forkDay)

	var child RunInfo
	if st := c.doJSON("POST", "/runs/"+parent.ID+"/fork?day="+itoa(forkDay), nil, &child); st != http.StatusCreated {
		t.Fatalf("fork: status %d", st)
	}
	if child.State != StatePaused || child.Day != forkDay {
		t.Fatalf("fork = %s at day %d, want paused at day %d", child.State, child.Day, forkDay)
	}
	if child.ForkedFrom != parent.ID || child.ForkDay != forkDay {
		t.Fatalf("fork lineage = %q/%d, want %q/%d", child.ForkedFrom, child.ForkDay, parent.ID, forkDay)
	}

	childCk := c.checkpoint(child.ID, forkDay)
	if !bytes.Equal(parentCk, childCk) {
		t.Fatalf("child's day-%d checkpoint differs from parent's:\nparent: %d bytes\nchild:  %d bytes",
			forkDay, len(parentCk), len(childCk))
	}

	c.post("/runs/" + child.ID + "/resume")
	c.waitState(child.ID, StateDone)
	pres, cres := c.resultBytes(parent.ID), c.resultBytes(child.ID)
	if !bytes.Equal(pres, cres) {
		t.Fatalf("fork's final result diverged from parent's:\nparent: %s\nchild:  %s", pres, cres)
	}
}

// TestPauseResumeMatchesUninterrupted runs the same scenario twice — once
// straight through, once chopped up by step/pause/resume — and compares
// the result documents and the final checkpoints byte for byte.
func TestPauseResumeMatchesUninterrupted(t *testing.T) {
	c := newTestClient(t)
	const days = 7

	straight := c.create(equivSpec(days, 5))
	c.post("/runs/" + straight.ID + "/start")
	c.waitState(straight.ID, StateDone)

	chopped := c.create(equivSpec(days, 5))
	id := chopped.ID
	c.post("/runs/" + id + "/step?to=2")
	c.waitState(id, StatePaused)
	c.post("/runs/" + id + "/pause") // pausing a paused run is a no-op
	c.post("/runs/" + id + "/step?to=5")
	c.waitState(id, StatePaused)
	c.post("/runs/" + id + "/resume")
	c.waitState(id, StateDone)

	if a, b := c.resultBytes(straight.ID), c.resultBytes(id); !bytes.Equal(a, b) {
		t.Fatalf("pause/resume changed the result:\nstraight: %s\nchopped:  %s", a, b)
	}
	for _, day := range []int{3, days} {
		if a, b := c.checkpoint(straight.ID, day), c.checkpoint(id, day); !bytes.Equal(a, b) {
			t.Fatalf("pause/resume changed the day-%d checkpoint", day)
		}
	}
}
