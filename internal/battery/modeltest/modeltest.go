// Package modeltest is the shared conformance suite every battery.Model
// implementation must pass. The battery package runs it against all three
// tiers (electrochemical lead-acid, linear coulomb-counting, LFP); a new
// chemistry or fidelity tier earns its place in battery.Kinds() by passing
// Run unchanged.
//
// The contract it pins, independent of chemistry:
//
//   - State of charge stays in [0, 1] and temperature stays finite under
//     arbitrary valid step schedules (property-checked via testing/quick).
//   - Health is monotone non-increasing under growing degradation and never
//     rises on its own during stepping.
//   - Every step balances energy at the terminals: Energy = Voltage ×
//     Charge, with discharge positive and charge negative.
//   - Snapshot/Restore is an identity: a restored model replays a schedule
//     bit-identically to the original, and snapshotting is read-only.
//   - Corrupt snapshots are rejected wholesale without mutating the target.
//   - Non-finite or non-positive step inputs are rejected without mutating
//     state (the same contract the cross-tier fuzzer hammers).
package modeltest

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"github.com/green-dc/baat/internal/battery"
	"github.com/green-dc/baat/internal/units"
)

// Factory builds a fresh instance of the model under test. Each subtest
// calls it at least once; instances must be independent.
type Factory func(t *testing.T) battery.Model

// Run executes the full conformance suite against the model the factory
// builds, as subtests under the given name.
func Run(t *testing.T, name string, factory Factory) {
	t.Helper()
	t.Run(name, func(t *testing.T) {
		t.Run("SoCBounds", func(t *testing.T) { runSoCBounds(t, factory) })
		t.Run("EnergyBalance", func(t *testing.T) { runEnergyBalance(t, factory) })
		t.Run("HealthMonotone", func(t *testing.T) { runHealthMonotone(t, factory) })
		t.Run("SnapshotRestoreIdentity", func(t *testing.T) { runSnapshotRestore(t, factory) })
		t.Run("CorruptStateRejected", func(t *testing.T) { runCorruptState(t, factory) })
		t.Run("InputRejection", func(t *testing.T) { runInputRejection(t, factory) })
	})
}

// op is one step of a generated schedule.
type op struct {
	kind int // 0 = discharge, 1 = charge, 2 = rest
	pw   units.Watt
	dt   time.Duration
	amb  units.Celsius
}

// schedule derives a deterministic random step sequence from a seed. Powers
// span zero through well past either tier's limits, durations from seconds
// to hours, ambients from freezing rooms to hot containers — all valid
// inputs the model must absorb without leaving its envelope.
func schedule(seed int64, steps int) []op {
	rng := rand.New(rand.NewSource(seed))
	ops := make([]op, steps)
	for i := range ops {
		ops[i] = op{
			kind: rng.Intn(3),
			pw:   units.Watt(rng.Float64() * 500),
			dt:   time.Second + time.Duration(rng.Float64()*float64(2*time.Hour)),
			amb:  units.Celsius(-10 + rng.Float64()*55),
		}
	}
	return ops
}

// apply executes one schedule op and returns its result.
func apply(m battery.Model, o op) (battery.StepResult, error) {
	switch o.kind {
	case 0:
		return m.Discharge(o.pw, o.dt, o.amb)
	case 1:
		return m.Charge(o.pw, o.dt, o.amb)
	default:
		return battery.StepResult{}, m.Rest(o.dt, o.amb)
	}
}

func finite(x float64) bool { return !math.IsNaN(x) && !math.IsInf(x, 0) }

func runSoCBounds(t *testing.T, factory Factory) {
	check := func(seed int64) bool {
		m := factory(t)
		for _, o := range schedule(seed, 200) {
			if _, err := apply(m, o); err != nil {
				t.Logf("seed %d: valid step rejected: %v", seed, err)
				return false
			}
			if soc := m.SoC(); soc < 0 || soc > 1 || !finite(soc) {
				t.Logf("seed %d: SoC left [0, 1]: %v", seed, soc)
				return false
			}
			if !finite(float64(m.Temperature())) {
				t.Logf("seed %d: non-finite temperature %v", seed, m.Temperature())
				return false
			}
			if h := m.Health(); h <= 0 || h > 1 || !finite(h) {
				t.Logf("seed %d: health left (0, 1]: %v", seed, h)
				return false
			}
			if float64(m.EffectiveCapacity()) <= 0 {
				t.Logf("seed %d: effective capacity not positive: %v", seed, m.EffectiveCapacity())
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func runEnergyBalance(t *testing.T, factory Factory) {
	m := factory(t)
	for i, o := range schedule(7, 400) {
		res, err := apply(m, o)
		if err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		// Terminal energy must equal voltage × charge exactly (the step
		// holds voltage constant), for both signs.
		want := float64(res.Voltage) * float64(res.Charge)
		got := float64(res.Energy)
		if diff := math.Abs(got - want); diff > 1e-9*math.Max(1, math.Abs(want)) {
			t.Fatalf("step %d: energy %v does not balance voltage %v × charge %v = %v",
				i, res.Energy, res.Voltage, res.Charge, want)
		}
		switch o.kind {
		case 0: // discharge: out-flows are non-negative
			if res.Current < 0 || res.Charge < 0 || res.Energy < 0 {
				t.Fatalf("step %d: discharge produced negative flow: %+v", i, res)
			}
		case 1: // charge: in-flows are non-positive
			if res.Current > 0 || res.Charge > 0 || res.Energy > 0 {
				t.Fatalf("step %d: charge produced positive flow: %+v", i, res)
			}
		}
	}
}

func runHealthMonotone(t *testing.T, factory Factory) {
	m := factory(t)
	prev := m.Health()
	if prev != 1 {
		t.Fatalf("fresh model health = %v, want 1", prev)
	}
	rng := rand.New(rand.NewSource(11))
	fade := 0.0
	for i := 0; i < 50; i++ {
		// Interleave stepping with growing wear: stepping alone must never
		// raise health, and applying strictly growing degradation must
		// lower it monotonically.
		for _, o := range schedule(int64(i), 5) {
			if _, err := apply(m, o); err != nil {
				t.Fatal(err)
			}
			if h := m.Health(); h > prev {
				t.Fatalf("health rose from %v to %v during stepping", prev, h)
			}
		}
		fade += rng.Float64() * 0.005
		m.ApplyDegradation(battery.Degradation{
			CapacityFade:     fade,
			ResistanceGrowth: fade * 2,
			EfficiencyLoss:   fade * 0.1,
		})
		h := m.Health()
		if h > prev {
			t.Fatalf("health rose from %v to %v under growing degradation", prev, h)
		}
		prev = h
	}
}

func runSnapshotRestore(t *testing.T, factory Factory) {
	prefix := schedule(42, 100)
	suffix := schedule(43, 100)

	orig := factory(t)
	for _, o := range prefix {
		if _, err := apply(orig, o); err != nil {
			t.Fatal(err)
		}
	}
	snap := orig.Snapshot()
	if again := orig.Snapshot(); again != snap {
		t.Fatalf("two snapshots without mutation differ:\n%+v\n%+v", snap, again)
	}

	// The original and a restored fresh instance must replay the suffix
	// bit-identically: every StepResult and the final snapshot.
	restored := factory(t)
	if err := restored.Restore(snap); err != nil {
		t.Fatalf("restoring a valid snapshot: %v", err)
	}
	if got := restored.Snapshot(); got != snap {
		t.Fatalf("restore is not an identity:\nwant %+v\ngot  %+v", snap, got)
	}
	for i, o := range suffix {
		a, errA := apply(orig, o)
		b, errB := apply(restored, o)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("step %d: original err %v, restored err %v", i, errA, errB)
		}
		if a != b {
			t.Fatalf("step %d: replay diverged:\noriginal %+v\nrestored %+v", i, a, b)
		}
	}
	if a, b := orig.Snapshot(), restored.Snapshot(); a != b {
		t.Fatalf("final states diverged:\noriginal %+v\nrestored %+v", a, b)
	}
}

func runCorruptState(t *testing.T, factory Factory) {
	m := factory(t)
	for _, o := range schedule(5, 50) {
		if _, err := apply(m, o); err != nil {
			t.Fatal(err)
		}
	}
	good := m.Snapshot()

	corruptions := map[string]func(*battery.State){
		"soc above 1":          func(st *battery.State) { st.SoC = 2 },
		"soc below 0":          func(st *battery.State) { st.SoC = -0.1 },
		"nan soc":              func(st *battery.State) { st.SoC = math.NaN() },
		"nan temperature":      func(st *battery.State) { st.Temperature = units.Celsius(math.NaN()) },
		"absurd temperature":   func(st *battery.State) { st.Temperature = 1000 },
		"negative ah out":      func(st *battery.State) { st.AhOut = -1 },
		"inf wh in":            func(st *battery.State) { st.WhIn = units.WattHour(math.Inf(1)) },
		"negative cycles":      func(st *battery.State) { st.Cycles = -3 },
		"negative operating":   func(st *battery.State) { st.Operating = -time.Hour },
		"fade above 1":         func(st *battery.State) { st.Degradation.CapacityFade = 1.5 },
		"nan fade":             func(st *battery.State) { st.Degradation.CapacityFade = math.NaN() },
		"zero capacity scale":  func(st *battery.State) { st.CapacityScale = 0 },
		"wild resistance":      func(st *battery.State) { st.ResistanceScale = 100 },
		"negative charge wh":   func(st *battery.State) { st.WhOut = -5 },
		"efficiency loss wild": func(st *battery.State) { st.Degradation.EfficiencyLoss = 0.999 },
	}
	for name, corrupt := range corruptions {
		bad := good
		corrupt(&bad)
		before := m.Snapshot()
		if err := m.Restore(bad); err == nil {
			t.Errorf("%s: corrupt state restored without error", name)
		}
		if after := m.Snapshot(); after != before {
			t.Errorf("%s: failed restore mutated the model:\nbefore %+v\nafter  %+v", name, before, after)
		}
	}
}

func runInputRejection(t *testing.T, factory Factory) {
	m := factory(t)
	// Establish some non-trivial state first.
	for _, o := range schedule(9, 20) {
		if _, err := apply(m, o); err != nil {
			t.Fatal(err)
		}
	}

	nan, inf := math.NaN(), math.Inf(1)
	cases := map[string]op{
		"nan discharge power":  {kind: 0, pw: units.Watt(nan), dt: time.Minute, amb: 25},
		"inf discharge power":  {kind: 0, pw: units.Watt(inf), dt: time.Minute, amb: 25},
		"negative discharge":   {kind: 0, pw: -10, dt: time.Minute, amb: 25},
		"zero dt discharge":    {kind: 0, pw: 50, dt: 0, amb: 25},
		"negative dt":          {kind: 0, pw: 50, dt: -time.Minute, amb: 25},
		"nan ambient":          {kind: 0, pw: 50, dt: time.Minute, amb: units.Celsius(nan)},
		"nan charge power":     {kind: 1, pw: units.Watt(nan), dt: time.Minute, amb: 25},
		"negative charge":      {kind: 1, pw: -10, dt: time.Minute, amb: 25},
		"inf charge ambient":   {kind: 1, pw: 50, dt: time.Minute, amb: units.Celsius(inf)},
		"zero dt rest":         {kind: 2, dt: 0, amb: 25},
		"nan rest ambient":     {kind: 2, dt: time.Minute, amb: units.Celsius(nan)},
		"neg inf charge power": {kind: 1, pw: units.Watt(math.Inf(-1)), dt: time.Minute, amb: 25},
	}
	for name, o := range cases {
		before := m.Snapshot()
		res, err := apply(m, o)
		if err == nil {
			t.Errorf("%s: invalid input accepted (result %+v)", name, res)
		}
		if res != (battery.StepResult{}) {
			t.Errorf("%s: rejected step returned non-zero result %+v", name, res)
		}
		if after := m.Snapshot(); after != before {
			t.Errorf("%s: rejected step mutated state:\nbefore %+v\nafter  %+v", name, before, after)
		}
	}
}
