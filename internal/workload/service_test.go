package workload

import "testing"

func TestAsService(t *testing.T) {
	p, err := ProfileFor(KMeans)
	if err != nil {
		t.Fatal(err)
	}
	s := p.AsService()
	if !s.Service {
		t.Error("AsService did not mark the profile as a service")
	}
	if s.WorkUnits != 0 {
		t.Errorf("service work units = %v, want 0", s.WorkUnits)
	}
	if err := s.Validate(); err != nil {
		t.Errorf("service profile invalid: %v", err)
	}
	// The utilization shape is preserved.
	if s.PeakUtilization != p.PeakUtilization || len(s.Phases) != len(p.Phases) {
		t.Error("AsService changed the utilization shape")
	}
	// The original profile is untouched (value semantics).
	if p.Service {
		t.Error("AsService mutated its receiver")
	}
}

func TestPrototypeServices(t *testing.T) {
	services := PrototypeServices()
	if len(services) != len(Kinds()) {
		t.Fatalf("PrototypeServices() = %d profiles, want %d", len(services), len(Kinds()))
	}
	seen := map[Kind]bool{}
	for _, s := range services {
		if !s.Service {
			t.Errorf("%v not converted to a service", s.Kind)
		}
		if err := s.Validate(); err != nil {
			t.Errorf("%v invalid: %v", s.Kind, err)
		}
		if seen[s.Kind] {
			t.Errorf("%v duplicated", s.Kind)
		}
		seen[s.Kind] = true
	}
	// Heterogeneity is the point: peak demands must differ across the set.
	min, max := 1.0, 0.0
	for _, s := range services {
		if s.PeakUtilization < min {
			min = s.PeakUtilization
		}
		if s.PeakUtilization > max {
			max = s.PeakUtilization
		}
	}
	if max-min < 0.2 {
		t.Errorf("prototype services too uniform: peak utils span only %v", max-min)
	}
}
