// Package units provides typed physical quantities and small numeric
// helpers shared by the battery, solar, and power-network models.
//
// All quantities are float64 wrappers. They exist so that function
// signatures document themselves (a charger takes Watts, a battery stores
// AmpereHours) and so that unit conversions happen in exactly one place.
//
// The set mirrors the per-battery power table of DSN'15 Table 2 — voltage,
// current, temperature, and state of charge — plus the watt/watt-hour pair
// the solar budget figures use (§VI-A reports daily generation in kWh) and
// the ampere-hour throughput that anchors the NAT aging metric (§III).
package units

import (
	"fmt"
	"math"
	"time"
)

// Watt is electrical power in watts.
type Watt float64

// WattHour is electrical energy in watt-hours.
type WattHour float64

// Ampere is electrical current in amperes. For battery terminals, positive
// values denote discharge (current flowing out of the battery) and negative
// values denote charge, unless a field documents otherwise.
type Ampere float64

// AmpereHour is electrical charge in ampere-hours.
type AmpereHour float64

// Volt is electrical potential in volts.
type Volt float64

// Celsius is temperature in degrees Celsius.
type Celsius float64

// Hours converts a duration to fractional hours.
func Hours(d time.Duration) float64 {
	return d.Hours()
}

// EnergyOver returns the energy transferred by power p over duration d.
func EnergyOver(p Watt, d time.Duration) WattHour {
	return WattHour(float64(p) * d.Hours())
}

// ChargeOver returns the charge transferred by current i over duration d.
func ChargeOver(i Ampere, d time.Duration) AmpereHour {
	return AmpereHour(float64(i) * d.Hours())
}

// Power returns the power corresponding to current i at voltage v.
func Power(v Volt, i Ampere) Watt {
	return Watt(float64(v) * float64(i))
}

// Current returns the current drawn by power p at voltage v.
// It returns 0 if v is 0 to avoid dividing by zero.
func Current(p Watt, v Volt) Ampere {
	if v == 0 {
		return 0
	}
	return Ampere(float64(p) / float64(v))
}

// String implementations keep traces and logs readable.

func (w Watt) String() string       { return fmt.Sprintf("%.1fW", float64(w)) }
func (e WattHour) String() string   { return fmt.Sprintf("%.1fWh", float64(e)) }
func (a Ampere) String() string     { return fmt.Sprintf("%.2fA", float64(a)) }
func (q AmpereHour) String() string { return fmt.Sprintf("%.2fAh", float64(q)) }
func (v Volt) String() string       { return fmt.Sprintf("%.2fV", float64(v)) }
func (c Celsius) String() string    { return fmt.Sprintf("%.1f°C", float64(c)) }

// Clamp limits x to the closed interval [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// Clamp01 limits x to [0, 1].
func Clamp01(x float64) float64 { return Clamp(x, 0, 1) }

// Lerp linearly interpolates between a and b by t in [0, 1].
func Lerp(a, b, t float64) float64 { return a + (b-a)*t }

// InvLerp returns the parameter t such that Lerp(a, b, t) == x.
// It returns 0 when a == b.
func InvLerp(a, b, x float64) float64 {
	if a == b {
		return 0
	}
	return (x - a) / (b - a)
}

// Interpolator performs piecewise-linear interpolation over sorted sample
// points. It is used for open-circuit-voltage curves, cycle-life curves, and
// irradiance profiles. The zero value is not usable; construct with
// NewInterpolator.
type Interpolator struct {
	xs []float64
	ys []float64
}

// NewInterpolator builds an interpolator from parallel slices of x and y
// samples. The xs must be strictly increasing and the slices must be the
// same non-zero length.
func NewInterpolator(xs, ys []float64) (*Interpolator, error) {
	if len(xs) == 0 || len(xs) != len(ys) {
		return nil, fmt.Errorf("units: interpolator needs equal, non-empty sample slices (got %d xs, %d ys)", len(xs), len(ys))
	}
	for i := 1; i < len(xs); i++ {
		if xs[i] <= xs[i-1] {
			return nil, fmt.Errorf("units: interpolator xs must be strictly increasing (xs[%d]=%g <= xs[%d]=%g)", i, xs[i], i-1, xs[i-1])
		}
	}
	in := &Interpolator{xs: append([]float64(nil), xs...), ys: append([]float64(nil), ys...)}
	return in, nil
}

// MustInterpolator is NewInterpolator but panics on error. It is intended
// for package-level curve tables whose sample points are compile-time
// constants.
func MustInterpolator(xs, ys []float64) *Interpolator {
	in, err := NewInterpolator(xs, ys)
	if err != nil {
		panic(err)
	}
	return in
}

// At evaluates the curve at x, clamping to the end values outside the
// sampled range.
func (in *Interpolator) At(x float64) float64 {
	n := len(in.xs)
	if x <= in.xs[0] {
		return in.ys[0]
	}
	if x >= in.xs[n-1] {
		return in.ys[n-1]
	}
	// Binary search for the segment containing x.
	lo, hi := 0, n-1
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if in.xs[mid] <= x {
			lo = mid
		} else {
			hi = mid
		}
	}
	t := InvLerp(in.xs[lo], in.xs[hi], x)
	return Lerp(in.ys[lo], in.ys[hi], t)
}

// Domain returns the sampled x range.
func (in *Interpolator) Domain() (lo, hi float64) { return in.xs[0], in.xs[len(in.xs)-1] }

// NearlyEqual reports whether a and b agree within absolute tolerance eps.
func NearlyEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }
