package battery_test

// The health-monotonicity property, in an external test package because it
// closes the loop through aging.Model (which imports battery): feeding the
// realized currents of random operation sequences through the damage model
// and applying its degradation back to the pack, health never increases —
// damage is irreversible (§II-B).

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
	"time"

	"github.com/green-dc/baat/internal/aging"
	"github.com/green-dc/baat/internal/battery"
	"github.com/green-dc/baat/internal/units"
)

func TestQuickHealthMonotone(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewPCG(uint64(seed), 0))
		p, err := battery.New(battery.DefaultSpec())
		if err != nil {
			t.Fatal(err)
		}
		mcfg := aging.DefaultModelConfig()
		mcfg.AccelFactor = 1000 // make damage visible within a short sequence
		model, err := aging.NewModel(mcfg, battery.DefaultSpec().NominalCapacity)
		if err != nil {
			t.Fatal(err)
		}
		health := p.Health()
		for i := 0; i < 150; i++ {
			dt := time.Duration(1+rng.IntN(120)) * time.Second * 30
			amb := units.Celsius(-10 + rng.Float64()*55)
			pw := units.Watt(rng.Float64() * 2000)
			var res battery.StepResult
			switch rng.IntN(3) {
			case 0:
				res, err = p.Discharge(pw, dt, amb)
			case 1:
				res, err = p.Charge(pw, dt, amb)
			default:
				p.Rest(dt, amb)
			}
			if err != nil {
				t.Logf("seed %d step %d: %v", seed, i, err)
				return false
			}
			sample := aging.Sample{Dt: dt, Current: res.Current, SoC: p.SoC(), Temperature: p.Temperature()}
			if err := model.Observe(sample); err != nil {
				t.Logf("seed %d step %d: %v", seed, i, err)
				return false
			}
			p.ApplyDegradation(model.Degradation())
			h := p.Health()
			if h > health+1e-12 {
				t.Logf("seed %d step %d: health rose %v -> %v", seed, i, health, h)
				return false
			}
			if h < 0 || h > 1 || math.IsNaN(h) {
				t.Logf("seed %d step %d: health %v out of [0,1]", seed, i, h)
				return false
			}
			health = h
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
