package sim

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"slices"
	"time"

	"github.com/green-dc/baat/internal/core"
	"github.com/green-dc/baat/internal/faults"
	"github.com/green-dc/baat/internal/node"
	"github.com/green-dc/baat/internal/signal"
	"github.com/green-dc/baat/internal/solar"
	"github.com/green-dc/baat/internal/stats"
	"github.com/green-dc/baat/internal/vm"
	"github.com/green-dc/baat/internal/workload"
)

// CheckpointFormat versions the checkpoint envelope. It bumps whenever the
// serialized State shape changes incompatibly; ResumeFrom rejects any other
// version explicitly rather than guessing. Format 2 added the solar
// forecaster state and the policy's own controller state (StatefulPolicy).
const CheckpointFormat = 2

// State is the serializable state of a Simulator: the full state of every
// node, the pending job queue, every named RNG stream position, the fault
// injector's bookkeeping, and the engine's own clock and accounting. The
// Config is construction-time input; a snapshot restores only onto a
// simulator built from an equivalent Config (enforced by the checkpoint
// envelope's config hash).
type State struct {
	Clock     time.Duration `json:"clock"`
	Day       int           `json:"day"`
	VMCounter int           `json:"vm_counter"`
	PlacedSvc bool          `json:"placed_svc"`
	EOLAt     time.Duration `json:"eol_at"`

	Nodes   []node.State `json:"nodes"`
	Pending []vm.State   `json:"pending"`

	MfgRNG    []byte                  `json:"mfg_rng"`
	WxRNG     []byte                  `json:"wx_rng"`
	PolicyRNG []byte                  `json:"policy_rng"`
	Generator workload.GeneratorState `json:"generator"`

	// Forecast is the solar forecaster feeding the policy signal plane: its
	// climatology, persistence anchor, noise batch, and rng substream all
	// round-trip so a resumed run forecasts exactly what the original would
	// have.
	Forecast signal.ForecasterState `json:"forecast"`
	// PolicyState is the controller's own serialized state when the active
	// policy implements core.StatefulPolicy (e.g. BAAT's DoD-goal
	// hysteresis, BAAT-f's forecast latch); absent for stateless policies.
	// Restore rejects a mismatch in either direction rather than resuming
	// with silently reset controller state.
	PolicyState []byte `json:"policy_state,omitempty"`

	Faults   *faults.InjectorState `json:"faults,omitempty"`
	Degraded []bool                `json:"degraded,omitempty"`

	SoCHist stats.HistogramState `json:"soc_hist"`
	Series  []MetricsPoint       `json:"series,omitempty"`

	// History carries the per-day stats of every completed day, so a
	// resumed run can report the whole horizon. Its length must equal Day:
	// exactly one entry per completed day.
	History []DayStats `json:"history,omitempty"`
}

// envelope wraps a State with the format version and the hash of the
// configuration that produced it, so a checkpoint can never silently
// restore into a simulator built from a different world.
type envelope struct {
	Format     int    `json:"format"`
	ConfigHash string `json:"config_hash"`
	State      State  `json:"state"`
}

// ConfigHash returns the hex SHA-256 of the simulator's configuration in
// canonical JSON form, excluding the fields that must not pin a resume:
// Workers, ShardSize, and ParallelThreshold (performance knobs that never
// change results, so resume must not depend on them), telemetry handles
// (observation, not state), and BatteryOptions (opaque functions whose
// observable effect — per-pack capacity/resistance scales — serializes
// inside each node's battery state instead).
func (s *Simulator) ConfigHash() (string, error) {
	c := s.cfg
	c.Workers = 0
	// ShardSize and ParallelThreshold are performance knobs with the same
	// contract as Workers: they never change results, so a checkpoint must
	// restore into any of them (their zero values also marshal away via
	// omitempty, keeping hashes from before the knobs existed valid).
	c.ShardSize = 0
	c.ParallelThreshold = 0
	c.Telemetry = nil
	c.Node.Telemetry = nil
	c.Node.BatteryOptions = nil
	b, err := json.Marshal(c)
	if err != nil {
		return "", fmt.Errorf("sim: hash config: %w", err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// Snapshot captures the simulator's full state. It must not be called
// concurrently with Run/RunDay (the engine is single-threaded between
// ticks, so day boundaries are natural checkpoint sites). It can fail only
// when the active policy's own Snapshot does (core.StatefulPolicy).
func (s *Simulator) Snapshot() (State, error) {
	st := State{
		Clock:     s.clock,
		Day:       s.day,
		VMCounter: s.vmCounter,
		PlacedSvc: s.placedSvc,
		EOLAt:     s.eolAt,
		Generator: s.gen.Snapshot(),
		SoCHist:   s.socHist.Snapshot(),
	}
	st.MfgRNG, _ = s.mfgRng.MarshalBinary() // never fails for PCG sources
	st.WxRNG, _ = s.wxRng.MarshalBinary()
	st.PolicyRNG, _ = s.policyRng.MarshalBinary()
	fst, err := s.forecast.Snapshot()
	if err != nil {
		return State{}, fmt.Errorf("sim: snapshot: forecaster: %w", err)
	}
	st.Forecast = fst
	if sp, ok := s.policy.(core.StatefulPolicy); ok {
		blob, err := sp.Snapshot()
		if err != nil {
			return State{}, fmt.Errorf("sim: snapshot: policy %s: %w", s.policy.Name(), err)
		}
		st.PolicyState = blob
	}
	for _, n := range s.nodes {
		st.Nodes = append(st.Nodes, n.Snapshot())
	}
	for _, v := range s.pending {
		st.Pending = append(st.Pending, v.Snapshot())
	}
	if s.inj != nil {
		ist := s.inj.Snapshot()
		st.Faults = &ist
		st.Degraded = append([]bool(nil), s.degraded...)
	}
	if len(s.series) > 0 {
		st.Series = append([]MetricsPoint(nil), s.series...)
	}
	if len(s.history) > 0 {
		st.History = append([]DayStats(nil), s.history...)
	}
	return st, nil
}

// Restore overwrites the simulator's state from a snapshot taken from a
// simulator built with an equivalent Config. Validation is front-loaded,
// but a failure partway through sub-restores can leave the simulator
// inconsistent — callers (ResumeFrom) restore into a freshly built
// simulator and discard it on error.
func (s *Simulator) Restore(st State) error {
	if st.Clock < 0 || st.EOLAt < 0 {
		return fmt.Errorf("sim: restore: negative clock (%v) or EOL time (%v)", st.Clock, st.EOLAt)
	}
	if st.Day < 0 || st.VMCounter < 0 {
		return fmt.Errorf("sim: restore: negative day (%d) or VM counter (%d)", st.Day, st.VMCounter)
	}
	if len(st.Nodes) != len(s.nodes) {
		return fmt.Errorf("sim: restore: snapshot has %d nodes, fleet has %d", len(st.Nodes), len(s.nodes))
	}
	if (st.Faults != nil) != (s.inj != nil) {
		return fmt.Errorf("sim: restore: snapshot and configuration disagree on fault injection")
	}
	if s.inj != nil && len(st.Degraded) != len(s.nodes) {
		return fmt.Errorf("sim: restore: snapshot tracks %d degraded flags, fleet has %d nodes",
			len(st.Degraded), len(s.nodes))
	}
	if len(st.MfgRNG) == 0 || len(st.WxRNG) == 0 || len(st.PolicyRNG) == 0 {
		return fmt.Errorf("sim: restore: missing RNG stream state")
	}
	if len(st.History) != st.Day {
		return fmt.Errorf("sim: restore: %d history entries for %d completed days", len(st.History), st.Day)
	}
	// Controller state and policy statefulness must agree in both
	// directions: resuming a stateful policy without its state would
	// silently reset mid-run hysteresis, and a state blob for a stateless
	// policy means the snapshot came from a different controller.
	sp, stateful := s.policy.(core.StatefulPolicy)
	if stateful && len(st.PolicyState) == 0 {
		return fmt.Errorf("sim: restore: policy %s is stateful but the snapshot carries no policy state",
			s.policy.Name())
	}
	if !stateful && len(st.PolicyState) > 0 {
		return fmt.Errorf("sim: restore: snapshot carries policy state but policy %s is stateless",
			s.policy.Name())
	}

	// Rebuild the pending queue first: vm.FromState validates each entry
	// without touching live state.
	pending := make([]*vm.VM, 0, len(st.Pending))
	for _, vst := range st.Pending {
		v, err := vm.FromState(vst)
		if err != nil {
			return fmt.Errorf("sim: restore: pending queue: %w", err)
		}
		pending = append(pending, v)
	}

	for i, n := range s.nodes {
		if err := n.Restore(st.Nodes[i]); err != nil {
			return fmt.Errorf("sim: restore: %w", err)
		}
	}
	if err := s.mfgRng.UnmarshalBinary(st.MfgRNG); err != nil {
		return fmt.Errorf("sim: restore: manufacturing stream: %w", err)
	}
	if err := s.wxRng.UnmarshalBinary(st.WxRNG); err != nil {
		return fmt.Errorf("sim: restore: weather stream: %w", err)
	}
	if err := s.policyRng.UnmarshalBinary(st.PolicyRNG); err != nil {
		return fmt.Errorf("sim: restore: policy stream: %w", err)
	}
	if err := s.gen.Restore(st.Generator); err != nil {
		return fmt.Errorf("sim: restore: %w", err)
	}
	if err := s.forecast.Restore(st.Forecast); err != nil {
		return fmt.Errorf("sim: restore: forecaster: %w", err)
	}
	if stateful {
		if err := sp.Restore(st.PolicyState); err != nil {
			return fmt.Errorf("sim: restore: policy %s: %w", s.policy.Name(), err)
		}
	}
	if err := s.socHist.Restore(st.SoCHist); err != nil {
		return fmt.Errorf("sim: restore: %w", err)
	}
	if s.inj != nil {
		if err := s.inj.Restore(*st.Faults); err != nil {
			return fmt.Errorf("sim: restore: %w", err)
		}
		copy(s.degraded, st.Degraded)
	}

	s.clock = st.Clock
	s.day = st.Day
	s.vmCounter = st.VMCounter
	s.placedSvc = st.PlacedSvc
	s.eolAt = st.EOLAt
	s.pending = pending
	s.series = append(s.series[:0], st.Series...)
	s.history = append(s.history[:0], st.History...)
	return nil
}

// Checkpoint writes the simulator's state to w as a versioned JSON
// envelope carrying the configuration hash. Call it between days (or
// before Run); the engine must not be mid-tick.
func (s *Simulator) Checkpoint(w io.Writer) error {
	hash, err := s.ConfigHash()
	if err != nil {
		return err
	}
	st, err := s.Snapshot()
	if err != nil {
		return err
	}
	env := envelope{Format: CheckpointFormat, ConfigHash: hash, State: st}
	if err := json.NewEncoder(w).Encode(env); err != nil {
		return fmt.Errorf("sim: checkpoint: %w", err)
	}
	return nil
}

// ResumeFrom restores the simulator from a checkpoint previously written
// by Checkpoint. The receiver must be freshly built from a Config
// equivalent to the one that wrote the checkpoint (same hash; Workers and
// telemetry may differ). A format or configuration mismatch, or any
// corruption the layer validations catch, fails loudly — and on error the
// simulator must be discarded, not run.
func (s *Simulator) ResumeFrom(r io.Reader) error {
	var env envelope
	dec := json.NewDecoder(r)
	if err := dec.Decode(&env); err != nil {
		return fmt.Errorf("sim: resume: decode checkpoint: %w", err)
	}
	if env.Format != CheckpointFormat {
		return fmt.Errorf("sim: resume: checkpoint format %d, this build reads format %d",
			env.Format, CheckpointFormat)
	}
	hash, err := s.ConfigHash()
	if err != nil {
		return err
	}
	if env.ConfigHash != hash {
		return fmt.Errorf("sim: resume: checkpoint was written by a different configuration (hash %.12s, want %.12s)",
			env.ConfigHash, hash)
	}
	if err := s.Restore(env.State); err != nil {
		return err
	}
	return nil
}

// RunWithCheckpoints is Run with a checkpoint emitted after every `every`
// completed days (and after the final day if it lands on the cadence).
// every <= 0 or a nil emit disables checkpointing, degenerating to Run.
// The emit callback receives the 1-based count of days completed so far
// in the simulator's lifetime (not just this call) and the serialized
// envelope; returning an error aborts the run.
func (s *Simulator) RunWithCheckpoints(weathers []solar.Weather, every int, emit func(day int, checkpoint []byte) error) (*Result, error) {
	res := &Result{
		Policy: s.policy.Name(),
		Days:   make([]DayStats, 0, len(weathers)),
	}
	if s.cfg.RecordSeries {
		s.series = slices.Grow(s.series, len(weathers)*s.controlsPerDay()*len(s.nodes))
	}
	var buf bytes.Buffer
	for _, w := range weathers {
		ds, err := s.RunDay(w)
		if err != nil {
			return nil, err
		}
		res.Days = append(res.Days, ds)
		res.Throughput += ds.Throughput
		if every > 0 && emit != nil && s.day%every == 0 {
			buf.Reset()
			if err := s.Checkpoint(&buf); err != nil {
				return nil, err
			}
			if err := emit(s.day, buf.Bytes()); err != nil {
				return nil, fmt.Errorf("sim: checkpoint after day %d: %w", s.day, err)
			}
		}
	}
	s.finish(res)
	return res, nil
}
