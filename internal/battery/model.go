package battery

import (
	"fmt"
	"time"

	"github.com/green-dc/baat/internal/units"
)

// Kind names a battery model tier: a chemistry plus the fidelity of the
// electrical model simulating it. The zero value ("") normalizes to
// KindLeadAcid, the reference tier, so configurations written before
// model selection existed keep their meaning (and their config hashes).
type Kind string

// The selectable model tiers.
const (
	// KindLeadAcid is the reference tier: the electrochemical VRLA model
	// (Peukert capacity, OCV curve, IR drop, lumped thermal) the golden
	// traces pin.
	KindLeadAcid Kind = "leadacid"
	// KindLinear is the fast coulomb-counting tier for warehouse-scale
	// sweeps: constant terminal voltage, no Peukert or thermal model.
	KindLinear Kind = "linear"
	// KindLFP is the Li-ion (LiFePO4) chemistry: the electrochemical
	// model with the flat LFP voltage plateau and its own cycle-life and
	// calendar-aging behaviour in the aging package.
	KindLFP Kind = "lfp"
)

// Kinds lists every selectable tier, reference first.
func Kinds() []Kind { return []Kind{KindLeadAcid, KindLinear, KindLFP} }

// Normalize maps the zero value to the reference tier.
func (k Kind) Normalize() Kind {
	if k == "" {
		return KindLeadAcid
	}
	return k
}

// Valid reports whether k names a known tier (the zero value counts: it
// is the reference tier by Normalize).
func (k Kind) Valid() bool {
	switch k.Normalize() {
	case KindLeadAcid, KindLinear, KindLFP:
		return true
	}
	return false
}

// String returns the normalized tier name.
func (k Kind) String() string { return string(k.Normalize()) }

// ParseKind resolves a -battery-model flag value, accepting the common
// spellings of each tier.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "", "leadacid", "lead-acid", "vrla":
		return KindLeadAcid, nil
	case "linear", "coulomb":
		return KindLinear, nil
	case "lfp", "lifepo4", "liion", "li-ion":
		return KindLFP, nil
	}
	return "", fmt.Errorf("battery: unknown model %q (want leadacid, linear, or lfp)", s)
}

// Model is the narrow contract every battery tier satisfies. It covers
// exactly what the node, the controller, and the checkpoint layer need:
// stepping (Discharge/Charge/Rest with validated inputs), the electrical
// observables the sensor chain reads, the aging feedback loop
// (Degradation in, ApplyDegradation back), and validated Snapshot/Restore.
// Implementations are not safe for concurrent use; each node owns its
// model, as with Pack.
type Model interface {
	// Kind identifies the tier.
	Kind() Kind
	// Spec returns the nameplate specification.
	Spec() Spec

	// SoC returns the state of charge in [0, 1].
	SoC() float64
	// Temperature returns the case temperature.
	Temperature() units.Celsius
	// Health returns remaining capacity as a fraction of initial.
	Health() float64
	// Degradation returns the wear applied so far.
	Degradation() Degradation
	// ApplyDegradation replaces the wear state (the aging model's
	// feedback path). Values are clamped to physical ranges.
	ApplyDegradation(Degradation)
	// EffectiveCapacity is the reference-rate capacity currently
	// deliverable (manufacturing variation × health).
	EffectiveCapacity() units.AmpereHour

	// OpenCircuitVoltage is the rest voltage the sensor module reads.
	OpenCircuitVoltage() units.Volt
	// TerminalVoltage is the loaded voltage at discharge current i.
	TerminalVoltage(i units.Ampere) units.Volt
	// MaxDischargePower is the largest sustainable draw (P_threshold).
	MaxDischargePower() units.Watt
	// MaxChargePower is the battery-side power the charger could push in
	// this instant (taper included); zero when full.
	MaxChargePower() units.Watt
	// CutOff reports whether the protection threshold has tripped.
	CutOff() bool

	// Discharge draws power pw for dt at ambient amb; Charge pushes power
	// in; Rest advances time with no terminal current. All three validate
	// their inputs (non-finite power or ambient, non-positive duration)
	// and leave state untouched on rejection.
	Discharge(pw units.Watt, dt time.Duration, amb units.Celsius) (StepResult, error)
	Charge(pw units.Watt, dt time.Duration, amb units.Celsius) (StepResult, error)
	Rest(dt time.Duration, amb units.Celsius) error

	// Counters returns the cumulative usage counters.
	Counters() Counters
	// Snapshot captures serializable state; Restore validates a snapshot
	// wholesale and applies it only if every field passes.
	Snapshot() State
	Restore(State) error
}

// NewModel constructs the tier selected by spec.Chemistry. The reference
// and LFP tiers share the electrochemical Pack (with per-chemistry OCV
// curves); the linear tier is the coulomb-counting Linear.
func NewModel(spec Spec, opts ...Option) (Model, error) {
	switch spec.Chemistry.Normalize() {
	case KindLinear:
		return NewLinear(spec, opts...)
	case KindLeadAcid, KindLFP:
		return New(spec, opts...)
	default:
		return nil, fmt.Errorf("battery: unknown chemistry %q", spec.Chemistry)
	}
}

// DefaultSpecFor returns the stock pack specification for a tier, sized
// like the prototype's per-server bank: the lead-acid tiers pair two
// 12 V 35 Ah VRLA units, the LFP tier is one 12.8 V 70 Ah retrofit unit
// of comparable energy.
func DefaultSpecFor(k Kind) (Spec, error) {
	switch k.Normalize() {
	case KindLeadAcid:
		return Parallel(DefaultSpec(), 2), nil
	case KindLinear:
		return LinearSpec(Parallel(DefaultSpec(), 2)), nil
	case KindLFP:
		return DefaultLFPSpec(), nil
	}
	return Spec{}, fmt.Errorf("battery: unknown model %q", k)
}

// DefaultLFPSpec returns a 12.8 V 70 Ah LiFePO4 retrofit unit — the
// drop-in replacement for the prototype's two paralleled VRLA packs.
// The parameters follow published LFP datasheets: a Peukert exponent
// near 1 (rate-insensitive capacity), low internal resistance, ~99 %
// coulombic efficiency, and a lifetime throughput of roughly 3500
// equivalent full cycles (an order of magnitude beyond VRLA).
func DefaultLFPSpec() Spec {
	return Spec{
		Chemistry:             KindLFP,
		NominalVoltage:        12.8,
		NominalCapacity:       70,
		PeukertExponent:       1.02,
		InternalResistance:    0.008,
		CoulombicEfficiency:   0.99,
		SelfDischargeFraction: 0.001,
		CutoffVoltage:         10.0, // 2.5 V/cell × 4s
		MaxChargeCurrent:      35,   // C/2
		LifetimeThroughput:    245000,
		ThermalCapacity:       8000, // ~8 kg × 1000 J/(kg·°C)
		ThermalResistance:     2.0,
	}
}

// LinearSpec re-tags a spec for the linear coulomb-counting tier,
// neutralizing the rate effects that tier does not model.
func LinearSpec(s Spec) Spec {
	s.Chemistry = KindLinear
	s.PeukertExponent = 1
	return s
}

// lfpOCVCurve maps state of charge to open-circuit voltage for a nominal
// 12.8 V (4-series-cell) LiFePO4 pack at 25 °C: the steep knee below
// ~10 % charge, the flat 3.25–3.33 V/cell plateau that makes LFP SoC
// estimation notoriously hard, and the charge shoulder at the top.
// Voltages scale with NominalVoltage/12.8 for other pack voltages.
var lfpOCVCurve = units.MustInterpolator(
	[]float64{0.00, 0.05, 0.10, 0.20, 0.30, 0.40, 0.50, 0.60, 0.70, 0.80, 0.90, 0.95, 1.00},
	[]float64{10.00, 12.00, 12.80, 12.90, 13.00, 13.05, 13.10, 13.15, 13.20, 13.25, 13.30, 13.40, 13.80},
)

// chemCurve selects the OCV curve and its reference pack voltage for an
// electrochemical chemistry.
func chemCurve(k Kind) (*units.Interpolator, float64) {
	if k == KindLFP {
		return lfpOCVCurve, 12.8
	}
	return ocvCurve, 12
}
