package units

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestEnergyOver(t *testing.T) {
	tests := []struct {
		name string
		p    Watt
		d    time.Duration
		want WattHour
	}{
		{"one watt one hour", 1, time.Hour, 1},
		{"hundred watts half hour", 100, 30 * time.Minute, 50},
		{"zero power", 0, time.Hour, 0},
		{"one minute", 60, time.Minute, 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := EnergyOver(tt.p, tt.d); !NearlyEqual(float64(got), float64(tt.want), 1e-12) {
				t.Errorf("EnergyOver(%v, %v) = %v, want %v", tt.p, tt.d, got, tt.want)
			}
		})
	}
}

func TestChargeOver(t *testing.T) {
	got := ChargeOver(2, 90*time.Minute)
	if !NearlyEqual(float64(got), 3, 1e-12) {
		t.Errorf("ChargeOver(2A, 90m) = %v, want 3Ah", got)
	}
}

func TestPowerCurrentRoundTrip(t *testing.T) {
	p := Power(12, 3)
	if p != 36 {
		t.Fatalf("Power(12V, 3A) = %v, want 36W", p)
	}
	i := Current(p, 12)
	if !NearlyEqual(float64(i), 3, 1e-12) {
		t.Errorf("Current(36W, 12V) = %v, want 3A", i)
	}
}

func TestCurrentZeroVoltage(t *testing.T) {
	if got := Current(100, 0); got != 0 {
		t.Errorf("Current at 0V = %v, want 0", got)
	}
}

func TestClamp(t *testing.T) {
	tests := []struct {
		x, lo, hi, want float64
	}{
		{5, 0, 10, 5},
		{-1, 0, 10, 0},
		{11, 0, 10, 10},
		{0, 0, 0, 0},
	}
	for _, tt := range tests {
		if got := Clamp(tt.x, tt.lo, tt.hi); got != tt.want {
			t.Errorf("Clamp(%v, %v, %v) = %v, want %v", tt.x, tt.lo, tt.hi, got, tt.want)
		}
	}
}

func TestClampProperty(t *testing.T) {
	f := func(x float64) bool {
		c := Clamp01(x)
		return c >= 0 && c <= 1 && (x < 0 || x > 1 || c == x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLerpInvLerpInverse(t *testing.T) {
	f := func(t0 float64) bool {
		tt := Clamp01(math.Abs(math.Mod(t0, 1)))
		x := Lerp(3, 7, tt)
		return NearlyEqual(InvLerp(3, 7, x), tt, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInvLerpDegenerate(t *testing.T) {
	if got := InvLerp(2, 2, 5); got != 0 {
		t.Errorf("InvLerp on degenerate interval = %v, want 0", got)
	}
}

func TestNewInterpolatorErrors(t *testing.T) {
	tests := []struct {
		name string
		xs   []float64
		ys   []float64
	}{
		{"empty", nil, nil},
		{"mismatched", []float64{1, 2}, []float64{1}},
		{"non increasing", []float64{1, 1}, []float64{0, 1}},
		{"decreasing", []float64{2, 1}, []float64{0, 1}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := NewInterpolator(tt.xs, tt.ys); err == nil {
				t.Error("NewInterpolator succeeded, want error")
			}
		})
	}
}

func TestInterpolatorAt(t *testing.T) {
	in := MustInterpolator([]float64{0, 1, 3}, []float64{10, 20, 0})
	tests := []struct {
		x, want float64
	}{
		{-5, 10},  // clamped low
		{0, 10},   // exact endpoint
		{0.5, 15}, // mid first segment
		{1, 20},   // interior knot
		{2, 10},   // mid second segment
		{3, 0},    // exact endpoint
		{99, 0},   // clamped high
	}
	for _, tt := range tests {
		if got := in.At(tt.x); !NearlyEqual(got, tt.want, 1e-12) {
			t.Errorf("At(%v) = %v, want %v", tt.x, got, tt.want)
		}
	}
}

func TestInterpolatorMonotoneDomainProperty(t *testing.T) {
	in := MustInterpolator([]float64{0, 10, 20, 40}, []float64{1, 0.8, 0.5, 0.1})
	lo, hi := in.Domain()
	if lo != 0 || hi != 40 {
		t.Fatalf("Domain() = (%v, %v), want (0, 40)", lo, hi)
	}
	// Monotone sample points must yield a monotone interpolant.
	f := func(a, b float64) bool {
		xa := Clamp(math.Abs(a), 0, 40)
		xb := Clamp(math.Abs(b), 0, 40)
		if xa > xb {
			xa, xb = xb, xa
		}
		return in.At(xa) >= in.At(xb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMustInterpolatorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustInterpolator did not panic on bad input")
		}
	}()
	MustInterpolator([]float64{1}, nil)
}

func TestStringFormats(t *testing.T) {
	tests := []struct {
		got, want string
	}{
		{Watt(12.34).String(), "12.3W"},
		{WattHour(5).String(), "5.0Wh"},
		{Ampere(1.234).String(), "1.23A"},
		{AmpereHour(35).String(), "35.00Ah"},
		{Volt(12.5).String(), "12.50V"},
		{Celsius(25).String(), "25.0°C"},
	}
	for _, tt := range tests {
		if tt.got != tt.want {
			t.Errorf("String() = %q, want %q", tt.got, tt.want)
		}
	}
}
