// Lifetime sweep: how much battery life does aging-aware management buy at
// different deployment sites? This is the scenario behind Fig 14 of the
// paper — battery lifetime versus solar availability for the four policies
// of Table 4.
//
// The fleet runs with accelerated aging until its first battery falls below
// 80 % health (the end-of-life line for mission-critical backup), at every
// sunshine fraction from a cloudy site (0.4) to a desert site (0.8).
//
// Run with:
//
//	go run ./examples/lifetime-sweep
package main

import (
	"fmt"
	"log"
	"time"

	baat "github.com/green-dc/baat"
)

// accel compresses months of battery aging into seconds of simulation; the
// reported lifetimes are scaled back to real time.
const accel = 10

func main() {
	fractions := []float64{0.4, 0.5, 0.6, 0.7, 0.8}

	policies := baat.RegisteredPolicies()
	fmt.Printf("%-9s", "sunshine")
	for _, p := range policies {
		fmt.Printf("  %10s", p.Display)
	}
	fmt.Printf("  %10s\n", "BAAT gain")

	for _, frac := range fractions {
		lifetimes := map[string]time.Duration{}
		for _, p := range policies {
			life, err := fleetLifetime(p.Name, frac)
			if err != nil {
				log.Fatal(err)
			}
			lifetimes[p.Name] = life
		}
		fmt.Printf("%-9.0f%%", frac*100)
		for _, p := range policies {
			fmt.Printf("  %8.1fmo", lifetimes[p.Name].Hours()/(30*24))
		}
		gain := lifetimes["baat"].Hours()/lifetimes["ebuff"].Hours() - 1
		fmt.Printf("  %9.0f%%\n", gain*100)
	}
	fmt.Println("\n(lifetime = time until the first battery falls below 80% health;")
	fmt.Println(" the paper reports BAAT extending battery life by 69% on average)")
}

// fleetLifetime runs one policy at one site until the first battery hits
// end-of-life and returns the real-equivalent lifetime.
func fleetLifetime(policy string, sunshine float64) (time.Duration, error) {
	cfg := baat.DefaultSimConfig()
	cfg.Policy = baat.PolicySpec{Name: policy}
	cfg.Services = baat.PrototypeServices()
	cfg.JobsPerDay = 2
	cfg.Solar.Scale = 1.5 // PV sized so sunny days fully recharge the bank
	cfg.Node.AgingConfig.AccelFactor = accel
	sim, err := baat.NewSimulator(cfg)
	if err != nil {
		return 0, err
	}
	res, err := sim.RunUntilEndOfLife(baat.Location{SunshineFraction: sunshine}, 150)
	if err != nil {
		return 0, err
	}
	life := res.FleetLifetime
	if life == 0 {
		life = time.Duration(len(res.Days)) * 24 * time.Hour // horizon lower bound
	}
	return time.Duration(float64(life) * accel), nil
}
