package experiments

import (
	"strings"
	"testing"
)

// quickCfg runs experiments in reduced form; the full-fidelity checks live
// in the benchmark harness and EXPERIMENTS.md.
func quickCfg() Config {
	return Config{Seed: 42, Accel: 10, Quick: true}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	if err := (Config{Accel: 0}).Validate(); err == nil {
		t.Error("zero accel accepted")
	}
}

func TestTableRender(t *testing.T) {
	tab := &Table{
		ID:      "x",
		Title:   "demo",
		Columns: []string{"a", "long-column"},
		Rows:    [][]string{{"1", "2"}, {"333333", "4"}},
		Notes:   []string{"a note"},
	}
	out := tab.Render()
	for _, want := range []string{"== x: demo ==", "long-column", "333333", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render missing %q:\n%s", want, out)
		}
	}
}

func TestRegistry(t *testing.T) {
	ids := IDs()
	if len(ids) != 23 {
		t.Fatalf("registry has %d entries, want 23", len(ids))
	}
	for _, id := range ids {
		if _, err := Lookup(id); err != nil {
			t.Errorf("Lookup(%q): %v", id, err)
		}
	}
	if _, err := Lookup("nope"); err == nil {
		t.Error("unknown id accepted")
	}
}

func TestVoltageDropShape(t *testing.T) {
	tab, err := VoltageDrop(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Fig 3: voltage falls over the months and the drop accelerates.
	if tab.Values["voltage_drop"] <= 0 {
		t.Errorf("no voltage drop: %v", tab.Values)
	}
	if tab.Values["late_vs_early_slope"] <= 1 {
		t.Errorf("voltage drop not accelerating: slope ratio %v", tab.Values["late_vs_early_slope"])
	}
}

func TestCapacityDropShape(t *testing.T) {
	tab, err := CapacityDrop(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if d := tab.Values["capacity_drop"]; d <= 0 || d > 0.4 {
		t.Errorf("capacity drop = %v, want (0, 0.4]", d)
	}
}

func TestEfficiencyDegradationShape(t *testing.T) {
	tab, err := EfficiencyDegradation(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if d := tab.Values["efficiency_drop"]; d <= 0 {
		t.Errorf("efficiency drop = %v, want positive", d)
	}
	if e := tab.Values["final_efficiency"]; e < 0.5 || e > 0.95 {
		t.Errorf("final efficiency = %v, implausible for lead-acid", e)
	}
}

func TestCycleLifeShape(t *testing.T) {
	tab, err := CycleLifeCurves(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Fig 10: shallow-to-deep cycle-life ratio near 2.
	if r := tab.Values["halving_ratio"]; r < 1.5 || r > 3 {
		t.Errorf("halving ratio = %v, want ≈2", r)
	}
}

func TestWeatherProfileShape(t *testing.T) {
	tab, err := WeatherProfile(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Fig 12: rainy days drive more battery throughput than sunny days.
	if tab.Values["rainy_nat"] <= tab.Values["sunny_nat"] {
		t.Errorf("rainy NAT %v not above sunny %v", tab.Values["rainy_nat"], tab.Values["sunny_nat"])
	}
	// And leave batteries cycling at lower SoC.
	if tab.Values["rainy_pc"] >= tab.Values["sunny_pc"] {
		t.Errorf("rainy PC %v not below sunny %v", tab.Values["rainy_pc"], tab.Values["sunny_pc"])
	}
}

func TestAgingComparisonShape(t *testing.T) {
	tab, err := AgingComparison(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Fig 13 (quick mode: young/cloudy): BAAT's worst battery sees no more
	// throughput than e-Buff's.
	if r := tab.Values["ebuff_vs_baat_nat_young_cloudy"]; r < 1 {
		t.Errorf("e-Buff/BAAT NAT ratio = %v, want >= 1", r)
	}
}

func TestLifetimeVsSunshineShape(t *testing.T) {
	tab, err := LifetimeVsSunshine(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Fig 14: every BAAT variant must beat e-Buff on average.
	if g := tab.Values["baat_gain_avg"]; g <= 0 {
		t.Errorf("BAAT lifetime gain = %v, want positive", g)
	}
	if g := tab.Values["baat_s_gain_avg"]; g <= 0 {
		t.Errorf("BAAT-s lifetime gain = %v, want positive", g)
	}
	// And the full scheme beats its ablations.
	if tab.Values["baat_gain_avg"] < tab.Values["baat_s_gain_avg"] {
		t.Errorf("BAAT gain %v below BAAT-s %v", tab.Values["baat_gain_avg"], tab.Values["baat_s_gain_avg"])
	}
}

func TestLifetimeVsRatioShape(t *testing.T) {
	tab, err := LifetimeVsRatio(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Fig 15: heavier loading per Ah shortens e-Buff lifetime, and BAAT's
	// advantage grows with the ratio.
	if d := tab.Values["lifetime_drop_2_to_10"]; d <= 0 {
		t.Errorf("lifetime drop = %v, want positive", d)
	}
	if g := tab.Values["gain_growth"]; g <= 0 {
		t.Errorf("gain growth = %v, want positive", g)
	}
}

func TestDepreciationCostShape(t *testing.T) {
	tab, err := DepreciationCost(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Fig 16: BAAT cuts annual depreciation.
	if r := tab.Values["cost_reduction"]; r <= 0 {
		t.Errorf("cost reduction = %v, want positive", r)
	}
}

func TestServerExpansionShape(t *testing.T) {
	tab, err := ServerExpansion(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Fig 17: longer battery life affords extra servers.
	if e := tab.Values["max_expansion"]; e <= 0 {
		t.Errorf("max expansion = %v, want positive", e)
	}
}

func TestLowSoCDurationShape(t *testing.T) {
	tab, err := LowSoCDuration(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Fig 18: BAAT reduces worst-node low-SoC exposure.
	if g := tab.Values["availability_gain"]; g <= 0 {
		t.Errorf("availability gain = %v, want positive", g)
	}
}

func TestSoCDistributionShape(t *testing.T) {
	tab, err := SoCDistribution(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Fig 19: BAAT shifts mass toward the top bin and off the bottom bin.
	if tab.Values["baat_top_bin"] <= tab.Values["ebuff_top_bin"] {
		t.Errorf("BAAT top-bin mass %v not above e-Buff %v",
			tab.Values["baat_top_bin"], tab.Values["ebuff_top_bin"])
	}
	if tab.Values["baat_lowest_bin"] > tab.Values["ebuff_lowest_bin"] {
		t.Errorf("BAAT bottom-bin mass %v above e-Buff %v",
			tab.Values["baat_lowest_bin"], tab.Values["ebuff_lowest_bin"])
	}
}

func TestThroughputShape(t *testing.T) {
	tab, err := Throughput(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Fig 20 (quick: old/cloudy only): BAAT beats e-Buff in the worst case.
	if g := tab.Values["baat_gain_worst_case"]; g <= 0 {
		t.Errorf("worst-case throughput gain = %v, want positive", g)
	}
}

func TestPerfVsDoDShape(t *testing.T) {
	tab, err := PerfVsDoD(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Fig 21: deeper allowed discharge buys throughput.
	if g := tab.Values["gain_dod_90"]; g <= 0 {
		t.Errorf("gain at 90%% DoD = %v, want positive vs 40%%", g)
	}
}

func TestPlannedAgingBenefitShape(t *testing.T) {
	tab, err := PlannedAgingBenefit(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Fig 22: planned aging beats e-Buff, and the short horizon (capped at
	// 90% DoD) is at least as aggressive as the long conservative one.
	if g := tab.Values["max_gain"]; g <= 0 {
		t.Errorf("max planned-aging gain = %v, want positive", g)
	}
	if tab.Values["gain_months_6"] < tab.Values["gain_months_48"] {
		t.Errorf("short-horizon gain %v below long-horizon %v",
			tab.Values["gain_months_6"], tab.Values["gain_months_48"])
	}
}

func TestUsageScenariosShape(t *testing.T) {
	tab, err := UsageScenarios(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Table 1: smoothing ages fastest with the largest variation; backup is
	// lightest.
	if !(tab.Values["smoothing_fade"] > tab.Values["demand_response_fade"] &&
		tab.Values["demand_response_fade"] > tab.Values["backup_fade"]) {
		t.Errorf("aging-speed ordering wrong: %v", tab.Values)
	}
	if tab.Values["smoothing_spread"] <= tab.Values["backup_spread"] {
		t.Errorf("variation ordering wrong: %v", tab.Values)
	}
}

func TestDemandSensitivityShape(t *testing.T) {
	tab, err := DemandSensitivity(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Table 3: Large/More drives the highest NAT; Small/Less the lowest.
	if tab.Values["class1_nat"] <= tab.Values["class3_nat"] {
		t.Errorf("Large/More NAT %v not above Small/Less %v",
			tab.Values["class1_nat"], tab.Values["class3_nat"])
	}
	// Large power hurts PC more than small power at equal energy.
	if tab.Values["class1_pc"] >= tab.Values["class2_pc"] {
		t.Errorf("Large-power PC %v not below small-power PC %v",
			tab.Values["class1_pc"], tab.Values["class2_pc"])
	}
}

func TestRunAllQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every harness; skipped with -short")
	}
	tables, err := RunAll(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 23 {
		t.Fatalf("RunAll returned %d tables, want 23", len(tables))
	}
	for _, tab := range tables {
		if len(tab.Rows) == 0 {
			t.Errorf("experiment %s produced no rows", tab.ID)
		}
		if tab.Render() == "" {
			t.Errorf("experiment %s renders empty", tab.ID)
		}
	}
}
