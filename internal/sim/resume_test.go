package sim

// The checkpoint/resume acceptance suite. The contract under test: stepping
// the golden scenario to day 15, checkpointing, and resuming in a *fresh*
// Simulator must produce the remaining 15 days byte-identical to the
// uninterrupted run — for the clean and the chaos-faulted fixture alike,
// and independent of the resumed simulator's worker count. A checkpoint
// that survives this is a complete serialization of the simulation state:
// any forgotten field (an RNG position, a pending VM, a sensor fault
// window) shows up as a trace diff here.

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"github.com/green-dc/baat/internal/battery"
	"github.com/green-dc/baat/internal/faults"
)

// resumeSplitDay is where the split runs checkpoint: halfway through the
// 30-day golden window, late enough that aging, faults, and pending batch
// jobs all carry real state across the boundary.
const resumeSplitDay = 15

// faultedMutate applies the chaos profile exactly as the faulted golden
// fixture does.
func faultedMutate(t *testing.T) func(*Config) {
	return func(c *Config) {
		fcfg, err := faults.Profile("chaos", 0)
		if err != nil {
			t.Fatal(err)
		}
		c.Faults = fcfg
		c.Node.UtilityBackup = true
	}
}

// splitTrace runs the golden scenario to resumeSplitDay, checkpoints,
// resumes into a fresh simulator with the given worker count, and finishes
// the window there. The returned trace stitches both halves together so it
// is directly comparable to an uninterrupted run.
func splitTrace(t *testing.T, mutate func(*Config), workers int) *goldenTrace {
	t.Helper()
	weathers := goldenWeather()

	first := goldenSim(t, mutate)
	trace := &goldenTrace{
		Seed:   goldenSeed,
		Days:   goldenDays,
		Policy: first.policy.Name(),
	}
	traceDays(t, first, weathers[:resumeSplitDay], trace)

	var buf bytes.Buffer
	if err := first.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}

	second := goldenSim(t, func(c *Config) {
		if mutate != nil {
			mutate(c)
		}
		c.Workers = workers
		if workers > 1 {
			// Force a genuine multi-shard fan-out on the six-node golden
			// fleet: the resumed half must be identical from inside the
			// parallel path, not just the serial fallback.
			c.ShardSize = 2
			c.ParallelThreshold = -1
		}
	})
	if err := second.ResumeFrom(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if got := second.Day(); got != resumeSplitDay {
		t.Fatalf("resumed simulator reports day %d, want %d", got, resumeSplitDay)
	}
	traceDays(t, second, weathers[resumeSplitDay:], trace)
	traceFinish(second, trace)
	return trace
}

// fullTrace is the uninterrupted reference, shaped like splitTrace's output
// (no Description) so the two marshal byte-identically when equivalent.
func fullTrace(t *testing.T, mutate func(*Config)) *goldenTrace {
	t.Helper()
	tr := goldenScenario(t, "", mutate)
	tr.Description = ""
	return tr
}

// TestResumeEquivalence is the acceptance check for the checkpoint format:
// checkpoint at day 15, resume fresh, and the remaining trace must be
// byte-identical to the uninterrupted run at every worker count — for both
// golden fixtures.
func TestResumeEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("many 30-day replays")
	}
	scenarios := []struct {
		name   string
		mutate func(*Config)
	}{
		{"clean", nil},
		{"faulted", faultedMutate(t)},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			want, err := json.Marshal(fullTrace(t, sc.mutate))
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 4, 8} {
				got, err := json.Marshal(splitTrace(t, sc.mutate, workers))
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(want, got) {
					t.Errorf("workers=%d: resumed trace diverged from uninterrupted run", workers)
				}
			}
		})
	}
}

// TestResumeRejectsWrongConfig pins the envelope guard: a checkpoint only
// resumes into a simulator built from the configuration that wrote it.
func TestResumeRejectsWrongConfig(t *testing.T) {
	s := goldenSim(t, nil)
	var buf bytes.Buffer
	if err := s.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	other := goldenSim(t, func(c *Config) { c.Seed = goldenSeed + 1 })
	err := other.ResumeFrom(bytes.NewReader(buf.Bytes()))
	if err == nil {
		t.Fatal("checkpoint resumed into a simulator with a different config")
	}
	if !strings.Contains(err.Error(), "config") {
		t.Errorf("config-mismatch error does not mention the config: %v", err)
	}
}

// TestResumeRejectsWrongBatteryModel pins that battery model identity
// participates in the envelope's config hash: a checkpoint written under
// the default lead-acid tier must not resume into a simulator running the
// linear tier, the LFP chemistry, or a mixed fleet — the state layouts and
// physics differ, so a silent cross-model resume would corrupt the run.
func TestResumeRejectsWrongBatteryModel(t *testing.T) {
	s := goldenSim(t, nil)
	var buf bytes.Buffer
	if err := s.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	mutators := map[string]func(*Config){
		"linear tier": func(c *Config) {
			ncfg, err := c.Node.WithBatteryModel(battery.KindLinear)
			if err != nil {
				t.Fatal(err)
			}
			c.Node = ncfg
		},
		"lfp chemistry": func(c *Config) {
			ncfg, err := c.Node.WithBatteryModel(battery.KindLFP)
			if err != nil {
				t.Fatal(err)
			}
			c.Node = ncfg
		},
		"mixed fleet": func(c *Config) {
			c.BatteryFleet = []BatteryShare{
				{Model: battery.KindLeadAcid, Fraction: 0.5},
				{Model: battery.KindLFP, Fraction: 0.5},
			}
		},
	}
	for name, mutate := range mutators {
		other := goldenSim(t, mutate)
		err := other.ResumeFrom(bytes.NewReader(buf.Bytes()))
		if err == nil {
			t.Fatalf("%s: checkpoint resumed into a simulator with a different battery model", name)
		}
		if !strings.Contains(err.Error(), "config") {
			t.Errorf("%s: model-mismatch error does not mention the config: %v", name, err)
		}
	}
}

// TestResumeIgnoresWorkerCount pins a deliberate exclusion: Workers,
// ShardSize, and ParallelThreshold are execution knobs, not simulation
// state, so none of them may participate in the config hash — a
// checkpoint written serially must resume into any sharded layout.
func TestResumeIgnoresWorkerCount(t *testing.T) {
	s := goldenSim(t, func(c *Config) { c.Workers = 1 })
	var buf bytes.Buffer
	if err := s.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	other := goldenSim(t, func(c *Config) {
		c.Workers = 8
		c.ShardSize = 2
		c.ParallelThreshold = -1
	})
	if err := other.ResumeFrom(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("an execution knob leaked into the config hash: %v", err)
	}
}

// TestResumeRejectsCorruptCheckpoint feeds the restore path mangled
// payloads: every failure must be loud, and a failed ResumeFrom must leave
// the target unusable-by-convention (the caller discards it), never
// half-restored silently.
func TestResumeRejectsCorruptCheckpoint(t *testing.T) {
	s := goldenSim(t, nil)
	if _, err := s.RunDay(goldenWeather()[0]); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	mangle := func(name string, f func(map[string]any)) []byte {
		t.Helper()
		var env map[string]any
		if err := json.Unmarshal(good, &env); err != nil {
			t.Fatal(err)
		}
		f(env)
		out, err := json.Marshal(env)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}

	cases := map[string][]byte{
		"truncated":      good[:len(good)/2],
		"not json":       []byte("not a checkpoint"),
		"wrong format":   mangle("format", func(m map[string]any) { m["format"] = 999 }),
		"wrong confhash": mangle("confhash", func(m map[string]any) { m["config_hash"] = "deadbeef" }),
		"negative clock": mangle("clock", func(m map[string]any) {
			st := m["state"].(map[string]any)
			st["clock"] = -5
		}),
		"nan soc": mangle("soc", func(m map[string]any) {
			st := m["state"].(map[string]any)
			nodes := st["nodes"].([]any)
			pack := nodes[0].(map[string]any)["pack"].(map[string]any)
			pack["soc"] = "NaN" // strings where numbers belong must not decode
		}),
	}
	for name, data := range cases {
		fresh := goldenSim(t, nil)
		if err := fresh.ResumeFrom(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: corrupt checkpoint resumed without error", name)
		}
	}
}
