package battery

// Property-based invariants over the electrochemical model, driven by
// testing/quick: whatever sequence of discharge/charge/rest operations a
// policy throws at a pack — at any power, duration, or temperature — the
// state of charge stays in [0, 1] and every step's charge/energy
// bookkeeping balances. These are the physical guarantees the parallel
// fleet stepping and the aging layer both build on. The health-monotone
// property lives in monotone_ext_test.go (package battery_test) because it
// drives the pack through aging.Model, which imports this package.

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
	"time"

	"github.com/green-dc/baat/internal/units"
)

// quickConfig bounds the number of random sequences per property.
func quickConfig() *quick.Config {
	return &quick.Config{MaxCount: 60}
}

// randomStep applies one randomized operation to the pack and returns the
// realized step result (zero for rest).
func randomStep(rng *rand.Rand, p *Pack) (StepResult, time.Duration, error) {
	dt := time.Duration(1+rng.IntN(120)) * time.Second * 30 // 30 s – 1 h
	amb := units.Celsius(-10 + rng.Float64()*55)
	pw := units.Watt(rng.Float64() * 2000)
	switch rng.IntN(3) {
	case 0:
		res, err := p.Discharge(pw, dt, amb)
		return res, dt, err
	case 1:
		res, err := p.Charge(pw, dt, amb)
		return res, dt, err
	default:
		p.Rest(dt, amb)
		return StepResult{}, dt, nil
	}
}

// TestQuickSoCBounds: no operation sequence can push SoC outside [0, 1] or
// the case temperature outside its physical clamp.
func TestQuickSoCBounds(t *testing.T) {
	prop := func(seed int64, initialSoC float64) bool {
		rng := rand.New(rand.NewPCG(uint64(seed), 0))
		p, err := New(DefaultSpec(), WithInitialSoC(math.Abs(math.Mod(initialSoC, 1))))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 150; i++ {
			if _, _, err := randomStep(rng, p); err != nil {
				t.Logf("seed %d step %d: %v", seed, i, err)
				return false
			}
			if soc := p.SoC(); soc < 0 || soc > 1 || math.IsNaN(soc) {
				t.Logf("seed %d step %d: SoC %v out of [0,1]", seed, i, soc)
				return false
			}
			if temp := float64(p.Temperature()); temp < -20 || temp > 90 {
				t.Logf("seed %d step %d: temperature %v outside clamp", seed, i, temp)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, quickConfig()); err != nil {
		t.Error(err)
	}
}

// TestQuickStepBalance: per-step bookkeeping balances. For a discharge the
// energy at the terminals equals voltage × charge and the SoC drop equals
// the charge drawn over Peukert-adjusted capacity; for a charge the SoC
// rise equals the accepted charge derated by coulombic efficiency over
// capacity — losses are exactly the modeled conversion terms, nothing
// leaks.
func TestQuickStepBalance(t *testing.T) {
	const tol = 1e-9
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewPCG(uint64(seed), 0))
		p, err := New(DefaultSpec(), WithInitialSoC(0.2+0.6*rng.Float64()))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 150; i++ {
			dt := time.Duration(1+rng.IntN(120)) * time.Second * 30
			amb := units.Celsius(25)
			pw := units.Watt(rng.Float64() * 1500)
			socBefore := p.SoC()
			countersBefore := p.Counters()
			var res StepResult
			discharging := rng.IntN(2) == 0
			if discharging {
				res, err = p.Discharge(pw, dt, amb)
			} else {
				res, err = p.Charge(pw, dt, amb)
			}
			if err != nil {
				t.Logf("seed %d step %d: %v", seed, i, err)
				return false
			}
			counters := p.Counters()
			if res.Charge == 0 {
				// No charge moved at the terminals (cutoff trip, zero
				// power, or full pack): the step degenerates to rest, so
				// the only SoC movement is modeled self-discharge.
				sdf := p.Spec().SelfDischargeFraction
				wantDrop := socBefore * (1 - math.Pow(1-sdf, dt.Hours()/24))
				if drop := socBefore - p.SoC(); math.Abs(drop-wantDrop) > tol {
					t.Logf("seed %d step %d: rest-path SoC drop %v, want self-discharge %v", seed, i, drop, wantDrop)
					return false
				}
				continue
			}
			if discharging {
				// Terminal energy identity and SoC/charge balance.
				if wantE := float64(res.Voltage) * float64(res.Charge); math.Abs(float64(res.Energy)-wantE) > tol*math.Max(1, math.Abs(wantE)) {
					t.Logf("seed %d step %d: energy %v, want V*Q %v", seed, i, res.Energy, wantE)
					return false
				}
				if d := float64(counters.AhOut-countersBefore.AhOut) - float64(res.Charge); math.Abs(d) > tol {
					t.Logf("seed %d step %d: AhOut counter drifted by %v", seed, i, d)
					return false
				}
				cap := p.capacityAt(res.Current)
				if cap > 0 {
					wantDrop := float64(res.Charge) / float64(cap)
					if drop := socBefore - p.SoC(); math.Abs(drop-wantDrop) > tol {
						t.Logf("seed %d step %d: SoC drop %v, want %v", seed, i, drop, wantDrop)
						return false
					}
				}
			} else {
				dq := -float64(res.Charge) // accepted charge, Ah
				if dq < 0 {
					t.Logf("seed %d step %d: charge step emitted positive charge %v", seed, i, res.Charge)
					return false
				}
				if d := float64(counters.AhIn-countersBefore.AhIn) - dq; math.Abs(d) > tol {
					t.Logf("seed %d step %d: AhIn counter drifted by %v", seed, i, d)
					return false
				}
				eff := p.Spec().CoulombicEfficiency
				if cap := p.EffectiveCapacity(); cap > 0 && p.SoC() < 1 {
					wantRise := dq * eff / float64(cap)
					if rise := p.SoC() - socBefore; math.Abs(rise-wantRise) > tol {
						t.Logf("seed %d step %d: SoC rise %v, want %v (stored = accepted × η)", seed, i, rise, wantRise)
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, quickConfig()); err != nil {
		t.Error(err)
	}
}
