package sim

// Checkpoint coverage for policy controller state. Stateful policies
// (BAAT's DoD-goal hysteresis, BAAT-f's forecast latch) serialize their
// state into the envelope's policy_state field; these tests pin that the
// bytes are really there, that they are validated loudly on the way back
// in, and that a split resume taken while BAAT-f's latch is engaged —
// mid-hysteresis, under the chaos fault profile — continues byte-identical
// to the uninterrupted run at every worker count.

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"strings"
	"testing"

	"github.com/green-dc/baat/internal/core"
	"github.com/green-dc/baat/internal/solar"
)

// envelopePolicyState extracts and decodes the policy_state blob from a
// serialized checkpoint. The second return reports whether the field was
// present at all.
func envelopePolicyState(t *testing.T, ck []byte) ([]byte, bool) {
	t.Helper()
	var env struct {
		State map[string]json.RawMessage `json:"state"`
	}
	if err := json.Unmarshal(ck, &env); err != nil {
		t.Fatal(err)
	}
	raw, ok := env.State["policy_state"]
	if !ok {
		return nil, false
	}
	var b64 string
	if err := json.Unmarshal(raw, &b64); err != nil {
		t.Fatal(err)
	}
	blob, err := base64.StdEncoding.DecodeString(b64)
	if err != nil {
		t.Fatal(err)
	}
	return blob, true
}

// setEnvelopePolicyState rewrites (or, with nil, deletes) the policy_state
// field of a serialized checkpoint.
func setEnvelopePolicyState(t *testing.T, ck, blob []byte) []byte {
	t.Helper()
	var env map[string]json.RawMessage
	if err := json.Unmarshal(ck, &env); err != nil {
		t.Fatal(err)
	}
	var st map[string]json.RawMessage
	if err := json.Unmarshal(env["state"], &st); err != nil {
		t.Fatal(err)
	}
	if blob == nil {
		delete(st, "policy_state")
	} else {
		enc, err := json.Marshal(base64.StdEncoding.EncodeToString(blob))
		if err != nil {
			t.Fatal(err)
		}
		st["policy_state"] = enc
	}
	stOut, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	env["state"] = stOut
	out, err := json.Marshal(env)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestCheckpointEnvelopeCarriesPolicyState(t *testing.T) {
	s := goldenSim(t, nil) // golden config runs the stateful full BAAT
	for _, w := range goldenWeather()[:2] {
		if _, err := s.RunDay(w); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := s.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	blob, ok := envelopePolicyState(t, buf.Bytes())
	if !ok {
		t.Fatal("BAAT checkpoint envelope carries no policy_state")
	}
	var st struct {
		LastDoDGoal *float64 `json:"last_dod_goal"`
	}
	if err := json.Unmarshal(blob, &st); err != nil {
		t.Fatalf("policy_state is not the BAAT state document: %v", err)
	}
	if st.LastDoDGoal == nil {
		t.Error("policy_state lacks last_dod_goal")
	}

	// A stateless policy serializes no policy_state at all — the field is
	// omitted, not empty, so stateless envelopes stay byte-stable.
	eb := goldenSim(t, func(c *Config) { c.Policy = core.PolicySpec{Name: "ebuff"} })
	if _, err := eb.RunDay(goldenWeather()[0]); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := eb.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	if _, ok := envelopePolicyState(t, buf.Bytes()); ok {
		t.Error("stateless e-Buff checkpoint envelope carries policy_state")
	}
}

func TestResumeRejectsBadPolicyState(t *testing.T) {
	s := goldenSim(t, nil)
	if _, err := s.RunDay(goldenWeather()[0]); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	cases := map[string]struct {
		data    []byte
		wantSub string
	}{
		"stateful policy, state missing": {
			data:    setEnvelopePolicyState(t, good, nil),
			wantSub: "stateful",
		},
		"not json": {
			data:    setEnvelopePolicyState(t, good, []byte("junk")),
			wantSub: "restore baat state",
		},
		"unknown field": {
			data:    setEnvelopePolicyState(t, good, []byte(`{"last_dod_goal":0.5,"extra":1}`)),
			wantSub: "restore baat state",
		},
		"out of range": {
			data:    setEnvelopePolicyState(t, good, []byte(`{"last_dod_goal":7}`)),
			wantSub: "out of [0, 1]",
		},
	}
	for name, tc := range cases {
		fresh := goldenSim(t, nil)
		err := fresh.ResumeFrom(bytes.NewReader(tc.data))
		if err == nil {
			t.Errorf("%s: corrupt policy state resumed without error", name)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantSub) {
			t.Errorf("%s: error %q does not contain %q", name, err, tc.wantSub)
		}
	}

	// The inverse mismatch: a blob appearing in a stateless policy's
	// checkpoint is equally loud.
	eb := goldenSim(t, func(c *Config) { c.Policy = core.PolicySpec{Name: "ebuff"} })
	if _, err := eb.RunDay(goldenWeather()[0]); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := eb.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	tainted := setEnvelopePolicyState(t, buf.Bytes(), []byte(`{"last_dod_goal":0.5}`))
	fresh := goldenSim(t, func(c *Config) { c.Policy = core.PolicySpec{Name: "ebuff"} })
	err := fresh.ResumeFrom(bytes.NewReader(tainted))
	if err == nil {
		t.Fatal("policy state accepted by a stateless policy's resume")
	}
	if !strings.Contains(err.Error(), "stateless") {
		t.Errorf("error %q does not explain the stateless mismatch", err)
	}
}

// hysteresisWeather is a fixed sky that drives BAAT-f's forecast latch: two
// bright days, then a long rainy stretch that pulls the forecast minimum
// under the low-sun threshold, then recovery. The split lands inside the
// stretch, so the checkpoint is taken with the latch engaged.
func hysteresisWeather() []solar.Weather {
	seq := make([]solar.Weather, 0, 20)
	seq = append(seq, solar.Sunny, solar.Sunny)
	for i := 0; i < 10; i++ {
		seq = append(seq, solar.Rainy)
	}
	for i := 0; i < 8; i++ {
		seq = append(seq, solar.Sunny)
	}
	return seq
}

const hysteresisSplitDay = 8 // six rainy days observed: latch engaged

// baatFMutate points the golden config at BAAT-f with planned aging on, so
// the checkpoint crosses both pieces of controller state (DoD-goal memory
// and the forecast latch), under the chaos fault profile.
func baatFMutate(t *testing.T) func(*Config) {
	return func(c *Config) {
		faulted := faultedMutate(t)
		faulted(c)
		c.Policy = core.PolicySpec{
			Name:    "baat-f",
			Options: map[string]string{"planned-months": "12"},
		}
	}
}

// TestResumeMidHysteresisChaos is the stateful-policy acceptance check:
// split a chaos-faulted BAAT-f run while the forecast latch is engaged and
// the continuation must be byte-identical to the uninterrupted run for
// serial and sharded resumes alike. A latch lost (or re-derived wrongly)
// across the boundary changes the effective floor/trigger and shows up as
// a trace diff immediately.
func TestResumeMidHysteresisChaos(t *testing.T) {
	weathers := hysteresisWeather()
	mutate := baatFMutate(t)

	// Uninterrupted reference.
	ref := goldenSim(t, mutate)
	want := &goldenTrace{Seed: goldenSeed, Days: len(weathers), Policy: ref.policy.Name()}
	traceDays(t, ref, weathers, want)
	traceFinish(ref, want)
	wantJSON, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 4, 8} {
		first := goldenSim(t, mutate)
		trace := &goldenTrace{Seed: goldenSeed, Days: len(weathers), Policy: first.policy.Name()}
		traceDays(t, first, weathers[:hysteresisSplitDay], trace)

		var buf bytes.Buffer
		if err := first.Checkpoint(&buf); err != nil {
			t.Fatal(err)
		}
		blob, ok := envelopePolicyState(t, buf.Bytes())
		if !ok {
			t.Fatal("BAAT-f checkpoint envelope carries no policy_state")
		}
		var st struct {
			Tightened bool `json:"tightened"`
		}
		if err := json.Unmarshal(blob, &st); err != nil {
			t.Fatal(err)
		}
		if !st.Tightened {
			t.Fatal("split day is not mid-hysteresis: the forecast latch is not engaged (scenario setup broken)")
		}

		second := goldenSim(t, func(c *Config) {
			mutate(c)
			c.Workers = workers
			if workers > 1 {
				c.ShardSize = 2
				c.ParallelThreshold = -1
			}
		})
		if err := second.ResumeFrom(bytes.NewReader(buf.Bytes())); err != nil {
			t.Fatal(err)
		}
		traceDays(t, second, weathers[hysteresisSplitDay:], trace)
		traceFinish(second, trace)
		gotJSON, err := json.Marshal(trace)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(wantJSON, gotJSON) {
			t.Errorf("workers=%d: mid-hysteresis resume diverged from the uninterrupted run", workers)
		}
	}
}
