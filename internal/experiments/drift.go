package experiments

import (
	"fmt"
	"time"

	"github.com/green-dc/baat/internal/aging"
	"github.com/green-dc/baat/internal/battery"
)

// driftRun replays the measurement study of §II-B: one 12 V 35 Ah unit
// cycled daily behind a solar-powered server for six months, sampling the
// observables monthly. It is the same usage pattern the damage-model
// calibration pins.
type driftRun struct {
	months     []int
	voltage    []float64 // loaded terminal voltage at the 10 A test load
	capacity   []float64 // per-cycle deliverable energy, Wh
	efficiency []float64 // per-month round-trip efficiency
}

func runDrift(cfg Config) (*driftRun, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	pack, err := battery.New(battery.DefaultSpec())
	if err != nil {
		return nil, err
	}
	model, err := aging.NewModel(aging.DefaultModelConfig(), battery.DefaultSpec().NominalCapacity)
	if err != nil {
		return nil, err
	}

	months := 6
	daysPerMonth := 30
	if cfg.Quick {
		daysPerMonth = 10
	}

	run := &driftRun{}
	record := func(month int, whOut, whIn float64) {
		run.months = append(run.months, month)
		run.voltage = append(run.voltage, float64(pack.TerminalVoltage(10)))
		// Deliverable per-cycle energy at present health: the Fig 4
		// "stored energy in each charging cycle".
		run.capacity = append(run.capacity, float64(pack.StoredEnergy()))
		eff := 0.0
		if whIn > 0 {
			eff = whOut / whIn
		}
		run.efficiency = append(run.efficiency, eff)
	}

	observe := func(res battery.StepResult, dt time.Duration) error {
		return model.Observe(aging.Sample{
			Dt:          dt,
			Current:     res.Current,
			SoC:         pack.SoC(),
			Temperature: pack.Temperature(),
		})
	}

	// Month 0 baseline uses the first month's in/out for efficiency, so
	// record after each month including an initial pseudo-sample.
	for month := 1; month <= months; month++ {
		var whOut, whIn float64
		for day := 0; day < daysPerMonth; day++ {
			for h := 0; h < 4; h++ { // ~57 % DoD discharge at ~5 A
				res, err := pack.Discharge(60, time.Hour, 25)
				if err != nil {
					return nil, err
				}
				whOut += float64(res.Energy)
				if err := observe(res, time.Hour); err != nil {
					return nil, err
				}
			}
			for h := 0; h < 6; h++ { // solar recharge
				res, err := pack.Charge(60, time.Hour, 25)
				if err != nil {
					return nil, err
				}
				whIn += -float64(res.Energy)
				if err := observe(res, time.Hour); err != nil {
					return nil, err
				}
			}
			if err := pack.Rest(14*time.Hour, 25); err != nil {
				return nil, err
			}
			if err := observe(battery.StepResult{}, 14*time.Hour); err != nil {
				return nil, err
			}
			pack.ApplyDegradation(model.Degradation())
		}
		record(month, whOut, whIn)
	}
	return run, nil
}

// VoltageDrop reproduces Fig 3: measured battery terminal voltage (under a
// standard 10 A test load) over six months of cyclic use, with the dropping
// rate accelerating as the battery ages.
func VoltageDrop(cfg Config) (*Table, error) {
	run, err := runDrift(cfg)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig3",
		Title:   "Battery voltage drop due to aging over 6 months",
		Columns: []string{"month", "loaded voltage (V)", "drop vs month 1"},
		Values:  map[string]float64{},
	}
	v0 := run.voltage[0]
	for i, m := range run.months {
		drop := (v0 - run.voltage[i]) / v0
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", m), f2(run.voltage[i]), pct(drop),
		})
	}
	last := len(run.voltage) - 1
	t.Values["voltage_drop"] = (v0 - run.voltage[last]) / v0
	// Aging acceleration: late-half slope over early-half slope
	// (the paper measures 0.1 V/month early, 0.3 V/month late).
	half := len(run.voltage) / 2
	early := (run.voltage[0] - run.voltage[half]) / float64(half)
	late := (run.voltage[half] - run.voltage[last]) / float64(last-half)
	if early > 0 {
		t.Values["late_vs_early_slope"] = late / early
	}
	t.Notes = append(t.Notes,
		"paper: ≈9% drop, rate accelerating from 0.1 to 0.3 V/month",
		"measured under a standard 10 A test load on the simulated pack")
	return t, nil
}

// CapacityDrop reproduces Fig 4: per-cycle stored energy over six months.
func CapacityDrop(cfg Config) (*Table, error) {
	run, err := runDrift(cfg)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig4",
		Title:   "Battery capacity drop due to aging over 6 months",
		Columns: []string{"month", "per-cycle energy (Wh)", "drop vs month 1"},
		Values:  map[string]float64{},
	}
	c0 := run.capacity[0]
	for i, m := range run.months {
		drop := (c0 - run.capacity[i]) / c0
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", m), fmt.Sprintf("%.0f", run.capacity[i]), pct(drop),
		})
	}
	t.Values["capacity_drop"] = (c0 - run.capacity[len(run.capacity)-1]) / c0
	t.Notes = append(t.Notes, "paper: ≈14% drop under aggressive usage")
	return t, nil
}

// EfficiencyDegradation reproduces Fig 5: monthly round-trip energy
// efficiency over six months.
func EfficiencyDegradation(cfg Config) (*Table, error) {
	run, err := runDrift(cfg)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig5",
		Title:   "Energy efficiency degradation due to aging over 6 months",
		Columns: []string{"month", "round-trip efficiency", "drop vs month 1"},
		Values:  map[string]float64{},
	}
	e0 := run.efficiency[0]
	for i, m := range run.months {
		drop := (e0 - run.efficiency[i]) / e0
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", m), pct(run.efficiency[i]), pct(drop),
		})
	}
	t.Values["efficiency_drop"] = (e0 - run.efficiency[len(run.efficiency)-1]) / e0
	t.Values["final_efficiency"] = run.efficiency[len(run.efficiency)-1]
	t.Notes = append(t.Notes, "paper: ≈8% round-trip efficiency drop")
	return t, nil
}
