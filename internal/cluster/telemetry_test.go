package cluster

import (
	"context"
	"testing"
	"time"

	"github.com/green-dc/baat/internal/telemetry"
)

// TestClusterTelemetry drives one agent/controller pair through reports, a
// command round-trip, a controller restart, and checks every counter moved.
func TestClusterTelemetry(t *testing.T) {
	rec := telemetry.NewRecorder()

	ccfg := DefaultControllerConfig("127.0.0.1:0")
	ccfg.Telemetry = rec
	ctrl, err := ListenController(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	addr := ctrl.Addr()

	h := newHandle(t, "node-t")
	acfg := DefaultAgentConfig(addr)
	acfg.ReportInterval = 20 * time.Millisecond
	acfg.Reconnect = true
	acfg.MaxBackoff = 200 * time.Millisecond
	acfg.Telemetry = rec
	agent, err := StartAgent(acfg, h)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = agent.Close() }()

	waitFor(t, func() bool { return len(ctrl.Snapshot()) == 1 })
	if got := rec.Snapshot().Gauge(telemetry.MetricClusterAgents); got != 1 {
		t.Errorf("connected agents gauge = %v, want 1", got)
	}

	if _, err := ctrl.SendCommand(context.Background(), "node-t", Command{Action: ActionPing}); err != nil {
		t.Fatal(err)
	}
	snap := rec.Snapshot()
	if got := snap.Counter(telemetry.MetricClusterCommandsSent); got != 1 {
		t.Errorf("commands sent = %d, want 1", got)
	}
	if got := snap.Counter(telemetry.MetricClusterAcksOK); got != 1 {
		t.Errorf("acks ok = %d, want 1", got)
	}
	waitFor(t, func() bool {
		s := rec.Snapshot()
		return s.Counter(telemetry.MetricClusterReportsSent) > 0 &&
			s.Counter(telemetry.MetricClusterReportsReceived) > 0
	})

	// Restart the controller: the agent must count a reconnect and trace it.
	if err := ctrl.Close(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond)
	ccfg2 := DefaultControllerConfig(addr)
	ccfg2.Telemetry = rec
	ctrl2, err := ListenController(ccfg2)
	if err != nil {
		t.Fatalf("rebinding %s: %v", addr, err)
	}
	defer func() { _ = ctrl2.Close() }()
	waitFor(t, func() bool { return len(ctrl2.Snapshot()) == 1 })
	waitFor(t, func() bool {
		return rec.Snapshot().Counter(telemetry.MetricClusterReconnects) >= 1
	})

	var reconnectTraced bool
	for _, ev := range rec.Snapshot().Events {
		if ev.Type == telemetry.EventReconnect && ev.Node == "node-t" {
			reconnectTraced = true
		}
	}
	if !reconnectTraced {
		t.Error("reconnect counted but not traced as EventReconnect")
	}
	// Send errors are not asserted: whether the agent notices a dead
	// controller through a failed write or through reader EOF is a race.
}
