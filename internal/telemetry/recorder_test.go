package telemetry

import (
	"testing"
	"time"
)

// TestNilRecorderNoOp is the contract the whole instrumentation layer
// leans on: a nil *Recorder — the zero value of every Telemetry config
// field — must accept every call and hand out handles that are themselves
// no-ops, so un-instrumented runs cost nothing and crash nowhere.
func TestNilRecorderNoOp(t *testing.T) {
	var r *Recorder
	r.Counter("x").Inc()
	r.Counter("x").Add(3)
	r.Gauge("y").Set(1)
	r.Gauge("y").Add(1)
	r.Histogram("z", []float64{1, 2}).Observe(1)
	r.Emit(time.Minute, EventMigration, "node-0", "vm-1 -> node-2")
	if evs := r.Events(); evs != nil {
		t.Errorf("nil recorder events = %v, want nil", evs)
	}
	snap := r.Snapshot()
	if len(snap.Counters) != 0 || len(snap.Gauges) != 0 || len(snap.Histograms) != 0 || len(snap.Events) != 0 {
		t.Errorf("nil recorder snapshot not empty: %+v", snap)
	}
	// Nil handles from a nil registry as well.
	var reg *Registry
	reg.Counter("x").Inc()
	reg.Gauge("y").Set(1)
	reg.Histogram("z", []float64{1}).Observe(1)
	// And plain nil handles.
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Inc()
	c.Add(1)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil handles should read zero")
	}
	var tr *Tracer
	tr.Record(Event{})
	if tr.Events() != nil || tr.Total() != 0 || tr.Dropped() != 0 {
		t.Error("nil tracer should be a no-op")
	}
}

func TestRecorderSnapshot(t *testing.T) {
	r := NewRecorder(WithTraceCapacity(16))
	r.Counter(MetricMigrations).Add(3)
	r.Gauge(MetricFleetAvgSoC).Set(0.55)
	r.Histogram(MetricSoC, LinearBounds(0, 1, 7)).Observe(0.5)
	r.Emit(5*time.Minute, EventMigration, "node-0", "vm-1 -> node-2")
	r.Emit(6*time.Minute, EventDVFSCap, "node-1", "")

	snap := r.Snapshot()
	if got := snap.Counter(MetricMigrations); got != 3 {
		t.Errorf("migrations = %d, want 3", got)
	}
	if got := snap.Gauge(MetricFleetAvgSoC); got != 0.55 {
		t.Errorf("avg SoC = %v, want 0.55", got)
	}
	h, ok := snap.Histograms[MetricSoC]
	if !ok || h.Count != 1 {
		t.Errorf("SoC histogram = %+v, want one observation", h)
	}
	if len(snap.Events) != 2 {
		t.Fatalf("events = %d, want 2", len(snap.Events))
	}
	if snap.Events[0].Type != EventMigration || snap.Events[1].Type != EventDVFSCap {
		t.Errorf("event order wrong: %+v", snap.Events)
	}
	if snap.Events[0].At != 5*time.Minute {
		t.Errorf("event sim time = %v, want 5m", snap.Events[0].At)
	}
	// Absent names read zero.
	if snap.Counter("baat_absent_total") != 0 || snap.Gauge("baat_absent") != 0 {
		t.Error("absent snapshot names should read zero")
	}
}
