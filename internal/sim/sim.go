// Package sim is the discrete-time simulation engine that replays the BAAT
// prototype's operation (DSN'15 §V): a fleet of battery nodes powered by a
// shared solar feed, workloads hosted in VMs placed by a power-management
// policy, and the daily operating window of the testbed (first server on at
// 08:30, all servers down after 18:30).
//
// One engine run replays identical solar days and job arrivals for any
// policy, which is the simulated analogue of the paper's methodology of
// matching "the most similar solar generation scenarios" across the four
// policy experiments (§VI-B).
//
// Setting Config.Telemetry instruments the run with the counters, gauges,
// histograms, and traced events of internal/telemetry (tick and placement
// counts, the Fig 19 SoC distribution, policy migration/DVFS decisions,
// battery end-of-life events); see docs/OBSERVABILITY.md for the full
// catalogue.
package sim

import (
	"fmt"
	"math"
	"runtime"
	"slices"
	"time"

	"github.com/green-dc/baat/internal/aging"
	"github.com/green-dc/baat/internal/battery"
	"github.com/green-dc/baat/internal/core"
	"github.com/green-dc/baat/internal/faults"
	"github.com/green-dc/baat/internal/fleet"
	"github.com/green-dc/baat/internal/node"
	"github.com/green-dc/baat/internal/rng"
	"github.com/green-dc/baat/internal/signal"
	"github.com/green-dc/baat/internal/solar"
	"github.com/green-dc/baat/internal/stats"
	"github.com/green-dc/baat/internal/telemetry"
	"github.com/green-dc/baat/internal/units"
	"github.com/green-dc/baat/internal/vm"
	"github.com/green-dc/baat/internal/workload"
)

// Config parameterizes a simulation.
type Config struct {
	// Policy selects the power-management policy from the core registry:
	// a canonical name plus optional string options (see core.PolicySpec
	// and `baatsim policies`). It is the single serializable policy
	// identity — the simulator builds the controller itself via
	// core.Build, and the normalized spec participates in the checkpoint
	// config hash so a resume under a different policy is rejected.
	Policy core.PolicySpec
	// Nodes is the number of battery nodes (the prototype has six).
	Nodes int
	// Node configures each battery node.
	Node node.Config
	// Solar configures the PV feed (Scale is typically set to track fleet
	// size).
	Solar solar.Config
	// Tick is the simulation step (1 minute reproduces the prototype's
	// sampling cadence).
	Tick time.Duration
	// ControlPeriod is how often the policy's Control hook runs.
	ControlPeriod time.Duration
	// WindowStart and WindowEnd bound the operating day (§V-B).
	WindowStart time.Duration
	WindowEnd   time.Duration
	// JobsPerDay is how many batch VMs arrive each morning.
	JobsPerDay int
	// ServiceVMs is how many long-running service VMs are placed on the
	// first day and persist.
	ServiceVMs int
	// Services optionally replaces ServiceVMs with an explicit list of
	// persistent service profiles. Heterogeneous lists reproduce the
	// prototype's static assignment of six different workloads to six
	// servers (§V-B), the regime where aging variation between nodes is
	// largest and hiding matters most.
	Services []workload.Profile
	// Seed drives all randomness (weather, cloud patterns, job mix,
	// manufacturing variation, policy tie-breaks).
	Seed int64
	// ManufacturingSigma is the relative spread of per-unit battery
	// capacity/resistance variation (§IV-B-1).
	ManufacturingSigma float64
	// RecordSeries keeps per-control-period metric snapshots (Figs 12/13).
	RecordSeries bool
	// Workers is the number of concurrent workers advancing node physics
	// each tick. 0 and 1 (the defaults) step serially; negative values
	// resolve to runtime.GOMAXPROCS(0); counts above the shard count are
	// trimmed to it. Work is distributed shard-by-shard (ShardSize): solar
	// grants are fixed before the fan-out, each shard owns all state its
	// nodes touch, and per-shard summaries merge in shard order, so the
	// worker count never changes results — parallel runs are bit-identical
	// to serial ones (enforced by this package's equivalence tests).
	Workers int
	// ShardSize is the rack-group partition width of the struct-of-arrays
	// fleet layout — the unit of parallel work and summary aggregation.
	// Zero means fleet.DefaultShardSize. A pure performance knob: like
	// Workers it never changes results, and it is excluded from the
	// checkpoint config hash.
	ShardSize int `json:",omitempty"`
	// ParallelThreshold is the fleet size below which Workers > 1 falls
	// back to serial stepping: for small fleets the fan-out handshake
	// costs more than the physics it parallelizes. Zero means
	// DefaultParallelThreshold; negative forces the parallel path at any
	// size (the equivalence tests use this). Results are identical either
	// way, so it too is excluded from the checkpoint config hash.
	ParallelThreshold int `json:",omitempty"`
	// Telemetry instruments the run: tick/day/placement counters, the
	// Fig 19 SoC histogram, policy decision counts and events, and battery
	// step counters, all under the canonical names of
	// internal/telemetry/names.go. Nil (the default) records nothing at
	// effectively no cost.
	Telemetry *telemetry.Recorder
	// Faults configures deterministic fault injection (sensor corruption,
	// battery degradation shocks, power disturbances). An empty config —
	// the default — injects nothing and leaves the clean path untouched.
	// Faults.Seed zero copies Config.Seed; the injector draws from its own
	// named substream of that seed (rng.Faults), so one Config.Seed still
	// pins the entire run without any stream collision.
	Faults faults.Config
	// BatteryFleet declares a mixed battery fleet: contiguous blocks of
	// nodes, each running a different battery model tier (e.g. legacy
	// lead-acid racks plus LFP retrofits). Fractions must sum to 1; block
	// boundaries round to whole nodes cumulatively, the last block absorbs
	// the remainder. Each block uses the default spec and aging config for
	// its chemistry (battery.DefaultSpecFor / aging.DefaultModelConfigFor)
	// with Config.Node's AccelFactor preserved. Empty — the default —
	// keeps the fleet homogeneous on Config.Node's own battery spec.
	// Participates in the checkpoint config hash: resuming under a
	// different fleet mix is rejected.
	BatteryFleet []BatteryShare `json:",omitempty"`
}

// BatteryShare is one block of a mixed battery fleet: a model tier and the
// fraction of the fleet it covers.
type BatteryShare struct {
	// Model selects the battery model tier for this block.
	Model battery.Kind
	// Fraction is this block's share of the fleet, in (0, 1].
	Fraction float64
}

// DefaultParallelThreshold is the fleet size at which multi-worker
// stepping starts paying for itself; below it the engine steps serially
// even when Workers > 1. Chosen from the bench suite: at a few hundred
// nodes per tick the physics dwarfs the pool handshake.
const DefaultParallelThreshold = 256

// DefaultConfig mirrors the prototype: six nodes, one-minute ticks,
// five-minute control, 08:30–18:30 window.
func DefaultConfig() Config {
	return Config{
		Policy:             core.PolicySpec{Name: "baat"},
		Nodes:              6,
		Node:               node.DefaultConfig(),
		Solar:              solar.DefaultConfig(),
		Tick:               time.Minute,
		ControlPeriod:      5 * time.Minute,
		WindowStart:        8*time.Hour + 30*time.Minute,
		WindowEnd:          18*time.Hour + 30*time.Minute,
		JobsPerDay:         7,
		ServiceVMs:         1,
		Seed:               1,
		ManufacturingSigma: 0.10,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Nodes <= 0 {
		return fmt.Errorf("sim: need at least one node, got %d", c.Nodes)
	}
	if err := c.Node.Validate(); err != nil {
		return err
	}
	if err := c.Solar.Validate(); err != nil {
		return err
	}
	if c.Tick <= 0 {
		return fmt.Errorf("sim: tick must be positive, got %v", c.Tick)
	}
	if c.ControlPeriod < c.Tick {
		return fmt.Errorf("sim: control period %v must be >= tick %v", c.ControlPeriod, c.Tick)
	}
	if c.WindowStart < 0 || c.WindowEnd > 24*time.Hour || c.WindowEnd <= c.WindowStart {
		return fmt.Errorf("sim: need 0 <= window start < end <= 24h (got %v, %v)", c.WindowStart, c.WindowEnd)
	}
	if c.JobsPerDay < 0 || c.ServiceVMs < 0 {
		return fmt.Errorf("sim: job counts must be non-negative")
	}
	for i, p := range c.Services {
		if err := p.Validate(); err != nil {
			return fmt.Errorf("sim: service %d: %w", i, err)
		}
	}
	if c.ShardSize < 0 {
		return fmt.Errorf("sim: shard size must be non-negative, got %d", c.ShardSize)
	}
	if c.ManufacturingSigma < 0 || c.ManufacturingSigma > 0.5 {
		return fmt.Errorf("sim: manufacturing sigma must be in [0, 0.5], got %v", c.ManufacturingSigma)
	}
	if err := c.Faults.Validate(); err != nil {
		return fmt.Errorf("sim: %w", err)
	}
	if len(c.BatteryFleet) > 0 {
		sum := 0.0
		for j, sh := range c.BatteryFleet {
			if !sh.Model.Valid() {
				return fmt.Errorf("sim: battery fleet share %d: unknown battery model %q", j, sh.Model)
			}
			if sh.Fraction <= 0 || sh.Fraction > 1 {
				return fmt.Errorf("sim: battery fleet share %d: fraction must be in (0, 1], got %v", j, sh.Fraction)
			}
			sum += sh.Fraction
		}
		if math.Abs(sum-1) > 1e-9 {
			return fmt.Errorf("sim: battery fleet fractions must sum to 1, got %v", sum)
		}
	}
	return nil
}

// batteryKinds resolves BatteryFleet into one model kind per node:
// contiguous blocks whose boundaries are the cumulative fractions rounded
// to whole nodes, with the last block extended to cover the remainder. Nil
// when the fleet is homogeneous (no BatteryFleet declared).
func (c Config) batteryKinds() []battery.Kind {
	if len(c.BatteryFleet) == 0 {
		return nil
	}
	kinds := make([]battery.Kind, c.Nodes)
	cum, start := 0.0, 0
	for j, sh := range c.BatteryFleet {
		cum += sh.Fraction
		end := int(math.Round(cum * float64(c.Nodes)))
		if j == len(c.BatteryFleet)-1 || end > c.Nodes {
			end = c.Nodes
		}
		for i := start; i < end; i++ {
			kinds[i] = sh.Model.Normalize()
		}
		if end > start {
			start = end
		}
	}
	return kinds
}

// MetricsPoint is one recorded snapshot of a node's aging metrics.
type MetricsPoint struct {
	At      time.Duration
	NodeID  string
	Metrics aging.Metrics
	SoC     float64
}

// DayStats summarizes one simulated day.
type DayStats struct {
	Day        int
	Weather    solar.Weather
	Throughput float64
	// Downtime is the worst in-window dark time across nodes.
	Downtime time.Duration
	// LowSoCTime is the worst per-node time spent below 40 % SoC within
	// the operating window (Fig 18's metric).
	LowSoCTime time.Duration
	// SolarEnergy is fleet solar consumption for the day.
	SolarEnergy units.WattHour
}

// NodeSummary is the end-of-run state of one node.
type NodeSummary struct {
	ID         string
	Metrics    aging.Metrics
	Health     float64
	SoC        float64
	Throughput float64
	Downtime   time.Duration
	Counters   battery.Counters
}

// Result is the outcome of a simulation run.
type Result struct {
	Policy string
	Days   []DayStats
	Nodes  []NodeSummary
	// SoCHistogram aggregates in-window SoC samples across all nodes into
	// the seven bins of Fig 19.
	SoCHistogram *stats.Histogram
	// Series holds metric snapshots when RecordSeries is set.
	Series []MetricsPoint
	// FleetLifetime is the time until the first battery reached
	// end-of-life; zero if no battery did within the run.
	FleetLifetime time.Duration
	// Throughput is total work completed.
	Throughput float64
}

// WorstNode returns the node with the highest NAT (the paper reports worst-
// battery figures, §VI-B). It returns false for an empty fleet.
func (r *Result) WorstNode() (NodeSummary, bool) {
	if len(r.Nodes) == 0 {
		return NodeSummary{}, false
	}
	worst := r.Nodes[0]
	for _, n := range r.Nodes[1:] {
		if n.Metrics.NAT > worst.Metrics.NAT {
			worst = n
		}
	}
	return worst, true
}

// Simulator drives a fleet under one policy.
type Simulator struct {
	cfg    Config
	policy core.Policy
	// fleet owns the struct-of-arrays node storage (contiguous per-
	// component slabs sharded into rack groups); nodes is its view slice —
	// node i is a pointer into the slab, so everything written against
	// *node.Node keeps working while the tick loops walk dense memory.
	fleet *fleet.Fleet
	nodes []*node.Node
	// mfgRng seeds construction-time variation; wxRng drives weather and
	// cloud patterns; policyRng feeds policy tie-breaking. Each is a named
	// PCG substream of Config.Seed (internal/rng), so every policy replays
	// identical solar days (§VI-B's matched-scenario methodology) and every
	// stream position round-trips through Snapshot/Restore.
	mfgRng    *rng.Stream
	wxRng     *rng.Stream
	policyRng *rng.Stream
	gen       *workload.Generator
	// forecast is the deterministic solar forecaster feeding the policy
	// signal plane (core.Context.Signals). It observes each day's weather
	// as RunDay opens it and draws forecast noise from its own named
	// substream of Config.Seed, so adding forecasts perturbed no existing
	// stream and golden traces held.
	forecast *signal.SolarForecaster

	clock     time.Duration
	day       int
	vmCounter int
	pending   []*vm.VM
	// workers is the resolved Config.Workers: the node-physics fan-out
	// width (1 = serial), trimmed to the shard count. parallel reports
	// whether the fan-out is actually used (workers > 1 and the fleet
	// clears ParallelThreshold); pool is the reusable shard-worker pool,
	// started per simulated day by RunDay.
	workers  int
	parallel bool
	pool     *fleet.Pool

	// inj drives deterministic fault injection (nil when Config.Faults is
	// empty); degraded mirrors each node's last observed suspect state so
	// transitions emit exactly one event per edge.
	inj      *faults.Injector
	degraded []bool

	socHist   *stats.Histogram
	series    []MetricsPoint
	eolAt     time.Duration
	placedSvc bool

	// history accumulates the per-day stats of every completed day over
	// the simulator's lifetime. It is serialized state: a resumed run can
	// report the full horizon, not just the days it executed itself. The
	// initial capacity keeps RunDay's append out of the per-day
	// allocation budget for typical horizons.
	history []DayStats

	// Per-tick scratch: the fleet's dense columns, sized at construction
	// and reused every step so the steady-state tick path allocates
	// nothing (pinned by the AllocsPerRun guards in alloc_test.go).
	// socOrder/socSnap back bySoC: the index order is sorted against a SoC
	// snapshot read once per call, so the sort does one pack read per node
	// instead of O(n log n).
	demands     []float64
	loadGrant   []float64
	chargeGrant []float64
	socOrder    []int
	socSnap     []float64
	socKey      []uint64
	socTmp      []int

	// Shard-step state: stepOffline carries the current tick's path to the
	// shard workers, shardSums/shardErrs are each shard's private summary
	// and error slot, and fleetSum is the whole-fleet merge (in shard
	// order) the controller and telemetry consume. The merge is what makes
	// control cost sublinear: EOL detection, gauge updates, and the e-Buff
	// frequency-restore scan all read O(shards) aggregates instead of
	// rescanning O(nodes) state.
	stepOffline bool
	shardSums   []fleet.Summary
	shardErrs   []error
	fleetSum    fleet.Summary

	// Per-day scratch for RunDay's start-of-day baselines.
	dayThr   []float64
	dayDown  []time.Duration
	daySolar []units.WattHour
	dayLow   []time.Duration

	// pctx is the policy context handed to every PlaceVM/Control call.
	// Policies act on it synchronously inside the hook, so one reusable
	// value (with Clock refreshed per call) replaces an allocation per
	// placement attempt and control period.
	pctx core.Context

	// Telemetry handles captured at construction (nil no-ops without a
	// recorder); telSoC mirrors socHist's seven Fig 19 bins.
	tel            *telemetry.Recorder
	telTicks       *telemetry.Counter
	telDays        *telemetry.Counter
	telJobs        *telemetry.Counter
	telPlacements  *telemetry.Counter
	telDeferred    *telemetry.Counter
	telEOL         *telemetry.Counter
	telSoC         *telemetry.Histogram
	telControl     *telemetry.Histogram
	telClock       *telemetry.Gauge
	telMinHealth   *telemetry.Gauge
	telFleetAvgSoC *telemetry.Gauge
	telFaults      *telemetry.Counter
	telDegraded    *telemetry.Counter
	telSuspect     *telemetry.Gauge
}

// New builds a simulator. The controller comes from the policy registry
// via cfg.Policy, so experiments construct every Table 4 scheme against
// identical fleets by varying only the spec.
func New(cfg Config) (*Simulator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	spec, err := core.Normalize(cfg.Policy)
	if err != nil {
		return nil, err
	}
	policy, err := core.Build(spec)
	if err != nil {
		return nil, err
	}
	cfg.Policy = spec
	mfgRng := rng.New(cfg.Seed, rng.Manufacturing)
	jobRng := rng.New(cfg.Seed, rng.Jobs)
	wxRng := rng.New(cfg.Seed, rng.Weather)
	policyRng := rng.New(cfg.Seed, rng.Policy)
	gen, err := workload.NewGenerator(jobRng)
	if err != nil {
		return nil, err
	}
	hist, err := stats.NewHistogram(0, 1, 7) // the seven SoC bins of Fig 19
	if err != nil {
		return nil, err
	}

	workers := cfg.Workers
	if workers < 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers < 1 {
		workers = 1
	}
	if workers > cfg.Nodes {
		workers = cfg.Nodes
	}

	s := &Simulator{
		cfg:       cfg,
		policy:    policy,
		mfgRng:    mfgRng,
		wxRng:     wxRng,
		policyRng: policyRng,
		gen:       gen,
		forecast:  signal.NewSolarForecaster(cfg.Seed, signal.DefaultHorizon),
		socHist:   hist,
		workers:   workers,
		history:   make([]DayStats, 0, 64),

		tel:            cfg.Telemetry,
		telTicks:       cfg.Telemetry.Counter(telemetry.MetricSimTicks),
		telDays:        cfg.Telemetry.Counter(telemetry.MetricSimDays),
		telJobs:        cfg.Telemetry.Counter(telemetry.MetricSimJobsSubmitted),
		telPlacements:  cfg.Telemetry.Counter(telemetry.MetricSimPlacements),
		telDeferred:    cfg.Telemetry.Counter(telemetry.MetricSimPlacementsDeferred),
		telEOL:         cfg.Telemetry.Counter(telemetry.MetricBatteryEOL),
		telSoC:         cfg.Telemetry.Histogram(telemetry.MetricSoC, telemetry.LinearBounds(0, 1, 7)),
		telControl:     cfg.Telemetry.Histogram(telemetry.MetricSimControlSeconds, controlBounds()),
		telClock:       cfg.Telemetry.Gauge(telemetry.MetricSimClockSeconds),
		telMinHealth:   cfg.Telemetry.Gauge(telemetry.MetricFleetMinHealth),
		telFleetAvgSoC: cfg.Telemetry.Gauge(telemetry.MetricFleetAvgSoC),
		telFaults:      cfg.Telemetry.Counter(telemetry.MetricFaultsInjected),
		telDegraded:    cfg.Telemetry.Counter(telemetry.MetricDegradedTransitions),
		telSuspect:     cfg.Telemetry.Gauge(telemetry.MetricFleetSuspectNodes),
	}
	if cfg.Faults.Enabled() {
		fcfg := cfg.Faults
		if fcfg.Seed == 0 {
			fcfg.Seed = cfg.Seed
		}
		inj, err := faults.NewInjector(fcfg, cfg.Nodes)
		if err != nil {
			return nil, err
		}
		s.inj = inj
		s.degraded = make([]bool, cfg.Nodes)
	}
	// Resolve the per-node battery model up front so the fleet can size its
	// per-tier slabs exactly. Homogeneous fleets declare Config.Node's own
	// chemistry; mixed fleets (BatteryFleet) declare each block's kind.
	kinds := cfg.batteryKinds()
	homogeneous := cfg.Node.BatterySpec.Chemistry.Normalize()
	modelAt := func(i int) battery.Kind {
		if kinds != nil {
			return kinds[i]
		}
		return homogeneous
	}
	fl, err := fleet.New(fleet.Config{
		Nodes:     cfg.Nodes,
		ShardSize: cfg.ShardSize,
		Seed:      cfg.Seed,
		Model:     modelAt,
		Node: func(i int) (node.Config, error) {
			ncfg := cfg.Node
			ncfg.Telemetry = cfg.Telemetry
			if kinds != nil {
				// Swap in the block's battery model before any RNG draw:
				// WithBatteryModel consumes no randomness, so the two
				// manufacturing-variation draws per node below land exactly
				// where they always have and homogeneous goldens hold.
				var err error
				ncfg, err = ncfg.WithBatteryModel(kinds[i])
				if err != nil {
					return node.Config{}, fmt.Errorf("sim: node %d: %w", i, err)
				}
			}
			if cfg.ManufacturingSigma > 0 {
				// The fleet constructor calls this exactly once per node in
				// ascending index order, so each unit's variation draws land
				// on the node they always have and golden traces hold.
				capScale := 1 + mfgRng.NormFloat64()*cfg.ManufacturingSigma
				resScale := 1 + mfgRng.NormFloat64()*cfg.ManufacturingSigma
				ncfg.BatteryOptions = append(append([]battery.Option(nil), ncfg.BatteryOptions...),
					battery.WithManufacturingVariation(
						units.Clamp(capScale, 0.7, 1.3),
						units.Clamp(resScale, 0.7, 1.3),
					))
			}
			return ncfg, nil
		},
	})
	if err != nil {
		return nil, err
	}
	s.fleet = fl
	s.nodes = fl.Views()
	cols := fl.Cols()
	s.demands = cols.Demand
	s.loadGrant = cols.LoadGrant
	s.chargeGrant = cols.ChargeGrant
	s.socOrder = cols.Order
	s.socSnap = cols.SoC
	s.socKey = cols.SortKey
	s.socTmp = cols.SortScratch

	shards := fl.Shards()
	if s.workers > len(shards) {
		s.workers = len(shards)
	}
	threshold := cfg.ParallelThreshold
	if threshold == 0 {
		threshold = DefaultParallelThreshold
	}
	s.parallel = s.workers > 1 && (threshold < 0 || cfg.Nodes >= threshold)
	if s.parallel {
		s.pool = fleet.NewPool(s.workers, s.runShard)
	}
	s.shardSums = make([]fleet.Summary, len(shards))
	s.shardErrs = make([]error, len(shards))
	for i := range s.shardSums {
		h, err := stats.NewHistogram(0, 1, 7)
		if err != nil {
			return nil, err
		}
		s.shardSums[i].Hist = h
		s.shardSums[i].Changed = make([]int, 0, shards[i].Len())
		s.shardSums[i].Reset()
	}
	fleetHist, err := stats.NewHistogram(0, 1, 7)
	if err != nil {
		return nil, err
	}
	s.fleetSum.Hist = fleetHist
	s.fleetSum.Reset()

	n := cfg.Nodes
	s.dayThr = make([]float64, n)
	s.dayDown = make([]time.Duration, n)
	s.daySolar = make([]units.WattHour, n)
	s.dayLow = make([]time.Duration, n)
	s.pctx = core.Context{
		Nodes:     s.nodes,
		Rng:       s.policyRng.Rand,
		Telemetry: s.tel,
		Summary:   &s.fleetSum,
		Signals:   signal.Signals{Solar: s.forecast, Price: signal.DefaultTOUTariff()},
	}
	return s, nil
}

// Nodes exposes the fleet (read-mostly; used by experiment harnesses).
func (s *Simulator) Nodes() []*node.Node { return append([]*node.Node(nil), s.nodes...) }

// SetPolicy swaps the power-management policy mid-run. The evaluation ages
// all batteries synchronously under a neutral scheme and then measures one
// day per policy on the shared aged state (§VI-B); SetPolicy is how a
// harness reproduces that on a single fleet.
//
// The spec is normalized and built *before* the running controller is
// touched: a spec that fails validation (unknown name, bad option) leaves
// the current policy in place and the run unharmed, so a control plane can
// reject a bad mid-flight swap without losing the simulation.
//
// The policy spec participates in the checkpoint config hash, so swapping
// it changes the simulator's ConfigHash: checkpoints written after the
// swap resume only into simulators configured with the new spec (and older
// checkpoints only into the old one). Callers that checkpoint across
// mutations must keep the config that was live at each checkpoint —
// internal/serve snapshots its run spec alongside every envelope for
// exactly this reason.
func (s *Simulator) SetPolicy(spec core.PolicySpec) error {
	norm, err := core.Normalize(spec)
	if err != nil {
		return err
	}
	p, err := core.Build(norm)
	if err != nil {
		return err
	}
	s.policy = p
	s.cfg.Policy = norm
	return nil
}

// SetFaults swaps the fault-injection plan mid-run. Like SetPolicy it must
// be called between days (never while RunDay is in flight): the injector is
// rebuilt from the new configuration, so scheduled windows and activation
// draws restart from the plan's own rules at the current clock. A zero
// Seed copies Config.Seed, exactly as construction does. Disabling faults
// (an empty config) also clears any sensor corruption and utility gating
// the old plan left applied, so the fleet's observed state converges back
// to the physics.
//
// The fault plan participates in the checkpoint config hash, so swapping it
// changes the simulator's ConfigHash: checkpoints written after the swap
// resume only into simulators configured with the new plan (and older
// checkpoints only into the old one). Callers that checkpoint across
// mutations must keep the config that was live at each checkpoint —
// internal/serve snapshots its run spec alongside every envelope for
// exactly this reason.
func (s *Simulator) SetFaults(cfg faults.Config) error {
	if err := cfg.Validate(); err != nil {
		return fmt.Errorf("sim: %w", err)
	}
	if !cfg.Enabled() {
		if s.inj != nil {
			for _, nd := range s.nodes {
				nd.SetSensorFault(faults.SensorFault{})
				nd.SetUtilityAvailable(true)
			}
		}
		s.inj = nil
		s.degraded = nil
		s.cfg.Faults = faults.Config{}
		return nil
	}
	fcfg := cfg
	if fcfg.Seed == 0 {
		fcfg.Seed = s.cfg.Seed
	}
	inj, err := faults.NewInjector(fcfg, s.cfg.Nodes)
	if err != nil {
		return err
	}
	s.inj = inj
	// Resync the edge-detection mirror to each node's current suspect
	// state so the swap itself never fabricates degraded-mode transition
	// events.
	if s.degraded == nil {
		s.degraded = make([]bool, s.cfg.Nodes)
	}
	for i, nd := range s.nodes {
		s.degraded[i] = nd.MetricsSuspect()
	}
	s.cfg.Faults = cfg
	return nil
}

// Clock returns the simulated time.
func (s *Simulator) Clock() time.Duration { return s.clock }

// Day returns how many simulated days have completed (or started; RunDay
// increments it on entry). A resumed run uses it to skip the weather
// prefix already consumed before the checkpoint.
func (s *Simulator) Day() int { return s.day }

// ctx refreshes and returns the reusable policy context.
func (s *Simulator) ctx() *core.Context {
	s.pctx.Clock = s.clock
	return &s.pctx
}

// submitJobs enqueues the day's arrivals. Jobs that do not fit immediately
// stay queued and are retried every control period, so every policy
// attempts the same work — the comparison then measures battery management,
// not admission control.
func (s *Simulator) submitJobs() error {
	enqueue := func(p workload.Profile) error {
		s.vmCounter++
		v, err := vm.New(fmt.Sprintf("vm-%d", s.vmCounter), p)
		if err != nil {
			return err
		}
		s.pending = append(s.pending, v)
		s.telJobs.Inc()
		return nil
	}
	if !s.placedSvc {
		s.placedSvc = true
		if len(s.cfg.Services) > 0 {
			for _, p := range s.cfg.Services {
				if err := enqueue(p); err != nil {
					return err
				}
			}
		} else {
			svc, err := workload.ProfileFor(workload.WebServing)
			if err != nil {
				return err
			}
			for i := 0; i < s.cfg.ServiceVMs; i++ {
				if err := enqueue(svc); err != nil {
					return err
				}
			}
		}
	}
	for _, p := range s.gen.Batch(s.cfg.JobsPerDay) {
		if p.Service {
			continue // services were placed on day one
		}
		if err := enqueue(p); err != nil {
			return err
		}
	}
	return s.placePending()
}

// placePending drains the job queue as far as current capacity allows.
func (s *Simulator) placePending() error {
	var remaining []*vm.VM
	for _, v := range s.pending {
		target, err := s.policy.PlaceVM(s.ctx(), v)
		if err != nil {
			if err == core.ErrNoCapacity {
				remaining = append(remaining, v)
				s.telDeferred.Inc()
				continue
			}
			return err
		}
		if err := target.Server().Attach(v); err != nil {
			return err
		}
		s.telPlacements.Inc()
	}
	s.pending = remaining
	return nil
}

// ProvisionServices attaches n persistent service VMs round-robin across
// the fleet without consulting the policy — the constant-per-VM
// provisioning path for warehouse-scale fleets, where the policy's
// O(nodes) placement scan per VM turns day-one setup quadratic. It
// replaces the day-one ServiceVMs placement (both use the web-serving
// profile), so it must run before the first day, on a simulator whose
// Config requested no services of its own.
func (s *Simulator) ProvisionServices(n int) error {
	if s.placedSvc || s.clock != 0 || s.day != 0 {
		return fmt.Errorf("sim: ProvisionServices must run once, before the first day")
	}
	if n < 0 || n > len(s.nodes) {
		return fmt.Errorf("sim: can provision between 0 and %d services, got %d", len(s.nodes), n)
	}
	prof, err := workload.ProfileFor(workload.WebServing)
	if err != nil {
		return err
	}
	stride := 1
	if n > 0 {
		stride = len(s.nodes) / n
	}
	for i := 0; i < n; i++ {
		s.vmCounter++
		v, err := vm.New(fmt.Sprintf("vm-%d", s.vmCounter), prof)
		if err != nil {
			return err
		}
		if err := s.nodes[i*stride].Server().Attach(v); err != nil {
			return err
		}
		s.telPlacements.Inc()
	}
	s.placedSvc = true
	return nil
}

// reapCompleted removes finished VMs from their hosts. The bulk detach
// works in place on each server's VM list, so the control-period reap no
// longer copies every hosted VM slice just to scan it.
func (s *Simulator) reapCompleted() {
	for _, n := range s.nodes {
		n.Server().DetachCompleted()
	}
}

// RunDay simulates one full day of the given weather and returns its stats.
func (s *Simulator) RunDay(w solar.Weather) (DayStats, error) {
	day, err := solar.NewDay(w, s.cfg.Solar, s.wxRng.Rand)
	if err != nil {
		return DayStats{}, err
	}
	s.day++
	// The morning forecast update: record today's conditions so the signal
	// plane's lookahead (ctx.Signals.Solar) is conditioned on them. The
	// forecaster owns its rng substream, so this read-and-redraw never
	// shifts the weather, job, or policy streams.
	s.forecast.ObserveDay(signal.WeatherIndex(w))
	if s.inj != nil {
		// Scheduled PV dropouts derate the solar profile itself;
		// probabilistic dips ride through TickState.PVFactor instead.
		for _, o := range s.inj.PVOutages(s.day) {
			if err := day.Derate(o.Start, o.End, o.Factor); err != nil {
				return DayStats{}, err
			}
		}
	}
	ds := DayStats{Day: s.day, Weather: w}

	if s.parallel {
		// One pool of long-lived shard workers per simulated day: the 288
		// ticks of a default day amortize the start/stop cost, and no
		// goroutines outlive the call that needed them.
		s.pool.Start()
		defer s.pool.Stop()
	}

	startThroughput := s.dayThr
	startDowntime := s.dayDown
	startSolar := s.daySolar
	lowSoC := s.dayLow
	clear(lowSoC)
	for i, n := range s.nodes {
		st := n.Stats()
		startThroughput[i] = st.Throughput
		startDowntime[i] = st.Downtime
		startSolar[i] = st.SolarEnergy
	}

	if err := s.submitJobs(); err != nil {
		return DayStats{}, err
	}

	var sinceControl time.Duration
	for tod := time.Duration(0); tod < 24*time.Hour; tod += s.cfg.Tick {
		inWindow := tod >= s.cfg.WindowStart && tod < s.cfg.WindowEnd
		power := day.PowerAt(tod)
		if s.inj != nil {
			// The injector ticks serially before the node fan-out: all its
			// RNG draws and node mutations happen here, in fixed order, so
			// fault runs stay bit-identical at any worker count.
			fs := s.inj.Tick(s.clock, s.cfg.Tick)
			s.applyFaults(fs)
			power = units.Watt(float64(power) * fs.PVFactor)
		}
		if err := s.step(power, inWindow); err != nil {
			return DayStats{}, err
		}
		if s.inj != nil {
			s.applyDegradedTransitions()
		}
		s.clock += s.cfg.Tick
		s.telTicks.Inc()
		if s.eolAt == 0 && s.fleetSum.EOLIndex >= 0 {
			// The shard summaries already located the first node past the
			// end-of-life line, replacing the per-tick fleet scan.
			nd := s.nodes[s.fleetSum.EOLIndex]
			s.eolAt = s.clock
			s.telEOL.Inc()
			s.tel.Emit(s.clock, telemetry.EventBatteryEOL, nd.ID(),
				fmt.Sprintf("health %.3f below end-of-life threshold", nd.Stats().Health))
		}

		if inWindow {
			// The shard workers already binned this tick's SoC samples
			// (and accumulated low-SoC dwell into dayLow); the per-shard
			// histograms merge bin-by-bin, exactly.
			if err := s.socHist.Merge(s.fleetSum.Hist); err != nil {
				return DayStats{}, err
			}
			if s.tel != nil {
				// The telemetry histogram uses right-closed buckets where
				// stats uses left-closed bins, so it cannot be back-filled
				// from the shard bins; it keeps its own per-sample pass,
				// gated on a recorder actually being attached.
				for _, n := range s.nodes {
					s.telSoC.Observe(n.Battery().SoC())
				}
			}
			sinceControl += s.cfg.Tick
			if sinceControl >= s.cfg.ControlPeriod {
				sinceControl = 0
				s.reapCompleted()
				if err := s.placePending(); err != nil {
					return DayStats{}, err
				}
				controlStart := time.Time{}
				if s.telControl != nil {
					controlStart = time.Now()
				}
				if err := s.policy.Control(s.ctx()); err != nil {
					return DayStats{}, err
				}
				if s.telControl != nil {
					s.telControl.Observe(time.Since(controlStart).Seconds())
				}
				s.updateFleetGauges()
				if s.cfg.RecordSeries {
					for _, n := range s.nodes {
						s.series = append(s.series, MetricsPoint{
							At:      s.clock,
							NodeID:  n.ID(),
							Metrics: n.Metrics(),
							SoC:     n.Battery().SoC(),
						})
					}
				}
			}
		}
	}

	s.reapCompleted()
	s.telDays.Inc()

	for i, n := range s.nodes {
		st := n.Stats()
		ds.Throughput += st.Throughput - startThroughput[i]
		if d := st.Downtime - startDowntime[i]; d > ds.Downtime {
			ds.Downtime = d
		}
		if lowSoC[i] > ds.LowSoCTime {
			ds.LowSoCTime = lowSoC[i]
		}
		ds.SolarEnergy += st.SolarEnergy - startSolar[i]
	}
	s.history = append(s.history, ds)
	return ds, nil
}

// History returns the per-day stats of every day this simulator has ever
// completed — including days inherited from a restored checkpoint, which
// the Result of a resumed Run does not cover.
func (s *Simulator) History() []DayStats { return slices.Clone(s.history) }

// step advances every node one tick, allocating the shared solar feed:
// loads first (proportional water-fill), then charging (lowest SoC first).
//
// All grant decisions — which read cross-node state (demands, SoC ordering,
// charge requests) — happen before any node advances, so the final physics
// stepping is embarrassingly parallel and fans out over the worker pool.
// The prologue writes only into the simulator's reusable scratch buffers:
// the SoC order is computed at most once per step and shared by every pass
// that needs it, and the steady-state path performs zero heap allocations.
func (s *Simulator) step(power units.Watt, inWindow bool) error {
	remaining := float64(power)

	if !inWindow {
		// Overnight: everything charges, lowest SoC first. Requests are
		// read and grants assigned up front; a grant equals what the
		// charger can absorb this tick, so no redistribution pass is
		// needed after stepping. With no power to hand out the SoC sort is
		// skipped entirely — the common case for most of the night.
		clear(s.chargeGrant)
		if remaining > 0 {
			for _, idx := range s.bySoC() {
				if remaining <= 0 {
					break
				}
				g := min(remaining, float64(s.nodes[idx].ChargeRequest()))
				s.chargeGrant[idx] = g
				remaining -= g
			}
		}
		return s.stepNodes(true)
	}

	// Pass 1: load allocation proportional to demand. Demands are grossed
	// up to bus-side power so the solar-direct conversion loss does not
	// leave every node with a sliver of battery bridging.
	demands := s.demands
	var totalDemand float64
	eff := s.cfg.Node.Losses.SolarDirectEfficiency
	for i, nd := range s.nodes {
		demands[i] = float64(nd.Demand()) / eff
		totalDemand += demands[i]
	}
	loadGrant := s.loadGrant
	clear(loadGrant)
	if totalDemand > 0 {
		scale := 1.0
		if remaining < totalDemand {
			scale = remaining / totalDemand
		}
		for i := range loadGrant {
			loadGrant[i] = demands[i] * scale
		}
	}
	var granted float64
	for _, g := range loadGrant {
		granted += g
	}
	surplus := remaining - granted
	if surplus < 0 {
		surplus = 0
	}

	// Pass 2: charge allocation, lowest SoC first. No surplus (demand ate
	// the whole feed) skips the sort — frequent under scarce solar.
	clear(s.chargeGrant)
	if surplus > 0 {
		for _, idx := range s.bySoC() {
			if surplus <= 0 {
				break
			}
			req := float64(s.nodes[idx].ChargeRequest())
			g := min(surplus, req)
			s.chargeGrant[idx] = g
			surplus -= g
		}
	}

	return s.stepNodes(false)
}

// stepNode advances one node with the grants the step prologue assigned,
// selecting the offline (overnight charging) or in-window path.
func (s *Simulator) stepNode(i int, offline bool) error {
	if offline {
		_, err := s.nodes[i].StepOffline(s.cfg.Tick, units.Watt(s.chargeGrant[i]))
		return err
	}
	_, err := s.nodes[i].Step(s.cfg.Tick, units.Watt(s.loadGrant[i]), units.Watt(s.chargeGrant[i]))
	return err
}

// stepNodes advances every node shard by shard and merges the per-shard
// summaries into fleetSum. Each shard's physics touches only state its
// nodes own (packs, servers, aging trackers, power tables) plus atomic
// telemetry counters, so any assignment of shards to workers computes the
// same fleet state. Errors are reduced in shard order — within a shard
// the walk is ascending, so the first failing node by index wins — and
// the summary merge also runs in shard order, so neither the reported
// error nor any aggregate depends on goroutine scheduling.
func (s *Simulator) stepNodes(offline bool) error {
	s.stepOffline = offline
	nShards := len(s.shardSums)
	if s.parallel {
		// Run distributes shards across the pool's workers (or executes
		// serially if RunDay has not started the pool — the results are
		// identical either way, that is the whole contract).
		s.pool.Run(nShards)
	} else {
		for si := 0; si < nShards; si++ {
			s.runShard(si)
		}
	}
	for si := 0; si < nShards; si++ {
		if err := s.shardErrs[si]; err != nil {
			return err
		}
	}
	s.fleetSum.Reset()
	for si := range s.shardSums {
		if err := s.fleetSum.Add(&s.shardSums[si]); err != nil {
			return err
		}
	}
	s.fleetSum.Valid = true
	return nil
}

// runShard advances one shard's nodes in ascending index order, folding
// each into the shard's private summary. It is the pool's work unit: no
// shared mutable state beyond the shard's own slots, no allocations
// (Changed appends stay within the capacity reserved at construction).
func (s *Simulator) runShard(si int) {
	sh := s.fleet.Shards()[si]
	sum := &s.shardSums[si]
	sum.Reset()
	s.shardErrs[si] = nil
	offline := s.stepOffline
	for i := sh.Lo; i < sh.Hi; i++ {
		if err := s.stepNode(i, offline); err != nil {
			s.shardErrs[si] = err
			return
		}
		nd := s.nodes[i]
		soc := sum.ObserveNode(i, nd, !offline)
		if !offline && soc < aging.DeepDischargeSoC {
			// Fig 18's per-node low-SoC dwell; dayLow is indexed by node,
			// so shards write disjoint slots.
			s.dayLow[i] += s.cfg.Tick
		}
		if s.inj != nil && nd.MetricsSuspect() != s.degraded[i] {
			// degraded is only read here; the serial merge phase
			// (applyDegradedTransitions) flips it after the fan-out.
			sum.ObserveChanged(i)
		}
	}
	sum.Valid = true
}

// applyFaults pushes one tick of injector output onto the fleet. It runs
// serially, before the node-physics fan-out, so every mutation and
// telemetry emission happens in deterministic node order.
func (s *Simulator) applyFaults(fs *faults.TickState) {
	for _, inj := range fs.Injected {
		s.telFaults.Inc()
		var nodeID string
		if inj.Node >= 0 && inj.Node < len(s.nodes) {
			nodeID = s.nodes[inj.Node].ID()
		}
		s.tel.Emit(s.clock, telemetry.EventFaultInjected, nodeID, inj.String())
	}
	for i, nd := range s.nodes {
		nf := fs.Nodes[i]
		nd.SetSensorFault(nf.Sensor)
		nd.SetUtilityAvailable(!nf.UtilityDown)
		if nf.CapacityFade > 0 || nf.ResistanceGrowth > 0 {
			nd.InjectBatteryWear(nf.CapacityFade, nf.ResistanceGrowth, 0)
		}
		if nf.TargetHealth > 0 {
			// Premature EOL: one shock dropping the pack to the target
			// health, with resistance growth riding along at half the fade
			// (aged packs weaken on both axes, §II-B).
			if fade := nd.Stats().Health - nf.TargetHealth; fade > 0 {
				nd.InjectBatteryWear(fade, 0.5*fade, 0)
			}
		}
	}
}

// applyDegradedTransitions emits one telemetry event per suspect-state
// edge, so traces show when each node entered and left degraded metrics
// mode. The shard workers detected the edges (Summary.Changed, ascending
// within each shard); walking the shards in order here visits nodes in
// exactly the ascending-index order the old serial scan used, so event
// order is unchanged — and the serial phase now costs O(edges), not
// O(nodes).
func (s *Simulator) applyDegradedTransitions() {
	for si := range s.shardSums {
		for _, i := range s.shardSums[si].Changed {
			nd := s.nodes[i]
			suspect := !s.degraded[i]
			s.degraded[i] = suspect
			s.telDegraded.Inc()
			if suspect {
				s.tel.Emit(s.clock, telemetry.EventDegradedMode, nd.ID(),
					fmt.Sprintf("metrics quarantined (%d rejected, %d dropped samples)",
						nd.SensorRejected(), nd.SensorDropped()))
			} else {
				s.tel.Emit(s.clock, telemetry.EventDegradedRecovered, nd.ID(),
					"sensor chain trusted again")
			}
		}
	}
}

// updateFleetGauges refreshes the fleet-level telemetry gauges once per
// control period: simulated clock, worst battery health (the EOL criterion
// of §II-B), and average state of charge — all read from the current
// tick's merged shard summary, so the gauge update is O(1) instead of a
// fleet rescan.
func (s *Simulator) updateFleetGauges() {
	if s.tel == nil {
		return
	}
	s.telClock.Set(s.clock.Seconds())
	sum := &s.fleetSum
	if !sum.Valid || sum.Nodes == 0 {
		return
	}
	s.telMinHealth.Set(min(sum.MinHealth, 1.0))
	s.telFleetAvgSoC.Set(sum.SoCSum / float64(sum.Nodes))
	if s.inj != nil {
		s.telSuspect.Set(float64(sum.Suspect))
	}
}

// controlBounds are the histogram buckets (seconds) for policy Control wall
// time — sub-microsecond through one second covers every fleet size the
// engine targets.
func controlBounds() []float64 {
	return []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1}
}

// bySoC returns node indices sorted by ascending state of charge (ties by
// ascending index). The SoC snapshot is filled by the fleet's columnar
// batch kernels — a dense sweep of the per-chemistry slabs instead of one
// interface call per node — and the permutation comes from the radix
// order in socorder.go: O(n) per control pass, zero allocations, and
// byte-identical to the stable comparison sort it replaced (the order is
// a strict total order, so any correct sort produces the same bytes).
// Ordering a pre-read snapshot is exact: nothing mutates pack state
// between the snapshot and the grant assignment that consumes it.
func (s *Simulator) bySoC() []int {
	s.fleet.SoCColumn(s.socSnap)
	sortBySoC(s.socOrder, s.socTmp, s.socKey, s.socSnap)
	return s.socOrder
}

// Run simulates the given weather sequence and assembles the result.
// Result.Days and the series buffer are sized up front from the sequence
// length and the configured control cadence, so a long run appends into
// preallocated capacity instead of repeatedly regrowing.
func (s *Simulator) Run(weathers []solar.Weather) (*Result, error) {
	return s.RunWithCheckpoints(weathers, 0, nil)
}

// RunUntilEndOfLife draws weather from the location until the first battery
// reaches end-of-life or maxDays elapse. It reports the fleet lifetime.
func (s *Simulator) RunUntilEndOfLife(loc solar.Location, maxDays int) (*Result, error) {
	if err := loc.Validate(); err != nil {
		return nil, err
	}
	if maxDays <= 0 {
		return nil, fmt.Errorf("sim: maxDays must be positive, got %d", maxDays)
	}
	res := &Result{Policy: s.policy.Name()}
	for d := 0; d < maxDays; d++ {
		ds, err := s.RunDay(loc.DrawWeather(s.wxRng.Rand))
		if err != nil {
			return nil, err
		}
		res.Days = append(res.Days, ds)
		res.Throughput += ds.Throughput
		if s.eolAt > 0 {
			break
		}
	}
	s.finish(res)
	return res, nil
}

// controlsPerDay bounds how many control periods fall inside one operating
// window — the per-day growth rate of the series buffer under RecordSeries.
func (s *Simulator) controlsPerDay() int {
	return int((s.cfg.WindowEnd-s.cfg.WindowStart)/s.cfg.ControlPeriod) + 1
}

// finish populates the result's fleet-wide fields.
func (s *Simulator) finish(res *Result) {
	res.Nodes = make([]NodeSummary, 0, len(s.nodes))
	for _, n := range s.nodes {
		st := n.Stats()
		res.Nodes = append(res.Nodes, NodeSummary{
			ID:         n.ID(),
			Metrics:    n.Metrics(),
			Health:     st.Health,
			SoC:        st.SoC,
			Throughput: st.Throughput,
			Downtime:   st.Downtime,
			Counters:   n.Battery().Counters(),
		})
	}
	res.SoCHistogram = s.socHist
	res.Series = s.series
	res.FleetLifetime = s.eolAt
}
