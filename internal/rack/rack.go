// Package rack implements the second distributed energy-storage
// architecture of DSN'15 Fig 7: per-rack integration, where several servers
// share one pooled battery (the Facebook Open Rack style [3]), as opposed
// to the per-server integration of package node (the Google style [1]).
//
// A rack routes the shared solar grant across its servers, bridges the
// collective deficit from the pooled battery, and sheds servers
// individually when the pool cannot carry all of them — so a deep pool
// failure is a multi-server event, the availability trade-off the paper's
// architecture comparison cares about.
package rack

import (
	"fmt"
	"time"

	"github.com/green-dc/baat/internal/aging"
	"github.com/green-dc/baat/internal/battery"
	"github.com/green-dc/baat/internal/powernet"
	"github.com/green-dc/baat/internal/server"
	"github.com/green-dc/baat/internal/units"
)

// Config assembles one rack.
type Config struct {
	// Servers is the number of compute nodes sharing the pool.
	Servers int
	// ServerSpec configures each server.
	ServerSpec server.Spec
	// PoolSpec is the shared battery pool. A fair comparison against the
	// per-server architecture gives the pool the same total capacity the
	// individual units would have (battery.Parallel of the unit spec).
	PoolSpec battery.Spec
	// AgingConfig parameterizes the pool's damage model.
	AgingConfig aging.ModelConfig
	// Losses are the conversion efficiencies on the power path.
	Losses powernet.Losses
	// Ambient is the machine-room temperature.
	Ambient units.Celsius
	// TableCapacity bounds the sensor history log.
	TableCapacity int
	// SoCFloor is the pool's protective discharge floor.
	SoCFloor float64
}

// DefaultConfig returns a rack equivalent to three per-server nodes of the
// default configuration: three servers sharing a pool of six 35 Ah units.
func DefaultConfig() Config {
	return Config{
		Servers:       3,
		ServerSpec:    server.DefaultSpec(),
		PoolSpec:      battery.Parallel(battery.DefaultSpec(), 6),
		AgingConfig:   aging.DefaultModelConfig(),
		Losses:        powernet.DefaultLosses(),
		Ambient:       25,
		TableCapacity: 2048,
		SoCFloor:      0.05,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Servers <= 0 {
		return fmt.Errorf("rack: need at least one server, got %d", c.Servers)
	}
	if err := c.ServerSpec.Validate(); err != nil {
		return err
	}
	if err := c.PoolSpec.Validate(); err != nil {
		return err
	}
	if err := c.AgingConfig.Validate(); err != nil {
		return err
	}
	if err := c.Losses.Validate(); err != nil {
		return err
	}
	if c.TableCapacity <= 0 {
		return fmt.Errorf("rack: table capacity must be positive, got %d", c.TableCapacity)
	}
	if c.SoCFloor < 0 || c.SoCFloor >= 1 {
		return fmt.Errorf("rack: SoC floor must be in [0, 1), got %v", c.SoCFloor)
	}
	return nil
}

// StepResult summarizes one tick of rack operation.
type StepResult struct {
	// Demand is the aggregate draw of the servers that wanted power.
	Demand units.Watt
	// SolarUsed is solar power consumed at the bus.
	SolarUsed units.Watt
	// BatteryPower is pool terminal power (positive discharging).
	BatteryPower units.Watt
	// ServersDown is how many servers spent the tick dark.
	ServersDown int
	// WorkDone is the compute completed this tick.
	WorkDone float64
}

// Rack is one shared-pool battery group.
//
// A single Rack is not safe for concurrent use, but — like node.Node —
// distinct Racks own all state their Step/StepOffline touches, so a fleet
// harness may step disjoint racks from multiple goroutines with results
// identical to serial order.
type Rack struct {
	id      string
	cfg     Config
	servers []*server.Server
	pool    *battery.Pack
	tracker *aging.Tracker
	model   *aging.Model
	table   *powernet.PowerTable

	clock      time.Duration
	downTicks  int
	totalTicks int
	serverDown []time.Duration
}

// New assembles a rack.
func New(id string, cfg Config) (*Rack, error) {
	if id == "" {
		return nil, fmt.Errorf("rack: id must not be empty")
	}
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("rack %s: %w", id, err)
	}
	pool, err := battery.New(cfg.PoolSpec)
	if err != nil {
		return nil, err
	}
	tracker, err := aging.NewTracker(cfg.PoolSpec.LifetimeThroughput)
	if err != nil {
		return nil, err
	}
	model, err := aging.NewModel(cfg.AgingConfig, cfg.PoolSpec.NominalCapacity)
	if err != nil {
		return nil, err
	}
	table, err := powernet.NewPowerTable(cfg.TableCapacity)
	if err != nil {
		return nil, err
	}
	r := &Rack{
		id:         id,
		cfg:        cfg,
		pool:       pool,
		tracker:    tracker,
		model:      model,
		table:      table,
		serverDown: make([]time.Duration, cfg.Servers),
	}
	// The rack's servers live in one contiguous slab (initialized in
	// place), the same struct-of-arrays layout internal/fleet uses for
	// whole-fleet stepping; r.servers holds views into it.
	slab := make([]server.Server, cfg.Servers)
	r.servers = make([]*server.Server, 0, cfg.Servers)
	for i := 0; i < cfg.Servers; i++ {
		if err := server.NewInto(&slab[i], fmt.Sprintf("%s/server-%d", id, i), cfg.ServerSpec); err != nil {
			return nil, err
		}
		r.servers = append(r.servers, &slab[i])
	}
	return r, nil
}

// ID returns the rack identifier.
func (r *Rack) ID() string { return r.id }

// Servers exposes the compute nodes (shared; the slice is a copy).
func (r *Rack) Servers() []*server.Server {
	return append([]*server.Server(nil), r.servers...)
}

// Pool exposes the shared battery.
func (r *Rack) Pool() *battery.Pack { return r.pool }

// Metrics returns the pool's five aging metrics.
func (r *Rack) Metrics() aging.Metrics { return r.tracker.Metrics() }

// AgingModel exposes the pool's damage integrator.
func (r *Rack) AgingModel() *aging.Model { return r.model }

// Demand returns the aggregate power wanted by servers with active VMs.
func (r *Rack) Demand() units.Watt {
	var total units.Watt
	for _, s := range r.servers {
		if s.ActiveVMCount() == 0 {
			continue
		}
		if s.Powered() {
			total += s.Power()
			continue
		}
		s.SetPowered(true)
		total += s.Power()
		s.SetPowered(false)
	}
	return total
}

// ChargeRequest returns the bus power the pool could absorb this tick.
func (r *Rack) ChargeRequest() units.Watt {
	if r.pool.SoC() >= 1 {
		return 0
	}
	v := float64(r.pool.OpenCircuitVoltage())
	maxI := float64(r.cfg.PoolSpec.MaxChargeCurrent)
	if soc := r.pool.SoC(); soc > 0.9 {
		maxI *= units.Clamp((1-soc)/0.1, 0.05, 1)
	}
	return units.Watt(v * maxI / r.cfg.Losses.ChargerEfficiency)
}

// Step advances the rack by dt with the given solar grants. When the pool
// cannot bridge the full deficit, servers are shed lowest-utilization-first
// until the remainder is supportable.
func (r *Rack) Step(dt time.Duration, solarForLoad, solarForCharge units.Watt) (StepResult, error) {
	if dt <= 0 {
		return StepResult{}, fmt.Errorf("rack %s: step duration must be positive, got %v", r.id, dt)
	}
	if solarForLoad < 0 || solarForCharge < 0 {
		return StepResult{}, fmt.Errorf("rack %s: negative solar allocation", r.id)
	}
	res := StepResult{}

	// Power on every server that has work, then shed until the supply
	// (solar + pool) can carry the set.
	active := make([]*server.Server, 0, len(r.servers))
	for _, s := range r.servers {
		if s.ActiveVMCount() > 0 {
			s.SetPowered(true)
			active = append(active, s)
		} else {
			s.SetPowered(false)
		}
	}
	solarDeliverable := float64(solarForLoad) * r.cfg.Losses.SolarDirectEfficiency
	poolAvailable := !r.pool.CutOff() && r.pool.SoC() > r.cfg.SoCFloor
	maxPool := 0.0
	if poolAvailable {
		maxPool = float64(r.pool.MaxDischargePower()) * r.cfg.Losses.InverterEfficiency
	}

	demand := func() float64 {
		var d float64
		for _, s := range active {
			if s.Powered() {
				d += float64(s.Power())
			}
		}
		return d
	}
	// Shed lowest-utilization first: the cheapest compute to checkpoint.
	for demand() > solarDeliverable+maxPool {
		var victim *server.Server
		for _, s := range active {
			if !s.Powered() {
				continue
			}
			if victim == nil || s.ActiveUtilization() < victim.ActiveUtilization() {
				victim = s
			}
		}
		if victim == nil {
			break
		}
		victim.SetPowered(false)
		res.ServersDown++
	}

	d := demand()
	res.Demand = units.Watt(d)
	var sr battery.StepResult
	var err error
	if deficit := d - solarDeliverable; deficit > 0 && d > 0 {
		need := units.Watt(deficit / r.cfg.Losses.InverterEfficiency)
		sr, err = r.pool.Discharge(need, dt, r.cfg.Ambient)
		if err != nil {
			return StepResult{}, err
		}
		if sr.CutOff {
			// The pool tripped mid-step: the whole rack goes dark.
			for _, s := range active {
				if s.Powered() {
					s.SetPowered(false)
					res.ServersDown++
				}
			}
			sr = battery.StepResult{}
		} else {
			res.BatteryPower = units.Watt(float64(sr.Voltage) * float64(sr.Current))
			res.SolarUsed = solarForLoad
		}
	} else if d > 0 {
		res.SolarUsed = units.Watt(d / r.cfg.Losses.SolarDirectEfficiency)
	}

	// Charging when the pool is not discharging.
	if solarForCharge > 0 && res.BatteryPower <= 0 {
		chargePower := units.Watt(float64(solarForCharge) * r.cfg.Losses.ChargerEfficiency)
		cr, cerr := r.pool.Charge(chargePower, dt, r.cfg.Ambient)
		if cerr != nil {
			return StepResult{}, cerr
		}
		if cr.Charge != 0 {
			accepted := -float64(cr.Energy) / dt.Hours()
			res.SolarUsed += units.Watt(accepted / r.cfg.Losses.ChargerEfficiency)
			res.BatteryPower = units.Watt(-accepted)
			sr = cr
		}
	} else if res.BatteryPower == 0 {
		if rerr := r.pool.Rest(dt, r.cfg.Ambient); rerr != nil {
			return StepResult{}, rerr
		}
	}

	// Advance compute and bookkeeping.
	for i, s := range r.servers {
		res.WorkDone += s.Step(dt)
		if !s.Powered() && s.ActiveVMCount() > 0 {
			r.serverDown[i] += dt
		}
	}
	r.clock += dt
	r.totalTicks++
	if res.ServersDown > 0 {
		r.downTicks++
	}

	sample := aging.Sample{
		Dt:          dt,
		Current:     sr.Current,
		SoC:         r.pool.SoC(),
		Temperature: r.pool.Temperature(),
	}
	if err := r.tracker.Observe(sample); err != nil {
		return StepResult{}, err
	}
	if err := r.model.Observe(sample); err != nil {
		return StepResult{}, err
	}
	r.pool.ApplyDegradation(r.model.Degradation())
	r.table.Record(powernet.Reading{
		At:          r.clock,
		Current:     sr.Current,
		Voltage:     r.pool.TerminalVoltage(sr.Current),
		Temperature: r.pool.Temperature(),
		SoC:         r.pool.SoC(),
	})
	return res, nil
}

// StepOffline advances the rack through a tick outside the operating
// window: servers are off by schedule (no downtime accounting) while the
// pool charges from any solar grant or rests.
func (r *Rack) StepOffline(dt time.Duration, solarForCharge units.Watt) (StepResult, error) {
	if dt <= 0 {
		return StepResult{}, fmt.Errorf("rack %s: step duration must be positive, got %v", r.id, dt)
	}
	if solarForCharge < 0 {
		return StepResult{}, fmt.Errorf("rack %s: negative solar allocation %v", r.id, solarForCharge)
	}
	res := StepResult{}
	for _, s := range r.servers {
		s.SetPowered(false)
	}
	var sr battery.StepResult
	if solarForCharge > 0 {
		chargePower := units.Watt(float64(solarForCharge) * r.cfg.Losses.ChargerEfficiency)
		cr, err := r.pool.Charge(chargePower, dt, r.cfg.Ambient)
		if err != nil {
			return StepResult{}, err
		}
		if cr.Charge != 0 {
			accepted := -float64(cr.Energy) / dt.Hours()
			res.SolarUsed = units.Watt(accepted / r.cfg.Losses.ChargerEfficiency)
			res.BatteryPower = units.Watt(-accepted)
			sr = cr
		}
	} else {
		if rerr := r.pool.Rest(dt, r.cfg.Ambient); rerr != nil {
			return StepResult{}, rerr
		}
	}
	r.clock += dt
	sample := aging.Sample{
		Dt:          dt,
		Current:     sr.Current,
		SoC:         r.pool.SoC(),
		Temperature: r.pool.Temperature(),
	}
	if err := r.tracker.Observe(sample); err != nil {
		return StepResult{}, err
	}
	if err := r.model.Observe(sample); err != nil {
		return StepResult{}, err
	}
	r.pool.ApplyDegradation(r.model.Degradation())
	r.table.Record(powernet.Reading{
		At:          r.clock,
		Current:     sr.Current,
		Voltage:     r.pool.TerminalVoltage(sr.Current),
		Temperature: r.pool.Temperature(),
		SoC:         r.pool.SoC(),
	})
	return res, nil
}

// Stats aggregates rack-level accounting.
type Stats struct {
	// Health is the pool's remaining-capacity fraction.
	Health float64
	// SoC is the pool's present state of charge.
	SoC float64
	// Throughput is total compute completed.
	Throughput float64
	// WorstServerDowntime is the largest per-server dark time.
	WorstServerDowntime time.Duration
	// SheddingFraction is the fraction of ticks with at least one server
	// shed.
	SheddingFraction float64
}

// Stats returns the accumulated accounting.
func (r *Rack) Stats() Stats {
	s := Stats{
		Health: r.pool.Health(),
		SoC:    r.pool.SoC(),
	}
	for i, srv := range r.servers {
		s.Throughput += srv.Throughput()
		if r.serverDown[i] > s.WorstServerDowntime {
			s.WorstServerDowntime = r.serverDown[i]
		}
	}
	if r.totalTicks > 0 {
		s.SheddingFraction = float64(r.downTicks) / float64(r.totalTicks)
	}
	return s
}

// AtEndOfLife reports whether the pool fell below 80 % health.
func (r *Rack) AtEndOfLife() bool { return r.pool.Health() < battery.EndOfLifeHealth }
