package faults

import (
	"fmt"
	"time"
)

// TargetState is the serialized activation bookkeeping of one
// (rule, node) pair.
type TargetState struct {
	Node  int           `json:"node"`
	Until time.Duration `json:"until"`
	Open  bool          `json:"open"`
	Fired bool          `json:"fired"`
}

// RuleState is the serialized activation state of one rule across its
// targets. The rule itself recompiles from Config; only the live
// bookkeeping is state.
type RuleState struct {
	Targets []TargetState `json:"targets"`
}

// InjectorState is the serializable state of an Injector: its private
// stream position plus every rule's activation bookkeeping.
type InjectorState struct {
	RNG   []byte      `json:"rng"`
	Rules []RuleState `json:"rules"`
}

// Snapshot captures the injector's state.
func (inj *Injector) Snapshot() InjectorState {
	b, _ := inj.rng.MarshalBinary() // never fails for PCG sources
	st := InjectorState{RNG: b, Rules: make([]RuleState, len(inj.rules))}
	for i, rs := range inj.rules {
		ts := make([]TargetState, len(rs.targets))
		for j, t := range rs.targets {
			ts[j] = TargetState{Node: t.node, Until: t.until, Open: t.open, Fired: t.fired}
		}
		st.Rules[i] = RuleState{Targets: ts}
	}
	return st
}

// Restore overwrites the injector's state from a snapshot taken from an
// injector compiled from the same Config and fleet size. The snapshot's
// shape must match the compiled rules exactly; a mismatch means the
// checkpoint belongs to a different fault plan and is rejected.
func (inj *Injector) Restore(st InjectorState) error {
	if len(st.RNG) == 0 {
		return fmt.Errorf("faults: restore: empty rng state")
	}
	if len(st.Rules) != len(inj.rules) {
		return fmt.Errorf("faults: restore: snapshot has %d rules, plan has %d",
			len(st.Rules), len(inj.rules))
	}
	for i, rs := range st.Rules {
		have := inj.rules[i].targets
		if len(rs.Targets) != len(have) {
			return fmt.Errorf("faults: restore: rule %d has %d targets, plan has %d",
				i, len(rs.Targets), len(have))
		}
		for j, t := range rs.Targets {
			if t.Node != have[j].node {
				return fmt.Errorf("faults: restore: rule %d target %d is node %d, plan has node %d",
					i, j, t.Node, have[j].node)
			}
			if t.Until < 0 {
				return fmt.Errorf("faults: restore: rule %d target %d has negative hold %v", i, j, t.Until)
			}
		}
	}
	if err := inj.rng.UnmarshalBinary(st.RNG); err != nil {
		return fmt.Errorf("faults: restore: %w", err)
	}
	for i := range inj.rules {
		for j := range inj.rules[i].targets {
			t := st.Rules[i].Targets[j]
			inj.rules[i].targets[j] = targetState{node: t.Node, until: t.Until, open: t.Open, fired: t.Fired}
		}
	}
	return nil
}
