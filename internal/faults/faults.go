// Package faults is the deterministic fault-injection layer of the
// reproduction. The paper's six-month prototype (DSN'15 §VI) did not run on
// a clean testbed: sensor DAQs glitched, PV generation dropped out, and
// batteries hit end-of-life mid-study. This package replays that messiness
// on demand — and, critically, replayably: an Injector owns its own seeded
// rand stream and resolves every fault decision serially, in rule-then-node
// order, at the top of each simulation tick, so a fixed seed plus a fixed
// schedule produces bit-identical runs at any worker count.
//
// Fault kinds compose across the stack:
//
//   - sensor faults corrupt the controller's *view* of a battery (the
//     samples feeding aging.Tracker and the power table) without touching
//     the physics — stuck, NaN, noisy, or dropped readings;
//   - battery faults are physical: sudden capacity loss, elevated internal
//     resistance, or premature end-of-life, injected into the aging model
//     as irreversible damage;
//   - power faults starve the supply side: PV dropout/derating windows and
//     utility brownouts that disable the grid-backup path;
//   - cluster faults (agent disconnect windows) drive the control-plane
//     chaos tests, exercising reconnect/backoff under a fixed schedule.
//
// Rules are either scheduled (Day/At/Duration pin an absolute window on the
// simulation clock) or probabilistic (a per-tick trigger probability with a
// per-activation duration). See docs/FAULTS.md for the schedule format and
// the determinism guarantee.
package faults

import (
	"fmt"
	"time"
)

// Kind enumerates the injectable fault classes.
type Kind string

// The fault kinds, grouped by the layer they attack.
const (
	// SensorStuck freezes the node's reported battery sample: the DAQ
	// repeats the last reading it delivered (current, SoC, temperature).
	SensorStuck Kind = "sensor_stuck"
	// SensorNaN corrupts the reported current to NaN — the classic failed
	// shunt/ADC symptom the Tracker's hardening rejects.
	SensorNaN Kind = "sensor_nan"
	// SensorNoise multiplies the reported current and perturbs SoC and
	// temperature with seeded Gaussian noise of relative sigma Magnitude.
	SensorNoise Kind = "sensor_noise"
	// SensorDrop loses the reading entirely: the tracker sees nothing and
	// the metrics go stale.
	SensorDrop Kind = "sensor_drop"

	// BatteryCapacityLoss permanently removes a Magnitude fraction of the
	// battery's nominal capacity (sudden cell failure).
	BatteryCapacityLoss Kind = "battery_capacity_loss"
	// BatteryResistanceGrowth permanently grows internal resistance by a
	// Magnitude fraction (accelerated grid corrosion).
	BatteryResistanceGrowth Kind = "battery_resistance_growth"
	// BatteryPrematureEOL fades capacity until health reaches Magnitude
	// (default 0.75, just under the 0.8 end-of-life line of §II-B).
	BatteryPrematureEOL Kind = "battery_premature_eol"

	// PVDropout derates the whole solar feed to (1 − Magnitude) of its
	// clean value while active (Magnitude 1 = full outage, e.g. an
	// inverter trip).
	PVDropout Kind = "pv_dropout"
	// UtilityBrownout disables the utility-backup path on the targeted
	// nodes while active (only observable with node.Config.UtilityBackup).
	UtilityBrownout Kind = "utility_brownout"

	// AgentDisconnect marks the targeted cluster agent down while active.
	// The simulation engine ignores it; the cluster chaos harness reads it
	// to decide which agent connections to sever each synthetic tick.
	AgentDisconnect Kind = "agent_disconnect"
)

// kindInfo classifies kinds for validation and dispatch.
var kindInfo = map[Kind]struct {
	oneShot   bool // fires once per activation instead of holding a window
	fleetWide bool // ignores Rule.Node
	defMag    float64
}{
	SensorStuck:             {defMag: 0},
	SensorNaN:               {defMag: 0},
	SensorNoise:             {defMag: 0.2},
	SensorDrop:              {defMag: 0},
	BatteryCapacityLoss:     {oneShot: true, defMag: 0.10},
	BatteryResistanceGrowth: {oneShot: true, defMag: 0.50},
	BatteryPrematureEOL:     {oneShot: true, defMag: 0.75},
	PVDropout:               {fleetWide: true, defMag: 1.0},
	UtilityBrownout:         {defMag: 0},
	AgentDisconnect:         {defMag: 0},
}

// Kinds lists every fault kind in a stable order.
func Kinds() []Kind {
	return []Kind{
		SensorStuck, SensorNaN, SensorNoise, SensorDrop,
		BatteryCapacityLoss, BatteryResistanceGrowth, BatteryPrematureEOL,
		PVDropout, UtilityBrownout, AgentDisconnect,
	}
}

// Rule describes one fault source. A rule is either scheduled — Day ≥ 1
// pins the activation to an absolute window starting on that simulated day
// at time-of-day At — or probabilistic — Probability > 0 arms an
// independent per-tick trigger. Exactly one of the two modes must be set.
type Rule struct {
	// Kind selects the fault class.
	Kind Kind

	// Node is the target node index; -1 targets every node (each node
	// gets its own activation state, and probabilistic rules draw one
	// trigger per node per tick). Fleet-wide kinds (PVDropout) ignore it.
	Node int

	// Day is the 1-based simulated day a scheduled fault starts; 0 selects
	// probabilistic mode.
	Day int

	// At is the time of day (offset from midnight) a scheduled fault
	// starts.
	At time.Duration

	// Duration is how long one activation holds. Scheduled windows may
	// span day boundaries. One-shot kinds (battery faults) ignore it.
	// Probabilistic activations with zero duration hold for a single tick.
	Duration time.Duration

	// Probability is the per-tick trigger chance of a probabilistic rule,
	// in (0, 1]. While an activation is already holding, no new trigger is
	// drawn.
	Probability float64

	// Magnitude is kind-specific: noise sigma (SensorNoise), capacity
	// fraction lost (BatteryCapacityLoss), resistance growth fraction
	// (BatteryResistanceGrowth), target health (BatteryPrematureEOL), or
	// PV derating depth (PVDropout). Zero selects the kind's default.
	Magnitude float64
}

// Validate checks one rule.
func (r Rule) Validate() error {
	info, ok := kindInfo[r.Kind]
	if !ok {
		return fmt.Errorf("faults: unknown kind %q", r.Kind)
	}
	scheduled := r.Day > 0
	probabilistic := r.Probability > 0
	if r.Day < 0 {
		return fmt.Errorf("faults: %s: day must be >= 0, got %d", r.Kind, r.Day)
	}
	if scheduled == probabilistic {
		return fmt.Errorf("faults: %s: exactly one of Day >= 1 (scheduled) or Probability > 0 (probabilistic) must be set", r.Kind)
	}
	if r.Probability < 0 || r.Probability > 1 {
		return fmt.Errorf("faults: %s: probability must be in [0, 1], got %v", r.Kind, r.Probability)
	}
	if r.At < 0 || r.At >= 24*time.Hour {
		return fmt.Errorf("faults: %s: start time of day must be in [0, 24h), got %v", r.Kind, r.At)
	}
	if r.Duration < 0 {
		return fmt.Errorf("faults: %s: duration must be non-negative, got %v", r.Kind, r.Duration)
	}
	if scheduled && !info.oneShot && r.Duration == 0 {
		return fmt.Errorf("faults: %s: scheduled window needs a positive duration", r.Kind)
	}
	if r.Magnitude < 0 {
		return fmt.Errorf("faults: %s: magnitude must be non-negative, got %v", r.Kind, r.Magnitude)
	}
	switch r.Kind {
	case SensorNoise, BatteryCapacityLoss, BatteryPrematureEOL, PVDropout:
		if r.Magnitude > 1 {
			return fmt.Errorf("faults: %s: magnitude must be in [0, 1], got %v", r.Kind, r.Magnitude)
		}
	}
	if !info.fleetWide && r.Node < -1 {
		return fmt.Errorf("faults: %s: node must be -1 (all) or a node index, got %d", r.Kind, r.Node)
	}
	return nil
}

// magnitude resolves the rule's effective magnitude.
func (r Rule) magnitude() float64 {
	if r.Magnitude > 0 {
		return r.Magnitude
	}
	return kindInfo[r.Kind].defMag
}

// Config is a complete fault plan: a seed for the injector's private rand
// stream plus the rule list. The zero value (no rules) injects nothing.
type Config struct {
	// Seed feeds the injector's own random substream (the rng.Faults
	// stream of this seed), kept separate from every simulation stream so
	// enabling faults never perturbs weather, job mix, or policy
	// tie-breaks. Zero lets the simulator copy its own seed in; the named
	// substream keeps the sequences independent even then.
	Seed int64
	// Rules are the fault sources, evaluated in order every tick.
	Rules []Rule
}

// Validate checks every rule.
func (c Config) Validate() error {
	for i, r := range c.Rules {
		if err := r.Validate(); err != nil {
			return fmt.Errorf("faults: rule %d: %w", i, err)
		}
	}
	return nil
}

// Enabled reports whether the plan injects anything.
func (c *Config) Enabled() bool { return c != nil && len(c.Rules) > 0 }

// SensorMode labels how a node's reported battery sample is corrupted this
// tick.
type SensorMode int

// Sensor corruption modes, in escalating order of information loss.
const (
	SensorOK SensorMode = iota
	ModeStuck
	ModeNaN
	ModeNoise
	ModeDrop
)

// String returns the mode name.
func (m SensorMode) String() string {
	switch m {
	case SensorOK:
		return "ok"
	case ModeStuck:
		return "stuck"
	case ModeNaN:
		return "nan"
	case ModeNoise:
		return "noise"
	case ModeDrop:
		return "drop"
	default:
		return fmt.Sprintf("SensorMode(%d)", int(m))
	}
}

// SensorFault is the per-tick sensor corruption applied to one node. The
// zero value means a healthy sensor chain. Noise values are drawn by the
// injector (serially, before the parallel node fan-out) so applying the
// fault inside a worker goroutine stays deterministic.
type SensorFault struct {
	// Mode selects the corruption.
	Mode SensorMode
	// Sigma is the relative noise amplitude (ModeNoise).
	Sigma float64
	// Noise holds the pre-drawn standard-normal values perturbing
	// (current, SoC, temperature) under ModeNoise.
	Noise [3]float64
}

// NodeFault is the resolved fault state of one node for one tick.
type NodeFault struct {
	// Sensor is the sensor-chain corruption in effect.
	Sensor SensorFault
	// CapacityFade is a one-shot capacity fraction to retire this tick.
	CapacityFade float64
	// ResistanceGrowth is a one-shot resistance growth to add this tick.
	ResistanceGrowth float64
	// TargetHealth, when positive, demands the battery be faded to this
	// health this tick (BatteryPrematureEOL).
	TargetHealth float64
	// UtilityDown disables the node's grid-backup path this tick.
	UtilityDown bool
	// AgentDown marks the node's cluster agent severed this tick (consumed
	// by the chaos harness, ignored by the simulation engine).
	AgentDown bool
}

// Injected records one fault activation for telemetry.
type Injected struct {
	// Kind is the activated fault class.
	Kind Kind
	// Node is the affected node index (-1 for fleet-wide faults).
	Node int
	// At is the simulation clock at activation.
	At time.Duration
	// Until is when the activation window closes (At for one-shots).
	Until time.Duration
	// Magnitude is the resolved magnitude.
	Magnitude float64
}

// String renders the activation for event logs.
func (i Injected) String() string {
	target := "fleet"
	if i.Node >= 0 {
		target = fmt.Sprintf("node %d", i.Node)
	}
	if i.Until > i.At {
		return fmt.Sprintf("%s on %s (magnitude %.3g, until %v)", i.Kind, target, i.Magnitude, i.Until)
	}
	return fmt.Sprintf("%s on %s (magnitude %.3g)", i.Kind, target, i.Magnitude)
}

// TickState is the fully resolved fault state for one tick: what the
// simulator applies before fanning node physics out to workers. The slices
// are owned by the injector and valid until the next Tick call.
type TickState struct {
	// PVFactor scales the solar feed (1 = clean, 0 = total dropout).
	PVFactor float64
	// Nodes holds per-node fault state, indexed like the fleet.
	Nodes []NodeFault
	// Injected lists fault activations that began this tick, for the
	// telemetry tracer.
	Injected []Injected
}
