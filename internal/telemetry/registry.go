package telemetry

import (
	"fmt"
	"math"
	"slices"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The nil Counter is valid
// and drops every update, which is what Registry lookups on a nil Recorder
// hand out — instrumented code never needs its own nil checks.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter by d. Non-positive deltas are ignored:
// counters only go up (the Prometheus contract).
func (c *Counter) Add(d int64) {
	if c == nil || d <= 0 {
		return
	}
	c.v.Add(d)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down, stored as atomic float bits.
// The nil Gauge is valid and drops every update.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add shifts the gauge by d.
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket histogram. Bounds are the inclusive upper
// edges of each bucket in ascending order; an implicit +Inf bucket catches
// everything above the last bound. The nil Histogram is valid and drops
// every observation.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Int64 // len(bounds)+1; last is the +Inf bucket
	count   atomic.Int64
	sumBits atomic.Uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Linear scan: telemetry histograms have a handful of buckets (the SoC
	// histogram mirrors Fig 19's seven bins), where a scan beats a binary
	// search on branch prediction.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// HistogramSnapshot is a point-in-time copy of a histogram.
type HistogramSnapshot struct {
	// Bounds are the bucket upper edges; Counts has one extra final entry
	// for the implicit +Inf bucket. Counts are per-bucket, not cumulative.
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
}

// snapshot copies the histogram. Buckets are read individually, so a
// concurrent Observe may straddle the copy; totals stay self-consistent
// enough for monitoring (exactness would need a global lock on the hot
// path, the wrong trade).
func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]int64, len(h.buckets)),
		Count:  h.count.Load(),
		Sum:    math.Float64frombits(h.sumBits.Load()),
	}
	for i := range h.buckets {
		s.Counts[i] = h.buckets[i].Load()
	}
	return s
}

// LinearBounds returns n evenly spaced bucket bounds covering (lo, hi]:
// the first bound is lo + (hi-lo)/n and the last is hi. Together with the
// implicit +Inf bucket this reproduces a fixed-bin histogram such as the
// seven SoC bins of Fig 19.
func LinearBounds(lo, hi float64, n int) []float64 {
	if n <= 0 || hi <= lo {
		return nil
	}
	out := make([]float64, n)
	step := (hi - lo) / float64(n)
	for i := range out {
		out[i] = lo + step*float64(i+1)
	}
	return out
}

// Registry holds named metrics. Lookups take a read lock; registration on
// first use takes the write lock once. Hot paths should capture the
// returned handle instead of re-looking-up per update.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// sanitizeName maps an arbitrary string onto the Prometheus metric-name
// alphabet [a-zA-Z_:][a-zA-Z0-9_:]* so a malformed name degrades the label
// rather than the exposition format. Telemetry must never be the thing
// that crashes the simulation.
func sanitizeName(name string) string {
	if name == "" {
		return "_"
	}
	ok := true
	for i := 0; i < len(name); i++ {
		if !isNameByte(name[i], i == 0) {
			ok = false
			break
		}
	}
	if ok {
		return name
	}
	b := []byte(name)
	for i := range b {
		if !isNameByte(b[i], i == 0) {
			b[i] = '_'
		}
	}
	return string(b)
}

func isNameByte(c byte, first bool) bool {
	switch {
	case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		return true
	case c >= '0' && c <= '9':
		return !first
	}
	return false
}

// Counter returns the named counter, creating it on first use. A nil
// registry returns a nil (no-op) counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	name = sanitizeName(name)
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok = r.counters[name]; ok {
		return c
	}
	c = &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the named gauge, creating it on first use. A nil registry
// returns a nil (no-op) gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	name = sanitizeName(name)
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok = r.gauges[name]; ok {
		return g
	}
	g = &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// bounds on first use. Later calls ignore bounds (first registration
// wins). A nil registry — or an empty bounds slice on first registration —
// returns a nil (no-op) histogram.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	name = sanitizeName(name)
	r.mu.RLock()
	h, ok := r.hists[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	if len(bounds) == 0 || !slices.IsSorted(bounds) {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok = r.hists[name]; ok {
		return h
	}
	h = &Histogram{
		bounds:  append([]float64(nil), bounds...),
		buckets: make([]atomic.Int64, len(bounds)+1),
	}
	r.hists[name] = h
	return h
}

// Snapshot is a point-in-time copy of every registered metric plus the
// event ring. Experiments assert on it (migrations per policy, DVFS caps)
// instead of scraping their own /metrics output.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
	Events     []Event                      `json:"events,omitempty"`
}

// Counter returns a counter value from the snapshot (0 when absent).
func (s Snapshot) Counter(name string) int64 { return s.Counters[name] }

// Gauge returns a gauge value from the snapshot (0 when absent).
func (s Snapshot) Gauge(name string) float64 { return s.Gauges[name] }

// snapshot copies all metrics.
func (r *Registry) snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.snapshot()
	}
	return s
}

// sortedNames returns map keys in lexical order for stable exposition.
func sortedNames[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	slices.Sort(out)
	return out
}

// formatFloat renders a float the way the Prometheus text format expects.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return fmt.Sprintf("%g", v)
}
