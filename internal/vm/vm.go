// Package vm provides the virtual-machine abstraction BAAT schedules: the
// prototype hosts every workload in a Xen VM so it can be spawned, paused,
// and migrated between server nodes (DSN'15 §V-B).
//
// Migration is the actuator behind aging hiding and the preferred slowdown
// action (§IV-C); it is not free — the VM is paused for a transfer period,
// which is how BAAT-h's low-efficiency migration shows up as a throughput
// penalty (§VI-F).
package vm

import (
	"fmt"
	"time"

	"github.com/green-dc/baat/internal/workload"
)

// Lifecycle is a VM lifecycle state.
type Lifecycle int

// VM lifecycle states.
const (
	Running Lifecycle = iota + 1
	Paused
	Migrating
	Completed
)

// String returns the state name.
func (s Lifecycle) String() string {
	switch s {
	case Running:
		return "running"
	case Paused:
		return "paused"
	case Migrating:
		return "migrating"
	case Completed:
		return "completed"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// DefaultMigrationTime is how long a live migration pauses the VM. The
// prototype's Xen stop-and-copy over gigabit Ethernet is on the order of a
// couple of minutes for the CloudSuite images.
const DefaultMigrationTime = 2 * time.Minute

// VM is one schedulable virtual machine. Not safe for concurrent use; the
// simulator owns all VMs and the control plane serializes commands.
type VM struct {
	id      string
	profile workload.Profile
	state   Lifecycle

	progress   float64       // work units completed (batch)
	elapsed    time.Duration // wall time while running (drives service phase)
	migrating  time.Duration // remaining migration pause
	migrations int
	pausedFor  time.Duration
}

// New creates a VM hosting the given workload profile.
func New(id string, p workload.Profile) (*VM, error) {
	if id == "" {
		return nil, fmt.Errorf("vm: id must not be empty")
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("vm %s: %w", id, err)
	}
	return &VM{id: id, profile: p, state: Running}, nil
}

// ID returns the VM identifier.
func (v *VM) ID() string { return v.id }

// Profile returns the hosted workload profile.
func (v *VM) Profile() workload.Profile { return v.profile }

// State returns the lifecycle state.
func (v *VM) State() Lifecycle { return v.state }

// Migrations returns how many times the VM has been migrated.
func (v *VM) Migrations() int { return v.migrations }

// PausedTime returns cumulative time spent paused or migrating — the
// performance overhead of management actions.
func (v *VM) PausedTime() time.Duration { return v.pausedFor }

// Progress returns completed work units (batch jobs) .
func (v *VM) Progress() float64 { return v.progress }

// Utilization returns the CPU share the VM demands right now.
// Completed, paused, and migrating VMs demand nothing.
func (v *VM) Utilization() float64 {
	if v.state != Running {
		return 0
	}
	p := v.profile
	if p.Service {
		// Services walk their phase pattern by wall time, one full cycle
		// every 8 hours (a typical diurnal request pattern).
		pos := v.elapsed.Hours() / 8
		return p.UtilizationAt(pos)
	}
	if p.WorkUnits <= 0 {
		return 0
	}
	return p.UtilizationAt(v.progress / p.WorkUnits)
}

// Pause checkpoints the VM (the prototype saves VM state when solar power
// disappears, §V-B).
func (v *VM) Pause() error {
	switch v.state {
	case Running:
		v.state = Paused
		return nil
	case Paused:
		return nil
	default:
		return fmt.Errorf("vm %s: cannot pause while %v", v.id, v.state)
	}
}

// Resume restarts a paused VM.
func (v *VM) Resume() error {
	switch v.state {
	case Paused:
		v.state = Running
		return nil
	case Running:
		return nil
	default:
		return fmt.Errorf("vm %s: cannot resume while %v", v.id, v.state)
	}
}

// BeginMigration pauses the VM for the given transfer time (use
// DefaultMigrationTime when in doubt).
func (v *VM) BeginMigration(transfer time.Duration) error {
	if transfer <= 0 {
		return fmt.Errorf("vm %s: migration transfer time must be positive", v.id)
	}
	if v.state != Running && v.state != Paused {
		return fmt.Errorf("vm %s: cannot migrate while %v", v.id, v.state)
	}
	v.state = Migrating
	v.migrating = transfer
	v.migrations++
	return nil
}

// Advance moves the VM forward by dt with the given effective speed — the
// product of DVFS frequency scale and host availability (0 when the host is
// down). It returns the work completed this step (0 for services; service
// throughput is accounted by the server from utilization served).
func (v *VM) Advance(dt time.Duration, speed float64) float64 {
	if dt <= 0 {
		return 0
	}
	switch v.state {
	case Migrating:
		v.migrating -= dt
		v.pausedFor += dt
		if v.migrating <= 0 {
			v.migrating = 0
			v.state = Running
		}
		return 0
	case Paused:
		v.pausedFor += dt
		return 0
	case Completed:
		return 0
	}
	if speed <= 0 {
		v.pausedFor += dt
		return 0
	}
	v.elapsed += dt
	util := v.Utilization()
	done := util * speed * dt.Hours()
	if v.profile.Service {
		return done
	}
	if remaining := v.profile.WorkUnits - v.progress; done >= remaining {
		done = remaining
		v.progress = v.profile.WorkUnits
		v.state = Completed
		return done
	}
	v.progress += done
	return done
}
