package battery

import (
	"testing"
	"testing/quick"
	"time"

	"github.com/green-dc/baat/internal/units"
)

func TestEstimateSoCInvertsVoltageModel(t *testing.T) {
	tests := []struct {
		soc float64
		i   units.Ampere
	}{
		{1.0, 0},
		{0.8, 5},
		{0.5, 10},
		{0.3, 2},
		{0.1, 1},
	}
	for _, tt := range tests {
		p, err := New(DefaultSpec(), WithInitialSoC(tt.soc))
		if err != nil {
			t.Fatal(err)
		}
		v := p.TerminalVoltage(tt.i)
		got := p.EstimateSoC(v, tt.i)
		if !units.NearlyEqual(got, tt.soc, 0.02) {
			t.Errorf("EstimateSoC(V at SoC %.2f, %.0fA) = %.3f", tt.soc, float64(tt.i), got)
		}
	}
}

func TestEstimateSoCOnAgedPack(t *testing.T) {
	// The estimator must use the aged resistance, or the IR compensation
	// under load would skew the reading.
	p, err := New(DefaultSpec(), WithInitialSoC(0.6))
	if err != nil {
		t.Fatal(err)
	}
	p.ApplyDegradation(Degradation{ResistanceGrowth: 4})
	v := p.TerminalVoltage(8)
	if got := p.EstimateSoC(v, 8); !units.NearlyEqual(got, 0.6, 0.02) {
		t.Errorf("EstimateSoC on aged pack = %.3f, want ≈0.6", got)
	}
}

func TestEstimateSoCClamped(t *testing.T) {
	p, err := New(DefaultSpec())
	if err != nil {
		t.Fatal(err)
	}
	if got := p.EstimateSoC(20, 0); got != 1 {
		t.Errorf("absurdly high voltage => SoC %v, want 1", got)
	}
	if got := p.EstimateSoC(5, 0); got != 0 {
		t.Errorf("absurdly low voltage => SoC %v, want 0", got)
	}
}

func TestEstimateSoCRoundTripProperty(t *testing.T) {
	f := func(rawSoC uint8, rawI uint8) bool {
		soc := units.Clamp(float64(rawSoC)/255, 0.05, 1)
		i := units.Ampere(float64(rawI % 15))
		p, err := New(DefaultSpec(), WithInitialSoC(soc))
		if err != nil {
			return false
		}
		got := p.EstimateSoC(p.TerminalVoltage(i), i)
		return units.NearlyEqual(got, soc, 0.03)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestEstimateSoCTracksDischarge(t *testing.T) {
	// Sensor-style usage: periodically estimate SoC from the loaded
	// terminal voltage while discharging; the estimate must track the true
	// state within a couple of points.
	p, err := New(DefaultSpec())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 120; i++ {
		res, err := p.Discharge(80, time.Minute, 25)
		if err != nil {
			t.Fatal(err)
		}
		est := p.EstimateSoC(res.Voltage, res.Current)
		if !units.NearlyEqual(est, p.SoC(), 0.05) {
			t.Fatalf("minute %d: estimate %.3f vs true %.3f", i, est, p.SoC())
		}
	}
}
