package experiments

import (
	"fmt"
	"time"

	"github.com/green-dc/baat/internal/core"
	"github.com/green-dc/baat/internal/rng"
	"github.com/green-dc/baat/internal/sim"
	"github.com/green-dc/baat/internal/solar"
)

// preAgeDays is how many accelerated days produce the "old" battery stage:
// at the default ×10 acceleration, 18 simulated days correspond to the
// April→October interval of §VI-B.
func preAgeDays(cfg Config) int {
	days := int(270 / cfg.Accel)
	if days < 2 {
		days = 2
	}
	return days
}

// runOneDay builds the prototype fleet, optionally ages it synchronously
// under the neutral e-Buff usage (§VI-B: "we regularly use the batteries
// and make them gradually and synchronously aging"), then measures one day
// of the given weather under the target policy with fresh metric logs.
// The measured day runs on a tighter PV array (the prototype's own scale)
// so that weather actually stresses the batteries.
func runOneDay(cfg Config, spec core.PolicySpec, w solar.Weather, old bool) (*sim.Simulator, sim.DayStats, error) {
	s, err := prototypeSimWithScale(cfg, specEBuff, tightScale)
	if err != nil {
		return nil, sim.DayStats{}, err
	}
	if old {
		// The neutral burn-in is identical for every (policy, weather)
		// cell: run it once, then fast-forward via the checkpoint memo.
		err := preAge(cfg, s, "neutral", func() (*sim.Simulator, error) {
			return prototypeSimWithScale(cfg, specEBuff, tightScale)
		})
		if err != nil {
			return nil, sim.DayStats{}, err
		}
		for _, n := range s.Nodes() {
			n.ResetMetrics()
		}
	}
	if err := s.SetPolicy(spec); err != nil {
		return nil, sim.DayStats{}, err
	}
	ds, err := s.RunDay(w)
	if err != nil {
		return nil, sim.DayStats{}, err
	}
	return s, ds, nil
}

// runOneDayOwnAging is the deployment variant of runOneDay used for the
// throughput comparison: the fleet ages under the *measured* policy, so the
// October batteries reflect six months of that scheme's management — the
// mechanism behind the paper's worst-case throughput gap (aged e-Buff
// batteries cannot carry the cloudy day; BAAT's can).
func runOneDayOwnAging(cfg Config, spec core.PolicySpec, w solar.Weather, old bool) (*sim.Simulator, sim.DayStats, error) {
	s, err := prototypeSimWithScale(cfg, spec, tightScale)
	if err != nil {
		return nil, sim.DayStats{}, err
	}
	if old {
		// Own-aging burn-ins differ per policy but repeat across weather
		// scenarios; memoize one checkpoint per managing policy.
		err := preAge(cfg, s, "own/"+spec.String(), func() (*sim.Simulator, error) {
			return prototypeSimWithScale(cfg, spec, tightScale)
		})
		if err != nil {
			return nil, sim.DayStats{}, err
		}
		for _, n := range s.Nodes() {
			n.ResetMetrics()
		}
	}
	ds, err := s.RunDay(w)
	if err != nil {
		return nil, sim.DayStats{}, err
	}
	return s, ds, nil
}

// worstDayNAT returns the highest per-day NAT across the fleet after a
// measured day ("we select the worst battery node that has the most
// Ah-throughput", §VI-B).
func worstDayNAT(s *sim.Simulator) (nat, cf, pc float64) {
	for _, n := range s.Nodes() {
		m := n.Metrics()
		if m.NAT > nat {
			nat, cf, pc = m.NAT, m.CF, m.PC
		}
	}
	return nat, cf, pc
}

// WeatherProfile reproduces Fig 12: the aging metrics of the prototype
// under sunny, cloudy, and rainy conditions (the 8/6/3 kWh energy budgets
// of §VI-A) for the e-Buff baseline.
func WeatherProfile(cfg Config) (*Table, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig12",
		Title:   "Aging metric variation under different weather conditions",
		Columns: []string{"weather", "solar used (kWh)", "worst NAT", "CF", "PC", "low-SoC time"},
		Values:  map[string]float64{},
	}
	weathers := solar.Weathers()
	type cell struct {
		ds          sim.DayStats
		nat, cf, pc float64
	}
	cells := make([]cell, len(weathers))
	if err := runSweep(cfg.sweepWorkers(), len(weathers), func(i int) error {
		s, ds, err := runOneDay(cfg, specEBuff, weathers[i], false)
		if err != nil {
			return err
		}
		nat, cf, pc := worstDayNAT(s)
		cells[i] = cell{ds: ds, nat: nat, cf: cf, pc: pc}
		return nil
	}); err != nil {
		return nil, err
	}
	for i, w := range weathers {
		c := cells[i]
		t.Rows = append(t.Rows, []string{
			w.String(),
			f2(float64(c.ds.SolarEnergy) / 1000),
			fmt.Sprintf("%.5f", c.nat),
			f2(c.cf), f3(c.pc),
			c.ds.LowSoCTime.String(),
		})
		t.Values[w.String()+"_nat"] = c.nat
		t.Values[w.String()+"_cf"] = c.cf
		t.Values[w.String()+"_pc"] = c.pc
	}
	t.Notes = append(t.Notes,
		"paper: sunny days show low Ah-throughput, higher CF, and high-SoC cycling;",
		"cloudy/rainy days show more throughput, lower CF, and lower PC")
	return t, nil
}

// AgingComparison reproduces Fig 13: NAT/CF/PC of the four policies across
// {sunny, cloudy} weather and {young, old} battery stages, measured on the
// worst battery node of each run.
func AgingComparison(cfg Config) (*Table, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig13",
		Title:   "Aging metrics of four power management schemes (worst node)",
		Columns: []string{"scenario", "policy", "NAT", "CF", "PC"},
		Values:  map[string]float64{},
	}
	type scenario struct {
		name string
		w    solar.Weather
		old  bool
	}
	scenarios := []scenario{
		{"young/sunny", solar.Sunny, false},
		{"young/cloudy", solar.Cloudy, false},
		{"old/sunny", solar.Sunny, true},
		{"old/cloudy", solar.Cloudy, true},
	}
	if cfg.Quick {
		scenarios = scenarios[1:2] // young/cloudy only
	}
	type cell struct{ nat, cf, pc float64 }
	cells := make([]cell, len(scenarios)*len(table4))
	if err := runSweep(cfg.sweepWorkers(), len(cells), func(i int) error {
		sc, spec := scenarios[i/len(table4)], table4[i%len(table4)]
		s, _, err := runOneDay(cfg, spec, sc.w, sc.old)
		if err != nil {
			return err
		}
		nat, cf, pc := worstDayNAT(s)
		cells[i] = cell{nat, cf, pc}
		return nil
	}); err != nil {
		return nil, err
	}
	nats := map[string]float64{}
	for i, c := range cells {
		sc, spec := scenarios[i/len(table4)], table4[i%len(table4)]
		t.Rows = append(t.Rows, []string{
			sc.name, label(spec), fmt.Sprintf("%.5f", c.nat), f2(c.cf), f3(c.pc),
		})
		key := sc.name + "/" + label(spec)
		nats[key] = c.nat
		t.Values[key+"_nat"] = c.nat
		t.Values[key+"_pc"] = c.pc
	}
	if v, ok := ratio(nats, "young/cloudy/e-Buff", "young/cloudy/BAAT"); ok {
		t.Values["ebuff_vs_baat_nat_young_cloudy"] = v
	}
	if v, ok := ratio(nats, "old/cloudy/e-Buff", "old/cloudy/BAAT"); ok {
		t.Values["ebuff_vs_baat_nat_old_cloudy"] = v
	}
	if v, ok := ratio(nats, "young/cloudy/e-Buff", "young/sunny/e-Buff"); ok {
		t.Values["ebuff_cloudy_vs_sunny"] = v
	}
	t.Notes = append(t.Notes,
		"paper: e-Buff Ah-throughput ×1.3 of BAAT on average, ×2.1 when cloudy+old;",
		"e-Buff cloudy throughput ×1.35 of sunny")
	return t, nil
}

func ratio(m map[string]float64, num, den string) (float64, bool) {
	n, okN := m[num]
	d, okD := m[den]
	if !okN || !okD || d == 0 {
		return 0, false
	}
	return n / d, true
}

// LowSoCDuration reproduces Fig 18: the accumulated low-SoC (below 40 %)
// duration of the worst battery node under each policy over a multi-day
// run. The paper reads this as the availability risk: low SoC leaves less
// than the 2-minute emergency reserve.
func LowSoCDuration(cfg Config) (*Table, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	days := 12
	frac := 0.5
	scale := 1.5
	if cfg.Quick {
		// Shorter but harsher (less sun, smaller PV) so low-SoC exposure
		// still appears within the reduced horizon.
		days = 6
		frac = 0.3
		scale = tightScale
	}
	seq := weatherSequence(cfg.Seed, rng.ExpLowSoC, frac, days)
	t := &Table{
		ID:      "fig18",
		Title:   "Low-SoC duration comparison (worst node)",
		Columns: []string{"policy", "low-SoC time", "share of window", "server downtime"},
		Values:  map[string]float64{},
	}
	window := float64(days) * 10 // hours of operating window
	type cell struct{ lowH, downH float64 }
	cells := make([]cell, len(table4))
	if err := runSweep(cfg.sweepWorkers(), len(table4), func(i int) error {
		s, err := prototypeSimWithScale(cfg, table4[i], scale)
		if err != nil {
			return err
		}
		var lowH, downH float64
		for _, w := range seq {
			ds, err := s.RunDay(w)
			if err != nil {
				return err
			}
			lowH += ds.LowSoCTime.Hours()
			downH += ds.Downtime.Hours()
		}
		cells[i] = cell{lowH, downH}
		return nil
	}); err != nil {
		return nil, err
	}
	lows := map[string]float64{}
	for i, spec := range table4 {
		lowH, downH := cells[i].lowH, cells[i].downH
		lows[spec.Name] = lowH
		t.Rows = append(t.Rows, []string{
			label(spec),
			(time.Duration(lowH * float64(time.Hour))).Round(time.Minute).String(),
			pct(lowH / window),
			(time.Duration(downH * float64(time.Hour))).Round(time.Minute).String(),
		})
		t.Values[label(spec)+"_low_hours"] = lowH
	}
	if lows["ebuff"] > 0 {
		t.Values["availability_gain"] = (lows["ebuff"] - lows["baat"]) / lows["ebuff"]
	}
	t.Notes = append(t.Notes, "paper: BAAT increases battery availability by 47% (worst node)")
	return t, nil
}

// SoCDistribution reproduces Fig 19: the distribution of battery SoC over a
// long run, in the paper's seven bins, per policy.
func SoCDistribution(cfg Config) (*Table, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	days := int(270 / cfg.Accel)
	if cfg.Quick {
		days = 5
	}
	seq := weatherSequence(cfg.Seed, rng.ExpSoCDist, 0.5, days)
	labels := []string{
		"[0,15%)", "[15,30%)", "[30,45%)", "[45,60%)", "[60,75%)", "[75,90%)", "[90,100%]",
	}
	t := &Table{
		ID:      "fig19",
		Title:   "Distribution of battery SoC under different schemes",
		Columns: append([]string{"SoC bin"}, policyNames()...),
		Values:  map[string]float64{},
	}
	cells := make([][]float64, len(table4))
	if err := runSweep(cfg.sweepWorkers(), len(table4), func(i int) error {
		s, err := prototypeSim(cfg, table4[i])
		if err != nil {
			return err
		}
		res, err := s.Run(seq)
		if err != nil {
			return err
		}
		cells[i] = res.SoCHistogram.Fractions()
		return nil
	}); err != nil {
		return nil, err
	}
	fracs := map[string][]float64{}
	for i, spec := range table4 {
		fracs[spec.Name] = cells[i]
	}
	for bin := 0; bin < len(labels); bin++ {
		row := []string{labels[bin]}
		for _, spec := range table4 {
			row = append(row, pct(fracs[spec.Name][bin]))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Values["ebuff_lowest_bin"] = fracs["ebuff"][0]
	t.Values["baat_lowest_bin"] = fracs["baat"][0]
	t.Values["ebuff_top_bin"] = fracs["ebuff"][6]
	t.Values["baat_top_bin"] = fracs["baat"][6]
	t.Notes = append(t.Notes,
		"paper: e-Buff leaves batteries in low-SoC bins; BAAT shifts the mass toward 90-100%")
	return t, nil
}

func policyNames() []string {
	out := make([]string, 0, len(table4))
	for _, spec := range table4 {
		out = append(out, label(spec))
	}
	return out
}

// Throughput reproduces Fig 20: one-day compute throughput of the four
// schemes across battery ages and weather, with the paper's headline being
// BAAT's advantage over e-Buff in the worst case (cloudy, old batteries).
func Throughput(cfg Config) (*Table, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig20",
		Title:   "One-day workload throughput of four schemes",
		Columns: []string{"scenario", "policy", "throughput (work units)", "downtime"},
		Values:  map[string]float64{},
	}
	type scenario struct {
		name string
		w    solar.Weather
		old  bool
	}
	scenarios := []scenario{
		{"young/sunny", solar.Sunny, false},
		{"young/cloudy", solar.Cloudy, false},
		{"old/sunny", solar.Sunny, true},
		{"old/cloudy", solar.Cloudy, true},
	}
	if cfg.Quick {
		scenarios = scenarios[3:]
	}
	cells := make([]sim.DayStats, len(scenarios)*len(table4))
	if err := runSweep(cfg.sweepWorkers(), len(cells), func(i int) error {
		sc, spec := scenarios[i/len(table4)], table4[i%len(table4)]
		_, ds, err := runOneDayOwnAging(cfg, spec, sc.w, sc.old)
		if err != nil {
			return err
		}
		cells[i] = ds
		return nil
	}); err != nil {
		return nil, err
	}
	thr := map[string]float64{}
	for i, ds := range cells {
		sc, spec := scenarios[i/len(table4)], table4[i%len(table4)]
		key := sc.name + "/" + label(spec)
		thr[key] = ds.Throughput
		t.Rows = append(t.Rows, []string{
			sc.name, label(spec), fmt.Sprintf("%.1f", ds.Throughput), ds.Downtime.Round(time.Minute).String(),
		})
		t.Values[key] = ds.Throughput
	}
	if base := thr["old/cloudy/e-Buff"]; base > 0 {
		t.Values["baat_gain_worst_case"] = thr["old/cloudy/BAAT"]/base - 1
	}
	t.Notes = append(t.Notes, "paper: BAAT improves worst-case (cloudy+old) throughput by 28% over e-Buff")
	return t, nil
}
