package node

import (
	"fmt"
	"math"
	"time"

	"github.com/green-dc/baat/internal/aging"
	"github.com/green-dc/baat/internal/battery"
	"github.com/green-dc/baat/internal/faults"
	"github.com/green-dc/baat/internal/powernet"
	"github.com/green-dc/baat/internal/server"
	"github.com/green-dc/baat/internal/units"
)

// SampleState is the serialized form of the last sensor sample a stuck
// sensor would replay.
type SampleState struct {
	Dt          time.Duration `json:"dt"`
	Current     units.Ampere  `json:"current"`
	SoC         float64       `json:"soc"`
	Temperature units.Celsius `json:"temperature"`
}

// SensorFaultState is the serialized form of the sensor corruption in
// effect at snapshot time. The injector re-resolves it every tick, but a
// node can also carry a manually installed fault that must survive resume.
type SensorFaultState struct {
	Mode  int        `json:"mode"`
	Sigma float64    `json:"sigma"`
	Noise [3]float64 `json:"noise"`
}

// State is the serializable state of a Node: the composed states of its
// battery pack, aging tracker, damage model, power table and server, plus
// the node's own clock, accounting, and sensor-chain bookkeeping. The
// Config (specs, losses, quarantine policy) is construction-time input and
// is not serialized; a snapshot restores only onto a node built from the
// same Config.
type State struct {
	ID      string             `json:"id"`
	Pack    battery.State      `json:"pack"`
	Tracker aging.TrackerState `json:"tracker"`
	Model   aging.ModelState   `json:"model"`
	Table   powernet.State     `json:"table"`
	Server  server.State       `json:"server"`

	Clock    time.Duration `json:"clock"`
	SoCFloor float64       `json:"soc_floor"`

	UtilityWh  units.WattHour `json:"utility_wh"`
	SolarWh    units.WattHour `json:"solar_wh"`
	DownTicks  int            `json:"down_ticks"`
	TotalTicks int            `json:"total_ticks"`

	Sensor       SensorFaultState `json:"sensor"`
	LastSample   SampleState      `json:"last_sample"`
	HaveSample   bool             `json:"have_sample"`
	Missed       int              `json:"missed"`
	Rejected     int              `json:"rejected"`
	Dropped      int              `json:"dropped"`
	SuspectUntil time.Duration    `json:"suspect_until"`
	UtilityDown  bool             `json:"utility_down"`
}

// Snapshot captures the node's full state.
func (n *Node) Snapshot() State {
	return State{
		ID:      n.id,
		Pack:    n.batt.Snapshot(),
		Tracker: n.tracker.Snapshot(),
		Model:   n.model.Snapshot(),
		Table:   n.table.Snapshot(),
		Server:  n.srv.Snapshot(),

		Clock:    n.clock,
		SoCFloor: n.socFloor,

		UtilityWh:  n.utilityWh,
		SolarWh:    n.solarWh,
		DownTicks:  n.downTicks,
		TotalTicks: n.totalTicks,

		Sensor: SensorFaultState{
			Mode:  int(n.sensor.Mode),
			Sigma: n.sensor.Sigma,
			Noise: n.sensor.Noise,
		},
		LastSample: SampleState{
			Dt:          n.lastSample.Dt,
			Current:     n.lastSample.Current,
			SoC:         n.lastSample.SoC,
			Temperature: n.lastSample.Temperature,
		},
		HaveSample:   n.haveSample,
		Missed:       n.missed,
		Rejected:     n.rejected,
		Dropped:      n.dropped,
		SuspectUntil: n.suspectUntil,
		UtilityDown:  n.utilityDown,
	}
}

// Restore overwrites the node's state from a snapshot taken from a node
// built with the same Config. All sub-states are validated before anything
// is mutated, so a corrupt checkpoint leaves the node untouched.
func (n *Node) Restore(st State) error {
	if st.ID != n.id {
		return fmt.Errorf("node %s: restore: snapshot belongs to node %s", n.id, st.ID)
	}
	if st.Clock < 0 {
		return fmt.Errorf("node %s: restore: negative clock %v", n.id, st.Clock)
	}
	if st.SoCFloor < 0 || st.SoCFloor >= 1 || math.IsNaN(st.SoCFloor) {
		return fmt.Errorf("node %s: restore: SoC floor must be in [0, 1), got %v", n.id, st.SoCFloor)
	}
	for _, e := range []struct {
		name string
		v    float64
	}{
		{"utility energy", float64(st.UtilityWh)},
		{"solar energy", float64(st.SolarWh)},
	} {
		if math.IsNaN(e.v) || math.IsInf(e.v, 0) || e.v < 0 {
			return fmt.Errorf("node %s: restore: %s must be finite and non-negative, got %v", n.id, e.name, e.v)
		}
	}
	if st.DownTicks < 0 || st.TotalTicks < 0 || st.DownTicks > st.TotalTicks {
		return fmt.Errorf("node %s: restore: inconsistent tick counters (%d down of %d total)",
			n.id, st.DownTicks, st.TotalTicks)
	}
	if st.Missed < 0 || st.Rejected < 0 || st.Dropped < 0 {
		return fmt.Errorf("node %s: restore: negative sensor counters", n.id)
	}
	if st.SuspectUntil < 0 {
		return fmt.Errorf("node %s: restore: negative quarantine deadline %v", n.id, st.SuspectUntil)
	}
	if m := faults.SensorMode(st.Sensor.Mode); m < faults.SensorOK || m > faults.ModeDrop {
		return fmt.Errorf("node %s: restore: unknown sensor mode %d", n.id, st.Sensor.Mode)
	}

	// Stage every sub-restore on scratch copies so a failure partway
	// through leaves the live node untouched. The battery stage works on a
	// value copy of whichever concrete tier backs the model.
	var commitBatt func()
	switch b := n.batt.(type) {
	case *battery.Pack:
		pack := *b
		if err := pack.Restore(st.Pack); err != nil {
			return fmt.Errorf("node %s: restore: %w", n.id, err)
		}
		commitBatt = func() { *b = pack }
	case *battery.Linear:
		lin := *b
		if err := lin.Restore(st.Pack); err != nil {
			return fmt.Errorf("node %s: restore: %w", n.id, err)
		}
		commitBatt = func() { *b = lin }
	default:
		return fmt.Errorf("node %s: restore: unknown battery model %T", n.id, n.batt)
	}
	tracker := *n.tracker
	if err := tracker.Restore(st.Tracker); err != nil {
		return fmt.Errorf("node %s: restore: %w", n.id, err)
	}
	model := *n.model
	if err := model.Restore(st.Model); err != nil {
		return fmt.Errorf("node %s: restore: %w", n.id, err)
	}
	table, err := powernet.NewPowerTable(n.cfg.TableCapacity)
	if err != nil {
		return fmt.Errorf("node %s: restore: %w", n.id, err)
	}
	if err := table.Restore(st.Table); err != nil {
		return fmt.Errorf("node %s: restore: %w", n.id, err)
	}
	if err := n.srv.Restore(st.Server); err != nil {
		return fmt.Errorf("node %s: restore: %w", n.id, err)
	}

	commitBatt()
	*n.tracker = tracker
	*n.model = model
	n.table = table

	n.clock = st.Clock
	n.socFloor = st.SoCFloor
	n.utilityWh = st.UtilityWh
	n.solarWh = st.SolarWh
	n.downTicks = st.DownTicks
	n.totalTicks = st.TotalTicks

	n.sensor = faults.SensorFault{
		Mode:  faults.SensorMode(st.Sensor.Mode),
		Sigma: st.Sensor.Sigma,
		Noise: st.Sensor.Noise,
	}
	n.lastSample = aging.Sample{
		Dt:          st.LastSample.Dt,
		Current:     st.LastSample.Current,
		SoC:         st.LastSample.SoC,
		Temperature: st.LastSample.Temperature,
	}
	n.haveSample = st.HaveSample
	n.missed = st.Missed
	n.rejected = st.Rejected
	n.dropped = st.Dropped
	n.suspectUntil = st.SuspectUntil
	n.utilityDown = st.UtilityDown
	return nil
}
