package sim

// The serial≡parallel equivalence sweep: the guarantee that
// Config.Workers trades wall time only, never results. Every worker count
// must produce a byte-identical marshaled Result for the same seed and
// weather trace — not merely close values. The sweep runs under -race via
// `make check`, so it doubles as the data-race gate on the fan-out.

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"github.com/green-dc/baat/internal/core"
	"github.com/green-dc/baat/internal/solar"
	"github.com/green-dc/baat/internal/workload"
)

// marshaledResult serializes everything a Result carries, including the
// histogram internals json.Marshal would skip (unexported fields).
func marshaledResult(t *testing.T, res *Result) []byte {
	t.Helper()
	out, err := json.Marshal(struct {
		Result    *Result
		SoCCounts []int64
		SoCTotal  int64
	}{res, res.SoCHistogram.Counts(), res.SoCHistogram.Total()})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// equivalenceRun plays a fixed three-day trace with the given seed and
// worker count. ShardSize 3 partitions the 12-node fleet into four
// shards and the negative threshold forces the parallel path at this
// small size, so shard claiming genuinely interleaves across workers.
func equivalenceRun(t *testing.T, seed int64, workers int) []byte {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Policy = core.PolicySpec{Name: "baat"}
	cfg.Nodes = 12
	cfg.Seed = seed
	cfg.Workers = workers
	cfg.ShardSize = 3
	cfg.ParallelThreshold = -1
	cfg.Services = workload.PrototypeServices()
	cfg.JobsPerDay = 4
	cfg.RecordSeries = true
	cfg.Node.AgingConfig.AccelFactor = 25
	cfg.Solar.Scale = 1.5 * float64(cfg.Nodes) / 6
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run([]solar.Weather{solar.Sunny, solar.Cloudy, solar.Rainy})
	if err != nil {
		t.Fatal(err)
	}
	return marshaledResult(t, res)
}

func TestSerialParallelEquivalence(t *testing.T) {
	seeds := []int64{1, 7, 42, 1234, 99991}
	if testing.Short() {
		seeds = seeds[:2]
	}
	for _, seed := range seeds {
		serial := equivalenceRun(t, seed, 1)
		for _, workers := range []int{2, 4, 8} {
			if !bytes.Equal(serial, equivalenceRun(t, seed, workers)) {
				t.Errorf("seed %d: Workers=%d diverged from serial result", seed, workers)
			}
		}
	}
}

// TestWorkersResolution pins the Config.Workers contract: 0 and 1 are
// serial, negative resolves to the host's CPU count, and counts beyond the
// fleet are trimmed to it.
func TestWorkersResolution(t *testing.T) {
	tests := []struct {
		name    string
		workers int
		min     int
	}{
		{"zero is serial", 0, 1},
		{"one is serial", 1, 1},
		{"negative is auto", -1, 1},
		{"capped at fleet", 100, 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			s := newSim(t, "ebuff", func(c *Config) { c.Workers = tt.workers })
			if s.workers < tt.min || s.workers > s.cfg.Nodes {
				t.Errorf("resolved workers = %d, want within [%d, %d]", s.workers, tt.min, s.cfg.Nodes)
			}
		})
	}
}

// TestParallelErrorDeterministic checks the shard-ordered error reduction:
// when several nodes fail in one fan-out, the reported error is the
// lowest-index node's, independent of which worker hit which shard first.
// Failures are provoked through the real step path by poisoning the load
// grants of every node from index 3 up (a negative solar allocation is a
// physics-contract violation node.Step rejects).
func TestParallelErrorDeterministic(t *testing.T) {
	s := newSim(t, "ebuff", func(c *Config) {
		c.Nodes = 8
		c.Workers = 4
		c.ShardSize = 2
		c.ParallelThreshold = -1
	})
	if !s.parallel || len(s.shardSums) != 4 {
		t.Fatalf("parallel=%v shards=%d, want genuine 4-shard parallel setup", s.parallel, len(s.shardSums))
	}
	s.pool.Start()
	defer s.pool.Stop()
	var got string
	for trial := 0; trial < 20; trial++ {
		clear(s.loadGrant)
		clear(s.chargeGrant)
		for i := 3; i < s.cfg.Nodes; i++ {
			s.loadGrant[i] = -1
		}
		err := s.stepNodes(false)
		if err == nil {
			t.Fatal("stepNodes() = nil, want error")
		}
		if trial == 0 {
			got = err.Error()
			if !strings.Contains(got, "node-3") {
				t.Fatalf("first error %q, want it from node-3 (the lowest failing index)", got)
			}
			continue
		}
		if err.Error() != got {
			t.Fatalf("error changed across runs: %q vs %q", err.Error(), got)
		}
	}
}
