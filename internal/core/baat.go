package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"time"

	"github.com/green-dc/baat/internal/aging"
	"github.com/green-dc/baat/internal/node"
	"github.com/green-dc/baat/internal/telemetry"
	"github.com/green-dc/baat/internal/units"
	"github.com/green-dc/baat/internal/vm"
)

// baat is the full BAAT framework (Table 4): it coordinates aging hiding
// (weighted-aging-driven placement and rebalancing, Fig 8), aging slowdown
// (migration-first, DVFS-second response to DDT/DR violations, Fig 9), and
// optional planned aging (DoD-goal regulation, Eq 7).
type baat struct {
	cfg Config
	// lastDoDGoal is the previously recorded fleet-average DoD goal, used
	// to emit an EventDoDTarget only when planned aging actually moves the
	// target (a per-control-period event would drown the trace ring).
	lastDoDGoal float64
}

// balanceImbalanceFactor is how far above the fleet-average weighted aging
// a node must score before the hiding arm rebalances load away from it.
const balanceImbalanceFactor = 1.25

// balanceMinScore avoids churning migrations between near-pristine nodes.
const balanceMinScore = 0.05

func init() {
	Register("baat", Descriptor{
		Display: "BAAT",
		Rank:    4,
		Doc:     "coordinated aging hiding + slowdown, with optional planned aging (Eq 7)",
		Options: mergeOptionDocs(slowdownOptionDocs, migrationOptionDocs, plannedOptionDocs),
		Build: func(spec PolicySpec) (Policy, error) {
			cfg, err := configFromOptions(spec.Options)
			if err != nil {
				return nil, err
			}
			return &baat{cfg: cfg}, nil
		},
	})
}

// Name returns the Table 4 scheme name.
func (*baat) Name() string { return "BAAT" }

// baatState is the serialized controller state: the DoD-goal hysteresis of
// the planned-aging arm.
type baatState struct {
	LastDoDGoal float64 `json:"last_dod_goal"`
}

// Snapshot captures the controller state for the checkpoint envelope.
func (p *baat) Snapshot() ([]byte, error) {
	return json.Marshal(baatState{LastDoDGoal: p.lastDoDGoal})
}

// Restore rewinds the controller state from a snapshot, rejecting
// malformed or out-of-range payloads before mutating anything.
func (p *baat) Restore(data []byte) error {
	var st baatState
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&st); err != nil {
		return fmt.Errorf("core: restore baat state: %w", err)
	}
	if st.LastDoDGoal < 0 || st.LastDoDGoal > 1 || math.IsNaN(st.LastDoDGoal) {
		return fmt.Errorf("core: restore baat state: DoD goal %v out of [0, 1]", st.LastDoDGoal)
	}
	p.lastDoDGoal = st.LastDoDGoal
	return nil
}

// PlaceVM implements the aging-driven scheduler of Fig 8: classify the
// workload per Table 3, evaluate Eq 6 on every candidate, and place on the
// slowest-aging node.
func (*baat) PlaceVM(ctx *Context, v *vm.VM) (*node.Node, error) {
	if best := minWeightedAging(ctx.Nodes, v, nil, aging.DeepDischargeSoC); best != nil {
		return best, nil
	}
	return nil, ErrNoCapacity
}

// Control coordinates planned aging, slowdown, hiding, and recovery.
func (p *baat) Control(ctx *Context) error {
	trigger := p.cfg.Slowdown.TriggerSoC
	if p.cfg.Planned.Enabled {
		// Planned aging sets both trigger and floors from Eq 7.
		trigger = p.plannedTrigger(ctx)
	} else {
		// BAAT's operating discipline: no battery discharges below the
		// protective floor — the server checkpoints instead of dragging
		// the pack into the steep region of the cycle-life curve.
		for _, n := range ctx.Nodes {
			if n.SoCFloor() != p.cfg.Slowdown.FloorSoC {
				_ = n.SetSoCFloor(p.cfg.Slowdown.FloorSoC)
			}
		}
	}
	slowCfg := p.cfg.Slowdown
	slowCfg.TriggerSoC = trigger

	// Slowdown arm (Fig 9): migration first, DVFS as the fallback when
	// resources elsewhere are constrained.
	for _, n := range ctx.Nodes {
		if !slowdownNeeded(n, slowCfg) {
			if recovered(n, slowCfg) {
				restoreFrequency(ctx, n)
			}
			continue
		}
		if v := migratableVM(n); v != nil {
			if dst := minWeightedAging(ctx.Nodes, v, n, slowCfg.TriggerSoC+slowCfg.Hysteresis); dst != nil {
				if err := migrate(ctx, n, dst, v.ID(), p.cfg.MigrationTime); err != nil {
					return err
				}
				continue
			}
		}
		capFrequency(ctx, n)
	}

	// Hiding arm (Fig 8): rebalance when a node's weighted aging runs far
	// ahead of the fleet. Scores use the all-High sensitivity so balance
	// reflects the battery state rather than any single workload. Nodes
	// with quarantined metrics contribute garbage scores, so they are
	// excluded from the fleet average and treated as unconditional
	// rebalance sources — the degraded-mode posture moves load off them
	// without pretending to know how aged they are.
	if len(ctx.Nodes) >= 2 {
		sens := aging.DemandSensitivity(aging.DemandClass{LargePower: true, MoreEnergy: true})
		var sum float64
		var trusted int
		scores := make([]float64, len(ctx.Nodes))
		suspect := make([]bool, len(ctx.Nodes))
		for i, n := range ctx.Nodes {
			suspect[i] = n.MetricsSuspect()
			if suspect[i] {
				continue
			}
			scores[i] = aging.WeightedAging(n.Metrics(), sens)
			sum += scores[i]
			trusted++
		}
		var avg float64
		if trusted > 0 {
			avg = sum / float64(trusted)
		}
		for i, src := range ctx.Nodes {
			if !suspect[i] && (scores[i] < balanceMinScore || scores[i] <= avg*balanceImbalanceFactor) {
				continue
			}
			v := migratableVM(src)
			if v == nil {
				continue
			}
			dst := minWeightedAging(ctx.Nodes, v, src, p.cfg.Slowdown.TriggerSoC)
			if dst == nil || dst.MetricsSuspect() {
				continue
			}
			// Only move if the destination is actually meaningfully
			// healthier; otherwise the migration cost buys nothing. A
			// suspect source has no comparable score — moving off it is
			// the point.
			if !suspect[i] && aging.WeightedAging(dst.Metrics(), sens) >= scores[i] {
				continue
			}
			if err := migrate(ctx, src, dst, v.ID(), p.cfg.MigrationTime); err != nil {
				return err
			}
		}
	}
	return nil
}

// plannedTrigger computes the slowdown trigger under planned aging: Eq 7's
// DoD goal from the fleet's remaining throughput budget and the cycles left
// until datacenter end-of-life, with the trigger set to 1 − DoD_goal
// (§IV-D). The fleet floors follow so the charge controller enforces the
// plan even between control periods.
func (p *baat) plannedTrigger(ctx *Context) float64 {
	remaining := p.cfg.Planned.ServiceLife - ctx.Clock
	if remaining <= 0 {
		remaining = 24 * time.Hour // end of plan: keep one day's headroom
	}
	cyclePlan := remaining.Hours() / 24 * p.cfg.Planned.CyclesPerDay
	trigger := p.cfg.Slowdown.TriggerSoC
	var sum float64
	var count int
	for _, n := range ctx.Nodes {
		spec := n.Battery().Spec()
		used := usedThroughput(n)
		goal, err := aging.DoDGoal(spec.LifetimeThroughput, used, cyclePlan, spec.NominalCapacity)
		if err != nil {
			continue
		}
		sum += goal
		count++
		// The node-level floor tracks the plan so discharge stops at the
		// planned depth even between control invocations.
		_ = n.SetSoCFloor(clampFloor(1 - goal))
	}
	if count > 0 {
		goal := sum / float64(count)
		trigger = clampTrigger(1 - goal)
		ctx.Telemetry.Counter(telemetry.MetricDoDAdjusts).Inc()
		ctx.Telemetry.Gauge(telemetry.MetricDoDGoal).Set(goal)
		// Trace only meaningful target moves (> 1 % DoD) so the ring keeps
		// the shape of the Eq 7 trajectory rather than its sampling rate.
		if diff := goal - p.lastDoDGoal; diff > 0.01 || diff < -0.01 {
			p.lastDoDGoal = goal
			ctx.Telemetry.Emit(ctx.Clock, telemetry.EventDoDTarget, "",
				fmt.Sprintf("DoD goal %.3f, trigger %.3f", goal, trigger))
		}
	}
	return trigger
}

// usedThroughput returns the node's cumulative discharge Ah (C_used in
// Eq 7), recovered from NAT and the lifetime budget.
func usedThroughput(n *node.Node) units.AmpereHour {
	spec := n.Battery().Spec()
	return units.AmpereHour(n.Metrics().NAT * float64(spec.LifetimeThroughput))
}

// clampFloor keeps planned floors inside a sane protective band.
func clampFloor(f float64) float64 {
	if f < 0.05 {
		return 0.05
	}
	if f > 0.6 {
		return 0.6
	}
	return f
}

// clampTrigger keeps the planned trigger inside (0, 1).
func clampTrigger(t float64) float64 {
	if t < 0.10 {
		return 0.10
	}
	if t > 0.95 {
		return 0.95
	}
	return t
}
