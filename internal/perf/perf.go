// Package perf is the benchmark-regression harness: a fixed suite of
// steady-state benchmarks over the hot paths (fleet stepping, aging-metric
// tracking, battery physics, experiment sweeps), a JSON report format, and
// a comparator that fails when a run regresses against a committed
// baseline (BENCH_baseline.json at the repository root).
//
// The suite runs inside any binary via testing.Benchmark, so the
// baatbench CLI can emit and compare reports without a test harness:
//
//	baatbench -bench-json BENCH_baseline.json   # refresh the baseline
//	baatbench -bench-compare BENCH_baseline.json
//
// Time-per-op comparisons get a slack factor (default 15 %) because wall
// time is machine- and load-dependent. Allocations are deterministic for
// the steady-state paths, so entries marked Pinned — the allocation-free
// tick paths — tolerate no allocs/op growth at all; the remaining entries
// get a small slack that absorbs b.N-averaging jitter while still
// catching any real allocation regression.
package perf

import (
	"encoding/json"
	"fmt"
	"os"
)

// Entry is one benchmark measurement.
type Entry struct {
	// Name identifies the benchmark, e.g. "fleet_step/nodes=64/workers=1".
	Name string `json:"name"`
	// NsPerOp is wall time per operation in nanoseconds.
	NsPerOp float64 `json:"ns_per_op"`
	// AllocsPerOp is heap allocations per operation.
	AllocsPerOp int64 `json:"allocs_per_op"`
	// BytesPerOp is heap bytes per operation.
	BytesPerOp int64 `json:"bytes_per_op"`
	// Pinned marks an allocation-free hot path: the comparator rejects any
	// allocs/op increase, however small.
	Pinned bool `json:"pinned,omitempty"`
	// NodeStepsPerSec is simulated node-steps per wall second for the
	// fleet-stepping entries (nodes × ticks-per-day ÷ time-per-day): the
	// throughput figure the ROADMAP's scaling axis is tracked by. It is
	// derived from NsPerOp, so the comparator gates only the latter;
	// zero for entries where the notion does not apply.
	NodeStepsPerSec float64 `json:"node_steps_per_sec,omitempty"`
}

// Report is a full suite run.
type Report struct {
	Entries []Entry `json:"entries"`
}

// Lookup returns the entry with the given name.
func (r Report) Lookup(name string) (Entry, bool) {
	for _, e := range r.Entries {
		if e.Name == name {
			return e, true
		}
	}
	return Entry{}, false
}

// ReadReport loads a report from a JSON file.
func ReadReport(path string) (Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Report{}, fmt.Errorf("perf: %w", err)
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return Report{}, fmt.Errorf("perf: parse %s: %w", path, err)
	}
	return r, nil
}

// WriteJSON serializes the report, indented, with a trailing newline.
func (r Report) WriteJSON() ([]byte, error) {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("perf: %w", err)
	}
	return append(data, '\n'), nil
}

// Options tunes the comparator.
type Options struct {
	// TimeSlack is the tolerated fractional ns/op growth (0.15 = +15 %).
	TimeSlack float64
	// AllocSlack is the tolerated fractional allocs/op growth for entries
	// that are not pinned. Pinned entries always use zero.
	AllocSlack float64
}

// DefaultOptions matches the check.sh gate: 15 % time slack, 1 % alloc
// slack on unpinned entries, none on pinned ones.
func DefaultOptions() Options {
	return Options{TimeSlack: 0.15, AllocSlack: 0.01}
}

// Compare checks current against baseline and returns one human-readable
// line per regression; an empty slice means the gate passes. Baseline
// entries missing from the current report are regressions (a benchmark
// silently dropped is a blind spot, not a pass); entries new in current
// are ignored so the baseline can lag a suite extension.
func Compare(baseline, current Report, opt Options) []string {
	var regressions []string
	for _, base := range baseline.Entries {
		cur, ok := current.Lookup(base.Name)
		if !ok {
			regressions = append(regressions,
				fmt.Sprintf("%s: present in baseline but missing from current run", base.Name))
			continue
		}
		if limit := base.NsPerOp * (1 + opt.TimeSlack); cur.NsPerOp > limit {
			regressions = append(regressions,
				fmt.Sprintf("%s: time/op %.0f ns exceeds baseline %.0f ns by more than %.0f%%",
					base.Name, cur.NsPerOp, base.NsPerOp, opt.TimeSlack*100))
		}
		allocSlack := opt.AllocSlack
		if base.Pinned {
			allocSlack = 0
		}
		if limit := float64(base.AllocsPerOp) * (1 + allocSlack); float64(cur.AllocsPerOp) > limit {
			regressions = append(regressions,
				fmt.Sprintf("%s: allocs/op %d exceeds baseline %d (pinned=%v)",
					base.Name, cur.AllocsPerOp, base.AllocsPerOp, base.Pinned))
		}
	}
	return regressions
}
