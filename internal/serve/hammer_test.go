package serve

// Concurrent-mutation safety: many clients hammering one run's control
// plane — pause, resume, status, no-op mutations, fork-and-delete, SSE
// subscribe-and-cancel — while it executes, under the race detector. The
// contract: no data race, no goroutine leak, every response a documented
// status, and when the dust settles the run's output is byte-identical to
// an unhammered twin, because every mutation sent was a no-op.

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"testing"
)

const hammerDays = 10

func hammerSpec() RunSpec {
	return RunSpec{Days: hammerDays, Seed: 9, Accel: ptr(5.0)}
}

// rawDo is the goroutine-safe request helper: unlike testClient.do it
// never calls Fatalf (forbidden off the test goroutine); workers report
// through t.Errorf.
func rawDo(client *http.Client, method, url string, body []byte) (int, []byte, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		return 0, nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	return resp.StatusCode, b, err
}

func TestConcurrentHammer(t *testing.T) {
	c := newTestClient(t)

	// The quiet twin establishes what the run's output must be.
	ref := c.create(hammerSpec())
	c.post("/runs/" + ref.ID + "/start")
	c.waitState(ref.ID, StateDone)
	refResult := c.resultBytes(ref.ID)
	refFinalCk := c.checkpoint(ref.ID, hammerDays)
	refMidCk := c.checkpoint(ref.ID, 5)

	target := c.create(hammerSpec())
	id := target.ID
	base := c.ts.URL + "/runs/" + id
	c.post("/runs/" + id + "/start")

	const workers = 8
	const iters = 25
	client := c.ts.Client()
	// expect asserts a worker response against the statuses the contract
	// allows for that action.
	expect := func(action string, st int, err error, allowed ...int) {
		if err != nil {
			t.Errorf("%s: %v", action, err)
			return
		}
		for _, a := range allowed {
			if st == a {
				return
			}
		}
		t.Errorf("%s: status %d not in %v", action, st, allowed)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rnd := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < iters; i++ {
				switch rnd.Intn(8) {
				case 0:
					// Pause: fine while running or paused, conflict once done.
					st, _, err := rawDo(client, "POST", base+"/pause", nil)
					expect("pause", st, err, http.StatusOK, http.StatusConflict)
				case 1:
					st, _, err := rawDo(client, "POST", base+"/resume", nil)
					expect("resume", st, err, http.StatusOK, http.StatusConflict)
				case 2:
					st, _, err := rawDo(client, "GET", base, nil)
					expect("status", st, err, http.StatusOK)
				case 3:
					st, _, err := rawDo(client, "GET", base+"/result", nil)
					expect("result", st, err, http.StatusOK)
				case 4:
					// Every mutation restates the current scenario: a no-op
					// by contract, whatever the interleaving.
					bodies := []string{`{"policy": "baat"}`, `{"sunshine": 0.5}`, `{"faults": "none"}`}
					st, _, err := rawDo(client, "POST", base+"/mutate", []byte(bodies[rnd.Intn(len(bodies))]))
					expect("no-op mutate", st, err, http.StatusOK, http.StatusConflict)
				case 5:
					// Fork then immediately delete the child. Day 1 may not
					// be checkpointed yet in the earliest interleavings.
					st, body, err := rawDo(client, "POST", base+"/fork?day=1", nil)
					expect("fork", st, err, http.StatusCreated, http.StatusConflict)
					if err == nil && st == http.StatusCreated {
						var child RunInfo
						if jerr := json.Unmarshal(body, &child); jerr != nil {
							t.Errorf("fork body: %v", jerr)
							continue
						}
						st, _, err = rawDo(client, "DELETE", c.ts.URL+"/runs/"+child.ID, nil)
						expect("delete fork", st, err, http.StatusNoContent)
					}
				case 6:
					st, _, err := rawDo(client, "GET", base+"/checkpoint?day=1", nil)
					expect("checkpoint", st, err, http.StatusOK, http.StatusConflict)
				case 7:
					// Subscribe to the stream, read the first flush, walk away.
					ctx, cancel := context.WithCancel(context.Background())
					req, _ := http.NewRequestWithContext(ctx, "GET", base+"/stream", nil)
					resp, err := client.Do(req)
					if err != nil {
						cancel()
						t.Errorf("stream: %v", err)
						continue
					}
					buf := make([]byte, 256)
					_, _ = resp.Body.Read(buf)
					cancel()
					resp.Body.Close()
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	// Drive the survivor home (the last hammer action may have left it
	// paused) and hold it to the quiet twin's bytes.
	if st, body := c.do("POST", "/runs/"+id+"/resume", nil); st != http.StatusOK && st != http.StatusConflict {
		t.Fatalf("final resume: status %d: %s", st, body)
	}
	c.waitState(id, StateDone)

	if got := c.resultBytes(id); !bytes.Equal(got, refResult) {
		t.Fatalf("hammered run's result diverged from the quiet twin:\nquiet:    %s\nhammered: %s", refResult, got)
	}
	if got := c.checkpoint(id, 5); !bytes.Equal(got, refMidCk) {
		t.Fatal("hammered run's day-5 checkpoint diverged from the quiet twin")
	}
	if got := c.checkpoint(id, hammerDays); !bytes.Equal(got, refFinalCk) {
		t.Fatal("hammered run's final checkpoint diverged from the quiet twin")
	}
}
