package experiments

import (
	"fmt"
	"time"

	"github.com/green-dc/baat/internal/cost"
	"github.com/green-dc/baat/internal/grid"
	"github.com/green-dc/baat/internal/units"
)

// DemandResponse quantifies the dual-purposing question the paper's related
// work raises ([21]: "Should We Dual-Purpose Energy Storage in Datacenters
// for Power Backup and Demand Response?"): a quarter of evening peak
// shaving at different discharge floors, with the arbitrage savings netted
// against the battery wear they cause. Aging-oblivious shaving (floor at
// the protection limit) earns the most gross savings and the least net.
func DemandResponse(cfg Config) (*Table, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	// A quarter of equivalent calendar time, compressed by the aging
	// acceleration factor.
	days := int(90 / cfg.Accel)
	if cfg.Quick {
		days = int(30 / cfg.Accel)
	}
	if days < 2 {
		days = 2
	}
	batteryCost := cost.DefaultModel().BatteryUnitCost

	t := &Table{
		ID:      "demand-response",
		Title:   "Demand response: arbitrage savings vs battery wear (one quarter)",
		Columns: []string{"discharge floor", "shaved kWh", "gross savings ($)", "battery wear", "net benefit ($)"},
		Values:  map[string]float64{},
	}
	floors := []struct {
		key   string
		floor float64
	}{
		{"aggressive", 0.05},
		{"baat", 0.40},
		{"timid", 0.70},
	}
	type cell struct {
		shaved, savings, wear, net float64
	}
	cells := make([]cell, len(floors))
	if err := runSweep(cfg.sweepWorkers(), len(floors), func(i int) error {
		scfg := grid.DefaultShaverConfig()
		scfg.AgingConfig.AccelFactor = cfg.Accel
		scfg.FloorSoC = floors[i].floor
		s, err := grid.NewShaver(scfg)
		if err != nil {
			return err
		}
		if err := s.RunDays(days, units.Watt(120), time.Minute); err != nil {
			return err
		}
		l := s.Ledger()
		cells[i] = cell{l.ShavedKWh, l.ArbitrageSavings, 1 - s.Battery().Health(), s.NetBenefit(batteryCost)}
		return nil
	}); err != nil {
		return nil, err
	}
	for i, f := range floors {
		c := cells[i]
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.0f%% (%s)", f.floor*100, f.key),
			fmt.Sprintf("%.1f", c.shaved),
			fmt.Sprintf("%.2f", c.savings),
			pct(c.wear),
			fmt.Sprintf("%.2f", c.net),
		})
		t.Values[f.key+"_savings"] = c.savings
		t.Values[f.key+"_wear"] = c.wear
		t.Values[f.key+"_net"] = c.net
	}
	t.Notes = append(t.Notes,
		"Table 1's 'demand response' row with dollars attached: the aggressive",
		"shaver earns the most gross savings and pays the most battery wear")
	return t, nil
}
