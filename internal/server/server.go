// Package server models the compute nodes of the prototype (three IBM X
// series 330 and three HP ProLiant machines, DSN'15 Fig 11) at the level
// BAAT observes and actuates them: an IPDU power reading, a DVFS ladder the
// controller can step through, and a set of hosted VMs.
package server

import (
	"fmt"
	"math"
	"time"

	"github.com/green-dc/baat/internal/units"
	"github.com/green-dc/baat/internal/vm"
)

// Spec describes a server model's power behaviour.
type Spec struct {
	// IdlePower is the draw at zero utilization, full frequency.
	IdlePower units.Watt
	// PeakPower is the draw at full utilization, full frequency.
	PeakPower units.Watt
	// FreqLevels is the DVFS ladder as frequency fractions of nominal,
	// ascending, ending at 1.0.
	FreqLevels []float64
	// CPUCapacity is the total utilization the server can host (1.0 = one
	// fully loaded CPU's worth).
	CPUCapacity float64
}

// DefaultSpec models the prototype's mid-2000s rack servers: ~85 W idle,
// ~160 W peak, five DVFS steps.
func DefaultSpec() Spec {
	return Spec{
		IdlePower:   85,
		PeakPower:   160,
		FreqLevels:  []float64{0.6, 0.7, 0.8, 0.9, 1.0},
		CPUCapacity: 2.0,
	}
}

// Validate checks the spec.
func (s Spec) Validate() error {
	if s.IdlePower <= 0 || s.PeakPower <= s.IdlePower {
		return fmt.Errorf("server: need 0 < idle (%v) < peak (%v)", s.IdlePower, s.PeakPower)
	}
	if len(s.FreqLevels) == 0 {
		return fmt.Errorf("server: need at least one DVFS level")
	}
	prev := 0.0
	for i, f := range s.FreqLevels {
		if f <= prev || f > 1 {
			return fmt.Errorf("server: DVFS levels must be ascending in (0, 1], level %d = %v", i, f)
		}
		prev = f
	}
	if s.FreqLevels[len(s.FreqLevels)-1] != 1 {
		return fmt.Errorf("server: top DVFS level must be 1.0, got %v", s.FreqLevels[len(s.FreqLevels)-1])
	}
	if s.CPUCapacity <= 0 {
		return fmt.Errorf("server: CPU capacity must be positive, got %v", s.CPUCapacity)
	}
	return nil
}

// Server is one compute node. Not safe for concurrent use.
type Server struct {
	id      string
	spec    Spec
	freqIdx int
	powered bool
	vms     []*vm.VM

	throughput float64 // accumulated work units (Fig 20's metric)
	downtime   time.Duration
	uptime     time.Duration
}

// New constructs a powered-on server at full frequency.
func New(id string, spec Spec) (*Server, error) {
	s := new(Server)
	if err := NewInto(s, id, spec); err != nil {
		return nil, err
	}
	return s, nil
}

// NewInto initializes a powered-on server at full frequency in place,
// overwriting *s. It exists so a fleet can lay servers out in one
// contiguous slice instead of allocating each behind its own pointer;
// the resulting value is identical to one built by New.
func NewInto(s *Server, id string, spec Spec) error {
	if id == "" {
		return fmt.Errorf("server: id must not be empty")
	}
	if err := spec.Validate(); err != nil {
		return err
	}
	*s = Server{
		id:      id,
		spec:    spec,
		freqIdx: len(spec.FreqLevels) - 1,
		powered: true,
	}
	return nil
}

// ID returns the server identifier.
func (s *Server) ID() string { return s.id }

// Spec returns the server's power specification.
func (s *Server) Spec() Spec { return s.spec }

// Powered reports whether the node currently has power.
func (s *Server) Powered() bool { return s.powered }

// Frequency returns the current DVFS frequency fraction.
func (s *Server) Frequency() float64 { return s.spec.FreqLevels[s.freqIdx] }

// FrequencyIndex returns the current DVFS ladder position.
func (s *Server) FrequencyIndex() int { return s.freqIdx }

// TopFrequencyIndex returns the ladder's highest position; a server is
// frequency-capped exactly when FrequencyIndex() is below it.
func (s *Server) TopFrequencyIndex() int { return len(s.spec.FreqLevels) - 1 }

// SetFrequencyIndex moves the DVFS ladder to position idx (the software
// driver of §IV-A: "we can dynamically set the frequency of processors").
func (s *Server) SetFrequencyIndex(idx int) error {
	if idx < 0 || idx >= len(s.spec.FreqLevels) {
		return fmt.Errorf("server %s: DVFS index %d out of range [0, %d)", s.id, idx, len(s.spec.FreqLevels))
	}
	s.freqIdx = idx
	return nil
}

// StepDownFrequency lowers frequency one notch; it reports whether a lower
// level existed.
func (s *Server) StepDownFrequency() bool {
	if s.freqIdx == 0 {
		return false
	}
	s.freqIdx--
	return true
}

// StepUpFrequency raises frequency one notch; it reports whether a higher
// level existed.
func (s *Server) StepUpFrequency() bool {
	if s.freqIdx == len(s.spec.FreqLevels)-1 {
		return false
	}
	s.freqIdx++
	return true
}

// VMs returns the hosted VMs. The returned slice is a copy; the VMs are
// shared.
func (s *Server) VMs() []*vm.VM {
	return append([]*vm.VM(nil), s.vms...)
}

// ActiveVMCount returns the number of hosted VMs that still need the server
// (anything not completed). A server with none can be scheduled off to save
// its idle power.
func (s *Server) ActiveVMCount() int {
	var n int
	for _, v := range s.vms {
		if v.State() != vm.Completed {
			n++
		}
	}
	return n
}

// ActiveUtilization sums the utilization demanded by hosted VMs, clamped to
// capacity.
func (s *Server) ActiveUtilization() float64 {
	var u float64
	for _, v := range s.vms {
		u += v.Utilization()
	}
	return math.Min(u, s.spec.CPUCapacity)
}

// reservedUtilization is the placement-time view: VM peak demands, so a
// momentarily idle VM still holds its slot.
func (s *Server) reservedUtilization() float64 {
	var u float64
	for _, v := range s.vms {
		if v.State() != vm.Completed {
			u += v.Profile().PeakUtilization
		}
	}
	return u
}

// CanHost reports whether the server has CPU headroom for the VM at its
// peak demand — the resource constraint that can block migration (§IV-C).
func (s *Server) CanHost(v *vm.VM) bool {
	if v == nil {
		return false
	}
	return s.reservedUtilization()+v.Profile().PeakUtilization <= s.spec.CPUCapacity+1e-9
}

// Attach places a VM on the server.
func (s *Server) Attach(v *vm.VM) error {
	if v == nil {
		return fmt.Errorf("server %s: cannot attach nil VM", s.id)
	}
	for _, cur := range s.vms {
		if cur.ID() == v.ID() {
			return fmt.Errorf("server %s: VM %s already attached", s.id, v.ID())
		}
	}
	if !s.CanHost(v) {
		return fmt.Errorf("server %s: no capacity for VM %s (reserved %.2f + %.2f > %.2f)",
			s.id, v.ID(), s.reservedUtilization(), v.Profile().PeakUtilization, s.spec.CPUCapacity)
	}
	s.vms = append(s.vms, v)
	return nil
}

// DetachCompleted removes every completed VM in place, preserving the
// relative order of the remaining VMs, and returns how many were removed.
// It is the allocation-free bulk form of Detach for the simulator's
// control-period reap pass.
func (s *Server) DetachCompleted() int {
	kept := s.vms[:0]
	for _, v := range s.vms {
		if v.State() != vm.Completed {
			kept = append(kept, v)
		}
	}
	removed := len(s.vms) - len(kept)
	for i := len(kept); i < len(s.vms); i++ {
		s.vms[i] = nil
	}
	s.vms = kept
	return removed
}

// Detach removes a VM from the server.
func (s *Server) Detach(id string) (*vm.VM, error) {
	for i, cur := range s.vms {
		if cur.ID() == id {
			s.vms = append(s.vms[:i], s.vms[i+1:]...)
			return cur, nil
		}
	}
	return nil, fmt.Errorf("server %s: VM %s not attached", s.id, id)
}

// Power returns the present electrical draw as the IPDU would report it:
// idle plus a dynamic part scaling with utilization and the cube of
// frequency (voltage tracks frequency, P ∝ f·V²).
func (s *Server) Power() units.Watt {
	if !s.powered {
		return 0
	}
	f := s.Frequency()
	dyn := float64(s.spec.PeakPower-s.spec.IdlePower) * s.ActiveUtilization() * f * f * f
	return s.spec.IdlePower + units.Watt(dyn)
}

// PeakPowerAt returns the draw the server would have at full utilization
// and the given DVFS index — used by policies to predict capping effect.
func (s *Server) PeakPowerAt(idx int) (units.Watt, error) {
	if idx < 0 || idx >= len(s.spec.FreqLevels) {
		return 0, fmt.Errorf("server %s: DVFS index %d out of range", s.id, idx)
	}
	f := s.spec.FreqLevels[idx]
	return s.spec.IdlePower + units.Watt(float64(s.spec.PeakPower-s.spec.IdlePower)*f*f*f), nil
}

// SetPowered powers the node on or off. Powering off checkpoints (pauses)
// all hosted VMs, as the prototype does when solar power disappears (§V-B);
// powering on resumes them.
func (s *Server) SetPowered(on bool) {
	if s.powered == on {
		return
	}
	s.powered = on
	for _, v := range s.vms {
		if on {
			_ = v.Resume() // migrating/completed VMs are left alone
		} else {
			_ = v.Pause()
		}
	}
}

// Step advances hosted VMs by dt. Work proceeds at the DVFS frequency when
// powered; a dark node accrues downtime and zero throughput (the e-Buff
// failure mode of §VI-F). It returns the work units completed this step.
func (s *Server) Step(dt time.Duration) float64 {
	if dt <= 0 {
		return 0
	}
	if !s.powered {
		s.downtime += dt
		for _, v := range s.vms {
			v.Advance(dt, 0)
		}
		return 0
	}
	s.uptime += dt
	speed := s.Frequency()
	var done float64
	for _, v := range s.vms {
		done += v.Advance(dt, speed)
	}
	s.throughput += done
	return done
}

// Throughput returns accumulated work units — the compute-throughput metric
// of Fig 20.
func (s *Server) Throughput() float64 { return s.throughput }

// Downtime returns accumulated unpowered time.
func (s *Server) Downtime() time.Duration { return s.downtime }

// Uptime returns accumulated powered time.
func (s *Server) Uptime() time.Duration { return s.uptime }
