package battery

import (
	"testing"
	"time"

	"github.com/green-dc/baat/internal/telemetry"
	"github.com/green-dc/baat/internal/units"
)

// TestWithRecorderStepCounters checks every step kind reaches its counter.
func TestWithRecorderStepCounters(t *testing.T) {
	rec := telemetry.NewRecorder()
	p, err := New(DefaultSpec(), WithInitialSoC(0.8), WithRecorder(rec))
	if err != nil {
		t.Fatal(err)
	}

	if _, err := p.Discharge(200, time.Minute, 25); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Charge(100, time.Minute, 25); err != nil {
		t.Fatal(err)
	}
	p.Rest(time.Minute, 25)

	snap := rec.Snapshot()
	for name, want := range map[string]int64{
		telemetry.MetricBatteryDischargeSteps: 1,
		telemetry.MetricBatteryChargeSteps:    1,
		telemetry.MetricBatteryRestSteps:      1,
		telemetry.MetricBatteryCutoffs:        0,
	} {
		if got := snap.Counter(name); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
}

// TestWithRecorderCutoff drains a pack past its protection cutoff and
// expects the cutoff counter to move.
func TestWithRecorderCutoff(t *testing.T) {
	rec := telemetry.NewRecorder()
	p, err := New(DefaultSpec(), WithInitialSoC(0.15), WithRecorder(rec))
	if err != nil {
		t.Fatal(err)
	}
	// Pull a heavy load until the pack refuses: low SoC plus high power
	// forces either the empty or under-voltage cutoff within a few steps.
	for i := 0; i < 600; i++ {
		res, err := p.Discharge(units.Watt(400), time.Minute, 25)
		if err != nil {
			t.Fatal(err)
		}
		if res.CutOff {
			break
		}
	}
	if got := rec.Snapshot().Counter(telemetry.MetricBatteryCutoffs); got == 0 {
		t.Error("no cutoff counted after draining the pack")
	}
}

// TestWithRecorderNil ensures a nil recorder is a valid no-op option.
func TestWithRecorderNil(t *testing.T) {
	p, err := New(DefaultSpec(), WithRecorder(nil))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Discharge(100, time.Minute, 25); err != nil {
		t.Fatal(err)
	}
	p.Rest(time.Minute, 25)
}
