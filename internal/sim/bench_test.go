package sim

// BenchmarkFleetStep measures the per-tick node-physics fan-out at
// production fleet sizes (the ROADMAP's "as fast as the hardware allows"
// axis). Fleets of 16/256/2048 nodes run one simulated day per iteration,
// serially and across all CPUs, so `-bench=FleetStep` reports the parallel
// speedup directly. The equivalence tests in parallel_test.go guarantee
// the two variants compute identical results; this benchmark only measures
// wall time.
//
// CI runs it with `-benchtime=1x` (see check.sh bench-smoke); use the
// default benchtime for stable speedup numbers.

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"github.com/green-dc/baat/internal/core"
	"github.com/green-dc/baat/internal/solar"
)

// benchFleet builds a fleet where one node in four hosts a persistent
// service, so the timed region mixes the powered and scheduled-off step
// paths like a real consolidated datacenter.
func benchFleet(b *testing.B, nodes, workers int) *Simulator {
	b.Helper()
	policy, err := core.New(core.EBuff, core.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Nodes = nodes
	cfg.Workers = workers
	cfg.Tick = 5 * time.Minute
	cfg.JobsPerDay = 0
	cfg.ServiceVMs = nodes / 4
	cfg.Solar.Scale = 1.5 * float64(nodes) / 6
	s, err := New(cfg, policy)
	if err != nil {
		b.Fatal(err)
	}
	// Warm up one day outside the timer so service placement (the one-off
	// O(VMs × nodes) scheduling pass) stays out of the step measurement.
	if _, err := s.RunDay(solar.Sunny); err != nil {
		b.Fatal(err)
	}
	return s
}

func BenchmarkFleetStep(b *testing.B) {
	workerCounts := []int{1}
	if n := runtime.GOMAXPROCS(0); n > 1 {
		workerCounts = append(workerCounts, n)
	}
	for _, nodes := range []int{16, 256, 2048} {
		for _, workers := range workerCounts {
			name := fmt.Sprintf("nodes=%d/workers=%d", nodes, workers)
			b.Run(name, func(b *testing.B) {
				s := benchFleet(b, nodes, workers)
				ticksPerDay := int(24 * time.Hour / s.cfg.Tick)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := s.RunDay(solar.Cloudy); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				steps := float64(b.N*ticksPerDay*nodes) / b.Elapsed().Seconds()
				b.ReportMetric(steps, "node-steps/s")
			})
		}
	}
}
