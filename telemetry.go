package baat

import (
	"github.com/green-dc/baat/internal/telemetry"
)

// Recorder collects counters, gauges, histograms, and traced events from an
// instrumented run. A nil *Recorder is valid everywhere one is accepted and
// records nothing at effectively no cost; see SimConfig.Telemetry and
// ExperimentConfig.Telemetry.
type Recorder = telemetry.Recorder

// TelemetrySnapshot is a point-in-time copy of every registered metric and
// the traced event ring, as returned by Recorder.Snapshot.
type TelemetrySnapshot = telemetry.Snapshot

// TelemetryEvent is one traced controller event (a migration, a DVFS cap, a
// DoD target move, a battery end-of-life, an agent reconnect).
type TelemetryEvent = telemetry.Event

// TelemetryServer is a running /metrics + /events + pprof HTTP listener.
type TelemetryServer = telemetry.Server

// NewRecorder builds an empty telemetry recorder.
func NewRecorder(opts ...telemetry.RecorderOption) *Recorder {
	return telemetry.NewRecorder(opts...)
}

// ServeTelemetry exposes the recorder on addr: Prometheus text at /metrics,
// the traced event ring as JSON at /events, and net/http/pprof under
// /debug/pprof/. Use addr ":0" to bind an ephemeral port and
// TelemetryServer.Addr to discover it.
func ServeTelemetry(rec *Recorder, addr string) (*TelemetryServer, error) {
	return rec.ListenAndServe(addr)
}
