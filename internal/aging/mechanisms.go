package aging

import (
	"fmt"
	"math"
	"time"

	"github.com/green-dc/baat/internal/battery"
	"github.com/green-dc/baat/internal/units"
)

// Mechanism identifies one of the five lead-acid aging processes of §II-B.
type Mechanism int

// The five aging mechanisms (DSN'15 §II-B, Fig 6).
const (
	Corrosion      Mechanism = iota + 1 // grid corrosion (resistance growth)
	Shedding                            // active-mass degradation/shedding
	Sulphation                          // irreversible lead-sulfate formation
	WaterLoss                           // drying out of VRLA electrolyte
	Stratification                      // electrolyte density stratification
)

// NumMechanisms is the count of modeled mechanisms.
const NumMechanisms = 5

// String returns the mechanism name.
func (m Mechanism) String() string {
	switch m {
	case Corrosion:
		return "corrosion"
	case Shedding:
		return "active-mass shedding"
	case Sulphation:
		return "sulphation"
	case WaterLoss:
		return "water loss"
	case Stratification:
		return "electrolyte stratification"
	default:
		return fmt.Sprintf("Mechanism(%d)", int(m))
	}
}

// ModelConfig carries the rate constants of the damage model. Rates are
// expressed as damage fractions per unit of driving stress so that a
// calibration test can pin the paper's measured six-month drift (Figs 3–5).
type ModelConfig struct {
	// Chemistry selects the damage model: the lead-acid mechanisms below
	// (the zero value, keeping pre-existing configs and their checkpoint
	// hashes intact), the Li-ion cycle-life/calendar curves, or the linear
	// tier's throughput-only fade. Must agree with the battery spec's
	// Chemistry; node.Config.Validate cross-checks the two.
	Chemistry battery.Kind `json:",omitempty"`

	// AccelFactor uniformly scales all damage rates. 1 reproduces the
	// calibrated real-time rates; lifetime sweeps use >1 to compress
	// months of simulated aging into fast runs without disturbing the
	// relative ordering of policies.
	AccelFactor float64

	// CorrosionPerHour is resistance-growth fraction per hour at the
	// 20 °C reference with no polarization stress.
	CorrosionPerHour float64

	// CorrosionFeedback couples corrosion rate to accumulated resistance
	// growth, reproducing the accelerating voltage-drop slope of Fig 3
	// (0.1 V/month early, 0.3 V/month late).
	CorrosionFeedback float64

	// SheddingPerFullCycle is capacity-fade fraction per equivalent full
	// cycle of Ah throughput at benign conditions.
	SheddingPerFullCycle float64

	// SulphationPerHourDeep is capacity-fade fraction per hour spent in
	// deep discharge (SoC < 40 %).
	SulphationPerHourDeep float64

	// WaterLossPerOverchargeAh is efficiency-loss fraction per Ah of
	// overcharge (charging while nearly full).
	WaterLossPerOverchargeAh float64

	// StratificationPerPartialAh is capacity-fade fraction per Ah cycled
	// without reaching full recharge.
	StratificationPerPartialAh float64

	// TempRefC and TempDoublingC define the Arrhenius-style thermal
	// acceleration: rates double every TempDoublingC above TempRefC
	// (§III-E: +10 °C halves lifetime).
	TempRefC      units.Celsius
	TempDoublingC float64

	// CycleFadePerEFC is capacity-fade fraction per equivalent full cycle
	// of discharge throughput — the driver for the LFP and linear
	// chemistries (lead-acid splits the same stress across its mechanism
	// rates instead).
	CycleFadePerEFC float64 `json:",omitempty"`

	// CalendarFadePerSqrtHour is the √t calendar-fade coefficient for the
	// LFP chemistry: fade = k·√(hours) at reference temperature and
	// mid-SoC storage, per the square-root-of-time laws fitted in "Quality
	// Analysis of Battery Degradation Models with Real Battery Aging
	// Experiment Data".
	CalendarFadePerSqrtHour float64 `json:",omitempty"`

	// HighSoCStress scales LFP calendar fade with storage state of charge:
	// the multiplier rises linearly from 1 at 50 % SoC to 1+HighSoCStress
	// at full, reflecting the high-voltage storage stress Li-ion cells
	// show.
	HighSoCStress float64 `json:",omitempty"`
}

// DefaultModelConfig returns rate constants calibrated so that the paper's
// prototype usage pattern (daily cycling of a 12 V 35 Ah unit behind a
// solar-powered server for six months) reproduces the measured drift:
// ≈9 % loaded-voltage drop (Fig 3), ≈14 % per-cycle energy drop (Fig 4),
// and ≈8 % round-trip-efficiency drop (Fig 5). See TestCalibrationSixMonths.
func DefaultModelConfig() ModelConfig {
	return ModelConfig{
		AccelFactor:                1,
		CorrosionPerHour:           3.4e-4,
		CorrosionFeedback:          0.35,
		SheddingPerFullCycle:       2.1e-4,
		SulphationPerHourDeep:      2.0e-5,
		WaterLossPerOverchargeAh:   6.0e-5,
		StratificationPerPartialAh: 8.0e-6,
		TempRefC:                   20,
		TempDoublingC:              10,
	}
}

// Validate checks the configuration.
func (c ModelConfig) Validate() error {
	if !c.Chemistry.Valid() {
		return fmt.Errorf("aging: unknown chemistry %q", c.Chemistry)
	}
	if c.AccelFactor <= 0 {
		return fmt.Errorf("aging: AccelFactor must be positive, got %v", c.AccelFactor)
	}
	if c.TempDoublingC <= 0 {
		return fmt.Errorf("aging: TempDoublingC must be positive, got %v", c.TempDoublingC)
	}
	for _, r := range []struct {
		name string
		v    float64
	}{
		{"CorrosionPerHour", c.CorrosionPerHour},
		{"CorrosionFeedback", c.CorrosionFeedback},
		{"SheddingPerFullCycle", c.SheddingPerFullCycle},
		{"SulphationPerHourDeep", c.SulphationPerHourDeep},
		{"WaterLossPerOverchargeAh", c.WaterLossPerOverchargeAh},
		{"StratificationPerPartialAh", c.StratificationPerPartialAh},
		{"CycleFadePerEFC", c.CycleFadePerEFC},
		{"CalendarFadePerSqrtHour", c.CalendarFadePerSqrtHour},
		{"HighSoCStress", c.HighSoCStress},
	} {
		if r.v < 0 {
			return fmt.Errorf("aging: %s must be non-negative, got %v", r.name, r.v)
		}
	}
	return nil
}

// DefaultLFPModelConfig returns rate constants for the LiFePO4 chemistry,
// matched to the empirical curves in "Quality Analysis of Battery
// Degradation Models": cycle life of roughly 3500 equivalent full cycles
// to 80 % capacity (0.2 / 3500 ≈ 5.7e-5 fade per EFC) and calendar fade
// of about 2.5 % per year at 25 °C mid-SoC storage
// (0.025 / √8760 ≈ 2.67e-4 per √hour), with temperature sensitivity a
// little gentler than lead-acid (doubling every 12 °C).
func DefaultLFPModelConfig() ModelConfig {
	return ModelConfig{
		Chemistry:               battery.KindLFP,
		AccelFactor:             1,
		CycleFadePerEFC:         5.7e-5,
		CalendarFadePerSqrtHour: 2.67e-4,
		HighSoCStress:           0.6,
		TempRefC:                25,
		TempDoublingC:           12,
	}
}

// DefaultLinearModelConfig returns the linear tier's throughput-only
// damage model: a single fade-per-equivalent-full-cycle rate on the VRLA
// scale, calibrated against the electrochemical reference on the 30-day
// golden scenario (the cross-fidelity comparison in internal/sim pins the
// residual error), so linear-tier health falls on the same trajectory as
// the full model without simulating the mechanisms.
func DefaultLinearModelConfig() ModelConfig {
	return ModelConfig{
		Chemistry:       battery.KindLinear,
		AccelFactor:     1,
		CycleFadePerEFC: 3e-3,
		TempRefC:        20,
		TempDoublingC:   10,
	}
}

// DefaultModelConfigFor returns the stock damage-model constants for a
// battery model tier.
func DefaultModelConfigFor(k battery.Kind) (ModelConfig, error) {
	switch k.Normalize() {
	case battery.KindLeadAcid:
		return DefaultModelConfig(), nil
	case battery.KindLinear:
		return DefaultLinearModelConfig(), nil
	case battery.KindLFP:
		return DefaultLFPModelConfig(), nil
	}
	return ModelConfig{}, fmt.Errorf("aging: unknown battery model %q", k)
}

// Model integrates mechanism-level damage for one battery from its sample
// stream and renders the result as battery.Degradation. The zero value is
// unusable; construct with NewModel.
type Model struct {
	cfg       ModelConfig
	capNom    units.AmpereHour
	byMech    [NumMechanisms]float64 // raw accumulated stress per mechanism
	resGrow   float64
	capFade   float64
	effLoss   float64
	sinceFull float64 // Ah discharged since the last full recharge
	hours     float64 // accelerated hours observed (the LFP √t calendar clock)

	// tfTemp/tfValue memoize tempFactor keyed by the clamped temperature
	// (cfg is fixed at construction). Case temperature settles exactly —
	// the thermal model's exponential decay converges to its steady state
	// in float64 — so overnight and idle stretches hit this cache every
	// tick. A hit is bit-identical to recomputing.
	tfTemp  float64
	tfValue float64
	tfValid bool

	// chem is cfg.Chemistry.Normalize() hoisted to an integer tag at
	// construction so the per-sample Observe dispatch is a jump, not a
	// string comparison.
	chem uint8

	// dtLast/dtHours memoize Sample.Dt.Hours(): the tick width is constant
	// within a run, so after the first sample the hours conversion is an
	// integer compare instead of a float division. The cached value is the
	// same division result bit for bit.
	dtLast  time.Duration
	dtHours float64
}

// Chemistry dispatch tags (Model.chem).
const (
	chemLeadAcid uint8 = iota
	chemLFP
	chemLinear
)

// NewModel creates a damage integrator for a battery with nominal capacity
// capNom (the per-cycle normalizer for throughput-driven mechanisms).
func NewModel(cfg ModelConfig, capNom units.AmpereHour) (*Model, error) {
	m := new(Model)
	if err := NewModelInto(m, cfg, capNom); err != nil {
		return nil, err
	}
	return m, nil
}

// NewModelInto initializes a damage integrator in place, overwriting *m.
// It exists so a fleet can lay models out in one contiguous slice; the
// resulting value is identical to one built by NewModel.
func NewModelInto(m *Model, cfg ModelConfig, capNom units.AmpereHour) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	if capNom <= 0 {
		return fmt.Errorf("aging: nominal capacity must be positive, got %v", capNom)
	}
	*m = Model{cfg: cfg, capNom: capNom}
	switch cfg.Chemistry.Normalize() {
	case battery.KindLFP:
		m.chem = chemLFP
	case battery.KindLinear:
		m.chem = chemLinear
	}
	return nil
}

// hoursOf returns d.Hours() memoized on d. Observe rejects non-positive
// durations before calling this, so the zero-valued cache can never alias
// a real sample.
func (m *Model) hoursOf(d time.Duration) float64 {
	if d != m.dtLast {
		m.dtLast, m.dtHours = d, d.Hours()
	}
	return m.dtHours
}

// tempFactor returns the Arrhenius-style acceleration at temperature t,
// clamped to the physical envelope the battery model enforces (≤ 90 °C) so
// that degraded-pack feedback cannot run the rates to infinity.
func (m *Model) tempFactor(t units.Celsius) float64 {
	c := units.Clamp(float64(t), -20, 90)
	if m.tfValid && c == m.tfTemp {
		return m.tfValue
	}
	exp := (c - float64(m.cfg.TempRefC)) / m.cfg.TempDoublingC
	m.tfTemp, m.tfValue, m.tfValid = c, math.Pow(2, exp), true
	return m.tfValue
}

// lowSoCStress grows as SoC falls below the deep-discharge line; 1 at 40 %
// SoC, rising quadratically to 6 when empty. Shedding and sulphation both
// accelerate sharply at very low states of charge (§II-B-2, §II-B-3), which
// is why the cycle-life curves of Fig 10 fall off so steeply with depth of
// discharge.
func lowSoCStress(soc float64) float64 {
	if soc >= DeepDischargeSoC {
		return 1
	}
	d := (DeepDischargeSoC - soc) / DeepDischargeSoC
	return 1 + 5*d*d
}

// Observe integrates damage for one sample interval, dispatching on the
// configured chemistry.
func (m *Model) Observe(s Sample) error {
	if s.Dt <= 0 {
		return fmt.Errorf("aging: sample duration must be positive, got %v", s.Dt)
	}
	switch m.chem {
	case chemLFP:
		m.observeLFP(s)
	case chemLinear:
		m.observeLinear(s)
	default:
		m.observeLeadAcid(s)
	}
	return nil
}

// observeLeadAcid integrates the five VRLA mechanisms of §II-B.
func (m *Model) observeLeadAcid(s Sample) {
	hours := m.hoursOf(s.Dt)
	soc := units.Clamp01(s.SoC)
	tf := m.tempFactor(s.Temperature)
	a := m.cfg.AccelFactor

	// 1) Grid corrosion: always ticking, thermally accelerated, with a
	//    positive feedback on accumulated growth and extra polarization
	//    stress while float-charging near full.
	polarization := 1.0
	if s.Current < 0 && soc > 0.95 {
		polarization = 1.6
	}
	// The feedback term is clamped so a failed battery's runaway corrosion
	// stays finite (the pack clamps applied resistance growth anyway).
	feedback := 1 + m.cfg.CorrosionFeedback*units.Clamp(m.resGrow, 0, 20)
	dCorr := a * m.cfg.CorrosionPerHour * hours * tf * polarization * feedback
	m.byMech[Corrosion-1] += dCorr
	m.resGrow += dCorr
	// Corrosion also strands a little active material.
	m.capFade += 0.01 * dCorr

	if s.Current > 0 { // discharging
		ah := float64(s.Current) * hours
		cycles := ah / float64(m.capNom)

		// 2) Active-mass shedding: proportional to Ah throughput,
		//    accelerated at low SoC and at discharge rates above the
		//    reference (C/20) rate.
		rateStress := 1.0
		ref := float64(m.capNom) / 20
		if float64(s.Current) > ref {
			rateStress = math.Sqrt(float64(s.Current) / ref)
		}
		dShed := a * m.cfg.SheddingPerFullCycle * cycles * lowSoCStress(soc) * rateStress * tf
		m.byMech[Shedding-1] += dShed
		m.capFade += dShed
		m.resGrow += 0.3 * dShed

		// 5) Stratification: partial cycling that never reaches a full
		//    recharge lets acid stratify; damage scales with Ah cycled
		//    since the last full charge.
		m.sinceFull += ah
		dStrat := a * m.cfg.StratificationPerPartialAh * ah * tf * units.Clamp(m.sinceFull/float64(m.capNom), 0, 3)
		m.byMech[Stratification-1] += dStrat
		m.capFade += dStrat
	}

	if s.Current < 0 { // charging
		ah := -float64(s.Current) * hours
		// 4) Water loss: overcharge gassing near full, thermally driven.
		if soc > 0.95 {
			dWater := a * m.cfg.WaterLossPerOverchargeAh * ah * tf
			m.byMech[WaterLoss-1] += dWater
			m.effLoss += dWater
			m.resGrow += 0.2 * dWater
		}
		if soc >= 0.99 {
			// Full recharge dissolves fresh sulphate and remixes the
			// electrolyte going forward (the already-booked damage is
			// irreversible).
			m.sinceFull = 0
		}
	}

	// 3) Sulphation: time spent at low SoC converts active mass
	//    irreversibly; nearly linear in time and in sulphate-ion
	//    solubility, which rises with temperature (§II-B-3).
	if soc < DeepDischargeSoC {
		dSul := a * m.cfg.SulphationPerHourDeep * hours * lowSoCStress(soc) * tf
		m.byMech[Sulphation-1] += dSul
		m.capFade += dSul
		m.resGrow += 0.5 * dSul
	}
}

// observeLFP integrates the Li-ion damage model: √t calendar fade scaled
// by temperature and storage SoC, plus throughput-driven cycle fade.
// Calendar fade books under the Corrosion slot and cycle fade under the
// Shedding slot — the time-driven and throughput-driven buckets of the
// mechanism decomposition — so ByMechanism and the snapshot shape stay
// common across chemistries.
func (m *Model) observeLFP(s Sample) {
	hours := m.hoursOf(s.Dt)
	soc := units.Clamp01(s.SoC)
	tf := m.tempFactor(s.Temperature)
	a := m.cfg.AccelFactor

	// Calendar fade follows k·√t, so the increment over this sample is
	// k·(√t₁ − √t₀) on an accelerated clock. Accumulating a·dt into the
	// clock first makes AccelFactor compress time exactly — fade after
	// simulating T hours at acceleration a equals fade after a·T real
	// hours — where scaling the increment instead would overstate √t fade
	// a-fold.
	prev := m.hours
	m.hours += a * hours
	socStress := 1 + m.cfg.HighSoCStress*math.Max(0, soc-0.5)/0.5
	dCal := m.cfg.CalendarFadePerSqrtHour * (math.Sqrt(m.hours) - math.Sqrt(prev)) * tf * socStress
	m.byMech[Corrosion-1] += dCal
	m.capFade += dCal
	m.resGrow += 0.1 * dCal

	if s.Current > 0 { // discharging
		ah := float64(s.Current) * hours
		cycles := ah / float64(m.capNom)
		// LFP tolerates deep discharge far better than lead-acid: stress
		// rises only quadratically to 2 at empty, not 6.
		stress := 1.0
		if soc < DeepDischargeSoC {
			d := (DeepDischargeSoC - soc) / DeepDischargeSoC
			stress = 1 + d*d
		}
		dCyc := a * m.cfg.CycleFadePerEFC * cycles * stress * tf
		m.byMech[Shedding-1] += dCyc
		m.capFade += dCyc
		m.resGrow += 0.2 * dCyc
	}
}

// observeLinear integrates the linear tier's throughput-only fade: no
// thermal, SoC, or calendar terms, just fade per equivalent full cycle,
// booked under the Shedding slot.
func (m *Model) observeLinear(s Sample) {
	if s.Current <= 0 {
		return
	}
	ah := float64(s.Current) * m.hoursOf(s.Dt)
	dCyc := m.cfg.AccelFactor * m.cfg.CycleFadePerEFC * ah / float64(m.capNom)
	m.byMech[Shedding-1] += dCyc
	m.capFade += dCyc
}

// InjectDamage books externally caused, irreversible damage on top of the
// integrated mechanism stress: sudden capacity fade, internal-resistance
// growth, or efficiency loss from a cell failure rather than gradual wear
// (the fault injector's battery faults land here). Negative components are
// ignored. The ByMechanism decomposition is untouched — injected damage is
// not attributable to any of the five modeled mechanisms, so after an
// injection the per-mechanism stresses no longer sum to the totals.
func (m *Model) InjectDamage(capFade, resGrowth, effLoss float64) {
	if capFade > 0 {
		m.capFade += capFade
	}
	if resGrowth > 0 {
		m.resGrow += resGrowth
	}
	if effLoss > 0 {
		m.effLoss += effLoss
	}
}

// Degradation renders the accumulated damage in the battery package's
// vocabulary so it can be applied to a Pack.
func (m *Model) Degradation() battery.Degradation {
	return battery.Degradation{
		CapacityFade:     units.Clamp01(m.capFade),
		ResistanceGrowth: m.resGrow,
		EfficiencyLoss:   m.effLoss,
	}
}

// Health returns the remaining-capacity fraction implied by the damage.
func (m *Model) Health() float64 { return 1 - units.Clamp01(m.capFade) }

// ByMechanism returns the raw accumulated stress attributed to each
// mechanism — the decomposition Fig 6 correlates with the metrics.
func (m *Model) ByMechanism() map[Mechanism]float64 {
	out := make(map[Mechanism]float64, NumMechanisms)
	for i := 0; i < NumMechanisms; i++ {
		out[Mechanism(i+1)] = m.byMech[i]
	}
	return out
}

// AhSinceFullRecharge reports the discharge throughput since the battery
// last reached full charge (the stratification driver).
func (m *Model) AhSinceFullRecharge() units.AmpereHour {
	return units.AmpereHour(m.sinceFull)
}

// EstimateLifetime extrapolates time to end-of-life (health = 0.8) assuming
// the average damage rate observed over elapsed so far continues. It returns
// 0 if no time has elapsed, and the elapsed time itself if already at EoL.
// BAAT's planner uses this to predict battery lifetime (§I: "proactively
// predicts battery lifetime").
func (m *Model) EstimateLifetime(elapsed time.Duration) time.Duration {
	if elapsed <= 0 {
		return 0
	}
	if m.Health() <= battery.EndOfLifeHealth {
		return elapsed
	}
	if m.capFade <= 0 {
		return time.Duration(math.MaxInt64)
	}
	rate := m.capFade / elapsed.Hours() // fade per hour
	remaining := (1 - battery.EndOfLifeHealth) - m.capFade
	h := remaining / rate
	return elapsed + time.Duration(h*float64(time.Hour))
}
