package experiments

import (
	"fmt"
	"strconv"
	"time"

	"github.com/green-dc/baat/internal/rack"
	"github.com/green-dc/baat/internal/rng"
	"github.com/green-dc/baat/internal/solar"
	"github.com/green-dc/baat/internal/units"
	"github.com/green-dc/baat/internal/vm"
	"github.com/green-dc/baat/internal/workload"
)

// AblationFloor isolates the protective-discharge-floor mechanism: full
// BAAT with the floor effectively disabled (protection-only, 5 %) against
// the default 35 % floor. The floor is the design choice DESIGN.md calls
// load-bearing for every lifetime result; this quantifies it.
func AblationFloor(cfg Config) (*Table, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "ablation-floor",
		Title:   "Ablation: BAAT with and without the protective SoC floor",
		Columns: []string{"variant", "lifetime (mo)", "per-day throughput"},
		Values:  map[string]float64{},
	}
	const frac = 0.6
	variants := []struct {
		name  string
		key   string
		floor float64
	}{
		{"floor disabled (0.05)", "nofloor", 0.05},
		{"default floor (0.35)", "floor", 0.35},
	}
	type cell struct {
		life time.Duration
		thr  float64
	}
	cells := make([]cell, len(variants))
	if err := runSweep(cfg.sweepWorkers(), len(variants), func(i int) error {
		spec := withOptions(cfg.treatment(), map[string]string{
			"floor": strconv.FormatFloat(variants[i].floor, 'g', -1, 64),
		})
		life, thr, err := fleetLifetime(cfg, spec, frac, nil)
		if err != nil {
			return err
		}
		cells[i] = cell{life, thr}
		return nil
	}); err != nil {
		return nil, err
	}
	for i, v := range variants {
		life, thr := cells[i].life, cells[i].thr
		t.Rows = append(t.Rows, []string{
			v.name, fmt.Sprintf("%.1f", life.Hours()/(30*24)), fmt.Sprintf("%.1f", thr),
		})
		t.Values[v.key+"_months"] = life.Hours() / (30 * 24)
		t.Values[v.key+"_throughput"] = thr
	}
	if base := t.Values["nofloor_months"]; base > 0 {
		t.Values["floor_gain"] = t.Values["floor_months"]/base - 1
	}
	t.Notes = append(t.Notes,
		"the floor keeps batteries out of the steep region of the cycle-life curve;",
		"without it BAAT degenerates toward e-Buff lifetimes")
	return t, nil
}

// AblationMigration isolates the migration arm: full BAAT with cheap live
// migration (the default 2-minute pause) against migration so expensive it
// is effectively self-defeating — the pathology the paper attributes to
// BAAT-h's uncoordinated migrations (§VI-F).
func AblationMigration(cfg Config) (*Table, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "ablation-migration",
		Title:   "Ablation: migration cost in the slowdown/hiding arms",
		Columns: []string{"variant", "lifetime (mo)", "per-day throughput"},
		Values:  map[string]float64{},
	}
	const frac = 0.6
	variants := []struct {
		name     string
		key      string
		transfer time.Duration
	}{
		{"live migration (2 min)", "cheap", 2 * time.Minute},
		{"stop-and-copy (30 min)", "costly", 30 * time.Minute},
	}
	type cell struct {
		life time.Duration
		thr  float64
	}
	cells := make([]cell, len(variants))
	if err := runSweep(cfg.sweepWorkers(), len(variants), func(i int) error {
		spec := withOptions(cfg.treatment(), map[string]string{
			"migration-time": variants[i].transfer.String(),
		})
		life, thr, err := fleetLifetime(cfg, spec, frac, nil)
		if err != nil {
			return err
		}
		cells[i] = cell{life, thr}
		return nil
	}); err != nil {
		return nil, err
	}
	for i, v := range variants {
		life, thr := cells[i].life, cells[i].thr
		t.Rows = append(t.Rows, []string{
			v.name, fmt.Sprintf("%.1f", life.Hours()/(30*24)), fmt.Sprintf("%.1f", thr),
		})
		t.Values[v.key+"_months"] = life.Hours() / (30 * 24)
		t.Values[v.key+"_throughput"] = thr
	}
	if base := t.Values["costly_throughput"]; base > 0 {
		t.Values["throughput_gain"] = t.Values["cheap_throughput"]/base - 1
	}
	t.Notes = append(t.Notes,
		"expensive migration pauses eat the throughput the slowdown arm tries to protect")
	return t, nil
}

// ArchitectureComparison contrasts the two distributed energy-storage
// architectures of Fig 7 under identical capacity, weather, and load:
// per-server batteries (two 35 Ah units per server, the Google style) vs
// per-rack pools (three servers sharing six units, the Open Rack style),
// both used aggressively (no aging management), over a multi-day window.
func ArchitectureComparison(cfg Config) (*Table, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	days := 10
	if cfg.Quick {
		days = 4
	}
	seq := weatherSequence(cfg.Seed, rng.ExpArchitecture, 0.4, days)

	t := &Table{
		ID:      "arch-comparison",
		Title:   "Per-server batteries vs per-rack pools (equal capacity, e-Buff usage)",
		Columns: []string{"architecture", "throughput", "worst health", "health spread", "worst downtime"},
		Values:  map[string]float64{},
	}

	// The two architectures are independent runs; slot 0 is per-server,
	// slot 1 the per-rack pools.
	type arch struct {
		thr, worst, spread float64
		down               time.Duration
	}
	cells := make([]arch, 2)
	if err := runSweep(cfg.sweepWorkers(), 2, func(i int) error {
		if i == 1 {
			// Per-rack: two racks of three servers, each sharing a six-unit
			// pool — the same twelve units total — driven through the same
			// weather.
			thr, worst, spread, down, err := runRacks(cfg, seq)
			if err != nil {
				return err
			}
			cells[1] = arch{thr, worst, spread, down}
			return nil
		}
		// Per-server: the standard simulated prototype under e-Buff.
		s, err := prototypeSimWithScale(cfg, specEBuff, tightScale)
		if err != nil {
			return err
		}
		res, err := s.Run(seq)
		if err != nil {
			return err
		}
		worst, best := 1.0, 0.0
		var worstDown time.Duration
		for _, n := range res.Nodes {
			if n.Health < worst {
				worst = n.Health
			}
			if n.Health > best {
				best = n.Health
			}
			if n.Downtime > worstDown {
				worstDown = n.Downtime
			}
		}
		cells[0] = arch{res.Throughput, worst, best - worst, worstDown}
		return nil
	}); err != nil {
		return nil, err
	}

	server := cells[0]
	t.Rows = append(t.Rows, []string{
		"per-server (6 × 2 units)",
		fmt.Sprintf("%.1f", server.thr),
		f3(server.worst), f3(server.spread), server.down.Round(time.Minute).String(),
	})
	t.Values["server_throughput"] = server.thr
	t.Values["server_worst_health"] = server.worst
	t.Values["server_spread"] = server.spread

	rackThr, rackWorst, rackSpread, rackDown := cells[1].thr, cells[1].worst, cells[1].spread, cells[1].down
	t.Rows = append(t.Rows, []string{
		"per-rack (2 × 6-unit pool)",
		fmt.Sprintf("%.1f", rackThr),
		f3(rackWorst), f3(rackSpread), rackDown.Round(time.Minute).String(),
	})
	t.Values["rack_throughput"] = rackThr
	t.Values["rack_worst_health"] = rackWorst
	t.Values["rack_spread"] = rackSpread

	t.Notes = append(t.Notes,
		"pooling smooths unit-to-unit aging variation (smaller spread) but couples",
		"failure domains: a deep pool event sheds several servers at once (§II-A)")
	return t, nil
}

// runRacks drives two shared-pool racks through the weather sequence with a
// simple aggressive (e-Buff-like) allocator mirroring the node simulator's
// operating window.
func runRacks(cfg Config, seq []solar.Weather) (thr, worstHealth, spread float64, worstDown time.Duration, err error) {
	rcfg := rack.DefaultConfig()
	rcfg.AgingConfig.AccelFactor = cfg.Accel
	racks := make([]*rack.Rack, 2)
	for i := range racks {
		racks[i], err = rack.New(fmt.Sprintf("rack-%d", i), rcfg)
		if err != nil {
			return 0, 0, 0, 0, err
		}
	}
	// The six prototype services, one per server across the racks.
	services := workload.PrototypeServices()
	for i, p := range services {
		v, verr := vm.New(fmt.Sprintf("svc-%d", i), p)
		if verr != nil {
			return 0, 0, 0, 0, verr
		}
		if aerr := racks[i/3].Servers()[i%3].Attach(v); aerr != nil {
			return 0, 0, 0, 0, aerr
		}
	}

	scfg := solar.DefaultConfig()
	scfg.Scale = tightScale
	wx := rng.New(cfg.Seed, rng.ExpRacks)
	const (
		tick        = time.Minute
		windowStart = 8*time.Hour + 30*time.Minute
		windowEnd   = 18*time.Hour + 30*time.Minute
	)
	for _, w := range seq {
		day, derr := solar.NewDay(w, scfg, wx.Rand)
		if derr != nil {
			return 0, 0, 0, 0, derr
		}
		for tod := time.Duration(0); tod < 24*time.Hour; tod += tick {
			power := float64(day.PowerAt(tod))
			inWindow := tod >= windowStart && tod < windowEnd
			if !inWindow {
				// Overnight: servers are off by schedule; split any
				// generation between the pools.
				for _, r := range racks {
					grant := max(0, min(power, float64(r.ChargeRequest())))
					if _, serr := r.StepOffline(tick, units.Watt(grant)); serr != nil {
						return 0, 0, 0, 0, serr
					}
					power -= grant
				}
				continue
			}
			// Loads first, proportional to demand; surplus charges pools.
			demands := [2]float64{}
			var total float64
			for i, r := range racks {
				demands[i] = float64(r.Demand()) / rcfg.Losses.SolarDirectEfficiency
				total += demands[i]
			}
			scale := 1.0
			if total > power && total > 0 {
				scale = power / total
			}
			surplus := max(0, power-total*scale)
			for i, r := range racks {
				charge := max(0, min(surplus/2, float64(r.ChargeRequest())))
				if _, serr := r.Step(tick, units.Watt(demands[i]*scale), units.Watt(charge)); serr != nil {
					return 0, 0, 0, 0, serr
				}
			}
		}
	}

	worstHealth = 1
	best := 0.0
	for _, r := range racks {
		st := r.Stats()
		thr += st.Throughput
		if st.Health < worstHealth {
			worstHealth = st.Health
		}
		if st.Health > best {
			best = st.Health
		}
		if st.WorstServerDowntime > worstDown {
			worstDown = st.WorstServerDowntime
		}
	}
	return thr, worstHealth, best - worstHealth, worstDown, nil
}
