package baat

import (
	"github.com/green-dc/baat/internal/serve"
)

// SimService hosts many concurrent simulations behind an HTTP/JSON control
// plane: create, start, pause, resume, step, mutate, fork, and delete runs;
// follow per-day results over SSE; scrape per-run telemetry. It is the
// engine of `baatsim serve`; docs/SERVICE.md documents the API and the run
// lifecycle.
type SimService = serve.Server

// SimServiceRunSpec is the JSON body of POST /runs: one simulation's full
// scenario, with zero values taking the CLI defaults.
type SimServiceRunSpec = serve.RunSpec

// SimServiceMutation is the JSON body of POST /runs/{id}/mutate: a
// mid-flight scenario change (policy swap, sunshine re-roll, fault-profile
// swap).
type SimServiceMutation = serve.Mutation

// NewSimService builds a service with no runs and no listener. Start it on
// an address, or mount Handler under an existing mux.
func NewSimService() *SimService { return serve.NewServer() }
