package battery

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
	"time"

	"github.com/green-dc/baat/internal/units"
)

func newPack(t *testing.T, opts ...Option) *Pack {
	t.Helper()
	p, err := New(DefaultSpec(), opts...)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return p
}

func TestSpecValidate(t *testing.T) {
	base := DefaultSpec()
	if err := base.Validate(); err != nil {
		t.Fatalf("default spec invalid: %v", err)
	}
	tests := []struct {
		name   string
		mutate func(*Spec)
	}{
		{"zero voltage", func(s *Spec) { s.NominalVoltage = 0 }},
		{"zero capacity", func(s *Spec) { s.NominalCapacity = 0 }},
		{"peukert below one", func(s *Spec) { s.PeukertExponent = 0.9 }},
		{"zero resistance", func(s *Spec) { s.InternalResistance = 0 }},
		{"efficiency above one", func(s *Spec) { s.CoulombicEfficiency = 1.2 }},
		{"efficiency zero", func(s *Spec) { s.CoulombicEfficiency = 0 }},
		{"negative self discharge", func(s *Spec) { s.SelfDischargeFraction = -0.1 }},
		{"cutoff above nominal", func(s *Spec) { s.CutoffVoltage = 13 }},
		{"zero charge current", func(s *Spec) { s.MaxChargeCurrent = 0 }},
		{"zero lifetime throughput", func(s *Spec) { s.LifetimeThroughput = 0 }},
		{"zero thermal capacity", func(s *Spec) { s.ThermalCapacity = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			s := base
			tt.mutate(&s)
			if err := s.Validate(); err == nil {
				t.Error("Validate() = nil, want error")
			}
			if _, err := New(s); err == nil {
				t.Error("New() = nil error, want error")
			}
		})
	}
}

func TestNewDefaults(t *testing.T) {
	p := newPack(t)
	if p.SoC() != 1 {
		t.Errorf("initial SoC = %v, want 1", p.SoC())
	}
	if p.Temperature() != 25 {
		t.Errorf("initial temperature = %v, want 25", p.Temperature())
	}
	if h := p.Health(); h != 1 {
		t.Errorf("initial health = %v, want 1", h)
	}
}

func TestOCVMonotoneInSoC(t *testing.T) {
	p := newPack(t)
	prev := units.Volt(0)
	for soc := 0.0; soc <= 1.0; soc += 0.05 {
		p.soc = soc
		v := p.OpenCircuitVoltage()
		if v <= prev {
			t.Fatalf("OCV not increasing at SoC %.2f: %v <= %v", soc, v, prev)
		}
		prev = v
	}
	// A full 12V lead-acid battery rests around 12.7 V.
	p.soc = 1
	if v := p.OpenCircuitVoltage(); v < 12.6 || v > 12.9 {
		t.Errorf("full OCV = %v, want ~12.7V", v)
	}
}

func TestTerminalVoltageDropsUnderLoad(t *testing.T) {
	p := newPack(t)
	rest := p.TerminalVoltage(0)
	loaded := p.TerminalVoltage(10)
	if loaded >= rest {
		t.Errorf("loaded voltage %v not below rest voltage %v", loaded, rest)
	}
	charging := p.TerminalVoltage(-5)
	if charging <= rest {
		t.Errorf("charging voltage %v not above rest voltage %v", charging, rest)
	}
}

func TestCurrentForPower(t *testing.T) {
	p := newPack(t)
	i, err := p.CurrentForPower(120)
	if err != nil {
		t.Fatalf("CurrentForPower: %v", err)
	}
	// Delivered power must match the request: (OCV − I·R)·I == 120.
	got := float64(p.TerminalVoltage(i)) * float64(i)
	if !units.NearlyEqual(got, 120, 1e-6) {
		t.Errorf("delivered power = %v, want 120", got)
	}
	if _, err := p.CurrentForPower(1e9); !errors.Is(err, ErrPowerExceedsLimit) {
		t.Errorf("huge power error = %v, want ErrPowerExceedsLimit", err)
	}
	if i, err := p.CurrentForPower(0); err != nil || i != 0 {
		t.Errorf("zero power => (%v, %v), want (0, nil)", i, err)
	}
}

func TestDischargeReducesSoC(t *testing.T) {
	p := newPack(t)
	res, err := p.Discharge(100, time.Hour, 25)
	if err != nil {
		t.Fatalf("Discharge: %v", err)
	}
	if res.CutOff {
		t.Fatal("unexpected cutoff")
	}
	if p.SoC() >= 1 {
		t.Errorf("SoC after discharge = %v, want < 1", p.SoC())
	}
	if res.Current <= 0 || res.Energy <= 0 || res.Charge <= 0 {
		t.Errorf("discharge result not positive: %+v", res)
	}
	c := p.Counters()
	if c.AhOut != res.Charge {
		t.Errorf("AhOut = %v, want %v", c.AhOut, res.Charge)
	}
	if c.EquivalentFullCycles <= 0 {
		t.Errorf("cycles = %v, want > 0", c.EquivalentFullCycles)
	}
}

func TestDischargeErrors(t *testing.T) {
	p := newPack(t)
	if _, err := p.Discharge(-1, time.Minute, 25); err == nil {
		t.Error("negative power accepted")
	}
	if _, err := p.Discharge(10, 0, 25); err == nil {
		t.Error("zero duration accepted")
	}
	if _, err := p.Charge(-1, time.Minute, 25); err == nil {
		t.Error("negative charge power accepted")
	}
	if _, err := p.Charge(10, -time.Minute, 25); err == nil {
		t.Error("negative charge duration accepted")
	}
}

func TestDischargeUntilCutoff(t *testing.T) {
	p := newPack(t)
	var tripped bool
	for i := 0; i < 48; i++ {
		res, err := p.Discharge(200, 30*time.Minute, 25)
		if err != nil {
			t.Fatalf("Discharge: %v", err)
		}
		if res.CutOff {
			tripped = true
			break
		}
	}
	if !tripped {
		t.Fatal("pack never tripped cutoff despite draining load")
	}
	if !p.CutOff() {
		t.Error("CutOff() = false after trip")
	}
	if p.SoC() > 0.35 {
		t.Errorf("SoC at cutoff = %v, want low", p.SoC())
	}
}

func TestChargeRestoresSoC(t *testing.T) {
	p := newPack(t, WithInitialSoC(0.3))
	for i := 0; i < 600; i++ {
		if _, err := p.Charge(120, time.Minute, 25); err != nil {
			t.Fatalf("Charge: %v", err)
		}
	}
	if p.SoC() < 0.98 {
		t.Errorf("SoC after long charge = %v, want ~1", p.SoC())
	}
	// Charging at full should be a no-op.
	before := p.Counters().AhIn
	if _, err := p.Charge(120, time.Minute, 25); err != nil {
		t.Fatalf("Charge at full: %v", err)
	}
	if p.Counters().AhIn != before {
		t.Error("charging at full SoC accepted charge")
	}
}

func TestChargeTaperNearFull(t *testing.T) {
	p := newPack(t, WithInitialSoC(0.95))
	res, err := p.Charge(500, time.Minute, 25)
	if err != nil {
		t.Fatalf("Charge: %v", err)
	}
	// Acceptance current should be tapered well below MaxChargeCurrent.
	if i := -float64(res.Current); i > float64(DefaultSpec().MaxChargeCurrent)*0.6 {
		t.Errorf("taper ineffective: current %.2fA", i)
	}
}

func TestRoundTripEfficiency(t *testing.T) {
	p := newPack(t)
	if got := p.RoundTripEfficiency(); got != 0 {
		t.Errorf("efficiency before any flow = %v, want 0", got)
	}
	// One full-ish cycle.
	for i := 0; i < 120; i++ {
		if _, err := p.Discharge(100, time.Minute, 25); err != nil {
			t.Fatalf("Discharge: %v", err)
		}
	}
	for i := 0; i < 600; i++ {
		if _, err := p.Charge(100, time.Minute, 25); err != nil {
			t.Fatalf("Charge: %v", err)
		}
	}
	eff := p.RoundTripEfficiency()
	if eff < 0.6 || eff > 0.98 {
		t.Errorf("round-trip efficiency = %v, want 0.6–0.98 for lead-acid", eff)
	}
}

func TestPeukertEffect(t *testing.T) {
	p := newPack(t)
	refCap := p.capacityAt(1) // below reference rate
	highCap := p.capacityAt(20)
	if highCap >= refCap {
		t.Errorf("Peukert: capacity at 20A (%v) not below capacity at 1A (%v)", highCap, refCap)
	}
	// The adjustment must match the power law.
	k := p.spec.PeukertExponent
	ref := float64(p.referenceCurrent())
	want := float64(refCap) * math.Pow(ref/20, k-1)
	if !units.NearlyEqual(float64(highCap), want, 1e-9) {
		t.Errorf("capacityAt(20) = %v, want %v", highCap, want)
	}
}

func TestDegradationEffects(t *testing.T) {
	fresh := newPack(t)
	aged := newPack(t)
	aged.ApplyDegradation(Degradation{CapacityFade: 0.2, ResistanceGrowth: 0.5, EfficiencyLoss: 0.05})

	if got, want := aged.EffectiveCapacity(), units.AmpereHour(28); !units.NearlyEqual(float64(got), float64(want), 1e-9) {
		t.Errorf("aged capacity = %v, want %v", got, want)
	}
	if aged.Health() >= fresh.Health() {
		t.Error("aged health not below fresh health")
	}
	// Same load, aged pack sags further.
	vFresh := fresh.TerminalVoltage(10)
	vAged := aged.TerminalVoltage(10)
	if vAged >= vFresh {
		t.Errorf("aged terminal voltage %v not below fresh %v", vAged, vFresh)
	}
	if aged.MaxDischargePower() >= fresh.MaxDischargePower() {
		t.Error("aged max discharge power not reduced")
	}
}

func TestApplyDegradationClamps(t *testing.T) {
	p := newPack(t)
	p.ApplyDegradation(Degradation{CapacityFade: 2, ResistanceGrowth: -1, EfficiencyLoss: 5})
	d := p.Degradation()
	if d.CapacityFade != 1 {
		t.Errorf("CapacityFade = %v, want clamped to 1", d.CapacityFade)
	}
	if d.ResistanceGrowth != 0 {
		t.Errorf("ResistanceGrowth = %v, want clamped to 0", d.ResistanceGrowth)
	}
	if d.EfficiencyLoss > p.spec.CoulombicEfficiency {
		t.Errorf("EfficiencyLoss = %v not clamped", d.EfficiencyLoss)
	}
}

func TestDegradationHealth(t *testing.T) {
	tests := []struct {
		fade, want float64
	}{
		{0, 1},
		{0.2, 0.8},
		{1, 0},
		{1.5, 0},
	}
	for _, tt := range tests {
		d := Degradation{CapacityFade: tt.fade}
		if got := d.Health(); !units.NearlyEqual(got, tt.want, 1e-12) {
			t.Errorf("Health(fade=%v) = %v, want %v", tt.fade, got, tt.want)
		}
	}
}

func TestSelfDischargeAtRest(t *testing.T) {
	p := newPack(t)
	p.Rest(30*24*time.Hour, 25) // a month on the shelf
	if p.SoC() >= 1 {
		t.Error("no self-discharge over a month at rest")
	}
	if p.SoC() < 0.85 {
		t.Errorf("self-discharge too aggressive: SoC %v after a month", p.SoC())
	}
}

func TestThermalModel(t *testing.T) {
	p := newPack(t)
	// Heavy discharge warms the pack above ambient.
	for i := 0; i < 60; i++ {
		if _, err := p.Discharge(250, time.Minute, 25); err != nil {
			t.Fatalf("Discharge: %v", err)
		}
	}
	warm := p.Temperature()
	if warm <= 25 {
		t.Errorf("temperature after heavy discharge = %v, want > 25°C", warm)
	}
	// Resting relaxes back toward ambient.
	p.Rest(6*time.Hour, 25)
	if p.Temperature() >= warm {
		t.Error("temperature did not relax at rest")
	}
}

func TestManufacturingVariation(t *testing.T) {
	small := newPack(t, WithManufacturingVariation(0.9, 1.2))
	nominal := newPack(t)
	if small.EffectiveCapacity() >= nominal.EffectiveCapacity() {
		t.Error("capacity scale not applied")
	}
	if small.TerminalVoltage(10) >= nominal.TerminalVoltage(10) {
		t.Error("resistance scale not applied")
	}
	// Non-positive scales are ignored rather than corrupting the pack.
	zero := newPack(t, WithManufacturingVariation(0, -1))
	if zero.EffectiveCapacity() != nominal.EffectiveCapacity() {
		t.Error("zero capacity scale should be ignored")
	}
}

func TestSoCBoundsProperty(t *testing.T) {
	// Whatever sequence of operations runs, SoC stays in [0, 1].
	f := func(ops []uint8) bool {
		p, err := New(DefaultSpec(), WithInitialSoC(0.5))
		if err != nil {
			return false
		}
		for _, op := range ops {
			pw := units.Watt(float64(op%200) + 1)
			switch op % 3 {
			case 0:
				_, err = p.Discharge(pw, time.Minute, 25)
			case 1:
				_, err = p.Charge(pw, time.Minute, 25)
			default:
				p.Rest(time.Minute, 25)
			}
			if err != nil {
				return false
			}
			if p.SoC() < 0 || p.SoC() > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCountersMonotoneProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		p, err := New(DefaultSpec(), WithInitialSoC(0.6))
		if err != nil {
			return false
		}
		prev := p.Counters()
		for _, op := range ops {
			if op%2 == 0 {
				_, err = p.Discharge(units.Watt(op)+1, time.Minute, 25)
			} else {
				_, err = p.Charge(units.Watt(op)+1, time.Minute, 25)
			}
			if err != nil {
				return false
			}
			c := p.Counters()
			if c.AhOut < prev.AhOut || c.AhIn < prev.AhIn ||
				c.WhOut < prev.WhOut || c.WhIn < prev.WhIn ||
				c.OperatingTime < prev.OperatingTime {
				return false
			}
			prev = c
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestStoredEnergy(t *testing.T) {
	p := newPack(t)
	full := p.StoredEnergy()
	// 35 Ah × 12 V = 420 Wh nameplate.
	if !units.NearlyEqual(float64(full), 420, 1e-9) {
		t.Errorf("full stored energy = %v, want 420Wh", full)
	}
	p2 := newPack(t, WithInitialSoC(0.5))
	if got := p2.StoredEnergy(); !units.NearlyEqual(float64(got), 210, 1e-9) {
		t.Errorf("half stored energy = %v, want 210Wh", got)
	}
}

func TestMaxDischargePowerAtCutoff(t *testing.T) {
	p := newPack(t, WithInitialSoC(0.01))
	// Nearly empty: OCV is close to the floor so max power collapses.
	if got := p.MaxDischargePower(); got > 500 {
		t.Errorf("max discharge power near empty = %v, suspiciously high", got)
	}
}
