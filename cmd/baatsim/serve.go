package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	baat "github.com/green-dc/baat"
)

// runServe is the `baatsim serve` subcommand: a long-lived daemon hosting
// many concurrent simulations behind the HTTP/JSON control plane
// (docs/SERVICE.md). It runs until SIGINT/SIGTERM, then stops every run
// and shuts the listener down gracefully.
func runServe(args []string) error {
	fs := flag.NewFlagSet("baatsim serve", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address (use :0 for an ephemeral port)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("serve takes no arguments, got %q", fs.Arg(0))
	}

	svc := baat.NewSimService()
	bound, err := svc.Start(*addr)
	if err != nil {
		return err
	}
	// The smoke script parses this line for the bound address, so :0 works.
	fmt.Printf("serving on http://%s (POST /runs to create a simulation; docs/SERVICE.md has the API)\n", bound)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	fmt.Println("shutting down")
	return svc.Close()
}
