package sim

import (
	"cmp"
	"math"
	"math/rand"
	"slices"
	"testing"
	"testing/quick"
)

// sortRef is the reference ordering sortBySoC must reproduce exactly: the
// identity permutation stably sorted by cmp.Compare on the snapshot. This
// is the code the radix sort replaced in the engine's control pass.
func sortRef(snap []float64) []int {
	order := make([]int, len(snap))
	for i := range order {
		order[i] = i
	}
	slices.SortStableFunc(order, func(a, b int) int {
		return cmp.Compare(snap[a], snap[b])
	})
	return order
}

func runSortBySoC(snap []float64) []int {
	n := len(snap)
	order := make([]int, n)
	tmp := make([]int, n)
	key := make([]uint64, n)
	sortBySoC(order, tmp, key, snap)
	return order
}

// TestSortBySoCMatchesReferenceQuick drives the radix order against the
// sort reference with generated snapshots, at sizes straddling
// radixMinNodes so both the comparison fallback and the radix path are
// exercised. Exact ties are forced by quantizing some values onto a
// coarse grid: equal SoC must order by ascending node index in both
// implementations, which is precisely what a stable sort guarantees and
// what the golden traces depend on.
func TestSortBySoCMatchesReferenceQuick(t *testing.T) {
	sizes := []int{0, 1, 2, 3, radixMinNodes - 1, radixMinNodes, radixMinNodes + 1, 4 * radixMinNodes}
	f := func(seed int64, raw []float64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := sizes[rng.Intn(len(sizes))]
		snap := make([]float64, n)
		for i := range snap {
			var v float64
			if len(raw) > 0 {
				v = raw[rng.Intn(len(raw))]
			} else {
				v = rng.Float64()
			}
			switch rng.Intn(4) {
			case 0:
				// Quantize onto a 16-level grid to force exact ties.
				v = math.Floor(v*16) / 16
			case 1:
				// SoC-shaped values in [0, 1].
				v = math.Abs(v - math.Floor(v))
			}
			snap[i] = v
		}
		return slices.Equal(runSortBySoC(snap), sortRef(snap))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestSortBySoCAdversarialValues pins the key-mapping edge cases directly:
// NaN (cmp.Compare orders it first), ±0 (compare equal, so they must tie
// by index rather than order by sign bit), infinities, denormals, and
// negative values — none of which a state-of-charge snapshot should
// contain, but the ordering is documented as total so it must match the
// reference on all of them.
func TestSortBySoCAdversarialValues(t *testing.T) {
	specials := []float64{
		math.NaN(), math.Inf(1), math.Inf(-1),
		0.0, math.Copysign(0, -1),
		math.SmallestNonzeroFloat64, -math.SmallestNonzeroFloat64,
		math.MaxFloat64, -math.MaxFloat64,
		1.0, -1.0, 0.5, -0.5, math.Nextafter(0.5, 1), math.Nextafter(0.5, 0),
	}
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{8, radixMinNodes, radixMinNodes + 57, 1024} {
		snap := make([]float64, n)
		for i := range snap {
			snap[i] = specials[rng.Intn(len(specials))]
		}
		got, want := runSortBySoC(snap), sortRef(snap)
		if !slices.Equal(got, want) {
			t.Fatalf("n=%d: radix order diverges from sort reference\n got %v\nwant %v", n, got, want)
		}
	}
}

// TestSortBySoCUniformSnapshot pins the overnight fast path: every SoC
// equal (all passes collapse) must yield the identity permutation, ties
// broken by index.
func TestSortBySoCUniformSnapshot(t *testing.T) {
	n := 4 * radixMinNodes
	snap := make([]float64, n)
	for i := range snap {
		snap[i] = 1.0
	}
	got := runSortBySoC(snap)
	for i, idx := range got {
		if idx != i {
			t.Fatalf("uniform snapshot: order[%d] = %d, want identity", i, idx)
		}
	}
}

// TestSortBySoCAllocFree pins the radix path at zero allocations per call
// with caller-owned scratch, which is what keeps the engine's control
// pass alloc-free at warehouse scale.
func TestSortBySoCAllocFree(t *testing.T) {
	n := 8 * radixMinNodes
	snap := make([]float64, n)
	rng := rand.New(rand.NewSource(11))
	for i := range snap {
		snap[i] = rng.Float64()
	}
	order := make([]int, n)
	tmp := make([]int, n)
	key := make([]uint64, n)
	allocs := testing.AllocsPerRun(20, func() {
		sortBySoC(order, tmp, key, snap)
	})
	if allocs != 0 {
		t.Fatalf("sortBySoC allocated %v times per call, want 0", allocs)
	}
}
