// Package leaktest is the goroutine-leak guard shared by every HTTP-serving
// test in the tree (internal/serve, internal/telemetry). A long-lived
// service that leaks one goroutine per request, per run, or per SSE
// subscriber dies slowly in production and invisibly in tests — unless
// every test asserts that it ends with no more goroutines than it started
// with. Check is that assertion.
//
// Usage, first line of the test:
//
//	func TestSomething(t *testing.T) {
//		leaktest.Check(t)
//		...
//	}
//
// Check snapshots the goroutine count up front and registers a t.Cleanup
// that polls (goroutines park asynchronously: HTTP keep-alive conns drain,
// server loops observe shutdown) until the count returns to the baseline
// or a timeout expires — failing with a full stack dump on timeout.
package leaktest

import (
	"net/http"
	"runtime"
	"testing"
	"time"
)

// timeout bounds how long Cleanup waits for stragglers to park. Generous on
// purpose: a genuine leak waits forever, so the only cost of slack is a
// slow failure, never a flaky pass.
const timeout = 10 * time.Second

// Check arms the leak guard for one test. Call it before starting any
// server, client, or run the test owns; its cleanup runs after the test's
// own cleanups (servers stopped, clients closed), which is exactly when
// every goroutine the test caused must be gone.
func Check(t testing.TB) {
	t.Helper()
	start := runtime.NumGoroutine()
	t.Cleanup(func() {
		// Idle keep-alive connections park a read loop per connection in
		// the default transport; release them so they do not count as
		// leaks of the test that happened to make the last request.
		http.DefaultClient.CloseIdleConnections()
		deadline := time.Now().Add(timeout)
		var n int
		for {
			n = runtime.NumGoroutine()
			if n <= start {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(10 * time.Millisecond)
			http.DefaultClient.CloseIdleConnections()
		}
		buf := make([]byte, 1<<20)
		m := runtime.Stack(buf, true)
		t.Errorf("leaktest: %d goroutines before the test, %d still running %v after it:\n%s",
			start, n, timeout, buf[:m])
	})
}
