// Command baatbench regenerates the tables and figures of the paper's
// evaluation (DSN'15 §VI) from the simulated prototype and prints them in
// paper order.
//
// Examples:
//
//	baatbench                    # every figure and table
//	baatbench fig14 fig20        # selected experiments
//	baatbench -quick             # reduced sweeps (CI-friendly)
//	baatbench -markdown > out.md # markdown for EXPERIMENTS.md
//
// It also hosts the benchmark-regression harness (internal/perf):
//
//	baatbench -bench-json BENCH_baseline.json     # refresh the baseline
//	baatbench -bench-compare BENCH_baseline.json  # fail on regressions
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"slices"
	"strings"
	"time"

	baat "github.com/green-dc/baat"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "baatbench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		quick    = flag.Bool("quick", false, "reduced sweeps and horizons")
		seed     = flag.Int64("seed", 42, "random seed")
		workers  = flag.Int("workers", 1, "node-stepping workers per simulator (1 = serial, -1 = all CPUs; never changes results)")
		accel    = flag.Float64("accel", 10, "battery aging acceleration factor")
		markdown = flag.Bool("markdown", false, "emit markdown tables")
		list     = flag.Bool("list", false, "list experiment IDs and exit")
		telAddr  = flag.String("telemetry-addr", "", "serve /metrics, /events, and /debug/pprof on this address while experiments run (empty = off)")
		faults   = flag.String("faults", "none", "fault-injection profile applied to every simulator: "+strings.Join(baat.FaultProfileNames(), " | "))
		faultsSd = flag.Int64("faults-seed", 0, "fault injector seed (0 derives the simulation seed+4)")
		battery  = flag.String("battery-model", "leadacid", "battery model tier for every harness-built simulator: leadacid | linear | lfp")
		policy   = flag.String("policy", "", "treatment policy spec for the BAAT-treatment harnesses: name[,key=value...] (empty = the paper's full BAAT; see 'baatsim policies')")

		benchJSON    = flag.String("bench-json", "", "run the benchmark-regression suite and write its JSON report to this path ('-' = stdout), then exit")
		benchCompare = flag.String("bench-compare", "", "run the benchmark-regression suite, compare against this baseline JSON, and exit non-zero on regressions")
		benchSlack   = flag.Float64("bench-time-slack", 0.15, "tolerated fractional time/op growth for -bench-compare")

		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file (inspect with go tool pprof)")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file when the run completes")
	)
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			_ = f.Close()
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer func() {
			pprof.StopCPUProfile()
			_ = f.Close()
			fmt.Fprintf(os.Stderr, "cpu profile written to %s\n", *cpuprofile)
		}()
	}
	if *memprofile != "" {
		path := *memprofile
		defer func() {
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
				return
			}
			defer func() { _ = f.Close() }()
			runtime.GC() // materialize the steady-state live set
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
				return
			}
			fmt.Fprintf(os.Stderr, "heap profile written to %s\n", path)
		}()
	}

	if *benchJSON != "" || *benchCompare != "" {
		return runBenchSuite(*benchJSON, *benchCompare, *benchSlack)
	}

	if *list {
		for _, id := range baat.Experiments() {
			fmt.Println(id)
		}
		return nil
	}

	bk, err := baat.ParseBatteryKind(*battery)
	if err != nil {
		return err
	}
	cfg := baat.ExperimentConfig{Seed: *seed, Accel: *accel, Quick: *quick, Workers: *workers, BatteryModel: bk}
	if *policy != "" {
		spec, err := baat.ParsePolicySpec(*policy)
		if err != nil {
			return err
		}
		if _, err := baat.BuildPolicy(spec); err != nil {
			return err
		}
		cfg.Policy = spec
	}
	fcfg, err := baat.FaultProfile(*faults, *faultsSd)
	if err != nil {
		return err
	}
	cfg.Faults = fcfg
	if *telAddr != "" {
		cfg.Telemetry = baat.NewRecorder()
		srv, err := baat.ServeTelemetry(cfg.Telemetry, *telAddr)
		if err != nil {
			return err
		}
		defer func() { _ = srv.Close() }()
		fmt.Fprintf(os.Stderr, "telemetry: http://%s/metrics\n", srv.Addr())
	}
	ids := flag.Args()
	if len(ids) == 0 {
		ids = baat.Experiments()
	}
	for _, id := range ids {
		start := time.Now()
		table, err := baat.RunExperiment(id, cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		if *markdown {
			printMarkdown(table)
		} else {
			fmt.Println(table.Render())
		}
		fmt.Printf("(%s completed in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
	}
	return nil
}

// runBenchSuite executes the fixed benchmark suite once, then writes the
// report and/or gates it against a committed baseline.
func runBenchSuite(jsonPath, comparePath string, timeSlack float64) error {
	fmt.Fprintln(os.Stderr, "bench: running suite (several seconds per entry)...")
	report, err := baat.RunPerfSuite()
	if err != nil {
		return err
	}
	if jsonPath != "" {
		data, err := report.WriteJSON()
		if err != nil {
			return err
		}
		if jsonPath == "-" {
			if _, err := os.Stdout.Write(data); err != nil {
				return err
			}
		} else if err := os.WriteFile(jsonPath, data, 0o644); err != nil {
			return err
		}
	}
	if comparePath == "" {
		return nil
	}
	baseline, err := baat.ReadPerfReport(comparePath)
	if err != nil {
		return err
	}
	opt := baat.DefaultPerfOptions()
	opt.TimeSlack = timeSlack
	regressions := baat.ComparePerf(baseline, report, opt)
	for _, e := range report.Entries {
		fmt.Printf("bench: %-40s %12.0f ns/op %10d allocs/op %12d B/op\n",
			e.Name, e.NsPerOp, e.AllocsPerOp, e.BytesPerOp)
	}
	if len(regressions) > 0 {
		// Print the whole per-entry delta table, not just the offenders, so
		// a regression is diagnosed in the context of its neighbors.
		fmt.Fprint(os.Stderr, baat.FormatPerfDeltaTable(baat.PerfDeltas(baseline, report, opt)))
		for _, r := range regressions {
			fmt.Fprintln(os.Stderr, "bench regression:", r)
		}
		return fmt.Errorf("%d benchmark regression(s) against %s", len(regressions), comparePath)
	}
	fmt.Printf("bench: no regressions against %s (%d entries)\n", comparePath, len(baseline.Entries))
	return nil
}

func printMarkdown(t *baat.ExperimentTable) {
	fmt.Printf("### %s — %s\n\n", strings.ToUpper(t.ID[:1])+t.ID[1:], t.Title)
	fmt.Println("| " + strings.Join(t.Columns, " | ") + " |")
	seps := make([]string, len(t.Columns))
	for i := range seps {
		seps[i] = "---"
	}
	fmt.Println("| " + strings.Join(seps, " | ") + " |")
	for _, row := range t.Rows {
		fmt.Println("| " + strings.Join(row, " | ") + " |")
	}
	fmt.Println()
	if len(t.Values) > 0 {
		keys := make([]string, 0, len(t.Values))
		for k := range t.Values {
			keys = append(keys, k)
		}
		slices.Sort(keys)
		fmt.Println("Headline values:")
		for _, k := range keys {
			fmt.Printf("- `%s` = %.4f\n", k, t.Values[k])
		}
		fmt.Println()
	}
	for _, n := range t.Notes {
		fmt.Printf("> %s\n", n)
	}
	fmt.Println()
}
