package cluster

import (
	"context"
	"testing"
	"time"
)

// TestAgentReconnectsAfterControllerRestart injects a controller failure:
// the controller goes away and comes back on the same address, and a
// reconnect-enabled agent must re-register and resume reporting without
// operator intervention.
func TestAgentReconnectsAfterControllerRestart(t *testing.T) {
	ctrl1, err := ListenController(DefaultControllerConfig("127.0.0.1:0"))
	if err != nil {
		t.Fatal(err)
	}
	addr := ctrl1.Addr()

	h := newHandle(t, "node-r")
	acfg := DefaultAgentConfig(addr)
	acfg.ReportInterval = 20 * time.Millisecond
	acfg.Reconnect = true
	acfg.MaxBackoff = 200 * time.Millisecond
	agent, err := StartAgent(acfg, h)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = agent.Close() }()

	waitFor(t, func() bool { return len(ctrl1.Snapshot()) == 1 })

	// Controller crashes.
	if err := ctrl1.Close(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond) // let the agent notice and start backing off

	// Controller comes back on the same address.
	ctrl2, err := ListenController(DefaultControllerConfig(addr))
	if err != nil {
		t.Fatalf("rebinding %s: %v", addr, err)
	}
	defer func() { _ = ctrl2.Close() }()

	// The agent must re-register and resume reports.
	waitFor(t, func() bool { return len(ctrl2.Snapshot()) == 1 })
	snap := ctrl2.Snapshot()
	if snap[0].Report.NodeID != "node-r" {
		t.Fatalf("wrong node after reconnect: %+v", snap)
	}
	// Commands work again too.
	ack, err := ctrl2.SendCommand(context.Background(), "node-r", Command{Action: ActionPing})
	if err != nil || !ack.OK {
		t.Fatalf("ping after reconnect: ack=%+v err=%v", ack, err)
	}
}

// TestAgentWithoutReconnectStaysDown is the control case: the default agent
// terminates after a transport failure.
func TestAgentWithoutReconnectStaysDown(t *testing.T) {
	ctrl, err := ListenController(DefaultControllerConfig("127.0.0.1:0"))
	if err != nil {
		t.Fatal(err)
	}
	addr := ctrl.Addr()
	h := newHandle(t, "node-n")
	acfg := DefaultAgentConfig(addr)
	acfg.ReportInterval = 20 * time.Millisecond
	agent, err := StartAgent(acfg, h)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = agent.Close() }()

	waitFor(t, func() bool { return len(ctrl.Snapshot()) == 1 })
	if err := ctrl.Close(); err != nil {
		t.Fatal(err)
	}
	// The agent records the transport failure and does not redial.
	waitFor(t, func() bool { return agent.Err() != nil })

	ctrl2, err := ListenController(DefaultControllerConfig(addr))
	if err != nil {
		t.Fatalf("rebinding %s: %v", addr, err)
	}
	defer func() { _ = ctrl2.Close() }()
	time.Sleep(300 * time.Millisecond)
	if got := len(ctrl2.AgentIDs()); got != 0 {
		t.Errorf("non-reconnecting agent reappeared: %d agents", got)
	}
}

func TestAgentConfigBackoffValidation(t *testing.T) {
	cfg := DefaultAgentConfig("127.0.0.1:1")
	cfg.MaxBackoff = -time.Second
	if err := cfg.Validate(); err == nil {
		t.Error("negative backoff accepted")
	}
}
