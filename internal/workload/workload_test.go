package workload

import (
	"testing"
	"testing/quick"

	"github.com/green-dc/baat/internal/aging"
	"github.com/green-dc/baat/internal/rng"
)

func TestAllProfilesValid(t *testing.T) {
	for k, p := range Profiles() {
		if err := p.Validate(); err != nil {
			t.Errorf("profile %v invalid: %v", k, err)
		}
		if p.Kind != k {
			t.Errorf("profile %v has mismatched kind %v", k, p.Kind)
		}
	}
}

func TestProfileForUnknown(t *testing.T) {
	if _, err := ProfileFor(Kind(99)); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestSixWorkloads(t *testing.T) {
	if got := len(Kinds()); got != 6 {
		t.Fatalf("len(Kinds()) = %d, want 6 (§V-B)", got)
	}
	seen := map[string]bool{}
	for _, k := range Kinds() {
		name := k.String()
		if seen[name] {
			t.Errorf("duplicate workload name %q", name)
		}
		seen[name] = true
	}
	if Kind(0).String() == "" {
		t.Error("unknown kind should render")
	}
}

func TestValidateRejections(t *testing.T) {
	base, err := ProfileFor(WordCount)
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name   string
		mutate func(*Profile)
	}{
		{"zero peak", func(p *Profile) { p.PeakUtilization = 0 }},
		{"peak above one", func(p *Profile) { p.PeakUtilization = 1.5 }},
		{"batch with no work", func(p *Profile) { p.WorkUnits = 0 }},
		{"no phases", func(p *Profile) { p.Phases = nil }},
		{"zero phase", func(p *Profile) { p.Phases = []float64{0.5, 0} }},
		{"phase above one", func(p *Profile) { p.Phases = []float64{1.2} }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := base
			p.Phases = append([]float64(nil), base.Phases...)
			tt.mutate(&p)
			if err := p.Validate(); err == nil {
				t.Error("Validate() = nil, want error")
			}
		})
	}
}

func TestServiceWithoutWorkUnitsIsValid(t *testing.T) {
	p, err := ProfileFor(WebServing)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Service || p.WorkUnits != 0 {
		t.Fatalf("web serving should be a service with no work units: %+v", p)
	}
	if err := p.Validate(); err != nil {
		t.Errorf("service profile invalid: %v", err)
	}
}

func TestUtilizationAtBounds(t *testing.T) {
	for k, p := range Profiles() {
		for _, pos := range []float64{0, 0.25, 0.5, 0.999, 1.0, 1.5, -0.3} {
			u := p.UtilizationAt(pos)
			if u <= 0 || u > p.PeakUtilization+1e-12 {
				t.Errorf("%v: UtilizationAt(%v) = %v, want in (0, %v]", k, pos, u, p.PeakUtilization)
			}
		}
	}
}

func TestUtilizationAtProperty(t *testing.T) {
	p, err := ProfileFor(NutchIndexing)
	if err != nil {
		t.Fatal(err)
	}
	f := func(pos float64) bool {
		u := p.UtilizationAt(pos)
		return u > 0 && u <= p.PeakUtilization+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDemandClassCoversTable3(t *testing.T) {
	// The six workloads must span several Table 3 classes, and the heavy
	// hitters must classify as Large power.
	classes := map[aging.DemandClass]bool{}
	for _, k := range Kinds() {
		p, err := ProfileFor(k)
		if err != nil {
			t.Fatal(err)
		}
		classes[p.DemandClass()] = true
	}
	if len(classes) < 3 {
		t.Errorf("workload library spans %d demand classes, want ≥3", len(classes))
	}
	st, _ := ProfileFor(SoftwareTesting)
	if c := st.DemandClass(); !c.LargePower || !c.MoreEnergy {
		t.Errorf("software testing classed %v, want Large/More (§V-B: resource-hungry and time-consuming)", c)
	}
	ws, _ := ProfileFor(WebServing)
	if c := ws.DemandClass(); c.LargePower || !c.MoreEnergy {
		t.Errorf("web serving classed %v, want Small/More", c)
	}
	wc, _ := ProfileFor(WordCount)
	if c := wc.DemandClass(); c.LargePower || c.MoreEnergy {
		t.Errorf("word count classed %v, want Small/Less", c)
	}
}

func TestGenerator(t *testing.T) {
	g, err := NewGenerator(rng.New(1, "test"))
	if err != nil {
		t.Fatal(err)
	}
	jobs := g.Batch(200)
	if len(jobs) != 200 {
		t.Fatalf("Batch(200) returned %d jobs", len(jobs))
	}
	seen := map[Kind]int{}
	for _, j := range jobs {
		if err := j.Validate(); err != nil {
			t.Fatalf("generated invalid job: %v", err)
		}
		seen[j.Kind]++
	}
	if len(seen) != 6 {
		t.Errorf("200 draws hit %d kinds, want all 6", len(seen))
	}
}

func TestGeneratorRestrictedKinds(t *testing.T) {
	g, err := NewGenerator(rng.New(2, "test"), KMeans, WordCount)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if k := g.Next().Kind; k != KMeans && k != WordCount {
			t.Fatalf("restricted generator produced %v", k)
		}
	}
}

func TestGeneratorErrors(t *testing.T) {
	if _, err := NewGenerator(nil); err == nil {
		t.Error("nil rng accepted")
	}
	if _, err := NewGenerator(rng.New(1, "test"), Kind(77)); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	a, _ := NewGenerator(rng.New(5, "test"))
	b, _ := NewGenerator(rng.New(5, "test"))
	for i := 0; i < 20; i++ {
		if a.Next().Kind != b.Next().Kind {
			t.Fatal("same seed diverged")
		}
	}
}
