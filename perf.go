package baat

import "github.com/green-dc/baat/internal/perf"

// PerfEntry is one benchmark measurement in a performance report.
type PerfEntry = perf.Entry

// PerfReport is a full run of the benchmark-regression suite.
type PerfReport = perf.Report

// PerfOptions tunes the benchmark-regression comparator.
type PerfOptions = perf.Options

// DefaultPerfOptions matches the check.sh gate: 15 % time slack, strict
// allocation counts on the pinned hot-path entries.
func DefaultPerfOptions() PerfOptions { return perf.DefaultOptions() }

// RunPerfSuite executes the fixed benchmark suite (fleet stepping,
// aging-metric tracking, battery physics, experiment sweeps) and returns
// the measured report.
func RunPerfSuite() (PerfReport, error) { return perf.RunSuite() }

// ReadPerfReport loads a benchmark report from a JSON file, typically the
// committed BENCH_baseline.json.
func ReadPerfReport(path string) (PerfReport, error) { return perf.ReadReport(path) }

// ComparePerf checks current against baseline and returns one line per
// regression; empty means the gate passes.
func ComparePerf(baseline, current PerfReport, opt PerfOptions) []string {
	return perf.Compare(baseline, current, opt)
}

// PerfDelta is one baseline-vs-current comparison row: raw measurements
// plus which gates tripped.
type PerfDelta = perf.Delta

// PerfDeltas compares current against baseline entry by entry, in
// baseline order, reporting every entry rather than only regressions.
func PerfDeltas(baseline, current PerfReport, opt PerfOptions) []PerfDelta {
	return perf.Deltas(baseline, current, opt)
}

// FormatPerfDeltaTable renders deltas as an aligned text table: entry
// name, ns/op before/after with Δ%, allocs/op before/after with the
// delta, and the gate verdict per row.
func FormatPerfDeltaTable(ds []PerfDelta) string {
	return perf.FormatDeltaTable(ds)
}
