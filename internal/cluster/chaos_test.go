package cluster

// Chaos tests: the control plane under an injector-driven kill schedule.
// Agent connections are force-closed on a deterministic fault schedule
// (internal/faults drives which agent dies on which tick) while the
// controller keeps issuing commands. The contract: no deadlock, every
// in-flight command waiter unblocks, reconnect-enabled agents re-register,
// and the fleet ends the run fully serviceable. Run under -race via
// `make check` / the chaos-smoke step.

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"github.com/green-dc/baat/internal/faults"
)

// dropConn force-closes the agent's current transport, simulating a
// network partition or agent crash without stopping its process.
func dropConn(a *Agent) {
	a.mu.Lock()
	conn := a.conn
	a.mu.Unlock()
	if conn != nil {
		_ = conn.Close()
	}
}

// TestClusterChaosSchedule kills agent connections on a deterministic
// fault schedule while hammering the fleet with commands, then requires
// full recovery.
func TestClusterChaosSchedule(t *testing.T) {
	const agents = 4
	ccfg := DefaultControllerConfig("127.0.0.1:0")
	ccfg.CommandTimeout = 500 * time.Millisecond
	ctrl, err := ListenController(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = ctrl.Close() }()

	ids := make([]string, agents)
	fleet := make([]*Agent, agents)
	for i := range fleet {
		ids[i] = fmt.Sprintf("node-%d", i)
		acfg := DefaultAgentConfig(ctrl.Addr())
		acfg.ReportInterval = 15 * time.Millisecond
		acfg.Reconnect = true
		acfg.MaxBackoff = 100 * time.Millisecond
		a, err := StartAgent(acfg, newHandle(t, ids[i]))
		if err != nil {
			t.Fatal(err)
		}
		fleet[i] = a
		defer func() { _ = a.Close() }()
	}
	waitFor(t, func() bool { return len(ctrl.AgentIDs()) == agents })

	// The kill schedule comes from the fault injector: a seeded
	// probabilistic agent-disconnect rule over a virtual minute-tick
	// clock, so the chaos sequence is identical on every run.
	inj, err := faults.NewInjector(faults.Config{
		Seed: 23,
		Rules: []faults.Rule{{
			Kind:        faults.AgentDisconnect,
			Node:        -1,
			Probability: 0.15,
			Duration:    2 * time.Minute,
		}},
	}, agents)
	if err != nil {
		t.Fatal(err)
	}

	var kills int
	for tick := 0; tick < 40; tick++ {
		fs := inj.Tick(time.Duration(tick)*time.Minute, time.Minute)
		for i, nf := range fs.Nodes {
			if nf.AgentDown {
				kills++
				dropConn(fleet[i])
			}
		}
		// The controller keeps working the fleet mid-chaos. Errors are
		// expected for freshly killed agents (unknown agent, timeout,
		// disconnect) — what matters is that every call returns.
		target := ids[tick%agents]
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		_, _ = ctrl.SendCommand(ctx, target, Command{Action: ActionPing})
		cancel()
		time.Sleep(10 * time.Millisecond)
	}
	if kills == 0 {
		t.Fatal("fault schedule never killed an agent; chaos test exercised nothing")
	}
	t.Logf("chaos schedule delivered %d kills across %d ticks", kills, 40)

	// Recovery: every agent must re-register and answer a ping.
	waitFor(t, func() bool { return len(ctrl.AgentIDs()) == agents })
	for _, id := range ids {
		ok := false
		deadline := time.Now().Add(3 * time.Second)
		for time.Now().Before(deadline) {
			ctx, cancel := context.WithTimeout(context.Background(), time.Second)
			ack, err := ctrl.SendCommand(ctx, id, Command{Action: ActionPing})
			cancel()
			if err == nil && ack.OK {
				ok = true
				break
			}
			time.Sleep(20 * time.Millisecond)
		}
		if !ok {
			t.Errorf("agent %s never answered a ping after the chaos schedule", id)
		}
	}
	// Reports resume for the whole fleet.
	waitFor(t, func() bool {
		snap := ctrl.Snapshot()
		if len(snap) != agents {
			return false
		}
		for _, st := range snap {
			if st.Stale {
				return false
			}
		}
		return true
	})
}

// TestFailPendingUnblocksOnDisconnect pins the waiter-unblock contract
// directly: a command is provably in flight to an agent that then
// disconnects without acking, and the SendCommand waiter must return
// promptly — long before the (deliberately huge) command timeout — with
// the disconnect error from failPending.
func TestFailPendingUnblocksOnDisconnect(t *testing.T) {
	ccfg := DefaultControllerConfig("127.0.0.1:0")
	ccfg.CommandTimeout = 30 * time.Second // failPending must win, not this
	ctrl, err := ListenController(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = ctrl.Close() }()

	// A raw connection registers as an agent but never acks anything.
	conn, err := net.Dial("tcp", ctrl.Addr())
	if err != nil {
		t.Fatal(err)
	}
	hello, err := json.Marshal(Envelope{Type: MsgHello, Hello: &Hello{NodeID: "mute"}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(append(hello, '\n')); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return len(ctrl.AgentIDs()) == 1 })

	done := make(chan error, 1)
	go func() {
		_, err := ctrl.SendCommand(context.Background(), "mute", Command{Action: ActionPing})
		done <- err
	}()

	// Read the command off the wire: once it arrives, the waiter is
	// registered in pending on the controller side.
	buf := make([]byte, 4096)
	if err := conn.SetReadDeadline(time.Now().Add(3 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Read(buf); err != nil {
		t.Fatalf("command never reached the mute agent: %v", err)
	}
	// The agent dies with the command outstanding.
	_ = conn.Close()

	select {
	case err := <-done:
		if err == nil {
			t.Fatal("SendCommand succeeded against a dead agent")
		}
		if !strings.Contains(err.Error(), "disconnected") {
			t.Errorf("waiter unblocked with %v, want the agent-disconnected rejection", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("SendCommand waiter still blocked after the agent disconnected")
	}
}

// TestChaosReRegistrationReplacesConn covers the duplicate-hello path the
// chaos schedule exercises implicitly: when an agent redials before the
// controller notices the old transport died, the new connection must win
// and commands must flow over it.
func TestChaosReRegistrationReplacesConn(t *testing.T) {
	ctrl, err := ListenController(DefaultControllerConfig("127.0.0.1:0"))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = ctrl.Close() }()

	acfg := DefaultAgentConfig(ctrl.Addr())
	acfg.ReportInterval = 15 * time.Millisecond
	acfg.Reconnect = true
	acfg.MaxBackoff = 100 * time.Millisecond
	a, err := StartAgent(acfg, newHandle(t, "node-dup"))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = a.Close() }()
	waitFor(t, func() bool { return len(ctrl.AgentIDs()) == 1 })

	// Kill and let the agent redial several times in quick succession.
	for i := 0; i < 3; i++ {
		dropConn(a)
		time.Sleep(30 * time.Millisecond)
	}
	waitFor(t, func() bool {
		ctx, cancel := context.WithTimeout(context.Background(), 500*time.Millisecond)
		defer cancel()
		ack, err := ctrl.SendCommand(ctx, "node-dup", Command{Action: ActionPing})
		return err == nil && ack.OK
	})
}
