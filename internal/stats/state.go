package stats

import "fmt"

// HistogramState is the serializable state of a Histogram: the per-bin
// counts plus the out-of-range tallies. The bin layout (lo, hi, n) is
// construction-time input and is checked on restore.
type HistogramState struct {
	Counts []int64 `json:"counts"`
	Total  int64   `json:"total"`
	Under  int64   `json:"under"`
	Over   int64   `json:"over"`
}

// Snapshot captures the histogram's counts.
func (h *Histogram) Snapshot() HistogramState {
	return HistogramState{
		Counts: h.Counts(),
		Total:  h.total,
		Under:  h.under,
		Over:   h.over,
	}
}

// Restore overwrites the histogram's counts from a snapshot taken from a
// histogram with the same bin layout.
func (h *Histogram) Restore(st HistogramState) error {
	if len(st.Counts) != len(h.counts) {
		return fmt.Errorf("stats: restore: snapshot has %d bins, histogram has %d",
			len(st.Counts), len(h.counts))
	}
	var sum int64
	for i, c := range st.Counts {
		if c < 0 {
			return fmt.Errorf("stats: restore: negative count in bin %d", i)
		}
		sum += c
	}
	if st.Under < 0 || st.Over < 0 {
		return fmt.Errorf("stats: restore: negative out-of-range tallies")
	}
	if st.Total != sum+st.Under+st.Over {
		return fmt.Errorf("stats: restore: total %d does not match bin sum %d",
			st.Total, sum+st.Under+st.Over)
	}
	copy(h.counts, st.Counts)
	h.total = st.Total
	h.under = st.Under
	h.over = st.Over
	return nil
}
