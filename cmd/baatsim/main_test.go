package main

// Cross-flag validation: combinations that cannot mean what the user
// intended must die with a clear error before any simulator state exists,
// instead of silently overriding one flag with another or failing later
// with a config-hash mismatch.

import (
	"strings"
	"testing"
)

func TestParseFlagsValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		// wantErr is a substring of the expected error; empty means the
		// combination is legal.
		wantErr string
	}{
		{name: "defaults", args: nil},
		{name: "plain run", args: []string{"-policy", "ebuff", "-days", "3", "-weather", "cloudy"}},
		{name: "battery mix alone", args: []string{"-battery-mix", "leadacid=0.5,lfp=0.5"}},
		{name: "battery model alone", args: []string{"-battery-model", "lfp"}},
		{
			name:    "mix and model together",
			args:    []string{"-battery-mix", "lfp=1", "-battery-model", "lfp"},
			wantErr: "mutually exclusive",
		},
		{
			name:    "resume with battery mix",
			args:    []string{"-resume", "ck.json", "-battery-mix", "lfp=1"},
			wantErr: "-battery-mix",
		},
		{
			name:    "resume with until-eol",
			args:    []string{"-resume", "ck.json", "-until-eol"},
			wantErr: "-until-eol",
		},
		{
			name:    "until-eol with checkpointing",
			args:    []string{"-until-eol", "-checkpoint-every", "2", "-checkpoint", "ck.json"},
			wantErr: "fixed-days",
		},
		{
			name:    "checkpoint cadence without file",
			args:    []string{"-checkpoint-every", "2"},
			wantErr: "requires -checkpoint",
		},
		{
			name:    "checkpoint file without cadence",
			args:    []string{"-checkpoint", "ck.json"},
			wantErr: "requires -checkpoint-every",
		},
		{
			name:    "negative checkpoint cadence",
			args:    []string{"-checkpoint-every", "-3", "-checkpoint", "ck.json"},
			wantErr: "must be positive",
		},
		{
			name:    "telemetry hold without endpoint",
			args:    []string{"-telemetry-hold", "5s"},
			wantErr: "-telemetry-addr",
		},
		{name: "telemetry hold with endpoint", args: []string{"-telemetry-addr", ":0", "-telemetry-hold", "5s"}},
		{name: "checkpointed run", args: []string{"-days", "3", "-checkpoint-every", "3", "-checkpoint", "ck.json"}},
		{name: "resume run", args: []string{"-resume", "ck.json", "-days", "6"}},
		{
			name:    "stray positional argument",
			args:    []string{"server"},
			wantErr: "baatsim serve",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := parseFlags(tc.args)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("parseFlags(%q) = %v, want success", tc.args, err)
				}
				return
			}
			if err == nil {
				t.Fatalf("parseFlags(%q) accepted an inconsistent combination", tc.args)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("parseFlags(%q) = %q, want mention of %q", tc.args, err, tc.wantErr)
			}
		})
	}
}
