package cost

import (
	"testing"
	"time"
)

const year = 365 * 24 * time.Hour

func TestModelValidate(t *testing.T) {
	if err := DefaultModel().Validate(); err != nil {
		t.Fatalf("default model invalid: %v", err)
	}
	tests := []struct {
		name   string
		mutate func(*Model)
	}{
		{"zero battery cost", func(m *Model) { m.BatteryUnitCost = 0 }},
		{"zero server cost", func(m *Model) { m.ServerCost = 0 }},
		{"zero batteries per node", func(m *Model) { m.BatteriesPerNode = 0 }},
		{"zero dc life", func(m *Model) { m.DatacenterLife = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			m := DefaultModel()
			tt.mutate(&m)
			if err := m.Validate(); err == nil {
				t.Error("Validate() = nil, want error")
			}
		})
	}
}

func TestAnnualBatteryDepreciation(t *testing.T) {
	m := DefaultModel()
	// 6 nodes × 2 units × $70 = $840 capital. A one-year life costs
	// $840/yr; a two-year life halves it.
	oneYr, err := m.AnnualBatteryDepreciation(6, year)
	if err != nil {
		t.Fatal(err)
	}
	if oneYr != 840 {
		t.Errorf("depreciation at 1y = %v, want 840", oneYr)
	}
	twoYr, err := m.AnnualBatteryDepreciation(6, 2*year)
	if err != nil {
		t.Fatal(err)
	}
	if twoYr != 420 {
		t.Errorf("depreciation at 2y = %v, want 420", twoYr)
	}
}

func TestAnnualBatteryDepreciationErrors(t *testing.T) {
	m := DefaultModel()
	if _, err := m.AnnualBatteryDepreciation(0, year); err == nil {
		t.Error("zero nodes accepted")
	}
	if _, err := m.AnnualBatteryDepreciation(6, 0); err == nil {
		t.Error("zero life accepted")
	}
	bad := DefaultModel()
	bad.ServerCost = -1
	if _, err := bad.AnnualBatteryDepreciation(6, year); err == nil {
		t.Error("invalid model accepted")
	}
}

func TestTCOLongerBatteryLifeIsCheaper(t *testing.T) {
	m := DefaultModel()
	short, err := m.TCO(6, year)
	if err != nil {
		t.Fatal(err)
	}
	long, err := m.TCO(6, 3*year)
	if err != nil {
		t.Fatal(err)
	}
	if long >= short {
		t.Errorf("TCO with 3y batteries (%v) not below 1y (%v)", long, short)
	}
	// Server capital is identical in both: the difference is purely
	// battery replacements. 12-year DC life: 12 vs 4 replacements of
	// $840 => difference $6720.
	if diff := short - long; diff != 840*(12-4) {
		t.Errorf("TCO difference = %v, want %v", diff, 840*8)
	}
}

func TestTCOErrors(t *testing.T) {
	m := DefaultModel()
	if _, err := m.TCO(0, year); err == nil {
		t.Error("zero nodes accepted")
	}
	if _, err := m.TCO(6, -year); err == nil {
		t.Error("negative life accepted")
	}
}

func TestServerExpansion(t *testing.T) {
	m := DefaultModel()
	res, err := m.ServerExpansion(6, year, 2*year, 4000, 1500)
	if err != nil {
		t.Fatal(err)
	}
	if res.CostLimited <= 0 {
		t.Error("longer battery life bought no servers")
	}
	if res.PowerLimited <= 0 {
		t.Error("surplus energy carried no servers")
	}
	if res.Allowed > res.CostLimited || res.Allowed > res.PowerLimited {
		t.Error("Allowed exceeds a constraint")
	}
}

func TestServerExpansionPowerBound(t *testing.T) {
	m := DefaultModel()
	// Huge cost savings but no surplus solar: expansion must be zero.
	res, err := m.ServerExpansion(6, year/2, 10*year, 0, 1500)
	if err != nil {
		t.Fatal(err)
	}
	if res.Allowed != 0 {
		t.Errorf("expansion with no surplus = %v, want 0", res.Allowed)
	}
	// Negative surplus is treated as zero.
	res, err = m.ServerExpansion(6, year/2, 10*year, -100, 1500)
	if err != nil {
		t.Fatal(err)
	}
	if res.PowerLimited != 0 {
		t.Error("negative surplus not clamped")
	}
}

func TestServerExpansionNoImprovementNoSavings(t *testing.T) {
	m := DefaultModel()
	res, err := m.ServerExpansion(6, 2*year, year, 4000, 1500)
	if err != nil {
		t.Fatal(err)
	}
	if res.CostLimited != 0 {
		t.Errorf("worse battery life produced savings: %v", res.CostLimited)
	}
}

func TestServerExpansionErrors(t *testing.T) {
	m := DefaultModel()
	if _, err := m.ServerExpansion(0, year, year, 0, 1500); err == nil {
		t.Error("zero nodes accepted")
	}
	if _, err := m.ServerExpansion(6, 0, year, 0, 1500); err == nil {
		t.Error("zero base life accepted")
	}
	if _, err := m.ServerExpansion(6, year, year, 0, 0); err == nil {
		t.Error("zero per-server energy accepted")
	}
}
