package aging

import (
	"fmt"
	"math"
	"time"
)

// TrackerState is the serializable state of a Tracker: every accumulated
// quantity behind the five metrics. The lifetime denominator is
// construction-time input and is revalidated on restore.
type TrackerState struct {
	AhOut     float64    `json:"ah_out"`
	AhIn      float64    `json:"ah_in"`
	AhByRange [4]float64 `json:"ah_by_range"`

	Total   time.Duration `json:"total"`
	Deep    time.Duration `json:"deep"`
	DisTime time.Duration `json:"dis_time"`
	LowTime time.Duration `json:"low_time"`

	DRSum    float64 `json:"dr_sum"`
	DRLowSum float64 `json:"dr_low_sum"`
	DRPeak   float64 `json:"dr_peak"`
}

// Snapshot captures the tracker's accumulated state.
func (t *Tracker) Snapshot() TrackerState {
	return TrackerState{
		AhOut:     t.ahOut,
		AhIn:      t.ahIn,
		AhByRange: t.ahByRange,
		Total:     t.total,
		Deep:      t.deep,
		DisTime:   t.disTime,
		LowTime:   t.lowTime,
		DRSum:     t.drSum,
		DRLowSum:  t.drLowSum,
		DRPeak:    t.drPeak,
	}
}

// Restore overwrites the tracker's accumulated state from a snapshot,
// keeping its lifetime denominator. Non-finite or negative quantities are
// rejected wholesale — the tracker guarantees finite metrics by
// construction, and a restore must not be a way around that.
func (t *Tracker) Restore(st TrackerState) error {
	nonNeg := func(name string, v float64) error {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			return fmt.Errorf("aging: restore tracker: %s must be finite and non-negative, got %v", name, v)
		}
		return nil
	}
	checks := []error{
		nonNeg("ah out", st.AhOut),
		nonNeg("ah in", st.AhIn),
		nonNeg("dr sum", st.DRSum),
		nonNeg("dr low sum", st.DRLowSum),
		nonNeg("dr peak", st.DRPeak),
	}
	for i, ah := range st.AhByRange {
		checks = append(checks, nonNeg(fmt.Sprintf("ah by range[%d]", i), ah))
	}
	for _, err := range checks {
		if err != nil {
			return err
		}
	}
	for _, d := range []struct {
		name string
		v    time.Duration
	}{{"total", st.Total}, {"deep", st.Deep}, {"dis time", st.DisTime}, {"low time", st.LowTime}} {
		if d.v < 0 {
			return fmt.Errorf("aging: restore tracker: %s must be non-negative, got %v", d.name, d.v)
		}
	}
	if st.Deep > st.Total || st.DisTime > st.Total || st.LowTime > st.Total {
		return fmt.Errorf("aging: restore tracker: sub-durations exceed total observed time")
	}
	t.ahOut = st.AhOut
	t.ahIn = st.AhIn
	t.ahByRange = st.AhByRange
	t.total = st.Total
	t.deep = st.Deep
	t.disTime = st.DisTime
	t.lowTime = st.LowTime
	t.drSum = st.DRSum
	t.drLowSum = st.DRLowSum
	t.drPeak = st.DRPeak
	return nil
}

// ModelState is the serializable state of a damage Model: accumulated
// per-mechanism stress, the rendered damage totals, and the
// stratification driver. Rate constants and the capacity normalizer are
// construction-time input.
type ModelState struct {
	ByMechanism [NumMechanisms]float64 `json:"by_mechanism"`
	ResGrowth   float64                `json:"res_growth"`
	CapFade     float64                `json:"cap_fade"`
	EffLoss     float64                `json:"eff_loss"`
	SinceFull   float64                `json:"since_full"`
	// Hours is the accelerated-time clock behind the LFP √t calendar
	// fade; zero (and omitted) for the chemistries that don't use it, so
	// pre-existing lead-acid checkpoints parse unchanged.
	Hours float64 `json:"hours,omitempty"`
}

// Snapshot captures the model's accumulated damage.
func (m *Model) Snapshot() ModelState {
	return ModelState{
		ByMechanism: m.byMech,
		ResGrowth:   m.resGrow,
		CapFade:     m.capFade,
		EffLoss:     m.effLoss,
		SinceFull:   m.sinceFull,
		Hours:       m.hours,
	}
}

// Restore overwrites the model's accumulated damage from a snapshot.
// Damage is cumulative and irreversible, so every field must be finite
// and non-negative; anything else is a corrupt checkpoint.
func (m *Model) Restore(st ModelState) error {
	nonNeg := func(name string, v float64) error {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			return fmt.Errorf("aging: restore model: %s must be finite and non-negative, got %v", name, v)
		}
		return nil
	}
	checks := []error{
		nonNeg("res growth", st.ResGrowth),
		nonNeg("cap fade", st.CapFade),
		nonNeg("eff loss", st.EffLoss),
		nonNeg("since full", st.SinceFull),
		nonNeg("hours", st.Hours),
	}
	for i, v := range st.ByMechanism {
		checks = append(checks, nonNeg(Mechanism(i+1).String()+" stress", v))
	}
	for _, err := range checks {
		if err != nil {
			return err
		}
	}
	m.byMech = st.ByMechanism
	m.resGrow = st.ResGrowth
	m.capFade = st.CapFade
	m.effLoss = st.EffLoss
	m.sinceFull = st.SinceFull
	m.hours = st.Hours
	return nil
}
