// Package signal is the simulation's forward-looking signal plane: the
// inputs a planning controller can see ahead of time, as opposed to the
// fleet state it observes now. Two signals ship today — a deterministic
// persistence-based solar forecast and a time-of-use electricity tariff —
// threaded into core.Context so policies can look 24–72 h ahead without
// touching the engine.
//
// The forecaster is honest: it never peeks at the weather stream. It sees
// only the realized daily solar indices the simulator feeds it through
// ObserveDay, extrapolates by persistence toward the running climatology,
// and perturbs each horizon day with seeded noise from its own named rng
// substream. Forecast error against the actual weather is therefore real,
// deterministic, and reproducible — exactly what an evaluation of a
// forecast-consuming policy needs.
package signal

import (
	"fmt"
	"math"
	"time"

	"github.com/green-dc/baat/internal/rng"
	"github.com/green-dc/baat/internal/solar"
)

// Forecast predicts daily solar availability as a dimensionless index in
// [0, 1] (1 = a sunny day's energy budget; see WeatherIndex).
type Forecast interface {
	// Horizon is how many days ahead SolarIndex can predict.
	Horizon() int
	// SolarIndex returns the predicted solar index daysAhead days from
	// the current day (1 = tomorrow). Arguments outside [1, Horizon] are
	// clamped. It is a pure read: querying never advances any state.
	SolarIndex(daysAhead int) float64
}

// Tariff prices grid electricity by time of day, in $/kWh.
type Tariff interface {
	// PriceAt returns the price at the given time of day; inputs outside
	// [0, 24h) wrap.
	PriceAt(tod time.Duration) float64
}

// Signals bundles the signal plane handed to policies via core.Context.
// Either field may be nil; consumers must fall back to signal-free
// behavior.
type Signals struct {
	Solar Forecast
	Price Tariff
}

// WeatherIndex maps a realized weather condition to the solar index scale:
// the day's energy budget as a fraction of a sunny day's (sunny 1.0,
// cloudy 0.75, rainy 0.375 with the §VI-A budgets).
func WeatherIndex(w solar.Weather) float64 {
	return float64(solar.DailyBudget(w)) / float64(solar.DailyBudget(solar.Sunny))
}

// DefaultHorizon is the forecaster lookahead in days (72 h).
const DefaultHorizon = 3

const (
	// persistenceDecay is how fast the forecast relaxes from the last
	// observed day toward the running climatology as lookahead grows.
	persistenceDecay = 0.6
	// forecastSigma is the per-day forecast noise (index units).
	forecastSigma = 0.08
	// priorIndex is the forecast before any day has been observed.
	priorIndex = 0.7
)

// SolarForecaster is a deterministic persistence forecaster. Each observed
// day it records the realized index, updates its climatology, and redraws
// one batch of per-horizon-day noise from its seeded substream; queries
// between observations are pure reads of that state. Two forecasters built
// from the same seed and fed the same observations agree bit-for-bit, and
// the full state round-trips through Snapshot/Restore for checkpointing.
type SolarForecaster struct {
	stream  *rng.Stream
	horizon int
	day     int
	last    float64
	climSum float64
	climN   int
	noise   []float64
}

// NewSolarForecaster derives the forecaster's noise stream from the run
// seed. Horizons below 1 are raised to 1.
func NewSolarForecaster(seed int64, horizon int) *SolarForecaster {
	if horizon < 1 {
		horizon = 1
	}
	return &SolarForecaster{
		stream:  rng.New(seed, rng.SignalForecast),
		horizon: horizon,
		noise:   make([]float64, horizon),
	}
}

// Horizon returns the lookahead in days.
func (f *SolarForecaster) Horizon() int { return f.horizon }

// ObserveDay feeds the realized solar index of the day that just started.
// The noise for the whole lookahead window is redrawn here, on a fixed
// one-batch-per-day schedule, so the stream position depends only on how
// many days were observed — never on how often forecasts were queried.
func (f *SolarForecaster) ObserveDay(index float64) {
	f.day++
	f.last = index
	f.climSum += index
	f.climN++
	for i := range f.noise {
		f.noise[i] = f.stream.NormFloat64() * forecastSigma
	}
}

// SolarIndex predicts the index daysAhead days out: climatology plus the
// decaying anomaly of the last observed day, perturbed by that horizon
// day's noise, clamped to [0, 1].
func (f *SolarForecaster) SolarIndex(daysAhead int) float64 {
	if daysAhead < 1 {
		daysAhead = 1
	}
	if daysAhead > f.horizon {
		daysAhead = f.horizon
	}
	if f.climN == 0 {
		return priorIndex
	}
	clim := f.climSum / float64(f.climN)
	decay := math.Pow(persistenceDecay, float64(daysAhead))
	idx := clim + (f.last-clim)*decay + f.noise[daysAhead-1]
	return math.Min(1, math.Max(0, idx))
}

// ForecasterState is the serializable forecaster state embedded in the
// simulator's checkpoint envelope.
type ForecasterState struct {
	Day     int       `json:"day"`
	Last    float64   `json:"last"`
	ClimSum float64   `json:"clim_sum"`
	ClimN   int       `json:"clim_n"`
	Noise   []float64 `json:"noise"`
	RNG     []byte    `json:"rng"`
}

// Snapshot captures the forecaster's exact state.
func (f *SolarForecaster) Snapshot() (ForecasterState, error) {
	rb, err := f.stream.MarshalBinary()
	if err != nil {
		return ForecasterState{}, fmt.Errorf("signal: snapshot forecaster rng: %w", err)
	}
	st := ForecasterState{
		Day:     f.day,
		Last:    f.last,
		ClimSum: f.climSum,
		ClimN:   f.climN,
		Noise:   append([]float64(nil), f.noise...),
		RNG:     rb,
	}
	return st, nil
}

// Restore rewinds the forecaster to a snapshot, validating before any
// mutation so a corrupt state leaves the forecaster untouched.
func (f *SolarForecaster) Restore(st ForecasterState) error {
	switch {
	case st.Day < 0 || st.ClimN < 0:
		return fmt.Errorf("signal: restore forecaster: negative day (%d) or count (%d)", st.Day, st.ClimN)
	case st.Day != st.ClimN:
		return fmt.Errorf("signal: restore forecaster: day %d disagrees with observation count %d", st.Day, st.ClimN)
	case len(st.Noise) != f.horizon:
		return fmt.Errorf("signal: restore forecaster: %d noise slots, want horizon %d", len(st.Noise), f.horizon)
	case len(st.RNG) == 0:
		return fmt.Errorf("signal: restore forecaster: missing rng state")
	}
	for i, n := range st.Noise {
		if math.IsNaN(n) || math.IsInf(n, 0) {
			return fmt.Errorf("signal: restore forecaster: noise[%d] is not finite", i)
		}
	}
	if math.IsNaN(st.Last) || math.IsInf(st.Last, 0) || math.IsNaN(st.ClimSum) || math.IsInf(st.ClimSum, 0) {
		return fmt.Errorf("signal: restore forecaster: non-finite observation state")
	}
	if err := f.stream.UnmarshalBinary(st.RNG); err != nil {
		return fmt.Errorf("signal: restore forecaster: %w", err)
	}
	f.day = st.Day
	f.last = st.Last
	f.climSum = st.ClimSum
	f.climN = st.ClimN
	copy(f.noise, st.Noise)
	return nil
}

// TOUTariff is a two-rate time-of-use tariff: a flat off-peak price with a
// single peak window (the shape evcc-style smart-cost tariffs reduce to).
type TOUTariff struct {
	OffPeak   float64       // $/kWh outside the peak window
	Peak      float64       // $/kWh inside [PeakStart, PeakEnd)
	PeakStart time.Duration // time of day the peak window opens
	PeakEnd   time.Duration // time of day the peak window closes
}

// PriceAt returns the rate at the given time of day.
func (t TOUTariff) PriceAt(tod time.Duration) float64 {
	const day = 24 * time.Hour
	tod %= day
	if tod < 0 {
		tod += day
	}
	if tod >= t.PeakStart && tod < t.PeakEnd {
		return t.Peak
	}
	return t.OffPeak
}

// DefaultTOUTariff is a typical residential-style TOU curve: $0.08/kWh
// off-peak with a 17:00–21:00 peak at $0.24/kWh.
func DefaultTOUTariff() TOUTariff {
	return TOUTariff{OffPeak: 0.08, Peak: 0.24, PeakStart: 17 * time.Hour, PeakEnd: 21 * time.Hour}
}
