// Package cost models the economics of battery provisioning in a green
// datacenter (DSN'15 §VI-D): battery depreciation driven by service life,
// total cost of ownership, and the scale-out head-room that longer battery
// life buys (Figs 16 and 17).
package cost

import (
	"fmt"
	"math"
	"time"

	"github.com/green-dc/baat/internal/units"
)

// Model carries the price book and planning horizon.
type Model struct {
	// BatteryUnitCost is the price of one battery unit in dollars
	// (inexpensive VRLA 12 V 35 Ah units run ~$70).
	BatteryUnitCost float64
	// BatteriesPerNode is how many units back each server (two in the
	// prototype).
	BatteriesPerNode int
	// ServerCost is the price of one server in dollars.
	ServerCost float64
	// DatacenterLife is the planning horizon (10–15 years, [44]).
	DatacenterLife time.Duration
}

// DefaultModel returns prototype-scale prices.
func DefaultModel() Model {
	return Model{
		BatteryUnitCost:  70,
		BatteriesPerNode: 2,
		ServerCost:       2000,
		DatacenterLife:   12 * 365 * 24 * time.Hour,
	}
}

// Validate checks the model.
func (m Model) Validate() error {
	if m.BatteryUnitCost <= 0 || m.ServerCost <= 0 {
		return fmt.Errorf("cost: prices must be positive")
	}
	if m.BatteriesPerNode <= 0 {
		return fmt.Errorf("cost: batteries per node must be positive, got %d", m.BatteriesPerNode)
	}
	if m.DatacenterLife <= 0 {
		return fmt.Errorf("cost: datacenter life must be positive")
	}
	return nil
}

// hoursPerYear converts durations to years.
const hoursPerYear = 365 * 24

// AnnualBatteryDepreciation returns the yearly battery depreciation cost
// for a fleet of nodes whose batteries last batteryLife: the installed
// battery capital spread over its service life (Fig 16's y-axis).
func (m Model) AnnualBatteryDepreciation(nodes int, batteryLife time.Duration) (float64, error) {
	if err := m.Validate(); err != nil {
		return 0, err
	}
	if nodes <= 0 {
		return 0, fmt.Errorf("cost: need a positive node count, got %d", nodes)
	}
	if batteryLife <= 0 {
		return 0, fmt.Errorf("cost: battery life must be positive, got %v", batteryLife)
	}
	capital := float64(nodes*m.BatteriesPerNode) * m.BatteryUnitCost
	years := batteryLife.Hours() / hoursPerYear
	return capital / years, nil
}

// TCO returns capital spent over the datacenter's life on servers plus
// battery replacements: servers are bought once; batteries are repurchased
// every batteryLife (fractional replacements prorated).
func (m Model) TCO(nodes int, batteryLife time.Duration) (float64, error) {
	if err := m.Validate(); err != nil {
		return 0, err
	}
	if nodes <= 0 {
		return 0, fmt.Errorf("cost: need a positive node count, got %d", nodes)
	}
	if batteryLife <= 0 {
		return 0, fmt.Errorf("cost: battery life must be positive, got %v", batteryLife)
	}
	servers := float64(nodes) * m.ServerCost
	replacements := m.DatacenterLife.Hours() / batteryLife.Hours()
	batteries := float64(nodes*m.BatteriesPerNode) * m.BatteryUnitCost * replacements
	return servers + batteries, nil
}

// ExpansionResult reports how far a datacenter can scale out at constant
// TCO when battery life improves (Fig 17).
type ExpansionResult struct {
	// CostLimited is the extra-server fraction the savings afford.
	CostLimited float64
	// PowerLimited is the extra-server fraction the solar budget carries.
	PowerLimited float64
	// Allowed is the binding constraint: min(CostLimited, PowerLimited).
	Allowed float64
}

// ServerExpansion computes the fraction of extra servers that can be added
// without increasing TCO when battery life improves from baseLife to
// newLife, bounded by the available surplus solar energy (§VI-D: "the
// actual server that can be installed depends on the available solar power
// budget").
func (m Model) ServerExpansion(nodes int, baseLife, newLife time.Duration,
	surplusPerDay, perServerPerDay units.WattHour) (ExpansionResult, error) {
	if err := m.Validate(); err != nil {
		return ExpansionResult{}, err
	}
	if nodes <= 0 {
		return ExpansionResult{}, fmt.Errorf("cost: need a positive node count, got %d", nodes)
	}
	if baseLife <= 0 || newLife <= 0 {
		return ExpansionResult{}, fmt.Errorf("cost: battery lives must be positive (%v, %v)", baseLife, newLife)
	}
	if perServerPerDay <= 0 {
		return ExpansionResult{}, fmt.Errorf("cost: per-server energy must be positive, got %v", perServerPerDay)
	}
	baseTCO, err := m.TCO(nodes, baseLife)
	if err != nil {
		return ExpansionResult{}, err
	}
	newTCO, err := m.TCO(nodes, newLife)
	if err != nil {
		return ExpansionResult{}, err
	}
	savings := baseTCO - newTCO
	if savings < 0 {
		savings = 0
	}
	// Each added server costs its capital plus its batteries' replacements
	// over the datacenter life at the improved battery lifetime.
	replacements := m.DatacenterLife.Hours() / newLife.Hours()
	perServer := m.ServerCost + float64(m.BatteriesPerNode)*m.BatteryUnitCost*replacements
	res := ExpansionResult{
		CostLimited: savings / perServer / float64(nodes),
	}
	if surplusPerDay < 0 {
		surplusPerDay = 0
	}
	res.PowerLimited = float64(surplusPerDay) / float64(perServerPerDay) / float64(nodes)
	res.Allowed = math.Min(res.CostLimited, res.PowerLimited)
	return res, nil
}
