package rack

// Property-based invariants over the shared-pool architecture, mirroring
// internal/battery's testing/quick suite at the rack layer: under random
// solar grants and workload mixes the pool's SoC stays in [0, 1], its
// health never recovers, and the shed-server accounting stays within the
// rack's server count.

import (
	"fmt"
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
	"time"

	"github.com/green-dc/baat/internal/units"
	"github.com/green-dc/baat/internal/vm"
	"github.com/green-dc/baat/internal/workload"
)

func TestQuickRackPoolInvariants(t *testing.T) {
	services := workload.PrototypeServices()
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewPCG(uint64(seed), 0))
		cfg := DefaultConfig()
		cfg.AgingConfig.AccelFactor = 1000
		r, err := New("rack-quick", cfg)
		if err != nil {
			t.Fatal(err)
		}
		// Random subset of the six prototype workloads across the servers,
		// so some sequences run server-heavy and others battery-idle.
		for i, srv := range r.Servers() {
			if rng.IntN(2) == 0 {
				continue
			}
			v, verr := vm.New(fmt.Sprintf("vm-%d-%d", seed&0xffff, i), services[rng.IntN(len(services))])
			if verr != nil {
				t.Fatal(verr)
			}
			if aerr := srv.Attach(v); aerr != nil {
				t.Fatal(aerr)
			}
		}
		health := r.Pool().Health()
		for i := 0; i < 200; i++ {
			dt := time.Duration(1+rng.IntN(10)) * time.Minute
			var res StepResult
			if rng.IntN(4) == 0 {
				res, err = r.StepOffline(dt, units.Watt(rng.Float64()*2000))
			} else {
				res, err = r.Step(dt, units.Watt(rng.Float64()*2000), units.Watt(rng.Float64()*1000))
			}
			if err != nil {
				t.Logf("seed %d step %d: %v", seed, i, err)
				return false
			}
			if soc := r.Pool().SoC(); soc < 0 || soc > 1 || math.IsNaN(soc) {
				t.Logf("seed %d step %d: pool SoC %v out of [0,1]", seed, i, soc)
				return false
			}
			h := r.Pool().Health()
			if h > health+1e-12 || h < 0 || math.IsNaN(h) {
				t.Logf("seed %d step %d: pool health %v (previous %v)", seed, i, h, health)
				return false
			}
			health = h
			if res.ServersDown < 0 || res.ServersDown > cfg.Servers {
				t.Logf("seed %d step %d: shed %d servers of %d", seed, i, res.ServersDown, cfg.Servers)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
