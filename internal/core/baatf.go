package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"strconv"
	"time"

	"github.com/green-dc/baat/internal/node"
	"github.com/green-dc/baat/internal/vm"
)

// baatF is BAAT-f: full BAAT whose regulation pre-tightens ahead of
// forecast low-sun days. It is the reference consumer of the signal plane
// (ctx.Signals.Solar) and is wired in purely through the policy registry —
// no engine change was needed to add it, which is the extension point this
// file exists to prove.
//
// Mechanism: before each control pass it reads the minimum forecast solar
// index over its lookahead window. When that minimum drops below the
// low-sun threshold it latches "tightened" (with hysteresis on the way
// out) and derives a stricter config from its base: the protective floor
// and slowdown trigger rise by the tighten margin, and — when planned
// aging is on — the DoD plan stretches its service-life horizon, shrinking
// the per-cycle DoD goal before the weather arrives rather than after the
// batteries have already cycled deep.
type baatF struct {
	inner   baat
	base    Config
	horizon int
	lowSun  float64
	tighten float64
	// tightened is the forecast hysteresis latch: entered below lowSun,
	// released only above lowSun + forecastHysteresis.
	tightened bool
}

// forecastHysteresis keeps the latch from chattering when the forecast
// minimum hovers around the low-sun threshold.
const forecastHysteresis = 0.10

// plannedStretch is the service-life multiplier applied while tightened:
// planning as if the batteries had to last half again as long yields a
// proportionally shallower DoD goal (Eq 7 divides the Ah budget by the
// remaining cycles).
const plannedStretch = 1.5

var baatFOptionDocs = map[string]string{
	"horizon": "forecast lookahead in days the low-sun scan covers (default 3)",
	"low-sun": "forecast solar index below which regulation pre-tightens (default 0.45)",
	"tighten": "how much the SoC floor and trigger rise while tightened (default 0.15)",
}

func init() {
	Register("baat-f", Descriptor{
		Display: "BAAT-f",
		Aliases: []string{"baatf"},
		Rank:    5,
		Doc:     "BAAT with forecast-driven pre-tightening ahead of low-sun days (signal-plane reference)",
		Options: mergeOptionDocs(slowdownOptionDocs, migrationOptionDocs, plannedOptionDocs, baatFOptionDocs),
		Build:   buildBaatF,
	})
}

func buildBaatF(spec PolicySpec) (Policy, error) {
	p := &baatF{horizon: 3, lowSun: 0.45, tighten: 0.15}
	rest := make(map[string]string, len(spec.Options))
	for k, v := range spec.Options {
		var err error
		switch k {
		case "horizon":
			p.horizon, err = strconv.Atoi(v)
			if err == nil && p.horizon < 1 {
				err = fmt.Errorf("must be >= 1")
			}
		case "low-sun":
			p.lowSun, err = parseUnitFraction(v)
		case "tighten":
			p.tighten, err = parseUnitFraction(v)
			if err == nil && p.tighten > 0.5 {
				err = fmt.Errorf("must be <= 0.5")
			}
		default:
			rest[k] = v
			continue
		}
		if err != nil {
			return nil, fmt.Errorf("core: option %s=%q: %v", k, v, err)
		}
	}
	cfg, err := configFromOptions(rest)
	if err != nil {
		return nil, err
	}
	p.base = cfg
	p.inner.cfg = cfg
	return p, nil
}

// Name returns the scheme name.
func (*baatF) Name() string { return "BAAT-f" }

// PlaceVM delegates to BAAT's aging-driven scheduler.
func (p *baatF) PlaceVM(ctx *Context, v *vm.VM) (*node.Node, error) {
	return p.inner.PlaceVM(ctx, v)
}

// Control retunes against the forecast, then runs the full BAAT pass with
// the (possibly tightened) config.
func (p *baatF) Control(ctx *Context) error {
	p.retune(ctx)
	return p.inner.Control(ctx)
}

// retune updates the tightened latch from the forecast minimum and derives
// the effective config. Without a forecast in the context the policy is
// plain BAAT.
func (p *baatF) retune(ctx *Context) {
	sol := ctx.Signals.Solar
	if sol == nil {
		p.tightened = false
		p.inner.cfg = p.base
		return
	}
	days := p.horizon
	if h := sol.Horizon(); h < days {
		days = h
	}
	minIdx := math.Inf(1)
	for d := 1; d <= days; d++ {
		if idx := sol.SolarIndex(d); idx < minIdx {
			minIdx = idx
		}
	}
	if p.tightened {
		if minIdx > p.lowSun+forecastHysteresis {
			p.tightened = false
		}
	} else if minIdx < p.lowSun {
		p.tightened = true
	}
	cfg := p.base
	if p.tightened {
		cfg.Slowdown.FloorSoC = clampFloor(cfg.Slowdown.FloorSoC + p.tighten)
		cfg.Slowdown.TriggerSoC = clampTrigger(cfg.Slowdown.TriggerSoC + p.tighten)
		if cfg.Planned.Enabled {
			cfg.Planned.ServiceLife = time.Duration(float64(cfg.Planned.ServiceLife) * plannedStretch)
		}
	}
	p.inner.cfg = cfg
}

// baatFState serializes both the inherited DoD-goal hysteresis and the
// forecast latch.
type baatFState struct {
	LastDoDGoal float64 `json:"last_dod_goal"`
	Tightened   bool    `json:"tightened"`
}

// Snapshot captures the controller state for the checkpoint envelope.
func (p *baatF) Snapshot() ([]byte, error) {
	return json.Marshal(baatFState{LastDoDGoal: p.inner.lastDoDGoal, Tightened: p.tightened})
}

// Restore rewinds the controller state from a snapshot.
func (p *baatF) Restore(data []byte) error {
	var st baatFState
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&st); err != nil {
		return fmt.Errorf("core: restore baat-f state: %w", err)
	}
	if st.LastDoDGoal < 0 || st.LastDoDGoal > 1 || math.IsNaN(st.LastDoDGoal) {
		return fmt.Errorf("core: restore baat-f state: DoD goal %v out of [0, 1]", st.LastDoDGoal)
	}
	p.inner.lastDoDGoal = st.LastDoDGoal
	p.tightened = st.Tightened
	return nil
}
