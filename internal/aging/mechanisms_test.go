package aging

import (
	"testing"
	"time"

	"github.com/green-dc/baat/internal/battery"
	"github.com/green-dc/baat/internal/units"
)

func mustModel(t *testing.T, cfg ModelConfig) *Model {
	t.Helper()
	m, err := NewModel(cfg, 35)
	if err != nil {
		t.Fatalf("NewModel: %v", err)
	}
	return m
}

func TestModelConfigValidate(t *testing.T) {
	if err := DefaultModelConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	tests := []struct {
		name   string
		mutate func(*ModelConfig)
	}{
		{"zero accel", func(c *ModelConfig) { c.AccelFactor = 0 }},
		{"negative corrosion", func(c *ModelConfig) { c.CorrosionPerHour = -1 }},
		{"negative shedding", func(c *ModelConfig) { c.SheddingPerFullCycle = -1 }},
		{"negative sulphation", func(c *ModelConfig) { c.SulphationPerHourDeep = -1 }},
		{"negative water", func(c *ModelConfig) { c.WaterLossPerOverchargeAh = -1 }},
		{"negative strat", func(c *ModelConfig) { c.StratificationPerPartialAh = -1 }},
		{"negative feedback", func(c *ModelConfig) { c.CorrosionFeedback = -1 }},
		{"zero temp doubling", func(c *ModelConfig) { c.TempDoublingC = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultModelConfig()
			tt.mutate(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Error("Validate() = nil, want error")
			}
		})
	}
	if _, err := NewModel(DefaultModelConfig(), 0); err == nil {
		t.Error("NewModel with zero capacity succeeded")
	}
}

func TestMechanismString(t *testing.T) {
	for _, m := range []Mechanism{Corrosion, Shedding, Sulphation, WaterLoss, Stratification} {
		if m.String() == "" {
			t.Errorf("mechanism %d has empty name", m)
		}
	}
	if Mechanism(42).String() == "" {
		t.Error("unknown mechanism should still render")
	}
}

func TestModelRejectsBadSample(t *testing.T) {
	m := mustModel(t, DefaultModelConfig())
	if err := m.Observe(Sample{Dt: 0}); err == nil {
		t.Error("zero-duration sample accepted")
	}
}

func TestDeepDischargeAgesFasterThanShallow(t *testing.T) {
	// Identical Ah throughput; one battery cycles at high SoC, the other
	// at low SoC. The low-SoC battery must age faster (§II-B, §III-C/D).
	shallow := mustModel(t, DefaultModelConfig())
	deep := mustModel(t, DefaultModelConfig())
	for i := 0; i < 24*30; i++ {
		if err := shallow.Observe(Sample{Dt: time.Hour, Current: 5, SoC: 0.9, Temperature: 25}); err != nil {
			t.Fatal(err)
		}
		if err := deep.Observe(Sample{Dt: time.Hour, Current: 5, SoC: 0.15, Temperature: 25}); err != nil {
			t.Fatal(err)
		}
	}
	if deep.Health() >= shallow.Health() {
		t.Errorf("deep-cycled health %v not below shallow-cycled %v", deep.Health(), shallow.Health())
	}
	deepMechs := deep.ByMechanism()
	shallowMechs := shallow.ByMechanism()
	if deepMechs[Sulphation] <= shallowMechs[Sulphation] {
		t.Error("sulphation did not accelerate at low SoC")
	}
	if deepMechs[Shedding] <= shallowMechs[Shedding] {
		t.Error("shedding did not accelerate at low SoC")
	}
}

func TestHighTemperatureAcceleratesAging(t *testing.T) {
	cool := mustModel(t, DefaultModelConfig())
	hot := mustModel(t, DefaultModelConfig())
	for i := 0; i < 24*30; i++ {
		if err := cool.Observe(Sample{Dt: time.Hour, Current: 3, SoC: 0.6, Temperature: 20}); err != nil {
			t.Fatal(err)
		}
		if err := hot.Observe(Sample{Dt: time.Hour, Current: 3, SoC: 0.6, Temperature: 30}); err != nil {
			t.Fatal(err)
		}
	}
	// §III-E: +10 °C halves lifetime, i.e. roughly doubles the rate.
	ratio := (1 - hot.Health()) / (1 - cool.Health())
	if ratio < 1.5 || ratio > 3.0 {
		t.Errorf("damage ratio hot/cool = %v, want ~2 (Arrhenius doubling)", ratio)
	}
}

func TestHighDischargeRateAgesFaster(t *testing.T) {
	slow := mustModel(t, DefaultModelConfig())
	fast := mustModel(t, DefaultModelConfig())
	// Same 300 Ah throughput: 2 A for 150 h vs 15 A for 20 h.
	for i := 0; i < 150; i++ {
		if err := slow.Observe(Sample{Dt: time.Hour, Current: 2, SoC: 0.6, Temperature: 25}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 20; i++ {
		if err := fast.Observe(Sample{Dt: time.Hour, Current: 15, SoC: 0.6, Temperature: 25}); err != nil {
			t.Fatal(err)
		}
	}
	if fast.ByMechanism()[Shedding] <= slow.ByMechanism()[Shedding] {
		t.Error("high-rate discharge did not increase shedding per Ah")
	}
}

func TestFullRechargeResetsStratificationDriver(t *testing.T) {
	m := mustModel(t, DefaultModelConfig())
	if err := m.Observe(Sample{Dt: 2 * time.Hour, Current: 5, SoC: 0.6, Temperature: 25}); err != nil {
		t.Fatal(err)
	}
	if m.AhSinceFullRecharge() != 10 {
		t.Fatalf("AhSinceFullRecharge = %v, want 10", m.AhSinceFullRecharge())
	}
	// Charging at 99 %+ SoC marks a full recharge.
	if err := m.Observe(Sample{Dt: time.Hour, Current: -2, SoC: 0.99, Temperature: 25}); err != nil {
		t.Fatal(err)
	}
	if m.AhSinceFullRecharge() != 0 {
		t.Errorf("AhSinceFullRecharge after full recharge = %v, want 0", m.AhSinceFullRecharge())
	}
}

func TestNeverFullyRechargedStratifies(t *testing.T) {
	partial := mustModel(t, DefaultModelConfig())
	full := mustModel(t, DefaultModelConfig())
	for day := 0; day < 60; day++ {
		for h := 0; h < 4; h++ {
			if err := partial.Observe(Sample{Dt: time.Hour, Current: 5, SoC: 0.7, Temperature: 25}); err != nil {
				t.Fatal(err)
			}
			if err := full.Observe(Sample{Dt: time.Hour, Current: 5, SoC: 0.7, Temperature: 25}); err != nil {
				t.Fatal(err)
			}
		}
		// partial only ever recharges to 90 %; full reaches 100 %.
		if err := partial.Observe(Sample{Dt: 4 * time.Hour, Current: -5, SoC: 0.90, Temperature: 25}); err != nil {
			t.Fatal(err)
		}
		if err := full.Observe(Sample{Dt: 4 * time.Hour, Current: -5, SoC: 0.99, Temperature: 25}); err != nil {
			t.Fatal(err)
		}
	}
	if partial.ByMechanism()[Stratification] <= full.ByMechanism()[Stratification] {
		t.Error("never-fully-recharged battery did not stratify more")
	}
}

func TestOverchargeCausesWaterLoss(t *testing.T) {
	m := mustModel(t, DefaultModelConfig())
	for i := 0; i < 100; i++ {
		if err := m.Observe(Sample{Dt: time.Hour, Current: -3, SoC: 0.98, Temperature: 30}); err != nil {
			t.Fatal(err)
		}
	}
	if m.ByMechanism()[WaterLoss] <= 0 {
		t.Error("sustained overcharge produced no water loss")
	}
	if m.Degradation().EfficiencyLoss <= 0 {
		t.Error("water loss did not reduce efficiency")
	}
}

func TestAccelFactorScalesDamage(t *testing.T) {
	base := mustModel(t, DefaultModelConfig())
	cfg := DefaultModelConfig()
	cfg.AccelFactor = 10
	fast := mustModel(t, cfg)
	s := Sample{Dt: time.Hour, Current: 5, SoC: 0.5, Temperature: 25}
	for i := 0; i < 100; i++ {
		if err := base.Observe(s); err != nil {
			t.Fatal(err)
		}
		if err := fast.Observe(s); err != nil {
			t.Fatal(err)
		}
	}
	ratio := (1 - fast.Health()) / (1 - base.Health())
	// Feedback terms make it slightly super-linear; it must be near 10.
	if ratio < 8 || ratio > 14 {
		t.Errorf("damage ratio with AccelFactor=10 is %v, want ≈10", ratio)
	}
}

func TestEstimateLifetime(t *testing.T) {
	m := mustModel(t, DefaultModelConfig())
	if got := m.EstimateLifetime(0); got != 0 {
		t.Errorf("EstimateLifetime(0) = %v, want 0", got)
	}
	// Fresh model with zero damage: effectively infinite.
	if got := m.EstimateLifetime(time.Hour); got < 1000*time.Hour {
		t.Errorf("EstimateLifetime with no damage = %v, want huge", got)
	}
	// Accumulate some damage, then extrapolate.
	for i := 0; i < 24*4; i++ {
		if err := m.Observe(Sample{Dt: time.Hour, Current: 8, SoC: 0.3, Temperature: 30}); err != nil {
			t.Fatal(err)
		}
	}
	elapsed := 4 * 24 * time.Hour
	est := m.EstimateLifetime(elapsed)
	if est <= elapsed {
		t.Errorf("estimate %v not beyond elapsed %v for healthy battery", est, elapsed)
	}
	// Linear extrapolation sanity: fade so far over a month maps to the
	// remaining budget.
	fade := 1 - m.Health()
	wantH := elapsed.Hours() * (1 - battery.EndOfLifeHealth) / fade
	if gotH := est.Hours(); gotH < wantH*0.9 || gotH > wantH*1.1 {
		t.Errorf("estimate = %v h, want ≈%v h", gotH, wantH)
	}
}

func TestDegradationRendering(t *testing.T) {
	m := mustModel(t, DefaultModelConfig())
	for i := 0; i < 24*60; i++ {
		if err := m.Observe(Sample{Dt: time.Hour, Current: 6, SoC: 0.3, Temperature: 35}); err != nil {
			t.Fatal(err)
		}
	}
	d := m.Degradation()
	if d.CapacityFade <= 0 || d.ResistanceGrowth <= 0 {
		t.Errorf("degradation not accumulating: %+v", d)
	}
	if d.CapacityFade > 1 {
		t.Errorf("capacity fade %v exceeds 1", d.CapacityFade)
	}
	if h := m.Health(); !units.NearlyEqual(h, 1-d.CapacityFade, 1e-12) {
		t.Errorf("Health() = %v, want %v", h, 1-d.CapacityFade)
	}
}

// TestCalibrationSixMonths pins the damage-model constants to the paper's
// measured six-month drift (Figs 3–5): under daily cyclic use of a 12 V
// 35 Ah unit the prototype lost ≈9 % loaded terminal voltage, ≈14 % of
// per-cycle stored energy, and ≈8 % round-trip efficiency.
func TestCalibrationSixMonths(t *testing.T) {
	pack, err := battery.New(battery.DefaultSpec())
	if err != nil {
		t.Fatal(err)
	}
	model := mustModel(t, DefaultModelConfig())

	const days = 180
	loadedVoltage := func() float64 {
		return float64(pack.TerminalVoltage(10)) // standard 10 A test load
	}
	v0 := loadedVoltage()

	for day := 0; day < days; day++ {
		// Aggressive daily cycle: ~20 Ah out at 5 A (≈57 % DoD), then a
		// full solar recharge, then rest — the paper's cyclic-usage
		// pattern for a battery bridging solar shortfall.
		for h := 0; h < 4; h++ {
			res, err := pack.Discharge(60, time.Hour, 25)
			if err != nil {
				t.Fatal(err)
			}
			if err := model.Observe(Sample{Dt: time.Hour, Current: res.Current, SoC: pack.SoC(), Temperature: pack.Temperature()}); err != nil {
				t.Fatal(err)
			}
		}
		for h := 0; h < 6; h++ {
			res, err := pack.Charge(60, time.Hour, 25)
			if err != nil {
				t.Fatal(err)
			}
			if err := model.Observe(Sample{Dt: time.Hour, Current: res.Current, SoC: pack.SoC(), Temperature: pack.Temperature()}); err != nil {
				t.Fatal(err)
			}
		}
		pack.Rest(14*time.Hour, 25)
		if err := model.Observe(Sample{Dt: 14 * time.Hour, Current: 0, SoC: pack.SoC(), Temperature: pack.Temperature()}); err != nil {
			t.Fatal(err)
		}
		pack.ApplyDegradation(model.Degradation())
	}

	// Fig 4: per-cycle stored energy down ≈14 % (we check capacity fade).
	fade := 1 - pack.Health()
	if fade < 0.09 || fade > 0.20 {
		t.Errorf("six-month capacity fade = %.1f%%, want ≈14%% (9–20%% band)", fade*100)
	}
	// Fig 3: loaded terminal voltage down ≈9 %.
	vDrop := (v0 - loadedVoltage()) / v0
	if vDrop < 0.05 || vDrop > 0.14 {
		t.Errorf("six-month loaded-voltage drop = %.1f%%, want ≈9%% (5–14%% band)", vDrop*100)
	}
	// Battery should still be above end-of-life after six months: the
	// paper's units kept operating (though visibly degraded).
	if pack.Health() < battery.EndOfLifeHealth {
		t.Errorf("health %v fell below EoL within six months", pack.Health())
	}
}
