package experiments

import (
	"fmt"
	"strconv"
	"time"

	"github.com/green-dc/baat/internal/core"
	"github.com/green-dc/baat/internal/cost"
	"github.com/green-dc/baat/internal/solar"
	"github.com/green-dc/baat/internal/units"
)

// DepreciationCost reproduces Fig 16: the annual battery depreciation cost
// as the aging-slowdown threshold (the protective SoC floor) varies, with
// e-Buff as the no-management reference. Raising the threshold offloads the
// batteries, extends life, and cuts depreciation — at some throughput cost.
func DepreciationCost(cfg Config) (*Table, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	model := cost.DefaultModel()
	const nodes = 6
	const frac = 0.6

	t := &Table{
		ID:      "fig16",
		Title:   "Annual battery depreciation cost vs slowdown threshold",
		Columns: []string{"scheme", "threshold", "lifetime (mo)", "annual cost ($)", "per-day throughput"},
		Values:  map[string]float64{},
	}

	thresholds := []float64{0.05, 0.15, 0.25, 0.35}
	if cfg.Quick {
		thresholds = []float64{0.35}
	}
	// Slot 0 is the e-Buff reference; slot i+1 is thresholds[i].
	type cell struct {
		life time.Duration
		thr  float64
	}
	cells := make([]cell, 1+len(thresholds))
	if err := runSweep(cfg.sweepWorkers(), len(cells), func(i int) error {
		spec := specEBuff
		if i > 0 {
			spec = withOptions(cfg.treatment(), map[string]string{
				"floor": strconv.FormatFloat(thresholds[i-1], 'g', -1, 64),
			})
		}
		life, thr, err := fleetLifetime(cfg, spec, frac, nil)
		if err != nil {
			return err
		}
		cells[i] = cell{life, thr}
		return nil
	}); err != nil {
		return nil, err
	}

	eLife, eThr := cells[0].life, cells[0].thr
	eCost, err := model.AnnualBatteryDepreciation(nodes, eLife)
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, []string{
		"e-Buff", "-", fmt.Sprintf("%.1f", eLife.Hours()/(30*24)),
		fmt.Sprintf("%.0f", eCost), fmt.Sprintf("%.1f", eThr),
	})
	t.Values["ebuff_cost"] = eCost

	for i, th := range thresholds {
		life, thr := cells[i+1].life, cells[i+1].thr
		c, err := model.AnnualBatteryDepreciation(nodes, life)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			"BAAT", f2(th), fmt.Sprintf("%.1f", life.Hours()/(30*24)),
			fmt.Sprintf("%.0f", c), fmt.Sprintf("%.1f", thr),
		})
		t.Values[fmt.Sprintf("baat_cost_%.2f", th)] = c
		if th == 0.35 {
			t.Values["cost_reduction"] = 1 - c/eCost
		}
	}
	t.Notes = append(t.Notes,
		"paper: BAAT achieves 26% battery cost reduction vs e-Buff;",
		"aggressive thresholds trade performance for battery life")
	return t, nil
}

// ServerExpansion reproduces Fig 17: how many servers a green datacenter
// can add without increasing TCO, funded by BAAT's battery-life savings and
// bounded by the location's surplus solar budget.
func ServerExpansion(cfg Config) (*Table, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	model := cost.DefaultModel()
	const nodes = 6
	fracs := []float64{0.4, 0.5, 0.6, 0.7, 0.8}
	if cfg.Quick {
		fracs = []float64{0.6}
	}
	t := &Table{
		ID:      "fig17",
		Title:   "Server expansion at constant TCO vs sunshine fraction",
		Columns: []string{"sunshine", "e-Buff life (mo)", "BAAT life (mo)", "cost-limited", "power-limited", "allowed"},
		Values:  map[string]float64{},
	}
	specs := []core.PolicySpec{specEBuff, cfg.treatment()}
	cells := make([]time.Duration, len(fracs)*len(specs))
	if err := runSweep(cfg.sweepWorkers(), len(cells), func(i int) error {
		life, _, err := fleetLifetime(cfg, specs[i%len(specs)], fracs[i/len(specs)], nil)
		if err != nil {
			return err
		}
		cells[i] = life
		return nil
	}); err != nil {
		return nil, err
	}
	var maxAllowed float64
	for fi, frac := range fracs {
		eLife, bLife := cells[fi*2], cells[fi*2+1]
		// Surplus solar: expected generation minus what the present fleet
		// consumes on an average day.
		loc := solar.Location{SunshineFraction: frac}
		expected := units.WattHour(float64(loc.ExpectedDailyBudget()) * 1.5) // the harness PV scale
		perServer := units.WattHour(1300)                                    // ~130 W over the 10h window
		consumed := units.WattHour(float64(perServer) * nodes)
		surplus := expected - consumed
		res, err := model.ServerExpansion(nodes, eLife, bLife, surplus, perServer)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			pct(frac),
			fmt.Sprintf("%.1f", eLife.Hours()/(30*24)),
			fmt.Sprintf("%.1f", bLife.Hours()/(30*24)),
			pct(res.CostLimited), pct(res.PowerLimited), pct(res.Allowed),
		})
		t.Values[fmt.Sprintf("allowed_%.0f", frac*100)] = res.Allowed
		if res.Allowed > maxAllowed {
			maxAllowed = res.Allowed
		}
	}
	t.Values["max_expansion"] = maxAllowed
	t.Notes = append(t.Notes,
		"paper: up to 15% more servers in sun-rich locations; expansion is",
		"power-limited at low sunshine and sub-linear in server count")
	return t, nil
}
