package baat_test

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (DSN'15 §VI). One benchmark per artifact; each reports its
// headline quantity through b.ReportMetric so `go test -bench=. -benchmem`
// doubles as the reproduction record (see EXPERIMENTS.md).
//
// Benchmarks run the experiments in quick mode to keep iterations bounded;
// run `go run ./cmd/baatbench` for the full-fidelity sweeps.

import (
	"testing"

	baat "github.com/green-dc/baat"
)

// benchExperiment runs one experiment per iteration and reports selected
// headline values as custom metrics.
func benchExperiment(b *testing.B, id string, metrics ...string) {
	b.Helper()
	cfg := baat.DefaultExperimentConfig()
	cfg.Quick = true
	var last *baat.ExperimentTable
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t, err := baat.RunExperiment(id, cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	b.StopTimer()
	for _, m := range metrics {
		if v, ok := last.Values[m]; ok {
			b.ReportMetric(v, m)
		}
	}
}

// BenchmarkFig03VoltageDrop regenerates Fig 3: six-month loaded-voltage
// drop with an accelerating slope (paper: ≈9 %, 0.1→0.3 V/month).
func BenchmarkFig03VoltageDrop(b *testing.B) {
	benchExperiment(b, "fig3", "voltage_drop", "late_vs_early_slope")
}

// BenchmarkFig04CapacityDrop regenerates Fig 4: six-month per-cycle energy
// drop (paper: ≈14 %).
func BenchmarkFig04CapacityDrop(b *testing.B) {
	benchExperiment(b, "fig4", "capacity_drop")
}

// BenchmarkFig05Efficiency regenerates Fig 5: six-month round-trip
// efficiency degradation (paper: ≈8 %).
func BenchmarkFig05Efficiency(b *testing.B) {
	benchExperiment(b, "fig5", "efficiency_drop")
}

// BenchmarkFig10CycleLife regenerates Fig 10: cycle life vs depth of
// discharge for the three manufacturers (paper: halves beyond 50 % DoD).
func BenchmarkFig10CycleLife(b *testing.B) {
	benchExperiment(b, "fig10", "halving_ratio")
}

// BenchmarkFig12WeatherProfile regenerates Fig 12: aging metrics under the
// sunny/cloudy/rainy energy budgets.
func BenchmarkFig12WeatherProfile(b *testing.B) {
	benchExperiment(b, "fig12", "rainy_nat", "sunny_nat")
}

// BenchmarkFig13AgingComparison regenerates Fig 13: worst-node NAT/CF/PC of
// the four policies (paper: e-Buff throughput ×1.3 of BAAT on average).
func BenchmarkFig13AgingComparison(b *testing.B) {
	benchExperiment(b, "fig13", "ebuff_vs_baat_nat_young_cloudy")
}

// BenchmarkFig14LifetimeVsSunshine regenerates Fig 14: battery lifetime vs
// sunshine fraction (paper: BAAT +69 %, BAAT-s +37 %, BAAT-h +29 %).
func BenchmarkFig14LifetimeVsSunshine(b *testing.B) {
	benchExperiment(b, "fig14", "baat_gain_avg", "baat_s_gain_avg", "baat_h_gain_avg")
}

// BenchmarkFig15LifetimeVsRatio regenerates Fig 15: lifetime vs
// server-to-battery ratio (paper: −35 % from 2 to 10 W/Ah; BAAT gain grows).
func BenchmarkFig15LifetimeVsRatio(b *testing.B) {
	benchExperiment(b, "fig15", "lifetime_drop_2_to_10", "gain_growth")
}

// BenchmarkFig16DepreciationCost regenerates Fig 16: annual battery
// depreciation vs slowdown threshold (paper: −26 % with BAAT).
func BenchmarkFig16DepreciationCost(b *testing.B) {
	benchExperiment(b, "fig16", "cost_reduction")
}

// BenchmarkFig17ServerExpansion regenerates Fig 17: servers addable at
// constant TCO vs sunshine fraction (paper: up to +15 %).
func BenchmarkFig17ServerExpansion(b *testing.B) {
	benchExperiment(b, "fig17", "max_expansion")
}

// BenchmarkFig18LowSoC regenerates Fig 18: worst-node low-SoC duration
// (paper: BAAT improves availability by 47 %).
func BenchmarkFig18LowSoC(b *testing.B) {
	benchExperiment(b, "fig18", "availability_gain")
}

// BenchmarkFig19SoCDistribution regenerates Fig 19: the seven-bin SoC
// distribution per policy (paper: BAAT shifts mass to 90–100 %).
func BenchmarkFig19SoCDistribution(b *testing.B) {
	benchExperiment(b, "fig19", "baat_top_bin", "ebuff_top_bin")
}

// BenchmarkFig20Throughput regenerates Fig 20: one-day throughput per
// policy (paper: BAAT +28 % over e-Buff in the cloudy+old worst case).
func BenchmarkFig20Throughput(b *testing.B) {
	benchExperiment(b, "fig20", "baat_gain_worst_case")
}

// BenchmarkFig21PerfVsDoD regenerates Fig 21: performance vs regulated
// depth of discharge (paper: sub-linear improvement).
func BenchmarkFig21PerfVsDoD(b *testing.B) {
	benchExperiment(b, "fig21", "gain_dod_90")
}

// BenchmarkFig22PlannedAging regenerates Fig 22: productivity gain vs
// expected battery service life (paper: up to +33 %).
func BenchmarkFig22PlannedAging(b *testing.B) {
	benchExperiment(b, "fig22", "max_gain")
}

// BenchmarkTable1UsageScenarios regenerates Table 1: aging speed/variation
// per battery usage scenario.
func BenchmarkTable1UsageScenarios(b *testing.B) {
	benchExperiment(b, "table1", "smoothing_fade", "backup_fade")
}

// BenchmarkTable3DemandSensitivity regenerates Table 3: metric sensitivity
// to the workload power/energy class.
func BenchmarkTable3DemandSensitivity(b *testing.B) {
	benchExperiment(b, "table3", "class1_nat", "class3_nat")
}

// Micro-benchmarks for the hot paths of the simulation substrate.

// BenchmarkSimulatedDay measures one full prototype day (1440 ticks × six
// nodes) under the full BAAT policy.
func BenchmarkSimulatedDay(b *testing.B) {
	cfg := baat.DefaultSimConfig()
	cfg.Policy = baat.PolicySpec{Name: "baat"}
	cfg.Services = baat.PrototypeServices()
	sim, err := baat.NewSimulator(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.RunDay(baat.Cloudy); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBatteryStep measures the electrochemical model's per-tick cost.
func BenchmarkBatteryStep(b *testing.B) {
	pack, err := baat.NewBattery(baat.DefaultBatterySpec())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%2 == 0 {
			_, _ = pack.Discharge(100, 60e9, 25)
		} else {
			_, _ = pack.Charge(100, 60e9, 25)
		}
	}
}

// BenchmarkWeightedAging measures the Eq 6 scoring path the scheduler runs
// for every candidate node.
func BenchmarkWeightedAging(b *testing.B) {
	m := baat.Metrics{NAT: 0.3, CF: 0.9, PC: 0.6, DDT: 0.2, DR: 5}
	sens := baat.DemandSensitivity(baat.DemandClass{LargePower: true, MoreEnergy: true})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = baat.WeightedAging(m, sens)
	}
}

// Benchmarks for the extension experiments (ablations + the Fig 7
// architecture comparison).

// BenchmarkAblationFloor quantifies the protective-discharge-floor design
// choice (DESIGN.md): BAAT with vs without the floor.
func BenchmarkAblationFloor(b *testing.B) {
	benchExperiment(b, "ablation-floor", "floor_gain")
}

// BenchmarkAblationMigration quantifies migration cost in the slowdown and
// hiding arms.
func BenchmarkAblationMigration(b *testing.B) {
	benchExperiment(b, "ablation-migration", "throughput_gain")
}

// BenchmarkArchComparison contrasts per-server batteries with per-rack
// pools (the two Fig 7 architectures) at equal installed capacity.
func BenchmarkArchComparison(b *testing.B) {
	benchExperiment(b, "arch-comparison", "server_spread", "rack_spread")
}

// BenchmarkDemandResponse quantifies the dual-purposing trade-off: peak-
// shaving arbitrage savings net of battery wear (§II-A, Table 1, ref [21]).
func BenchmarkDemandResponse(b *testing.B) {
	benchExperiment(b, "demand-response", "aggressive_net", "baat_net")
}
