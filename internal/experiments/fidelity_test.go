package experiments

// Semantics checks for the battery-model experiments: the fidelity harness
// must actually quantify a small linear-tier error (the tolerance bounds
// proper live in the cross-fidelity golden test in internal/sim), and the
// mixed-fleet harness must expose the cross-chemistry aging gap.

import (
	"testing"

	"github.com/green-dc/baat/internal/core"
)

func TestModelFidelityQuick(t *testing.T) {
	tab, err := ModelFidelity(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Two scenarios × (three tiers + one error row).
	if len(tab.Rows) != 8 {
		t.Fatalf("got %d rows, want 8", len(tab.Rows))
	}
	for _, sc := range []string{"clean", "chaos"} {
		if v, ok := tab.Values[sc+"_linear_throughput_err"]; !ok || v < 0 || v > 0.2 {
			t.Errorf("%s: linear throughput error %v outside the plausible band [0, 0.2]", sc, v)
		}
		if v, ok := tab.Values[sc+"_linear_health_err"]; !ok || v < 0 || v > 0.05 {
			t.Errorf("%s: linear health error %v outside the plausible band [0, 0.05]", sc, v)
		}
		for _, tier := range []string{"leadacid", "linear", "lfp"} {
			if v := tab.Values[sc+"_"+tier+"_throughput"]; v <= 0 {
				t.Errorf("%s/%s: non-positive throughput %v", sc, tier, v)
			}
			if v := tab.Values[sc+"_"+tier+"_health"]; v <= 0 || v > 1 {
				t.Errorf("%s/%s: health %v outside (0, 1]", sc, tier, v)
			}
		}
	}
}

func TestMixedFleetQuick(t *testing.T) {
	tab, err := MixedFleet(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != len(table4) {
		t.Fatalf("got %d rows, want one per Table 4 policy (%d)", len(tab.Rows), len(table4))
	}
	for _, spec := range table4 {
		name := label(spec)
		lead := tab.Values[name+"_lead_health"]
		lfp := tab.Values[name+"_lfp_health"]
		worst := tab.Values[name+"_worst_health"]
		if lead <= 0 || lead > 1 || lfp <= 0 || lfp > 1 {
			t.Errorf("%s: block healths outside (0, 1]: lead %v, lfp %v", name, lead, lfp)
		}
		if worst > lead || worst > lfp {
			t.Errorf("%s: worst health %v above a block mean (lead %v, lfp %v)", name, worst, lead, lfp)
		}
		if tab.Values[name+"_throughput"] <= 0 {
			t.Errorf("%s: non-positive throughput", name)
		}
	}
	// The chemistry gap the harness exists to expose: under the aging-
	// oblivious baseline, the LFP retrofits outlast the legacy lead-acid
	// block (slower fade under identical duty).
	base := core.DisplayName("ebuff")
	if tab.Values[base+"_lfp_health"] <= tab.Values[base+"_lead_health"] {
		t.Errorf("under %s the LFP block (%v) should out-age the lead-acid block (%v)",
			base, tab.Values[base+"_lfp_health"], tab.Values[base+"_lead_health"])
	}
}
