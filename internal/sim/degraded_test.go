package sim

// Degraded-mode scenario tests: the graceful-degradation contract of the
// engine under sensor faults. A node whose metrics chain goes bad (NaN
// readings the tracker rejects, or a dropped feed that goes stale) must be
// quarantined — conservative placement, no new VMs while degraded — and
// must recover within one quarantine window of the fault clearing, all
// without a panic, deadlock, or stalled simulation.

import (
	"fmt"
	"testing"
	"time"

	"github.com/green-dc/baat/internal/core"
	"github.com/green-dc/baat/internal/faults"
	"github.com/green-dc/baat/internal/solar"
	"github.com/green-dc/baat/internal/telemetry"
	"github.com/green-dc/baat/internal/vm"
	"github.com/green-dc/baat/internal/workload"
)

// degradedSim builds a four-node fleet with one sensor-fault rule against
// node 0 and the quarantine window aligned to the control period, so
// "recovers within one control window" is exactly what the timing
// assertions check.
func degradedSim(t *testing.T, policy string, rule faults.Rule) (*Simulator, *telemetry.Recorder) {
	t.Helper()
	rec := telemetry.NewRecorder()
	s := newSim(t, policy, func(c *Config) {
		c.Nodes = 4
		c.Seed = 17
		c.Telemetry = rec
		c.Node.SensorQuarantine = c.ControlPeriod
		c.Faults = faults.Config{Rules: []faults.Rule{rule}}
	})
	return s, rec
}

func TestDegradedModeScenarios(t *testing.T) {
	const (
		faultStart = 9 * time.Hour
		faultLen   = time.Hour
	)
	tests := []struct {
		name string
		kind faults.Kind
		// wantRejected: the tracker must reject samples (implausible
		// readings); otherwise the stale path (missed samples) must fire.
		wantRejected bool
	}{
		{"nan readings rejected", faults.SensorNaN, true},
		{"dropped feed goes stale", faults.SensorDrop, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			s, rec := degradedSim(t, "baat", faults.Rule{
				Kind: tt.kind, Node: 0, Day: 1, At: faultStart, Duration: faultLen,
			})
			ds, err := s.RunDay(solar.Sunny)
			if err != nil {
				t.Fatalf("RunDay under %s: %v", tt.kind, err)
			}
			if ds.Throughput <= 0 {
				t.Error("no work completed: the fleet stalled under a single-node sensor fault")
			}

			n := s.nodes[0]
			if tt.wantRejected {
				if n.SensorRejected() == 0 {
					t.Error("tracker accepted every NaN sample")
				}
			} else if n.SensorDropped() == 0 {
				t.Error("no samples recorded as dropped")
			}
			if n.MetricsSuspect() {
				t.Error("node still quarantined at end of day, long after the fault cleared")
			}

			// The trace must show exactly the degraded window: entry shortly
			// after the fault starts, exit within one quarantine window of
			// the fault clearing.
			events := rec.Events()
			var entered, recovered *telemetry.Event
			for i, ev := range events {
				if ev.Node != "node-0" {
					continue
				}
				switch ev.Type {
				case telemetry.EventDegradedMode:
					if entered == nil {
						entered = &events[i]
					}
				case telemetry.EventDegradedRecovered:
					if entered != nil && recovered == nil {
						recovered = &events[i]
					}
				}
			}
			if entered == nil {
				t.Fatal("no degraded_mode event for node-0")
			}
			if recovered == nil {
				t.Fatal("no degraded_recovered event for node-0")
			}
			// Stale detection needs StaleAfter consecutive misses, so entry
			// lags the fault start by a few ticks at most.
			if entered.At < faultStart || entered.At > faultStart+10*time.Minute {
				t.Errorf("degraded_mode at %v, want within 10m of fault start %v", entered.At, faultStart)
			}
			deadline := faultStart + faultLen + s.cfg.ControlPeriod
			if recovered.At > deadline {
				t.Errorf("degraded_recovered at %v, want within one control window of fault end (by %v)",
					recovered.At, deadline)
			}

			snap := rec.Snapshot()
			if snap.Counters[telemetry.MetricFaultsInjected] == 0 {
				t.Error("fault injection counter never incremented")
			}
			// One entry and one exit: two transitions.
			if got := snap.Counters[telemetry.MetricDegradedTransitions]; got != 2 {
				t.Errorf("degraded transitions = %d, want 2", got)
			}
		})
	}
}

// TestSuspectNodeReceivesNoPlacements holds the conservative-placement
// rule: while a node's metrics are quarantined, the aging-aware policies
// must not hand it new VMs as long as a trusted node has capacity.
func TestSuspectNodeReceivesNoPlacements(t *testing.T) {
	for _, policy := range []string{"baat", "baat-h"} {
		t.Run(policy, func(t *testing.T) {
			// The fault runs through end of day, so node 0 is still
			// quarantined when the day finishes.
			s, _ := degradedSim(t, policy, faults.Rule{
				Kind: faults.SensorNaN, Node: 0, Day: 1, At: 12 * time.Hour, Duration: 12 * time.Hour,
			})
			if _, err := s.RunDay(solar.Sunny); err != nil {
				t.Fatal(err)
			}
			if !s.nodes[0].MetricsSuspect() {
				t.Fatal("node-0 not quarantined at end of day; scenario setup broken")
			}
			profile, err := workload.ProfileFor(workload.KMeans)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 4; i++ {
				v, err := vm.New(fmt.Sprintf("probe-%d", i), profile)
				if err != nil {
					t.Fatal(err)
				}
				target, err := s.policy.PlaceVM(s.ctx(), v)
				if err != nil {
					t.Fatalf("probe placement %d: %v", i, err)
				}
				if target == s.nodes[0] {
					t.Fatalf("probe %d placed on the quarantined node", i)
				}
			}
		})
	}
}

// TestFleetWideSuspectStillPlaces is the degenerate case: when every
// node's metrics are quarantined, placement must fall back to the suspect
// pool rather than rejecting work — degraded, not dead.
func TestFleetWideSuspectStillPlaces(t *testing.T) {
	s, _ := degradedSim(t, "baat", faults.Rule{
		Kind: faults.SensorNaN, Node: -1, Day: 1, At: 12 * time.Hour, Duration: 12 * time.Hour,
	})
	if _, err := s.RunDay(solar.Sunny); err != nil {
		t.Fatal(err)
	}
	for i, n := range s.nodes {
		if !n.MetricsSuspect() {
			t.Fatalf("node %d not quarantined; scenario setup broken", i)
		}
	}
	profile, err := workload.ProfileFor(workload.KMeans)
	if err != nil {
		t.Fatal(err)
	}
	v, err := vm.New("probe", profile)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.policy.PlaceVM(s.ctx(), v); err != nil {
		t.Errorf("fleet-wide quarantine rejected placement: %v", err)
	}
}

// TestFaultsSeedDefaultIsDerived pins the seed-stream convention: an
// explicit Faults.Seed overrides, a zero seed inherits Config.Seed (the
// injector then derives its own named substream), and the two must agree
// when set to the same value.
func TestFaultsSeedDefaultIsDerived(t *testing.T) {
	run := func(faultSeed int64) []byte {
		rule := faults.Rule{Kind: faults.SensorNoise, Node: -1, Probability: 0.05, Duration: 10 * time.Minute}
		cfg := DefaultConfig()
		cfg.Policy = core.PolicySpec{Name: "baat"}
		cfg.Seed = 40
		cfg.Faults = faults.Config{Seed: faultSeed, Rules: []faults.Rule{rule}}
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run([]solar.Weather{solar.Sunny})
		if err != nil {
			t.Fatal(err)
		}
		return marshaledResult(t, res)
	}
	auto := run(0)
	explicit := run(40) // same value as Config.Seed
	if string(auto) != string(explicit) {
		t.Error("zero Faults.Seed did not inherit Config.Seed")
	}
}
